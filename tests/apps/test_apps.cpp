// Workload-level tests: the farm protocol terminates with every task
// delivered exactly once under every transport and loss rate; ping-pong
// and the NAS skeletons produce sane, deterministic results.
#include <gtest/gtest.h>

#include "apps/farm.hpp"
#include "apps/nas.hpp"
#include "apps/pingpong.hpp"

namespace sctpmpi::apps {
namespace {

struct FarmCase {
  const char* name;
  core::TransportKind transport;
  unsigned stream_pool;
  double loss;
  int fanout;
};

class FarmTest : public ::testing::TestWithParam<FarmCase> {};

TEST_P(FarmTest, CompletesAllTasksExactlyOnce) {
  const FarmCase& c = GetParam();
  core::WorldConfig cfg;
  cfg.ranks = 4;
  cfg.transport = c.transport;
  cfg.rpi.stream_pool = c.stream_pool;
  cfg.loss = c.loss;
  cfg.seed = 11;
  FarmParams fp;
  fp.num_tasks = 200;
  fp.task_size = 30 * 1024;
  fp.fanout = c.fanout;
  FarmResult r = run_farm(cfg, fp);
  EXPECT_EQ(r.tasks_completed, fp.num_tasks);
  EXPECT_GT(r.total_runtime_seconds, 0.0);
  // Each worker front-loads `outstanding` requests and then one per full
  // batch; the manager must have served at least tasks/fanout requests.
  EXPECT_GE(r.manager_requests_served,
            static_cast<std::uint64_t>(fp.num_tasks / fp.fanout));
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, FarmTest,
    ::testing::Values(
        FarmCase{"TcpNoLoss", core::TransportKind::kTcp, 10, 0.0, 1},
        FarmCase{"TcpLoss2", core::TransportKind::kTcp, 10, 0.02, 1},
        FarmCase{"SctpNoLoss", core::TransportKind::kSctp, 10, 0.0, 1},
        FarmCase{"SctpLoss2", core::TransportKind::kSctp, 10, 0.02, 1},
        FarmCase{"SctpFanout10Loss2", core::TransportKind::kSctp, 10, 0.02,
                 10},
        FarmCase{"Sctp1StreamLoss2", core::TransportKind::kSctp, 1, 0.02,
                 10},
        FarmCase{"TcpFanout10Loss1", core::TransportKind::kTcp, 10, 0.01,
                 10}),
    [](const ::testing::TestParamInfo<FarmCase>& info) {
      return info.param.name;
    });

TEST(FarmProperties, LongTasksUseRendezvousAndComplete) {
  core::WorldConfig cfg;
  cfg.ranks = 4;
  cfg.transport = core::TransportKind::kSctp;
  cfg.loss = 0.01;
  cfg.seed = 3;
  FarmParams fp;
  fp.num_tasks = 40;
  fp.task_size = 300 * 1024;  // long: > 64 KiB eager limit
  FarmResult r = run_farm(cfg, fp);
  EXPECT_EQ(r.tasks_completed, 40);
}

TEST(FarmProperties, DeterministicAcrossRuns) {
  auto once = [] {
    core::WorldConfig cfg;
    cfg.ranks = 4;
    cfg.transport = core::TransportKind::kSctp;
    cfg.loss = 0.02;
    cfg.seed = 77;
    FarmParams fp;
    fp.num_tasks = 100;
    return run_farm(cfg, fp).total_runtime_seconds;
  };
  EXPECT_DOUBLE_EQ(once(), once());
}

TEST(FarmProperties, DifferentSeedsDifferentTimings) {
  auto with_seed = [](std::uint64_t seed) {
    core::WorldConfig cfg;
    cfg.ranks = 4;
    cfg.transport = core::TransportKind::kSctp;
    cfg.loss = 0.02;
    cfg.seed = seed;
    FarmParams fp;
    fp.num_tasks = 100;
    return run_farm(cfg, fp).total_runtime_seconds;
  };
  EXPECT_NE(with_seed(1), with_seed(2));
}

TEST(FarmProperties, MoreWorkersFinishFaster) {
  auto with_ranks = [](int ranks) {
    core::WorldConfig cfg;
    cfg.ranks = ranks;
    cfg.transport = core::TransportKind::kSctp;
    FarmParams fp;
    fp.num_tasks = 300;
    fp.work_per_task = 5 * sim::kMillisecond;  // compute-bound regime
    return run_farm(cfg, fp).total_runtime_seconds;
  };
  EXPECT_LT(with_ranks(8), with_ranks(3) * 0.7);
}

TEST(PingPong, ThroughputGrowsWithMessageSize) {
  auto tput = [](std::size_t size) {
    core::WorldConfig cfg;
    cfg.transport = core::TransportKind::kSctp;
    PingPongParams pp;
    pp.message_size = size;
    pp.iterations = 30;
    return run_pingpong(cfg, pp).throughput_Bps;
  };
  const double small = tput(64);
  const double large = tput(64 * 1024);
  EXPECT_GT(large, small * 10);
}

TEST(PingPong, LossReducesThroughputOnBothTransports) {
  for (auto tr : {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
    core::WorldConfig cfg;
    cfg.transport = tr;
    PingPongParams pp;
    pp.message_size = 30 * 1024;
    pp.iterations = 30;
    const double clean = run_pingpong(cfg, pp).throughput_Bps;
    cfg.loss = 0.02;
    const double lossy = run_pingpong(cfg, pp).throughput_Bps;
    EXPECT_LT(lossy, clean / 5) << core::to_string(tr);
  }
}

TEST(PingPong, SctpBeatsTcpUnderLoss) {
  // The paper's core claim (Table 1), as an invariant. Loss runs are
  // timeout-dominated, so average over seeds as the paper averaged runs.
  double secs[2] = {0, 0};
  int i = 0;
  for (auto tr : {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      core::WorldConfig cfg;
      cfg.transport = tr;
      cfg.loss = 0.02;
      cfg.seed = seed;
      PingPongParams pp;
      pp.message_size = 30 * 1024;
      pp.iterations = 60;
      secs[i] += run_pingpong(cfg, pp).loop_seconds;
    }
    ++i;
  }
  EXPECT_LT(secs[1], secs[0] / 1.3) << "SCTP must be >=1.3x faster at 2%";
}

TEST(Nas, AllKernelsRunOnBothTransportsClassS) {
  for (NasKernel k : nas_paper_order()) {
    for (auto tr : {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
      core::WorldConfig cfg;
      cfg.ranks = 8;
      cfg.transport = tr;
      NasResult r = run_nas(cfg, k, NasClass::kS);
      EXPECT_GT(r.runtime_seconds, 0.0) << to_string(k);
      EXPECT_GT(r.mops_total, 0.0) << to_string(k);
    }
  }
}

TEST(Nas, ClassesScaleUpRuntime) {
  core::WorldConfig cfg;
  cfg.ranks = 8;
  cfg.transport = core::TransportKind::kSctp;
  const double s = run_nas(cfg, NasKernel::kCG, NasClass::kS).runtime_seconds;
  core::WorldConfig cfg2 = cfg;
  const double b =
      run_nas(cfg2, NasKernel::kCG, NasClass::kB).runtime_seconds;
  EXPECT_GT(b, s * 5);
}

TEST(Nas, SurvivesLoss) {
  core::WorldConfig cfg;
  cfg.ranks = 8;
  cfg.transport = core::TransportKind::kSctp;
  cfg.loss = 0.02;
  NasResult r = run_nas(cfg, NasKernel::kMG, NasClass::kW);
  EXPECT_GT(r.runtime_seconds, 0.0);
}

}  // namespace
}  // namespace sctpmpi::apps
