// Unit tests for the exact quantile helpers behind the service workload's
// tail reporting (apps/report.hpp).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "apps/report.hpp"

namespace sctpmpi::apps {
namespace {

TEST(Quantile, EmptyAndSingleton) {
  EXPECT_TRUE(std::isnan(quantile({}, 0.5)));
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile({7.0}, 1.0), 7.0);
}

TEST(Quantile, ExactRanksOnSmallSample) {
  const std::vector<double> s = {10, 20, 30, 40};  // already sorted
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 1.0), 40.0);
  // R-7: rank = p * (n - 1); p=0.5 lands exactly between 20 and 30.
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 0.5), 25.0);
  // p = 1/3 lands exactly on the second element.
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 1.0 / 3.0), 20.0);
}

TEST(Quantile, InterpolatesBetweenClosestRanks) {
  std::vector<double> s(100);
  for (int i = 0; i < 100; ++i) s[static_cast<std::size_t>(i)] = i + 1;
  // rank = 0.99 * 99 = 98.01 -> 99 + 0.01 * (100 - 99).
  EXPECT_NEAR(quantile_sorted(s, 0.99), 99.01, 1e-9);
  EXPECT_NEAR(quantile_sorted(s, 0.999), 99.901, 1e-9);
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 0.5), 50.5);
}

TEST(Quantile, SortingVariantMatchesSorted) {
  const std::vector<double> shuffled = {5, 1, 4, 2, 3};
  const std::vector<double> sorted = {1, 2, 3, 4, 5};
  for (const double p : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(quantile(shuffled, p), quantile_sorted(sorted, p));
  }
}

TEST(Quantile, ClampsOutOfRangeP) {
  const std::vector<double> s = {1, 2, 3};
  EXPECT_DOUBLE_EQ(quantile_sorted(s, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(s, 1.5), 3.0);
}

TEST(TailSummaryTest, SummarizesInOnePass) {
  std::vector<double> s;
  for (int i = 1000; i >= 1; --i) s.push_back(i);  // reverse order on entry
  const TailSummary t = tail_summary(s);
  EXPECT_EQ(t.count, 1000u);
  EXPECT_DOUBLE_EQ(t.min, 1.0);
  EXPECT_DOUBLE_EQ(t.max, 1000.0);
  EXPECT_DOUBLE_EQ(t.p50, 500.5);
  EXPECT_NEAR(t.p99, 990.01, 1e-9);
  EXPECT_NEAR(t.p999, 999.001, 1e-9);
  EXPECT_DOUBLE_EQ(t.mean, 500.5);
}

TEST(TailSummaryTest, EmptyIsZeroed) {
  const TailSummary t = tail_summary({});
  EXPECT_EQ(t.count, 0u);
  EXPECT_DOUBLE_EQ(t.p999, 0.0);
}

}  // namespace
}  // namespace sctpmpi::apps
