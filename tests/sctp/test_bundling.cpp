// Wire-level tests of SCTP chunk bundling and packet economy (paper Fig. 1
// and §3.6: "SCTP is limited by the fact that it bundles different
// messages together").
#include <gtest/gtest.h>

#include "sctp/socket.hpp"
#include "tests/support/sctp_fixture.hpp"

namespace sctpmpi::sctp {
namespace {

using test::pattern_bytes;
using test::SctpFixture;

class SctpBundlingTest : public SctpFixture {};

TEST_F(SctpBundlingTest, SmallMessagesBundleIntoFewerPackets) {
  // Bundling engages when transmission is congestion-limited: messages
  // queued while cwnd is full leave together once a SACK opens the window.
  SctpConfig cfg;
  cfg.init_cwnd_mtus = 1;
  build(0.0, cfg);
  auto p = connect_pair();
  // Count SCTP data-bearing packets on the wire.
  int data_packets = 0;
  cluster_->uplink(0).faults().drop_if([&](const net::Packet& pkt) {
    if (pkt.proto != net::IpProto::kSctp) return false;
    auto parsed = SctpPacket::decode(pkt.payload, false);
    if (!parsed) return false;
    for (const auto& c : parsed->chunks) {
      if (c.type == ChunkType::kData) {
        ++data_packets;
        break;
      }
    }
    return false;
  });
  // Fill the initial 1-MTU cwnd, then queue 20 tiny messages behind it:
  // once the SACK opens the window they must leave bundled.
  constexpr int kMsgs = 20;
  auto filler = pattern_bytes(1400, 0x77);
  ASSERT_GT(p.a->sendmsg(p.a_id, 0, filler), 0);
  std::vector<std::vector<std::byte>> msgs;
  for (int i = 0; i < kMsgs; ++i) msgs.push_back(pattern_bytes(100, i + 1));
  for (int i = 0; i < kMsgs; ++i) {
    ASSERT_GT(p.a->sendmsg(p.a_id, 0, msgs[static_cast<std::size_t>(i)]), 0);
  }
  int got = 0;
  std::vector<std::byte> buf(4096);
  run_while([&] {
    RecvInfo info;
    while (p.b->recvmsg(buf, info) > 0) ++got;
    return got < kMsgs + 1;
  });
  EXPECT_LT(data_packets, kMsgs / 2)
      << "bundling must pack several small messages per packet";
}

TEST_F(SctpBundlingTest, SackPiggybacksOnReverseData) {
  build();
  auto p = connect_pair();
  // Ping-pong: the reverse-direction data should carry the SACK; count
  // standalone SACK-only packets.
  int sack_only = 0;
  for (unsigned h = 0; h < 2; ++h) {
    cluster_->uplink(h).faults().drop_if([&](const net::Packet& pkt) {
      if (pkt.proto != net::IpProto::kSctp) return false;
      auto parsed = SctpPacket::decode(pkt.payload, false);
      if (!parsed || parsed->chunks.empty()) return false;
      bool has_sack = false, has_data = false;
      for (const auto& c : parsed->chunks) {
        has_sack |= c.type == ChunkType::kSack;
        has_data |= c.type == ChunkType::kData;
      }
      if (has_sack && !has_data) ++sack_only;
      return false;
    });
  }
  auto msg = pattern_bytes(800);
  std::vector<std::byte> buf(4096);
  constexpr int kRounds = 20;
  int a_recv = 0;
  // Drive a strict ping-pong via callbacks.
  bool a_turn = true;
  ASSERT_GT(p.a->sendmsg(p.a_id, 0, msg), 0);
  run_while([&] {
    RecvInfo info;
    if (a_turn) {
      if (p.b->recvmsg(buf, info) > 0) {
        (void)p.b->sendmsg(p.b_id, 0, msg);
        a_turn = false;
      }
    } else {
      if (p.a->recvmsg(buf, info) > 0) {
        ++a_recv;
        if (a_recv < kRounds) (void)p.a->sendmsg(p.a_id, 0, msg);
        a_turn = true;
      }
    }
    return a_recv < kRounds;
  });
  // Some standalone SACKs are legitimate (delayed-ack timer at the end of
  // an exchange), but most acknowledgments must ride with the reply data.
  EXPECT_LT(sack_only, kRounds)
      << "SACKs should predominantly piggyback on reverse data";
}

TEST_F(SctpBundlingTest, DataChunkHeaderOverheadOnWire) {
  // §3.6: TCP can always pack a full MTU; SCTP's per-chunk header reduces
  // payload per packet. Verify the wire sizes match the spec arithmetic.
  DataChunk d;
  d.begin = d.end = true;
  d.payload = sctpmpi::net::SliceChain::adopt(pattern_bytes(1452));
  SctpPacket p;
  p.chunks.push_back(TypedChunk{ChunkType::kData, d});
  // 12 (common) + 16 (data header) + 1452 = 1480 = MTU - IP header.
  EXPECT_EQ(p.wire_bytes(), 1480u);
}

}  // namespace
}  // namespace sctpmpi::sctp
