// Tests for the CMT extension (paper §5: Concurrent Multipath Transfer —
// Iyengar et al. — "may become part of the SCTP protocol"; implemented
// here as the forward-looking option the paper anticipates).
#include <gtest/gtest.h>

#include "sctp/socket.hpp"
#include "tests/support/sctp_fixture.hpp"

namespace sctpmpi::sctp {
namespace {

using test::pattern_bytes;
using test::SctpFixture;

class SctpCmtTest : public SctpFixture {};

TEST_F(SctpCmtTest, StripesNewDataAcrossActivePaths) {
  SctpConfig cfg;
  cfg.cmt_enabled = true;
  build(0.0, cfg, 1, /*hosts=*/2, /*interfaces=*/3);
  auto p = connect_pair();
  exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(200'000)}});
  // All three subnets must have carried data chunks from host 0.
  int used = 0;
  for (unsigned s = 0; s < 3; ++s) {
    if (cluster_->uplink(0, s).stats().tx_bytes > 20'000) ++used;
  }
  EXPECT_EQ(used, 3) << "CMT must stripe across every active path";
}

TEST_F(SctpCmtTest, DefaultUsesPrimaryOnly) {
  build(0.0, {}, 1, 2, 3);
  auto p = connect_pair();
  exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(200'000)}});
  EXPECT_GT(cluster_->uplink(0, 0).stats().tx_bytes, 150'000u);
  EXPECT_LT(cluster_->uplink(0, 1).stats().tx_bytes, 5'000u)
      << "stock 2005 behaviour: data on the primary path only";
}

TEST_F(SctpCmtTest, DataIntegrityAndOrderingPreserved) {
  SctpConfig cfg;
  cfg.cmt_enabled = true;
  build(0.01, cfg, /*seed=*/9, 2, 3);
  auto p = connect_pair();
  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> msgs;
  for (int i = 0; i < 25; ++i) {
    msgs.push_back({1, pattern_bytes(10'000, static_cast<std::uint8_t>(i))});
  }
  auto rx = exchange(p.a, p.a_id, p.b, msgs);
  ASSERT_EQ(rx.size(), 25u);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(rx[static_cast<std::size_t>(i)].info.ssn, i)
        << "same-stream ordering must survive multipath striping";
    EXPECT_EQ(rx[static_cast<std::size_t>(i)].data,
              msgs[static_cast<std::size_t>(i)].second);
  }
}

TEST_F(SctpCmtTest, SurvivesPathFailureMidTransfer) {
  SctpConfig cfg;
  cfg.cmt_enabled = true;
  cfg.path_max_retrans = 2;
  build(0.0, cfg, 1, 2, 3);
  auto p = connect_pair();
  cluster_->set_subnet_loss(1, 1.0);  // one of the striped paths dies
  auto rx = exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(150'000)}});
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].data, pattern_bytes(150'000));
}

TEST_F(SctpCmtTest, AggregateThroughputExceedsSinglePath) {
  // The point of CMT: aggregate bandwidth of independent paths. Saturate
  // with bulk messages and compare completion time.
  auto run_with = [&](bool cmt) {
    SctpConfig cfg;
    cfg.cmt_enabled = cmt;
    build(0.0, cfg, 1, 2, 3);
    auto p = connect_pair();
    std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> msgs;
    for (int i = 0; i < 40; ++i) msgs.push_back({0, pattern_bytes(60'000)});
    exchange(p.a, p.a_id, p.b, msgs);
    return sim().now();
  };
  const auto single = run_with(false);
  const auto striped = run_with(true);
  EXPECT_LT(striped, single)
      << "CMT must beat single-path for bulk transfer on 3 independent "
         "gigabit paths";
}

}  // namespace
}  // namespace sctpmpi::sctp
