// End-to-end TSN wraparound: pins the initial TSN just below 2^32 so the
// association's sequence space rolls over mid-flight, exercising the
// serial-indexed retransmission queue, the receiver's run-length TSN map,
// and SACK gap blocks across the wrap — under loss, so retransmission and
// gap-marking paths run on both sides of the rollover.
#include <gtest/gtest.h>

#include "tests/support/sctp_fixture.hpp"

namespace sctpmpi::test {
namespace {

class SctpWraparoundTest : public SctpFixture {};

TEST_F(SctpWraparoundTest, LossyTransferAcrossTsnWrap) {
  build(/*loss=*/0.02, {}, /*seed=*/7);
  // ~128 data chunks fit below the wrap; the transfer needs several times
  // that, so retransmissions and gap acks straddle TSN 0 repeatedly.
  stacks_[0]->force_initial_tsn(0xFFFFFF80u);
  stacks_[1]->force_initial_tsn(0xFFFFFF80u);
  auto pair = connect_pair();

  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> messages;
  for (int i = 0; i < 48; ++i) {
    messages.emplace_back(static_cast<std::uint16_t>(i % 3),
                          pattern_bytes(8192, static_cast<std::uint8_t>(i + 1)));
  }
  auto received = exchange(pair.a, pair.a_id, pair.b, messages);
  ASSERT_EQ(received.size(), messages.size());
  // Ordered delivery per stream: reassemble each stream's byte sequence and
  // compare against what was sent on it.
  for (std::uint16_t sid = 0; sid < 3; ++sid) {
    std::vector<std::byte> sent, got;
    for (const auto& [s, data] : messages) {
      if (s == sid) sent.insert(sent.end(), data.begin(), data.end());
    }
    for (const auto& r : received) {
      if (r.info.sid == sid) got.insert(got.end(), r.data.begin(), r.data.end());
    }
    EXPECT_EQ(got, sent) << "stream " << sid;
  }
  // The transfer really did cross the wrap (and suffered loss).
  const auto& st = pair.a->assoc(pair.a_id)->stats();
  EXPECT_GT(st.data_chunks_sent, 0x80u);
  EXPECT_GT(st.retransmits + st.fast_retransmits, 0u);
}

TEST_F(SctpWraparoundTest, BidirectionalWrapTransfer) {
  build(/*loss=*/0.01, {}, /*seed=*/11);
  stacks_[0]->force_initial_tsn(0xFFFFFFF0u);
  stacks_[1]->force_initial_tsn(0xFFFFFFF0u);
  auto pair = connect_pair();
  // Reverse direction too: the server's outbound TSNs cross the wrap.
  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> messages;
  for (int i = 0; i < 24; ++i) {
    messages.emplace_back(0, pattern_bytes(4096, static_cast<std::uint8_t>(i + 101)));
  }
  auto received = exchange(pair.b, pair.b_id, pair.a, messages);
  ASSERT_EQ(received.size(), messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(received[i].data, messages[i].second) << "message " << i;
  }
}

}  // namespace
}  // namespace sctpmpi::test
