// Unit tests for SCTP building blocks: CRC32c vectors, chunk codec
// round-trips, TSN map semantics, and per-stream reassembly/ordering.
#include <gtest/gtest.h>

#include <cstring>

#include "sctp/chunk.hpp"
#include "sctp/crc32c.hpp"
#include "sctp/streams.hpp"
#include "sctp/tsn_map.hpp"

namespace sctpmpi::sctp {
namespace {

std::vector<std::byte> bytes_of(const char* s) {
  std::vector<std::byte> v(std::strlen(s));
  std::memcpy(v.data(), s, v.size());
  return v;
}

// ---- CRC32c ---------------------------------------------------------------

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / published CRC32c test vectors.
  std::vector<std::byte> zeros(32, std::byte{0});
  EXPECT_EQ(crc32c(zeros), 0x8A9136AAu);
  std::vector<std::byte> ones(32, std::byte{0xFF});
  EXPECT_EQ(crc32c(ones), 0x62A8AB43u);
  std::vector<std::byte> inc(32);
  for (int i = 0; i < 32; ++i) inc[i] = static_cast<std::byte>(i);
  EXPECT_EQ(crc32c(inc), 0x46DD794Eu);
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(crc32c({}), 0x00000000u);
}

TEST(Crc32c, SensitiveToSingleBitFlip) {
  auto data = bytes_of("hello sctp world");
  auto orig = crc32c(data);
  data[5] ^= std::byte{0x01};
  EXPECT_NE(crc32c(data), orig);
}

TEST(Crc32c, StreamingMatchesOneShot) {
  // The streaming class must produce the one-shot value regardless of how
  // the input is split — including splits inside the slicing-by-8 stride
  // and a degenerate empty update.
  std::vector<std::byte> data(253);
  std::uint32_t x = 0xC0FFEE;
  for (auto& b : data) {
    x = x * 1664525u + 1013904223u;
    b = static_cast<std::byte>(x >> 24);
  }
  const std::uint32_t want = crc32c(data);

  for (std::size_t split : {0u, 1u, 3u, 7u, 8u, 9u, 16u, 126u, 252u, 253u}) {
    Crc32c c;
    c.update(std::span(data).subspan(0, split));
    c.update(std::span(data).subspan(split));
    EXPECT_EQ(c.finalize(), want) << "split at " << split;
  }

  // Byte-at-a-time, with interleaved empty updates.
  Crc32c c;
  for (std::size_t i = 0; i < data.size(); ++i) {
    c.update(std::span(data).subspan(i, 1));
    c.update({});
  }
  EXPECT_EQ(c.finalize(), want);

  // Streaming over the RFC 3720 vector as three ragged pieces.
  const auto rfc = bytes_of("123456789");
  Crc32c r;
  r.update(std::span(rfc).subspan(0, 2));
  r.update(std::span(rfc).subspan(2, 5));
  r.update(std::span(rfc).subspan(7));
  EXPECT_EQ(r.finalize(), 0xE3069283u);
}

// ---- Chunk codec ------------------------------------------------------------

TEST(SctpWire, DataChunkRoundTrip) {
  SctpPacket p;
  p.sport = 5001;
  p.dport = 5002;
  p.vtag = 0xCAFEBABE;
  DataChunk d;
  d.begin = true;
  d.end = false;
  d.unordered = true;
  d.tsn = 12345;
  d.sid = 7;
  d.ssn = 99;
  d.ppid = 42;
  d.payload = sctpmpi::net::SliceChain::adopt(bytes_of("payload-bytes"));
  p.chunks.push_back(TypedChunk{ChunkType::kData, d});

  auto decoded = SctpPacket::decode(p.encode(false), false);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sport, 5001);
  EXPECT_EQ(decoded->vtag, 0xCAFEBABEu);
  ASSERT_EQ(decoded->chunks.size(), 1u);
  const auto& dd = std::get<DataChunk>(decoded->chunks[0].body);
  EXPECT_TRUE(dd.begin);
  EXPECT_FALSE(dd.end);
  EXPECT_TRUE(dd.unordered);
  EXPECT_EQ(dd.tsn, 12345u);
  EXPECT_EQ(dd.sid, 7);
  EXPECT_EQ(dd.ssn, 99);
  EXPECT_EQ(dd.ppid, 42u);
  EXPECT_EQ(dd.payload, d.payload);
}

TEST(SctpWire, InitWithAddressesAndCookieRoundTrip) {
  SctpPacket p;
  InitChunk init;
  init.initiate_tag = 111;
  init.a_rwnd = 220 * 1024;
  init.num_ostreams = 10;
  init.max_instreams = 64;
  init.initial_tsn = 9999;
  init.addresses = {net::make_addr(0, 1), net::make_addr(1, 1),
                    net::make_addr(2, 1)};
  init.cookie = bytes_of("not-a-multiple-of-4!!");
  p.chunks.push_back(TypedChunk{ChunkType::kInitAck, init});

  auto d = SctpPacket::decode(p.encode(false), false);
  ASSERT_TRUE(d.has_value());
  const auto& di = std::get<InitChunk>(d->chunks[0].body);
  EXPECT_EQ(di.initiate_tag, 111u);
  EXPECT_EQ(di.a_rwnd, 220u * 1024u);
  EXPECT_EQ(di.num_ostreams, 10);
  EXPECT_EQ(di.max_instreams, 64);
  EXPECT_EQ(di.initial_tsn, 9999u);
  EXPECT_EQ(di.addresses, init.addresses);
  EXPECT_EQ(di.cookie, init.cookie);
}

TEST(SctpWire, SackWithManyGapBlocksRoundTrip) {
  // SCTP gap blocks are not limited to 3-4 like TCP SACK (paper §4.1.1).
  SctpPacket p;
  SackChunk s;
  s.cum_tsn_ack = 1000;
  s.a_rwnd = 55555;
  for (std::uint16_t i = 0; i < 40; ++i) {
    s.gaps.push_back(GapBlock{static_cast<std::uint16_t>(i * 3 + 2),
                              static_cast<std::uint16_t>(i * 3 + 3)});
  }
  s.dup_tsns = {1, 2, 3};
  p.chunks.push_back(TypedChunk{ChunkType::kSack, s});

  auto d = SctpPacket::decode(p.encode(false), false);
  ASSERT_TRUE(d.has_value());
  const auto& ds = std::get<SackChunk>(d->chunks[0].body);
  EXPECT_EQ(ds.cum_tsn_ack, 1000u);
  EXPECT_EQ(ds.gaps.size(), 40u);
  EXPECT_EQ(ds.gaps, s.gaps);
  EXPECT_EQ(ds.dup_tsns, s.dup_tsns);
}

TEST(SctpWire, BundlingMultipleChunksRoundTrip) {
  SctpPacket p;
  SackChunk s;
  s.cum_tsn_ack = 5;
  p.chunks.push_back(TypedChunk{ChunkType::kSack, s});
  DataChunk d1;
  d1.begin = d1.end = true;
  d1.tsn = 6;
  d1.payload = sctpmpi::net::SliceChain::adopt(bytes_of("abc"));
  p.chunks.push_back(TypedChunk{ChunkType::kData, d1});
  DataChunk d2;
  d2.begin = d2.end = true;
  d2.tsn = 7;
  d2.sid = 3;
  d2.payload = sctpmpi::net::SliceChain::adopt(bytes_of("defgh"));
  p.chunks.push_back(TypedChunk{ChunkType::kData, d2});

  auto dec = SctpPacket::decode(p.encode(false), false);
  ASSERT_TRUE(dec.has_value());
  ASSERT_EQ(dec->chunks.size(), 3u);
  EXPECT_EQ(dec->chunks[0].type, ChunkType::kSack);
  EXPECT_EQ(std::get<DataChunk>(dec->chunks[1].body).payload, d1.payload);
  EXPECT_EQ(std::get<DataChunk>(dec->chunks[2].body).payload, d2.payload);
}

TEST(SctpWire, ControlChunksRoundTrip) {
  SctpPacket p;
  p.chunks.push_back(TypedChunk{ChunkType::kHeartbeat,
                                HeartbeatChunk{false, net::make_addr(1, 2),
                                               123456789ull}});
  p.chunks.push_back(TypedChunk{ChunkType::kShutdown, ShutdownChunk{777}});
  p.chunks.push_back(TypedChunk{ChunkType::kAbort, AbortChunk{}});
  p.chunks.push_back(TypedChunk{ChunkType::kCookieAck, CookieAckChunk{}});
  p.chunks.push_back(TypedChunk{ChunkType::kError, ErrorChunk{3}});

  auto d = SctpPacket::decode(p.encode(false), false);
  ASSERT_TRUE(d.has_value());
  ASSERT_EQ(d->chunks.size(), 5u);
  const auto& hb = std::get<HeartbeatChunk>(d->chunks[0].body);
  EXPECT_EQ(hb.path_addr, net::make_addr(1, 2));
  EXPECT_EQ(hb.timestamp, 123456789ull);
  EXPECT_EQ(std::get<ShutdownChunk>(d->chunks[1].body).cum_tsn_ack, 777u);
  EXPECT_EQ(std::get<ErrorChunk>(d->chunks[4].body).cause, 3);
}

TEST(SctpWire, CrcDetectsCorruption) {
  SctpPacket p;
  DataChunk d;
  d.begin = d.end = true;
  d.tsn = 1;
  d.payload = sctpmpi::net::SliceChain::adopt(bytes_of("data"));
  p.chunks.push_back(TypedChunk{ChunkType::kData, d});
  auto wire = p.encode(true);
  ASSERT_TRUE(SctpPacket::decode(wire, true).has_value());
  wire[20] ^= std::byte{0x40};
  EXPECT_FALSE(SctpPacket::decode(wire, true).has_value());
}

TEST(SctpWire, WireBytesMatchesEncodedSize) {
  SctpPacket p;
  p.chunks.push_back(TypedChunk{ChunkType::kSack, SackChunk{1, 2, {{3, 4}}, {5}}});
  DataChunk d;
  d.begin = d.end = true;
  d.payload = sctpmpi::net::SliceChain::adopt(bytes_of("xy"));  // padded to 4
  p.chunks.push_back(TypedChunk{ChunkType::kData, d});
  EXPECT_EQ(p.encode(false).size(), p.wire_bytes());
}

// ---- TsnMap -----------------------------------------------------------------

TEST(TsnMapTest, InOrderAdvancesCumulative) {
  TsnMap m(100);
  EXPECT_EQ(m.cum_tsn(), 99u);
  EXPECT_TRUE(m.record(100));
  EXPECT_TRUE(m.record(101));
  EXPECT_EQ(m.cum_tsn(), 101u);
  EXPECT_FALSE(m.has_gaps());
}

TEST(TsnMapTest, GapCreatesBlocks) {
  TsnMap m(1);
  m.record(1);
  m.record(3);
  m.record(4);
  m.record(7);
  EXPECT_EQ(m.cum_tsn(), 1u);
  auto gaps = m.gap_blocks();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (GapBlock{2, 3}));  // TSNs 3..4 as offsets from 1
  EXPECT_EQ(gaps[1], (GapBlock{6, 6}));  // TSN 7
}

TEST(TsnMapTest, FillingGapMergesAndAdvances) {
  TsnMap m(1);
  m.record(1);
  m.record(3);
  m.record(2);
  EXPECT_EQ(m.cum_tsn(), 3u);
  EXPECT_FALSE(m.has_gaps());
}

TEST(TsnMapTest, DuplicatesAreReportedOnce) {
  TsnMap m(10);
  EXPECT_TRUE(m.record(10));
  EXPECT_FALSE(m.record(10));
  EXPECT_FALSE(m.record(9));  // below initial
  EXPECT_TRUE(m.record(12));
  EXPECT_FALSE(m.record(12));
  auto dups = m.take_duplicates();
  EXPECT_EQ(dups, (std::vector<std::uint32_t>{10, 9, 12}));
  EXPECT_TRUE(m.take_duplicates().empty());
}

TEST(TsnMapTest, WorksAcrossSerialNumberWrap) {
  TsnMap m(0xFFFFFFFE);
  EXPECT_TRUE(m.record(0xFFFFFFFE));
  EXPECT_TRUE(m.record(0xFFFFFFFF));
  EXPECT_TRUE(m.record(0));
  EXPECT_TRUE(m.record(1));
  EXPECT_EQ(m.cum_tsn(), 1u);
}

TEST(TsnMapTest, GapBlocksStraddleSerialNumberWrap) {
  TsnMap m(0xFFFFFFFC);
  m.record(0xFFFFFFFC);
  // A gap that sits across the wrap: TSNs ...FFFE, ...FFFF, 1, 2 pending.
  m.record(0xFFFFFFFE);
  m.record(0xFFFFFFFF);
  m.record(1);
  m.record(2);
  EXPECT_EQ(m.cum_tsn(), 0xFFFFFFFCu);
  auto gaps = m.gap_blocks();
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_EQ(gaps[0], (GapBlock{2, 3}));  // offsets of ...FFFE..FFFF
  EXPECT_EQ(gaps[1], (GapBlock{5, 6}));  // offsets of 1..2
  EXPECT_EQ(m.pending_count(), 4u);
  // Filling both holes advances the cumulative point past zero.
  m.record(0xFFFFFFFD);
  EXPECT_EQ(m.cum_tsn(), 0xFFFFFFFFu);
  m.record(0);
  EXPECT_EQ(m.cum_tsn(), 2u);
  EXPECT_FALSE(m.has_gaps());
}

TEST(TsnMapTest, DuplicateListIsBoundedPerSack) {
  TsnMap m(1);
  m.record(1);
  // A pathological duplicator replays the same TSN far beyond what one
  // SACK chunk can report; the list must cap, not grow without bound.
  for (std::size_t i = 0; i < 3 * TsnMap::kMaxReportedDups; ++i) {
    EXPECT_FALSE(m.record(1));
  }
  auto dups = m.take_duplicates();
  EXPECT_EQ(dups.size(), TsnMap::kMaxReportedDups);
  // Draining resets the budget for the next SACK interval.
  EXPECT_FALSE(m.record(1));
  EXPECT_EQ(m.take_duplicates().size(), 1u);
}

// ---- InboundStreams ----------------------------------------------------------

DataChunk make_chunk(std::uint32_t tsn, std::uint16_t sid, std::uint16_t ssn,
                     const char* data, bool begin = true, bool end = true) {
  DataChunk c;
  c.tsn = tsn;
  c.sid = sid;
  c.ssn = ssn;
  c.begin = begin;
  c.end = end;
  c.payload = sctpmpi::net::SliceChain::adopt(bytes_of(data));
  return c;
}

TEST(InboundStreamsTest, SingleFragmentMessageDelivers) {
  InboundStreams in(4);
  EXPECT_EQ(in.accept(make_chunk(1, 0, 0, "hello")), 1u);
  auto m = in.pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->data, bytes_of("hello"));
  EXPECT_FALSE(in.pop().has_value());
}

TEST(InboundStreamsTest, FragmentsReassembleInTsnOrder) {
  InboundStreams in(4);
  EXPECT_EQ(in.accept(make_chunk(10, 1, 0, "AA", true, false)), 0u);
  EXPECT_EQ(in.accept(make_chunk(12, 1, 0, "CC", false, true)), 0u);
  EXPECT_EQ(in.accept(make_chunk(11, 1, 0, "BB", false, false)), 1u);
  auto m = in.pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->data, bytes_of("AABBCC"));
  EXPECT_EQ(m->sid, 1);
}

TEST(InboundStreamsTest, SsnOrderingWithinStream) {
  InboundStreams in(4);
  // SSN 1 completes before SSN 0: must NOT deliver until 0 arrives.
  EXPECT_EQ(in.accept(make_chunk(2, 0, 1, "second")), 0u);
  EXPECT_FALSE(in.has_deliverable());
  EXPECT_EQ(in.accept(make_chunk(1, 0, 0, "first")), 2u);
  EXPECT_EQ(in.pop()->data, bytes_of("first"));
  EXPECT_EQ(in.pop()->data, bytes_of("second"));
}

TEST(InboundStreamsTest, StreamsAreIndependent) {
  // The HOL-blocking core property: stream 1's completed message delivers
  // even though stream 0 is still waiting for an earlier message.
  InboundStreams in(4);
  in.accept(make_chunk(5, 0, 1, "stream0-later"));   // blocked on ssn 0
  EXPECT_EQ(in.accept(make_chunk(6, 1, 0, "stream1-now")), 1u);
  auto m = in.pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->sid, 1);
  EXPECT_EQ(m->data, bytes_of("stream1-now"));
  EXPECT_FALSE(in.pop().has_value());
}

TEST(InboundStreamsTest, UnorderedBypassesSsnOrdering) {
  InboundStreams in(2);
  DataChunk c = make_chunk(9, 0, 5, "unordered");
  c.unordered = true;
  EXPECT_EQ(in.accept(c), 1u);
  auto m = in.pop();
  ASSERT_TRUE(m.has_value());
  EXPECT_TRUE(m->unordered);
}

TEST(InboundStreamsTest, InvalidStreamIdIgnored) {
  InboundStreams in(2);
  EXPECT_EQ(in.accept(make_chunk(1, 9, 0, "bad")), 0u);
  EXPECT_FALSE(in.has_deliverable());
}

TEST(InboundStreamsTest, BufferedBytesTracksPartials) {
  InboundStreams in(2);
  in.accept(make_chunk(1, 0, 0, "AAAA", true, false));
  EXPECT_EQ(in.buffered_bytes(), 4u);
  in.accept(make_chunk(2, 0, 0, "BB", false, true));
  EXPECT_EQ(in.buffered_bytes(), 0u);
  EXPECT_EQ(in.ready_bytes(), 6u);
  auto m = in.pop();
  in.on_consumed(m->data.size());
  EXPECT_EQ(in.ready_bytes(), 0u);
}

TEST(InboundStreamsTest, SsnWrapAroundDelivers) {
  InboundStreams in(1);
  // Fast-forward a stream to SSN 65535, then wrap to 0.
  InboundStreams in2(1);
  std::uint32_t tsn = 1;
  for (std::uint32_t ssn = 0; ssn < 65536; ++ssn) {
    in2.accept(make_chunk(tsn++, 0, static_cast<std::uint16_t>(ssn), "x"));
    ASSERT_TRUE(in2.pop().has_value());
  }
  // next_ssn wrapped to 0 again.
  EXPECT_EQ(in2.accept(make_chunk(tsn, 0, 0, "wrapped")), 1u);
  EXPECT_EQ(in2.pop()->data, bytes_of("wrapped"));
}

}  // namespace
}  // namespace sctpmpi::sctp
