// Multihoming tests: path setup from INIT address params, heartbeats,
// retransmission on alternate paths, and primary-path failover — the
// paper's §3.5.1 reliability mechanisms.
#include <gtest/gtest.h>

#include "sctp/socket.hpp"
#include "tests/support/sctp_fixture.hpp"

namespace sctpmpi::sctp {
namespace {

using test::pattern_bytes;
using test::SctpFixture;

class SctpMultihomingTest : public SctpFixture {};

TEST_F(SctpMultihomingTest, AssociationLearnsAllPeerAddresses) {
  build(0.0, {}, 1, /*hosts=*/2, /*interfaces=*/3);
  auto p = connect_pair();
  EXPECT_EQ(p.a->assoc(p.a_id)->paths().size(), 3u);
  EXPECT_EQ(p.b->assoc(p.b_id)->paths().size(), 3u);
}

TEST_F(SctpMultihomingTest, DataUsesPrimaryPathOnly) {
  build(0.0, {}, 1, 2, 3);
  auto p = connect_pair();
  exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(50'000)}});
  const auto& paths = p.a->assoc(p.a_id)->paths();
  // All data went to the primary (path of the connect address).
  EXPECT_EQ(p.a->assoc(p.a_id)->primary_path(), 0u);
  EXPECT_EQ(paths[1].flight + paths[2].flight, 0u);
}

TEST_F(SctpMultihomingTest, TimeoutRetransmissionUsesAlternatePath) {
  build(0.0, {}, 1, 2, 3);
  auto p = connect_pair();
  // Black-hole data packets on subnet 0 only, after the handshake.
  cluster_->uplink(0, 0).faults().drop_if(
      [](const net::Packet& pkt) { return pkt.payload.size() > 1000; });
  auto rx = exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(3000)}});
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].data, pattern_bytes(3000));
  // Recovery required T3 + retransmission on an alternate subnet.
  EXPECT_GE(p.a->assoc(p.a_id)->stats().timeouts, 1u);
  EXPECT_GT(p.a->assoc(p.a_id)->stats().retransmits, 0u);
}

TEST_F(SctpMultihomingTest, PrimaryPathFailsOverAfterMaxRetrans) {
  SctpConfig cfg;
  cfg.path_max_retrans = 2;  // fail fast for the test
  build(0.0, cfg, 1, 2, 3);
  auto p = connect_pair();
  cluster_->set_subnet_loss(0, 1.0);  // sever the primary network entirely

  bool failed_over = false;
  std::size_t sent = 0;
  std::vector<std::vector<std::byte>> rx;
  std::vector<std::byte> buf(1 << 16);
  auto pump_tx = [&] {
    while (sent < 5) {
      if (p.a->sendmsg(p.a_id, 0, pattern_bytes(2000, sent + 1)) <= 0) break;
      ++sent;
    }
  };
  pump_tx();
  run_while([&] {
    while (auto n = p.a->poll_notification()) {
      if (n->type == NotificationType::kPathFailover) failed_over = true;
    }
    RecvInfo info;
    while (p.b->recvmsg(buf, info) > 0) {
      rx.emplace_back(buf.begin(), buf.begin() + 2000);
    }
    pump_tx();
    return rx.size() < 5;
  });
  EXPECT_TRUE(failed_over);
  EXPECT_NE(p.a->assoc(p.a_id)->primary_path(), 0u)
      << "primary must have moved off the dead subnet";
  EXPECT_GE(p.a->assoc(p.a_id)->stats().path_failovers, 1u);
}

TEST_F(SctpMultihomingTest, HeartbeatsProbeIdlePathsAndDetectFailure) {
  SctpConfig cfg;
  cfg.hb_interval = 1 * sim::kSecond;  // fast heartbeats for the test
  cfg.path_max_retrans = 1;
  build(0.0, cfg, 1, 2, 2);
  auto p = connect_pair();
  // Sever the *alternate* subnet; heartbeats should discover it.
  cluster_->set_subnet_loss(1, 1.0);
  bool alt_failed = false;
  run_while(
      [&] {
        while (auto n = p.a->poll_notification()) {
          if (n->type == NotificationType::kPathFailover &&
              net::subnet_of(n->path_addr) == 1) {
            alt_failed = true;
          }
        }
        return !alt_failed && sim().now() < 60 * sim::kSecond;
      },
      200'000'000);
  EXPECT_TRUE(alt_failed);
  EXPECT_FALSE(p.a->assoc(p.a_id)->paths()[1].active);
}

TEST_F(SctpMultihomingTest, RestoredPathComesBackViaHeartbeat) {
  SctpConfig cfg;
  cfg.hb_interval = 1 * sim::kSecond;
  cfg.path_max_retrans = 1;
  build(0.0, cfg, 1, 2, 2);
  auto p = connect_pair();
  cluster_->set_subnet_loss(1, 1.0);
  bool failed = false;
  run_while([&] {
    while (auto n = p.a->poll_notification()) {
      if (n->type == NotificationType::kPathFailover) failed = true;
    }
    return !failed;
  });
  // Heal the subnet; a later heartbeat ack restores the path.
  cluster_->set_subnet_loss(1, 0.0);
  bool restored = false;
  run_while([&] {
    while (auto n = p.a->poll_notification()) {
      if (n->type == NotificationType::kPathRestored) restored = true;
    }
    return !restored;
  });
  EXPECT_TRUE(p.a->assoc(p.a_id)->paths()[1].active);
}

TEST_F(SctpMultihomingTest, CompleteNetworkFailureKillsAssociation) {
  SctpConfig cfg;
  cfg.assoc_max_retrans = 4;
  cfg.path_max_retrans = 2;
  build(0.0, cfg, 1, 2, 2);
  auto p = connect_pair();
  cluster_->set_loss(1.0);  // everything dies
  ASSERT_GT(p.a->sendmsg(p.a_id, 0, pattern_bytes(1000)), 0);
  bool lost = false;
  run_while([&] {
    while (auto n = p.a->poll_notification()) {
      if (n->type == NotificationType::kCommLost) lost = true;
    }
    return !lost;
  });
  EXPECT_EQ(p.a->assoc(p.a_id)->state(), AssocState::kClosed);
}

}  // namespace
}  // namespace sctpmpi::sctp
