#include "sctp/socket.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "tests/support/sctp_fixture.hpp"

namespace sctpmpi::sctp {
namespace {

using test::pattern_bytes;
using test::SctpFixture;

class SctpSocketTest : public SctpFixture {};

TEST_F(SctpSocketTest, FourWayHandshakeEstablishes) {
  build();
  auto p = connect_pair();
  EXPECT_EQ(p.a->assoc(p.a_id)->state(), AssocState::kEstablished);
  EXPECT_EQ(p.b->assoc(p.b_id)->state(), AssocState::kEstablished);
  // The initiator sends INIT and COOKIE-ECHO through its association; the
  // responder side is stateless (INIT-ACK and COOKIE-ACK come from the
  // socket, before/as the association is created) — paper §3.5.2.
  EXPECT_EQ(p.a->assoc(p.a_id)->stats().packets_sent, 2u);
  EXPECT_EQ(p.b->assoc(p.b_id)->stats().packets_sent, 0u);
}

TEST_F(SctpSocketTest, VerificationTagsDiffer) {
  build();
  auto p = connect_pair();
  Association* a = p.a->assoc(p.a_id);
  Association* b = p.b->assoc(p.b_id);
  EXPECT_EQ(a->local_vtag(), b->peer_vtag());
  EXPECT_EQ(a->peer_vtag(), b->local_vtag());
  EXPECT_NE(a->local_vtag(), a->peer_vtag());
}

TEST_F(SctpSocketTest, SingleMessageDeliversWithInfo) {
  build();
  auto p = connect_pair();
  auto msgs = exchange(p.a, p.a_id, p.b,
                       {{3, pattern_bytes(500)}});
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].data, pattern_bytes(500));
  EXPECT_EQ(msgs[0].info.sid, 3);
  EXPECT_EQ(msgs[0].info.ssn, 0);
  EXPECT_EQ(msgs[0].info.assoc, p.b_id);
}

TEST_F(SctpSocketTest, MessageFramingIsPreservedUnlikeByteStreams) {
  build();
  auto p = connect_pair();
  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> msgs;
  for (int i = 1; i <= 20; ++i) {
    msgs.push_back({0, pattern_bytes(static_cast<std::size_t>(i * 37), i)});
  }
  auto rx = exchange(p.a, p.a_id, p.b, msgs);
  ASSERT_EQ(rx.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rx[i].data.size(), static_cast<std::size_t>((i + 1) * 37))
        << "message boundaries must be preserved";
    EXPECT_EQ(rx[i].data, msgs[i].second);
  }
}

TEST_F(SctpSocketTest, LargeMessageFragmentsAndReassembles) {
  build();
  auto p = connect_pair();
  auto big = pattern_bytes(100'000);  // ~69 chunks
  auto rx = exchange(p.a, p.a_id, p.b, {{1, big}});
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_EQ(rx[0].data, big);
  EXPECT_GT(p.a->assoc(p.a_id)->stats().data_chunks_sent, 60u);
}

TEST_F(SctpSocketTest, MessageLargerThanSendBufferRejected) {
  build();
  auto p = connect_pair();
  auto huge = pattern_bytes(300 * 1024);  // > 220 KiB sndbuf
  EXPECT_EQ(p.a->sendmsg(p.a_id, 0, huge), Association::kMsgSize);
}

TEST_F(SctpSocketTest, EmptyMessageAndBadStreamRejected) {
  build();
  auto p = connect_pair();
  EXPECT_EQ(p.a->sendmsg(p.a_id, 0, {}), Association::kError);
  auto data = pattern_bytes(10);
  EXPECT_EQ(p.a->sendmsg(p.a_id, 99, data), Association::kError)
      << "stream id beyond the negotiated pool";
}

TEST_F(SctpSocketTest, SendBufferFullReturnsAgain) {
  build();
  auto p = connect_pair();
  auto chunk = pattern_bytes(50 * 1024);
  int accepted = 0;
  while (p.a->sendmsg(p.a_id, 0, chunk) > 0) ++accepted;
  EXPECT_GE(accepted, 4);  // 220 KiB / 50 KiB
  EXPECT_LE(accepted, 5);
  EXPECT_EQ(p.a->sendmsg(p.a_id, 0, chunk), Association::kAgain);
}

TEST_F(SctpSocketTest, OrderingWithinStreamUnderLoss) {
  build(0.02, {}, /*seed=*/11);
  auto p = connect_pair();
  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> msgs;
  for (int i = 0; i < 50; ++i) msgs.push_back({2, pattern_bytes(2000, i)});
  auto rx = exchange(p.a, p.a_id, p.b, msgs);
  ASSERT_EQ(rx.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rx[i].info.ssn, i) << "same-stream messages must stay ordered";
    EXPECT_EQ(rx[i].data, msgs[i].second);
  }
  EXPECT_GT(p.a->assoc(p.a_id)->stats().retransmits, 0u);
}

TEST_F(SctpSocketTest, StreamsDeliverIndependentlyUnderTargetedLoss) {
  // Drop the first data packet (stream 0's message); stream 1's message
  // must still deliver first — no head-of-line blocking across streams.
  build();
  auto p = connect_pair();
  int data_packets = 0;
  cluster_->uplink(0).faults().drop_if([&](const net::Packet& pkt) {
    if (pkt.payload.size() > 200) {
      ++data_packets;
      return data_packets == 1;
    }
    return false;
  });
  std::vector<std::byte> buf(1 << 16);
  auto m0 = pattern_bytes(1000, 1);
  auto m1 = pattern_bytes(1000, 2);
  ASSERT_GT(p.a->sendmsg(p.a_id, 0, m0), 0);
  ASSERT_GT(p.a->sendmsg(p.a_id, 1, m1), 0);
  std::vector<RecvInfo> order;
  run_while([&] {
    RecvInfo info;
    while (p.b->recvmsg(buf, info) > 0) order.push_back(info);
    return order.size() < 2;
  });
  EXPECT_EQ(order[0].sid, 1) << "stream 1 must overtake the lost stream 0";
  EXPECT_EQ(order[1].sid, 0);
}

TEST_F(SctpSocketTest, SameStreamBlocksOnLossWithinStreamOnly) {
  build();
  auto p = connect_pair();
  int data_packets = 0;
  cluster_->uplink(0).faults().drop_if([&](const net::Packet& pkt) {
    if (pkt.payload.size() > 200) {
      ++data_packets;
      return data_packets == 1;
    }
    return false;
  });
  std::vector<std::byte> buf(1 << 16);
  ASSERT_GT(p.a->sendmsg(p.a_id, 0, pattern_bytes(1000, 1)), 0);
  ASSERT_GT(p.a->sendmsg(p.a_id, 0, pattern_bytes(1000, 2)), 0);
  std::vector<RecvInfo> order;
  run_while([&] {
    RecvInfo info;
    while (p.b->recvmsg(buf, info) > 0) order.push_back(info);
    return order.size() < 2;
  });
  EXPECT_EQ(order[0].ssn, 0) << "within one stream, order is preserved";
  EXPECT_EQ(order[1].ssn, 1);
}

TEST_F(SctpSocketTest, BulkTransferUnderLossIsExact) {
  for (double loss : {0.01, 0.02}) {
    SCOPED_TRACE(loss);
    build(loss, {}, /*seed=*/23);
    auto p = connect_pair();
    std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> msgs;
    for (int i = 0; i < 30; ++i) {
      msgs.push_back({static_cast<std::uint16_t>(i % 10),
                      pattern_bytes(30'000, i)});
    }
    auto rx = exchange(p.a, p.a_id, p.b, msgs);
    ASSERT_EQ(rx.size(), 30u);
    // Per-stream ordering: collect per-sid SSN sequences.
    std::map<int, int> next_ssn;
    std::size_t total = 0;
    for (const auto& r : rx) {
      EXPECT_EQ(r.info.ssn, next_ssn[r.info.sid]++);
      total += r.data.size();
    }
    EXPECT_EQ(total, 30u * 30'000u);
  }
}

TEST_F(SctpSocketTest, LossRunsAreDeterministic) {
  auto run_once = [&] {
    build(0.02, {}, /*seed=*/9);
    auto p = connect_pair();
    auto rx = exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(150'000)}});
    return std::tuple(sim().now(), p.a->assoc(p.a_id)->stats().retransmits,
                      p.a->assoc(p.a_id)->stats().timeouts);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(SctpSocketTest, FastRetransmitAfterFourStrikes) {
  build();
  auto p = connect_pair();
  int data_packets = 0;
  cluster_->uplink(0).faults().drop_if([&](const net::Packet& pkt) {
    if (pkt.payload.size() > 1000) {
      ++data_packets;
      return data_packets == 3;  // drop one mid-burst chunk
    }
    return false;
  });
  auto rx = exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(60'000)}});
  ASSERT_EQ(rx.size(), 1u);
  const auto& st = p.a->assoc(p.a_id)->stats();
  EXPECT_GE(st.fast_retransmits, 1u);
  EXPECT_EQ(st.timeouts, 0u) << "mid-burst loss must not need T3";
  EXPECT_LT(sim::to_seconds(sim().now()), 0.5);
}

TEST_F(SctpSocketTest, TailLossRecoversViaT3) {
  build();
  auto p = connect_pair();
  bool dropped = false;
  int data_packets = 0;
  const int total = (30'000 + 1451) / 1452;  // chunks for 30 KB
  cluster_->uplink(0).faults().drop_if([&](const net::Packet& pkt) {
    if (pkt.payload.size() > 500) {  // the tail chunk is only ~960 B
      ++data_packets;
      if (data_packets == total && !dropped) {
        dropped = true;
        return true;
      }
    }
    return false;
  });
  auto rx = exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(30'000)}});
  ASSERT_EQ(rx.size(), 1u);
  EXPECT_GE(p.a->assoc(p.a_id)->stats().timeouts, 1u);
}

TEST_F(SctpSocketTest, FlowControlSmallReceiverBuffer) {
  SctpConfig cfg;
  cfg.rcvbuf = 16 * 1024;
  build(0.0, cfg);
  auto p = connect_pair();
  // Fill with 10 x 8 KiB messages; reader drains slowly.
  std::size_t next = 0;
  std::vector<std::vector<std::byte>> sent;
  for (int i = 0; i < 10; ++i) sent.push_back(pattern_bytes(8 * 1024, i));
  auto pump_tx = [&] {
    while (next < sent.size()) {
      if (p.a->sendmsg(p.a_id, 0, sent[next]) <= 0) break;
      ++next;
    }
  };
  p.a->set_activity_callback(pump_tx);
  pump_tx();
  std::vector<std::vector<std::byte>> got;
  std::vector<std::byte> buf(64 * 1024);
  std::function<void()> drain = [&] {
    RecvInfo info;
    auto n = p.b->recvmsg(buf, info);
    if (n > 0) {
      got.emplace_back(buf.begin(), buf.begin() + n);
    }
    if (got.size() < sent.size()) {
      sim().schedule_after(5 * sim::kMillisecond, drain);
    }
  };
  sim().schedule_after(5 * sim::kMillisecond, drain);
  run_while([&] { return got.size() < sent.size(); });
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], sent[i]);
}

TEST_F(SctpSocketTest, OneToManySocketHandlesMultiplePeers) {
  build(0.0, {}, 1, /*hosts=*/4);
  SctpSocket* hub = stacks_[0]->create_socket(7777);
  hub->listen();
  std::vector<SctpSocket*> peers;
  std::vector<AssocId> peer_assocs;
  for (unsigned h = 1; h < 4; ++h) {
    SctpSocket* s = stacks_[h]->create_socket();
    peer_assocs.push_back(s->connect(cluster_->addr(0), 7777));
    peers.push_back(s);
  }
  // Wait for all associations up on the hub (single socket descriptor!).
  run_while([&] { return hub->association_count() < 3; });
  run_while([&] {
    for (unsigned i = 0; i < 3; ++i) {
      if (!peers[i]->assoc(peer_assocs[i])->established()) return true;
    }
    return false;
  });
  EXPECT_EQ(hub->association_count(), 3u);
  // Each peer sends one message; the hub demultiplexes by association.
  for (unsigned i = 0; i < 3; ++i) {
    ASSERT_GT(peers[i]->sendmsg(peer_assocs[i], 0, pattern_bytes(100, i + 1)),
              0);
  }
  std::vector<std::byte> buf(4096);
  std::set<AssocId> seen;
  run_while([&] {
    RecvInfo info;
    while (hub->recvmsg(buf, info) > 0) seen.insert(info.assoc);
    return seen.size() < 3;
  });
  EXPECT_EQ(seen.size(), 3u);
}

TEST_F(SctpSocketTest, SimultaneousConnectResolvesToOneAssociation) {
  build();
  SctpSocket* sa = stacks_[0]->create_socket(4000);
  SctpSocket* sb = stacks_[1]->create_socket(4000);
  sa->listen();
  sb->listen();
  AssocId ida = sa->connect(cluster_->addr(1), 4000);
  AssocId idb = sb->connect(cluster_->addr(0), 4000);
  run_while([&] {
    return !sa->assoc(ida)->established() || !sb->assoc(idb)->established();
  });
  // Exactly one association object on each side, and data flows both ways.
  EXPECT_EQ(sa->association_count(), 1u);
  EXPECT_EQ(sb->association_count(), 1u);
  ASSERT_GT(sa->sendmsg(ida, 0, pattern_bytes(64, 1)), 0);
  ASSERT_GT(sb->sendmsg(idb, 0, pattern_bytes(64, 2)), 0);
  std::vector<std::byte> buf(4096);
  bool a_got = false, b_got = false;
  run_while([&] {
    RecvInfo info;
    if (sa->recvmsg(buf, info) > 0) a_got = true;
    if (sb->recvmsg(buf, info) > 0) b_got = true;
    return !a_got || !b_got;
  });
}

TEST_F(SctpSocketTest, BlindInjectionWithWrongVtagIsDropped) {
  build();
  auto p = connect_pair();
  Association* b = p.b->assoc(p.b_id);
  const auto before = b->stats().packets_received;
  // Forge a packet with a guessed (wrong) verification tag.
  SctpPacket forged;
  forged.sport = p.a->port();
  forged.dport = p.b->port();
  forged.vtag = b->local_vtag() ^ 0xDEAD;
  DataChunk d;
  d.begin = d.end = true;
  d.tsn = 1;
  d.payload = sctpmpi::net::SliceChain::adopt(pattern_bytes(10));
  forged.chunks.push_back(TypedChunk{ChunkType::kData, std::move(d)});
  stacks_[0]->transmit(forged, cluster_->addr(1), net::kAddrAny);
  sim().run_until(sim().now() + 10 * sim::kMillisecond);
  EXPECT_EQ(b->stats().packets_received, before);
  EXPECT_FALSE(p.b->readable());
}

TEST_F(SctpSocketTest, ForgedCookieIsRejected) {
  build();
  SctpSocket* server = stacks_[1]->create_socket(6100);
  server->listen();
  // Hand-craft a COOKIE-ECHO with a bogus signature.
  StateCookie cookie;
  cookie.local_itag = 1;
  cookie.peer_itag = 2;
  cookie.local_itsn = 3;
  cookie.peer_itsn = 4;
  cookie.peer_port = 5000;
  cookie.peer_addrs = {cluster_->addr(0)};
  cookie.timestamp = 0;
  cookie.signature = 0xBADBADBADULL;
  SctpPacket pkt;
  pkt.sport = 5000;
  pkt.dport = 6100;
  pkt.vtag = 1;
  pkt.chunks.push_back(TypedChunk{ChunkType::kCookieEcho,
                                  CookieEchoChunk{cookie.encode()}});
  stacks_[0]->transmit(pkt, cluster_->addr(1), net::kAddrAny);
  sim().run_until(sim().now() + 10 * sim::kMillisecond);
  EXPECT_EQ(server->association_count(), 0u)
      << "no resources may be committed for a forged cookie (paper §3.5.2)";
}

TEST_F(SctpSocketTest, HandshakeSurvivesInitLoss) {
  build();
  bool dropped = false;
  cluster_->uplink(0).faults().drop_if([&](const net::Packet&) {
    if (!dropped) {
      dropped = true;
      return true;  // drop the first INIT
    }
    return false;
  });
  auto p = connect_pair();
  EXPECT_TRUE(p.a->assoc(p.a_id)->established());
  EXPECT_GE(sim().now(), 3 * sim::kSecond);  // T1 initial RTO
}

TEST_F(SctpSocketTest, GracefulShutdownCompletes) {
  build();
  auto p = connect_pair();
  exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(5000)}});
  p.a->shutdown_assoc(p.a_id);
  bool a_done = false, b_done = false;
  run_while([&] {
    while (auto n = p.a->poll_notification()) {
      if (n->type == NotificationType::kShutdownComplete) a_done = true;
    }
    while (auto n = p.b->poll_notification()) {
      if (n->type == NotificationType::kShutdownComplete) b_done = true;
    }
    return !a_done || !b_done;
  });
  EXPECT_EQ(p.a->assoc(p.a_id)->state(), AssocState::kClosed);
  EXPECT_EQ(p.b->assoc(p.b_id)->state(), AssocState::kClosed);
}

TEST_F(SctpSocketTest, ShutdownFlushesPendingData) {
  build();
  auto p = connect_pair();
  auto data = pattern_bytes(150'000);
  ASSERT_GT(p.a->sendmsg(p.a_id, 0, data), 0);
  p.a->shutdown_assoc(p.a_id);  // data still in flight
  std::vector<std::byte> buf(1 << 20);
  bool got = false, closed = false;
  run_while([&] {
    RecvInfo info;
    if (p.b->recvmsg(buf, info) == static_cast<std::ptrdiff_t>(data.size()))
      got = true;
    while (auto n = p.b->poll_notification()) {
      if (n->type == NotificationType::kShutdownComplete) closed = true;
    }
    return !got || !closed;
  });
  EXPECT_TRUE(got);
}

TEST_F(SctpSocketTest, AbortNotifiesPeer) {
  build();
  auto p = connect_pair();
  p.a->abort_assoc(p.a_id);
  bool lost = false;
  run_while([&] {
    while (auto n = p.b->poll_notification()) {
      if (n->type == NotificationType::kCommLost) lost = true;
    }
    return !lost;
  });
  EXPECT_EQ(p.b->assoc(p.b_id)->state(), AssocState::kClosed);
}

TEST_F(SctpSocketTest, AutocloseClosesIdleAssociation) {
  SctpConfig cfg;
  cfg.autoclose = 2 * sim::kSecond;
  build(0.0, cfg);
  auto p = connect_pair();
  exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(100)}});
  bool closed = false;
  run_while([&] {
    while (auto n = p.a->poll_notification()) {
      if (n->type == NotificationType::kShutdownComplete) closed = true;
    }
    return !closed;
  });
  EXPECT_GE(sim().now(), 2 * sim::kSecond);
  EXPECT_EQ(p.a->assoc(p.a_id)->state(), AssocState::kClosed);
}

TEST_F(SctpSocketTest, CongestionWindowGrowsByBytesAcked) {
  build();
  auto p = connect_pair();
  const auto cwnd0 = p.a->assoc(p.a_id)->paths()[0].cwnd;
  exchange(p.a, p.a_id, p.b, {{0, pattern_bytes(200'000)}});
  EXPECT_GT(p.a->assoc(p.a_id)->paths()[0].cwnd, cwnd0);
}

TEST_F(SctpSocketTest, UnorderedDeliveryBypassesSsn) {
  build();
  auto p = connect_pair();
  int data_packets = 0;
  cluster_->uplink(0).faults().drop_if([&](const net::Packet& pkt) {
    if (pkt.payload.size() > 200) {
      ++data_packets;
      return data_packets == 1;  // lose the first (ordered) message
    }
    return false;
  });
  ASSERT_GT(p.a->sendmsg(p.a_id, 0, pattern_bytes(800, 1)), 0);
  ASSERT_GT(p.a->sendmsg(p.a_id, 0, pattern_bytes(800, 2), 0,
                         /*unordered=*/true),
            0);
  std::vector<std::byte> buf(4096);
  std::vector<bool> unordered_flags;
  run_while([&] {
    RecvInfo info;
    while (p.b->recvmsg(buf, info) > 0)
      unordered_flags.push_back(info.unordered);
    return unordered_flags.size() < 2;
  });
  EXPECT_TRUE(unordered_flags[0]) << "unordered message must arrive first";
}

TEST_F(SctpSocketTest, StaleCookieRestartsHandshake) {
  // If every COOKIE-ECHO is lost until the cookie's lifetime expires, the
  // responder answers with a stale-cookie ERROR and the initiator must
  // restart with a fresh INIT (RFC 2960 §5.2.6) instead of wedging.
  SctpConfig cfg;
  cfg.valid_cookie_life = 5 * sim::kSecond;
  build(0.0, cfg);
  SctpSocket* server = stacks_[1]->create_socket(6300);
  server->listen();
  // Drop all COOKIE-ECHO packets for the first 20 virtual seconds.
  cluster_->uplink(0).faults().drop_if([this](const net::Packet& p) {
    if (sim().now() > 20 * sim::kSecond) return false;
    auto pkt = SctpPacket::decode(p.payload, false);
    return pkt && !pkt->chunks.empty() &&
           pkt->chunks.front().type == ChunkType::kCookieEcho;
  });
  SctpSocket* client = stacks_[0]->create_socket();
  AssocId id = client->connect(cluster_->addr(1), 6300);
  run_while([&] {
    return !client->assoc(id)->established() &&
           sim().now() < 120 * sim::kSecond;
  });
  EXPECT_TRUE(client->assoc(id)->established())
      << "handshake must recover after stale-cookie errors";
}

TEST_F(SctpSocketTest, HandshakeEventuallyCompletesUnderHeavyLoss) {
  // Property: at 30% per-packet loss the four-way handshake still
  // converges (T1 retries + stale-cookie restart), for several seeds.
  for (std::uint64_t seed : {3u, 7u, 13u, 29u}) {
    SCOPED_TRACE(seed);
    build(0.30, {}, seed);
    auto p = connect_pair();
    EXPECT_TRUE(p.a->assoc(p.a_id)->established());
  }
}

TEST_F(SctpSocketTest, OneToOneAdapterParity) {
  build();
  SctpOneToOneSocket server(*stacks_[1], 6200);
  server.listen();
  SctpOneToOneSocket client(*stacks_[0]);
  client.connect(cluster_->addr(1), 6200);
  run_while([&] { return !client.connected() || !server.accept(); });
  auto msg = pattern_bytes(12'345);
  ASSERT_GT(client.send(0, msg), 0);
  std::vector<std::byte> buf(1 << 16);
  RecvInfo info;
  std::ptrdiff_t n = -1;
  run_while([&] {
    n = server.recv(buf, info);
    return n <= 0;
  });
  EXPECT_EQ(static_cast<std::size_t>(n), msg.size());
  EXPECT_TRUE(std::equal(msg.begin(), msg.end(), buf.begin()));
}

}  // namespace
}  // namespace sctpmpi::sctp
