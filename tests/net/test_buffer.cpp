// net::Buffer: ref-counted sharing, copy-on-write, and block recycling.
#include "net/buffer.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace sctpmpi::net {
namespace {

std::vector<std::byte> bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Buffer, DefaultIsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
  EXPECT_EQ(b.span().size(), 0u);
}

TEST(Buffer, AdoptsVectorWithoutCopy) {
  auto v = bytes({1, 2, 3});
  const std::byte* data = v.data();
  Buffer b(std::move(v));
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.data(), data);  // same storage, not a copy
  EXPECT_EQ(b[1], std::byte{2});
}

TEST(Buffer, CopiesShareStorage) {
  Buffer a(bytes({1, 2, 3}));
  Buffer b = a;
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a, b);
}

TEST(Buffer, MutableDataUnsharesBeforeWriting) {
  Buffer a(bytes({1, 2, 3}));
  Buffer b = a;
  b.mutable_data()[0] = std::byte{9};
  EXPECT_EQ(a[0], std::byte{1}) << "shared holder must keep pristine bytes";
  EXPECT_EQ(b[0], std::byte{9});
  EXPECT_NE(a.data(), b.data());
}

TEST(Buffer, MutableDataInPlaceWhenUnshared) {
  Buffer a(bytes({1, 2, 3}));
  const std::byte* data = a.data();
  a.mutable_data()[2] = std::byte{7};
  EXPECT_EQ(a.data(), data);  // sole owner: no copy
  EXPECT_EQ(a[2], std::byte{7});
}

TEST(Buffer, ResizeOnEmptyAndCopyOnWrite) {
  Buffer a;
  a.resize(4);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(a[3], std::byte{0});
  Buffer b = a;
  b.resize(2);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(Buffer, EqualityComparesContents) {
  Buffer a(bytes({1, 2}));
  Buffer b(bytes({1, 2}));
  Buffer c(bytes({1, 3}));
  EXPECT_EQ(a, b);  // distinct blocks, same bytes
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(a == bytes({1, 2}));
  EXPECT_FALSE(a == bytes({1}));
}

TEST(Buffer, BuilderSealsPooledBlock) {
  Buffer::Builder builder;
  builder.bytes().push_back(std::byte{5});
  builder.bytes().push_back(std::byte{6});
  Buffer b = std::move(builder).finish();
  EXPECT_EQ(b, bytes({5, 6}));
}

TEST(Buffer, BlocksAreRecycledThroughThePool) {
  // Warm the pool, then check that fresh buffers reuse a recycled block
  // (recycled vectors keep their capacity, so steady state reallocates
  // nothing). Pointer reuse is how we observe recycling.
  const std::byte* first;
  {
    Buffer warm(std::vector<std::byte>(256));
    first = warm.data();
  }
  Buffer again;
  again.resize(256);
  EXPECT_EQ(again.data(), first);
}

TEST(Buffer, PacketCopySharesPayloadUntilCorruption) {
  Packet p;
  p.payload = bytes({1, 2, 3, 4});
  Packet dup = p;  // link-level duplication: refcount bump, no memcpy
  EXPECT_EQ(p.payload.data(), dup.payload.data());
  dup.payload.mutable_data()[0] ^= std::byte{0xFF};
  EXPECT_EQ(p.payload[0], std::byte{1});
  EXPECT_NE(dup.payload[0], std::byte{1});
}

TEST(Buffer, HandoffKeepsSoleOwnershipWithoutCopying) {
  Buffer b = bytes({1, 2, 3});
  const std::byte* block = b.data();
  b.detach_for_handoff();  // refcount 1: same block travels
  b.adopt_after_handoff();
  EXPECT_EQ(b.data(), block);
  EXPECT_EQ(b, bytes({1, 2, 3}));
}

TEST(Buffer, HandoffClonesWhenThePayloadIsShared) {
  Buffer b = bytes({7, 8, 9});
  Buffer keeper = b;  // e.g. a retransmit queue still references the bytes
  b.detach_for_handoff();
  b.adopt_after_handoff();
  EXPECT_NE(b.data(), keeper.data());  // the traveling copy got its own block
  EXPECT_EQ(b, keeper);               // ... with identical bytes
  EXPECT_EQ(keeper, bytes({7, 8, 9}));
}

TEST(CopyStats, CountsExactlyAcrossThreads) {
  // The ledger is per-thread internally; get() must still aggregate to the
  // exact global sum, including counts from threads that already exited.
  CopyStats::reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([] {
        const std::vector<std::byte> src(3, std::byte{0x5A});
        for (int i = 0; i < kPerThread; ++i) {
          count_payload_copy(2);
          // copy_of counts 3 ingest bytes and cycles this thread's block
          // pool (whose parked freelist must not leak at thread exit).
          const Buffer b = Buffer::copy_of(src);
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  const CopyStats after = CopyStats::get();
  constexpr std::uint64_t kOps =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(after.payload_copy_bytes, kOps * 2);
  EXPECT_EQ(after.ingest_bytes, kOps * 3);
  CopyStats::reset();
  const CopyStats zero = CopyStats::get();
  EXPECT_EQ(zero.payload_copy_bytes, 0u);
  EXPECT_EQ(zero.ingest_bytes, 0u);
}

}  // namespace
}  // namespace sctpmpi::net
