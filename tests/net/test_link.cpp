#include "net/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {
namespace {

using sim::kMicrosecond;
using sim::Rng;
using sim::Simulator;
using sim::SimTime;

Packet make_packet(std::size_t payload_bytes) {
  Packet p;
  p.src = make_addr(0, 0);
  p.dst = make_addr(0, 1);
  p.payload.resize(payload_bytes);
  return p;
}

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  Simulator s;
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = 5 * kMicrosecond;
  Link link(s, params, Rng(1));
  SimTime arrival = -1;
  link.set_sink([&](Packet&&) { arrival = s.now(); });
  // 1480 payload + 20 IP header = 1500 bytes = 12000 bits -> 12 us at 1Gb/s.
  link.enqueue(make_packet(1480));
  s.run();
  EXPECT_EQ(arrival, 12 * kMicrosecond + 5 * kMicrosecond);
}

TEST(Link, BackToBackPacketsSerializeSequentially) {
  Simulator s;
  LinkParams params;
  params.rate_bps = 1e9;
  params.delay = 0;
  Link link(s, params, Rng(1));
  std::vector<SimTime> arrivals;
  link.set_sink([&](Packet&&) { arrivals.push_back(s.now()); });
  link.enqueue(make_packet(1480));
  link.enqueue(make_packet(1480));
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], 12 * kMicrosecond);
  EXPECT_EQ(arrivals[1], 24 * kMicrosecond);
}

TEST(Link, QueueOverflowDropsTail) {
  Simulator s;
  LinkParams params;
  params.queue_packets = 4;
  Link link(s, params, Rng(1));
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  for (int i = 0; i < 10; ++i) link.enqueue(make_packet(1000));
  s.run();
  // 4 queued + possibly the one being serialized still counts in queue:
  // our model keeps the head in the queue during serialization, so exactly
  // queue_packets are accepted.
  EXPECT_EQ(delivered, 4);
  EXPECT_EQ(link.stats().drops_queue, 6u);
}

TEST(Link, ZeroLossDeliversEverything) {
  Simulator s;
  Link link(s, LinkParams{}, Rng(1));
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  for (int i = 0; i < 100; ++i) {
    link.enqueue(make_packet(100));
    s.run();
  }
  EXPECT_EQ(delivered, 100);
  EXPECT_EQ(link.stats().drops_loss, 0u);
}

TEST(Link, LossRateMatchesConfiguredProbability) {
  Simulator s;
  LinkParams params;
  params.loss = 0.02;
  Link link(s, params, Rng(42));
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    link.enqueue(make_packet(10));
    s.run();
  }
  const double loss_rate = 1.0 - static_cast<double>(delivered) / n;
  EXPECT_NEAR(loss_rate, 0.02, 0.004);
  EXPECT_EQ(link.stats().drops_loss + static_cast<std::uint64_t>(delivered),
            static_cast<std::uint64_t>(n));
}

TEST(Link, LossIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    Simulator s;
    LinkParams params;
    params.loss = 0.1;
    Link link(s, params, Rng(seed));
    std::vector<int> delivered;
    link.set_sink([&](Packet&& p) {
      delivered.push_back(static_cast<int>(p.payload.size()));
    });
    for (int i = 0; i < 200; ++i) {
      link.enqueue(make_packet(static_cast<std::size_t>(i)));
      s.run();
    }
    return delivered;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));
}

TEST(Link, SetLossReconfiguresLikeDummynet) {
  Simulator s;
  Link link(s, LinkParams{}, Rng(3));
  int delivered = 0;
  link.set_sink([&](Packet&&) { ++delivered; });
  link.set_loss(1.0);
  link.enqueue(make_packet(10));
  s.run();
  EXPECT_EQ(delivered, 0);
  link.set_loss(0.0);
  link.enqueue(make_packet(10));
  s.run();
  EXPECT_EQ(delivered, 1);
}

TEST(Link, StatsCountBytesIncludingIpHeader) {
  Simulator s;
  Link link(s, LinkParams{}, Rng(1));
  link.set_sink([](Packet&&) {});
  link.enqueue(make_packet(100));
  s.run();
  EXPECT_EQ(link.stats().tx_packets, 1u);
  EXPECT_EQ(link.stats().tx_bytes, 100u + kIpHeaderBytes);
}

}  // namespace
}  // namespace sctpmpi::net
