// Determinism of the loss machinery: LossModel replays bit-identically from
// a seed, and Rng::fork produces per-link streams that are independent of
// each other — the foundation the fault-injection framework and the golden
// traces rest on.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/loss.hpp"
#include "sim/rng.hpp"

namespace sctpmpi::net {
namespace {

std::vector<bool> drop_sequence(sim::Rng rng, double p, std::size_t n) {
  LossModel m(rng, p);
  std::vector<bool> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = m.should_drop();
  return out;
}

TEST(LossModel, SameSeedReplaysIdenticalDropSequence) {
  const auto a = drop_sequence(sim::Rng(123), 0.1, 5000);
  const auto b = drop_sequence(sim::Rng(123), 0.1, 5000);
  EXPECT_EQ(a, b);
  // And it is a real 10% process, not degenerate.
  const auto drops = std::count(a.begin(), a.end(), true);
  EXPECT_GT(drops, 5000 * 0.06);
  EXPECT_LT(drops, 5000 * 0.15);
}

TEST(LossModel, ZeroProbabilityNeverDropsAndDrawsNothing) {
  // p = 0 must not consume rng state: the stream stays aligned with a
  // model that never existed (golden traces depend on this).
  sim::Rng rng(7);
  LossModel m(rng, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(m.should_drop());
}

TEST(LossModel, ForkedStreamsAreDeterministic) {
  // fork(k) twice from equal parents yields equal children.
  sim::Rng a(99), b(99);
  auto fa = a.fork(5), fb = b.fork(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next(), fb.next());
}

TEST(LossModel, DistinctForksAreUncorrelated) {
  // Two per-link streams forked from one root: their drop decisions at
  // p = 0.5 should agree about half the time, nowhere near always.
  sim::Rng root(2024);
  const auto a = drop_sequence(root.fork(1), 0.5, 4000);
  const auto b = drop_sequence(root.fork(2), 0.5, 4000);
  EXPECT_NE(a, b);
  std::size_t agree = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++agree;
  }
  const double frac = static_cast<double>(agree) / static_cast<double>(a.size());
  EXPECT_GT(frac, 0.45);
  EXPECT_LT(frac, 0.55);
}

TEST(LossModel, ForkDoesNotPerturbParentStream) {
  // fork() is const: deriving any number of children leaves the parent's
  // sequence untouched, so adding a fault stage never shifts another's draws.
  sim::Rng a(31), b(31);
  (void)a.fork(17);
  (void)a.fork(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace sctpmpi::net
