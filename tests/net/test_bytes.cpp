#include "net/bytes.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "net/ring_buffer.hpp"
#include "sim/rng.hpp"

namespace sctpmpi::net {
namespace {

TEST(ByteCodec, WriterReaderRoundTrip) {
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  std::array<std::byte, 3> raw{std::byte{1}, std::byte{2}, std::byte{3}};
  w.bytes(raw);
  w.zeros(2);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.bytes(3), std::vector<std::byte>(raw.begin(), raw.end()));
  EXPECT_EQ(r.remaining(), 2u);
  r.skip(2);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(ByteCodec, BigEndianLayout) {
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  w.u32(0x01020304);
  EXPECT_EQ(buf[0], std::byte{1});
  EXPECT_EQ(buf[3], std::byte{4});
}

TEST(ByteCodec, PatchRewritesInPlace) {
  std::vector<std::byte> buf;
  ByteWriter w(buf);
  w.u16(0);
  w.u32(0);
  w.patch_u16(0, 0xBEEF);
  w.patch_u32(2, 0xCAFEF00D);
  ByteReader r(buf);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xCAFEF00Du);
}

TEST(ByteCodec, UnderrunThrows) {
  std::vector<std::byte> buf(3);
  ByteReader r(buf);
  EXPECT_THROW(r.u32(), DecodeError);  // partial reads advance, then throw
  ByteReader r2(buf);
  r2.skip(3);
  EXPECT_THROW(r2.u8(), DecodeError);
  EXPECT_THROW(r2.skip(1), DecodeError);
}

// ---- RingBuffer -----------------------------------------------------------

TEST(RingBuffer, BasicWriteReadCycle) {
  RingBuffer rb(16);
  std::array<std::byte, 10> in;
  for (int i = 0; i < 10; ++i) in[static_cast<std::size_t>(i)] = std::byte(i);
  EXPECT_EQ(rb.write(in), 10u);
  EXPECT_EQ(rb.size(), 10u);
  std::array<std::byte, 10> out;
  EXPECT_EQ(rb.read(out), 10u);
  EXPECT_EQ(out, in);
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WriteTruncatesAtCapacity) {
  RingBuffer rb(8);
  std::vector<std::byte> in(12, std::byte{7});
  EXPECT_EQ(rb.write(in), 8u);
  EXPECT_EQ(rb.free_space(), 0u);
  EXPECT_EQ(rb.write(in), 0u);
}

TEST(RingBuffer, PeekDoesNotConsume) {
  RingBuffer rb(8);
  std::array<std::byte, 4> in{std::byte{1}, std::byte{2}, std::byte{3},
                              std::byte{4}};
  rb.write(in);
  std::array<std::byte, 2> peeked;
  rb.peek(1, peeked);
  EXPECT_EQ(peeked[0], std::byte{2});
  EXPECT_EQ(peeked[1], std::byte{3});
  EXPECT_EQ(rb.size(), 4u);
}

TEST(RingBuffer, WrapAroundPreservesData) {
  RingBuffer rb(8);
  std::vector<std::byte> a(6, std::byte{1});
  std::array<std::byte, 6> out;
  rb.write(a);
  rb.read(out);
  // Head is now at 6; the next write wraps.
  std::vector<std::byte> b{std::byte{9}, std::byte{8}, std::byte{7},
                           std::byte{6}, std::byte{5}};
  EXPECT_EQ(rb.write(b), 5u);
  std::array<std::byte, 5> out2;
  EXPECT_EQ(rb.read(out2), 5u);
  EXPECT_TRUE(std::equal(b.begin(), b.end(), out2.begin()));
}

TEST(RingBuffer, PropertyRandomOpsMatchReferenceDeque) {
  sim::Rng rng(99);
  RingBuffer rb(64);
  std::deque<std::byte> ref;
  for (int step = 0; step < 5000; ++step) {
    if (rng.chance(0.5)) {
      const auto n = static_cast<std::size_t>(rng.uniform_int(20));
      std::vector<std::byte> data(n);
      for (auto& d : data)
        d = static_cast<std::byte>(rng.uniform_int(256));
      const std::size_t accepted = rb.write(data);
      EXPECT_EQ(accepted, std::min(n, 64 - ref.size()));
      ref.insert(ref.end(), data.begin(),
                 data.begin() + static_cast<std::ptrdiff_t>(accepted));
    } else {
      const auto n = static_cast<std::size_t>(rng.uniform_int(20));
      std::vector<std::byte> out(n);
      const std::size_t got = rb.read(out);
      EXPECT_EQ(got, std::min(n, ref.size()));
      for (std::size_t i = 0; i < got; ++i) {
        EXPECT_EQ(out[i], ref.front());
        ref.pop_front();
      }
    }
    EXPECT_EQ(rb.size(), ref.size());
  }
}

}  // namespace
}  // namespace sctpmpi::net
