// Unit tests for the run-length serial-space containers, with particular
// attention to behaviour across the 2^32 wrap: every transport scoreboard
// built on these must keep working when TSNs/sequence numbers roll over.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "net/seq_ranges.hpp"

namespace sctpmpi::net {
namespace {

// ---- SeqRuns ---------------------------------------------------------------

TEST(SeqRuns, InsertMergesAdjacentAndOverlapping) {
  SeqRuns r;
  EXPECT_EQ(r.insert(10, 20), 10u);
  EXPECT_EQ(r.insert(30, 40), 10u);
  EXPECT_EQ(r.run_count(), 2u);
  // Adjacent on the left run's right edge: merge, no new gap.
  EXPECT_EQ(r.insert(20, 25), 5u);
  EXPECT_EQ(r.run_count(), 2u);
  EXPECT_EQ(r.front(), (SeqRuns::Run{10, 25}));
  // Bridge the gap: one run remains.
  EXPECT_EQ(r.insert(22, 32), 5u);
  EXPECT_EQ(r.run_count(), 1u);
  EXPECT_EQ(r.front(), (SeqRuns::Run{10, 40}));
  EXPECT_EQ(r.value_count(), 30u);
  // Fully covered insert adds nothing.
  EXPECT_EQ(r.insert(12, 38), 0u);
  EXPECT_EQ(r.value_count(), 30u);
}

TEST(SeqRuns, InsertValueReportsDuplicates) {
  SeqRuns r;
  EXPECT_TRUE(r.insert_value(100));
  EXPECT_FALSE(r.insert_value(100));
  EXPECT_TRUE(r.insert_value(102));
  EXPECT_EQ(r.run_count(), 2u);
  EXPECT_TRUE(r.insert_value(101));  // closes the gap
  EXPECT_EQ(r.run_count(), 1u);
  EXPECT_EQ(r.front(), (SeqRuns::Run{100, 103}));
}

TEST(SeqRuns, ContainsAndContainsRange) {
  SeqRuns r;
  r.insert(10, 20);
  r.insert(30, 40);
  EXPECT_TRUE(r.contains(10));
  EXPECT_TRUE(r.contains(19));
  EXPECT_FALSE(r.contains(20));
  EXPECT_FALSE(r.contains(25));
  EXPECT_TRUE(r.contains_range(12, 18));
  EXPECT_TRUE(r.contains_range(10, 20));
  EXPECT_FALSE(r.contains_range(15, 25));
  EXPECT_FALSE(r.contains_range(15, 35));  // straddles the hole
}

TEST(SeqRuns, EraseBelowDropsAndTrims) {
  SeqRuns r;
  r.insert(10, 20);
  r.insert(30, 40);
  r.insert(50, 60);
  r.erase_below(35);  // drops [10,20), trims [30,40) to [35,40)
  EXPECT_EQ(r.run_count(), 2u);
  EXPECT_EQ(r.front(), (SeqRuns::Run{35, 40}));
  EXPECT_EQ(r.value_count(), 15u);
  r.erase_below(100);
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.value_count(), 0u);
}

TEST(SeqRuns, NextHoleMatchesRtxScanSemantics) {
  SeqRuns r;
  // Empty scoreboard: no information at all.
  EXPECT_EQ(r.next_hole(100), std::nullopt);
  r.insert(10, 20);
  r.insert(30, 40);
  EXPECT_EQ(r.next_hole(5), std::optional<std::uint32_t>(5));
  EXPECT_EQ(r.next_hole(10), std::optional<std::uint32_t>(20));
  EXPECT_EQ(r.next_hole(15), std::optional<std::uint32_t>(20));
  EXPECT_EQ(r.next_hole(20), std::optional<std::uint32_t>(20));
  EXPECT_EQ(r.next_hole(35), std::nullopt);  // beyond highest SACKed edge
  EXPECT_EQ(r.next_hole(40), std::nullopt);
}

TEST(SeqRuns, PopFrontAfterManyRunsStaysConsistent) {
  SeqRuns r;
  // 100 disjoint runs, then retire from the front to exercise head_
  // compaction.
  for (std::uint32_t i = 0; i < 100; ++i) r.insert(i * 10, i * 10 + 4);
  EXPECT_EQ(r.run_count(), 100u);
  for (std::uint32_t i = 0; i < 80; ++i) r.pop_front();
  EXPECT_EQ(r.run_count(), 20u);
  EXPECT_EQ(r.front(), (SeqRuns::Run{800, 804}));
  EXPECT_EQ(r.value_count(), 20u * 4u);
  EXPECT_TRUE(r.contains(990));
  EXPECT_FALSE(r.contains(790));
}

TEST(SeqRuns, WorksAcrossSerialWrap) {
  SeqRuns r;
  const std::uint32_t near_top = 0xFFFFFFF0u;
  // A run that straddles the wrap: [0xFFFFFFF0, 0x10) in serial space.
  EXPECT_EQ(r.insert(near_top, 0x10u), 0x20u);
  EXPECT_EQ(r.run_count(), 1u);
  EXPECT_TRUE(r.contains(0xFFFFFFFFu));
  EXPECT_TRUE(r.contains(0u));
  EXPECT_TRUE(r.contains(0xFu));
  EXPECT_FALSE(r.contains(0x10u));
  EXPECT_TRUE(r.contains_range(0xFFFFFFF8u, 0x8u));
  // Merge across the wrap from both sides.
  EXPECT_EQ(r.insert(0x10u, 0x20u), 0x10u);
  EXPECT_EQ(r.run_count(), 1u);
  EXPECT_EQ(r.front(), (SeqRuns::Run{near_top, 0x20u}));
  // erase_below with a bound past the wrap point.
  r.erase_below(0x8u);
  EXPECT_EQ(r.front(), (SeqRuns::Run{0x8u, 0x20u}));
  EXPECT_EQ(r.value_count(), 0x18u);
}

TEST(SeqRuns, NextHoleAcrossWrap) {
  SeqRuns r;
  r.insert(0xFFFFFFF0u, 0xFFFFFFF8u);
  r.insert(0x4u, 0x8u);
  EXPECT_EQ(r.next_hole(0xFFFFFFF0u),
            std::optional<std::uint32_t>(0xFFFFFFF8u));
  EXPECT_EQ(r.next_hole(0xFFFFFFFAu),
            std::optional<std::uint32_t>(0xFFFFFFFAu));
  EXPECT_EQ(r.next_hole(0x4u), std::nullopt);
}

TEST(SeqRuns, DuplicateDetectionAcrossWrap) {
  SeqRuns r;
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(r.insert_value(0xFFFFFFFCu + i));
  }
  EXPECT_EQ(r.run_count(), 1u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(r.insert_value(0xFFFFFFFCu + i));
  }
  EXPECT_EQ(r.value_count(), 8u);
}

// ---- SeqIndexedQueue -------------------------------------------------------

TEST(SeqIndexedQueue, PushPopFindBasics) {
  SeqIndexedQueue<int> q;
  EXPECT_TRUE(q.empty());
  for (std::uint32_t i = 0; i < 10; ++i) q.push_back(1000 + i, 100 + i);
  EXPECT_EQ(q.size(), 10u);
  EXPECT_EQ(q.base(), 1000u);
  EXPECT_EQ(q.front(), 100);
  EXPECT_EQ(q.at_offset(7), 107);
  EXPECT_EQ(q.key_at(7), 1007u);
  ASSERT_NE(q.find(1003), nullptr);
  EXPECT_EQ(*q.find(1003), 103);
  EXPECT_EQ(q.find(999), nullptr);
  EXPECT_EQ(q.find(1010), nullptr);
  q.pop_front();
  EXPECT_EQ(q.base(), 1001u);
  EXPECT_EQ(q.index_of(1001), 0);
  EXPECT_EQ(q.index_of(1000), -1);
}

TEST(SeqIndexedQueue, GrowsPastInitialCapacityAcrossWrap) {
  SeqIndexedQueue<std::uint32_t> q;
  const std::uint32_t first = 0xFFFFFFB0u;  // wraps after 80 pushes
  for (std::uint32_t i = 0; i < 300; ++i) q.push_back(first + i, i + 0u);
  EXPECT_EQ(q.size(), 300u);
  EXPECT_EQ(q.base(), first);
  // Keys and values stay aligned through growth and the 2^32 wrap.
  for (std::uint32_t i = 0; i < 300; ++i) {
    EXPECT_EQ(q.key_at(i), first + i);
    EXPECT_EQ(q.at_offset(i), i);
  }
  ASSERT_NE(q.find(0x0u), nullptr);
  EXPECT_EQ(*q.find(0x0u), 0x50u);
  // Retire across the wrap point.
  for (std::uint32_t i = 0; i < 150; ++i) q.pop_front();
  EXPECT_EQ(q.base(), first + 150);
  EXPECT_EQ(q.front(), 150u);
  EXPECT_EQ(q.find(first + 10), nullptr);
  for (std::uint32_t i = 0; i < 150; ++i) q.pop_front();
  EXPECT_TRUE(q.empty());
}

TEST(SeqIndexedQueue, ReusableAfterClearAndEmpty) {
  SeqIndexedQueue<int> q;
  q.push_back(5, 50);
  q.push_back(6, 60);
  q.clear();
  EXPECT_TRUE(q.empty());
  // A fresh base is adopted on the first push after clear.
  q.push_back(0xFFFFFFFFu, 1);
  q.push_back(0x0u, 2);
  EXPECT_EQ(q.base(), 0xFFFFFFFFu);
  EXPECT_EQ(q.at_offset(1), 2);
  q.pop_front();
  q.pop_front();
  EXPECT_TRUE(q.empty());
  q.push_back(42, 7);
  EXPECT_EQ(q.base(), 42u);
}

}  // namespace
}  // namespace sctpmpi::net
