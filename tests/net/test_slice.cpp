// Slice-layer unit tests: BufferSlice views, SliceChain descriptor
// algebra, SliceQueue RingBuffer-parity accounting, and the copy-budget
// counters that pin where the datapath is allowed to touch bytes.
#include <gtest/gtest.h>

#include <cstddef>
#include <numeric>
#include <vector>

#include "net/buffer.hpp"
#include "net/slice.hpp"

namespace {

using sctpmpi::net::Buffer;
using sctpmpi::net::BufferSlice;
using sctpmpi::net::CopyStats;
using sctpmpi::net::SliceChain;
using sctpmpi::net::SliceQueue;

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  unsigned x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    v[i] = static_cast<std::byte>(x >> 24);
  }
  return v;
}

TEST(BufferSlice, WholeViewAndSub) {
  const auto bytes = pattern(64);
  Buffer buf{std::vector<std::byte>(bytes)};
  const BufferSlice whole{buf};
  EXPECT_EQ(whole.off, 0u);
  EXPECT_EQ(whole.len, 64u);

  const BufferSlice mid = whole.sub(10, 20);
  ASSERT_EQ(mid.len, 20u);
  EXPECT_TRUE(std::equal(mid.span().begin(), mid.span().end(),
                         bytes.begin() + 10));

  // Sub-of-sub composes offsets; tail overload runs to the end.
  const BufferSlice tail = mid.sub(5);
  ASSERT_EQ(tail.len, 15u);
  EXPECT_TRUE(std::equal(tail.span().begin(), tail.span().end(),
                         bytes.begin() + 15));

  // Slices share the underlying block: no reallocation, same data pointer.
  EXPECT_EQ(mid.buf.data(), buf.data());
  EXPECT_EQ(whole.sub(0, 0).empty(), true);
}

TEST(SliceChain, PushBackSkipsEmptyAndTracksSize) {
  SliceChain c;
  EXPECT_TRUE(c.empty());
  c.push_back(BufferSlice{});  // len == 0: dropped
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.slices().size(), 0u);

  Buffer buf{pattern(32)};
  c.push_back(BufferSlice{buf}.sub(0, 16));
  c.push_back(BufferSlice{buf}.sub(16, 0));  // dropped
  c.push_back(BufferSlice{buf}.sub(16, 16));
  EXPECT_EQ(c.size(), 32u);
  EXPECT_EQ(c.slices().size(), 2u);
  EXPECT_EQ(c.to_vector(), std::vector<std::byte>(buf.begin(), buf.end()));
}

// Model test: a chain built from arbitrary slice cuts must behave exactly
// like the flat byte vector it represents, under subchain / trim_front /
// append / copy_to.
TEST(SliceChain, MatchesFlatVectorModel) {
  const auto flat = pattern(1000, 7);
  Buffer buf{std::vector<std::byte>(flat)};
  const BufferSlice whole{buf};

  // Cut into uneven pieces.
  SliceChain c;
  const std::size_t cuts[] = {1, 13, 256, 300, 430};
  std::size_t off = 0;
  for (std::size_t n : cuts) {
    c.push_back(whole.sub(off, n));
    off += n;
  }
  ASSERT_EQ(off, flat.size());
  EXPECT_TRUE(c == flat);
  EXPECT_EQ(c.to_vector(), flat);

  // subchain at slice-interior boundaries.
  for (std::size_t from : {0u, 1u, 13u, 14u, 269u, 999u}) {
    for (std::size_t len : {0u, 1u, 5u, 700u}) {
      if (from + len > flat.size()) continue;
      const SliceChain sub = c.subchain(from, len);
      const std::vector<std::byte> want(flat.begin() + from,
                                        flat.begin() + from + len);
      EXPECT_TRUE(sub == want) << "subchain(" << from << "," << len << ")";
    }
  }

  // trim_front across whole-slice and mid-slice boundaries.
  SliceChain t = c.subchain(0);
  t.trim_front(14);  // drops first slice (1) + whole of second (13)
  EXPECT_EQ(t.size(), flat.size() - 14);
  t.trim_front(100);  // mid-slice
  std::vector<std::byte> got(t.size());
  t.raw_copy_to(got);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), flat.begin() + 114));

  // copy_to with offset.
  std::vector<std::byte> window(55);
  c.copy_to(window, 400);
  EXPECT_TRUE(std::equal(window.begin(), window.end(), flat.begin() + 400));

  // append (copy and move forms) concatenates byte strings.
  SliceChain a = c.subchain(0, 500);
  SliceChain b = c.subchain(500);
  SliceChain joined;
  joined.append(a);
  joined.append(std::move(b));
  EXPECT_TRUE(joined == flat);
  EXPECT_TRUE(b.empty());  // moved-from chain is cleared
}

TEST(SliceChain, AdoptAndCopyOfOwnership) {
  auto bytes = pattern(48, 3);
  const auto want = bytes;
  const SliceChain adopted = SliceChain::adopt(std::move(bytes));
  EXPECT_TRUE(adopted == want);

  CopyStats::reset();
  const SliceChain copied = SliceChain::copy_of(want);
  EXPECT_TRUE(copied == want);
  // copy_of is an ingest, not a payload copy.
  EXPECT_EQ(CopyStats::get().ingest_bytes, want.size());
  EXPECT_EQ(CopyStats::get().payload_copy_bytes, 0u);
  EXPECT_TRUE(SliceChain::copy_of({}).empty());
}

TEST(SliceQueue, RingBufferParityAccounting) {
  SliceQueue q(100);
  EXPECT_EQ(q.capacity(), 100u);
  EXPECT_EQ(q.free_space(), 100u);

  // Partial accept on raw-span write.
  const auto data = pattern(150, 9);
  EXPECT_EQ(q.write(std::span<const std::byte>(data)), 100u);
  EXPECT_EQ(q.size(), 100u);
  EXPECT_EQ(q.free_space(), 0u);
  EXPECT_EQ(q.write(std::span<const std::byte>(data)), 0u);

  // peek does not consume.
  std::vector<std::byte> head(10);
  q.peek(0, head);
  EXPECT_TRUE(std::equal(head.begin(), head.end(), data.begin()));
  EXPECT_EQ(q.size(), 100u);

  // read drains from the front; drop trims descriptors.
  std::vector<std::byte> out(30);
  EXPECT_EQ(q.read(out), 30u);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin()));
  q.drop(20);
  EXPECT_EQ(q.size(), 50u);
  std::vector<std::byte> rest(50);
  EXPECT_EQ(q.read(rest), 50u);
  EXPECT_TRUE(std::equal(rest.begin(), rest.end(), data.begin() + 50));
  EXPECT_TRUE(q.empty());
}

TEST(SliceQueue, ZeroCopyWritesAndGather) {
  const auto flat = pattern(200, 11);
  Buffer buf{std::vector<std::byte>(flat)};
  const BufferSlice whole{buf};

  SliceQueue q(120);
  // Slice write: partial accept keeps a prefix view, no byte copy.
  CopyStats::reset();
  EXPECT_EQ(q.write(whole.sub(0, 80)), 80u);
  SliceChain rest;
  rest.push_back(whole.sub(80, 60));
  rest.push_back(whole.sub(140, 60));
  EXPECT_EQ(q.write(rest), 40u);  // fills to capacity mid-chain
  EXPECT_EQ(CopyStats::get().payload_copy_bytes, 0u);
  EXPECT_EQ(CopyStats::get().ingest_bytes, 0u);

  // gather returns views over queued bytes (still no copy).
  const SliceChain seg = q.gather(70, 30);
  const std::vector<std::byte> want(flat.begin() + 70, flat.begin() + 100);
  EXPECT_TRUE(seg == want);
  EXPECT_EQ(CopyStats::get().payload_copy_bytes, 0u);

  // A gathered view stays valid after the queue drops those bytes
  // (retransmission safety: slices pin the Buffer refcount).
  q.drop(120);
  EXPECT_TRUE(seg == want);
}

TEST(CopyBudget, BuilderAndChainCountOnlyPayloadPaths) {
  const auto flat = pattern(512, 13);
  Buffer body{std::vector<std::byte>(flat)};

  CopyStats::reset();
  Buffer::Builder b;
  const std::byte header[8] = {};
  b.append(std::span<const std::byte>(header));  // header bytes: uncounted
  EXPECT_EQ(CopyStats::get().payload_copy_bytes, 0u);

  SliceChain chain{BufferSlice{body}};
  chain.append_to(b);  // wire encode of the body: the one send-side copy
  EXPECT_EQ(CopyStats::get().payload_copy_bytes, flat.size());

  const Buffer wire = std::move(b).finish();
  ASSERT_EQ(wire.size(), 8 + flat.size());
  EXPECT_TRUE(std::equal(flat.begin(), flat.end(), wire.begin() + 8));

  // Receive side: copy_to is counted, raw_copy_to is not.
  std::vector<std::byte> user(flat.size());
  CopyStats::reset();
  chain.raw_copy_to(user);
  EXPECT_EQ(CopyStats::get().payload_copy_bytes, 0u);
  chain.copy_to(user);
  EXPECT_EQ(CopyStats::get().payload_copy_bytes, flat.size());
  EXPECT_EQ(user, flat);
}

}  // namespace
