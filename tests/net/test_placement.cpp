// compute_placement(): the greedy balance + min-cut refinement that maps
// placement groups onto shards from a measured LoadProfile. Everything
// here is single-threaded and must be exactly deterministic — the sharded
// driver's rerun-identity contract inherits it.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "net/placement.hpp"

namespace sctpmpi::net {
namespace {

std::vector<std::vector<unsigned>> singleton_groups(unsigned hosts) {
  std::vector<std::vector<unsigned>> g;
  for (unsigned h = 0; h < hosts; ++h) g.push_back({h});
  return g;
}

TEST(Placement, EqualLoadsRoundRobinInGroupOrder) {
  LoadProfile p(6);
  for (unsigned h = 0; h < 6; ++h) p.record_send(h, 0);
  const auto map = compute_placement(p, singleton_groups(6), 3);
  // Equal loads: LPT keeps group order and each group lands on the
  // lowest-index least-loaded shard, so groups cycle 0,1,2,0,1,2.
  EXPECT_EQ(map, (std::vector<unsigned>{0, 1, 2, 0, 1, 2}));
}

TEST(Placement, BalancesUnevenLoads) {
  LoadProfile p(4);
  // Loads 8,1,1,6 (in send units): LPT puts 8 alone and packs 6+1+1
  // against it.
  for (int i = 0; i < 8; ++i) p.record_send(0, 0);
  p.record_send(1, 0);
  p.record_send(2, 0);
  for (int i = 0; i < 6; ++i) p.record_send(3, 0);
  const auto map = compute_placement(p, singleton_groups(4), 2);
  EXPECT_EQ(map[0], 0u);
  EXPECT_EQ(map[3], 1u);
  EXPECT_EQ(map[1], map[3]);
  EXPECT_EQ(map[2], map[3]);
}

TEST(Placement, GroupsStayCoLocated) {
  LoadProfile p(8);
  for (unsigned h = 0; h < 8; ++h) p.record_send(h, 1024);
  // Two ToR-style blocks of four; they may never be split.
  const std::vector<std::vector<unsigned>> groups = {{0, 1, 2, 3},
                                                     {4, 5, 6, 7}};
  const auto map = compute_placement(p, groups, 2);
  EXPECT_EQ(map[0], map[1]);
  EXPECT_EQ(map[1], map[2]);
  EXPECT_EQ(map[2], map[3]);
  EXPECT_EQ(map[4], map[5]);
  EXPECT_EQ(map[5], map[6]);
  EXPECT_EQ(map[6], map[7]);
  EXPECT_NE(map[0], map[4]);
}

TEST(Placement, MinCutPullsChattyPeersOntoOneShard) {
  // Hosts 0 and 3 exchange heavy traffic, 1 and 2 are quiet but loaded.
  // The LPT pass balances by load alone and splits the chatty pair; the
  // min-cut sweep must migrate until it shares a shard.
  LoadProfile p(4);
  for (unsigned h = 0; h < 4; ++h) p.record_send(h, 1024);
  for (int i = 0; i < 50; ++i) {
    p.record_delivery(0, 3, 64);
    p.record_delivery(3, 0, 64);
  }
  // The deliveries add load to 0 and 3; equalize 1 and 2 so the slack
  // bound does not pin the heavy pair apart.
  for (int i = 0; i < 100; ++i) {
    p.record_send(1, 0);
    p.record_send(2, 0);
  }
  const auto map = compute_placement(p, singleton_groups(4), 2, 0.5);
  EXPECT_EQ(map[0], map[3]) << "heavy 0<->3 pair left split across shards";
}

TEST(Placement, SlackBoundsTheImbalanceMinCutMayIntroduce) {
  // Everyone talks to host 0. With zero slack no migration fits, so the
  // balanced LPT split must survive even though the cut would love to put
  // all four hosts on one shard.
  LoadProfile p(4);
  for (unsigned h = 0; h < 4; ++h) p.record_send(h, 1024);
  for (unsigned h = 1; h < 4; ++h) {
    for (int i = 0; i < 20; ++i) p.record_delivery(h, 0, 64);
  }
  const auto map = compute_placement(p, singleton_groups(4), 2, 0.0);
  std::vector<unsigned> per_shard(2, 0);
  for (const unsigned s : map) ++per_shard[s];
  EXPECT_GE(per_shard[0], 1u);
  EXPECT_GE(per_shard[1], 1u);
}

TEST(Placement, DeterministicAcrossCalls) {
  LoadProfile p(16);
  for (unsigned h = 0; h < 16; ++h) {
    p.record_send(h, 512 * (h % 5));
    p.record_delivery(h, (h * 7 + 3) % 16, 2048);
  }
  const auto groups = singleton_groups(16);
  const auto a = compute_placement(p, groups, 4);
  const auto b = compute_placement(p, groups, 4);
  EXPECT_EQ(a, b);
}

TEST(Placement, MoreShardsThanGroupsLeavesShardsEmpty) {
  LoadProfile p(2);
  p.record_send(0, 1024);
  p.record_send(1, 1024);
  const auto map = compute_placement(p, singleton_groups(2), 4);
  ASSERT_EQ(map.size(), 2u);
  EXPECT_NE(map[0], map[1]);
  EXPECT_LT(map[0], 4u);
  EXPECT_LT(map[1], 4u);
}

TEST(Placement, RejectsZeroShards) {
  LoadProfile p(1);
  EXPECT_THROW(compute_placement(p, singleton_groups(1), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace sctpmpi::net
