// Property tests for Maglev consistent hashing (net/maglev.hpp): the two
// guarantees of Eisenbud et al. NSDI'16 §3.4 — load evenness and minimal
// disruption on membership change — plus the weighted-share extension.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/maglev.hpp"

namespace sctpmpi::net {
namespace {

std::vector<MaglevBackend> make_backends(std::size_t n) {
  std::vector<MaglevBackend> b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = MaglevBackend{i + 1, 1.0};
  return b;
}

void shares(const MaglevTable& t, std::size_t n,
            std::vector<std::size_t>& out) {
  out.assign(n, 0);
  for (const std::int32_t e : t.entries()) {
    ASSERT_GE(e, 0);
    out[static_cast<std::size_t>(e)]++;
  }
}

TEST(Maglev, EmptyTableLookupsMiss) {
  MaglevTable t(65537);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.lookup(42), -1);
  t.build({});
  EXPECT_EQ(t.lookup(42), -1);
  // All-zero-weight set behaves as empty too.
  t.build({{1, 0.0}, {2, -1.0}});
  EXPECT_EQ(t.lookup(42), -1);
}

// Evenness: with M = 65537 and equal weights, the heaviest backend holds
// at most 1% more table share than the lightest (the paper reports the
// max/min ratio staying within 1.01 for M ~ 100 * N).
TEST(Maglev, EvennessAtM65537) {
  const std::size_t kBackends = 100;
  MaglevTable t(65537);
  t.build(make_backends(kBackends));
  std::vector<std::size_t> count;
  shares(t, kBackends, count);
  std::size_t mn = SIZE_MAX, mx = 0;
  for (const std::size_t c : count) {
    mn = std::min(mn, c);
    mx = std::max(mx, c);
  }
  EXPECT_GT(mn, 0u);
  EXPECT_LE(static_cast<double>(mx) / static_cast<double>(mn), 1.01)
      << "max share " << mx << " vs min share " << mn;
}

// Minimal disruption: removing one of N backends must remap the removed
// backend's own share (~M/N) plus only a small epsilon of collateral
// entries whose permutation walk shifted.
TEST(Maglev, RemovalDisruptionIsMinimal) {
  const std::size_t kBackends = 10;
  const std::uint32_t kM = 65537;
  MaglevTable t(kM);
  auto backends = make_backends(kBackends);
  t.build(backends);
  const std::vector<std::int32_t> before = t.entries();

  const std::int32_t removed = 3;
  backends[static_cast<std::size_t>(removed)].weight = 0.0;
  t.build(backends);
  const std::vector<std::int32_t>& after = t.entries();

  std::size_t forced = 0;      // entries that pointed at the removed backend
  std::size_t collateral = 0;  // surviving-backend entries that moved anyway
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (before[i] == removed) {
      ++forced;
      EXPECT_NE(after[i], removed);
    } else if (after[i] != before[i]) {
      ++collateral;
    }
  }
  // The forced share is ~1/N of the table...
  EXPECT_NEAR(static_cast<double>(forced) / kM, 1.0 / kBackends, 0.02);
  // ...and collateral movement stays under 2% of the table (observed ~0.7%
  // for this geometry; a naive mod-N rehash would move ~90%).
  EXPECT_LT(static_cast<double>(collateral) / kM, 0.02)
      << collateral << " collateral remaps";
}

// Symmetric property for scale-out: adding an (N+1)-th backend steals
// ~M/(N+1) entries and barely disturbs the rest.
TEST(Maglev, AdditionDisruptionIsMinimal) {
  const std::size_t kBackends = 7;
  const std::uint32_t kM = 65537;
  MaglevTable t(kM);
  auto backends = make_backends(kBackends);
  t.build(backends);
  const std::vector<std::int32_t> before = t.entries();

  backends.push_back(MaglevBackend{kBackends + 1, 1.0});
  t.build(backends);
  const std::vector<std::int32_t>& after = t.entries();

  std::size_t stolen = 0, collateral = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (after[i] == static_cast<std::int32_t>(kBackends)) {
      ++stolen;
    } else if (after[i] != before[i]) {
      ++collateral;
    }
  }
  EXPECT_NEAR(static_cast<double>(stolen) / kM, 1.0 / (kBackends + 1), 0.02);
  EXPECT_LT(static_cast<double>(collateral) / kM, 0.02);
}

// Weighted build: a backend with weight w claims ~w times the share of a
// weight-1 backend (the scale-out ramp used by LoadBalancer).
TEST(Maglev, WeightedShares) {
  MaglevTable t(65537);
  std::vector<MaglevBackend> backends = {
      {1, 1.0}, {2, 1.0}, {3, 2.0}, {4, 0.5}};
  t.build(backends);
  std::vector<std::size_t> count;
  shares(t, backends.size(), count);
  const double unit =
      (static_cast<double>(count[0]) + static_cast<double>(count[1])) / 2.0;
  EXPECT_NEAR(static_cast<double>(count[2]) / unit, 2.0, 0.1);
  EXPECT_NEAR(static_cast<double>(count[3]) / unit, 0.5, 0.1);
}

// Lookups are deterministic and rebuild-stable for an unchanged set.
TEST(Maglev, RebuildOfSameSetIsIdentical) {
  MaglevTable t(65537);
  const auto backends = make_backends(12);
  t.build(backends);
  const std::vector<std::int32_t> first = t.entries();
  t.build(backends);
  EXPECT_EQ(first, t.entries());
}

}  // namespace
}  // namespace sctpmpi::net
