#include "net/udp.hpp"

#include <gtest/gtest.h>

#include "net/cluster.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {
namespace {

class UdpTest : public ::testing::Test {
 protected:
  void build(double loss = 0.0) {
    sim_ = std::make_unique<sim::Simulator>();
    ClusterParams params;
    params.hosts = 2;
    params.link.loss = loss;
    cluster_ = std::make_unique<Cluster>(*sim_, sim::Rng(3), params);
    a_ = std::make_unique<UdpStack>(cluster_->host(0));
    b_ = std::make_unique<UdpStack>(cluster_->host(1));
  }

  std::vector<std::byte> bytes(std::initializer_list<int> xs) {
    std::vector<std::byte> v;
    for (int x : xs) v.push_back(static_cast<std::byte>(x));
    return v;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<UdpStack> a_, b_;
};

TEST_F(UdpTest, DatagramRoundTrip) {
  build();
  UdpSocket* tx = a_->create_socket(1000);
  UdpSocket* rx = b_->create_socket(2000);
  tx->sendto(cluster_->addr(1), 2000, bytes({1, 2, 3}));
  sim_->run();
  Datagram dg;
  ASSERT_TRUE(rx->recvfrom(dg));
  EXPECT_EQ(dg.data, bytes({1, 2, 3}));
  EXPECT_EQ(dg.sport, 1000);
  EXPECT_EQ(dg.from, cluster_->addr(0));
  EXPECT_FALSE(rx->recvfrom(dg));
}

TEST_F(UdpTest, PortDemultiplexing) {
  build();
  UdpSocket* tx = a_->create_socket(1000);
  UdpSocket* rx1 = b_->create_socket(2001);
  UdpSocket* rx2 = b_->create_socket(2002);
  tx->sendto(cluster_->addr(1), 2001, bytes({1}));
  tx->sendto(cluster_->addr(1), 2002, bytes({2}));
  tx->sendto(cluster_->addr(1), 2099, bytes({3}));  // no listener: dropped
  sim_->run();
  Datagram dg;
  ASSERT_TRUE(rx1->recvfrom(dg));
  EXPECT_EQ(dg.data, bytes({1}));
  ASSERT_TRUE(rx2->recvfrom(dg));
  EXPECT_EQ(dg.data, bytes({2}));
  EXPECT_FALSE(rx1->recvfrom(dg));
  EXPECT_FALSE(rx2->recvfrom(dg));
}

TEST_F(UdpTest, NoReliability) {
  build(/*loss=*/1.0);
  UdpSocket* tx = a_->create_socket(1000);
  UdpSocket* rx = b_->create_socket(2000);
  tx->sendto(cluster_->addr(1), 2000, bytes({1}));
  sim_->run();
  Datagram dg;
  EXPECT_FALSE(rx->recvfrom(dg)) << "UDP never retransmits";
}

TEST_F(UdpTest, ActivityCallbackFires) {
  build();
  UdpSocket* tx = a_->create_socket(1000);
  UdpSocket* rx = b_->create_socket(2000);
  int fires = 0;
  rx->set_activity_callback([&] { ++fires; });
  tx->sendto(cluster_->addr(1), 2000, bytes({7}));
  tx->sendto(cluster_->addr(1), 2000, bytes({8}));
  sim_->run();
  EXPECT_EQ(fires, 2);
  EXPECT_TRUE(rx->readable());
}

TEST(HostCpu, OccupySerializesWork) {
  sim::Simulator sim;
  ClusterParams params;
  params.hosts = 1;
  Cluster c(sim, sim::Rng(1), params);
  Host& h = c.host(0);
  // Two back-to-back 10us jobs: the second completes 20us out.
  EXPECT_EQ(h.occupy_cpu(10 * sim::kMicrosecond), 10 * sim::kMicrosecond);
  EXPECT_EQ(h.occupy_cpu(10 * sim::kMicrosecond), 20 * sim::kMicrosecond);
  // After the backlog clears, the CPU is free again.
  sim.run_until(25 * sim::kMicrosecond);
  EXPECT_EQ(h.occupy_cpu(5 * sim::kMicrosecond), 5 * sim::kMicrosecond);
}

}  // namespace
}  // namespace sctpmpi::net
