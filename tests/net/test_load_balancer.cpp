// net::LoadBalancer: steering semantics (ports-only tracking, drain,
// remove, rebuild stability), the probe-driven health control plane, and
// end-to-end VIP flows through real TCP and SCTP stacks with DSR returns.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/bytes.hpp"
#include "net/cluster.hpp"
#include "net/load_balancer.hpp"
#include "sctp/socket.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "tcp/socket.hpp"

namespace sctpmpi::net {
namespace {

Packet make_flow_packet(IpAddr src, IpAddr vip, std::uint16_t sport,
                        std::uint16_t dport) {
  std::vector<std::byte> bytes;
  ByteWriter w(bytes);
  w.u16(sport);
  w.u16(dport);
  w.u32(0xDEADBEEF);  // rest of a pretend transport header
  Packet pkt;
  pkt.src = src;
  pkt.dst = vip;
  pkt.proto = IpProto::kTcp;
  pkt.payload = Buffer(std::move(bytes));
  return pkt;
}

// Harness: flat cluster with the balancer on the last host.
struct LbWorld {
  sim::Simulator sim;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<LoadBalancer> lb;
  std::vector<IpAddr> vips;
  unsigned lb_host;

  LbWorld(unsigned hosts, unsigned interfaces,
          LoadBalancerParams params = {}) {
    ClusterParams cp;
    cp.hosts = hosts;
    cp.interfaces = interfaces;
    cluster = std::make_unique<Cluster>(sim, sim::Rng(7), cp);
    lb_host = hosts - 1;
    for (unsigned s = 0; s < interfaces; ++s) {
      vips.push_back(make_addr(s, hosts + 7));
      cluster->add_service_route(vips.back(), lb_host);
    }
    lb = std::make_unique<LoadBalancer>(cluster->host(lb_host), params);
    for (const IpAddr vip : vips) lb->add_vip(vip);
  }

  int add_backend(unsigned host, double weight = 1.0) {
    std::vector<IpAddr> addrs;
    for (unsigned i = 0; i < cluster->interface_count(); ++i) {
      addrs.push_back(cluster->addr(host, i));
    }
    return lb->add_backend(std::move(addrs), weight);
  }
};

TEST(LoadBalancer, NonVipAndMalformedDrops) {
  LbWorld w(3, 1);
  w.add_backend(0);
  // Wrong destination: counted, not forwarded.
  Packet stray = make_flow_packet(w.cluster->addr(1), w.cluster->addr(0),
                                  5000, 80);
  w.lb->on_ip_packet(std::move(stray));
  EXPECT_EQ(w.lb->stats().non_vip_drops, 1u);
  // VIP packet too short to carry ports: malformed.
  Packet runt;
  runt.src = w.cluster->addr(1);
  runt.dst = w.vips[0];
  runt.proto = IpProto::kTcp;
  std::vector<std::byte> two(2);
  runt.payload = Buffer(std::move(two));
  w.lb->on_ip_packet(std::move(runt));
  EXPECT_EQ(w.lb->stats().malformed_drops, 1u);
  EXPECT_EQ(w.lb->stats().forwarded, 0u);
}

TEST(LoadBalancer, TracksFlowsByPortsOnly) {
  LbWorld w(4, 2);
  w.add_backend(0);
  w.add_backend(1);
  // First packet of the flow: a Maglev assignment.
  w.lb->on_ip_packet(make_flow_packet(w.cluster->addr(2, 0), w.vips[0],
                                      6000, 80));
  ASSERT_EQ(w.lb->stats().maglev_assignments, 1u);
  const std::int32_t chosen = w.lb->backend_of(6000, 80);
  ASSERT_GE(chosen, 0);
  // Same ports arriving on the OTHER subnet's VIP from a different source
  // address (the multihomed alternate path): tracked hit, same backend.
  w.lb->on_ip_packet(make_flow_packet(w.cluster->addr(2, 1), w.vips[1],
                                      6000, 80));
  EXPECT_EQ(w.lb->stats().tracked_hits, 1u);
  EXPECT_EQ(w.lb->backend_of(6000, 80), chosen);
  EXPECT_EQ(w.lb->stats().forwarded, 2u);
}

// Satellite property: tracked flows remap ZERO across a Maglev rebuild.
TEST(LoadBalancer, TrackedFlowsSurviveRebuild) {
  LbWorld w(4, 1);
  for (unsigned h = 0; h < 2; ++h) w.add_backend(h);
  std::vector<std::int32_t> before(500);
  for (std::uint16_t i = 0; i < 500; ++i) {
    const std::uint16_t sport = static_cast<std::uint16_t>(7000 + i);
    w.lb->on_ip_packet(
        make_flow_packet(w.cluster->addr(2), w.vips[0], sport, 80));
    before[i] = w.lb->backend_of(sport, 80);
    ASSERT_GE(before[i], 0);
  }
  // Membership change: a third backend joins and the table rebuilds.
  const int id = w.add_backend(2, 1.0);
  EXPECT_EQ(w.lb->stats().table_rebuilds, 3u);  // one per add_backend
  std::size_t remapped = 0;
  for (std::uint16_t i = 0; i < 500; ++i) {
    if (w.lb->backend_of(static_cast<std::uint16_t>(7000 + i), 80) !=
        before[i]) {
      ++remapped;
    }
  }
  EXPECT_EQ(remapped, 0u) << "tracked flows must pin through rebuilds";
  // Fresh flows do land on the newcomer eventually.
  bool newcomer_used = false;
  for (std::uint16_t p = 20000; p < 21000; ++p) {
    if (w.lb->backend_of(p, 80) == id) {
      newcomer_used = true;
      break;
    }
  }
  EXPECT_TRUE(newcomer_used);
}

TEST(LoadBalancer, DrainKeepsTrackedFlowsAndBlocksNewOnes) {
  LbWorld w(4, 1);
  const int a = w.add_backend(0);
  const int b = w.add_backend(1);
  // Pin one flow per backend.
  std::int32_t flow_a = -1;
  std::uint16_t port_a = 0;
  for (std::uint16_t p = 6000; p < 6100; ++p) {
    w.lb->on_ip_packet(make_flow_packet(w.cluster->addr(2), w.vips[0], p, 80));
    if (w.lb->backend_of(p, 80) == a) {
      flow_a = a;
      port_a = p;
      break;
    }
  }
  ASSERT_EQ(flow_a, a);
  w.lb->drain_backend(a);
  EXPECT_EQ(w.lb->backend_state(a), BackendState::kDraining);
  // The established flow still steers to the draining backend...
  EXPECT_EQ(w.lb->backend_of(port_a, 80), a);
  // ...but no fresh port can land there any more.
  for (std::uint16_t p = 30000; p < 31000; ++p) {
    EXPECT_NE(w.lb->backend_of(p, 80), a);
  }
  w.lb->restore_backend(a);
  EXPECT_EQ(w.lb->backend_state(a), BackendState::kUp);
  (void)b;
}

TEST(LoadBalancer, RemoveReSteersEstablishedFlows) {
  LbWorld w(4, 1);
  const int a = w.add_backend(0);
  w.add_backend(1);
  std::uint16_t port_a = 0;
  for (std::uint16_t p = 6000; p < 6200; ++p) {
    w.lb->on_ip_packet(make_flow_packet(w.cluster->addr(2), w.vips[0], p, 80));
    if (w.lb->backend_of(p, 80) == a) {
      port_a = p;
      break;
    }
  }
  ASSERT_NE(port_a, 0);
  w.lb->remove_backend(a);
  EXPECT_NE(w.lb->backend_of(port_a, 80), a)
      << "hard removal must re-steer even tracked flows";
}

TEST(LoadBalancer, IdleTrackingEntriesExpire) {
  LoadBalancerParams params;
  params.track_idle_expiry = sim::kSecond;
  params.track_sweep_period = sim::kSecond / 2;
  LbWorld w(3, 1, params);
  w.add_backend(0);
  w.lb->on_ip_packet(make_flow_packet(w.cluster->addr(1), w.vips[0], 6000,
                                      80));
  EXPECT_EQ(w.lb->tracked_total(), 1u);
  w.lb->start_probes();  // arms the sweep timer too
  w.sim.run_until(3 * sim::kSecond);
  EXPECT_EQ(w.lb->tracked_total(), 0u);
  EXPECT_EQ(w.lb->stats().entries_expired, 1u);
  w.lb->stop();
}

// Health control plane: blackout -> consecutive misses -> ejection (with a
// FailureBus-style callback), recovery -> consecutive acks -> re-admission.
TEST(LoadBalancer, ProbeEjectionAndReadmission) {
  LbWorld w(2, 1);
  HealthResponder responder(w.cluster->host(0));
  const int id = w.add_backend(0);
  std::vector<int> down_log, up_log;
  w.lb->set_backend_down_callback([&](int b) { down_log.push_back(b); });
  w.lb->set_backend_up_callback([&](int b) { up_log.push_back(b); });
  w.lb->start_probes();

  w.sim.run_until(sim::kSecond);
  EXPECT_EQ(w.lb->backend_state(id), BackendState::kUp);
  EXPECT_GT(w.lb->stats().probes_acked, 5u);
  EXPECT_GT(responder.probes_answered(), 5u);

  // Kill the backend's connectivity for two seconds.
  w.cluster->uplink(0).faults().add_blackout(sim::kSecond,
                                             3 * sim::kSecond);
  w.cluster->downlink(0).faults().add_blackout(sim::kSecond,
                                               3 * sim::kSecond);
  w.sim.run_until(2 * sim::kSecond);
  EXPECT_EQ(w.lb->backend_state(id), BackendState::kDown);
  EXPECT_EQ(w.lb->stats().ejections, 1u);
  ASSERT_EQ(down_log.size(), 1u);
  EXPECT_EQ(down_log[0], id);
  // While down, probing has backed off exponentially.
  EXPECT_GT(w.lb->stats().probe_timeouts, 2u);

  w.sim.run_until(8 * sim::kSecond);
  EXPECT_EQ(w.lb->backend_state(id), BackendState::kUp);
  EXPECT_EQ(w.lb->stats().readmissions, 1u);
  ASSERT_EQ(up_log.size(), 1u);
  EXPECT_EQ(up_log[0], id);
  w.lb->stop();
}

// A multihomed backend with ONE dead subnet must stay admitted: probes
// rotate across its addresses, so misses alternate with acks and never
// reach the consecutive-miss threshold.
TEST(LoadBalancer, SingleDeadPathDoesNotEjectMultihomedBackend) {
  LbWorld w(2, 2);
  HealthResponder responder(w.cluster->host(0));
  const int id = w.add_backend(0);
  w.lb->start_probes();
  // Sever subnet 0 permanently; subnet 1 stays healthy.
  w.cluster->uplink(0, 0).faults().add_blackout(0, 60 * sim::kSecond);
  w.cluster->downlink(0, 0).faults().add_blackout(0, 60 * sim::kSecond);
  w.sim.run_until(5 * sim::kSecond);
  EXPECT_EQ(w.lb->backend_state(id), BackendState::kUp);
  EXPECT_EQ(w.lb->stats().ejections, 0u);
  EXPECT_GT(w.lb->stats().probe_timeouts, 0u);
  EXPECT_GT(responder.probes_answered(), 0u);
  w.lb->stop();
}

// ---------------------------------------------------------------------------
// End-to-end: real transport stacks through the VIP, DSR return path.
// ---------------------------------------------------------------------------

TEST(LoadBalancer, EndToEndTcpThroughVip) {
  LbWorld w(3, 1);  // 0 = client, 1 = backend, 2 = balancer
  const IpAddr vip = w.vips[0];
  w.add_backend(1);

  tcp::TcpConfig cfg;
  tcp::TcpStack server(w.cluster->host(1), cfg, sim::Rng(21));
  tcp::TcpStack client(w.cluster->host(0), cfg, sim::Rng(22));

  tcp::TcpSocket* listener = server.create_socket();
  listener->bind(vip, 80);  // DSR: the backend answers AS the VIP
  listener->listen();
  tcp::TcpSocket* echo_conn = nullptr;
  std::vector<std::byte> echoed;
  listener->set_activity_callback([&] {
    while (tcp::TcpSocket* child = listener->accept()) {
      echo_conn = child;
      child->set_activity_callback([&, child] {
        std::byte buf[2048];
        for (;;) {
          const std::ptrdiff_t n = child->recv(buf);
          if (n <= 0) break;
          (void)child->send(std::span<const std::byte>(buf,
                                                       std::size_t(n)));
        }
      });
    }
  });

  tcp::TcpSocket* sock = client.create_socket();
  sock->connect(vip, 80);
  std::vector<std::byte> got;
  sock->set_activity_callback([&] {
    std::byte buf[2048];
    for (;;) {
      const std::ptrdiff_t n = sock->recv(buf);
      if (n <= 0) break;
      got.insert(got.end(), buf, buf + n);
    }
  });

  w.sim.run_until(2 * sim::kSecond);
  ASSERT_TRUE(sock->connected());
  std::vector<std::byte> payload(1000);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 13);
  }
  ASSERT_EQ(sock->send(payload), std::ptrdiff_t(payload.size()));
  w.sim.run_until(4 * sim::kSecond);

  EXPECT_EQ(got, payload);
  EXPECT_GT(w.lb->stats().forwarded, 2u);
  EXPECT_GE(w.lb->tracked_total(), 1u);
  EXPECT_NE(echo_conn, nullptr);
}

TEST(LoadBalancer, EndToEndSctpFailoverKeepsBackend) {
  LbWorld w(3, 2);  // multihomed flat: two subnets, two VIPs
  w.add_backend(1);

  sctp::SctpConfig cfg;
  cfg.rto_min = 200 * sim::kMillisecond;
  cfg.rto_initial = 400 * sim::kMillisecond;
  cfg.rto_max = 2 * sim::kSecond;
  cfg.path_max_retrans = 2;
  cfg.hb_interval = sim::kSecond;  // detect the dead path within the test
  sctp::SctpStack server(w.cluster->host(1), cfg, sim::Rng(31));
  sctp::SctpStack client(w.cluster->host(0), cfg, sim::Rng(32));

  sctp::SctpSocket* ssock = server.create_socket(80);
  ssock->set_local_addrs(w.vips);  // advertise the VIPs, not real addrs
  ssock->listen(true);
  std::uint64_t served = 0;
  ssock->set_activity_callback([&] {
    while (ssock->poll_notification()) {
    }
    std::byte buf[2048];
    sctp::RecvInfo info;
    for (;;) {
      const std::ptrdiff_t n = ssock->recvmsg(buf, info);
      if (n <= 0) break;
      ++served;
      (void)ssock->sendmsg(info.assoc, info.sid,
                           std::span<const std::byte>(buf, std::size_t(n)));
    }
  });

  sctp::SctpSocket* csock = client.create_socket(6000);
  bool up = false, lost = false;
  std::uint64_t failovers = 0, replies = 0;
  csock->set_activity_callback([&] {
    while (auto n = csock->poll_notification()) {
      if (n->type == sctp::NotificationType::kCommUp) up = true;
      if (n->type == sctp::NotificationType::kCommLost) lost = true;
      if (n->type == sctp::NotificationType::kPathFailover) ++failovers;
    }
    std::byte buf[2048];
    sctp::RecvInfo info;
    for (;;) {
      const std::ptrdiff_t n = csock->recvmsg(buf, info);
      if (n <= 0) break;
      ++replies;
    }
  });
  const sctp::AssocId assoc = csock->connect(w.vips[0], 80, {w.vips[1]});

  w.sim.run_until(sim::kSecond);
  ASSERT_TRUE(up);
  const std::int32_t backend_before = w.lb->backend_of(6000, 80);
  ASSERT_GE(backend_before, 0);
  std::vector<std::byte> msg(256);
  ASSERT_GT(csock->sendmsg(assoc, 0, msg), 0);
  w.sim.run_until(2 * sim::kSecond);
  ASSERT_EQ(replies, 1u);

  // Sever the client's subnet-0 path: heartbeats fail over to VIP 1.
  w.cluster->uplink(0, 0).faults().add_blackout(2 * sim::kSecond,
                                                60 * sim::kSecond);
  w.cluster->downlink(0, 0).faults().add_blackout(2 * sim::kSecond,
                                                  60 * sim::kSecond);
  ASSERT_GT(csock->sendmsg(assoc, 0, msg), 0);
  w.sim.run_until(20 * sim::kSecond);

  EXPECT_FALSE(lost) << "association must survive a single path loss";
  EXPECT_GE(failovers, 1u);
  EXPECT_EQ(replies, 2u) << "the in-flight message must complete";
  // The failover traffic kept the SAME ports, so the balancer kept the
  // SAME backend: the SCTP affinity invariant end to end.
  EXPECT_EQ(w.lb->backend_of(6000, 80), backend_before);
  EXPECT_EQ(served, 2u);
}

}  // namespace
}  // namespace sctpmpi::net
