// Fat-tree/Clos topology: structure, all-pairs reachability through exact
// downward routes + ECMP upward hashing, per-flow path stability, and the
// sharded build (cross-shard links, lookahead bound, rerun determinism).
#include <gtest/gtest.h>

#include <vector>

#include "net/cluster.hpp"
#include "net/packet.hpp"
#include "net/switch.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {
namespace {

ClusterParams fattree_params(unsigned k) {
  ClusterParams p;
  p.topology = TopologyKind::kFatTree;
  p.fattree.k = k;
  p.hosts = k * k * k / 4;
  p.interfaces = 1;
  return p;
}

// One empty-payload packet from every host to every other host.
void inject_all_pairs(Cluster& c) {
  const unsigned n = c.host_count();
  for (unsigned s = 0; s < n; ++s) {
    for (unsigned d = 0; d < n; ++d) {
      if (s == d) continue;
      Host& h = c.host(s);
      h.sim().schedule_at(0, [&h, &c, s, d] {
        Packet pkt;
        pkt.src = c.addr(s);
        pkt.dst = c.addr(d);
        pkt.proto = IpProto::kTcp;
        h.send_ip(std::move(pkt));
      });
    }
  }
}

TEST(FatTree, BuildsTheExpectedShape) {
  for (unsigned k : {2u, 4u, 6u}) {
    sim::Simulator sim;
    Cluster c(sim, sim::Rng(1), fattree_params(k));
    EXPECT_EQ(c.host_count(), k * k * k / 4) << "k=" << k;
    // Links: 2 per host (edge), 2 * (k/2)^2 per pod (ToR<->agg), and
    // 2 * (k/2)^2 per pod again (agg<->core).
    const unsigned half = k / 2;
    const unsigned expect_links = 2 * c.host_count() + 2 * k * half * half * 2;
    EXPECT_EQ(c.links().size(), expect_links) << "k=" << k;
  }
}

TEST(FatTree, RejectsInvalidParameters) {
  sim::Simulator sim;
  {
    ClusterParams p = fattree_params(4);
    p.hosts = 15;  // must be k^3/4 = 16
    EXPECT_THROW(Cluster(sim, sim::Rng(1), p), std::invalid_argument);
  }
  {
    ClusterParams p = fattree_params(3);  // odd k
    EXPECT_THROW(Cluster(sim, sim::Rng(1), p), std::invalid_argument);
  }
  {
    ClusterParams p = fattree_params(4);
    p.interfaces = 2;  // fat-tree hosts are single-homed
    EXPECT_THROW(Cluster(sim, sim::Rng(1), p), std::invalid_argument);
  }
}

TEST(FatTree, AllPairsReachableWithoutUnroutableDrops) {
  for (unsigned k : {4u, 6u}) {
    sim::Simulator sim;
    Cluster c(sim, sim::Rng(7), fattree_params(k));
    inject_all_pairs(c);
    sim.run_until(sim::kSecond);
    const unsigned n = c.host_count();
    EXPECT_EQ(c.total_unroutable(), 0u) << "k=" << k;
    for (unsigned h = 0; h < n; ++h) {
      EXPECT_EQ(c.host(h).rx_packets(), n - 1) << "k=" << k << " host " << h;
    }
  }
}

TEST(FatTree, EcmpSpreadsFlowsAcrossUplinks) {
  // The flow hash must actually use both uplinks of a k=4 ToR across the
  // host-pair population (a constant hash would funnel everything through
  // one aggregation switch).
  sim::Simulator sim;
  Cluster c(sim, sim::Rng(7), fattree_params(4));
  inject_all_pairs(c);
  sim.run_until(sim::kSecond);
  // ToR->agg links are labelled by make; count the loaded ones via build
  // order: edge links come first (2 per host), then per-pod ta/at pairs.
  unsigned loaded_ta = 0, total_ta = 0;
  const auto& links = c.links();
  for (std::size_t i = 2 * c.host_count(); i < links.size(); ++i) {
    // ta links alternate with at links in build order; both tiers carry
    // traffic in a loaded fabric, so just count how many upper-tier links
    // saw packets at all.
    ++total_ta;
    if (links[i]->stats().tx_packets > 0) ++loaded_ta;
  }
  ASSERT_GT(total_ta, 0u);
  // With 16 hosts sending 15 flows each, far more than half the fabric
  // links must be in use; a broken (constant) ECMP hash loads only one
  // path per ToR.
  EXPECT_GT(loaded_ta, total_ta / 2);
}

TEST(FatTree, FlowHashIsDeterministicPerFlow) {
  Packet a;
  a.src = make_addr(0, 3);
  a.dst = make_addr(0, 9);
  a.proto = IpProto::kSctp;
  const std::uint64_t h1 = Switch::flow_hash(a);
  const std::uint64_t h2 = Switch::flow_hash(a);
  EXPECT_EQ(h1, h2);
  Packet b = a;
  b.dst = make_addr(0, 10);
  EXPECT_NE(Switch::flow_hash(b), h1);  // astronomically unlikely to collide
}

TEST(FatTree, ShardedBuildCrossesOnlyUpperTiers) {
  // k=4, 4 shards, contiguous placement: one pod per shard. Edge and
  // ToR<->agg links stay pod-local; only agg<->core links cross, so the
  // lookahead is the core-link delay.
  sim::ShardGroup g(4);
  ClusterParams p = fattree_params(4);
  Cluster c(g, sim::Rng(7), p);
  EXPECT_EQ(c.shard_count(), 4u);
  for (unsigned h = 0; h < c.host_count(); ++h) {
    EXPECT_EQ(c.shard_of_host(h), h / 4) << "host " << h;
  }
  EXPECT_EQ(c.cross_shard_lookahead(), p.fattree.core_link.delay);
}

TEST(FatTree, ShardedAllPairsDeliversEverythingDeterministically) {
  auto run_once = [](unsigned shards) {
    sim::ShardGroup g(shards);
    Cluster c(g, sim::Rng(7), fattree_params(4));
    for (unsigned h = 0; h < c.host_count(); ++h) {
      c.host(h).enable_rx_digest();
    }
    inject_all_pairs(c);
    sim::ShardGroup::RunOptions opts;
    opts.lookahead = c.cross_shard_lookahead();
    g.run(opts);
    EXPECT_EQ(c.total_unroutable(), 0u);
    std::vector<std::uint64_t> digests;
    for (unsigned h = 0; h < c.host_count(); ++h) {
      EXPECT_EQ(c.host(h).rx_packets(), c.host_count() - 1) << "host " << h;
      digests.push_back(c.host(h).rx_digest());
    }
    return digests;
  };
  for (unsigned shards : {2u, 4u}) {
    const auto a = run_once(shards);
    const auto b = run_once(shards);
    EXPECT_EQ(a, b) << shards << "-shard rerun diverged";
  }
}

}  // namespace
}  // namespace sctpmpi::net
