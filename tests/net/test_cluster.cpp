#include "net/cluster.hpp"

#include <gtest/gtest.h>

#include "net/host.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {
namespace {

using sim::Rng;
using sim::Simulator;
using sim::SimTime;

class Capture : public ProtocolHandler {
 public:
  void on_ip_packet(Packet&& pkt) override {
    packets.push_back(std::move(pkt));
  }
  std::vector<Packet> packets;
};

TEST(Address, EncodesSubnetAndHost) {
  IpAddr a = make_addr(2, 5);
  EXPECT_EQ(subnet_of(a), 2u);
  EXPECT_EQ(host_of(a), 5u);
  EXPECT_EQ(to_string(a), "10.2.0.6");
}

TEST(Cluster, HostToHostDeliveryThroughSwitch) {
  Simulator s;
  ClusterParams params;
  params.hosts = 4;
  Cluster c(s, Rng(1), params);
  Capture rx;
  c.host(1).register_protocol(IpProto::kTcp, &rx);

  Packet p;
  p.src = c.addr(0);
  p.dst = c.addr(1);
  p.proto = IpProto::kTcp;
  p.payload.resize(64);
  c.host(0).send_ip(std::move(p));
  s.run();
  ASSERT_EQ(rx.packets.size(), 1u);
  EXPECT_EQ(rx.packets[0].src, c.addr(0));
  EXPECT_GT(s.now(), 0);
}

TEST(Cluster, ProtocolDemuxSeparatesTcpAndSctp) {
  Simulator s;
  ClusterParams params;
  params.hosts = 2;
  Cluster c(s, Rng(1), params);
  Capture tcp_rx, sctp_rx;
  c.host(1).register_protocol(IpProto::kTcp, &tcp_rx);
  c.host(1).register_protocol(IpProto::kSctp, &sctp_rx);

  for (auto proto : {IpProto::kTcp, IpProto::kSctp, IpProto::kSctp}) {
    Packet p;
    p.dst = c.addr(1);
    p.proto = proto;
    p.payload.resize(8);
    c.host(0).send_ip(std::move(p));
  }
  s.run();
  EXPECT_EQ(tcp_rx.packets.size(), 1u);
  EXPECT_EQ(sctp_rx.packets.size(), 2u);
}

TEST(Cluster, MultihomedHostsRouteBySubnet) {
  Simulator s;
  ClusterParams params;
  params.hosts = 2;
  params.interfaces = 3;
  Cluster c(s, Rng(1), params);
  Capture rx;
  c.host(1).register_protocol(IpProto::kSctp, &rx);

  for (unsigned iface = 0; iface < 3; ++iface) {
    Packet p;
    p.src = c.addr(0, iface);
    p.dst = c.addr(1, iface);
    p.proto = IpProto::kSctp;
    p.payload.resize(16);
    c.host(0).send_ip(std::move(p));
  }
  s.run();
  ASSERT_EQ(rx.packets.size(), 3u);
}

TEST(Cluster, SubnetLossSeversOnePathOnly) {
  Simulator s;
  ClusterParams params;
  params.hosts = 2;
  params.interfaces = 2;
  Cluster c(s, Rng(1), params);
  Capture rx;
  c.host(1).register_protocol(IpProto::kSctp, &rx);
  c.set_subnet_loss(0, 1.0);  // fail the primary network

  for (unsigned iface = 0; iface < 2; ++iface) {
    Packet p;
    p.src = c.addr(0, iface);
    p.dst = c.addr(1, iface);
    p.proto = IpProto::kSctp;
    p.payload.resize(16);
    c.host(0).send_ip(std::move(p));
  }
  s.run();
  ASSERT_EQ(rx.packets.size(), 1u);
  EXPECT_EQ(subnet_of(rx.packets[0].dst), 1u);
}

TEST(Cluster, SetLossAffectsAllLinks) {
  Simulator s;
  ClusterParams params;
  params.hosts = 2;
  Cluster c(s, Rng(1), params);
  Capture rx;
  c.host(1).register_protocol(IpProto::kTcp, &rx);
  c.set_loss(1.0);
  Packet p;
  p.dst = c.addr(1);
  p.proto = IpProto::kTcp;
  c.host(0).send_ip(std::move(p));
  s.run();
  EXPECT_TRUE(rx.packets.empty());
  EXPECT_EQ(c.total_link_stats().drops_loss, 1u);
}

TEST(Cluster, UnknownDestinationIsDropped) {
  Simulator s;
  ClusterParams params;
  params.hosts = 2;
  Cluster c(s, Rng(1), params);
  Packet p;
  p.dst = make_addr(0, 99);  // not in the cluster
  p.proto = IpProto::kTcp;
  c.host(0).send_ip(std::move(p));
  s.run();  // must not crash or loop
  SUCCEED();
}

TEST(Host, OwnsAddrChecksAllInterfaces) {
  Simulator s;
  ClusterParams params;
  params.hosts = 2;
  params.interfaces = 2;
  Cluster c(s, Rng(1), params);
  EXPECT_TRUE(c.host(0).owns_addr(c.addr(0, 0)));
  EXPECT_TRUE(c.host(0).owns_addr(c.addr(0, 1)));
  EXPECT_FALSE(c.host(0).owns_addr(c.addr(1, 0)));
}

TEST(HostCostModel, CopyCostScalesWithBytes) {
  HostCostModel m;
  EXPECT_EQ(m.copy_cost(0), 0);
  EXPECT_GT(m.copy_cost(1 << 20), m.copy_cost(1 << 10));
}

}  // namespace
}  // namespace sctpmpi::net
