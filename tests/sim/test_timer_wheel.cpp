// sim::Timer on the hierarchical wheel: the edge cases that distinguish a
// correct wheel from a merely fast one. Every behavior here is also what
// the old heap-only Timer did — the wheel is an implementation change, not
// a semantic one — so these tests double as the pinned contract for the
// re-arm-in-place path (ISSUE 7's dead-deadline_ audit).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sctpmpi::sim {
namespace {

TEST(TimerWheel, RearmToEarlierDeadlineFiresEarly) {
  // Shrinking an RTO: the second arm() wins even though the first placed
  // the timer in a later wheel bucket.
  Simulator s;
  SimTime fired = -1;
  Timer t(s, [&] { fired = s.now(); });
  t.arm(500 * kMillisecond);
  t.arm(10 * kMillisecond);
  EXPECT_EQ(t.deadline(), 10 * kMillisecond);
  s.run();
  EXPECT_EQ(fired, 10 * kMillisecond);
  EXPECT_EQ(s.now(), 10 * kMillisecond);  // the 500 ms placement is gone
}

TEST(TimerWheel, RearmEarlierAfterHeapMigration) {
  // The first deadline's bucket window can open (migrating the timer into
  // the heap) before the re-arm happens; the re-arm must chase it there.
  Simulator s;
  std::vector<SimTime> fires;
  Timer t(s, [&] { fires.push_back(s.now()); });
  t.arm(2 * kMicrosecond);
  // An event in between, after which the timer is re-armed much later:
  // by now the 2 us deadline has migrated out of the wheel.
  s.schedule_at(1 * kMicrosecond, [&] { t.arm(90 * kMicrosecond); });
  s.run();
  ASSERT_EQ(fires.size(), 1u);
  EXPECT_EQ(fires[0], 1 * kMicrosecond + 90 * kMicrosecond);
}

TEST(TimerWheel, CancelInsideOwnCallbackIsANoop) {
  // fire_() disarms before invoking the callback, so a self-cancel must
  // neither crash nor unarm a follow-up arm().
  Simulator s;
  int fires = 0;
  Timer* self = nullptr;
  Timer t(s, [&] {
    ++fires;
    self->cancel();            // no-op: already disarmed
    if (fires < 2) self->arm(5 * kMicrosecond);  // and re-arm still works
  });
  self = &t;
  t.arm(5 * kMicrosecond);
  s.run();
  EXPECT_EQ(fires, 2);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(t.deadline(), 0);
}

TEST(TimerWheel, SameTickFifoOrdering) {
  // Timers and plain events landing on the same nanosecond fire in arm /
  // schedule order, even though the timers route through wheel buckets:
  // the preserved arm-time sequence number is the tie-break.
  Simulator s;
  std::vector<int> order;
  Timer t1(s, [&] { order.push_back(1); });
  t1.arm(1000);
  s.schedule_at(1000, [&] { order.push_back(2); });
  Timer t3(s, [&] { order.push_back(3); });
  t3.arm(1000);
  s.schedule_at(1000, [&] { order.push_back(4); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(TimerWheel, SameTickRearmTakesFreshFifoPosition) {
  // Matches the documented reschedule() contract: a re-arm is equivalent to
  // cancel + fresh arm, so it drops behind same-instant events armed since.
  Simulator s;
  std::vector<int> order;
  Timer t1(s, [&] { order.push_back(1); });
  t1.arm(1000);
  s.schedule_at(1000, [&] { order.push_back(2); });
  t1.arm(1000);  // re-arm to the same deadline: now behind event 2
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(TimerWheel, FarFutureDeadlineCascadesAcrossLevels) {
  // A heartbeat-scale deadline starts several wheel levels up and must
  // cascade down through intermediate buckets to fire at the exact
  // nanosecond, not at a bucket boundary.
  Simulator s;
  const SimTime deadline = 30 * kSecond + 12345;  // level 4 at 1 us ticks
  SimTime fired = -1;
  Timer t(s, [&] { fired = s.now(); });
  t.arm(deadline);
  // Sprinkle events so the wheel advances in many small steps rather than
  // one big flush.
  for (int i = 1; i <= 64; ++i) {
    s.schedule_at(i * 400 * kMillisecond, [] {});
  }
  s.run();
  EXPECT_EQ(fired, deadline);
  EXPECT_EQ(s.now(), deadline);
}

TEST(TimerWheel, BeyondHorizonDeadlineClampsAndStillFiresExactly) {
  // Past the wheel's ~70000 s span: the node parks in the top level and
  // re-cascades when it surfaces. Exact fire time must survive the clamp.
  Simulator s;
  const SimTime deadline = 100'000 * kSecond + 7;
  SimTime fired = -1;
  Timer t(s, [&] { fired = s.now(); });
  t.arm(deadline);
  s.run();
  EXPECT_EQ(fired, deadline);
}

TEST(TimerWheel, NearSpanDeltaWithUnalignedCursorDoesNotLivelock) {
  // Regression: with the wheel cursor at a tick that is not a multiple of
  // 64, a deadline whose delta is just under a level's full span rounds
  // onto the cursor's own slot one revolution ahead. Without the insert-
  // time wrap guard the flush loop reinserts the node into the bucket it
  // is draining and never terminates.
  Simulator s;
  Timer a(s, [] {});
  a.arm(100 * 1024 + 7);  // fires at tick 100: cursor lands unaligned
  s.run();
  const SimTime deadline = (100 + 4090) * 1024 + 3;  // delta ~ 64^2 ticks
  SimTime fired = -1;
  Timer b(s, [&] { fired = s.now(); });
  b.arm(deadline - s.now());
  s.run();
  EXPECT_EQ(fired, deadline);
}

TEST(TimerWheel, ManyTimersSameBucketAllFireInArmOrder) {
  Simulator s;
  std::vector<int> order;
  std::vector<std::unique_ptr<Timer>> timers;
  for (int i = 0; i < 32; ++i) {
    timers.push_back(std::make_unique<Timer>(s, [&order, i] {
      order.push_back(i);
    }));
    // All land in one level-0 bucket (same 1.024 us tick), distinct times.
    timers.back()->arm(10 * kMicrosecond + (i % 2));
  }
  s.run();
  ASSERT_EQ(order.size(), 32u);
  // Time majorizes seq: the even-offset timers (earlier ns) fire first in
  // arm order, then the odd-offset ones.
  std::vector<int> expect;
  for (int i = 0; i < 32; i += 2) expect.push_back(i);
  for (int i = 1; i < 32; i += 2) expect.push_back(i);
  EXPECT_EQ(order, expect);
}

TEST(TimerWheel, CancelAfterHeapMigrationStopsFire) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(2 * kMicrosecond);
  // This event pops first; by then the timer has migrated into the heap.
  s.schedule_at(1 * kMicrosecond, [&] { t.cancel(); });
  s.run();
  EXPECT_EQ(fires, 0);
  EXPECT_FALSE(t.armed());
}

TEST(TimerWheel, DestroyArmedTimerReleasesItsEvent) {
  Simulator s;
  {
    Timer t(s, [] { FAIL() << "destroyed timer fired"; });
    t.arm(1000);
  }
  EXPECT_TRUE(s.empty());
  s.run();
  EXPECT_EQ(s.now(), 0);
}

// ---- ISSUE 7 small fix: the re-arm-in-place path -----------------------
// The old Timer::arm wrote deadline_ before attempting reschedule(); when
// the reschedule failed (timer not actually pending) the already-written
// deadline_ was a dead read — correct only by accident, because the
// fallback schedule_at used the same value. The wheel implementation arms
// unconditionally; these tests pin the observable contract either way.

TEST(TimerWheel, RearmWhileDisarmedBehavesLikeFirstArm) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(100);
  s.run();                       // fires; timer now disarmed
  ASSERT_EQ(fires, 1);
  t.arm(100);                    // "re-arm" with no pending placement
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(t.deadline(), s.now() + 100);
  s.run();
  EXPECT_EQ(fires, 2);
}

TEST(TimerWheel, DeadlineAlwaysReportsLatestArm) {
  Simulator s;
  Timer t(s, [] {});
  t.arm(100);
  EXPECT_EQ(t.deadline(), 100);
  t.arm(700);                    // re-arm in place, later
  EXPECT_EQ(t.deadline(), 700);
  t.arm(50);                     // re-arm in place, earlier
  EXPECT_EQ(t.deadline(), 50);
  EXPECT_TRUE(t.armed());
  EXPECT_EQ(s.live_events(), 1u);  // never more than one pending placement
  t.cancel();
  EXPECT_EQ(t.deadline(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(TimerWheel, ZeroDelayArmFiresAtNowInFifoOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(0, [&] { order.push_back(1); });
  Timer t(s, [&] { order.push_back(2); });
  t.arm(0);
  s.schedule_at(0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace sctpmpi::sim
