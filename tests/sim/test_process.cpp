#include "sim/process.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulator.hpp"

namespace sctpmpi::sim {
namespace {

TEST(Process, RunsBodyToCompletion) {
  Simulator s;
  bool ran = false;
  {
    ProcessGroup g(s);
    g.spawn("p0", [&](Process&) { ran = true; });
    g.run_all();
  }
  EXPECT_TRUE(ran);
}

TEST(Process, SleepForAdvancesVirtualTime) {
  Simulator s;
  SimTime t_after = -1;
  ProcessGroup g(s);
  g.spawn("p0", [&](Process& self) {
    self.sleep_for(5 * kMillisecond);
    t_after = s.now();
  });
  g.run_all();
  EXPECT_EQ(t_after, 5 * kMillisecond);
}

TEST(Process, SleepsInterleaveDeterministically) {
  Simulator s;
  std::vector<std::string> order;
  ProcessGroup g(s);
  g.spawn("a", [&](Process& self) {
    self.sleep_for(10);
    order.push_back("a10");
    self.sleep_for(20);  // wakes at 30
    order.push_back("a30");
  });
  g.spawn("b", [&](Process& self) {
    self.sleep_for(20);
    order.push_back("b20");
    self.sleep_for(20);  // wakes at 40
    order.push_back("b40");
  });
  g.run_all();
  EXPECT_EQ(order,
            (std::vector<std::string>{"a10", "b20", "a30", "b40"}));
}

TEST(Process, SuspendAndWakeFromEvent) {
  Simulator s;
  bool resumed = false;
  ProcessGroup g(s);
  Process& p = g.spawn("p0", [&](Process& self) {
    self.suspend();
    resumed = true;
    EXPECT_EQ(s.now(), 77);
  });
  s.schedule_at(77, [&] { p.wake(); });
  g.run_all();
  EXPECT_TRUE(resumed);
}

TEST(Process, WakeOnNonSuspendedProcessIsNoop) {
  Simulator s;
  ProcessGroup g(s);
  Process& p = g.spawn("p0", [&](Process& self) { self.sleep_for(10); });
  s.schedule_at(0, [&] { p.wake(); });  // before it even starts: no-op
  g.run_all();
  EXPECT_TRUE(p.finished());
}

TEST(Process, ChargeAccumulatesAndFlushesOnSuspend) {
  Simulator s;
  SimTime t_end = -1;
  ProcessGroup g(s);
  g.spawn("p0", [&](Process& self) {
    self.charge(3 * kMicrosecond);  // below threshold: no sleep yet
    self.charge(4 * kMicrosecond);
    self.sleep_for(0);  // no-op sleep, debt still pending
    self.flush_charge();
    t_end = s.now();
  });
  g.run_all();
  EXPECT_EQ(t_end, 7 * kMicrosecond);
}

TEST(Process, ChargeOverThresholdFlushesImmediately) {
  Simulator s;
  SimTime t_mid = -1;
  ProcessGroup g(s);
  g.spawn("p0", [&](Process& self) {
    self.charge(Process::kChargeFlushThreshold + kMicrosecond);
    t_mid = s.now();
  });
  g.run_all();
  EXPECT_EQ(t_mid, Process::kChargeFlushThreshold + kMicrosecond);
}

TEST(Process, ExceptionInBodyPropagatesFromRunAll) {
  Simulator s;
  ProcessGroup g(s);
  g.spawn("bad", [&](Process&) { throw std::runtime_error("boom"); });
  EXPECT_THROW(g.run_all(), std::runtime_error);
}

TEST(Process, DeadlockIsDetected) {
  Simulator s;
  ProcessGroup g(s);
  g.spawn("stuck", [&](Process& self) { self.suspend(); });  // never woken
  EXPECT_THROW(g.run_all(), std::runtime_error);
}

TEST(Process, ManyProcessesPingPongViaWaitQueue) {
  Simulator s;
  WaitQueue wq;
  int turns = 0;
  bool token = false;
  ProcessGroup g(s);
  g.spawn("producer", [&](Process& self) {
    for (int i = 0; i < 100; ++i) {
      token = true;
      wq.notify_all();
      self.sleep_for(10);
    }
  });
  g.spawn("consumer", [&](Process& self) {
    for (int i = 0; i < 100; ++i) {
      while (!token) wq.wait(self);
      token = false;
      ++turns;
    }
  });
  g.run_all();
  EXPECT_EQ(turns, 100);
}

TEST(ProcessGroup, RunAllCompletesWithManyProcesses) {
  Simulator s;
  ProcessGroup g(s);
  int done = 0;
  for (int i = 0; i < 16; ++i) {
    g.spawn("p" + std::to_string(i), [&, i](Process& self) {
      self.sleep_for(i * kMicrosecond);
      ++done;
    });
  }
  g.run_all();
  EXPECT_EQ(done, 16);
}

TEST(WaitQueue, NotifyOneWakesSingleWaiter) {
  Simulator s;
  WaitQueue wq;
  int woken = 0;
  ProcessGroup g(s);
  bool go = false;
  for (int i = 0; i < 3; ++i) {
    g.spawn("w" + std::to_string(i), [&](Process& self) {
      while (!go) wq.wait(self);
      ++woken;
    });
  }
  g.spawn("signaller", [&](Process& self) {
    self.sleep_for(10);
    go = true;
    wq.notify_all();
  });
  g.run_all();
  EXPECT_EQ(woken, 3);
}

}  // namespace
}  // namespace sctpmpi::sim
