// Sharded driver unit tests: the SPSC handoff queue, the deterministic
// (time, source shard, seq) ingest order, conservative windowing, deadlock
// detection and error propagation. These run multi-threaded on purpose —
// the sharded-tsan CI lane replays them under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/spsc_queue.hpp"
#include "sim/time.hpp"

namespace sctpmpi::sim {
namespace {

TEST(SpscQueue, FifoAcrossSegmentBoundaries) {
  // Segment capacity is 128; push enough to cross several segments.
  SpscQueue<int, 16> q;
  EXPECT_TRUE(q.empty());
  constexpr int kCount = 1000;
  std::thread producer([&q] {
    for (int i = 0; i < kCount; ++i) q.push(int{i});
  });
  int expect = 0;
  while (expect < kCount) {
    int v = -1;
    if (q.pop(v)) {
      EXPECT_EQ(v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, BatchedConsumeDrainsInFifoOrder) {
  SpscQueue<int, 16> q;
  for (int i = 0; i < 100; ++i) q.push(int{i});
  std::vector<int> seen;
  // Partial batch first: consume() must stop at `max`, not at a segment
  // boundary, and a later call must resume exactly where it left off.
  EXPECT_EQ(q.consume(37, [&seen](int&& v) { seen.push_back(v); }), 37u);
  EXPECT_EQ(q.consume(1000, [&seen](int&& v) { seen.push_back(v); }), 63u);
  ASSERT_EQ(seen.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.consume(10, [](int&&) {}), 0u);
}

TEST(SpscQueue, ConsumeUnboundedMaxDoesNotWrap) {
  // Regression: consume(SIZE_MAX) with a nonzero read cursor used to
  // compute `read_ + (max - n)`, which wraps std::size_t and made the
  // batch stop immediately. Advance the cursor first, then drain all.
  SpscQueue<int, 16> q;
  for (int i = 0; i < 300; ++i) q.push(int{i});
  int v = -1;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.pop(v));
  std::size_t n = 0;
  int expect = 5;
  q.consume(static_cast<std::size_t>(-1), [&](int&& x) {
    EXPECT_EQ(x, expect);
    ++expect;
    ++n;
  });
  EXPECT_EQ(n, 295u);
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, ConsumeRacesProducerWithoutLossOrReorder) {
  SpscQueue<int, 16> q;
  constexpr int kCount = 20000;
  std::thread producer([&q] {
    for (int i = 0; i < kCount; ++i) q.push(int{i});
  });
  int expect = 0;
  while (expect < kCount) {
    q.consume(64, [&expect](int&& v) {
      EXPECT_EQ(v, expect);
      ++expect;
    });
  }
  producer.join();
  EXPECT_TRUE(q.empty());
}

TEST(SpscQueue, DrainsOwnedElementsOnDestruction) {
  // Leak check (the default tier runs under ASan in CI): destroy with
  // elements still queued.
  SpscQueue<std::vector<int>, 4> q;
  for (int i = 0; i < 10; ++i) q.push(std::vector<int>(100, i));
  std::vector<int> v;
  ASSERT_TRUE(q.pop(v));
  EXPECT_EQ(v.size(), 100u);
  // ~SpscQueue reclaims the other nine.
}

TEST(ShardGroup, SingleShardRunsToCompletion) {
  ShardGroup g(1);
  std::vector<int> order;
  g.shard(0).schedule_at(20, [&order] { order.push_back(2); });
  g.shard(0).schedule_at(10, [&order] { order.push_back(1); });
  g.run({});
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(g.shard(0).empty());
}

// The ordering contract: cross-shard messages enter the destination in
// (deliver time, source shard index, producer seq) order, regardless of
// the order the pushes happened in wall-clock terms.
TEST(ShardGroup, IngestOrdersByTimeThenSourceShardThenSeq) {
  ShardGroup g(3);
  ShardGroup::Channel* ch02 = &g.channel(0, 2);
  ShardGroup::Channel* ch12 = &g.channel(1, 2);
  std::vector<std::string> order;  // only shard 2's worker appends
  // Both producers push at sim time 10; deliveries land at 90/100, beyond
  // the 50 ns lookahead so the windowing is safe by construction.
  g.shard(0).schedule_at(10, [&order, ch02] {
    ch02->push(100, [&order] { order.push_back("s0.a"); });
    ch02->push(100, [&order] { order.push_back("s0.b"); });
  });
  g.shard(1).schedule_at(10, [&order, ch12] {
    ch12->push(90, [&order] { order.push_back("s1.early"); });
    ch12->push(100, [&order] { order.push_back("s1.c"); });
  });
  ShardGroup::RunOptions opts;
  opts.lookahead = 50;
  g.run(opts);
  // Time 90 first; at time 100 source shard 0 precedes shard 1, and within
  // shard 0 the producer's push order (seq) is preserved.
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "s1.early");
  EXPECT_EQ(order[1], "s0.a");
  EXPECT_EQ(order[2], "s0.b");
  EXPECT_EQ(order[3], "s1.c");
}

// Conservative windowing: a two-shard ping-pong where each delivery
// schedules the next one. Every delivery must execute at exactly its
// carried timestamp, and the driver must take several rounds to get there.
TEST(ShardGroup, CrossShardPingPongExecutesAtCarriedTimes) {
  constexpr SimTime kHop = 100;
  constexpr int kHops = 32;
  ShardGroup g(2);
  ShardGroup::Channel* c01 = &g.channel(0, 1);
  ShardGroup::Channel* c10 = &g.channel(1, 0);
  std::vector<SimTime> at[2];  // per-shard observation, worker-local
  std::function<void(int)> hop = [&](int n) {
    const unsigned dst = static_cast<unsigned>(n % 2);
    at[dst].push_back(g.shard(dst).now());
    if (n >= kHops) return;
    ShardGroup::Channel* ch = dst == 0 ? c01 : c10;
    const SimTime t = g.shard(dst).now() + kHop;
    ch->push(t, [&hop, n] { hop(n + 1); });
  };
  g.shard(0).schedule_at(0, [&hop] { hop(0); });
  ShardGroup::RunOptions opts;
  opts.lookahead = kHop;
  g.run(opts);
  ASSERT_EQ(at[0].size() + at[1].size(), static_cast<std::size_t>(kHops + 1));
  for (int s = 0; s < 2; ++s) {
    for (std::size_t i = 0; i < at[s].size(); ++i) {
      // Shard 0 observes hops 0, 2, 4...; shard 1 hops 1, 3, 5...
      const SimTime expect = static_cast<SimTime>(2 * i + (s == 1)) * kHop;
      EXPECT_EQ(at[s][i], expect) << "shard " << s << " hop " << i;
    }
  }
  EXPECT_GT(g.rounds(), 1u);
}

// Echo-bound regression: the window cap defaults far beyond the 200 ns
// round trip, and shard 1 is otherwise idle (its bound is "no event"), so
// a window formula without the self-cycle term L*[i][i] would let shard 0
// run its 250/350 chatter before the reply to its own request came back —
// the reply would then execute late, at the clamped current time instead
// of its carried time.
TEST(ShardGroup, EchoRepliesNeverLandInThePast) {
  ShardGroup g(2);
  ShardGroup::Channel* req = &g.channel(0, 1);
  ShardGroup::Channel* rep = &g.channel(1, 0);
  for (const SimTime t : {150, 250, 350}) g.shard(0).schedule_at(t, [] {});
  std::vector<std::pair<SimTime, SimTime>> at;  // (carried, executed)
  g.shard(0).schedule_at(0, [&] {
    req->push(100, [&] {
      const SimTime t = g.shard(1).now() + 100;
      rep->push(t, [&at, &g, t] { at.emplace_back(t, g.shard(0).now()); });
    });
  });
  ShardGroup::RunOptions opts;
  opts.lookahead = 100;
  g.run(opts);
  ASSERT_EQ(at.size(), 1u);
  EXPECT_EQ(at[0].first, 200);
  EXPECT_EQ(at[0].second, 200);
}

// Barrier stress for the spin-then-park waiter: a long chain of rounds
// where three of four shards are idle every round and must park at the
// barrier, woken by the last arriver's notify. This is the test the
// sharded-tsan lane leans on to race the futex path; correctness here is
// that every hop executes at its carried time and reruns agree.
TEST(ShardGroup, ParkedWaitersSurviveManyRounds) {
  constexpr SimTime kHop = 100;
  constexpr int kHops = 1200;
  auto run_once = [] {
    ShardGroup g(4);
    ShardGroup::Channel* ring[4];
    for (unsigned s = 0; s < 4; ++s) ring[s] = &g.channel(s, (s + 1) % 4);
    std::uint64_t bad = 0;  // hops executing off their carried time
    std::function<void(int, SimTime)> hop = [&](int n, SimTime t) {
      const unsigned dst = static_cast<unsigned>(n % 4);
      if (g.shard(dst).now() != t) ++bad;
      if (n >= kHops) return;
      ring[dst]->push(t + kHop, [&hop, n, t] { hop(n + 1, t + kHop); });
    };
    g.shard(0).schedule_at(0, [&hop] { hop(0, 0); });
    ShardGroup::RunOptions opts;
    opts.lookahead = kHop;
    g.run(opts);
    EXPECT_EQ(bad, 0u);
    return g.rounds();
  };
  const std::uint64_t a = run_once();
  const std::uint64_t b = run_once();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, static_cast<std::uint64_t>(kHops) / 4);
}

TEST(ShardGroup, ReportsDeadlockWhenShardsNeverFinish) {
  ShardGroup g(2);
  (void)g.channel(0, 1);
  ShardGroup::RunOptions opts;
  opts.lookahead = 100;
  opts.shard_done = [](unsigned) { return false; };  // never satisfied
  EXPECT_THROW(g.run(opts), std::runtime_error);
}

TEST(ShardGroup, PropagatesEventExceptionsFromAnyShard) {
  ShardGroup g(2);
  (void)g.channel(0, 1);
  g.shard(1).schedule_at(10, [] { throw std::logic_error("boom"); });
  ShardGroup::RunOptions opts;
  opts.lookahead = 100;
  EXPECT_THROW(g.run(opts), std::logic_error);
}

TEST(ShardGroup, StopCounterCutsWithoutAdvancingClock) {
  ShardGroup g(1);
  std::atomic<std::uint32_t> remaining{2};
  std::vector<int> ran;
  g.shard(0).schedule_at(10, [&] {
    ran.push_back(1);
    remaining.fetch_sub(1, std::memory_order_relaxed);
  });
  g.shard(0).schedule_at(20, [&] {
    ran.push_back(2);
    remaining.fetch_sub(1, std::memory_order_relaxed);
  });
  g.shard(0).schedule_at(30, [&] { ran.push_back(3); });
  ShardGroup::RunOptions opts;
  opts.stop = &remaining;
  g.run(opts);
  // The cut lands right after the event that zeroed the counter: event 3
  // stays pending and the clock stays at the cutting event's time.
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_EQ(g.shard(0).now(), 20);
  EXPECT_FALSE(g.shard(0).empty());
}

// Rerunning the same event schedule on the same sharding must reproduce
// the same execution order — the driver itself introduces no
// nondeterminism even when worker threads race in wall-clock time.
TEST(ShardGroup, RerunIsDeterministic) {
  auto run_once = [] {
    ShardGroup g(4);
    ShardGroup::Channel* ch[4];
    for (unsigned s = 1; s < 4; ++s) ch[s] = &g.channel(s, 0);
    std::vector<std::pair<SimTime, int>> seen;  // appended by shard 0 only
    for (unsigned s = 1; s < 4; ++s) {
      g.shard(s).schedule_at(5 * static_cast<SimTime>(s), [&, s] {
        for (int k = 0; k < 8; ++k) {
          // Same-instant deliveries from every producer: the tie-break
          // has to do all the work.
          ch[s]->push(1000, [&seen, s, k] {
            seen.emplace_back(static_cast<SimTime>(s), k);
          });
        }
      });
    }
    ShardGroup::RunOptions opts;
    opts.lookahead = 100;
    g.run(opts);
    return seen;
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.size(), 24u);
  EXPECT_EQ(a, b);
  // And the order is exactly (source shard, seq).
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, static_cast<SimTime>(i / 8 + 1));
    EXPECT_EQ(a[i].second, static_cast<int>(i % 8));
  }
}

}  // namespace
}  // namespace sctpmpi::sim
