#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace sctpmpi::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng r(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.uniform_int(17), 17u);
}

TEST(Rng, UniformRangeIsInclusive) {
  Rng r(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = r.uniform_range(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng r(23);
  int hits = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i)
    if (r.chance(0.01)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.01, 0.002);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng r(29);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.1);
}

TEST(Rng, ForkedStreamsAreIndependentOfParentUse) {
  Rng parent(99);
  Rng f1 = parent.fork(1);
  // Consuming the parent after forking must not change the fork's stream.
  Rng parent2(99);
  for (int i = 0; i < 50; ++i) parent2.next();
  Rng f2 = Rng(99).fork(1);
  EXPECT_EQ(f1.next(), f2.next());
}

TEST(Rng, ForkedStreamsDifferByStreamId) {
  Rng parent(99);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace sctpmpi::sim
