#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sctpmpi::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, SameTimeEventsFireFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesRelativeDelay) {
  Simulator s;
  SimTime fired = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 150);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator s;
  SimTime fired = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { fired = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired, 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  auto id = s.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(s.cancel(id));  // double cancel reports failure
}

TEST(Simulator, CancelInvalidIdIsRejected) {
  Simulator s;
  EXPECT_FALSE(s.cancel(Simulator::kInvalidEvent));
  EXPECT_FALSE(s.cancel(9999));
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents) {
  Simulator s;
  bool early = false, late = false;
  s.schedule_at(10, [&] { early = true; });
  s.schedule_at(1000, [&] { late = true; });
  s.run_until(100);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(s.now(), 100);
  s.run();
  EXPECT_TRUE(late);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunWithMaxEventsStopsEarly) {
  Simulator s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, LiveEventsExcludesCancelled) {
  Simulator s;
  auto a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  s.cancel(a);
  EXPECT_EQ(s.live_events(), 1u);
}

TEST(Timer, FiresAfterDelay) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(100);
  EXPECT_TRUE(t.armed());
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(s.now(), 100);
}

TEST(Timer, RearmReplacesDeadline) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(100);
  t.arm(300);
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(s.now(), 300);
}

TEST(Timer, CancelStopsFire) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(100);
  t.cancel();
  s.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, CanRearmFromWithinCallback) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] {
    if (++fires < 3) t.arm(10);
  });
  t.arm(10);
  s.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(s.now(), 30);
}

}  // namespace
}  // namespace sctpmpi::sim
