#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace sctpmpi::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 30);
}

TEST(Simulator, SameTimeEventsFireFifo) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, ScheduleAfterUsesRelativeDelay) {
  Simulator s;
  SimTime fired = -1;
  s.schedule_at(100, [&] {
    s.schedule_after(50, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_EQ(fired, 150);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator s;
  SimTime fired = -1;
  s.schedule_at(100, [&] {
    s.schedule_at(10, [&] { fired = s.now(); });  // in the past
  });
  s.run();
  EXPECT_EQ(fired, 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator s;
  bool ran = false;
  auto id = s.schedule_at(10, [&] { ran = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(s.cancel(id));  // double cancel reports failure
}

TEST(Simulator, CancelInvalidIdIsRejected) {
  Simulator s;
  EXPECT_FALSE(s.cancel(Simulator::kInvalidEvent));
  EXPECT_FALSE(s.cancel(9999));
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(Simulator, RunUntilDoesNotRunLaterEvents) {
  Simulator s;
  bool early = false, late = false;
  s.schedule_at(10, [&] { early = true; });
  s.schedule_at(1000, [&] { late = true; });
  s.run_until(100);
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(s.now(), 100);
  s.run();
  EXPECT_TRUE(late);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator s;
  EXPECT_FALSE(s.step());
  s.schedule_at(1, [] {});
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Simulator, RunWithMaxEventsStopsEarly) {
  Simulator s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(s.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, LiveEventsExcludesCancelled) {
  Simulator s;
  auto a = s.schedule_at(1, [] {});
  s.schedule_at(2, [] {});
  s.cancel(a);
  EXPECT_EQ(s.live_events(), 1u);
}

TEST(Simulator, RescheduleMovesPendingEvent) {
  Simulator s;
  SimTime fired = -1;
  auto id = s.schedule_at(10, [&] { fired = s.now(); });
  EXPECT_TRUE(s.reschedule(id, 50));
  s.run();
  EXPECT_EQ(fired, 50);
  EXPECT_FALSE(s.reschedule(id, 100));  // already fired
}

TEST(Simulator, RescheduleTakesFreshFifoPosition) {
  // An event rescheduled onto a time shared with later-scheduled events
  // fires after them, exactly as if it had been cancelled and re-added.
  Simulator s;
  std::vector<int> order;
  auto id = s.schedule_at(5, [&] { order.push_back(0); });
  s.schedule_at(5, [&] { order.push_back(1); });
  s.schedule_at(5, [&] { order.push_back(2); });
  s.reschedule(id, 5);
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(Simulator, CancelledEventsReleaseSlotsImmediately) {
  // Regression: the old tombstone scheme kept cancelled events queued (and
  // their callbacks alive) until their timestamp popped. The indexed heap
  // must reclaim both the heap entry and the slot at cancel() time.
  Simulator s;
  auto keep = s.schedule_at(1'000'000, [] {});
  for (int round = 0; round < 10'000; ++round) {
    auto id = s.schedule_at(500'000 + round, [] {});
    EXPECT_EQ(s.live_events(), 2u);
    s.cancel(id);
    EXPECT_EQ(s.live_events(), 1u);
  }
  // Slot storage tracks peak concurrency (2 here), not churn volume.
  EXPECT_LE(s.slot_capacity(), 4u);
  s.cancel(keep);
  EXPECT_TRUE(s.empty());
}

TEST(Simulator, StaleIdAfterSlotReuseIsRejected) {
  Simulator s;
  auto a = s.schedule_at(10, [] {});
  s.cancel(a);
  auto b = s.schedule_at(20, [] {});  // reuses a's slot
  EXPECT_FALSE(s.cancel(a));          // generation mismatch
  EXPECT_TRUE(s.cancel(b));
}

TEST(Simulator, MoveOnlyCallbacksAreAccepted) {
  Simulator s;
  auto box = std::make_unique<int>(7);
  int seen = 0;
  s.schedule_at(1, [&seen, box = std::move(box)] { seen = *box; });
  s.run();
  EXPECT_EQ(seen, 7);
}

TEST(Timer, FiresAfterDelay) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(100);
  EXPECT_TRUE(t.armed());
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(s.now(), 100);
}

TEST(Timer, RearmReplacesDeadline) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(100);
  t.arm(300);
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(s.now(), 300);
}

TEST(Timer, CancelStopsFire) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  t.arm(100);
  t.cancel();
  s.run();
  EXPECT_EQ(fires, 0);
}

TEST(Timer, DeadlineResetsOnCancel) {
  // Regression: deadline() used to keep reporting the stale deadline after
  // cancel(); it must read 0 whenever the timer is not armed.
  Simulator s;
  Timer t(s, [] {});
  t.arm(100);
  EXPECT_EQ(t.deadline(), 100);
  t.cancel();
  EXPECT_EQ(t.deadline(), 0);
  EXPECT_FALSE(t.armed());
}

TEST(Timer, DeadlineResetsAfterFire) {
  Simulator s;
  Timer t(s, [] {});
  t.arm(100);
  s.run();
  EXPECT_EQ(t.deadline(), 0);
}

TEST(Timer, RearmReschedulesInPlace) {
  // Re-arming an armed timer moves the existing wheel node instead of
  // allocating a fresh callback or event: the simulator holds exactly one
  // pending entry for it, and no heap slot at all until the deadline's
  // bucket window opens.
  Simulator s;
  int fires = 0;
  Timer t(s, [&] { ++fires; });
  for (int i = 0; i < 1000; ++i) t.arm(100 + i);
  EXPECT_EQ(s.live_events(), 1u);
  EXPECT_EQ(s.wheel_pending(), 1u);
  EXPECT_EQ(s.slot_capacity(), 0u);
  s.run();
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(s.now(), 1099);
}

TEST(Timer, CanRearmFromWithinCallback) {
  Simulator s;
  int fires = 0;
  Timer t(s, [&] {
    if (++fires < 3) t.arm(10);
  });
  t.arm(10);
  s.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(s.now(), 30);
}

// ---- due-now FIFO --------------------------------------------------------
// Events scheduled at t <= now() take the O(1) side-queue fast path instead
// of the heap. These tests pin the cases where the FIFO's tombstoning and
// rank interleaving could diverge from heap semantics.

TEST(SimulatorDueNow, CancelledDueEventDoesNotFire) {
  Simulator s;
  bool ran = false;
  s.schedule_at(100, [&] {
    const auto id = s.schedule_at(s.now(), [&] { ran = true; });
    EXPECT_TRUE(s.cancel(id));  // tombstones the deque entry
  });
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(s.empty());
}

TEST(SimulatorDueNow, RescheduleDueEventToFutureMovesIt) {
  Simulator s;
  SimTime fired = -1;
  s.schedule_at(100, [&] {
    const auto id = s.schedule_at(s.now(), [&] { fired = s.now(); });
    EXPECT_TRUE(s.reschedule(id, 250));  // due-FIFO entry -> heap
  });
  s.run();
  EXPECT_EQ(fired, 250);
}

TEST(SimulatorDueNow, RescheduleDueEventToNowTakesFreshFifoPosition) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(100, [&] {
    const auto a = s.schedule_at(s.now(), [&] { order.push_back(1); });
    s.schedule_at(s.now(), [&] { order.push_back(2); });
    EXPECT_TRUE(s.reschedule(a, s.now()));  // drops behind event 2
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(SimulatorDueNow, SlotReuseAtSameInstantFiresNewEventOnce) {
  // Cancel frees the slot while its tombstoned deque entry is still
  // queued; an immediate re-schedule at the same instant reuses the slot.
  // The stale entry must not fire the new callback (nor fire it twice).
  Simulator s;
  int fires = 0;
  s.schedule_at(100, [&] {
    const auto a = s.schedule_at(s.now(), [] { FAIL() << "cancelled"; });
    EXPECT_TRUE(s.cancel(a));
    s.schedule_at(s.now(), [&] { ++fires; });  // may reuse a's slot
  });
  s.run();
  EXPECT_EQ(fires, 1);
}

TEST(SimulatorDueNow, ChainedDueEventsDrainBeforeClockAdvances) {
  Simulator s;
  std::vector<SimTime> times;
  s.schedule_at(100, [&] {
    s.schedule_at(s.now(), [&] {
      times.push_back(s.now());
      s.schedule_at(s.now(), [&] { times.push_back(s.now()); });
    });
  });
  s.schedule_at(101, [&] { times.push_back(s.now()); });
  s.run();
  EXPECT_EQ(times, (std::vector<SimTime>{100, 100, 101}));
}

TEST(SimulatorDueNow, DueEventsOutrankNothingScheduledEarlier) {
  // A timer armed before the due event but landing at the same instant
  // (wheel -> heap migration) keeps its earlier arm-time sequence number
  // and must fire first.
  Simulator s;
  std::vector<int> order;
  Timer t(s, [&] { order.push_back(1); });
  t.arm(100);
  s.schedule_at(100, [&] { order.push_back(2); });
  s.schedule_at(50, [&] {
    // At t=50 this schedules for t=50 (due) -- fires before everything
    // at t=100 but after nothing at t=50.
    s.schedule_at(s.now(), [&] { order.push_back(0); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SimulatorDueNow, LiveEventsCountsDueEntries) {
  Simulator s;
  s.schedule_at(100, [&] {
    const auto a = s.schedule_at(s.now(), [] {});
    s.schedule_at(s.now(), [] {});
    EXPECT_EQ(s.live_events(), 2u);
    s.cancel(a);
    EXPECT_EQ(s.live_events(), 1u);
  });
  EXPECT_EQ(s.live_events(), 1u);
  s.run();
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace sctpmpi::sim
