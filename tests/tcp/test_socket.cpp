#include "tcp/socket.hpp"

#include <gtest/gtest.h>

#include "tests/support/tcp_fixture.hpp"

namespace sctpmpi::tcp {
namespace {

using test::pattern_bytes;
using test::TcpPairFixture;

class TcpSocketTest : public TcpPairFixture {};

TEST_F(TcpSocketTest, ThreeWayHandshakeEstablishes) {
  build();
  auto [client, server] = connect_pair();
  EXPECT_EQ(client->state(), TcpState::kEstablished);
  EXPECT_EQ(server->state(), TcpState::kEstablished);
  EXPECT_EQ(server->remote_port(), client->local_port());
}

TEST_F(TcpSocketTest, SendBeforeConnectReturnsAgain) {
  build();
  TcpSocket* s = stack_a_->create_socket();
  auto data = pattern_bytes(10);
  EXPECT_EQ(s->send(data), kAgain);
}

TEST_F(TcpSocketTest, RecvOnEmptyReturnsAgain) {
  build();
  auto [client, server] = connect_pair();
  std::array<std::byte, 16> buf;
  EXPECT_EQ(client->recv(buf), kAgain);
  EXPECT_EQ(server->recv(buf), kAgain);
}

TEST_F(TcpSocketTest, SmallTransferDeliversExactBytes) {
  build();
  auto [client, server] = connect_pair();
  auto data = pattern_bytes(100);
  auto rx = transfer(client, server, data);
  EXPECT_EQ(rx, data);
}

TEST_F(TcpSocketTest, BulkTransferDeliversExactBytes) {
  build();
  auto [client, server] = connect_pair();
  auto data = pattern_bytes(1 << 20);  // 1 MiB, many windows
  auto rx = transfer(client, server, data);
  EXPECT_EQ(rx, data);
  EXPECT_EQ(server->stats().retransmits, 0u);
}

TEST_F(TcpSocketTest, TransferWorksInBothDirectionsConcurrently) {
  build();
  auto [client, server] = connect_pair();
  auto d1 = pattern_bytes(200'000, 1);
  auto d2 = pattern_bytes(150'000, 2);

  std::size_t s1 = 0, s2 = 0;
  std::vector<std::byte> r1, r2;
  std::array<std::byte, 8192> buf;
  auto pump = [&] {
    while (s1 < d1.size()) {
      auto n = client->send(std::span(d1).subspan(s1));
      if (n <= 0) break;
      s1 += static_cast<std::size_t>(n);
    }
    while (s2 < d2.size()) {
      auto n = server->send(std::span(d2).subspan(s2));
      if (n <= 0) break;
      s2 += static_cast<std::size_t>(n);
    }
    while (true) {
      auto n = server->recv(buf);
      if (n <= 0) break;
      r1.insert(r1.end(), buf.begin(), buf.begin() + n);
    }
    while (true) {
      auto n = client->recv(buf);
      if (n <= 0) break;
      r2.insert(r2.end(), buf.begin(), buf.begin() + n);
    }
  };
  client->set_activity_callback(pump);
  server->set_activity_callback(pump);
  pump();
  run_while([&] { return r1.size() < d1.size() || r2.size() < d2.size(); });
  EXPECT_EQ(r1, d1);
  EXPECT_EQ(r2, d2);
}

TEST_F(TcpSocketTest, FlowControlWithTinyReceiverBufferNeverLosesData) {
  TcpConfig cfg;
  cfg.rcvbuf = 8 * 1024;
  build(0.0, cfg);
  auto [client, server] = connect_pair();
  auto data = pattern_bytes(256 * 1024);

  // Sender pumps eagerly; receiver drains only every 2 ms, slower than the
  // link can deliver, so the advertised window repeatedly closes.
  std::size_t sent = 0;
  std::vector<std::byte> received;
  auto pump_tx = [&] {
    while (sent < data.size()) {
      auto n = client->send(std::span(data).subspan(sent));
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
  };
  client->set_activity_callback(pump_tx);
  pump_tx();
  std::array<std::byte, 2048> buf;
  std::function<void()> drain = [&] {
    auto n = server->recv(buf);
    if (n > 0) received.insert(received.end(), buf.begin(), buf.begin() + n);
    if (received.size() < data.size()) {
      sim().schedule_after(2 * sim::kMillisecond, drain);
    }
  };
  sim().schedule_after(2 * sim::kMillisecond, drain);
  run_while([&] { return received.size() < data.size(); });
  EXPECT_EQ(received, data);
}

TEST_F(TcpSocketTest, ZeroWindowIsProbedAndRecovers) {
  TcpConfig cfg;
  cfg.rcvbuf = 4 * 1024;
  build(0.0, cfg);
  auto [client, server] = connect_pair();
  auto data = pattern_bytes(16 * 1024);

  std::size_t sent = 0;
  auto pump_tx = [&] {
    while (sent < data.size()) {
      auto n = client->send(std::span(data).subspan(sent));
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
  };
  client->set_activity_callback(pump_tx);
  pump_tx();
  // Let the window fill and stay closed for a while.
  sim().run_until(sim().now() + 3 * sim::kSecond);
  // Now drain everything.
  std::vector<std::byte> received;
  std::array<std::byte, 4096> buf;
  auto pump_rx = [&] {
    while (true) {
      auto n = server->recv(buf);
      if (n <= 0) break;
      received.insert(received.end(), buf.begin(), buf.begin() + n);
    }
  };
  server->set_activity_callback(pump_rx);
  pump_rx();
  run_while([&] { return received.size() < data.size(); });
  EXPECT_EQ(received, data);
}

TEST_F(TcpSocketTest, ZeroWindowProbeRetransmissionCannotOverrunSentData) {
  // Regression: with only persist-probe bytes in flight, an RTO
  // retransmission must not cover more sequence space than was ever sent —
  // the peer would acknowledge "unsent" data and the sender would discard
  // those ACKs forever, wedging the connection.
  TcpConfig cfg;
  cfg.rcvbuf = 4 * 1024;
  build(0.0, cfg);
  auto [client, server] = connect_pair();
  auto data = pattern_bytes(20 * 1024);
  std::size_t sent = 0;
  auto pump_tx = [&] {
    while (sent < data.size()) {
      auto n = client->send(std::span(data).subspan(sent));
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
  };
  client->set_activity_callback(pump_tx);
  pump_tx();
  // Window fills; persist probes trickle out; let at least one RTO of the
  // probe bytes fire before the reader drains anything.
  sim().run_until(sim().now() + 2500 * sim::kMillisecond);
  std::vector<std::byte> received;
  std::array<std::byte, 4096> buf;
  server->set_activity_callback([&] {
    while (true) {
      auto n = server->recv(buf);
      if (n <= 0) break;
      received.insert(received.end(), buf.begin(), buf.begin() + n);
    }
  });
  while (true) {
    auto n = server->recv(buf);
    if (n <= 0) break;
    received.insert(received.end(), buf.begin(), buf.begin() + n);
  }
  run_while([&] { return received.size() < data.size(); });
  EXPECT_EQ(received, data);
  EXPECT_FALSE(client->failed());
}

TEST_F(TcpSocketTest, SingleDropTriggersFastRetransmit) {
  build();
  auto [client, server] = connect_pair();
  // Drop exactly one data-bearing packet mid-stream.
  int data_pkts = 0;
  cluster_->uplink(0).faults().drop_if([&](const net::Packet& p) {
    if (p.payload.size() > 100) {  // data segment, not a bare ACK
      ++data_pkts;
      return data_pkts == 10;
    }
    return false;
  });
  auto data = pattern_bytes(120 * 1024);
  auto rx = transfer(client, server, data);
  EXPECT_EQ(rx, data);
  EXPECT_GE(client->stats().fast_retransmits, 1u);
  EXPECT_EQ(client->stats().timeouts, 0u)
      << "single mid-stream loss must recover without RTO";
}

TEST_F(TcpSocketTest, TailLossRequiresTimeout) {
  build();
  auto [client, server] = connect_pair();
  // Drop the very last data packet: no dupacks can follow.
  int data_pkts = 0;
  const int total_data_pkts = 8;  // 8 segments for ~11.2 KiB
  cluster_->uplink(0).faults().drop_if([&](const net::Packet& p) {
    if (p.payload.size() > 100) {
      ++data_pkts;
      return data_pkts == total_data_pkts;
    }
    return false;
  });
  auto data = pattern_bytes(8 * 1400);
  auto rx = transfer(client, server, data);
  EXPECT_EQ(rx, data);
  EXPECT_GE(client->stats().timeouts, 1u);
  EXPECT_GE(sim().now(), sim::kSecond) << "RTO floor is 1s";
}

TEST_F(TcpSocketTest, RtoBacksOffExponentially) {
  build();
  auto [client, server] = connect_pair();
  // Black-hole the forward path entirely after the handshake.
  cluster_->uplink(0).faults().drop_if(
      [](const net::Packet& p) { return p.payload.size() > 100; });
  auto data = pattern_bytes(1000);
  ASSERT_GT(client->send(data), 0);
  sim::SimTime start = sim().now();
  // Run 20 virtual seconds: with 1s min RTO and doubling we expect about
  // 1+2+4+8 -> 4-5 timeouts, not 20.
  sim().run_until(start + 20 * sim::kSecond);
  EXPECT_GE(client->stats().timeouts, 3u);
  EXPECT_LE(client->stats().timeouts, 6u);
}

TEST_F(TcpSocketTest, TransfersSurviveRandomLoss) {
  for (double loss : {0.01, 0.02, 0.05}) {
    SCOPED_TRACE(loss);
    build(loss, {}, /*seed=*/77);
    auto [client, server] = connect_pair();
    auto data = pattern_bytes(300 * 1024);
    auto rx = transfer(client, server, data);
    EXPECT_EQ(rx, data);
    EXPECT_GT(client->stats().retransmits, 0u);
  }
}

TEST_F(TcpSocketTest, LossRunsAreDeterministic) {
  auto run_once = [&]() {
    build(0.02, {}, /*seed=*/5);
    auto [client, server] = connect_pair();
    auto data = pattern_bytes(100 * 1024);
    auto rx = transfer(client, server, data);
    EXPECT_EQ(rx, data);
    return std::tuple(sim().now(), client->stats().retransmits,
                      client->stats().timeouts);
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST_F(TcpSocketTest, NagleCoalescesSmallWrites) {
  TcpConfig nagle_on;
  nagle_on.nagle = true;
  TcpConfig nagle_off;
  nagle_off.nagle = false;

  auto run_cfg = [&](TcpConfig cfg) {
    build(0.0, cfg);
    auto [client, server] = connect_pair();
    std::vector<std::byte> received;
    std::array<std::byte, 4096> buf;
    server->set_activity_callback([&] {
      while (true) {
        auto n = server->recv(buf);
        if (n <= 0) break;
        received.insert(received.end(), buf.begin(), buf.begin() + n);
      }
    });
    // 200 x 100-byte application writes, paced 10us apart.
    auto chunk = pattern_bytes(100);
    for (int i = 0; i < 200; ++i) {
      sim().schedule_at(i * 10 * sim::kMicrosecond, [&, chunk] {
        (void)client->send(chunk);
      });
    }
    run_while([&] { return received.size() < 20'000; });
    return client->stats().segments_sent;
  };

  auto with_nagle = run_cfg(nagle_on);
  auto without_nagle = run_cfg(nagle_off);
  EXPECT_LT(with_nagle, without_nagle)
      << "Nagle must coalesce paced small writes into fewer segments";
}

TEST_F(TcpSocketTest, DelayedAckReducesPureAcks) {
  TcpConfig cfg;
  EXPECT_TRUE(cfg.delayed_ack);
  build(0.0, cfg);
  auto [client, server] = connect_pair();
  auto data = pattern_bytes(500 * 1024);
  transfer(client, server, data);
  // Receiver acks at most every other full segment (plus window updates):
  // far fewer segments from the server than data segments from the client.
  EXPECT_LT(server->stats().segments_sent,
            client->stats().segments_sent * 3 / 4);
}

TEST_F(TcpSocketTest, CloseHandshakeReachesTerminalStates) {
  build();
  auto [client, server] = connect_pair();
  client->close();
  // Server sees EOF, then closes too.
  std::array<std::byte, 64> buf;
  run_while([&] { return server->recv(buf) != 0; });
  server->close();
  run_while([&] {
    return client->state() != TcpState::kTimeWait ||
           server->state() != TcpState::kClosed;
  });
  EXPECT_EQ(client->recv(buf), 0) << "client also sees EOF";
}

TEST_F(TcpSocketTest, CloseFlushesQueuedDataBeforeFin) {
  build();
  auto [client, server] = connect_pair();
  auto data = pattern_bytes(200 * 1024);
  std::size_t sent = 0;
  auto pump_tx = [&] {
    while (sent < data.size()) {
      auto n = client->send(std::span(data).subspan(sent));
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    if (sent == data.size()) client->close();
  };
  client->set_activity_callback(pump_tx);
  pump_tx();
  std::vector<std::byte> received;
  std::array<std::byte, 8192> buf;
  bool eof = false;
  server->set_activity_callback([&] {
    while (true) {
      auto n = server->recv(buf);
      if (n > 0) {
        received.insert(received.end(), buf.begin(), buf.begin() + n);
      } else {
        eof = n == 0;
        break;
      }
    }
  });
  run_while([&] { return !eof; });
  EXPECT_EQ(received, data);
}

TEST_F(TcpSocketTest, AbortSendsRstAndPeerFails) {
  build();
  auto [client, server] = connect_pair();
  client->abort();
  run_while([&] { return !server->failed(); });
  std::array<std::byte, 16> buf;
  EXPECT_EQ(server->recv(buf), kError);
  EXPECT_EQ(server->send(buf), kError);
}

TEST_F(TcpSocketTest, ManyParallelConnectionsWork) {
  build();
  TcpSocket* listener = stack_b_->create_socket();
  listener->bind(9000);
  listener->listen();
  constexpr int kConns = 50;
  std::vector<TcpSocket*> clients;
  for (int i = 0; i < kConns; ++i) {
    TcpSocket* c = stack_a_->create_socket();
    c->connect(cluster_->addr(1), 9000);
    clients.push_back(c);
  }
  std::vector<TcpSocket*> servers;
  run_while([&] {
    while (TcpSocket* s = listener->accept()) servers.push_back(s);
    return servers.size() < kConns;
  });
  for (auto* c : clients) EXPECT_TRUE(c->connected());
  // Distinct four-tuples: all client ports unique.
  std::set<std::uint16_t> ports;
  for (auto* c : clients) ports.insert(c->local_port());
  EXPECT_EQ(ports.size(), static_cast<std::size_t>(kConns));
}

TEST_F(TcpSocketTest, HandshakeSurvivesSynLoss) {
  build();
  // Drop the first SYN.
  bool dropped = false;
  cluster_->uplink(0).faults().drop_if([&](const net::Packet&) {
    if (!dropped) {
      dropped = true;
      return true;
    }
    return false;
  });
  auto [client, server] = connect_pair();
  EXPECT_TRUE(client->connected());
  EXPECT_GE(sim().now(), 3 * sim::kSecond) << "initial RTO is 3s";
}

TEST_F(TcpSocketTest, CongestionWindowGrowsDuringSlowStart) {
  build();
  auto [client, server] = connect_pair();
  const auto initial_cwnd = client->cwnd();
  auto data = pattern_bytes(400 * 1024);
  transfer(client, server, data);
  EXPECT_GT(client->cwnd(), initial_cwnd);
}

TEST_F(TcpSocketTest, StatsCountPayloadBytesExactly) {
  build();
  auto [client, server] = connect_pair();
  auto data = pattern_bytes(12345);
  transfer(client, server, data);
  EXPECT_EQ(client->stats().bytes_sent, 12345u);
  EXPECT_EQ(server->stats().bytes_received, 12345u);
}

}  // namespace
}  // namespace sctpmpi::tcp
