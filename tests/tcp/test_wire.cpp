#include "tcp/wire.hpp"

#include <gtest/gtest.h>

#include "net/bytes.hpp"

namespace sctpmpi::tcp {
namespace {

TEST(TcpWire, RoundTripsPlainDataSegment) {
  Segment s;
  s.sport = 1234;
  s.dport = 80;
  s.seq = 0xDEADBEEF;
  s.ack = 0x01020304;
  s.ack_flag = true;
  s.psh = true;
  s.wnd = 220 * 1024;
  s.payload = net::SliceChain::adopt({std::byte{1}, std::byte{2}, std::byte{3}});

  Segment d = Segment::decode(s.encode());
  EXPECT_EQ(d.sport, 1234);
  EXPECT_EQ(d.dport, 80);
  EXPECT_EQ(d.seq, 0xDEADBEEF);
  EXPECT_EQ(d.ack, 0x01020304u);
  EXPECT_TRUE(d.ack_flag);
  EXPECT_TRUE(d.psh);
  EXPECT_FALSE(d.syn);
  EXPECT_FALSE(d.fin);
  EXPECT_FALSE(d.rst);
  EXPECT_EQ(d.payload, s.payload);
  // Window survives modulo the 64-byte scaling granularity.
  EXPECT_LE(d.wnd, s.wnd);
  EXPECT_GE(d.wnd + 64, s.wnd);
}

TEST(TcpWire, RoundTripsSynWithOptions) {
  Segment s;
  s.syn = true;
  s.seq = 42;
  s.mss_opt = 1460;
  s.sack_permitted = true;
  Segment d = Segment::decode(s.encode());
  EXPECT_TRUE(d.syn);
  EXPECT_EQ(d.mss_opt, 1460);
  EXPECT_TRUE(d.sack_permitted);
}

TEST(TcpWire, RoundTripsSackBlocks) {
  Segment s;
  s.ack_flag = true;
  s.sacks = {{100, 200}, {300, 450}, {500, 501}};
  Segment d = Segment::decode(s.encode());
  ASSERT_EQ(d.sacks.size(), 3u);
  EXPECT_EQ(d.sacks[0], (SackBlock{100, 200}));
  EXPECT_EQ(d.sacks[1], (SackBlock{300, 450}));
  EXPECT_EQ(d.sacks[2], (SackBlock{500, 501}));
}

TEST(TcpWire, PlainHeaderIsTwentyBytes) {
  Segment s;
  s.ack_flag = true;
  EXPECT_EQ(s.header_bytes(), 20u);
  EXPECT_EQ(s.encode().size(), 20u);
}

TEST(TcpWire, HeaderIsPaddedToFourByteBoundary) {
  Segment s;
  s.sack_permitted = true;  // 2-byte option -> padded to 4
  EXPECT_EQ(s.header_bytes() % 4, 0u);
  Segment d = Segment::decode(s.encode());
  EXPECT_TRUE(d.sack_permitted);
}

TEST(TcpWire, WireBytesIncludesPayload) {
  Segment s;
  s.payload = net::SliceChain::adopt(std::vector<std::byte>(100));
  EXPECT_EQ(s.wire_bytes(), s.header_bytes() + 100);
}

TEST(TcpWire, DecodeRejectsTruncatedHeader) {
  std::vector<std::byte> junk(10);
  EXPECT_THROW(Segment::decode(junk), net::DecodeError);
}

TEST(TcpWire, DecodeRejectsBadDataOffset) {
  Segment s;
  s.ack_flag = true;
  auto wire = s.encode();
  wire[12] = std::byte{0x10};  // data offset 1 word (< 5)
  EXPECT_THROW(Segment::decode(wire), net::DecodeError);
}

TEST(TcpWire, FlagsRoundTripIndividually) {
  for (int bit = 0; bit < 5; ++bit) {
    Segment s;
    s.fin = bit == 0;
    s.syn = bit == 1;
    s.rst = bit == 2;
    s.psh = bit == 3;
    s.ack_flag = bit == 4;
    Segment d = Segment::decode(s.encode());
    EXPECT_EQ(d.fin, s.fin);
    EXPECT_EQ(d.syn, s.syn);
    EXPECT_EQ(d.rst, s.rst);
    EXPECT_EQ(d.psh, s.psh);
    EXPECT_EQ(d.ack_flag, s.ack_flag);
  }
}

TEST(SeqArith, WrapAroundComparisons) {
  using net::seq_gt;
  using net::seq_lt;
  EXPECT_TRUE(seq_lt(0xFFFFFFF0u, 0x00000010u));  // across the wrap
  EXPECT_TRUE(seq_gt(0x00000010u, 0xFFFFFFF0u));
  EXPECT_FALSE(seq_lt(5, 5));
  EXPECT_TRUE(net::seq_leq(5, 5));
  EXPECT_EQ(net::seq_diff(0x00000010u, 0xFFFFFFF0u), 0x20);
}

}  // namespace
}  // namespace sctpmpi::tcp
