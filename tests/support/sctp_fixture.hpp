// Harness for SCTP socket/association tests: N-host cluster with an SCTP
// stack per host; helpers to establish associations and exchange whole
// messages via activity callbacks.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "net/cluster.hpp"
#include "sctp/socket.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "tests/support/tcp_fixture.hpp"  // pattern_bytes

namespace sctpmpi::test {

class SctpFixture : public ::testing::Test {
 protected:
  void build(double loss = 0.0, sctp::SctpConfig cfg = {},
             std::uint64_t seed = 1, unsigned hosts = 2,
             unsigned interfaces = 1) {
    stacks_.clear();
    cluster_.reset();
    sim_holder_ = std::make_unique<sim::Simulator>();
    net::ClusterParams params;
    params.hosts = hosts;
    params.interfaces = interfaces;
    params.link.loss = loss;
    cluster_ = std::make_unique<net::Cluster>(*sim_holder_, sim::Rng(seed),
                                              params);
    for (unsigned h = 0; h < hosts; ++h) {
      stacks_.push_back(std::make_unique<sctp::SctpStack>(
          cluster_->host(h), cfg, sim::Rng(seed).fork(1000 + h)));
    }
  }

  sim::Simulator& sim() { return *sim_holder_; }

  void run_while(const std::function<bool()>& cond,
                 std::size_t max_steps = 100'000'000) {
    std::size_t steps = 0;
    while (cond()) {
      ASSERT_TRUE(sim().step()) << "event queue drained while waiting";
      ASSERT_LT(++steps, max_steps) << "step limit exceeded";
    }
  }

  /// Establishes an association from host 0's socket to host 1's listening
  /// socket. Returns {client socket, server socket, client-side assoc id,
  /// server-side assoc id}.
  struct Pair {
    sctp::SctpSocket* a;
    sctp::SctpSocket* b;
    sctp::AssocId a_id;
    sctp::AssocId b_id;
  };

  Pair connect_pair(std::uint16_t port = 6000) {
    sctp::SctpSocket* server = stacks_[1]->create_socket(port);
    server->listen();
    sctp::SctpSocket* client = stacks_[0]->create_socket();
    sctp::AssocId a_id = client->connect(cluster_->addr(1), port);
    sctp::AssocId b_id = 0;
    bool a_up = false;
    run_while([&] {
      while (auto n = client->poll_notification()) {
        if (n->type == sctp::NotificationType::kCommUp) a_up = true;
      }
      while (auto n = server->poll_notification()) {
        if (n->type == sctp::NotificationType::kCommUp) b_id = n->assoc;
      }
      return !a_up || b_id == 0;
    });
    EXPECT_TRUE(client->assoc(a_id)->established());
    EXPECT_TRUE(server->assoc(b_id)->established());
    return {client, server, a_id, b_id};
  }

  /// Sends `messages` (sid, bytes) pairs from `tx` and waits for `rx` to
  /// deliver them all; returns the delivered messages in arrival order.
  struct Received {
    sctp::RecvInfo info;
    std::vector<std::byte> data;
  };

  std::vector<Received> exchange(
      sctp::SctpSocket* tx, sctp::AssocId tx_assoc, sctp::SctpSocket* rx,
      const std::vector<std::pair<std::uint16_t, std::vector<std::byte>>>&
          messages) {
    std::size_t next = 0;
    std::vector<Received> out;
    std::vector<std::byte> buf(1 << 20);
    auto pump_tx = [&] {
      while (next < messages.size()) {
        auto n = tx->sendmsg(tx_assoc, messages[next].first,
                             messages[next].second);
        if (n <= 0) break;
        ++next;
      }
    };
    auto pump_rx = [&] {
      while (true) {
        sctp::RecvInfo info;
        auto n = rx->recvmsg(buf, info);
        if (n <= 0) break;
        out.push_back(Received{
            info, std::vector<std::byte>(buf.begin(), buf.begin() + n)});
      }
    };
    tx->set_activity_callback(pump_tx);
    rx->set_activity_callback(pump_rx);
    pump_tx();
    pump_rx();
    run_while([&] { return out.size() < messages.size(); });
    tx->set_activity_callback(nullptr);
    rx->set_activity_callback(nullptr);
    return out;
  }

  std::unique_ptr<sim::Simulator> sim_holder_ =
      std::make_unique<sim::Simulator>();
  std::unique_ptr<net::Cluster> cluster_;
  std::vector<std::unique_ptr<sctp::SctpStack>> stacks_;
};

}  // namespace sctpmpi::test
