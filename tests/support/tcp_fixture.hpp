// Shared harness for TCP protocol tests: a two-host cluster with a TCP
// stack on each side and helpers to establish connections and pump bulk
// data through activity callbacks (no simulated processes needed at this
// layer).
#pragma once

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <vector>

#include "net/cluster.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "tcp/socket.hpp"

namespace sctpmpi::test {

inline std::vector<std::byte> pattern_bytes(std::size_t n,
                                            std::uint8_t seed = 1) {
  std::vector<std::byte> v(n);
  std::uint32_t x = seed;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    v[i] = static_cast<std::byte>(x >> 24);
  }
  return v;
}

class TcpPairFixture : public ::testing::Test {
 protected:
  void build(double loss = 0.0, tcp::TcpConfig cfg = {},
             std::uint64_t seed = 1) {
    // Tear down in reverse order, then recreate: a fresh Simulator per
    // build() so no stale events reference destroyed stacks.
    stack_a_.reset();
    stack_b_.reset();
    cluster_.reset();
    sim_holder_ = std::make_unique<sim::Simulator>();
    net::ClusterParams params;
    params.hosts = 2;
    params.link.loss = loss;
    cluster_ = std::make_unique<net::Cluster>(*sim_holder_, sim::Rng(seed), params);
    stack_a_ = std::make_unique<tcp::TcpStack>(cluster_->host(0), cfg,
                                               sim::Rng(seed).fork(100));
    stack_b_ = std::make_unique<tcp::TcpStack>(cluster_->host(1), cfg,
                                               sim::Rng(seed).fork(200));
  }

  /// Establishes a connection from host 0 to a listener on host 1.
  /// Returns {client, server-accepted}.
  std::pair<tcp::TcpSocket*, tcp::TcpSocket*> connect_pair(
      std::uint16_t port = 7000) {
    tcp::TcpSocket* listener = stack_b_->create_socket();
    listener->bind(port);
    listener->listen();
    tcp::TcpSocket* client = stack_a_->create_socket();
    client->connect(cluster_->addr(1), port);
    tcp::TcpSocket* server = nullptr;
    run_while([&] {
      if (server == nullptr) server = listener->accept();
      return server == nullptr || !client->connected() ||
             !server->connected();
    });
    EXPECT_NE(server, nullptr);
    EXPECT_TRUE(client->connected());
    return {client, server};
  }

  /// Steps the simulator while `cond` holds; fails the test if the event
  /// queue drains or the step limit is hit first.
  void run_while(const std::function<bool()>& cond,
                 std::size_t max_steps = 50'000'000) {
    std::size_t steps = 0;
    while (cond()) {
      ASSERT_TRUE(sim().step()) << "event queue drained while waiting";
      ASSERT_LT(++steps, max_steps) << "step limit exceeded";
    }
  }

  /// Pushes `data` through `tx` and collects the same number of bytes from
  /// `rx`, driving both ends from activity callbacks. Returns received
  /// bytes.
  std::vector<std::byte> transfer(tcp::TcpSocket* tx, tcp::TcpSocket* rx,
                                  const std::vector<std::byte>& data) {
    std::size_t sent = 0;
    std::vector<std::byte> received;
    received.reserve(data.size());

    auto pump_tx = [&] {
      while (sent < data.size()) {
        auto n = tx->send(std::span(data).subspan(sent));
        if (n <= 0) break;
        sent += static_cast<std::size_t>(n);
      }
    };
    std::array<std::byte, 16384> buf;
    auto pump_rx = [&] {
      while (true) {
        auto n = rx->recv(buf);
        if (n <= 0) break;
        received.insert(received.end(), buf.begin(), buf.begin() + n);
      }
    };
    tx->set_activity_callback(pump_tx);
    rx->set_activity_callback(pump_rx);
    pump_tx();
    pump_rx();
    run_while([&] { return received.size() < data.size(); });
    tx->set_activity_callback(nullptr);
    rx->set_activity_callback(nullptr);
    return received;
  }

  std::unique_ptr<sim::Simulator> sim_holder_ = std::make_unique<sim::Simulator>();
  sim::Simulator& sim() { return *sim_holder_; }
  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<tcp::TcpStack> stack_a_;
  std::unique_ptr<tcp::TcpStack> stack_b_;
};

}  // namespace sctpmpi::test
