// Conformance: SCTP selective retransmission (RFC 2960 §7.2.4). When one
// single-chunk packet is lost, fast retransmit must resend exactly the lost
// TSN — every other TSN crosses the wire once and only once.
#include <gtest/gtest.h>

#include <set>

#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi::test {
namespace {

TEST_F(TracedSctpFixture, OnlyTheLostTsnIsRetransmitted) {
  build_traced();
  auto pair = connect_pair();
  trace_.clear();

  // 1400-byte messages don't bundle (pmtu 1500), so each data packet
  // carries exactly one TSN and the drop maps to a single chunk.
  cluster_->uplink(0).faults().drop_matching(trace::is_sctp_data, {5});

  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> msgs;
  for (int i = 0; i < 20; ++i) {
    msgs.emplace_back(0, pattern_bytes(1400, static_cast<std::uint8_t>(i + 1)));
  }
  const auto got = exchange(pair.a, pair.a_id, pair.b, msgs);
  ASSERT_EQ(got.size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(got[i].data, msgs[i].second) << "message " << i;
  }

  const auto drops = trace_.select([](const TraceRecord& r) {
    return dropped(r) && on_point(r, "up0.0") && r.carries_data();
  });
  ASSERT_EQ(drops.size(), 1u);
  ASSERT_EQ(drops[0]->tsns.size(), 1u) << "drop should hit a single chunk";
  const std::uint32_t lost = drops[0]->tsns[0];

  // Every TSN was *queued* on the uplink exactly once — including the lost
  // one, whose only queued copy is the retransmission (the original shows
  // up as dropped-loss, never queued).
  std::set<std::uint32_t> all_tsns;
  for (const auto& r : trace_.records()) {
    if (on_point(r, "up0.0") && r.carries_data() && (queued(r) || dropped(r))) {
      for (std::uint32_t t : r.tsns) all_tsns.insert(t);
    }
  }
  ASSERT_EQ(all_tsns.size(), msgs.size());
  for (std::uint32_t t : all_tsns) {
    EXPECT_EQ(trace_.count([&](const TraceRecord& r) {
                return queued(r) && on_point(r, "up0.0") && r.has_tsn(t);
              }),
              1u)
        << "TSN " << t << " crossed the wire more than once";
  }

  // Exactly one retransmit-flagged packet, carrying exactly the lost TSN.
  const auto rtxs = trace_.select([](const TraceRecord& r) {
    return queued(r) && on_point(r, "up0.0") && r.is_retransmit() &&
           r.carries_data();
  });
  ASSERT_EQ(rtxs.size(), 1u);
  EXPECT_EQ(rtxs[0]->tsns, std::vector<std::uint32_t>{lost});

  // Driven by missing reports, not the T3 timer.
  const auto& st = pair.a->assoc(pair.a_id)->stats();
  EXPECT_GE(st.fast_retransmits, 1u);
  EXPECT_EQ(st.timeouts, 0u);
}

}  // namespace
}  // namespace sctpmpi::test
