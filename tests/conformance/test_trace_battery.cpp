// Conformance: 32-trace golden battery. Every (workload, transport, loss,
// seed) configuration below was run on the pre-event-loop-overhaul build
// (indexed-heap scheduler, per-packet link events, map-based demux) and the
// FNV-1a-64 hash of its PacketTrace text recorded. The event-loop rewrite
// (hierarchical timer wheel, batched link drain, flat-hash demux, fiber
// processes) must reproduce every one of these traces byte for byte:
// timestamps, ordering, loss decisions, retransmissions — everything.
//
// To re-record after an *intentional* wire-visible change, run with
// SCTPMPI_RECORD_GOLDEN=1 and paste the emitted table over kBattery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstdint>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "trace/packet_trace.hpp"

namespace sctpmpi::test {
namespace {

enum class Shape {
  kPingPong30k,   // Table 1 short-message ping-pong, 2 ranks
  kPingPongSsend, // 4 KiB synchronous-send ping-pong, 2 ranks
  kEager1k,       // eager-path 1 KiB ping-pong, 2 ranks
  kRing8k,        // 4-rank ring, isend/recv overlap
  kFarm16k,       // 4-rank manager/worker scatter-collect (fig10 shape)
  kMultihome8k,   // 2 ranks, 3 interfaces each (multihomed testbed)
};

struct BatteryCase {
  const char* name;
  Shape shape;
  core::TransportKind transport;
  double loss;
  std::uint64_t seed;
  std::uint64_t text_hash;  // FNV-1a 64 of PacketTrace::to_text()
  unsigned lines;
};

void pingpong(core::Mpi& mpi, std::size_t bytes, int iters, bool ssend) {
  std::vector<std::byte> tx(bytes, std::byte{0x5A});
  std::vector<std::byte> rx(bytes);
  const int peer = 1 - mpi.rank();
  for (int i = 0; i < iters; ++i) {
    if (mpi.rank() == 0) {
      if (ssend) mpi.ssend(tx, peer, 0); else mpi.send(tx, peer, 0);
      mpi.recv(rx, peer, 0);
    } else {
      mpi.recv(rx, peer, 0);
      if (ssend) mpi.ssend(tx, peer, 0); else mpi.send(tx, peer, 0);
    }
  }
}

void ring(core::Mpi& mpi, std::size_t bytes, int rounds) {
  std::vector<std::byte> tx(bytes, std::byte{0x3C});
  std::vector<std::byte> rx(bytes);
  const int n = mpi.size();
  const int next = (mpi.rank() + 1) % n;
  const int prev = (mpi.rank() + n - 1) % n;
  for (int r = 0; r < rounds; ++r) {
    core::Request s = mpi.isend(tx, next, r);
    mpi.recv(rx, prev, r);
    mpi.wait(s);
  }
}

void farm(core::Mpi& mpi, std::size_t bytes, int tasks_per_worker) {
  std::vector<std::byte> task(bytes, std::byte{0x77});
  std::vector<std::byte> result(bytes);
  const int workers = mpi.size() - 1;
  if (mpi.rank() == 0) {
    for (int t = 0; t < tasks_per_worker; ++t) {
      for (int w = 1; w <= workers; ++w) mpi.send(task, w, t);
      for (int w = 1; w <= workers; ++w) mpi.recv(result, w, t);
    }
  } else {
    for (int t = 0; t < tasks_per_worker; ++t) {
      mpi.recv(result, 0, t);
      mpi.send(result, 0, t);
    }
  }
}

struct BatteryRun {
  std::string text;
  trace::TraceSummary summary;
};

BatteryRun run_case(const BatteryCase& c, bool force_parallel = false) {
  core::WorldConfig cfg;
  cfg.transport = c.transport;
  cfg.loss = c.loss;
  cfg.seed = c.seed;
  cfg.force_parallel_driver = force_parallel;
  switch (c.shape) {
    case Shape::kPingPong30k:
    case Shape::kPingPongSsend:
    case Shape::kEager1k:
      cfg.ranks = 2;
      break;
    case Shape::kRing8k:
    case Shape::kFarm16k:
      cfg.ranks = 4;
      break;
    case Shape::kMultihome8k:
      cfg.ranks = 2;
      cfg.interfaces = 3;
      break;
  }
  core::World world(cfg);
  trace::PacketTrace trace;
  trace.attach(world.cluster());
  const Shape shape = c.shape;
  world.run([shape](core::Mpi& mpi) {
    switch (shape) {
      case Shape::kPingPong30k:  pingpong(mpi, 30 * 1024, 4, false); break;
      case Shape::kPingPongSsend: pingpong(mpi, 4 * 1024, 6, true); break;
      case Shape::kEager1k:      pingpong(mpi, 1024, 16, false); break;
      case Shape::kMultihome8k:  pingpong(mpi, 8 * 1024, 4, false); break;
      case Shape::kRing8k:       ring(mpi, 8 * 1024, 3); break;
      case Shape::kFarm16k:      farm(mpi, 16 * 1024, 2); break;
    }
  });
  BatteryRun run;
  run.summary = trace.summary();
  run.text = trace.to_text();
  return run;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr auto kTcp = core::TransportKind::kTcp;
constexpr auto kSctp = core::TransportKind::kSctp;

// Recorded 2026-08-08 from the pre-overhaul build (commit ca8a6b6 tree).
constexpr BatteryCase kBattery[] = {
    {"tcp_pp30k_l0", Shape::kPingPong30k, kTcp, 0.00, 42, 0x2c09227e99a3ce93ULL, 1363u},
    {"tcp_pp30k_l1", Shape::kPingPong30k, kTcp, 0.01, 42, 0x00bf9379649add5bULL, 1676u},
    {"tcp_pp30k_l2", Shape::kPingPong30k, kTcp, 0.02, 42, 0xd8a0e7a88f125ed4ULL, 1630u},
    {"tcp_ssend4k_l0", Shape::kPingPongSsend, kTcp, 0.00, 7, 0xa13185989bff8301ULL, 386u},
    {"tcp_ssend4k_l2", Shape::kPingPongSsend, kTcp, 0.02, 7, 0xe6e393f7396e30b4ULL, 388u},
    {"tcp_eager1k_l0", Shape::kEager1k, kTcp, 0.00, 3, 0xef3e30afc1fcb6efULL, 191u},
    {"tcp_eager1k_l2", Shape::kEager1k, kTcp, 0.02, 3, 0xef3e30afc1fcb6efULL, 191u},
    {"tcp_ring8k_l0", Shape::kRing8k, kTcp, 0.00, 9, 0xc36346677334c614ULL, 761u},
    {"tcp_ring8k_l1", Shape::kRing8k, kTcp, 0.01, 9, 0x07538c6c934ed2a8ULL, 825u},
    {"tcp_ring8k_l2", Shape::kRing8k, kTcp, 0.02, 9, 0x5334cec77b8b5519ULL, 824u},
    {"tcp_farm16k_l0", Shape::kFarm16k, kTcp, 0.00, 11, 0x9f2940e51df185d1ULL, 1317u},
    {"tcp_farm16k_l1", Shape::kFarm16k, kTcp, 0.01, 11, 0x4d94eec473ae4f75ULL, 1302u},
    {"tcp_farm16k_l2", Shape::kFarm16k, kTcp, 0.02, 11, 0x7d3d560341e41cccULL, 1365u},
    {"tcp_mh8k_l0", Shape::kMultihome8k, kTcp, 0.00, 5, 0x82b76e85e1a2d09cULL, 392u},
    {"tcp_mh8k_l1", Shape::kMultihome8k, kTcp, 0.01, 5, 0xd48def3165cebd7bULL, 409u},
    {"tcp_mh8k_l2", Shape::kMultihome8k, kTcp, 0.02, 5, 0x221be2ae027fe496ULL, 428u},
    {"sctp_pp30k_l0", Shape::kPingPong30k, kSctp, 0.00, 42, 0xaf424ebf2c6f5dd6ULL, 1351u},
    {"sctp_pp30k_l1", Shape::kPingPong30k, kSctp, 0.01, 42, 0x7f3383f8ff6cb238ULL, 1392u},
    {"sctp_pp30k_l2", Shape::kPingPong30k, kSctp, 0.02, 42, 0x07a6798db1adf06bULL, 1418u},
    {"sctp_ssend4k_l0", Shape::kPingPongSsend, kSctp, 0.00, 7, 0xd5591eca3ddedb1eULL, 391u},
    {"sctp_ssend4k_l2", Shape::kPingPongSsend, kSctp, 0.02, 7, 0xdd0aa5efa006f54cULL, 393u},
    {"sctp_eager1k_l0", Shape::kEager1k, kSctp, 0.00, 3, 0xa0ff1f6015e4bf14ULL, 195u},
    {"sctp_eager1k_l2", Shape::kEager1k, kSctp, 0.02, 3, 0xa0ff1f6015e4bf14ULL, 195u},
    {"sctp_ring8k_l0", Shape::kRing8k, kSctp, 0.00, 9, 0x3a15a144fa52d691ULL, 753u},
    {"sctp_ring8k_l1", Shape::kRing8k, kSctp, 0.01, 9, 0x7d5e03e8ef6fa9e3ULL, 787u},
    {"sctp_ring8k_l2", Shape::kRing8k, kSctp, 0.02, 9, 0x756ddbb1483e1c79ULL, 780u},
    {"sctp_farm16k_l0", Shape::kFarm16k, kSctp, 0.00, 11, 0x449bd600343368aeULL, 1297u},
    {"sctp_farm16k_l1", Shape::kFarm16k, kSctp, 0.01, 11, 0x3b733c5c315aea99ULL, 1291u},
    {"sctp_farm16k_l2", Shape::kFarm16k, kSctp, 0.02, 11, 0x8c67d9a30575340cULL, 1292u},
    {"sctp_mh8k_l0", Shape::kMultihome8k, kSctp, 0.00, 5, 0x0af0e093d4375807ULL, 391u},
    {"sctp_mh8k_l1", Shape::kMultihome8k, kSctp, 0.01, 5, 0x300bdf58b4803e7eULL, 393u},
    {"sctp_mh8k_l2", Shape::kMultihome8k, kSctp, 0.02, 5, 0xd4ec509c0f6d79efULL, 417u},
};
static_assert(std::size(kBattery) == 32, "the battery is 32 traces");

class TraceBattery : public ::testing::TestWithParam<int> {};

TEST_P(TraceBattery, MatchesPreOverhaulTraceByteForByte) {
  const BatteryCase& c = kBattery[static_cast<std::size_t>(GetParam())];
  const BatteryRun run = run_case(c);
  ASSERT_FALSE(run.text.empty());
  const auto lines = static_cast<unsigned>(
      std::count(run.text.begin(), run.text.end(), '\n'));
  const std::uint64_t hash = fnv1a64(run.text);

  if (std::getenv("SCTPMPI_RECORD_GOLDEN") != nullptr) {
    std::printf("BATTERY %s 0x%016llx %uu\n", c.name,
                static_cast<unsigned long long>(hash), lines);
    return;  // record mode: emit, don't compare
  }
  if (const char* dir = std::getenv("SCTPMPI_DUMP_TRACES")) {
    std::string path = std::string(dir) + "/" + c.name + ".trace";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(run.text.data(), 1, run.text.size(), f);
      std::fclose(f);
    }
  }

  EXPECT_EQ(hash, c.text_hash)
      << c.name << ": trace text diverged from the pre-overhaul recording";
  EXPECT_EQ(lines, c.lines) << c.name;
  if (c.loss >= 0.02 && c.shape != Shape::kEager1k) {
    // Every 2%-loss configuration (except the 16-packet eager shape, whose
    // seed happens to draw no losses) was verified to actually drop and
    // recover packets, so the battery exercises rtx paths, not just the
    // no-loss fast path.
    EXPECT_GT(run.summary.dropped_loss, 0u) << c.name;
  }
  if (c.loss == 0.0) {
    EXPECT_EQ(run.summary.dropped_loss, 0u) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, TraceBattery, ::testing::Range(0, 32),
    [](const ::testing::TestParamInfo<int>& info) {
      return std::string(
          kBattery[static_cast<std::size_t>(info.param)].name);
    });

// The sharded simulator's windowed driver, forced at one shard, must
// reproduce the classic run_all() schedule exactly — all 32 golden hashes
// included. This is the strongest statement that the conservative-window
// machinery (run_until rounds, stop-counter cut, ShardGroup-built cluster)
// adds zero observable behavior of its own.
TEST(TraceBatteryParallelDriver, ForcedWindowedDriverKeepsAllGoldenHashes) {
  if (std::getenv("SCTPMPI_RECORD_GOLDEN") != nullptr) {
    GTEST_SKIP() << "record mode";
  }
  for (const BatteryCase& c : kBattery) {
    const BatteryRun run = run_case(c, /*force_parallel=*/true);
    EXPECT_EQ(fnv1a64(run.text), c.text_hash)
        << c.name << ": windowed 1-shard driver diverged from golden trace";
  }
}

// Determinism canary: the FIFO link datapath and the legacy
// two-closures-per-packet datapath (SCTPMPI_UNBATCHED=1, consulted once per
// Link at construction) must produce byte-identical traces. Runs the
// heaviest loss-bearing case of each transport back to back in-process.
TEST(LinkDatapathDeterminism, FifoAndLegacyPathsProduceIdenticalTraces) {
  for (const char* name : {"tcp_farm16k_l2", "sctp_farm16k_l2",
                           "sctp_mh8k_l2", "tcp_pp30k_l2"}) {
    const auto* c = std::find_if(
        std::begin(kBattery), std::end(kBattery),
        [name](const BatteryCase& b) { return std::string(b.name) == name; });
    ASSERT_NE(c, std::end(kBattery));
    ASSERT_EQ(nullptr, std::getenv("SCTPMPI_UNBATCHED"));
    const BatteryRun fifo = run_case(*c);
    ::setenv("SCTPMPI_UNBATCHED", "1", 1);
    const BatteryRun legacy = run_case(*c);
    ::unsetenv("SCTPMPI_UNBATCHED");
    EXPECT_EQ(fifo.text, legacy.text)
        << c->name << ": FIFO and legacy link datapaths diverged";
  }
}

}  // namespace
}  // namespace sctpmpi::test
