// Conformance tests for the transport-level failure machinery the
// recovery tentpole keys on:
//
//   * TCP bounded retransmission give-up — exactly max_data_retries
//     retransmissions of the stuck segment, exponential RTO doubling
//     capped at max_rto, then a hard failure (the condition LAM-TCP
//     would sit on for ~nine minutes with era defaults);
//   * SCTP ABORT mid-transfer — the peer learns immediately via
//     kCommLost, no timeout involved (paper §3.5.2);
//   * stale COOKIE-ECHO answered with ERROR cause 3 and a transparent
//     handshake restart (RFC 2960 §5.2.6);
//   * per-path failover accounting — path_failovers increments exactly
//     once per primary switch, and a HEARTBEAT-ACK resets the path's
//     error counter (RFC 2960 §8.3).
#include <gtest/gtest.h>

#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi {
namespace {

using test::TracedSctpFixture;
using test::TracedTcpFixture;

// ---------------------------------------------------------------------------
// TCP give-up
// ---------------------------------------------------------------------------

class TcpGiveUpConformance : public TracedTcpFixture {};

TEST_F(TcpGiveUpConformance, BoundedRetransmissionsThenHardFailure) {
  tcp::TcpConfig cfg;  // era defaults: min_rto 1 s, max_rto 64 s, 12 retries
  build_traced(0.0, cfg);
  auto [client, server] = connect_pair();

  // Push one segment into an established connection, then cut the peer
  // off completely. Every retransmission dies on the blacked-out link.
  const auto data = test::pattern_bytes(1000);
  const sim::SimTime cut = sim().now();
  cluster_->uplink(1).faults().add_blackout(cut, sim::SimTime{1} << 62);
  cluster_->downlink(1).faults().add_blackout(cut, sim::SimTime{1} << 62);
  ASSERT_GT(client->send(data), 0);
  const sim::SimTime sent_at = sim().now();

  run_while([&] { return !client->failed(); });

  EXPECT_STREQ(client->failure_reason(), "too many retransmissions");
  // Exactly max_data_retries retransmissions of the stuck data left the
  // sending host; the next (13th) timeout gives up instead.
  const auto rtx = trace_.count([](const trace::TraceRecord& r) {
    return r.point == "h0" && r.verdict == net::PacketVerdict::kSent &&
           r.is_retransmit() && r.carries_data();
  });
  EXPECT_EQ(rtx, cfg.max_data_retries);
  // Doubling schedule pinned end to end: 1+2+4+8+16+32 then seven RTOs
  // capped at 64 s = 511 s from first transmission to the failure
  // verdict (small slack for the measured-RTT contribution to the RTO).
  const double elapsed = sim::to_seconds(sim().now() - sent_at);
  EXPECT_NEAR(elapsed, 511.0, 15.0);
  // The retransmission gaps never shrink (exponential backoff).
  std::vector<sim::SimTime> times;
  for (const auto& r : trace_.records()) {
    if (r.point == "h0" && r.verdict == net::PacketVerdict::kSent &&
        r.is_retransmit() && r.carries_data()) {
      times.push_back(r.time);
    }
  }
  for (std::size_t i = 2; i < times.size(); ++i) {
    EXPECT_GE(times[i] - times[i - 1], times[i - 1] - times[i - 2]);
  }
}

// ---------------------------------------------------------------------------
// SCTP ABORT mid-transfer
// ---------------------------------------------------------------------------

class SctpAbortConformance : public TracedSctpFixture {};

TEST_F(SctpAbortConformance, AbortMidTransferNotifiesPeerImmediately) {
  build_traced();
  auto p = connect_pair();

  // Stream a run of messages and abort from the sending side once a few
  // have landed — well before the stream drains, so data is in flight.
  std::vector<std::byte> buf(1 << 16);
  std::size_t queued = 0;
  std::size_t drained = 0;
  auto pump = [&] {
    while (queued < 40 &&
           p.a->sendmsg(p.a_id, 0, test::pattern_bytes(5000)) > 0) {
      ++queued;
    }
  };
  pump();
  run_while([&] {
    pump();
    sctp::RecvInfo info;
    while (p.b->recvmsg(buf, info) > 0) ++drained;
    return drained < 5;
  });
  const sim::SimTime start = sim().now();
  ASSERT_TRUE(p.a->assoc(p.a_id)->established());
  p.a->abort_assoc(p.a_id);

  bool b_lost = false;
  run_while([&] {
    while (auto n = p.b->poll_notification()) {
      if (n->type == sctp::NotificationType::kCommLost) b_lost = true;
    }
    return !b_lost;
  });
  const sim::SimTime lost_at = sim().now();

  // The ABORT chunk crossed the wire and the peer's verdict came from
  // it, not from any retransmission timeout: one link RTT, not seconds.
  EXPECT_GE(trace_.count([](const trace::TraceRecord& r) {
              return r.has_chunk("ABORT") &&
                     r.verdict == net::PacketVerdict::kDelivered;
            }),
            1u);
  EXPECT_LT(sim::to_seconds(lost_at - start), 0.1);
  // The aborting side is closed too (the object survives for queries).
  EXPECT_FALSE(p.a->assoc(p.a_id)->established());
}

// ---------------------------------------------------------------------------
// Stale cookie: ERROR cause 3 and handshake restart
// ---------------------------------------------------------------------------

class SctpStaleCookieConformance : public TracedSctpFixture {};

TEST_F(SctpStaleCookieConformance, StaleCookieEchoDrawsErrorCause3) {
  sctp::SctpConfig cfg;
  cfg.valid_cookie_life = 50 * sim::kMillisecond;
  build_traced(0.0, cfg);
  // Hold the first COOKIE-ECHO on the wire past the cookie's lifetime;
  // the server must reject it with ERROR cause 3 (stale cookie) and the
  // client restarts the handshake with a fresh INIT.
  cluster_->uplink(0).faults().delay_matching(
      [](const net::Packet& pkt) {
        return trace::has_sctp_chunk(pkt, "COOKIE-ECHO");
      },
      {1}, 200 * sim::kMillisecond);

  auto p = connect_pair();  // must still establish, via the restart
  EXPECT_TRUE(p.a->assoc(p.a_id)->established());

  EXPECT_GE(trace_.count([](const trace::TraceRecord& r) {
              return r.has_chunk("ERROR") &&
                     r.verdict == net::PacketVerdict::kDelivered;
            }),
            1u)
      << "server should answer the stale COOKIE-ECHO with an ERROR chunk";
  // The client went through at least two INITs: the original and the
  // post-ERROR restart.
  EXPECT_GE(trace_.count([](const trace::TraceRecord& r) {
              return r.point == "h0" &&
                     r.verdict == net::PacketVerdict::kSent &&
                     r.has_chunk("INIT");
            }),
            2u);
}

// ---------------------------------------------------------------------------
// Failover accounting
// ---------------------------------------------------------------------------

class SctpFailoverStatsConformance : public TracedSctpFixture {};

TEST_F(SctpFailoverStatsConformance, FailoverCountsExactlyOncePerSwitch) {
  sctp::SctpConfig cfg;
  cfg.path_max_retrans = 2;
  cfg.hb_interval = 2 * sim::kSecond;  // surface idle-path failures fast
  build_traced(0.0, cfg, 1, /*hosts=*/2, /*interfaces=*/3);
  auto p = connect_pair();

  auto drive = [&](std::uint8_t stamp) {
    std::vector<std::byte> buf(1 << 16);
    std::size_t got = 0;
    ASSERT_GT(p.a->sendmsg(p.a_id, 0, test::pattern_bytes(2000, stamp)), 0);
    run_while([&] {
      sctp::RecvInfo info;
      while (p.b->recvmsg(buf, info) > 0) ++got;
      return got < 1;
    });
  };

  // Retransmissions escape to an alternate path at the first T3 (§4.1.1
  // policy), so data gets through well before the dead path trips its
  // path_max_retrans; the failover verdict itself is driven by the
  // heartbeat probes that keep failing on the idle dead path.
  auto wait_failovers = [&](std::uint64_t n) {
    run_while([&] {
      return p.a->assoc(p.a_id)->stats().path_failovers < n;
    });
  };

  EXPECT_EQ(p.a->assoc(p.a_id)->stats().path_failovers, 0u);
  cluster_->set_subnet_loss(0, 1.0);  // kill the primary network
  drive(1);                           // delivered via an alternate path
  wait_failovers(1);
  EXPECT_EQ(p.a->assoc(p.a_id)->stats().path_failovers, 1u);
  const std::size_t primary_after_first = p.a->assoc(p.a_id)->primary_path();
  EXPECT_NE(primary_after_first, 0u);

  // More traffic on the healthy new primary must not count again, and
  // neither may the probes that keep failing on the dead path.
  drive(2);
  drive(3);
  EXPECT_EQ(p.a->assoc(p.a_id)->stats().path_failovers, 1u);

  // Kill the new primary too: exactly one more switch.
  cluster_->set_subnet_loss(static_cast<unsigned>(primary_after_first), 1.0);
  drive(4);
  wait_failovers(2);
  EXPECT_EQ(p.a->assoc(p.a_id)->stats().path_failovers, 2u);
  const std::size_t final_primary = p.a->assoc(p.a_id)->primary_path();
  EXPECT_NE(final_primary, primary_after_first);
  EXPECT_NE(final_primary, 0u);

  // Let more heartbeat probes fail on the two dead paths: the counter
  // must not move again without an actual switch.
  const sim::SimTime settle = sim().now() + 10 * sim::kSecond;
  run_while([&] { return sim().now() < settle; });
  EXPECT_EQ(p.a->assoc(p.a_id)->stats().path_failovers, 2u);
}

TEST_F(SctpFailoverStatsConformance, HeartbeatAckResetsPathErrorCount) {
  sctp::SctpConfig cfg;
  cfg.hb_interval = sim::kSecond;
  cfg.path_max_retrans = 6;  // high enough that the path never fails here
  build_traced(0.0, cfg, 1, /*hosts=*/2, /*interfaces=*/2);
  auto p = connect_pair();

  // Sever the alternate subnet: its heartbeats go unanswered and the
  // path's error counter climbs (but stays below path_max_retrans).
  cluster_->set_subnet_loss(1, 1.0);
  run_while(
      [&] {
        while (p.a->poll_notification()) {
        }
        return p.a->assoc(p.a_id)->paths()[1].error_count < 2;
      },
      200'000'000);
  EXPECT_TRUE(p.a->assoc(p.a_id)->paths()[1].active);

  // Heal it: the next HEARTBEAT-ACK must clear the counter (RFC 2960
  // §8.3: the sender clears the error count of the destination on an
  // acknowledged heartbeat).
  cluster_->set_subnet_loss(1, 0.0);
  run_while(
      [&] {
        while (p.a->poll_notification()) {
        }
        return p.a->assoc(p.a_id)->paths()[1].error_count != 0;
      },
      200'000'000);
  EXPECT_EQ(p.a->assoc(p.a_id)->paths()[1].error_count, 0u);
  EXPECT_GE(trace_.count([](const trace::TraceRecord& r) {
              return r.has_chunk("HEARTBEAT-ACK") &&
                     r.verdict == net::PacketVerdict::kDelivered;
            }),
            1u);
}

}  // namespace
}  // namespace sctpmpi
