// Conformance: golden-trace determinism. Two fresh Worlds built from the
// same config must produce byte-identical PacketTrace serializations of a
// full MPI ping-pong — at zero loss and at the paper's 1% / 2% Dummynet
// rates — for both transports. This is what makes every fault-injection
// experiment in this repo replayable.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "core/world.hpp"
#include "trace/packet_trace.hpp"

namespace sctpmpi::test {
namespace {

struct GoldenRun {
  std::string text;
  trace::TraceSummary summary;
};

GoldenRun pingpong_trace(core::TransportKind transport, double loss) {
  core::WorldConfig cfg;
  cfg.ranks = 2;
  cfg.transport = transport;
  cfg.loss = loss;
  cfg.seed = 42;
  core::World world(cfg);
  trace::PacketTrace trace;
  trace.attach(world.cluster());

  world.run([](core::Mpi& mpi) {
    constexpr std::size_t kSize = 30 * 1024;  // Table 1's short-message case
    std::vector<std::byte> tx(kSize, std::byte{0x5A});
    std::vector<std::byte> rx(kSize);
    const int peer = 1 - mpi.rank();
    for (int i = 0; i < 4; ++i) {
      if (mpi.rank() == 0) {
        mpi.send(tx, peer, 0);
        mpi.recv(rx, peer, 0);
      } else {
        mpi.recv(rx, peer, 0);
        mpi.send(tx, peer, 0);
      }
    }
  });

  GoldenRun run;
  run.summary = trace.summary();
  run.text = trace.to_text();
  return run;
}

class GoldenTrace
    : public ::testing::TestWithParam<std::pair<core::TransportKind, double>> {
};

TEST_P(GoldenTrace, TwoFreshRunsSerializeIdentically) {
  const auto [transport, loss] = GetParam();
  const GoldenRun a = pingpong_trace(transport, loss);
  const GoldenRun b = pingpong_trace(transport, loss);

  ASSERT_FALSE(a.text.empty());
  EXPECT_GT(a.summary.data_packets, 0u);
  // Byte-identical wire history across two independently constructed
  // simulations.
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.summary.sent, b.summary.sent);
  EXPECT_EQ(a.summary.dropped_loss, b.summary.dropped_loss);

  if (loss >= 0.02) {
    // At 2% Dummynet loss this workload must actually lose packets and
    // recover them (seed 42: verified non-trivial).
    EXPECT_GT(a.summary.dropped_loss, 0u);
    EXPECT_GT(a.summary.retransmit_packets, 0u);
  }
  if (loss == 0.0) {
    EXPECT_EQ(a.summary.dropped_loss, 0u);
  }
}

// FNV-1a 64 of the exact trace text each configuration produced BEFORE the
// simulator-core rewrite (indexed heap + UniqueFunction + ref-counted
// Buffer payloads; recorded 2026-08-05 from the tombstone-queue build).
// A hash change here means the rewrite altered observable wire history —
// the one thing the perf work was required not to do.
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

struct PreRewriteGolden {
  core::TransportKind transport;
  double loss;
  std::uint64_t text_hash;
  unsigned lines;
};

constexpr PreRewriteGolden kPreRewriteGoldens[] = {
    {core::TransportKind::kTcp, 0.00, 0x2c09227e99a3ce93ULL, 1363u},
    {core::TransportKind::kTcp, 0.01, 0x00bf9379649add5bULL, 1676u},
    {core::TransportKind::kTcp, 0.02, 0xd8a0e7a88f125ed4ULL, 1630u},
    {core::TransportKind::kSctp, 0.00, 0xaf424ebf2c6f5dd6ULL, 1351u},
    {core::TransportKind::kSctp, 0.01, 0x7f3383f8ff6cb238ULL, 1392u},
    {core::TransportKind::kSctp, 0.02, 0x07a6798db1adf06bULL, 1418u},
};

TEST_P(GoldenTrace, MatchesPreRewriteTraceByteForByte) {
  const auto [transport, loss] = GetParam();
  const GoldenRun run = pingpong_trace(transport, loss);
  for (const PreRewriteGolden& g : kPreRewriteGoldens) {
    if (g.transport != transport || g.loss != loss) continue;
    const auto lines = static_cast<unsigned>(
        std::count(run.text.begin(), run.text.end(), '\n'));
    EXPECT_EQ(fnv1a64(run.text), g.text_hash)
        << "trace text diverged from the pre-rewrite recording";
    EXPECT_EQ(lines, g.lines);
    return;
  }
  FAIL() << "no pre-rewrite golden recorded for this configuration";
}

INSTANTIATE_TEST_SUITE_P(
    LossSweep, GoldenTrace,
    ::testing::Values(
        std::make_pair(core::TransportKind::kTcp, 0.0),
        std::make_pair(core::TransportKind::kTcp, 0.01),
        std::make_pair(core::TransportKind::kTcp, 0.02),
        std::make_pair(core::TransportKind::kSctp, 0.0),
        std::make_pair(core::TransportKind::kSctp, 0.01),
        std::make_pair(core::TransportKind::kSctp, 0.02)),
    [](const ::testing::TestParamInfo<GoldenTrace::ParamType>& info) {
      std::string name = info.param.first == core::TransportKind::kTcp
                             ? "Tcp"
                             : "Sctp";
      name += "Loss";
      name += std::to_string(static_cast<int>(info.param.second * 100));
      name += "pct";
      return name;
    });

}  // namespace
}  // namespace sctpmpi::test
