// Conformance: the sharded driver must not change what the simulation
// computes.
//
//  * At 1 shard, the windowed driver (force_parallel_driver) must be
//    observably identical to the classic ProcessGroup::run_all() path —
//    same elapsed time, same per-host packet counts and receive digests.
//  * At 2 and 4 shards, a run is not required to equal the 1-shard
//    schedule (windows interleave shards differently) but it MUST be
//    rerun-identical: same digests, same elapsed, run after run.
//
// The multi-shard tests here are what the sharded-tsan CI lane replays
// under ThreadSanitizer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "apps/manyflow.hpp"
#include "core/world.hpp"

namespace sctpmpi::test {
namespace {

struct Observation {
  sim::SimTime elapsed = 0;
  std::uint64_t unroutable = 0;
  std::vector<std::uint64_t> digests;
  std::vector<std::uint64_t> rx_counts;

  bool operator==(const Observation&) const = default;
};

// 8-rank ring exchange: every rank isends to its successor and receives
// from its predecessor for several rounds — steady bidirectional traffic
// on every host.
void ring_workload(core::Mpi& mpi) {
  constexpr std::size_t kBytes = 8 * 1024;
  constexpr int kRounds = 4;
  std::vector<std::byte> tx(kBytes, std::byte{0x3C});
  std::vector<std::byte> rx(kBytes);
  const int n = mpi.size();
  const int next = (mpi.rank() + 1) % n;
  const int prev = (mpi.rank() + n - 1) % n;
  for (int r = 0; r < kRounds; ++r) {
    core::Request s = mpi.isend(tx, next, r);
    mpi.recv(rx, prev, r);
    mpi.wait(s);
  }
}

Observation run_ring(core::WorldConfig cfg) {
  core::World world(cfg);
  for (unsigned h = 0; h < world.cluster().host_count(); ++h) {
    world.cluster().host(h).enable_rx_digest();
  }
  world.run(ring_workload);
  Observation obs;
  obs.elapsed = world.elapsed();
  obs.unroutable = world.cluster().total_unroutable();
  for (unsigned h = 0; h < world.cluster().host_count(); ++h) {
    obs.digests.push_back(world.cluster().host(h).rx_digest());
    obs.rx_counts.push_back(world.cluster().host(h).rx_packets());
  }
  return obs;
}

core::WorldConfig flat_cfg(core::TransportKind t, unsigned shards) {
  core::WorldConfig cfg;
  cfg.ranks = 8;
  cfg.transport = t;
  cfg.seed = 77;
  cfg.shards = shards;
  return cfg;
}

TEST(ShardedDeterminism, ForcedParallelDriverMatchesClassicRunAll) {
  for (const auto t :
       {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
    core::WorldConfig classic = flat_cfg(t, 1);
    core::WorldConfig forced = flat_cfg(t, 1);
    forced.force_parallel_driver = true;
    const Observation a = run_ring(classic);
    const Observation b = run_ring(forced);
    EXPECT_EQ(a, b) << core::to_string(t)
                    << ": windowed 1-shard driver diverged from run_all";
  }
}

TEST(ShardedDeterminism, FlatTwoShardRerunIsIdentical) {
  for (const auto t :
       {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
    const Observation a = run_ring(flat_cfg(t, 2));
    const Observation b = run_ring(flat_cfg(t, 2));
    EXPECT_EQ(a, b) << core::to_string(t) << ": 2-shard rerun diverged";
    EXPECT_GT(a.elapsed, 0);
  }
}

TEST(ShardedDeterminism, FlatFourShardRerunIsIdentical) {
  const Observation a = run_ring(flat_cfg(core::TransportKind::kSctp, 4));
  const Observation b = run_ring(flat_cfg(core::TransportKind::kSctp, 4));
  EXPECT_EQ(a, b) << "4-shard rerun diverged";
}

// Adaptive features must not cost rerun-identity: the measured placement
// is a pure function of (config, seed, body) and the adaptive window cap
// is keyed off executed-event counts, so the whole pipeline — warmup,
// placement, sharded run — must reproduce exactly, run after run.
Observation run_ring_adaptive(core::WorldConfig cfg,
                              std::vector<unsigned>* placement_out) {
  cfg.adaptive_window = true;
  cfg.adaptive_placement = true;
  cfg.placement = core::measured_placement(cfg, ring_workload);
  if (placement_out != nullptr) *placement_out = cfg.placement;
  return run_ring(cfg);
}

TEST(ShardedDeterminism, AdaptiveFlatTwoShardRerunIsIdentical) {
  for (const auto t :
       {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
    std::vector<unsigned> pa, pb;
    const Observation a = run_ring_adaptive(flat_cfg(t, 2), &pa);
    const Observation b = run_ring_adaptive(flat_cfg(t, 2), &pb);
    EXPECT_EQ(pa, pb) << core::to_string(t)
                      << ": measured placement diverged across reruns";
    EXPECT_EQ(a, b) << core::to_string(t) << ": adaptive 2-shard rerun "
                    << "diverged";
    EXPECT_GT(a.elapsed, 0);
  }
}

TEST(ShardedDeterminism, AdaptiveFatTreeFourShardRerunIsIdentical) {
  for (const auto t :
       {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
    core::WorldConfig cfg;
    cfg.ranks = 16;  // k=4 fat-tree
    cfg.transport = t;
    cfg.seed = 23;
    cfg.topology = net::TopologyKind::kFatTree;
    cfg.fattree.k = 4;
    cfg.shards = 4;
    std::vector<unsigned> pa, pb;
    const Observation a = run_ring_adaptive(cfg, &pa);
    const Observation b = run_ring_adaptive(cfg, &pb);
    EXPECT_EQ(pa, pb) << core::to_string(t)
                      << ": measured placement diverged across reruns";
    // The placement groups are ToR blocks of k/2 hosts: both hosts under
    // one edge switch must map to one shard.
    ASSERT_EQ(pa.size(), 16u);
    for (unsigned h = 0; h < 16; h += 2) EXPECT_EQ(pa[h], pa[h + 1]);
    EXPECT_EQ(a, b) << core::to_string(t) << ": adaptive fat-tree 4-shard "
                    << "rerun diverged";
  }
}

TEST(ShardedDeterminism, ShardingPreservesApplicationResults) {
  // The transports deliver the same bytes regardless of sharding; only
  // event interleavings across shards may differ. Compare application-
  // level results (message counts, completion) between 1 and 4 shards.
  core::WorldConfig cfg;
  cfg.ranks = 8;
  cfg.transport = core::TransportKind::kSctp;
  cfg.seed = 5;
  apps::ManyflowParams mp;
  mp.msgs_per_peer = 16;
  mp.fanout = 2;
  const auto serial = apps::run_manyflow(cfg, mp);
  cfg.shards = 4;
  const auto sharded = apps::run_manyflow(cfg, mp);
  EXPECT_EQ(serial.messages_received, sharded.messages_received);
  EXPECT_EQ(serial.messages_received,
            static_cast<std::uint64_t>(cfg.ranks) * 2 * 16);
  EXPECT_GT(sharded.total_runtime_seconds, 0.0);
}

TEST(ShardedDeterminism, FatTreeWorldFourShardRerunIsIdentical) {
  auto run_once = [] {
    core::WorldConfig cfg;
    cfg.ranks = 16;  // k=4 fat-tree
    cfg.transport = core::TransportKind::kSctp;
    cfg.seed = 11;
    cfg.topology = net::TopologyKind::kFatTree;
    cfg.fattree.k = 4;
    cfg.shards = 4;
    core::World world(cfg);
    for (unsigned h = 0; h < world.cluster().host_count(); ++h) {
      world.cluster().host(h).enable_rx_digest();
    }
    apps::ManyflowParams mp;
    mp.msgs_per_peer = 8;
    mp.fanout = 3;
    mp.msg_size = 4 * 1024;
    // Drive the workload through the World the same way run_manyflow does,
    // but on this pre-built World so the digests are observable.
    std::uint64_t received = 0;
    {
      std::atomic<std::uint64_t> total{0};
      world.run([&mp, &total](core::Mpi& mpi) {
        const int n = mpi.size();
        const int fan = mp.fanout;
        const int expect = fan * mp.msgs_per_peer;
        std::vector<std::byte> payload(mp.msg_size, std::byte{0x42});
        std::vector<std::vector<std::byte>> rbufs(
            static_cast<std::size_t>(expect),
            std::vector<std::byte>(mp.msg_size));
        std::vector<core::Request> recvs;
        for (int i = 0; i < expect; ++i) {
          recvs.push_back(mpi.irecv(rbufs[static_cast<std::size_t>(i)],
                                    core::kAnySource, 1));
        }
        for (int j = 0; j < mp.msgs_per_peer; ++j) {
          for (int p = 0; p < fan; ++p) {
            mpi.send(payload, (mpi.rank() + 1 + p) % n, 1);
          }
        }
        for (int i = 0; i < expect; ++i) (void)mpi.waitany(recvs);
        total.fetch_add(static_cast<std::uint64_t>(expect),
                        std::memory_order_relaxed);
      });
      received = total.load(std::memory_order_relaxed);
    }
    Observation obs;
    obs.elapsed = world.elapsed();
    obs.unroutable = world.cluster().total_unroutable();
    obs.digests.push_back(received);
    for (unsigned h = 0; h < world.cluster().host_count(); ++h) {
      obs.digests.push_back(world.cluster().host(h).rx_digest());
      obs.rx_counts.push_back(world.cluster().host(h).rx_packets());
    }
    return obs;
  };
  const Observation a = run_once();
  const Observation b = run_once();
  EXPECT_EQ(a, b) << "fat-tree 4-shard rerun diverged";
  EXPECT_EQ(a.unroutable, 0u);
}

}  // namespace
}  // namespace sctpmpi::test
