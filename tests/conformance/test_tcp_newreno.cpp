// Conformance: NewReno partial-ACK behaviour (RFC 6582). With SACK off and
// two segments lost from one window, the partial ACK that follows the first
// retransmission must immediately trigger retransmission of the second hole
// without waiting for three more dupacks or an RTO.
#include <gtest/gtest.h>

#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi::test {
namespace {

TEST_F(TracedTcpFixture, PartialAckRetransmitsNextHoleWithoutTimeout) {
  tcp::TcpConfig cfg;
  cfg.sack_enabled = false;  // pure NewReno
  build_traced(0.0, cfg);
  auto [client, server] = connect_pair();
  trace_.clear();

  // Two losses in the same flight (slow start has cwnd well past 12
  // segments by the 10th data packet).
  cluster_->uplink(0).faults().drop_matching(trace::is_tcp_data, {10, 12});

  const auto data = pattern_bytes(160 * 1024);
  const auto got = transfer(client, server, data);
  ASSERT_EQ(got, data);

  const auto drops = trace_.select([](const TraceRecord& r) {
    return dropped(r) && r.carries_data();
  });
  ASSERT_EQ(drops.size(), 2u);
  const std::uint32_t hole1 = drops[0]->seq;
  const std::uint32_t hole2 = drops[1]->seq;
  ASSERT_LT(hole1, hole2);

  // First hole recovers via fast retransmit...
  const auto* rtx1 = trace_.first([&](const TraceRecord& r) {
    return queued(r) && on_point(r, "up0.0") && r.is_retransmit() &&
           r.carries_data() && r.seq == hole1;
  });
  ASSERT_NE(rtx1, nullptr);

  // ...whose delivery produces a *partial* ACK: cumulative ack advances to
  // hole2 (not to the end of the flight).
  const auto* partial = trace_.first([&](const TraceRecord& r) {
    return queued(r) && on_point(r, "up1.0") && r.data_bytes == 0 &&
           r.ack == hole2 && r.time > rtx1->time;
  });
  ASSERT_NE(partial, nullptr);

  // The partial ACK, not a timer, drives the second retransmission.
  const auto* rtx2 = trace_.first([&](const TraceRecord& r) {
    return queued(r) && on_point(r, "up0.0") && r.is_retransmit() &&
           r.carries_data() && r.seq == hole2;
  });
  ASSERT_NE(rtx2, nullptr);
  EXPECT_GT(rtx2->time, partial->time);
  // Well under the 1 s minimum RTO after the partial ACK reached the sender.
  EXPECT_LT(rtx2->time - partial->time, 100'000'000 /* 100 ms */);

  EXPECT_EQ(client->stats().timeouts, 0u);
  EXPECT_GE(client->stats().fast_retransmits, 1u);
  EXPECT_GE(client->stats().retransmits, 2u);
}

}  // namespace
}  // namespace sctpmpi::test
