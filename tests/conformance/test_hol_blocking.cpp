// Conformance: head-of-line blocking — the paper's central mechanism (§2.2,
// Fig. 1-2). Losing the first TCP segment stalls *all* later bytes in the
// kernel until the retransmission lands, even though they already crossed
// the wire. SCTP confines the stall to the lost TSN's stream: messages on
// other streams are handed to the application immediately.
#include <gtest/gtest.h>

#include <array>

#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi::test {
namespace {

constexpr sim::SimTime kMs = sim::kMillisecond;

TEST_F(TracedTcpFixture, LostSegmentStallsDeliveryOfLaterBytes) {
  build_traced();
  auto [client, server] = connect_pair();
  trace_.clear();

  // First data segment of the flight is lost; the second is delivered but
  // must sit in the out-of-order queue.
  cluster_->uplink(0).faults().drop_matching(trace::is_tcp_data, {1});

  const auto data = pattern_bytes(3 * 1460);
  ASSERT_EQ(client->send(data), static_cast<std::ptrdiff_t>(data.size()));

  std::vector<std::byte> received;
  sim::SimTime first_recv = -1;
  std::array<std::byte, 8192> buf;
  server->set_activity_callback([&] {
    while (true) {
      const auto n = server->recv(buf);
      if (n <= 0) break;
      if (first_recv < 0) first_recv = sim().now();
      received.insert(received.end(), buf.begin(), buf.begin() + n);
    }
  });
  run_while([&] { return received.size() < data.size(); });
  server->set_activity_callback(nullptr);
  ASSERT_EQ(received, data);

  // Segment 2 reached the receiving host almost immediately...
  const auto* arrival = trace_.first([](const TraceRecord& r) {
    return delivered(r) && on_point(r, "dn1.0") && r.carries_data();
  });
  ASSERT_NE(arrival, nullptr);

  // ...but the application saw nothing until the retransmission of the
  // hole was delivered (RTO-driven here: only one dupack is generated).
  const auto drops = trace_.select([](const TraceRecord& r) {
    return dropped(r) && r.carries_data();
  });
  ASSERT_EQ(drops.size(), 1u);
  const std::uint32_t hole = drops[0]->seq;
  const auto* rtx_arrival = trace_.first([&](const TraceRecord& r) {
    return delivered(r) && on_point(r, "dn1.0") && r.carries_data() &&
           r.seq == hole;
  });
  ASSERT_NE(rtx_arrival, nullptr);

  EXPECT_GE(first_recv, rtx_arrival->time);
  EXPECT_GE(first_recv - arrival->time, 500 * kMs)
      << "bytes behind the hole should have been stuck for the full RTO";
}

TEST_F(TracedSctpFixture, OtherStreamsDeliverWhileLostTsnRecovers) {
  build_traced();
  auto pair = connect_pair();
  trace_.clear();

  // Three messages on three different streams; the packet carrying the
  // first (stream 0) is lost.
  cluster_->uplink(0).faults().drop_matching(trace::is_sctp_data, {1});

  for (std::uint16_t sid = 0; sid < 3; ++sid) {
    ASSERT_GT(pair.a->sendmsg(pair.a_id, sid,
                              pattern_bytes(1200, static_cast<std::uint8_t>(
                                                      sid + 1))),
              0);
  }

  struct Delivery {
    std::uint16_t sid;
    sim::SimTime time;
  };
  std::vector<Delivery> deliveries;
  std::vector<std::byte> buf(4096);
  pair.b->set_activity_callback([&] {
    while (true) {
      sctp::RecvInfo info;
      const auto n = pair.b->recvmsg(buf, info);
      if (n <= 0) break;
      deliveries.push_back({info.sid, sim().now()});
    }
  });
  run_while([&] { return deliveries.size() < 3; });
  pair.b->set_activity_callback(nullptr);

  // Streams 1 and 2 were handed up while stream 0's TSN was still missing;
  // stream 0 arrived last, after its retransmission.
  ASSERT_EQ(deliveries.size(), 3u);
  EXPECT_EQ(deliveries[0].sid, 1);
  EXPECT_EQ(deliveries[1].sid, 2);
  EXPECT_EQ(deliveries[2].sid, 0);

  const auto drops = trace_.select([](const TraceRecord& r) {
    return dropped(r) && r.carries_data();
  });
  ASSERT_EQ(drops.size(), 1u);
  ASSERT_EQ(drops[0]->tsns.size(), 1u);
  const std::uint32_t lost = drops[0]->tsns[0];
  const auto* rtx_arrival = trace_.first([&](const TraceRecord& r) {
    return delivered(r) && on_point(r, "dn1.0") && r.has_tsn(lost);
  });
  ASSERT_NE(rtx_arrival, nullptr);

  // No head-of-line blocking across streams: sids 1/2 beat the recovery of
  // the lost TSN by the whole retransmission timeout.
  EXPECT_LT(deliveries[1].time, rtx_arrival->time);
  EXPECT_GE(deliveries[2].time, rtx_arrival->time);
  EXPECT_GE(deliveries[2].time - deliveries[0].time, 500 * kMs);
}

}  // namespace
}  // namespace sctpmpi::test
