// Conformance: FaultInjector primitives observed at the wire — bursty
// Gilbert-Elliott loss, duplication, reorder-by-delay, blackout windows and
// payload corruption, plus the checksum paths corruption must exercise
// end-to-end (modeled Internet checksum for TCP, CRC32c for SCTP).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/link.hpp"
#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi::test {
namespace {

net::Packet make_packet(std::uint64_t uid, std::size_t payload = 100) {
  net::Packet p;
  p.src = net::IpAddr{1};
  p.dst = net::IpAddr{2};
  p.proto = net::IpProto::kUdp;
  p.uid = uid;
  p.payload = pattern_bytes(payload, static_cast<std::uint8_t>(uid + 1));
  return p;
}

/// Drives `n` packets through a fresh link configured by `configure` and
/// returns the uids delivered, in order.
std::vector<std::uint64_t> drive(
    unsigned n, std::uint64_t seed,
    const std::function<void(net::Link&)>& configure,
    sim::SimTime spacing = 20 * sim::kMicrosecond,
    std::vector<net::Packet>* delivered_packets = nullptr) {
  sim::Simulator sim;
  net::Link link(sim, net::LinkParams{}, sim::Rng(seed));
  configure(link);
  std::vector<std::uint64_t> uids;
  link.set_sink([&](net::Packet&& p) {
    uids.push_back(p.uid);
    if (delivered_packets != nullptr) delivered_packets->push_back(p);
  });
  for (unsigned i = 0; i < n; ++i) {
    sim.schedule_after(i * spacing, [&link, i] {
      net::Packet p = make_packet(i);
      link.enqueue(std::move(p));
    });
  }
  sim.run();
  return uids;
}

TEST(FaultInjector, GilbertElliottProducesBurstsDeterministically) {
  net::GilbertElliottParams ge;
  ge.p_good_to_bad = 0.05;
  ge.p_bad_to_good = 0.5;
  ge.loss_bad = 1.0;
  auto configure = [&](net::Link& l) { l.faults().set_gilbert_elliott(ge); };

  const auto run1 = drive(5000, 7, configure);
  const auto run2 = drive(5000, 7, configure);
  // Same seed, same parameters: bit-identical survivor sequence.
  EXPECT_EQ(run1, run2);

  // Loss rate lands near the stationary expectation p/(p+q) ~ 9%.
  const double loss = 1.0 - static_cast<double>(run1.size()) / 5000.0;
  EXPECT_GT(loss, 0.03);
  EXPECT_LT(loss, 0.25);

  // Losses cluster: mean drop-burst length must exceed 1.3 (a Bernoulli
  // process at the same rate would sit near 1.0 + rate ~ 1.1).
  std::vector<bool> dropped(5000, true);
  for (std::uint64_t uid : run1) dropped[uid] = false;
  std::size_t bursts = 0, dropped_total = 0;
  for (std::size_t i = 0; i < dropped.size(); ++i) {
    if (dropped[i]) {
      ++dropped_total;
      if (i == 0 || !dropped[i - 1]) ++bursts;
    }
  }
  ASSERT_GT(bursts, 0u);
  const double mean_burst =
      static_cast<double>(dropped_total) / static_cast<double>(bursts);
  EXPECT_GT(mean_burst, 1.3) << "losses should arrive in bursts";
}

TEST(FaultInjector, DuplicationDeliversThePacketTwice) {
  const auto uids = drive(10, 3, [](net::Link& l) {
    l.faults().set_duplicate_probability(1.0);
  });
  ASSERT_EQ(uids.size(), 20u);
  for (std::uint64_t u = 0; u < 10; ++u) {
    EXPECT_EQ(std::count(uids.begin(), uids.end(), u), 2) << "uid " << u;
  }
}

TEST(FaultInjector, ScriptedDelayReordersPackets) {
  // Hold packet 0 for 1 ms: packets 1 and 2 (sent 20/40 us later) overtake.
  const auto uids = drive(3, 3, [](net::Link& l) {
    l.faults().delay_matching(nullptr, {1}, sim::kMillisecond);
  });
  ASSERT_EQ(uids.size(), 3u);
  EXPECT_EQ(uids, (std::vector<std::uint64_t>{1, 2, 0}));
}

TEST(FaultInjector, BlackoutWindowSwallowsOnlyItsInterval) {
  // Packets at t = 0, 20, 40, ... us; blackout [30, 70) us kills exactly
  // the packets offered at 40 and 60 us.
  const auto uids = drive(5, 3, [](net::Link& l) {
    l.faults().add_blackout(30 * sim::kMicrosecond, 70 * sim::kMicrosecond);
  });
  EXPECT_EQ(uids, (std::vector<std::uint64_t>{0, 1, 4}));
}

TEST(FaultInjector, CorruptionFlipsExactlyOnePayloadByte) {
  std::vector<net::Packet> out;
  const auto uids = drive(
      2, 3,
      [](net::Link& l) { l.faults().corrupt_matching(nullptr, {1}); },
      20 * sim::kMicrosecond, &out);
  ASSERT_EQ(uids.size(), 2u);
  ASSERT_EQ(out.size(), 2u);
  const auto pristine0 = make_packet(0).payload;
  const auto pristine1 = make_packet(1).payload;
  EXPECT_TRUE(out[0].flags & net::kPktFlagCorrupted);
  EXPECT_FALSE(out[1].flags & net::kPktFlagCorrupted);
  EXPECT_EQ(out[1].payload, pristine1);
  std::size_t diffs = 0;
  ASSERT_EQ(out[0].payload.size(), pristine0.size());
  for (std::size_t i = 0; i < pristine0.size(); ++i) {
    if (out[0].payload[i] != pristine0[i]) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(FaultInjector, StagesDrawFromIndependentStreams) {
  // Enabling duplication must not change which packets the Bernoulli loss
  // stage drops: each stage forks its own rng stream.
  auto survivors = [](bool with_dup) {
    std::vector<std::uint64_t> uids = drive(2000, 11, [&](net::Link& l) {
      l.faults().set_loss(0.05);
      if (with_dup) l.faults().set_duplicate_probability(0.5);
    });
    // Collapse duplicates: the set of distinct uids delivered.
    std::sort(uids.begin(), uids.end());
    uids.erase(std::unique(uids.begin(), uids.end()), uids.end());
    return uids;
  };
  EXPECT_EQ(survivors(false), survivors(true));
}

class CorruptionTcpTest : public TracedTcpFixture {};
class CorruptionSctpTest : public TracedSctpFixture {};

TEST_F(CorruptionTcpTest, ChecksumDropsCorruptedSegmentAndTcpRecovers) {
  build_traced();
  auto [client, server] = connect_pair();
  trace_.clear();
  cluster_->uplink(0).faults().corrupt_matching(trace::is_tcp_data, {5});

  const auto data = pattern_bytes(64 * 1024);
  const auto got = transfer(client, server, data);
  // The corrupted copy was discarded by the modeled Internet checksum and
  // the payload was retransmitted intact.
  ASSERT_EQ(got, data);

  const auto* bad = trace_.first([](const TraceRecord& r) {
    return delivered(r) && on_point(r, "dn1.0") && r.is_corrupted();
  });
  ASSERT_NE(bad, nullptr);
  EXPECT_GE(client->stats().retransmits, 1u);
  // The same sequence number later crossed clean.
  EXPECT_GE(trace_.count([&](const TraceRecord& r) {
              return delivered(r) && on_point(r, "dn1.0") &&
                     r.seq == bad->seq && !r.is_corrupted() &&
                     r.carries_data();
            }),
            1u);
}

TEST_F(CorruptionSctpTest, Crc32cRejectsCorruptedPacketAndSctpRecovers) {
  sctp::SctpConfig cfg;
  cfg.crc32c_enabled = true;  // paper §4: CRC32c normally off; on here to
                              // exercise the verify path
  build_traced(0.0, cfg);
  auto pair = connect_pair();
  trace_.clear();
  cluster_->uplink(0).faults().corrupt_matching(trace::is_sctp_data, {3});

  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> msgs;
  for (int i = 0; i < 10; ++i) {
    msgs.emplace_back(0, pattern_bytes(1400, static_cast<std::uint8_t>(i + 1)));
  }
  const auto got = exchange(pair.a, pair.a_id, pair.b, msgs);
  ASSERT_EQ(got.size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    EXPECT_EQ(got[i].data, msgs[i].second) << "message " << i;
  }

  // A corrupted data packet reached host 1, was rejected by CRC32c, and
  // its TSN was retransmitted.
  const auto* bad = trace_.first([](const TraceRecord& r) {
    return delivered(r) && on_point(r, "dn1.0") && r.is_corrupted();
  });
  ASSERT_NE(bad, nullptr);
  const auto& st = pair.a->assoc(pair.a_id)->stats();
  EXPECT_GE(st.retransmits, 1u);
  EXPECT_GE(trace_.count([](const TraceRecord& r) {
              return queued(r) && on_point(r, "up0.0") && r.is_retransmit() &&
                     r.carries_data();
            }),
            1u);
}

}  // namespace
}  // namespace sctpmpi::test
