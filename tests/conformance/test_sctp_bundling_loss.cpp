// Conformance: chunk bundling keeps working under loss (RFC 2960 §6.10).
// Small messages must still be packed several-to-a-packet while a scripted
// drop forces recovery, and every TSN lost from a bundled packet must be
// retransmitted and delivered.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi::test {
namespace {

TEST_F(TracedSctpFixture, BundledChunksRecoverFromPacketLoss) {
  sctp::SctpConfig cfg;
  cfg.init_cwnd_mtus = 1;  // keep the window tight so sends queue and bundle
  build_traced(0.0, cfg);
  auto pair = connect_pair();
  trace_.clear();

  // Drop the 2nd and 4th data packets outright — if they were bundles,
  // several TSNs vanish at once.
  cluster_->uplink(0).faults().drop_matching(trace::is_sctp_data, {2, 4});

  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> msgs;
  for (int i = 0; i < 40; ++i) {
    msgs.emplace_back(static_cast<std::uint16_t>(i % 4),
                      pattern_bytes(200, static_cast<std::uint8_t>(i + 1)));
  }
  const auto got = exchange(pair.a, pair.a_id, pair.b, msgs);
  ASSERT_EQ(got.size(), msgs.size());

  // Bundling actually happened: some packet carried several DATA chunks.
  std::size_t max_chunks = 0;
  for (const auto& r : trace_.records()) {
    if (queued(r) && on_point(r, "up0.0")) {
      max_chunks = std::max(max_chunks, r.tsns.size());
    }
  }
  EXPECT_GE(max_chunks, 2u) << "small messages should bundle";

  // Every TSN lost inside a dropped packet was later delivered to host 1.
  std::set<std::uint32_t> lost_tsns;
  for (const auto& r : trace_.records()) {
    if (dropped(r) && on_point(r, "up0.0")) {
      for (std::uint32_t t : r.tsns) lost_tsns.insert(t);
    }
  }
  ASSERT_GE(lost_tsns.size(), 2u);
  for (std::uint32_t t : lost_tsns) {
    EXPECT_GE(trace_.count([&](const TraceRecord& r) {
                return delivered(r) && on_point(r, "dn1.0") && r.has_tsn(t);
              }),
              1u)
        << "lost TSN " << t << " never delivered";
  }

  // And the retransmissions are marked as such on the wire.
  EXPECT_GE(trace_.count([](const TraceRecord& r) {
              return queued(r) && on_point(r, "up0.0") && r.is_retransmit() &&
                     r.carries_data();
            }),
            1u);

  // Within each stream, messages arrived in the order they were sent.
  std::array<std::vector<const std::vector<std::byte>*>, 4> expect{};
  for (const auto& m : msgs) expect[m.first].push_back(&m.second);
  std::array<std::size_t, 4> next{};
  for (const auto& rec : got) {
    const std::uint16_t sid = rec.info.sid;
    ASSERT_LT(sid, 4u);
    ASSERT_LT(next[sid], expect[sid].size());
    EXPECT_EQ(rec.data, *expect[sid][next[sid]])
        << "stream " << sid << " out of order";
    ++next[sid];
  }
}

}  // namespace
}  // namespace sctpmpi::test
