// Conformance: the TCP SACK option is capped at 3 blocks (a real TCP header
// has room for at most 3-4; this stack models LAM-TCP's 3). Even when the
// receiver holds more than three out-of-order ranges, no segment on the wire
// may advertise more than 3 blocks — the root of the paper's observation
// that SCTP's unlimited gap reporting recovers multi-loss windows faster.
#include <gtest/gtest.h>

#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi::test {
namespace {

TEST_F(TracedTcpFixture, SackNeverExceedsThreeBlocks) {
  build_traced();
  auto [client, server] = connect_pair();
  trace_.clear();

  // Five alternating losses carve five disjoint holes into the receive
  // window, so the receiver *wants* to report more ranges than fit.
  cluster_->uplink(0).faults().drop_matching(trace::is_tcp_data,
                                             {8, 10, 12, 14, 16});

  const auto data = pattern_bytes(160 * 1024);
  const auto got = transfer(client, server, data);
  ASSERT_EQ(got, data);

  unsigned max_blocks = 0;
  for (const auto& r : trace_.records()) {
    if (!queued(r) || !on_point(r, "up1.0")) continue;
    max_blocks = std::max(max_blocks, r.sack_blocks);
  }
  // The cap was actually exercised: with five holes outstanding some ACK
  // wanted more than three blocks and was clamped to exactly 3 — and no
  // segment ever carried more.
  EXPECT_EQ(max_blocks, 3u);
  EXPECT_GE(trace_.count([](const TraceRecord& r) {
              return queued(r) && on_point(r, "up1.0") && r.sack_blocks == 3;
            }),
            1u);
}

TEST_F(TracedSctpFixture, SctpGapReportsExceedTcpLimit) {
  build_traced();
  auto pair = connect_pair();
  trace_.clear();

  // Same five-hole pattern. SCTP SACKs enumerate every gap, so with five
  // single-chunk packets lost the gap-block count must climb past TCP's 3.
  cluster_->uplink(0).faults().drop_matching(trace::is_sctp_data,
                                             {8, 10, 12, 14, 16});

  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> msgs;
  for (int i = 0; i < 40; ++i) {
    msgs.emplace_back(0, pattern_bytes(1400, static_cast<std::uint8_t>(i + 1)));
  }
  const auto got = exchange(pair.a, pair.a_id, pair.b, msgs);
  ASSERT_EQ(got.size(), msgs.size());

  unsigned max_gaps = 0;
  for (const auto& r : trace_.records()) {
    if (!queued(r) || !on_point(r, "up1.0")) continue;
    max_gaps = std::max(max_gaps, r.sack_blocks);
  }
  EXPECT_GE(max_gaps, 4u) << "SCTP SACK should report every hole";
}

}  // namespace
}  // namespace sctpmpi::test
