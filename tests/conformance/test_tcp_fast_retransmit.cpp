// Conformance: TCP fast retransmit (RFC 5681 §3.2). Dropping one data
// segment must elicit >= 3 duplicate ACKs stuck at the lost sequence and a
// retransmission of exactly that sequence well before the RTO floor.
#include <gtest/gtest.h>

#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi::test {
namespace {

constexpr sim::SimTime kMs = 1'000'000;

TEST_F(TracedTcpFixture, ThreeDupAcksTriggerFastRetransmit) {
  build_traced();
  auto [client, server] = connect_pair();
  trace_.clear();  // keep only the transfer, not the handshake

  // Drop the 10th data-bearing segment on the client's uplink.
  cluster_->uplink(0).faults().drop_matching(trace::is_tcp_data, {10});

  const auto data = pattern_bytes(120 * 1024);
  const auto got = transfer(client, server, data);
  ASSERT_EQ(got, data);

  // Exactly one data segment was dropped; its seq is the hole.
  const auto drops = trace_.select([](const TraceRecord& r) {
    return dropped(r) && r.carries_data();
  });
  ASSERT_EQ(drops.size(), 1u);
  const std::uint32_t hole = drops[0]->seq;
  const sim::SimTime drop_time = drops[0]->time;

  // The receiver emits at least dupack_threshold pure ACKs pinned at the
  // hole before the retransmission is queued.
  const auto* rtx = trace_.first([&](const TraceRecord& r) {
    return queued(r) && on_point(r, "up0.0") && r.is_retransmit() &&
           r.carries_data() && r.seq == hole;
  });
  ASSERT_NE(rtx, nullptr);
  const std::size_t dupacks_before_rtx = trace_.count([&](const TraceRecord& r) {
    return queued(r) && on_point(r, "up1.0") && r.has_chunk("ACK") &&
        r.data_bytes == 0 && r.ack == hole && r.time > drop_time &&
        r.time < rtx->time;
  });
  EXPECT_GE(dupacks_before_rtx, 3u);

  // Recovery was ACK-clocked, not timer-driven: the retransmission left
  // within a handful of RTTs, far below the 1 s minimum RTO.
  EXPECT_LT(rtx->time - drop_time, 100 * kMs);
  EXPECT_GE(client->stats().fast_retransmits, 1u);
  EXPECT_EQ(client->stats().timeouts, 0u);
  EXPECT_GE(client->stats().dupacks_received, 3u);

  // The hole's payload crossed the wire exactly twice: dropped, then
  // retransmitted and delivered.
  const std::size_t hole_deliveries = trace_.count([&](const TraceRecord& r) {
    return delivered(r) && on_point(r, "dn1.0") && r.carries_data() &&
           r.seq == hole;
  });
  EXPECT_EQ(hole_deliveries, 1u);
}

}  // namespace
}  // namespace sctpmpi::test
