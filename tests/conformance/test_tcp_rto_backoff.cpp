// Conformance: exponential RTO backoff (RFC 2988 §5.5). A timed blackout on
// the forward path forces repeated retransmission timeouts; successive
// retransmissions of the same sequence must be spaced by doubling intervals.
#include <gtest/gtest.h>

#include <vector>

#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi::test {
namespace {

constexpr sim::SimTime kSec = 1'000'000'000;

TEST_F(TracedTcpFixture, BlackoutForcesDoublingRetransmissionIntervals) {
  build_traced();
  auto [client, server] = connect_pair();
  trace_.clear();

  // Sever the client's uplink for 12 s starting now. Every copy of the
  // segment sent in that window is swallowed, so only the RTO timer can
  // drive recovery, and each expiry must double the wait.
  const sim::SimTime t0 = sim().now();
  cluster_->uplink(0).faults().add_blackout(t0, t0 + 12 * kSec);

  const auto data = pattern_bytes(512);
  const auto got = transfer(client, server, data);
  ASSERT_EQ(got, data);

  // All transmission attempts of the first (and only) segment, in order:
  // offered-to-link events, whether the blackout ate them or not.
  std::vector<sim::SimTime> attempts;
  for (const auto& r : trace_.records()) {
    if (on_point(r, "up0.0") && r.carries_data() &&
        (dropped(r) || queued(r))) {
      attempts.push_back(r.time);
    }
  }
  // Original + at least 3 timer-driven retries before the window lifts.
  ASSERT_GE(attempts.size(), 4u);
  EXPECT_GE(client->stats().timeouts, 3u);
  EXPECT_EQ(client->stats().fast_retransmits, 0u);

  // First retry waits at least the minimum RTO; after that each interval
  // is (at least) double the previous one, allowing for the +/- jitter of
  // timer scheduling via a 1.9x floor.
  std::vector<sim::SimTime> gaps;
  for (std::size_t i = 1; i < attempts.size(); ++i) {
    gaps.push_back(attempts[i] - attempts[i - 1]);
  }
  EXPECT_GE(gaps[0], 1 * kSec);
  for (std::size_t i = 1; i < gaps.size(); ++i) {
    EXPECT_GE(gaps[i] * 10, gaps[i - 1] * 19)
        << "interval " << i << " did not back off";
  }

  // Retransmissions during the blackout carry the retransmit flag.
  EXPECT_GE(trace_.count([&](const TraceRecord& r) {
              return dropped(r) && on_point(r, "up0.0") && r.is_retransmit();
            }),
            2u);
}

}  // namespace
}  // namespace sctpmpi::test
