// Shared harness for the protocol-conformance tier: the TCP/SCTP pair
// fixtures with a PacketTrace attached to every link and host, so tests
// assert on wire-level mechanics (which sequence was retransmitted, how
// many SACK blocks a segment carried, when a chunk was delivered) instead
// of only end-to-end outcomes.
#pragma once

#include <gtest/gtest.h>

#include "tests/support/sctp_fixture.hpp"
#include "tests/support/tcp_fixture.hpp"
#include "trace/packet_trace.hpp"

namespace sctpmpi::test {

using trace::PacketTrace;
using trace::TraceRecord;

/// True for records describing a packet accepted onto a link's queue.
inline bool queued(const TraceRecord& r) {
  return r.verdict == net::PacketVerdict::kQueued;
}
inline bool delivered(const TraceRecord& r) {
  return r.verdict == net::PacketVerdict::kDelivered;
}
inline bool dropped(const TraceRecord& r) {
  return r.verdict == net::PacketVerdict::kDroppedLoss;
}
inline bool on_point(const TraceRecord& r, const char* point) {
  return r.point == point;
}

class TracedTcpFixture : public TcpPairFixture {
 protected:
  void build_traced(double loss = 0.0, tcp::TcpConfig cfg = {},
                    std::uint64_t seed = 1) {
    trace_.detach();
    build(loss, cfg, seed);
    trace_.clear();
    trace_.attach(*cluster_);
  }

  PacketTrace trace_;
};

class TracedSctpFixture : public SctpFixture {
 protected:
  void build_traced(double loss = 0.0, sctp::SctpConfig cfg = {},
                    std::uint64_t seed = 1, unsigned hosts = 2,
                    unsigned interfaces = 1) {
    trace_.detach();
    build(loss, cfg, seed, hosts, interfaces);
    trace_.clear();
    trace_.attach(*cluster_);
  }

  PacketTrace trace_;
};

}  // namespace sctpmpi::test
