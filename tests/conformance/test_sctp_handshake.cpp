// Conformance: the 4-way cookie handshake (RFC 2960 §5) survives network
// mischief. A duplicated INIT, an INIT reordered behind its own
// retransmission, and a duplicated COOKIE-ECHO must all still yield exactly
// one established association that carries data.
#include <gtest/gtest.h>

#include <algorithm>

#include "tests/conformance/conformance_fixture.hpp"

namespace sctpmpi::test {
namespace {

bool is_init(const net::Packet& p) { return trace::has_sctp_chunk(p, "INIT"); }
bool is_cookie_echo(const net::Packet& p) {
  return trace::has_sctp_chunk(p, "COOKIE-ECHO");
}

class HandshakeTest : public TracedSctpFixture {
 protected:
  /// One small message proves the association carries data.
  void expect_data_flows(sctp::SctpSocket* tx, sctp::AssocId tx_assoc,
                         sctp::SctpSocket* rx) {
    const std::vector<std::byte> msg = pattern_bytes(333);
    std::vector<std::byte> buf(4096);
    ASSERT_GT(tx->sendmsg(tx_assoc, 0, msg), 0);
    sctp::RecvInfo info;
    std::ptrdiff_t n = 0;
    run_while([&] {
      n = rx->recvmsg(buf, info);
      return n <= 0;
    });
    ASSERT_EQ(static_cast<std::size_t>(n), msg.size());
    EXPECT_TRUE(std::equal(msg.begin(), msg.end(), buf.begin()));
  }
};

TEST_F(HandshakeTest, DuplicatedInitEstablishesSingleAssociation) {
  build_traced();
  cluster_->uplink(0).faults().duplicate_matching(is_init, {1});

  auto pair = connect_pair();

  // Both copies of the INIT reached the server; the stateless responder
  // answered each with an INIT-ACK...
  EXPECT_EQ(trace_.count([](const TraceRecord& r) {
              return delivered(r) && on_point(r, "dn1.0") &&
                     r.has_chunk("INIT");
            }),
            2u);
  EXPECT_EQ(trace_.count([](const TraceRecord& r) {
              return queued(r) && on_point(r, "up1.0") &&
                     r.has_chunk("INIT-ACK");
            }),
            2u);
  // ...but the client echoed exactly one cookie (the second INIT-ACK is
  // stale once the client left COOKIE-WAIT), so one association forms.
  EXPECT_EQ(trace_.count([](const TraceRecord& r) {
              return queued(r) && on_point(r, "up0.0") &&
                     r.has_chunk("COOKIE-ECHO");
            }),
            1u);
  EXPECT_EQ(trace_.count(
                [](const TraceRecord& r) { return r.has_chunk("ABORT"); }),
            0u);
  expect_data_flows(pair.a, pair.a_id, pair.b);
}

TEST_F(HandshakeTest, ReorderedInitBehindItsRetransmissionStillConnects) {
  build_traced();
  // Hold the first INIT for 3.5 s — past the 3 s initial T1 timeout — so
  // the client's retransmitted INIT overtakes the original on the wire.
  cluster_->uplink(0).faults().delay_matching(is_init, {1},
                                              3'500 * sim::kMillisecond);

  auto pair = connect_pair();

  // connect_pair stops as soon as both sides are up (~3.0 s, right after
  // the T1 retransmission) — keep the clock running past 3.5 s so the
  // delayed original INIT actually limps in.
  bool settled = false;
  sim().schedule_after(1 * sim::kSecond, [&] { settled = true; });
  run_while([&] { return !settled; });

  const auto inits = trace_.select([](const TraceRecord& r) {
    return delivered(r) && on_point(r, "dn1.0") && r.has_chunk("INIT");
  });
  ASSERT_EQ(inits.size(), 2u);
  // The retransmission arrived first; the delayed original limped in later.
  EXPECT_TRUE(inits[0]->is_retransmit());
  EXPECT_FALSE(inits[1]->is_retransmit());
  EXPECT_LT(inits[0]->time, inits[1]->time);

  // The late duplicate hit a live association and was discarded: exactly
  // one INIT-ACK on the wire, no second handshake, no ABORT.
  EXPECT_EQ(trace_.count([](const TraceRecord& r) {
              return queued(r) && on_point(r, "up1.0") &&
                     r.has_chunk("INIT-ACK");
            }),
            1u);
  EXPECT_EQ(trace_.count(
                [](const TraceRecord& r) { return r.has_chunk("ABORT"); }),
            0u);
  EXPECT_EQ(trace_.count([](const TraceRecord& r) {
              return queued(r) && on_point(r, "up0.0") &&
                     r.has_chunk("COOKIE-ECHO");
            }),
            1u);
  expect_data_flows(pair.a, pair.a_id, pair.b);
}

TEST_F(HandshakeTest, DuplicatedCookieEchoIsReAckedNotReEstablished) {
  build_traced();
  cluster_->uplink(0).faults().duplicate_matching(is_cookie_echo, {1});

  auto pair = connect_pair();

  // The duplicate COOKIE-ECHO hits an already-established association and
  // is answered with a fresh COOKIE-ACK (the peer's ack may have been
  // lost), not an ABORT and not a second association.
  EXPECT_EQ(trace_.count([](const TraceRecord& r) {
              return delivered(r) && on_point(r, "dn1.0") &&
                     r.has_chunk("COOKIE-ECHO");
            }),
            2u);
  EXPECT_EQ(trace_.count([](const TraceRecord& r) {
              return queued(r) && on_point(r, "up1.0") &&
                     r.has_chunk("COOKIE-ACK");
            }),
            2u);
  EXPECT_EQ(trace_.count([](const TraceRecord& r) {
              return r.has_chunk("ABORT") || r.has_chunk("ERROR");
            }),
            0u);
  expect_data_flows(pair.a, pair.a_id, pair.b);
}

}  // namespace
}  // namespace sctpmpi::test
