// End-to-end datapath tests: the copy budget (at most one counted payload
// copy per direction per transfer), MTU-boundary slicing through the TCP
// segmenter and SCTP chunk bundler, degenerate message sizes, and
// replay-after-reconnect sharing the retained message body (refcount bump,
// no re-ingest).
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/world.hpp"
#include "net/buffer.hpp"
#include "tests/chaos/chaos_fixture.hpp"
#include "tests/support/sctp_fixture.hpp"
#include "tests/support/tcp_fixture.hpp"

namespace {

using sctpmpi::core::Mpi;
using sctpmpi::core::MpiStatus;
using sctpmpi::core::TransportKind;
using sctpmpi::core::World;
using sctpmpi::core::WorldConfig;
using sctpmpi::net::CopyStats;
using sctpmpi::test::pattern_bytes;

// ---------------------------------------------------------------------------
// Copy budget: a 1 MiB ping-pong at zero loss must touch each payload byte
// exactly twice per one-way transfer — once at wire encode (send side) and
// once delivering into the user buffer (receive side) — and ingest each
// message body exactly once at start_send.
// ---------------------------------------------------------------------------

void run_copy_budget_pingpong(TransportKind transport) {
  constexpr std::size_t kMsg = 1 << 20;
  constexpr int kIters = 3;

  WorldConfig cfg;
  cfg.ranks = 2;
  cfg.transport = transport;
  World world(cfg);

  CopyStats::reset();
  sctpmpi::chaos::run_verified_pingpong(world, kIters, kMsg);
  const CopyStats stats = CopyStats::get();

  // One-way payload bytes moved across the job.
  const std::size_t one_way = 2u * kIters * kMsg;
  // Envelopes, acks and handshake bytes also flow through the counted
  // encode path; allow a small absolute overhead on top of the budget.
  const std::size_t slack = 64 * 1024;

  EXPECT_GE(stats.payload_copy_bytes, 2 * one_way);
  EXPECT_LE(stats.payload_copy_bytes, 2 * one_way + slack)
      << "more than one counted copy per direction";
  EXPECT_GE(stats.ingest_bytes, one_way);
  EXPECT_LE(stats.ingest_bytes, one_way + slack)
      << "message bodies ingested more than once";
}

TEST(CopyBudget, PingPong1MiBTcp) {
  run_copy_budget_pingpong(TransportKind::kTcp);
}

TEST(CopyBudget, PingPong1MiBSctp) {
  run_copy_budget_pingpong(TransportKind::kSctp);
}

// ---------------------------------------------------------------------------
// MTU-boundary slicing: transfers that land exactly on, one short of, and
// one past a segment/chunk boundary exercise the slice arithmetic in the
// TCP segmenter and the SCTP bundler.
// ---------------------------------------------------------------------------

class DatapathTcp : public sctpmpi::test::TcpPairFixture {};

TEST_F(DatapathTcp, MssBoundarySlicing) {
  build();
  auto [client, server] = connect_pair();
  const std::size_t mss = sctpmpi::tcp::TcpConfig{}.mss;
  std::uint8_t seed = 1;
  for (std::size_t n : {mss - 1, mss, mss + 1, 3 * mss, 3 * mss + 1}) {
    const auto data = pattern_bytes(n, seed++);
    EXPECT_EQ(transfer(client, server, data), data) << "size " << n;
  }
}

class DatapathSctp : public sctpmpi::test::SctpFixture {};

TEST_F(DatapathSctp, ChunkBoundaryBundling) {
  build();
  auto pair = connect_pair();
  // DATA chunk payload capacity for the default PMTU: 1500 - 12 (common
  // header) - 16 (DATA chunk header) = 1452.
  const std::size_t cap = 1452;
  std::vector<std::pair<std::uint16_t, std::vector<std::byte>>> messages;
  std::uint8_t seed = 1;
  for (std::size_t n : {cap - 1, cap, cap + 1, 4 * cap, 4 * cap + 1}) {
    messages.emplace_back(static_cast<std::uint16_t>(messages.size() % 3),
                          pattern_bytes(n, seed++));
  }
  const auto got = exchange(pair.a, pair.a_id, pair.b, messages);
  ASSERT_EQ(got.size(), messages.size());
  // Same-stream messages keep order; across streams arrival order can
  // interleave, so match by size (all sizes here are distinct).
  for (const auto& [sid, data] : messages) {
    bool found = false;
    for (const auto& r : got) {
      if (r.data == data) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "message of size " << data.size() << " not delivered";
  }
}

// ---------------------------------------------------------------------------
// Degenerate sizes: zero-length and single-byte messages through the full
// MPI datapath on both transports.
// ---------------------------------------------------------------------------

void run_tiny_messages(TransportKind transport) {
  WorldConfig cfg;
  cfg.ranks = 2;
  cfg.transport = transport;
  World world(cfg);
  world.run([&](Mpi& mpi) {
    std::vector<std::byte> empty;
    std::vector<std::byte> one{std::byte{0x5A}};
    std::vector<std::byte> rbuf(8, std::byte{0xFF});
    if (mpi.rank() == 0) {
      mpi.send(empty, 1, 1);
      mpi.send(one, 1, 2);
      const MpiStatus st = mpi.recv(rbuf, 1, 3);
      EXPECT_EQ(st.count, 1u);
      EXPECT_EQ(rbuf[0], std::byte{0xA5});
    } else {
      MpiStatus st = mpi.recv(rbuf, 0, 1);
      EXPECT_EQ(st.count, 0u);
      EXPECT_EQ(rbuf[0], std::byte{0xFF}) << "zero-length recv wrote bytes";
      st = mpi.recv(rbuf, 0, 2);
      EXPECT_EQ(st.count, 1u);
      EXPECT_EQ(rbuf[0], std::byte{0x5A});
      std::vector<std::byte> reply{std::byte{0xA5}};
      mpi.send(reply, 0, 3);
    }
  });
}

TEST(DatapathTiny, ZeroAndOneByteTcp) { run_tiny_messages(TransportKind::kTcp); }

TEST(DatapathTiny, ZeroAndOneByteSctp) {
  run_tiny_messages(TransportKind::kSctp);
}

// ---------------------------------------------------------------------------
// Replay after reconnect shares the retained Buffer body: a replayed
// message is a refcount bump on the body ingested at start_send, never a
// second ingest. The blackout forces a transport teardown (declare-dead
// after ~3 s of unanswered rtx under the chaos timers) followed by
// reconnect and replay; payloads are verified end to end by the workload.
// ---------------------------------------------------------------------------

void run_replay_sharing(TransportKind transport) {
  constexpr std::size_t kMsg = 2048;
  constexpr int kIters = 30;

  World world(sctpmpi::chaos::chaos_world_config(transport, 77, 2));
  sctpmpi::chaos::blackout_host(world, 1, 1 * sctpmpi::sim::kSecond,
                                5 * sctpmpi::sim::kSecond);

  CopyStats::reset();
  sctpmpi::chaos::run_verified_pingpong(world, kIters, kMsg,
                                        200 * sctpmpi::sim::kMillisecond);
  const CopyStats stats = CopyStats::get();

  const std::uint64_t replayed = world.rpi(0).stats().replayed_msgs +
                                 world.rpi(1).stats().replayed_msgs;
  const std::uint64_t reconnects =
      world.rpi(0).stats().reconnects + world.rpi(1).stats().reconnects;
  EXPECT_GE(reconnects, 1u) << "blackout did not force a reconnect";
  EXPECT_GE(replayed, 1u) << "reconnect did not replay any retained message";

  // Each message body is ingested exactly once even though some were
  // replayed; replay re-encodes (counted payload copy) but never
  // re-ingests. Control traffic adds a small ingest overhead on SCTP.
  const std::size_t one_way = 2u * kIters * kMsg;
  EXPECT_GE(stats.ingest_bytes, one_way);
  EXPECT_LE(stats.ingest_bytes, one_way + 16 * 1024)
      << "replay re-ingested message bodies instead of sharing the Buffer";
}

TEST(DatapathReplay, SharesRetainedBodyTcp) {
  run_replay_sharing(TransportKind::kTcp);
}

TEST(DatapathReplay, SharesRetainedBodySctp) {
  run_replay_sharing(TransportKind::kSctp);
}

}  // namespace
