// Tests for the LAM daemon layer (paper §3.5.3): UDP vs SCTP control
// traffic — reliability of status pings and abort/cleanup broadcasts, and
// the failure-notification advantage of the SCTP variant.
#include "core/lamd.hpp"

#include <gtest/gtest.h>

#include "net/cluster.hpp"
#include "net/udp.hpp"
#include "sctp/socket.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::core {
namespace {

class LamdFixture : public ::testing::Test {
 protected:
  void build(CtlTransport transport, double loss = 0.0, unsigned nodes = 8,
             std::uint64_t seed = 5) {
    daemons_.clear();
    sctp_stacks_.clear();
    udp_stacks_.clear();
    cluster_.reset();
    sim_ = std::make_unique<sim::Simulator>();
    net::ClusterParams params;
    params.hosts = nodes;
    params.link.loss = loss;
    cluster_ = std::make_unique<net::Cluster>(*sim_, sim::Rng(seed), params);
    auto addr = [this](int n) {
      return cluster_->addr(static_cast<unsigned>(n));
    };
    LamdConfig cfg;
    cfg.transport = transport;
    for (unsigned h = 0; h < nodes; ++h) {
      sctp::SctpStack* ss = nullptr;
      net::UdpStack* us = nullptr;
      if (transport == CtlTransport::kSctp) {
        sctp_stacks_.push_back(std::make_unique<sctp::SctpStack>(
            cluster_->host(h), sctp::SctpConfig{},
            sim::Rng(seed).fork(700 + h)));
        ss = sctp_stacks_.back().get();
      } else {
        udp_stacks_.push_back(
            std::make_unique<net::UdpStack>(cluster_->host(h)));
        us = udp_stacks_.back().get();
      }
      daemons_.push_back(std::make_unique<LamDaemon>(
          cluster_->host(h), static_cast<int>(h), static_cast<int>(nodes),
          cfg, addr, ss, us));
    }
    for (auto& d : daemons_) d->start();
  }

  void run_for(sim::SimTime t) { sim_->run_until(sim_->now() + t); }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<net::Cluster> cluster_;
  std::vector<std::unique_ptr<sctp::SctpStack>> sctp_stacks_;
  std::vector<std::unique_ptr<net::UdpStack>> udp_stacks_;
  std::vector<std::unique_ptr<LamDaemon>> daemons_;
};

TEST_F(LamdFixture, MasterSeesAllNodesOverUdp) {
  build(CtlTransport::kUdp);
  run_for(2 * sim::kSecond);
  EXPECT_EQ(daemons_[0]->alive_count(), 8);
}

TEST_F(LamdFixture, MasterSeesAllNodesOverSctp) {
  build(CtlTransport::kSctp);
  run_for(2 * sim::kSecond);
  EXPECT_EQ(daemons_[0]->alive_count(), 8);
}

TEST_F(LamdFixture, UdpDropsStatusUnderLossSctpDoesNot) {
  for (auto transport : {CtlTransport::kUdp, CtlTransport::kSctp}) {
    // Establish the control channels cleanly, then turn on 20% loss: the
    // claim under test is the reliability of the control *traffic*, not
    // handshake convergence time.
    build(transport, /*loss=*/0.0);
    run_for(2 * sim::kSecond);
    cluster_->set_loss(0.2);
    run_for(60 * sim::kSecond);
    cluster_->set_loss(0.0);      // let SCTP retransmissions drain
    run_for(10 * sim::kSecond);
    std::uint64_t sent = 0;
    for (std::size_t i = 1; i < daemons_.size(); ++i) {
      sent += daemons_[i]->stats().status_sent;
    }
    const std::uint64_t received = daemons_[0]->stats().status_received;
    if (transport == CtlTransport::kUdp) {
      EXPECT_LT(received, sent) << "UDP must lose ~20% of pings";
      EXPECT_GT(received, sent / 2);
    } else {
      // SCTP retransmits: every ping arrives, save at most the one still
      // in flight per slave when the clock stops.
      EXPECT_GE(received + daemons_.size(), sent);
      EXPECT_LE(received, sent);
    }
  }
}

TEST_F(LamdFixture, AbortBroadcastReliableOnlyOverSctp) {
  for (auto transport : {CtlTransport::kUdp, CtlTransport::kSctp}) {
    build(transport, /*loss=*/0.0, /*nodes=*/8, /*seed=*/11);
    run_for(2 * sim::kSecond);    // channels up
    cluster_->set_loss(0.35);
    daemons_[0]->broadcast_abort();
    run_for(30 * sim::kSecond);
    int got = 0;
    for (std::size_t i = 1; i < daemons_.size(); ++i) {
      if (daemons_[i]->abort_received()) ++got;
    }
    if (transport == CtlTransport::kUdp) {
      EXPECT_LT(got, 7) << "at 35% loss some single-shot aborts must vanish";
    } else {
      EXPECT_EQ(got, 7) << "SCTP cleanup orders are reliable (paper §3.5.3)";
    }
  }
}

TEST_F(LamdFixture, DeadNodeDetectedByPingTimeout) {
  build(CtlTransport::kSctp);
  run_for(2 * sim::kSecond);
  EXPECT_TRUE(daemons_[0]->is_alive(3));
  // Node 3's network dies.
  cluster_->uplink(3).faults().drop_if([](const net::Packet&) { return true; });
  cluster_->downlink(3).faults().drop_if(
      [](const net::Packet&) { return true; });
  run_for(5 * sim::kSecond);
  EXPECT_FALSE(daemons_[0]->is_alive(3));
  EXPECT_EQ(daemons_[0]->alive_count(), 7);
}

TEST_F(LamdFixture, SctpCommLostMarksNodeDead) {
  build(CtlTransport::kSctp);
  run_for(2 * sim::kSecond);
  // Kill node 5 and have the master push an abort at it: the association's
  // retransmission limit fires a CommLost notification.
  cluster_->uplink(5).faults().drop_if([](const net::Packet&) { return true; });
  cluster_->downlink(5).faults().drop_if(
      [](const net::Packet&) { return true; });
  daemons_[0]->broadcast_abort();
  run_for(120 * sim::kSecond);  // let the assoc retransmission limit trip
  EXPECT_FALSE(daemons_[0]->is_alive(5));
}

TEST_F(LamdFixture, NeverHeardFromGetsGracePeriodThenDeclaredDead) {
  // Regression: a node the master has never heard from must get a grace
  // period of dead_after from start(). The old check compared against a
  // zero last-seen stamp, declaring every node dead at t=0 until its
  // first ping happened to land.
  build(CtlTransport::kUdp);
  // Node 3 is cut off from the very first instant: the master never
  // receives a single status ping from it.
  cluster_->uplink(3).faults().add_blackout(0, sim::SimTime{1} << 62);
  run_for(sim::kSecond);  // inside the 2 s dead_after grace window
  EXPECT_TRUE(daemons_[0]->is_alive(3))
      << "silent node declared dead before its grace period expired";
  EXPECT_EQ(daemons_[0]->alive_count(), 8);
  run_for(5 * sim::kSecond / 2);  // now well past the grace window
  EXPECT_FALSE(daemons_[0]->is_alive(3));
  EXPECT_EQ(daemons_[0]->alive_count(), 7);
}

TEST_F(LamdFixture, NodeDeadCallbackFiresOncePerTransition) {
  build(CtlTransport::kUdp);
  std::vector<int> deaths;
  daemons_[0]->set_node_dead_callback([&](int n) { deaths.push_back(n); });
  run_for(2 * sim::kSecond);  // everyone pinging
  EXPECT_TRUE(deaths.empty());

  // First death: node 2 goes silent at 2 s, for 4 s. The master's verdict
  // lands one dead_after (2 s) after the last ping got through, and the
  // callback fires exactly once no matter how many ticks confirm it.
  cluster_->uplink(2).faults().add_blackout(sim_->now(),
                                            sim_->now() + 4 * sim::kSecond);
  run_for(5 * sim::kSecond);
  ASSERT_EQ(deaths.size(), 1u);
  EXPECT_EQ(deaths[0], 2);

  // The blackout has lifted: pings resume and the node counts as alive
  // again, which re-arms the transition.
  run_for(2 * sim::kSecond);
  EXPECT_TRUE(daemons_[0]->is_alive(2));
  ASSERT_EQ(deaths.size(), 1u);

  // Second death of the same node fires the callback again.
  cluster_->uplink(2).faults().add_blackout(sim_->now(),
                                            sim::SimTime{1} << 62);
  run_for(5 * sim::kSecond);
  ASSERT_EQ(deaths.size(), 2u);
  EXPECT_EQ(deaths[1], 2);
}

TEST_F(LamdFixture, UdpDaemonsCarryNoConnectionState) {
  // A UDP daemon restarted mid-run just keeps working (datagrams are
  // stateless) — the flip side of having no failure notifications.
  build(CtlTransport::kUdp, 0.0, 4);
  run_for(sim::kSecond);
  const auto before = daemons_[0]->stats().status_received;
  run_for(sim::kSecond);
  EXPECT_GT(daemons_[0]->stats().status_received, before);
}

}  // namespace
}  // namespace sctpmpi::core
