// MPI semantics tests, parameterized over the transport module (LAM-TCP
// baseline, the paper's SCTP module, and the single-stream SCTP ablation)
// and over Dummynet loss rates — every MPI-visible behaviour must be
// identical regardless of transport or loss.
#include "core/mpi.hpp"

#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/world.hpp"
#include "tests/support/tcp_fixture.hpp"  // pattern_bytes

namespace sctpmpi::core {
namespace {

using test::pattern_bytes;

struct Variant {
  const char* name;
  TransportKind transport;
  unsigned stream_pool;
  double loss;
};

class MpiSemanticsTest : public ::testing::TestWithParam<Variant> {
 protected:
  WorldConfig make_config(int ranks = 4) const {
    WorldConfig cfg;
    cfg.ranks = ranks;
    cfg.transport = GetParam().transport;
    cfg.rpi.stream_pool = GetParam().stream_pool;
    cfg.loss = GetParam().loss;
    cfg.seed = 42;
    return cfg;
  }
};

TEST_P(MpiSemanticsTest, BlockingSendRecvRoundTrip) {
  World w(make_config(2));
  auto payload = pattern_bytes(1000);
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(payload, 1, /*tag=*/7);
    } else {
      std::vector<std::byte> buf(2000);
      MpiStatus st = mpi.recv(buf, 0, 7);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.count, payload.size());
      EXPECT_TRUE(std::equal(payload.begin(), payload.end(), buf.begin()));
    }
  });
}

TEST_P(MpiSemanticsTest, LongMessagesUseRendezvousAndArriveIntact) {
  World w(make_config(2));
  auto payload = pattern_bytes(150 * 1024);  // > 64 KiB eager limit
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(payload, 1, 1);
    } else {
      std::vector<std::byte> buf(payload.size());
      MpiStatus st = mpi.recv(buf, 0, 1);
      EXPECT_EQ(st.count, payload.size());
      EXPECT_EQ(buf, payload);
    }
  });
  EXPECT_GE(w.rpi(0).stats().rendezvous_msgs, 1u);
  EXPECT_EQ(w.rpi(0).stats().eager_msgs, 0u);
}

TEST_P(MpiSemanticsTest, MessageOrderingPreservedPerTrc) {
  // Same (tag, rank, context): strict ordering even under loss.
  World w(make_config(2));
  constexpr int kN = 40;
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        auto m = pattern_bytes(512, static_cast<std::uint8_t>(i + 1));
        mpi.send(m, 1, /*tag=*/3);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        std::vector<std::byte> buf(512);
        mpi.recv(buf, 0, 3);
        EXPECT_EQ(buf, pattern_bytes(512, static_cast<std::uint8_t>(i + 1)))
            << "message " << i << " out of order";
      }
    }
  });
}

TEST_P(MpiSemanticsTest, AnySourceWildcardReceivesFromAll) {
  World w(make_config(4));
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      std::set<int> sources;
      for (int i = 0; i < 3; ++i) {
        std::vector<std::byte> buf(64);
        MpiStatus st = mpi.recv(buf, kAnySource, 5);
        sources.insert(st.source);
      }
      EXPECT_EQ(sources, (std::set<int>{1, 2, 3}));
    } else {
      auto m = pattern_bytes(64, static_cast<std::uint8_t>(mpi.rank()));
      mpi.send(m, 0, 5);
    }
  });
}

TEST_P(MpiSemanticsTest, AnyTagWildcardMatches) {
  World w(make_config(2));
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      auto m = pattern_bytes(128);
      mpi.send(m, 1, /*tag=*/1234);
    } else {
      std::vector<std::byte> buf(128);
      MpiStatus st = mpi.recv(buf, 0, kAnyTag);
      EXPECT_EQ(st.tag, 1234);
    }
  });
}

TEST_P(MpiSemanticsTest, UnexpectedMessagesAreBufferedAndMatchedLater) {
  World w(make_config(2));
  auto m = pattern_bytes(900);
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(m, 1, 9);
      mpi.barrier();
    } else {
      // Delay posting the receive until the message has surely arrived.
      mpi.barrier();
      mpi.compute(10 * sim::kMillisecond);
      std::vector<std::byte> buf(900);
      MpiStatus st = mpi.recv(buf, 0, 9);
      EXPECT_EQ(st.count, m.size());
      EXPECT_TRUE(std::equal(m.begin(), m.end(), buf.begin()));
    }
  });
  if (GetParam().loss == 0.0) {
    // Under loss the eager message may be retransmitted and arrive after
    // the receive post; only the no-loss runs deterministically exercise
    // the unexpected-message path.
    EXPECT_GE(w.rpi(1).stats().unexpected_msgs, 1u);
  }
}

TEST_P(MpiSemanticsTest, UnexpectedLongMessageRendezvousCompletes) {
  World w(make_config(2));
  auto m = pattern_bytes(200 * 1024);
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(m, 1, 2);
    } else {
      mpi.compute(50 * sim::kMillisecond);  // let the envelope arrive first
      std::vector<std::byte> buf(m.size());
      MpiStatus st = mpi.recv(buf, 0, 2);
      EXPECT_EQ(st.count, m.size());
      EXPECT_EQ(buf, m);
    }
  });
}

TEST_P(MpiSemanticsTest, SsendCompletesOnlyAfterMatch) {
  World w(make_config(2));
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      auto m = pattern_bytes(100);
      const double t0 = mpi.wtime();
      mpi.ssend(m, 1, 4);
      const double t1 = mpi.wtime();
      // Receiver posts its recv only after ~50ms of compute, so the
      // synchronous send cannot complete before that.
      EXPECT_GE(t1 - t0, 0.045);
    } else {
      mpi.compute(50 * sim::kMillisecond);
      std::vector<std::byte> buf(100);
      mpi.recv(buf, 0, 4);
    }
  });
}

TEST_P(MpiSemanticsTest, NonblockingWaitanyCompletesAll) {
  World w(make_config(2));
  constexpr int kN = 10;
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        auto m = pattern_bytes(256, static_cast<std::uint8_t>(i));
        mpi.send(m, 1, i);
      }
    } else {
      std::vector<std::vector<std::byte>> bufs(kN,
                                               std::vector<std::byte>(256));
      std::vector<Request> reqs;
      for (int i = 0; i < kN; ++i) {
        reqs.push_back(mpi.irecv(bufs[static_cast<std::size_t>(i)], 0, i));
      }
      int completed = 0;
      while (completed < kN) {
        MpiStatus st;
        int idx = mpi.waitany(reqs, &st);
        EXPECT_GE(idx, 0);
        EXPECT_EQ(st.tag, idx);
        ++completed;
      }
      for (int i = 0; i < kN; ++i) {
        EXPECT_EQ(bufs[static_cast<std::size_t>(i)],
                  pattern_bytes(256, static_cast<std::uint8_t>(i)));
      }
    }
  });
}

TEST_P(MpiSemanticsTest, TestReturnsFalseThenTrue) {
  World w(make_config(2));
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.compute(20 * sim::kMillisecond);
      auto m = pattern_bytes(64);
      mpi.send(m, 1, 0);
    } else {
      std::vector<std::byte> buf(64);
      Request r = mpi.irecv(buf, 0, 0);
      EXPECT_FALSE(mpi.test(r));  // nothing sent yet
      while (!mpi.test(r)) {
        mpi.compute(sim::kMillisecond);
      }
    }
  });
}

TEST_P(MpiSemanticsTest, ProbeReportsEnvelopeWithoutConsuming) {
  World w(make_config(2));
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      auto m = pattern_bytes(333);
      mpi.send(m, 1, 77);
    } else {
      MpiStatus st = mpi.probe(0, 77);
      EXPECT_EQ(st.count, 333u);
      EXPECT_EQ(st.source, 0);
      std::vector<std::byte> buf(333);
      MpiStatus rst = mpi.recv(buf, 0, 77);
      EXPECT_EQ(rst.count, 333u);
    }
  });
}

TEST_P(MpiSemanticsTest, DifferentTagsCanOvertakeWithWaitany) {
  // The paper's Fig. 4 scenario skeleton: two tags, receiver takes
  // whichever arrives first. Works on every transport; the *timing*
  // difference under loss is measured by the benches, not asserted here.
  World w(make_config(2));
  w.run([&](Mpi& mpi) {
    if (mpi.rank() == 1) {
      auto a = pattern_bytes(30'000, 1);
      auto b = pattern_bytes(30'000, 2);
      mpi.send(a, 0, /*tag-A=*/1);
      mpi.send(b, 0, /*tag-B=*/2);
    } else {
      std::vector<std::byte> bufa(30'000), bufb(30'000);
      std::vector<Request> reqs{mpi.irecv(bufa, 1, 1), mpi.irecv(bufb, 1, 2)};
      mpi.waitany(reqs);
      mpi.compute(5 * sim::kMillisecond);
      mpi.waitall(reqs);
      EXPECT_EQ(bufa, pattern_bytes(30'000, 1));
      EXPECT_EQ(bufb, pattern_bytes(30'000, 2));
    }
  });
}

TEST_P(MpiSemanticsTest, SimultaneousLongExchangeSameTagNoRace) {
  // Regression for the paper's §3.4 race: both processes exchange long
  // messages with the SAME tag (same stream) simultaneously. Option B must
  // keep the rendezvous ACKs from being misread as body fragments.
  World w(make_config(2));
  auto m0 = pattern_bytes(150 * 1024, 1);
  auto m1 = pattern_bytes(150 * 1024, 2);
  w.run([&](Mpi& mpi) {
    const int peer = 1 - mpi.rank();
    const auto& mine = mpi.rank() == 0 ? m0 : m1;
    const auto& theirs = mpi.rank() == 0 ? m1 : m0;
    std::vector<std::byte> buf(mine.size());
    Request rr = mpi.irecv(buf, peer, /*tag=*/6);
    Request sr = mpi.isend(mine, peer, /*tag=*/6);
    mpi.wait(rr);
    mpi.wait(sr);
    EXPECT_EQ(buf, theirs);
  });
}

TEST_P(MpiSemanticsTest, ManySimultaneousLongExchangesAllStreams) {
  // Heavier race regression: several concurrent long exchanges on many
  // tags in both directions.
  World w(make_config(2));
  constexpr int kMsgs = 6;
  w.run([&](Mpi& mpi) {
    const int peer = 1 - mpi.rank();
    std::vector<std::vector<std::byte>> rx(kMsgs);
    std::vector<std::vector<std::byte>> tx(kMsgs);
    std::vector<Request> reqs;
    for (int i = 0; i < kMsgs; ++i) {
      tx[static_cast<std::size_t>(i)] = pattern_bytes(
          100 * 1024, static_cast<std::uint8_t>(10 * mpi.rank() + i + 1));
      rx[static_cast<std::size_t>(i)].resize(100 * 1024);
      reqs.push_back(mpi.irecv(rx[static_cast<std::size_t>(i)], peer, i));
    }
    for (int i = 0; i < kMsgs; ++i) {
      reqs.push_back(mpi.isend(tx[static_cast<std::size_t>(i)], peer, i));
    }
    mpi.waitall(reqs);
    for (int i = 0; i < kMsgs; ++i) {
      EXPECT_EQ(rx[static_cast<std::size_t>(i)],
                pattern_bytes(100 * 1024, static_cast<std::uint8_t>(
                                              10 * (1 - mpi.rank()) + i + 1)));
    }
  });
}

TEST_P(MpiSemanticsTest, BarrierSynchronizesRanks) {
  World w(make_config(4));
  w.run([&](Mpi& mpi) {
    // Ranks arrive at wildly different times; all must leave together.
    mpi.compute(mpi.rank() * 10 * sim::kMillisecond);
    mpi.barrier();
    EXPECT_GE(mpi.wtime(), 0.030) << "no rank may leave before the last one";
  });
}

TEST_P(MpiSemanticsTest, BcastDeliversToAllRanks) {
  World w(make_config(4));
  auto data = pattern_bytes(10'000, 9);
  w.run([&](Mpi& mpi) {
    std::vector<std::byte> buf(10'000);
    if (mpi.rank() == 2) buf = data;  // non-zero root
    mpi.bcast(buf, /*root=*/2);
    EXPECT_EQ(buf, data);
  });
}

TEST_P(MpiSemanticsTest, ReduceAndAllreduceComputeCorrectly) {
  World w(make_config(4));
  w.run([&](Mpi& mpi) {
    std::vector<double> in(16);
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<double>(mpi.rank() + 1) * static_cast<double>(i);
    }
    std::vector<double> out(16);
    mpi.reduce(std::span<const double>(in), std::span<double>(out), OpSum{},
               /*root=*/0);
    if (mpi.rank() == 0) {
      for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_DOUBLE_EQ(out[i], 10.0 * static_cast<double>(i));  // 1+2+3+4
      }
    }
    const auto total = mpi.allreduce_sum<std::int64_t>(mpi.rank() + 1);
    EXPECT_EQ(total, 10);
    std::vector<double> mx(1, static_cast<double>(mpi.rank()));
    std::vector<double> mxout(1);
    mpi.allreduce(std::span<const double>(mx), std::span<double>(mxout),
                  OpMax{});
    EXPECT_DOUBLE_EQ(mxout[0], 3.0);
  });
}

TEST_P(MpiSemanticsTest, GatherScatterAllgatherAlltoall) {
  World w(make_config(4));
  w.run([&](Mpi& mpi) {
    const int n = mpi.size();
    const std::size_t block = 128;
    auto mine = pattern_bytes(block, static_cast<std::uint8_t>(mpi.rank() + 1));

    std::vector<std::byte> gathered(block * static_cast<std::size_t>(n));
    mpi.gather(mine, gathered, /*root=*/1);
    if (mpi.rank() == 1) {
      for (int r = 0; r < n; ++r) {
        auto expect = pattern_bytes(block, static_cast<std::uint8_t>(r + 1));
        EXPECT_TRUE(std::equal(
            expect.begin(), expect.end(),
            gathered.begin() +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(r) *
                                            block)));
      }
    }

    std::vector<std::byte> allg(block * static_cast<std::size_t>(n));
    mpi.allgather(mine, allg);
    for (int r = 0; r < n; ++r) {
      auto expect = pattern_bytes(block, static_cast<std::uint8_t>(r + 1));
      EXPECT_TRUE(std::equal(
          expect.begin(), expect.end(),
          allg.begin() + static_cast<std::ptrdiff_t>(
                             static_cast<std::size_t>(r) * block)));
    }

    // Scatter back from rank 1's gathered data.
    std::vector<std::byte> piece(block);
    mpi.scatter(gathered, piece, /*root=*/1);
    EXPECT_EQ(piece, mine);

    // Alltoall: rank r sends pattern (r*16+dest) to each dest.
    std::vector<std::byte> sendall(block * static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      auto p = pattern_bytes(block,
                             static_cast<std::uint8_t>(mpi.rank() * 16 + d));
      std::copy(p.begin(), p.end(),
                sendall.begin() + static_cast<std::ptrdiff_t>(
                                      static_cast<std::size_t>(d) * block));
    }
    std::vector<std::byte> recvall(block * static_cast<std::size_t>(n));
    mpi.alltoall(sendall, recvall);
    for (int s = 0; s < n; ++s) {
      auto expect = pattern_bytes(
          block, static_cast<std::uint8_t>(s * 16 + mpi.rank()));
      EXPECT_TRUE(std::equal(
          expect.begin(), expect.end(),
          recvall.begin() + static_cast<std::ptrdiff_t>(
                                static_cast<std::size_t>(s) * block)));
    }
  });
}

TEST_P(MpiSemanticsTest, ContextsIsolateMessages) {
  World w(make_config(2));
  w.run([&](Mpi& mpi) {
    Comm c2 = mpi.dup(mpi.world());
    if (mpi.rank() == 0) {
      auto m1 = pattern_bytes(64, 1);
      auto m2 = pattern_bytes(64, 2);
      mpi.send(m1, 1, /*tag=*/0, mpi.world());
      mpi.send(m2, 1, /*tag=*/0, c2);
    } else {
      // Receive the dup-context message FIRST: contexts must not bleed.
      std::vector<std::byte> buf(64);
      mpi.recv(buf, 0, 0, c2);
      EXPECT_EQ(buf, pattern_bytes(64, 2));
      mpi.recv(buf, 0, 0, mpi.world());
      EXPECT_EQ(buf, pattern_bytes(64, 1));
    }
  });
}

TEST_P(MpiSemanticsTest, RingExchangeAcrossAllRanks) {
  World w(make_config(4));
  w.run([&](Mpi& mpi) {
    const int next = (mpi.rank() + 1) % mpi.size();
    const int prev = (mpi.rank() - 1 + mpi.size()) % mpi.size();
    auto m = pattern_bytes(50'000, static_cast<std::uint8_t>(mpi.rank() + 1));
    std::vector<std::byte> buf(50'000);
    Request rr = mpi.irecv(buf, prev, 0);
    mpi.send(m, next, 0);
    mpi.wait(rr);
    EXPECT_EQ(buf, pattern_bytes(50'000, static_cast<std::uint8_t>(prev + 1)));
  });
}

TEST_P(MpiSemanticsTest, DeterministicElapsedTime) {
  auto run_once = [&] {
    World w(make_config(4));
    w.run([&](Mpi& mpi) {
      const int next = (mpi.rank() + 1) % mpi.size();
      const int prev = (mpi.rank() - 1 + mpi.size()) % mpi.size();
      for (int i = 0; i < 5; ++i) {
        auto m = pattern_bytes(20'000);
        std::vector<std::byte> buf(20'000);
        Request rr = mpi.irecv(buf, prev, i);
        mpi.send(m, next, i);
        mpi.wait(rr);
      }
    });
    return w.elapsed();
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    Transports, MpiSemanticsTest,
    ::testing::Values(
        Variant{"TcpNoLoss", TransportKind::kTcp, 10, 0.0},
        Variant{"SctpNoLoss", TransportKind::kSctp, 10, 0.0},
        Variant{"Sctp1StreamNoLoss", TransportKind::kSctp, 1, 0.0},
        Variant{"TcpLoss1", TransportKind::kTcp, 10, 0.01},
        Variant{"SctpLoss1", TransportKind::kSctp, 10, 0.01},
        Variant{"SctpLoss2", TransportKind::kSctp, 10, 0.02},
        Variant{"Sctp1StreamLoss2", TransportKind::kSctp, 1, 0.02}),
    [](const ::testing::TestParamInfo<Variant>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace sctpmpi::core
