// End-to-end integration and property tests across the full stack:
// randomized MPI traffic driven through the real transports under loss,
// with exact data-integrity and ordering verification against a
// deterministic oracle.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/world.hpp"
#include "sim/rng.hpp"
#include "tests/support/tcp_fixture.hpp"  // pattern_bytes

namespace sctpmpi::core {
namespace {

using test::pattern_bytes;

// Deterministic per-message payload so any corruption or mismatch is
// attributable: f(src, dst, tag, seq) -> bytes.
std::vector<std::byte> oracle_payload(int src, int dst, int tag, int seq,
                                      std::size_t size) {
  sim::Rng rng(static_cast<std::uint64_t>(src) * 1000003u +
               static_cast<std::uint64_t>(dst) * 10007u +
               static_cast<std::uint64_t>(tag) * 101u +
               static_cast<std::uint64_t>(seq));
  std::vector<std::byte> v(size);
  for (auto& b : v) b = static_cast<std::byte>(rng.uniform_int(256));
  return v;
}

struct FuzzCase {
  const char* name;
  TransportKind transport;
  unsigned stream_pool;
  double loss;
  std::uint64_t seed;
};

class TrafficFuzzTest : public ::testing::TestWithParam<FuzzCase> {};

// Every rank sends a randomized schedule of messages (sizes spanning the
// eager/rendezvous boundary, many tags) to every other rank; receivers
// verify content byte-for-byte and per-TRC ordering.
TEST_P(TrafficFuzzTest, RandomTrafficExactDeliveryAndOrder) {
  const FuzzCase& c = GetParam();
  WorldConfig cfg;
  cfg.ranks = 4;
  cfg.transport = c.transport;
  cfg.rpi.stream_pool = c.stream_pool;
  cfg.loss = c.loss;
  cfg.seed = c.seed;
  World w(cfg);

  constexpr int kMsgsPerPair = 12;
  constexpr int kTags = 5;

  w.run([&](Mpi& mpi) {
    sim::Rng rng(c.seed * 977 + static_cast<unsigned>(mpi.rank()));
    const int n = mpi.size();

    // Plan: per (src,dst) pair, kMsgsPerPair messages with pseudo-random
    // tag and size — both sides can recompute the schedule.
    auto schedule = [&](int src, int dst) {
      sim::Rng srng(static_cast<std::uint64_t>(src) * 31 +
                    static_cast<std::uint64_t>(dst) + c.seed);
      std::vector<std::pair<int, std::size_t>> plan;
      for (int i = 0; i < kMsgsPerPair; ++i) {
        const int tag = static_cast<int>(srng.uniform_int(kTags));
        // Sizes: 1B .. 150KB, crossing the 64KB eager limit.
        const std::size_t size =
            1 + static_cast<std::size_t>(srng.uniform_int(150 * 1024));
        plan.emplace_back(tag, size);
      }
      return plan;
    };

    // Post all receives first (non-blocking), keyed for verification.
    struct Pending {
      Request req;
      std::vector<std::byte> buf;
      int src, tag, seq;
      std::size_t size;
    };
    std::vector<std::unique_ptr<Pending>> pend;
    for (int src = 0; src < n; ++src) {
      if (src == mpi.rank()) continue;
      auto plan = schedule(src, mpi.rank());
      std::map<int, int> seq_per_tag;
      for (auto [tag, size] : plan) {
        auto p = std::make_unique<Pending>();
        p->buf.resize(size);
        p->src = src;
        p->tag = tag;
        p->seq = seq_per_tag[tag]++;
        p->size = size;
        p->req = mpi.irecv(p->buf, src, tag);
        pend.push_back(std::move(p));
      }
    }

    // Send own schedule, interleaving ranks.
    struct OutMsg {
      Request req;
      std::vector<std::byte> buf;
    };
    std::vector<std::unique_ptr<OutMsg>> outs;
    {
      std::map<std::pair<int, int>, int> seq;  // (dst, tag) -> seq
      for (int dst = 0; dst < n; ++dst) {
        if (dst == mpi.rank()) continue;
        for (auto [tag, size] : schedule(mpi.rank(), dst)) {
          auto m = std::make_unique<OutMsg>();
          const int s = seq[{dst, tag}]++;
          m->buf = oracle_payload(mpi.rank(), dst, tag, s, size);
          m->req = mpi.isend(m->buf, dst, tag);
          outs.push_back(std::move(m));
        }
      }
    }

    // Complete everything.
    for (auto& m : outs) mpi.wait(m->req);
    for (auto& p : pend) {
      MpiStatus st = mpi.wait(p->req);
      EXPECT_EQ(st.source, p->src);
      EXPECT_EQ(st.tag, p->tag);
      EXPECT_EQ(st.count, p->size);
      // Same-TRC messages cannot overtake: posting order == plan order per
      // (src, tag), so the i-th posted recv for a TRC gets the i-th sent
      // message for it — its oracle bytes are fully determined.
      const auto expect =
          oracle_payload(p->src, mpi.rank(), p->tag, p->seq, p->size);
      ASSERT_EQ(p->buf.size(), expect.size());
      EXPECT_TRUE(p->buf == expect)
          << "payload mismatch src=" << p->src << " tag=" << p->tag
          << " seq=" << p->seq << " size=" << p->size;
    }
    mpi.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, TrafficFuzzTest,
    ::testing::Values(
        FuzzCase{"TcpClean", TransportKind::kTcp, 10, 0.0, 1},
        FuzzCase{"TcpLossy", TransportKind::kTcp, 10, 0.02, 2},
        FuzzCase{"SctpClean", TransportKind::kSctp, 10, 0.0, 3},
        FuzzCase{"SctpLossy", TransportKind::kSctp, 10, 0.02, 4},
        FuzzCase{"SctpLossySeed2", TransportKind::kSctp, 10, 0.02, 5},
        FuzzCase{"Sctp1StreamLossy", TransportKind::kSctp, 1, 0.02, 6},
        FuzzCase{"SctpHeavyLoss", TransportKind::kSctp, 10, 0.05, 7},
        FuzzCase{"TcpHeavyLoss", TransportKind::kTcp, 10, 0.05, 8}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.name;
    });

TEST(Integration, WholeWorldElapsedIsDeterministic) {
  auto once = [] {
    WorldConfig cfg;
    cfg.ranks = 6;
    cfg.transport = TransportKind::kSctp;
    cfg.loss = 0.01;
    cfg.seed = 123;
    World w(cfg);
    w.run([](Mpi& mpi) {
      for (int i = 0; i < 10; ++i) {
        std::vector<std::byte> blob(20'000, std::byte(i));
        mpi.bcast(blob, i % mpi.size());
        mpi.barrier();
      }
    });
    return w.elapsed();
  };
  EXPECT_EQ(once(), once());
}

TEST(Integration, SctpInitBarrierHoldsRanksTogether) {
  // The SCTP module's MPI_Init performs association setup + barrier
  // (paper §3.4): no rank may leave init before every pair is connected.
  WorldConfig cfg;
  cfg.ranks = 8;
  cfg.transport = TransportKind::kSctp;
  World w(cfg);
  w.run([&](Mpi& mpi) {
    // First touch after init: message to ANY peer must find an
    // established association instantly (no implicit setup stall).
    const double t0 = mpi.wtime();
    std::vector<std::byte> b(100, std::byte{1});
    const int peer = (mpi.rank() + mpi.size() / 2) % mpi.size();
    if (mpi.rank() < peer) {
      mpi.send(b, peer, 0);
    } else {
      mpi.recv(b, peer, 0);
    }
    EXPECT_LT(mpi.wtime() - t0, 0.05);
  });
}

TEST(Integration, MultihomedWorldCompletesWithFailedPrimary) {
  // End-to-end §3.5.1: MPI job on a 3-network cluster where the primary
  // network dies mid-job; the run must still complete.
  WorldConfig cfg;
  cfg.ranks = 4;
  cfg.transport = TransportKind::kSctp;
  cfg.interfaces = 3;
  cfg.sctp.path_max_retrans = 2;
  World w(cfg);
  w.run([&](Mpi& mpi) {
    std::vector<std::byte> buf(10'000, std::byte{1});
    std::vector<std::byte> rx(10'000);
    const int next = (mpi.rank() + 1) % mpi.size();
    const int prev = (mpi.rank() - 1 + mpi.size()) % mpi.size();
    for (int i = 0; i < 20; ++i) {
      if (i == 5 && mpi.rank() == 0) {
        w.cluster().set_subnet_loss(0, 1.0);  // kill the primary network
      }
      Request r = mpi.irecv(rx, prev, i);
      mpi.send(buf, next, i);
      mpi.wait(r);
      EXPECT_EQ(rx, buf);
    }
  });
  SUCCEED() << "ring survived primary-network failure";
}

TEST(Integration, MixedCollectivesAndPtpUnderLoss) {
  WorldConfig cfg;
  cfg.ranks = 6;
  cfg.transport = TransportKind::kSctp;
  cfg.loss = 0.02;
  cfg.seed = 9;
  World w(cfg);
  w.run([](Mpi& mpi) {
    for (int round = 0; round < 5; ++round) {
      // Point-to-point ring with per-round tag.
      auto msg = pattern_bytes(5'000, static_cast<std::uint8_t>(round + 1));
      std::vector<std::byte> rx(5'000);
      const int next = (mpi.rank() + 1) % mpi.size();
      const int prev = (mpi.rank() - 1 + mpi.size()) % mpi.size();
      Request r = mpi.irecv(rx, prev, round);
      mpi.send(msg, next, round);
      mpi.wait(r);
      EXPECT_EQ(rx, msg);
      // Collective on top.
      const auto sum = mpi.allreduce_sum<std::int64_t>(round);
      EXPECT_EQ(sum, round * mpi.size());
      mpi.barrier();
    }
  });
}

TEST(Integration, LinkStatsAccountForLoss) {
  WorldConfig cfg;
  cfg.ranks = 2;
  cfg.transport = TransportKind::kSctp;
  cfg.loss = 0.02;
  cfg.seed = 31;
  World w(cfg);
  w.run([](Mpi& mpi) {
    std::vector<std::byte> b(100'000, std::byte{1});
    if (mpi.rank() == 0) {
      mpi.send(b, 1, 0);
    } else {
      mpi.recv(b, 0, 0);
    }
  });
  const net::LinkStats ls = w.cluster().total_link_stats();
  EXPECT_GT(ls.tx_packets, 70u);
  EXPECT_GT(ls.drops_loss, 0u) << "2% loss must actually drop packets";
  const double rate = static_cast<double>(ls.drops_loss) /
                      static_cast<double>(ls.tx_packets + ls.drops_loss);
  EXPECT_GT(rate, 0.002);
  EXPECT_LT(rate, 0.08);
}

}  // namespace
}  // namespace sctpmpi::core
