// Unit tests for the envelope codec and the matching engine (posted-queue
// and unexpected-message semantics, paper §2.2.2).
#include <gtest/gtest.h>

#include "core/envelope.hpp"
#include "core/matching.hpp"

namespace sctpmpi::core {
namespace {

Envelope make_env(int src, int tag, std::uint32_t ctx = 0,
                  std::uint16_t flags = kFlagShort, std::uint32_t len = 10) {
  Envelope e;
  e.length = len;
  e.tag = tag;
  e.context = ctx;
  e.flags = flags;
  e.src_rank = src;
  e.seq = 1;
  return e;
}

RpiRequest make_recv(int src, int tag, std::uint32_t ctx = 0) {
  RpiRequest r;
  r.kind = RpiRequest::Kind::kRecv;
  r.peer = src;
  r.tag = tag;
  r.context = ctx;
  return r;
}

TEST(Envelope, CodecRoundTrip) {
  Envelope e = make_env(3, -7, 42, kFlagLong | kFlagLongBody, 123456);
  e.seq = 0xFEDCBA98;
  Envelope d = Envelope::decode(e.encode());
  EXPECT_EQ(d.length, 123456u);
  EXPECT_EQ(d.tag, -7);
  EXPECT_EQ(d.context, 42u);
  EXPECT_EQ(d.flags, kFlagLong | kFlagLongBody);
  EXPECT_EQ(d.src_rank, 3);
  EXPECT_EQ(d.seq, 0xFEDCBA98u);
}

TEST(Envelope, WireSizeIsFixed24Bytes) {
  EXPECT_EQ(make_env(0, 0).encode().size(), kEnvelopeBytes);
  EXPECT_EQ(make_env(-1, kAnyTag).encode().size(), kEnvelopeBytes);
}

TEST(Matching, ExactTrcMatch) {
  RpiRequest r = make_recv(2, 5);
  EXPECT_TRUE(r.matches(make_env(2, 5)));
  EXPECT_FALSE(r.matches(make_env(2, 6)));
  EXPECT_FALSE(r.matches(make_env(3, 5)));
  EXPECT_FALSE(r.matches(make_env(2, 5, /*ctx=*/1)));
}

TEST(Matching, Wildcards) {
  EXPECT_TRUE(make_recv(kAnySource, 5).matches(make_env(7, 5)));
  EXPECT_TRUE(make_recv(2, kAnyTag).matches(make_env(2, 123)));
  EXPECT_TRUE(make_recv(kAnySource, kAnyTag).matches(make_env(0, 0)));
  EXPECT_FALSE(make_recv(kAnySource, 5).matches(make_env(7, 6)));
}

TEST(Matching, PostedQueueIsFifoPerMatch) {
  MatchEngine m;
  RpiRequest r1 = make_recv(kAnySource, kAnyTag);
  RpiRequest r2 = make_recv(kAnySource, kAnyTag);
  m.add_posted(&r1);
  m.add_posted(&r2);
  EXPECT_EQ(m.match_posted(make_env(0, 0)), &r1) << "oldest post wins";
  EXPECT_EQ(m.match_posted(make_env(0, 0)), &r2);
  EXPECT_EQ(m.match_posted(make_env(0, 0)), nullptr);
}

TEST(Matching, SpecificPostSkipsNonMatching) {
  MatchEngine m;
  RpiRequest r1 = make_recv(1, 5);
  RpiRequest r2 = make_recv(2, 5);
  m.add_posted(&r1);
  m.add_posted(&r2);
  EXPECT_EQ(m.match_posted(make_env(2, 5)), &r2);
  EXPECT_EQ(m.posted_count(), 1u);
}

TEST(Matching, UnexpectedQueueOldestFirst) {
  MatchEngine m;
  m.add_unexpected(UnexpectedMsg{make_env(1, 5, 0, kFlagShort, 1), {}});
  m.add_unexpected(UnexpectedMsg{make_env(1, 5, 0, kFlagShort, 2), {}});
  RpiRequest r = make_recv(1, 5);
  auto um = m.match_unexpected(r);
  ASSERT_TRUE(um.has_value());
  EXPECT_EQ(um->env.length, 1u) << "MPI order: oldest unexpected first";
  EXPECT_EQ(m.unexpected_count(), 1u);
}

TEST(Matching, RemovePostedCancels) {
  MatchEngine m;
  RpiRequest r = make_recv(1, 5);
  m.add_posted(&r);
  m.remove_posted(&r);
  EXPECT_EQ(m.match_posted(make_env(1, 5)), nullptr);
}

TEST(Matching, PeekUnexpectedDoesNotConsume) {
  MatchEngine m;
  m.add_unexpected(UnexpectedMsg{make_env(4, 9, 0, kFlagShort, 77), {}});
  const Envelope* e = m.peek_unexpected(0, kAnySource, 9);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->length, 77u);
  EXPECT_EQ(e->src_rank, 4);
  EXPECT_EQ(m.unexpected_count(), 1u);
  EXPECT_EQ(m.peek_unexpected(0, 5, 9), nullptr) << "source filter applies";
}

}  // namespace
}  // namespace sctpmpi::core
