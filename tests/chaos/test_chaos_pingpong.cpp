// Chaos tier: payload-verified ping-pong under randomized fault
// schedules. Three scenario families:
//
//   * Survive — short blackouts + bursty/Bernoulli loss, all below the
//     teardown thresholds: the transports ride it out with plain
//     retransmission and no endpoint is ever torn down (the monotonic
//     cum-ack oracle depends on that).
//   * Teardown — a blackout long enough for the transport to give up:
//     the RPI tears the endpoint down, reconnects with backoff once the
//     blackout lifts and replays retained messages. The pingpong still
//     verifies every payload byte, pinning exactly-once delivery.
//   * PeerRestart (SCTP) — only the active side (rank 0) is blacked out
//     and gives up; the passive side keeps its association until the
//     fresh INIT arrives, exercising the restart path (new vtag on an
//     established association).
#include <gtest/gtest.h>

#include "core/rpi_sctp.hpp"
#include "tests/chaos/chaos_fixture.hpp"

namespace sctpmpi {
namespace {

using chaos::add_random_faults;
using chaos::blackout_host;
using chaos::chaos_world_config;
using chaos::check_budget;
using chaos::check_cum_ack_monotonic;
using chaos::run_verified_pingpong;

struct PingPongCase {
  core::TransportKind transport;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<PingPongCase>& info) {
  return std::string(core::to_string(info.param.transport)) + "_seed" +
         std::to_string(info.param.seed);
}

// ---------------------------------------------------------------------------
// Survive: faults below every teardown threshold
// ---------------------------------------------------------------------------

class ChaosPingPongSurvive : public testing::TestWithParam<PingPongCase> {};

TEST_P(ChaosPingPongSurvive, CompletesWithVerifiedPayloads) {
  const auto& p = GetParam();
  core::WorldConfig cfg = chaos_world_config(p.transport, p.seed, 2);
  core::World world(cfg);
  trace::PacketTrace trace;
  trace.attach(world.cluster());
  // Blackouts of at most ~100 ms: far below the ~3 s transport give-up,
  // so both endpoints survive and the single connection/association per
  // host pair persists for the whole run. The 40 ms pace stretches the
  // run to ~2.4 s so the schedule overlaps the traffic.
  add_random_faults(world, p.seed, 50 * sim::kMillisecond, 2 * sim::kSecond,
                    100 * sim::kMillisecond);
  run_verified_pingpong(world, /*iterations=*/60, /*message_size=*/8 * 1024,
                        /*pace=*/40 * sim::kMillisecond);
  check_budget(world, 60.0);
  check_cum_ack_monotonic(trace, p.transport);
  EXPECT_EQ(world.rpi(0).stats().peers_declared_dead, 0u);
  EXPECT_EQ(world.rpi(1).stats().peers_declared_dead, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosPingPongSurvive,
    testing::Values(PingPongCase{core::TransportKind::kSctp, 1},
                    PingPongCase{core::TransportKind::kSctp, 2},
                    PingPongCase{core::TransportKind::kSctp, 3},
                    PingPongCase{core::TransportKind::kSctp, 4},
                    PingPongCase{core::TransportKind::kSctp, 5},
                    PingPongCase{core::TransportKind::kTcp, 1},
                    PingPongCase{core::TransportKind::kTcp, 2},
                    PingPongCase{core::TransportKind::kTcp, 3},
                    PingPongCase{core::TransportKind::kTcp, 4},
                    PingPongCase{core::TransportKind::kTcp, 5}),
    case_name);

// Oracle 4 on a subset: the same seed reproduces the packet trace
// byte-for-byte, fault schedule and recovery machinery included.
class ChaosPingPongDeterminism : public testing::TestWithParam<PingPongCase> {
};

TEST_P(ChaosPingPongDeterminism, SeedReproducesTraceByteForByte) {
  const auto& p = GetParam();
  auto one_run = [&] {
    core::WorldConfig cfg = chaos_world_config(p.transport, p.seed, 2);
    core::World world(cfg);
    trace::PacketTrace trace;
    trace.attach(world.cluster());
    add_random_faults(world, p.seed, 50 * sim::kMillisecond,
                      2 * sim::kSecond, 100 * sim::kMillisecond);
    run_verified_pingpong(world, 40, 8 * 1024, 40 * sim::kMillisecond);
    return trace.to_text();
  };
  const std::string first = one_run();
  const std::string second = one_run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosPingPongDeterminism,
    testing::Values(PingPongCase{core::TransportKind::kSctp, 7},
                    PingPongCase{core::TransportKind::kTcp, 7}),
    case_name);

// ---------------------------------------------------------------------------
// Teardown: blackout outlives the transport give-up; reconnect + replay
// ---------------------------------------------------------------------------

class ChaosPingPongTeardown : public testing::TestWithParam<PingPongCase> {};

TEST_P(ChaosPingPongTeardown, ReconnectsAndReplays) {
  const auto& p = GetParam();
  core::WorldConfig cfg = chaos_world_config(p.transport, p.seed, 2);
  core::World world(cfg);
  sim::Rng rng(p.seed ^ 0x7EA2ull);
  // One long blackout of host 1 (3.5-4.5 s), comfortably past the ~3 s
  // transport give-up, landing mid-run: both RPIs observe the failure,
  // tear down, and the active side (rank 0) redials under backoff until
  // the blackout lifts.
  const auto start = static_cast<sim::SimTime>(
      200 * sim::kMillisecond +
      rng.uniform() * static_cast<double>(300 * sim::kMillisecond));
  const auto len = static_cast<sim::SimTime>(
      3500 * sim::kMillisecond +
      rng.uniform() * static_cast<double>(1000 * sim::kMillisecond));
  blackout_host(world, 1, start, start + len);
  run_verified_pingpong(world, 60, 8 * 1024, 100 * sim::kMillisecond);
  check_budget(world, 90.0);
  EXPECT_GE(world.rpi(0).stats().peer_downs +
                world.rpi(1).stats().peer_downs,
            1u);
  EXPECT_GE(world.rpi(0).stats().reconnects +
                world.rpi(1).stats().reconnects,
            1u);
  EXPECT_EQ(world.rpi(0).stats().peers_declared_dead, 0u);
  EXPECT_EQ(world.rpi(1).stats().peers_declared_dead, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosPingPongTeardown,
    testing::Values(PingPongCase{core::TransportKind::kSctp, 11},
                    PingPongCase{core::TransportKind::kSctp, 12},
                    PingPongCase{core::TransportKind::kTcp, 11},
                    PingPongCase{core::TransportKind::kTcp, 12}),
    case_name);

// Long (rendezvous) messages through a teardown: the retained-body copy
// is what makes post-completion replay of a long send possible.
class ChaosPingPongLong : public testing::TestWithParam<PingPongCase> {};

TEST_P(ChaosPingPongLong, LongMessagesSurviveTeardown) {
  const auto& p = GetParam();
  core::WorldConfig cfg = chaos_world_config(p.transport, p.seed, 2);
  core::World world(cfg);
  sim::Rng rng(p.seed ^ 0x10E6ull);
  const auto start = static_cast<sim::SimTime>(
      300 * sim::kMillisecond +
      rng.uniform() * static_cast<double>(400 * sim::kMillisecond));
  blackout_host(world, 1, start, start + 4 * sim::kSecond);
  // 128 KiB messages: above the 64 KiB eager limit, so every message
  // goes through the rendezvous protocol.
  run_verified_pingpong(world, 12, 128 * 1024, 100 * sim::kMillisecond);
  check_budget(world, 90.0);
  EXPECT_GE(world.rpi(0).stats().rendezvous_msgs, 12u);
  EXPECT_EQ(world.rpi(0).stats().peers_declared_dead, 0u);
  EXPECT_EQ(world.rpi(1).stats().peers_declared_dead, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosPingPongLong,
    testing::Values(PingPongCase{core::TransportKind::kSctp, 21},
                    PingPongCase{core::TransportKind::kTcp, 21}),
    case_name);

// ---------------------------------------------------------------------------
// Peer restart (SCTP): fresh INIT with a new vtag on an established assoc
// ---------------------------------------------------------------------------

TEST(ChaosPeerRestartSctp, PassiveSideAbsorbsRestart) {
  core::WorldConfig cfg = chaos_world_config(core::TransportKind::kSctp, 31, 2);
  core::World world(cfg);
  // Black out the ACTIVE side (rank 0) mid-run, between paced exchanges
  // so rank 1 has nothing in flight. Rank 0's transport gives up and the
  // RPI tears down; rank 1 sits idle in a posted recv, so its
  // association survives the blackout untouched. When rank 0 redials,
  // its fresh INIT (new vtag) lands on rank 1's established association
  // — the restart path.
  blackout_host(world, 0, 450 * sim::kMillisecond,
                450 * sim::kMillisecond + 4 * sim::kSecond);
  run_verified_pingpong(world, 40, 8 * 1024, 100 * sim::kMillisecond);
  check_budget(world, 90.0);
  auto* sctp1 = static_cast<core::SctpRpi&>(world.rpi(1)).socket();
  EXPECT_GE(sctp1->restarts_detected() +
                static_cast<core::SctpRpi&>(world.rpi(0)).socket()
                    ->restarts_detected(),
            1u)
      << "expected at least one peer-restart detection";
  EXPECT_GE(world.rpi(0).stats().reconnects +
                world.rpi(1).stats().reconnects,
            1u);
}

}  // namespace
}  // namespace sctpmpi
