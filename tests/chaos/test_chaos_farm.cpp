// Chaos tier: the failure-aware processor farm under fault schedules,
// including mid-job worker kills. The manager learns of dead workers
// through the control plane (LamDaemon verdicts + RPI give-ups on the
// FailureBus), returns their unfinished tasks to the pool and reassigns
// them; killed workers detect their own isolation and exit, so the whole
// simulated job terminates. Exactly-once accounting is the core oracle:
// every task id contributes its check value to result_sum exactly once,
// no matter how many times it was assigned.
#include <gtest/gtest.h>

#include "apps/farm_recovery.hpp"
#include "tests/chaos/chaos_fixture.hpp"

namespace sctpmpi {
namespace {

using chaos::add_random_faults;
using chaos::blackout_host;
using chaos::chaos_world_config;

constexpr int kRanks = 5;  // one manager + four workers
constexpr int kTasks = 80;

struct FarmCase {
  core::TransportKind transport;
  std::uint64_t seed;
};

std::string case_name(const testing::TestParamInfo<FarmCase>& info) {
  return std::string(core::to_string(info.param.transport)) + "_seed" +
         std::to_string(info.param.seed);
}

core::WorldConfig farm_config(const FarmCase& p) {
  core::WorldConfig cfg = chaos_world_config(p.transport, p.seed, kRanks);
  cfg.enable_lamd = true;
  cfg.lamd.status_interval = 200 * sim::kMillisecond;
  cfg.lamd.dead_after = sim::kSecond;
  // A killed worker is the passive side of its manager link; this is how
  // long it waits for the manager to redial before concluding it is the
  // one that was cut off.
  cfg.rpi.recovery.passive_give_up = 5 * sim::kSecond;
  return cfg;
}

apps::FarmRecoveryParams farm_params() {
  apps::FarmRecoveryParams params;
  params.num_tasks = kTasks;
  params.task_size = 8 * 1024;
  params.window = 4;
  // 80 tasks x 50 ms across four workers keeps the job alive for ~1.1 s
  // of sim time, so mid-job kill schedules actually land mid-job.
  params.work_per_task = 50 * sim::kMillisecond;
  return params;
}

std::uint64_t expected_result_sum() {
  std::uint64_t sum = 0;
  for (int t = 0; t < kTasks; ++t) {
    sum += apps::farm_task_result(static_cast<std::uint32_t>(t));
  }
  return sum;
}

void check_exactly_once(const apps::FarmRecoveryResult& r) {
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.tasks_completed, kTasks);
  EXPECT_EQ(r.result_sum, expected_result_sum())
      << "result sum off: a task was double-counted or lost";
}

// ---------------------------------------------------------------------------
// Survive: background chaos below every declare-dead threshold
// ---------------------------------------------------------------------------

class ChaosFarmSurvive : public testing::TestWithParam<FarmCase> {};

TEST_P(ChaosFarmSurvive, AllTasksExactlyOnceNoFailures) {
  const auto& p = GetParam();
  // Blackouts of at most ~300 ms: below the ~3 s transport give-up AND
  // below the 1 s lamd dead_after, so no worker is ever written off.
  const auto result = apps::run_farm_recovering(
      farm_config(p), farm_params(), [&](core::World& w) {
        add_random_faults(w, p.seed, 100 * sim::kMillisecond,
                          sim::kSecond, 300 * sim::kMillisecond);
      });
  check_exactly_once(result);
  EXPECT_EQ(result.workers_failed, 0);
  EXPECT_EQ(result.reassigned_tasks, 0);
  EXPECT_LT(result.total_runtime_seconds, 60.0);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosFarmSurvive,
    testing::Values(FarmCase{core::TransportKind::kSctp, 41},
                    FarmCase{core::TransportKind::kSctp, 43},
                    FarmCase{core::TransportKind::kTcp, 41},
                    FarmCase{core::TransportKind::kTcp, 42}),
    case_name);

// ---------------------------------------------------------------------------
// Worker kill: permanent mid-job blackout of one worker
// ---------------------------------------------------------------------------

class ChaosFarmWorkerKill : public testing::TestWithParam<FarmCase> {};

TEST_P(ChaosFarmWorkerKill, TasksReassignedJobCompletes) {
  const auto& p = GetParam();
  const auto result = apps::run_farm_recovering(
      farm_config(p), farm_params(), [&](core::World& w) {
        sim::Rng kill_rng(p.seed ^ 0xDEADull);
        const unsigned victim =
            1 + static_cast<unsigned>(kill_rng.uniform_int(kRanks - 1));
        const auto at = static_cast<sim::SimTime>(
            300 * sim::kMillisecond +
            kill_rng.uniform() * static_cast<double>(600 * sim::kMillisecond));
        blackout_host(w, victim, at, 10'000 * sim::kSecond);
      });
  check_exactly_once(result);
  EXPECT_EQ(result.workers_failed, 1);
  EXPECT_LT(result.total_runtime_seconds, 90.0);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosFarmWorkerKill,
    testing::Values(FarmCase{core::TransportKind::kSctp, 51},
                    FarmCase{core::TransportKind::kSctp, 52},
                    FarmCase{core::TransportKind::kTcp, 51},
                    FarmCase{core::TransportKind::kTcp, 52}),
    case_name);

// Two workers die at different times; half the compute capacity is gone
// but every task still lands exactly once.
class ChaosFarmTwoKills : public testing::TestWithParam<FarmCase> {};

TEST_P(ChaosFarmTwoKills, SurvivorsFinishThePool) {
  const auto& p = GetParam();
  const auto result = apps::run_farm_recovering(
      farm_config(p), farm_params(), [&](core::World& w) {
        blackout_host(w, 1, 400 * sim::kMillisecond, 10'000 * sim::kSecond);
        blackout_host(w, 3, 900 * sim::kMillisecond, 10'000 * sim::kSecond);
      });
  check_exactly_once(result);
  EXPECT_EQ(result.workers_failed, 2);
  EXPECT_LT(result.total_runtime_seconds, 90.0);
}

INSTANTIATE_TEST_SUITE_P(
    Chaos, ChaosFarmTwoKills,
    testing::Values(FarmCase{core::TransportKind::kSctp, 61},
                    FarmCase{core::TransportKind::kTcp, 61}),
    case_name);

// Determinism oracle for the full stack, lamd control traffic and a
// worker kill included: the same seed reproduces the run's observable
// outcome (result sum, reassignments, sim-time to the nanosecond).
TEST(ChaosFarmDeterminism, SeedReproducesRun) {
  auto one_run = [&] {
    FarmCase p{core::TransportKind::kTcp, 71};
    std::string text;
    const auto result = apps::run_farm_recovering(
        farm_config(p), farm_params(), [&](core::World& w) {
          blackout_host(w, 2, 800 * sim::kMillisecond, 10'000 * sim::kSecond);
        });
    EXPECT_EQ(result.tasks_completed, kTasks);
    return result.result_sum + result.reassigned_tasks * 1000003ull +
           static_cast<std::uint64_t>(result.total_runtime_seconds * 1e9);
  };
  EXPECT_EQ(one_run(), one_run());
}

}  // namespace
}  // namespace sctpmpi
