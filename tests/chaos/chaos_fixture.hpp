// Shared harness for the randomized chaos tier (`ctest -L chaos`).
//
// Each chaos test builds a World with recovery enabled and tightened
// failure-detection timers, derives a fault schedule from a seed (timed
// blackouts, Gilbert-Elliott bursty loss, base Bernoulli loss), runs a
// payload-verified workload and checks the recovery oracles:
//
//   1. correctness — every payload byte verified at the receiver; the
//      farm additionally checks exactly-once task accounting;
//   2. liveness — the job finishes within a generous sim-time budget
//      (a hang surfaces as the simulator's deadlock exception first);
//   3. protocol sanity — cumulative acks never move backwards on a
//      surviving connection/association (wraparound-aware);
//   4. determinism — rerunning a seed reproduces the packet trace
//      byte-for-byte (checked on a subset of seeds to bound test time).
//
// Schedule contract (see DESIGN.md "failure semantics"): a temporary
// blackout must be shorter than every declare-dead threshold in play, and
// a worker once declared dead must never be revived by the schedule.
#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "apps/service.hpp"
#include "core/world.hpp"
#include "net/bytes.hpp"
#include "sim/rng.hpp"
#include "trace/packet_trace.hpp"

namespace sctpmpi::chaos {

/// Transport-level failure detection tightened for chaos schedules: give
/// up after roughly 3 s of unanswered retransmissions (0.2+0.4+0.8+1.6
/// once the measured RTT has pulled the RTO down to min_rto) rather than
/// minutes. Shared by the MPI chaos worlds and the service chaos tier so
/// both families fail over on the same clock.
inline void tighten_transport_timers(tcp::TcpConfig& tcp,
                                     sctp::SctpConfig& sctp) {
  tcp.min_rto = 200 * sim::kMillisecond;
  tcp.initial_rto = 400 * sim::kMillisecond;
  tcp.max_rto = 2 * sim::kSecond;
  tcp.max_data_retries = 3;
  sctp.rto_min = 200 * sim::kMillisecond;
  sctp.rto_initial = 400 * sim::kMillisecond;
  sctp.rto_max = 2 * sim::kSecond;
  sctp.assoc_max_retrans = 3;
  sctp.path_max_retrans = 2;
}

/// Recovery-enabled world with failure detection tightened so teardown,
/// reconnect and replay all happen within a few sim-seconds instead of
/// the conservative production defaults (447 s for stock TCP).
inline core::WorldConfig chaos_world_config(core::TransportKind t,
                                            std::uint64_t seed, int ranks) {
  core::WorldConfig cfg;
  cfg.transport = t;
  cfg.seed = seed;
  cfg.ranks = ranks;
  cfg.rpi.recovery.enabled = true;
  cfg.rpi.recovery.seed = seed;
  cfg.rpi.recovery.max_reconnect_attempts = 8;
  cfg.rpi.recovery.backoff_base = 200 * sim::kMillisecond;
  cfg.rpi.recovery.backoff_max = 2 * sim::kSecond;
  cfg.rpi.recovery.passive_give_up = 12 * sim::kSecond;
  tighten_transport_timers(cfg.tcp, cfg.sctp);
  return cfg;
}

/// Service-chaos flavor of the same tightening: an apps::ServiceParams
/// whose transports share the MPI chaos tier's failure-detection clock
/// and whose balancer probes eject a dead backend within ~1 s.
inline apps::ServiceParams chaos_service_params(apps::ServiceTransport t,
                                                std::uint64_t seed) {
  apps::ServiceParams p;
  p.transport = t;
  p.seed = seed;
  tighten_transport_timers(p.tcp, p.sctp);
  // Idle associations must notice a dead path quickly too (the MPI worlds
  // keep the stock 30 s heartbeat; service failover schedules cannot).
  p.sctp.hb_interval = 2 * sim::kSecond;
  // Small per-client buffers: thousands of sockets, and the chaos
  // requests are tiny compared to the 220 KiB production default.
  p.tcp.sndbuf = 32 * 1024;
  p.tcp.rcvbuf = 16 * 1024;
  p.sctp.sndbuf = 32 * 1024;
  p.sctp.rcvbuf = 16 * 1024;
  return p;
}

// ---------------------------------------------------------------------------
// Fault schedules
// ---------------------------------------------------------------------------

/// Blacks out host `h` in both directions over [start, end).
inline void blackout_host(core::World& w, unsigned h, sim::SimTime start,
                          sim::SimTime end) {
  w.cluster().uplink(h).faults().add_blackout(start, end);
  w.cluster().downlink(h).faults().add_blackout(start, end);
}

/// Seed-derived background chaos: 1-3 short blackouts on random hosts
/// plus optional bursty and Bernoulli loss. Every blackout is shorter
/// than `max_blackout`, which callers pick below the declare-dead
/// thresholds for survivable schedules.
inline void add_random_faults(core::World& w, std::uint64_t seed,
                              sim::SimTime earliest, sim::SimTime latest,
                              sim::SimTime max_blackout) {
  sim::Rng rng(seed ^ 0xC4A05ull);
  const unsigned hosts = static_cast<unsigned>(w.config().ranks);
  const int blackouts = 1 + static_cast<int>(rng.uniform_int(3));
  for (int i = 0; i < blackouts; ++i) {
    const unsigned h = static_cast<unsigned>(rng.uniform_int(hosts));
    const sim::SimTime start =
        earliest + static_cast<sim::SimTime>(
                       rng.uniform() * static_cast<double>(latest - earliest));
    const sim::SimTime len =
        max_blackout / 4 +
        static_cast<sim::SimTime>(
            rng.uniform() * static_cast<double>(max_blackout / 2));
    blackout_host(w, h, start, start + len);
  }
  if (rng.uniform() < 0.5) {
    net::GilbertElliottParams ge;
    ge.p_good_to_bad = 0.002;
    ge.p_bad_to_good = 0.2;
    ge.loss_bad = 0.3;
    const unsigned h = static_cast<unsigned>(rng.uniform_int(hosts));
    w.cluster().uplink(h).faults().set_gilbert_elliott(ge);
  }
  if (rng.uniform() < 0.5) {
    w.cluster().set_loss(0.005 + rng.uniform() * 0.01);
  }
}

// ---------------------------------------------------------------------------
// Payload-verified ping-pong
// ---------------------------------------------------------------------------

inline std::byte expected_byte(std::uint32_t stamp, std::size_t pos) {
  return static_cast<std::byte>((stamp * 2654435761u + pos * 131u) >> 13);
}

inline void fill_payload(std::vector<std::byte>& buf, std::uint32_t stamp) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = expected_byte(stamp, i);
  }
}

inline void check_payload(const std::vector<std::byte>& buf,
                          std::uint32_t stamp, std::size_t count) {
  ASSERT_EQ(count, buf.size());
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], expected_byte(stamp, i))
        << "payload corrupt at byte " << i << " of message " << stamp;
  }
}

/// Blocking ping-pong between ranks 0 and 1 with per-message payload
/// stamps verified on both sides; tags cycle so SCTP spreads messages
/// across streams. `pace` is simulated compute between iterations on
/// rank 0 — it stretches the run across sim-time so a fault schedule
/// actually overlaps the traffic instead of landing after a
/// microsecond-scale burst has already finished.
inline void run_verified_pingpong(core::World& world, int iterations,
                                  std::size_t message_size,
                                  sim::SimTime pace = 0) {
  world.run([&](core::Mpi& mpi) {
    std::vector<std::byte> buf(message_size);
    for (int i = 0; i < iterations; ++i) {
      const auto stamp = static_cast<std::uint32_t>(i);
      const int tag = 1 + i % 8;
      if (mpi.rank() == 0) {
        fill_payload(buf, stamp);
        mpi.send(buf, 1, tag);
        const core::MpiStatus st = mpi.recv(buf, 1, tag);
        check_payload(buf, stamp + 0x10000u, st.count);
        if (pace > 0) mpi.compute(pace);
      } else {
        const core::MpiStatus st = mpi.recv(buf, 0, tag);
        check_payload(buf, stamp, st.count);
        fill_payload(buf, stamp + 0x10000u);
        mpi.send(buf, 0, tag);
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Oracles
// ---------------------------------------------------------------------------

/// Oracle 3: on a run with no connection teardown, the cumulative ack
/// (TCP ack field / SCTP SACK cum-TSN) observed at each capture point
/// never moves backwards, modulo serial-number wraparound. Grouping by
/// point is sound only while each host pair keeps a single
/// connection/association — callers restrict this oracle to 2-rank
/// schedules without teardown.
inline void check_cum_ack_monotonic(const trace::PacketTrace& trace,
                                    core::TransportKind transport) {
  std::uint32_t last_h0 = 0, last_h1 = 0;
  bool seen_h0 = false, seen_h1 = false;
  for (const auto& r : trace.records()) {
    if (r.verdict != net::PacketVerdict::kSent) continue;
    if (transport == core::TransportKind::kSctp) {
      if (!r.has_chunk("SACK")) continue;
    } else {
      // TCP: every established-state segment carries the cumulative ack;
      // skip the handshake (ack not yet meaningful) and resets.
      if (r.ack == 0 || r.has_chunk("SYN") || r.has_chunk("RST")) continue;
    }
    std::uint32_t* last = nullptr;
    bool* seen = nullptr;
    if (r.point == "h0") {
      last = &last_h0;
      seen = &seen_h0;
    } else if (r.point == "h1") {
      last = &last_h1;
      seen = &seen_h1;
    } else {
      continue;
    }
    if (*seen) {
      ASSERT_FALSE(net::seq_gt(*last, r.ack))
          << "cumulative ack moved backwards at " << r.point << " t="
          << r.time << ": " << *last << " -> " << r.ack;
    }
    *last = r.ack;
    *seen = true;
  }
}

/// Oracle 2: the job finished inside the sim-time budget.
inline void check_budget(const core::World& world, double budget_seconds) {
  ASSERT_LT(world.elapsed_seconds(), budget_seconds)
      << "job exceeded its sim-time budget — recovery stalled somewhere";
}

}  // namespace sctpmpi::chaos
