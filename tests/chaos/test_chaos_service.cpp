// Service chaos tier: the open-loop client fleet (apps/service.hpp) against
// the Maglev balancer under backend churn and path blackout, TCP vs SCTP.
//
// Oracles, mirroring the MPI chaos families:
//   1. correctness — every issued request completes (or the loss is
//      exactly the asserted, transport-specific amount);
//   2. liveness — the run reaches quiescence long before the deadline;
//   3. affinity — tracked SCTP associations ride out a path blackout with
//      ZERO request retries (multihomed failover), while TCP measurably
//      reconnects;
//   4. determinism — rerunning any schedule reproduces the completion
//      digest exactly, for both transports.
#include <gtest/gtest.h>

#include "chaos_fixture.hpp"

namespace sctpmpi::chaos {
namespace {

using apps::ServiceParams;
using apps::ServiceResult;
using apps::ServiceSim;
using apps::ServiceTransport;

ServiceParams small_fleet(ServiceTransport t, std::uint64_t seed) {
  ServiceParams p = chaos_service_params(t, seed);
  p.backends = 3;
  p.client_hosts = 2;
  p.clients_per_host = 8;
  p.interfaces = 2;
  p.requests = 1600;
  p.arrival_rate_hz = 800;  // arrivals span ~2 s of sim-time
  p.deadline = 60 * sim::kSecond;
  return p;
}

/// Severs every link of one backend host (all interfaces, both
/// directions) from `start` until past any schedule's horizon.
void kill_backend(ServiceSim& svc, unsigned b, sim::SimTime start) {
  const unsigned h = svc.backend_host(b);
  for (unsigned i = 0; i < svc.cluster().interface_count(); ++i) {
    svc.cluster().uplink(h, i).faults().add_blackout(start,
                                                     120 * sim::kSecond);
    svc.cluster().downlink(h, i).faults().add_blackout(start,
                                                       120 * sim::kSecond);
  }
}

// ---------------------------------------------------------------------------

TEST(ChaosService, FaultFreeBaselineIsLossless) {
  for (const auto t : {ServiceTransport::kTcp, ServiceTransport::kSctp}) {
    const ServiceResult r = apps::run_service(small_fleet(t, 11));
    EXPECT_EQ(r.completed, r.issued);
    EXPECT_EQ(r.issued, 1600u);
    EXPECT_EQ(r.retried, 0u);
    EXPECT_EQ(r.abandoned, 0u);
    EXPECT_EQ(r.duplicate_responses, 0u);
    EXPECT_EQ(r.lb.no_backend_drops, 0u);
    EXPECT_EQ(r.lb.malformed_drops, 0u);
    EXPECT_EQ(r.backend_down_events, 0u);
    EXPECT_GT(r.lb.tracked_hits, 0u);
    EXPECT_LT(r.runtime_seconds, 30.0);
    EXPECT_GT(r.p50_ms, 0.0);
    EXPECT_GE(r.p999_ms, r.p99_ms);
    EXPECT_GE(r.p99_ms, r.p50_ms);
  }
}

TEST(ChaosService, RerunReproducesDigestBothTransports) {
  for (const auto t : {ServiceTransport::kTcp, ServiceTransport::kSctp}) {
    ServiceParams p = small_fleet(t, 23);
    p.requests = 800;
    const ServiceResult a = apps::run_service(p);
    const ServiceResult b = apps::run_service(p);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.lb.forwarded, b.lb.forwarded);
    // A different seed must actually change the run.
    ServiceParams q = small_fleet(t, 24);
    q.requests = 800;
    EXPECT_NE(apps::run_service(q).digest, a.digest);
  }
}

// Backend kill: probes eject the dead backend (announced on FailureBus),
// its flows reconnect and re-steer, and every request still completes.
TEST(ChaosService, BackendKillEjectsAndRecovers) {
  for (const auto t : {ServiceTransport::kTcp, ServiceTransport::kSctp}) {
    ServiceParams p = small_fleet(t, 31);
    p.requests = 2000;
    const ServiceResult r = apps::run_service(p, [](ServiceSim& svc) {
      kill_backend(svc, 0, 1500 * sim::kMillisecond);
    });
    EXPECT_EQ(r.completed, r.issued) << "requests lost to a dead backend";
    EXPECT_EQ(r.abandoned, 0u);
    EXPECT_GE(r.backend_down_events, 1u);
    ASSERT_FALSE(r.failure_bus_log.empty());
    EXPECT_EQ(r.failure_bus_log.front(), 0);
    EXPECT_GE(r.lb.ejections, 1u);
    EXPECT_GT(r.reconnects, 0u)
        << "the killed backend's flows must have re-established";
    EXPECT_LT(r.runtime_seconds, 55.0);
  }
}

// Graceful scale-in: draining a backend mid-burst loses NOTHING on either
// transport — tracked flows finish against the draining backend while new
// flows steer away.
TEST(ChaosService, DrainDuringBurstIsLossless) {
  for (const auto t : {ServiceTransport::kTcp, ServiceTransport::kSctp}) {
    const ServiceResult r =
        apps::run_service(small_fleet(t, 41), [](ServiceSim& svc) {
          svc.at(sim::kSecond, [&svc] { svc.lb().drain_backend(0); });
        });
    EXPECT_EQ(r.completed, r.issued);
    EXPECT_EQ(r.retried, 0u) << "drain must not reset tracked flows";
    EXPECT_EQ(r.abandoned, 0u);
    EXPECT_EQ(r.backend_down_events, 0u);
    EXPECT_EQ(r.lb.no_backend_drops, 0u);
  }
}

// The headline schedule (ISSUE acceptance): one graceful scale-in PLUS one
// subnet blackout. Multihomed SCTP associations fail over to the alternate
// VIP with zero request retries and zero loss; TCP — bound to the severed
// VIP — must tear down and reconnect, which the result measures.
TEST(ChaosService, HeadlineScaleInPlusBlackoutFailover) {
  auto schedule = [](ServiceSim& svc) {
    svc.at(sim::kSecond, [&svc] { svc.lb().drain_backend(2); });
    svc.at(1500 * sim::kMillisecond,
           [&svc] { svc.cluster().set_subnet_loss(0, 1.0); });
    svc.at(5 * sim::kSecond,
           [&svc] { svc.cluster().set_subnet_loss(0, 0.0); });
  };
  ServiceParams ps = small_fleet(ServiceTransport::kSctp, 53);
  ps.requests = 2400;
  const ServiceResult sctp = apps::run_service(ps, schedule);
  ServiceParams pt = small_fleet(ServiceTransport::kTcp, 53);
  pt.requests = 2400;
  const ServiceResult tcp = apps::run_service(pt, schedule);

  // SCTP: zero loss, zero retries — the association moved paths instead.
  EXPECT_EQ(sctp.completed, sctp.issued);
  EXPECT_EQ(sctp.retried, 0u);
  EXPECT_EQ(sctp.abandoned, 0u);
  EXPECT_GT(sctp.failovers, 0u);
  EXPECT_EQ(sctp.reconnects, 0u);

  // TCP: the same schedule forces measurable reconnects and retries.
  EXPECT_EQ(tcp.completed, tcp.issued) << "TCP should recover by deadline";
  EXPECT_GT(tcp.reconnects, 0u);
  EXPECT_GT(tcp.retried, 0u);
  // The blackout-crossing requests put seconds into TCP's tail; SCTP's
  // failover clock (heartbeat RTO) is an order of magnitude quicker.
  EXPECT_GT(tcp.p999_ms, sctp.p999_ms);

  // Neither transport may lose a backend to false ejection: probes rotate
  // over the backends' subnets, and one dead subnet is not death.
  EXPECT_EQ(sctp.backend_down_events, 0u);
  EXPECT_EQ(tcp.backend_down_events, 0u);

  // Determinism of the full chaos schedule, both transports.
  EXPECT_EQ(apps::run_service(ps, schedule).digest, sctp.digest);
  EXPECT_EQ(apps::run_service(pt, schedule).digest, tcp.digest);
}

}  // namespace
}  // namespace sctpmpi::chaos
