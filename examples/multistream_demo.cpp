// Multistream demo: the paper's Fig. 4 scenario, made visible.
//
// P1 sends Msg-A then Msg-B with different tags; P0 posts two non-blocking
// receives and waits for ANY of them. We deterministically drop the first
// data packet (part of Msg-A). Over LAM_TCP the byte stream holds Msg-B
// hostage behind the retransmission of Msg-A (head-of-line blocking); over
// LAM_SCTP the two tags live on different streams, so Msg-B is delivered
// immediately and P0 computes while Msg-A recovers.
//
//   $ ./examples/multistream_demo
#include <cstdio>
#include <vector>

#include "core/world.hpp"

using namespace sctpmpi;

namespace {

double run_scenario(core::TransportKind transport) {
  core::WorldConfig cfg;
  cfg.ranks = 2;
  cfg.transport = transport;
  core::World world(cfg);

  // Drop the first large data packet from rank 1 (part of Msg-A).
  int data_packets = 0;
  world.cluster().uplink(1).faults().drop_if([&](const net::Packet& p) {
    if (p.payload.size() > 1000) {
      ++data_packets;
      return data_packets == 1;
    }
    return false;
  });

  double t_any = 0;
  world.run([&](core::Mpi& mpi) {
    constexpr std::size_t kMsg = 30 * 1024;
    if (mpi.rank() == 1) {
      std::vector<std::byte> a(kMsg, std::byte{0xA});
      std::vector<std::byte> b(kMsg, std::byte{0xB});
      mpi.send(a, 0, /*tag-A=*/1);
      mpi.send(b, 0, /*tag-B=*/2);
    } else {
      std::vector<std::byte> bufa(kMsg), bufb(kMsg);
      std::vector<core::Request> reqs{mpi.irecv(bufa, 1, 1),
                                      mpi.irecv(bufb, 1, 2)};
      const double t0 = mpi.wtime();
      core::MpiStatus st;
      mpi.waitany(reqs, &st);  // MPI_Waitany: either message is fine
      t_any = mpi.wtime() - t0;
      std::printf("  %-10s waitany returned tag %d after %8.3f ms\n",
                  core::to_string(transport), st.tag, t_any * 1e3);
      mpi.compute(5 * sim::kMillisecond);  // overlapped computation
      mpi.waitall(reqs);
    }
  });
  return t_any;
}

}  // namespace

int main() {
  std::printf("Paper Fig. 4: Msg-A (tag 1) loses a packet; Msg-B (tag 2)\n"
              "arrives intact. How long until MPI_Waitany returns?\n\n");
  const double tcp = run_scenario(core::TransportKind::kTcp);
  const double sctp = run_scenario(core::TransportKind::kSctp);
  std::printf(
      "\nLAM_TCP must wait for Msg-A's retransmission (min RTO 1s) before\n"
      "the byte stream releases Msg-B: %.1f ms.\n"
      "LAM_SCTP delivers Msg-B on its own stream right away: %.1f ms —\n"
      "%.0fx sooner. That is head-of-line blocking, eliminated (§3.2).\n",
      tcp * 1e3, sctp * 1e3, tcp / sctp);
  return 0;
}
