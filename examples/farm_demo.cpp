// Farm demo: the paper's Bulk Processor Farm (manager/worker, §4.2.1) run
// side by side over LAM_TCP and LAM_SCTP at a chosen loss rate, printing
// run times — a miniature of the Fig. 10 experiment.
//
//   $ ./examples/farm_demo            # 0% loss
//   $ ./examples/farm_demo 0.02       # 2% Dummynet-style loss
#include <cstdio>
#include <cstdlib>

#include "apps/farm.hpp"

using namespace sctpmpi;

int main(int argc, char** argv) {
  const double loss = argc > 1 ? std::atof(argv[1]) : 0.0;

  apps::FarmParams fp;
  fp.num_tasks = 1'000;
  fp.task_size = 30 * 1024;
  fp.fanout = 1;

  std::printf("Bulk Processor Farm: %d tasks x %zu bytes, 8 ranks, "
              "loss %.1f%%\n\n",
              fp.num_tasks, fp.task_size, loss * 100);

  for (auto tr : {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
    core::WorldConfig cfg;
    cfg.ranks = 8;
    cfg.transport = tr;
    cfg.loss = loss;
    auto r = apps::run_farm(cfg, fp);
    std::printf("%-10s run time %8.3f s   (%d tasks completed, manager "
                "served %llu requests)\n",
                core::to_string(tr), r.total_runtime_seconds,
                r.tasks_completed,
                static_cast<unsigned long long>(r.manager_requests_served));
  }
  std::printf(
      "\nTry loss 0.01 or 0.02: the SCTP module's multistreaming and loss\n"
      "recovery keep the farm moving while LAM_TCP stalls (paper Fig. 10).\n");
  return 0;
}
