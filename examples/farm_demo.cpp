// Farm demo: the paper's Bulk Processor Farm (manager/worker, §4.2.1) run
// side by side over LAM_TCP and LAM_SCTP at a chosen loss rate, printing
// run times — a miniature of the Fig. 10 experiment.
//
//   $ ./examples/farm_demo            # 0% loss
//   $ ./examples/farm_demo 0.02       # 2% Dummynet-style loss
//   $ ./examples/farm_demo --kill     # failure-aware farm, one worker
//                                     # blacked out mid-job: the manager
//                                     # reassigns its tasks and finishes
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "apps/farm.hpp"
#include "apps/farm_recovery.hpp"

using namespace sctpmpi;

namespace {

// One worker goes dark mid-job; the control plane writes it off and the
// manager redistributes its outstanding tasks to the survivors.
int run_kill_demo() {
  apps::FarmRecoveryParams fp;
  fp.num_tasks = 200;
  fp.task_size = 8 * 1024;
  fp.work_per_task = 20 * sim::kMillisecond;

  std::printf("Failure-aware farm: %d tasks x %zu bytes, 8 ranks, worker 3\n"
              "blacked out permanently at t=0.3s\n\n",
              fp.num_tasks, fp.task_size);

  std::uint64_t expected = 0;
  for (int t = 0; t < fp.num_tasks; ++t) {
    expected += apps::farm_task_result(static_cast<std::uint32_t>(t));
  }

  bool ok = true;
  for (auto tr : {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
    core::WorldConfig cfg;
    cfg.ranks = 8;
    cfg.transport = tr;
    cfg.enable_lamd = true;
    cfg.lamd.status_interval = 200 * sim::kMillisecond;
    cfg.lamd.dead_after = sim::kSecond;
    cfg.rpi.recovery.enabled = true;
    cfg.rpi.recovery.passive_give_up = 5 * sim::kSecond;
    cfg.tcp.max_rto = 2 * sim::kSecond;
    cfg.tcp.max_data_retries = 3;
    cfg.sctp.rto_max = 2 * sim::kSecond;
    cfg.sctp.assoc_max_retrans = 3;
    auto r = apps::run_farm_recovering(cfg, fp, [](core::World& w) {
      w.cluster().uplink(3).faults().add_blackout(300 * sim::kMillisecond,
                                                  sim::SimTime{1} << 62);
      w.cluster().downlink(3).faults().add_blackout(300 * sim::kMillisecond,
                                                    sim::SimTime{1} << 62);
    });
    const bool correct = !r.aborted && r.result_sum == expected;
    ok = ok && correct;
    std::printf("%-10s run time %8.3f s   %d/%d tasks, %d reassigned from "
                "%d dead worker(s), results %s\n",
                core::to_string(tr), r.total_runtime_seconds,
                r.tasks_completed, fp.num_tasks, r.reassigned_tasks,
                r.workers_failed, correct ? "correct" : "WRONG");
  }
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--kill") == 0) {
    return run_kill_demo();
  }
  const double loss = argc > 1 ? std::atof(argv[1]) : 0.0;

  apps::FarmParams fp;
  fp.num_tasks = 1'000;
  fp.task_size = 30 * 1024;
  fp.fanout = 1;

  std::printf("Bulk Processor Farm: %d tasks x %zu bytes, 8 ranks, "
              "loss %.1f%%\n\n",
              fp.num_tasks, fp.task_size, loss * 100);

  for (auto tr : {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
    core::WorldConfig cfg;
    cfg.ranks = 8;
    cfg.transport = tr;
    cfg.loss = loss;
    auto r = apps::run_farm(cfg, fp);
    std::printf("%-10s run time %8.3f s   (%d tasks completed, manager "
                "served %llu requests)\n",
                core::to_string(tr), r.total_runtime_seconds,
                r.tasks_completed,
                static_cast<unsigned long long>(r.manager_requests_served));
  }
  std::printf(
      "\nTry loss 0.01 or 0.02: the SCTP module's multistreaming and loss\n"
      "recovery keep the farm moving while LAM_TCP stalls (paper Fig. 10).\n");
  return 0;
}
