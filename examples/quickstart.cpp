// Quickstart: a minimal two-rank MPI program over the SCTP module.
//
// Builds a simulated 2-node gigabit cluster, runs an MPI job whose ranks
// exchange a greeting with blocking send/recv, then a round of
// non-blocking traffic on several tags, and prints what happened.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/world.hpp"

using namespace sctpmpi;

int main() {
  // A World is a full simulated MPI job: cluster, transport stacks, ranks.
  core::WorldConfig cfg;
  cfg.ranks = 2;
  cfg.transport = core::TransportKind::kSctp;  // the paper's module
  core::World world(cfg);

  world.run([](core::Mpi& mpi) {
    if (mpi.rank() == 0) {
      const char* text = "hello from rank 0 over SCTP";
      mpi.send(std::as_bytes(std::span(text, std::strlen(text) + 1)),
               /*dst=*/1, /*tag=*/0);

      // Non-blocking receives on two tags; either may complete first —
      // with SCTP each tag travels on its own stream.
      std::vector<std::byte> a(1024), b(1024);
      std::vector<core::Request> reqs{mpi.irecv(a, 1, /*tag=*/1),
                                      mpi.irecv(b, 1, /*tag=*/2)};
      core::MpiStatus st;
      int first = mpi.waitany(reqs, &st);
      std::printf("rank 0: tag %d arrived first (%zu bytes)\n", st.tag,
                  st.count);
      mpi.waitall(reqs);
      std::printf("rank 0: both replies received, first index was %d\n",
                  first);
    } else {
      std::vector<std::byte> buf(256);
      core::MpiStatus st = mpi.recv(buf, 0, 0);
      std::printf("rank 1: received \"%s\" (%zu bytes) from rank %d\n",
                  reinterpret_cast<const char*>(buf.data()), st.count,
                  st.source);
      std::vector<std::byte> reply(1024, std::byte{42});
      mpi.send(reply, 0, /*tag=*/2);  // tag 2 first on purpose
      mpi.send(reply, 0, /*tag=*/1);
    }
    mpi.barrier();
  });

  std::printf("job finished at virtual time %.6f s\n",
              world.elapsed_seconds());
  return 0;
}
