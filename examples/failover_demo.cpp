// Failover demo (paper §3.5.1): an MPI job on multihomed nodes (three
// NICs on three independent networks, like the paper's testbed) survives
// the total failure of the primary network mid-run. SCTP's heartbeats
// detect the dead path and retransmissions move to an alternate address;
// the MPI program never notices beyond a brief stall.
//
//   $ ./examples/failover_demo
#include <cstdio>
#include <vector>

#include "core/world.hpp"

using namespace sctpmpi;

int main() {
  core::WorldConfig cfg;
  cfg.ranks = 2;
  cfg.transport = core::TransportKind::kSctp;
  cfg.interfaces = 3;              // three independent networks
  cfg.sctp.path_max_retrans = 2;   // fail over after a few timeouts

  core::World world(cfg);
  constexpr int kIters = 60;
  constexpr std::size_t kMsg = 30 * 1024;

  world.run([&](core::Mpi& mpi) {
    std::vector<std::byte> out(kMsg, std::byte{1});
    std::vector<std::byte> in(kMsg);
    const int peer = 1 - mpi.rank();
    double slowest = 0;
    int slowest_iter = -1;
    for (int i = 0; i < kIters; ++i) {
      const double t0 = mpi.wtime();
      if (mpi.rank() == 0) {
        mpi.send(out, peer, 0);
        mpi.recv(in, peer, 0);
      } else {
        mpi.recv(in, peer, 0);
        mpi.send(out, peer, 0);
      }
      const double dt = mpi.wtime() - t0;
      if (mpi.rank() == 0 && dt > slowest) {
        slowest = dt;
        slowest_iter = i;
      }
      if (i == kIters / 3 && mpi.rank() == 0) {
        std::printf("iteration %d: severing the primary network (subnet 0)"
                    "...\n", i);
        world.cluster().set_subnet_loss(0, 1.0);
      }
    }
    if (mpi.rank() == 0) {
      std::printf("all %d iterations completed; slowest round trip %.3f s "
                  "(iteration %d — the failover stall)\n",
                  kIters, slowest, slowest_iter);
    }
  });

  std::printf(
      "total virtual time: %.3f s — the job survived a dead network with\n"
      "no MPI-level recovery code. The multi-second stall is the RFC\n"
      "default timer cascade; the paper (§3.5.1) notes these controls\n"
      "\"need to be tuned to a particular network\" for fast failover.\n",
      world.elapsed_seconds());
  return 0;
}
