// Ablation: socket buffer size (paper §4 setting 1 pinned both stacks to
// 220 KiB; this sweep shows why the setting matters for the comparison).
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Ablation: socket buffer size sweep",
         "paper §4 setting 1 — SO_SNDBUF/SO_RCVBUF = 220 KiB in both stacks");

  apps::Table table({"Buffers", "LAM_TCP 131K (B/s)", "LAM_SCTP 131K (B/s)"});
  for (std::size_t kb : {32ul, 64ul, 128ul, 220ul, 512ul}) {
    double tput[2];
    int i = 0;
    for (auto tr : {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
      auto cfg = paper_config(tr, 0.0);
      cfg.tcp.sndbuf = cfg.tcp.rcvbuf = kb * 1024;
      cfg.sctp.sndbuf = cfg.sctp.rcvbuf = kb * 1024;
      apps::PingPongParams pp;
      pp.message_size = 131072;
      pp.iterations = scaled(100, 25);
      tput[i++] = apps::run_pingpong(cfg, pp).throughput_Bps;
    }
    table.add_row({std::to_string(kb) + " KiB", apps::fmt("%.0f", tput[0]),
                   apps::fmt("%.0f", tput[1])});
  }
  table.print();
  std::printf(
      "\nShape: beyond the bandwidth-delay product the curves flatten —\n"
      "the paper's 220 KiB is comfortably there. Below ~128 KiB the SCTP\n"
      "module collapses: the middleware's long-message fragments (paper\n"
      "§3.4, clamped to the send buffer) degenerate to stop-and-wait, and\n"
      "each fragment tail then eats a 200 ms delayed-SACK — a concrete\n"
      "instance of the sctp_sendmsg size limit the paper calls out as a\n"
      "limitation (§3.6).\n");
  return 0;
}
