// Ablation: stream pool size (paper §3.2.1 — "the degree of concurrency
// achieved depends on the number of streams"). Farm with Fanout=10 at 2%
// loss, sweeping the TRC->stream pool from 1 to 32.
#include "apps/farm.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Ablation: SCTP stream pool size",
         "paper §3.2.1 — concurrency vs pool size, long-task farm @2% loss");

  apps::FarmParams fp;
  fp.task_size = 300 * 1024;  // long tasks show the effect most cleanly
  fp.fanout = 10;
  fp.num_tasks = scaled(800, 200);
  fp.work_per_task = 55 * sim::kMillisecond;  // paper-calibrated compute

  apps::Table table({"Stream pool", "Run time (s)"});
  const std::uint64_t seeds[] = {2005, 2006};
  for (unsigned pool : {1u, 2u, 5u, 10u, 20u, 32u}) {
    double total = 0;
    for (std::uint64_t seed : seeds) {
      auto cfg = paper_config(core::TransportKind::kSctp, 0.02, seed);
      cfg.rpi.stream_pool = pool;
      total += apps::run_farm(cfg, fp).total_runtime_seconds;
    }
    table.add_row({std::to_string(pool),
                   apps::fmt("%.1f", total / std::size(seeds))});
  }
  table.print();
  std::printf(
      "\nShape: run time falls as the pool grows (less HOL blocking),\n"
      "with diminishing returns once the pool covers the active tag set\n"
      "(the farm uses 10 work tags + 1 control tag).\n");
  return 0;
}
