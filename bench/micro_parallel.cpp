// Micro-benchmark of the sharded parallel simulator: the fig-10 farm and
// the many-flow open-loop workload on a k=4 fat-tree, swept over 1/2/4/8
// shards, plus a single-shard fat-tree size sweep (k = 4..8).
//
// Each swept case reports:
//   wall_seconds         — host wall clock for the run
//   sim_elapsed_seconds  — virtual job time (a determinism canary: it must
//                          be bit-stable run over run at a fixed shard
//                          count, though it may differ ACROSS shard counts
//                          — different same-instant interleavings)
//   speedup              — wall(1 shard) / wall(this shard count); the
//                          1-shard case records 1.0 by construction
//
// The "speedup" keys are the regression surface consumed by
// bench/check_regression.sh: they are self-scaling (ratios of two runs on
// the same host), so the committed bench/BENCH_parallel.json baseline is
// machine-independent. A speedup key is emitted only when BOTH hold:
//   hardware  — hardware_concurrency() >= shards. Wall-clock speedup needs
//               a core per shard; a single-core CI container must not bake
//               sub-1.0 "speedups" into the baseline (they would gate
//               nothing but noise).
//   same work — the run's sim_elapsed matches the 1-shard run's. Sharding
//               preserves causality but not same-instant tie order across
//               SHARD COUNTS, and near a drop-tail saturation cliff one
//               reordered tie can change which packet drops and cascade
//               into retransmission timeouts that multiply virtual time.
//               A wall-clock ratio between runs doing different virtual
//               work gates nothing, so it is withheld (the workloads below
//               are sized to sit safely inside the stable regime; adaptive
//               placement can still legitimately leave it).
// The headline keys farm_shards4_vs_1 / manyflow_shards4_vs_1 follow the
// same rule; the 4-core CI job gates them with check_regression.sh --floor.
//
// Self-checks (exit 1 on failure): the farm completes every task and the
// many-flow workload delivers every expected message, at every shard
// count and with adaptive placement on.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "apps/farm.hpp"
#include "apps/manyflow.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace sctpmpi;

core::WorldConfig fattree_config(int ranks, unsigned k, unsigned shards) {
  core::WorldConfig cfg;
  cfg.ranks = ranks;
  cfg.transport = core::TransportKind::kSctp;
  cfg.seed = 2005;
  cfg.topology = net::TopologyKind::kFatTree;
  cfg.fattree.k = k;
  cfg.shards = shards;
  return cfg;
}

// Best-of-two wall time: the sharded runs are sub-second, so a single
// noisy pass would wobble the speedup ratios the regression gate watches.
template <typename Fn>
double min2(Fn&& fn) {
  const double a = fn();
  const double b = fn();
  return a < b ? a : b;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::banner("micro: sharded parallel simulator",
                "conservative-lookahead sharding on fat-tree topologies");
  bench::BenchJson out("parallel");
  bool ok = true;
  const unsigned kShardSweep[] = {1, 2, 4, 8};
  const unsigned hw = std::thread::hardware_concurrency();
  // Wall-clock speedup needs a core per shard to mean anything.
  const auto speedup_measurable = [hw](unsigned shards) {
    return shards == 1 || hw >= shards;
  };
  // ...and the same virtual work as the 1-shard reference (see header).
  const auto same_work = [](double sim, double sim1) {
    return std::abs(sim - sim1) <= 1e-3 * sim1;
  };

  // ---- fig-10 farm (fanout 1) on a k=4 fat-tree, 16 ranks ----------------
  {
    apps::FarmParams fp;
    fp.num_tasks = quick ? 300 : 1500;
    // 20 KB keeps the manager's downlink inside the stable (pre-cliff)
    // congestion regime: drops still occur, but the same ones at every
    // shard count, so sim_elapsed is identical and the speedup keys are a
    // fair wall-clock comparison. At 30 KB the queue sits on the drop-tail
    // cliff and tie reorderings across shard counts cascade into RTOs.
    fp.task_size = 20 * 1024;
    fp.fanout = 1;

    double wall1 = 0, sim1 = 0;
    for (const unsigned shards : kShardSweep) {
      apps::FarmResult fr;
      const double wall = min2([&] {
        const double t0 = bench::wall_seconds();
        fr = apps::run_farm(fattree_config(16, 4, shards), fp);
        return bench::wall_seconds() - t0;
      });
      if (shards == 1) {
        wall1 = wall;
        sim1 = fr.total_runtime_seconds;
      }
      if (fr.tasks_completed != fp.num_tasks) {
        std::fprintf(stderr,
                     "self-check FAILED: farm at %u shards completed %d of "
                     "%d tasks\n",
                     shards, fr.tasks_completed, fp.num_tasks);
        ok = false;
      }
      const std::string name =
          "farm_fig10_k4_shards" + std::to_string(shards);
      const double speedup = shards == 1 ? 1.0 : wall1 / wall;
      const bool gated = speedup_measurable(shards) &&
                         same_work(fr.total_runtime_seconds, sim1);
      out.metric(name, "wall_seconds", wall);
      out.metric(name, "sim_elapsed_seconds", fr.total_runtime_seconds);
      if (gated) {
        out.metric(name, "speedup", speedup);
        if (shards == 4) out.metric("headline", "farm_shards4_vs_1", speedup);
      }
      std::printf("%-30s wall %7.3fs  sim %7.3fs  speedup %.2fx%s\n",
                  name.c_str(), wall, fr.total_runtime_seconds, speedup,
                  gated ? "" : " (ungated)");
    }

    // Adaptive placement: host->shard map from a measured warmup instead of
    // contiguous blocks. Correctness is checked everywhere; the speedup key
    // follows the same hardware gate.
    {
      core::WorldConfig cfg = fattree_config(16, 4, 4);
      cfg.adaptive_placement = true;
      apps::FarmResult fr;
      const double wall = min2([&] {
        const double t0 = bench::wall_seconds();
        fr = apps::run_farm(cfg, fp);
        return bench::wall_seconds() - t0;
      });
      if (fr.tasks_completed != fp.num_tasks) {
        std::fprintf(stderr,
                     "self-check FAILED: adaptive farm completed %d of %d "
                     "tasks\n",
                     fr.tasks_completed, fp.num_tasks);
        ok = false;
      }
      const std::string name = "farm_fig10_k4_shards4_adaptive";
      const double speedup = wall1 / wall;
      const bool gated = speedup_measurable(4) &&
                         same_work(fr.total_runtime_seconds, sim1);
      out.metric(name, "wall_seconds", wall);
      out.metric(name, "sim_elapsed_seconds", fr.total_runtime_seconds);
      if (gated) out.metric(name, "speedup", speedup);
      std::printf("%-30s wall %7.3fs  sim %7.3fs  speedup %.2fx%s\n",
                  name.c_str(), wall, fr.total_runtime_seconds, speedup,
                  gated ? "" : " (ungated)");
    }
  }

  // ---- many-flow open loop on a k=4 fat-tree, 16 ranks -------------------
  {
    apps::ManyflowParams mp;
    mp.msgs_per_peer = quick ? 100 : 400;
    mp.fanout = 3;
    mp.msg_size = 8 * 1024;

    double wall1 = 0, sim1 = 0;
    for (const unsigned shards : kShardSweep) {
      apps::ManyflowResult mr;
      const double wall = min2([&] {
        const double t0 = bench::wall_seconds();
        mr = apps::run_manyflow(fattree_config(16, 4, shards), mp);
        return bench::wall_seconds() - t0;
      });
      if (shards == 1) {
        wall1 = wall;
        sim1 = mr.total_runtime_seconds;
      }
      const std::uint64_t expect = 16ull * 3 *
                                   static_cast<std::uint64_t>(mp.msgs_per_peer);
      if (mr.messages_received != expect) {
        std::fprintf(stderr,
                     "self-check FAILED: manyflow at %u shards delivered "
                     "%llu of %llu messages\n",
                     shards,
                     static_cast<unsigned long long>(mr.messages_received),
                     static_cast<unsigned long long>(expect));
        ok = false;
      }
      const std::string name = "manyflow_k4_shards" + std::to_string(shards);
      const double speedup = shards == 1 ? 1.0 : wall1 / wall;
      const bool gated = speedup_measurable(shards) &&
                         same_work(mr.total_runtime_seconds, sim1);
      out.metric(name, "wall_seconds", wall);
      out.metric(name, "sim_elapsed_seconds", mr.total_runtime_seconds);
      out.metric(name, "sim_goodput_MBps", mr.aggregate_goodput_mb_s);
      if (gated) {
        out.metric(name, "speedup", speedup);
        if (shards == 4) {
          out.metric("headline", "manyflow_shards4_vs_1", speedup);
        }
      }
      std::printf("%-30s wall %7.3fs  sim %7.3fs  speedup %.2fx%s\n",
                  name.c_str(), wall, mr.total_runtime_seconds, speedup,
                  gated ? "" : " (ungated)");
    }

    // Adaptive placement variant, as in the farm block above.
    {
      core::WorldConfig cfg = fattree_config(16, 4, 4);
      cfg.adaptive_placement = true;
      apps::ManyflowResult mr;
      const double wall = min2([&] {
        const double t0 = bench::wall_seconds();
        mr = apps::run_manyflow(cfg, mp);
        return bench::wall_seconds() - t0;
      });
      const std::uint64_t expect =
          16ull * 3 * static_cast<std::uint64_t>(mp.msgs_per_peer);
      if (mr.messages_received != expect) {
        std::fprintf(stderr,
                     "self-check FAILED: adaptive manyflow delivered %llu of "
                     "%llu messages\n",
                     static_cast<unsigned long long>(mr.messages_received),
                     static_cast<unsigned long long>(expect));
        ok = false;
      }
      // Adaptive placement changes which host pairs are cross-shard, hence
      // same-instant tie order; under this workload that lands one tail
      // drop whose retransmit waits out SCTP's 1 s RTO.min, so sim_elapsed
      // legitimately differs from the contiguous runs and the speedup key
      // is withheld by the same-work gate.
      const std::string name = "manyflow_k4_shards4_adaptive";
      const double speedup = wall1 / wall;
      const bool gated = speedup_measurable(4) &&
                         same_work(mr.total_runtime_seconds, sim1);
      out.metric(name, "wall_seconds", wall);
      out.metric(name, "sim_elapsed_seconds", mr.total_runtime_seconds);
      if (gated) out.metric(name, "speedup", speedup);
      std::printf("%-30s wall %7.3fs  sim %7.3fs  speedup %.2fx%s\n",
                  name.c_str(), wall, mr.total_runtime_seconds, speedup,
                  gated ? "" : " (ungated)");
    }
  }

  // ---- fat-tree size sweep, single shard (topology-build + route scale) --
  {
    apps::ManyflowParams mp;
    mp.msgs_per_peer = quick ? 10 : 30;
    mp.fanout = 3;
    mp.msg_size = 4 * 1024;
    std::vector<unsigned> ks = {4, 6};
    if (!quick) ks.push_back(8);
    for (const unsigned k : ks) {
      const int ranks = static_cast<int>(k * k * k / 4);
      const double t0 = bench::wall_seconds();
      const apps::ManyflowResult mr =
          apps::run_manyflow(fattree_config(ranks, k, 1), mp);
      const double wall = bench::wall_seconds() - t0;
      const std::uint64_t expect =
          static_cast<std::uint64_t>(ranks) * 3 *
          static_cast<std::uint64_t>(mp.msgs_per_peer);
      if (mr.messages_received != expect) {
        std::fprintf(stderr,
                     "self-check FAILED: k=%u sweep delivered %llu of %llu "
                     "messages\n",
                     k, static_cast<unsigned long long>(mr.messages_received),
                     static_cast<unsigned long long>(expect));
        ok = false;
      }
      const std::string name = "fattree_scale_k" + std::to_string(k);
      out.metric(name, "hosts", static_cast<double>(ranks));
      out.metric(name, "wall_seconds", wall);
      // Per-host wall cost: the scale sweep's real question is whether the
      // simulator's cost grows super-linearly with topology size.
      out.metric(name, "wall_per_host_seconds", wall / ranks);
      out.metric(name, "sim_elapsed_seconds", mr.total_runtime_seconds);
      std::printf("%-26s hosts %4d  wall %7.3fs (%.4fs/host)  sim %7.3fs\n",
                  name.c_str(), ranks, wall, wall / ranks,
                  mr.total_runtime_seconds);
    }
  }

  if (!json_path.empty() && !out.write(json_path)) return 1;
  return ok ? 0 : 1;
}
