// Micro-benchmark of the sharded parallel simulator: the fig-10 farm and
// the many-flow open-loop workload on a k=4 fat-tree, swept over 1/2/4/8
// shards, plus a single-shard fat-tree size sweep (k = 4..8).
//
// Each swept case reports:
//   wall_seconds         — host wall clock for the run
//   sim_elapsed_seconds  — virtual job time (a determinism canary: it must
//                          be bit-stable run over run at a fixed shard
//                          count, though it may differ ACROSS shard counts
//                          — different same-instant interleavings)
//   speedup              — wall(1 shard) / wall(this shard count); the
//                          1-shard case records 1.0 by construction
//
// The "speedup" keys are the regression surface consumed by
// bench/check_regression.sh: they are self-scaling (ratios of two runs on
// the same host), so the committed bench/BENCH_parallel.json baseline is
// machine-independent. On a single-core container the multi-shard speedup
// sits below 1 (barrier overhead, no parallel hardware) — the gate tracks
// that honest ratio rather than an aspirational one.
//
// Self-checks (exit 1 on failure): the farm completes every task and the
// many-flow workload delivers every expected message, at every shard
// count.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/farm.hpp"
#include "apps/manyflow.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace sctpmpi;

core::WorldConfig fattree_config(int ranks, unsigned k, unsigned shards) {
  core::WorldConfig cfg;
  cfg.ranks = ranks;
  cfg.transport = core::TransportKind::kSctp;
  cfg.seed = 2005;
  cfg.topology = net::TopologyKind::kFatTree;
  cfg.fattree.k = k;
  cfg.shards = shards;
  return cfg;
}

// Best-of-two wall time: the sharded runs are sub-second, so a single
// noisy pass would wobble the speedup ratios the regression gate watches.
template <typename Fn>
double min2(Fn&& fn) {
  const double a = fn();
  const double b = fn();
  return a < b ? a : b;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::banner("micro: sharded parallel simulator",
                "conservative-lookahead sharding on fat-tree topologies");
  bench::BenchJson out("parallel");
  bool ok = true;
  const unsigned kShardSweep[] = {1, 2, 4, 8};

  // ---- fig-10 farm (fanout 1) on a k=4 fat-tree, 16 ranks ----------------
  {
    apps::FarmParams fp;
    fp.num_tasks = quick ? 300 : 1500;
    fp.task_size = 30 * 1024;
    fp.fanout = 1;

    double wall1 = 0;
    for (const unsigned shards : kShardSweep) {
      apps::FarmResult fr;
      const double wall = min2([&] {
        const double t0 = bench::wall_seconds();
        fr = apps::run_farm(fattree_config(16, 4, shards), fp);
        return bench::wall_seconds() - t0;
      });
      if (shards == 1) wall1 = wall;
      if (fr.tasks_completed != fp.num_tasks) {
        std::fprintf(stderr,
                     "self-check FAILED: farm at %u shards completed %d of "
                     "%d tasks\n",
                     shards, fr.tasks_completed, fp.num_tasks);
        ok = false;
      }
      const std::string name =
          "farm_fig10_k4_shards" + std::to_string(shards);
      out.metric(name, "wall_seconds", wall);
      out.metric(name, "sim_elapsed_seconds", fr.total_runtime_seconds);
      out.metric(name, "speedup", shards == 1 ? 1.0 : wall1 / wall);
      std::printf("%-26s wall %7.3fs  sim %7.3fs  speedup %.2fx\n",
                  name.c_str(), wall, fr.total_runtime_seconds,
                  shards == 1 ? 1.0 : wall1 / wall);
    }
  }

  // ---- many-flow open loop on a k=4 fat-tree, 16 ranks -------------------
  {
    apps::ManyflowParams mp;
    mp.msgs_per_peer = quick ? 100 : 400;
    mp.fanout = 3;
    mp.msg_size = 8 * 1024;

    double wall1 = 0;
    for (const unsigned shards : kShardSweep) {
      apps::ManyflowResult mr;
      const double wall = min2([&] {
        const double t0 = bench::wall_seconds();
        mr = apps::run_manyflow(fattree_config(16, 4, shards), mp);
        return bench::wall_seconds() - t0;
      });
      if (shards == 1) wall1 = wall;
      const std::uint64_t expect = 16ull * 3 *
                                   static_cast<std::uint64_t>(mp.msgs_per_peer);
      if (mr.messages_received != expect) {
        std::fprintf(stderr,
                     "self-check FAILED: manyflow at %u shards delivered "
                     "%llu of %llu messages\n",
                     shards,
                     static_cast<unsigned long long>(mr.messages_received),
                     static_cast<unsigned long long>(expect));
        ok = false;
      }
      const std::string name = "manyflow_k4_shards" + std::to_string(shards);
      out.metric(name, "wall_seconds", wall);
      out.metric(name, "sim_elapsed_seconds", mr.total_runtime_seconds);
      out.metric(name, "sim_goodput_MBps", mr.aggregate_goodput_mb_s);
      out.metric(name, "speedup", shards == 1 ? 1.0 : wall1 / wall);
      std::printf("%-26s wall %7.3fs  sim %7.3fs  speedup %.2fx\n",
                  name.c_str(), wall, mr.total_runtime_seconds,
                  shards == 1 ? 1.0 : wall1 / wall);
    }
  }

  // ---- fat-tree size sweep, single shard (topology-build + route scale) --
  {
    apps::ManyflowParams mp;
    mp.msgs_per_peer = quick ? 10 : 30;
    mp.fanout = 3;
    mp.msg_size = 4 * 1024;
    std::vector<unsigned> ks = {4, 6};
    if (!quick) ks.push_back(8);
    for (const unsigned k : ks) {
      const int ranks = static_cast<int>(k * k * k / 4);
      const double t0 = bench::wall_seconds();
      const apps::ManyflowResult mr =
          apps::run_manyflow(fattree_config(ranks, k, 1), mp);
      const double wall = bench::wall_seconds() - t0;
      const std::uint64_t expect =
          static_cast<std::uint64_t>(ranks) * 3 *
          static_cast<std::uint64_t>(mp.msgs_per_peer);
      if (mr.messages_received != expect) {
        std::fprintf(stderr,
                     "self-check FAILED: k=%u sweep delivered %llu of %llu "
                     "messages\n",
                     k, static_cast<unsigned long long>(mr.messages_received),
                     static_cast<unsigned long long>(expect));
        ok = false;
      }
      const std::string name = "fattree_scale_k" + std::to_string(k);
      out.metric(name, "hosts", static_cast<double>(ranks));
      out.metric(name, "wall_seconds", wall);
      out.metric(name, "sim_elapsed_seconds", mr.total_runtime_seconds);
      std::printf("%-26s hosts %4d  wall %7.3fs  sim %7.3fs\n", name.c_str(),
                  ranks, wall, mr.total_runtime_seconds);
    }
  }

  if (!json_path.empty() && !out.write(json_path)) return 1;
  return ok ? 0 : 1;
}
