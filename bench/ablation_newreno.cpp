// Ablation: RFC 2960's fast-retransmit-once-per-TSN rule versus the
// New-Reno SCTP variant (paper §4.1.1: "The FreeBSD KAME SCTP stack also
// includes a variant called New-Reno SCTP that is more robust to multiple
// packet losses in a single window"). With the strict rule, a chunk whose
// fast retransmission is ALSO lost must wait out a T3 timeout; the variant
// lets fresh missing reports trigger another fast retransmit.
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Ablation: fast-rtx once-per-TSN (RFC 2960) vs New-Reno SCTP",
         "paper §4.1.1 — robustness to multiple losses in a window");

  apps::Table table({"Loss", "RFC once-only (B/s)", "New-Reno (B/s)",
                     "New-Reno gain"});
  for (double loss : {0.01, 0.02, 0.05}) {
    double tput[2];
    int i = 0;
    for (bool once : {true, false}) {
      double total_time = 0, total_bytes = 0;
      for (std::uint64_t seed : {2005ull, 2006ull, 2007ull}) {
        auto cfg = paper_config(core::TransportKind::kSctp, loss, seed);
        cfg.sctp.fast_rtx_once_per_tsn = once;
        apps::PingPongParams pp;
        pp.message_size = 300 * 1024;
        pp.iterations = scaled(100, 15);
        auto r = apps::run_pingpong(cfg, pp);
        total_time += r.loop_seconds;
        total_bytes += 300.0 * 1024 * pp.iterations;
      }
      tput[i++] = total_bytes / total_time;
    }
    table.add_row({apps::fmt("%.0f%%", loss * 100),
                   apps::fmt("%.0f", tput[0]), apps::fmt("%.0f", tput[1]),
                   apps::fmt("%+.0f%%", (tput[1] / tput[0] - 1.0) * 100)});
  }
  table.print();
  std::printf(
      "\nShape: the gain grows with the loss rate, because the probability\n"
      "that a retransmission is itself lost (forcing a 1s T3 under the\n"
      "strict rule) grows with it.\n");
  return 0;
}
