// Extension: Concurrent Multipath Transfer (paper §5). The paper points
// at Iyengar et al.'s CMT — simultaneous transfer over all of a
// multihomed association's paths — as the forthcoming way to exploit the
// testbed's three independent gigabit networks (and as an alternative to
// Open MPI's TEG striping). This bench measures what the paper could not
// yet: bulk MPI throughput with CMT on versus stock primary-path SCTP.
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Extension: Concurrent Multipath Transfer (CMT)",
         "paper §5 — striping across the testbed's 3 independent networks");

  apps::Table table({"Message size", "Primary-path (B/s)", "CMT (B/s)",
                     "CMT gain"});
  for (std::size_t sz : {std::size_t{30 * 1024}, std::size_t{131072},
                         std::size_t{220 * 1024}}) {
    double tput[2];
    int i = 0;
    for (bool cmt : {false, true}) {
      auto cfg = paper_config(core::TransportKind::kSctp, 0.0);
      cfg.interfaces = 3;  // the paper's three NICs per node
      cfg.sctp.cmt_enabled = cmt;
      apps::PingPongParams pp;
      pp.message_size = sz;
      pp.iterations = scaled(120, 25);
      tput[i++] = apps::run_pingpong(cfg, pp).throughput_Bps;
    }
    table.add_row({std::to_string(sz), apps::fmt("%.0f", tput[0]),
                   apps::fmt("%.0f", tput[1]),
                   apps::fmt("%+.0f%%", (tput[1] / tput[0] - 1.0) * 100)});
  }
  table.print();
  std::printf(
      "\nShape: CMT helps once a single message spans many chunks (the\n"
      "stripes run concurrently); per-chunk ordering and reassembly are\n"
      "untouched, so MPI semantics are preserved (§5's premise).\n");
  return 0;
}
