// Fig. 8: MPBench ping-pong throughput by message size under no loss,
// LAM_SCTP normalized to LAM_TCP. Expected shape: TCP ahead for small
// messages, SCTP ahead for large ones, crossover around 22 KiB.
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Figure 8: MPBench ping-pong, no loss",
         "paper Fig. 8 — throughput normalized to LAM_TCP; crossover ~22KB");

  const std::size_t sizes[] = {1,     64,    512,    2048,  8192,  16384,
                               22528, 32768, 49152,  65536, 98302, 131069};
  const int iters = scaled(200, 40);

  apps::Table table({"Message size (bytes)", "LAM_TCP (B/s)",
                     "LAM_SCTP (B/s)", "SCTP/TCP"});
  // Each (size, transport) cell is an independent simulation: run all 24
  // across worker threads (SCTPMPI_SERIAL=1 restores the serial order) and
  // assemble rows afterwards in the original order.
  constexpr std::size_t kTransports = 2;
  const core::TransportKind order[kTransports] = {core::TransportKind::kTcp,
                                                  core::TransportKind::kSctp};
  double tput[std::size(sizes)][kTransports];
  parallel_trials(std::size(sizes) * kTransports, [&](std::size_t i) {
    const std::size_t row = i / kTransports;
    const std::size_t col = i % kTransports;
    apps::PingPongParams pp;
    pp.message_size = sizes[row];
    pp.iterations = iters;
    tput[row][col] =
        apps::run_pingpong(paper_config(order[col], 0.0), pp).throughput_Bps;
  });
  for (std::size_t row = 0; row < std::size(sizes); ++row) {
    table.add_row({std::to_string(sizes[row]),
                   apps::fmt("%.0f", tput[row][0]),
                   apps::fmt("%.0f", tput[row][1]),
                   apps::fmt("%.3f", tput[row][1] / tput[row][0])});
  }
  table.print();
  std::printf(
      "\nPaper shape: ratio < 1 for small messages, crossover ~22 KiB,\n"
      "SCTP ahead (~1.1-1.2x) for large messages.\n");
  return 0;
}
