// Fig. 8: MPBench ping-pong throughput by message size under no loss,
// LAM_SCTP normalized to LAM_TCP. Expected shape: TCP ahead for small
// messages, SCTP ahead for large ones, crossover around 22 KiB.
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Figure 8: MPBench ping-pong, no loss",
         "paper Fig. 8 — throughput normalized to LAM_TCP; crossover ~22KB");

  const std::size_t sizes[] = {1,     64,    512,    2048,  8192,  16384,
                               22528, 32768, 49152,  65536, 98302, 131069};
  const int iters = scaled(200, 40);

  apps::Table table({"Message size (bytes)", "LAM_TCP (B/s)",
                     "LAM_SCTP (B/s)", "SCTP/TCP"});
  for (std::size_t sz : sizes) {
    double tput[2];
    int i = 0;
    for (auto tr : {core::TransportKind::kTcp, core::TransportKind::kSctp}) {
      apps::PingPongParams pp;
      pp.message_size = sz;
      pp.iterations = iters;
      tput[i++] = apps::run_pingpong(paper_config(tr, 0.0), pp).throughput_Bps;
    }
    table.add_row({std::to_string(sz), apps::fmt("%.0f", tput[0]),
                   apps::fmt("%.0f", tput[1]),
                   apps::fmt("%.3f", tput[1] / tput[0])});
  }
  table.print();
  std::printf(
      "\nPaper shape: ratio < 1 for small messages, crossover ~22 KiB,\n"
      "SCTP ahead (~1.1-1.2x) for large messages.\n");
  return 0;
}
