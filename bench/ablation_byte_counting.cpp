// Ablation: byte-counted vs ACK-counted congestion window growth — the
// first SCTP congestion-control advantage the paper lists in §4.1.1
// ("increase ... based on the number of bytes acknowledged and not on the
// number of acknowledgments received"). Toggling the SCTP stack to
// TCP-style ACK counting isolates that mechanism.
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Ablation: SCTP byte-counted vs ACK-counted cwnd growth",
         "paper §4.1.1 bullet 2 — recovery speed after loss");

  apps::Table table({"Loss", "Byte counting (B/s)", "ACK counting (B/s)",
                     "byte/ack"});
  for (double loss : {0.0, 0.01, 0.02}) {
    double tput[2];
    int i = 0;
    for (bool bc : {true, false}) {
      auto cfg = paper_config(core::TransportKind::kSctp, loss);
      cfg.sctp.byte_counting = bc;
      apps::PingPongParams pp;
      pp.message_size = 300 * 1024;
      pp.iterations = scaled(60, 15);
      tput[i++] = apps::run_pingpong(cfg, pp).throughput_Bps;
    }
    table.add_row({apps::fmt("%.0f%%", loss * 100),
                   apps::fmt("%.0f", tput[0]), apps::fmt("%.0f", tput[1]),
                   apps::fmt("%.2f", tput[0] / tput[1])});
  }
  table.print();
  std::printf(
      "\nShape: byte counting recovers the window faster after cuts, so\n"
      "its advantage shows under loss (it is the paper's explanation for\n"
      "part of SCTP's loss resilience).\n");
  return 0;
}
