// Micro-benchmarks of the discrete-event simulation core hot path:
//
//   event_churn    — self-rescheduling events through Simulator::schedule /
//                    step; the cost of one queue insert + pop + dispatch.
//   timer_churn    — Timer arm / re-arm / cancel cycles, the pattern every
//                    retransmission timer generates per segment.
//   packet_forward — packets traversing link -> switch -> link with the
//                    full serialization/propagation event machinery.
//
// Writes machine-readable results with --json PATH (BENCH_simcore.json);
// --quick scales runs to seconds for the `ctest -L perf` smoke label.
//
// kBaseline* constants pin the pre-rewrite core (std::priority_queue +
// tombstone sets + std::function callbacks, deep-copied vector payloads)
// measured on the reference container at RelWithDebInfo; the JSON reports
// current/baseline speedups so the perf trajectory is tracked per PR.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_common.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace sctpmpi;

// Pre-rewrite baseline (PR 2), RelWithDebInfo, reference container.
constexpr double kBaselineEventsPerSec = 5.14e6;
constexpr double kBaselineTimerOpsPerSec = 12.5e6;
constexpr double kBaselinePacketsPerSec = 2.68e6;

struct EventCtx {
  sim::Simulator* sim;
  std::uint64_t fired = 0;
  std::uint64_t scheduled = 0;
  std::uint64_t target = 0;
};

// 8-byte functor: fits every small-buffer callback representation, so the
// bench measures queue cost, not callback-capture cost.
struct Tick {
  EventCtx* c;
  void operator()() const {
    ++c->fired;
    if (c->scheduled < c->target) {
      ++c->scheduled;
      c->sim->schedule_after(1 + (c->fired & 63), Tick{c});
    }
  }
};

double bench_event_churn(std::uint64_t total, bench::BenchJson& out) {
  sim::Simulator sim;
  EventCtx ctx;
  ctx.sim = &sim;
  ctx.target = total;
  constexpr std::uint64_t kWindow = 4096;  // pending events at steady state
  for (std::uint64_t i = 0; i < kWindow && ctx.scheduled < total; ++i) {
    ++ctx.scheduled;
    sim.schedule_after(1 + (i & 63), Tick{&ctx});
  }
  const double t0 = bench::wall_seconds();
  sim.run();
  const double secs = bench::wall_seconds() - t0;
  const double rate = static_cast<double>(ctx.fired) / secs;
  out.metric("event_churn", "events", static_cast<double>(ctx.fired));
  out.metric("event_churn", "seconds", secs);
  out.metric("event_churn", "events_per_sec", rate);
  return rate;
}

double bench_timer_churn(std::uint64_t rounds, bench::BenchJson& out) {
  sim::Simulator sim;
  constexpr int kTimers = 64;  // one RTO timer per simulated connection
  int fires = 0;
  std::vector<std::unique_ptr<sim::Timer>> timers;
  timers.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(std::make_unique<sim::Timer>(sim, [&fires] { ++fires; }));
  }
  std::uint64_t ops = 0;
  const double t0 = bench::wall_seconds();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Arm everything, re-arm (deadline push-out, the per-ACK RTO restart
    // pattern), cancel half, then drain what remains.
    for (auto& t : timers) t->arm(1000 + (ops & 511));
    ops += kTimers;
    for (auto& t : timers) t->arm(2000 + (ops & 511));
    ops += kTimers;
    for (int i = 0; i < kTimers; i += 2) {
      timers[static_cast<std::size_t>(i)]->cancel();
    }
    ops += kTimers / 2;
    sim.run();
  }
  const double secs = bench::wall_seconds() - t0;
  const double rate = static_cast<double>(ops) / secs;
  out.metric("timer_churn", "ops", static_cast<double>(ops));
  out.metric("timer_churn", "fires", static_cast<double>(fires));
  out.metric("timer_churn", "seconds", secs);
  out.metric("timer_churn", "ops_per_sec", rate);
  return rate;
}

double bench_packet_forward(std::uint64_t total, bench::BenchJson& out) {
  sim::Simulator sim;
  net::LinkParams params;  // 1 Gb/s, 5 us, drop-tail 256
  net::Link up(sim, params, sim::Rng(7));
  net::Link down(sim, params, sim::Rng(8));
  net::Switch sw;
  const net::IpAddr dst = net::make_addr(0, 1);
  sw.add_route(dst, &down);
  up.set_sink([&sw](net::Packet&& p) { sw.forward(std::move(p)); });

  net::Packet tmpl;
  tmpl.src = net::make_addr(0, 0);
  tmpl.dst = dst;
  tmpl.payload = std::vector<std::byte>(1452, std::byte{0x5A});
  const std::size_t payload_bytes = 1452;

  std::uint64_t delivered = 0;
  std::uint64_t injected = 0;
  auto inject = [&] {
    ++injected;
    net::Packet p = tmpl;
    p.uid = injected;
    up.enqueue(std::move(p));
  };
  down.set_sink([&](net::Packet&&) {
    ++delivered;
    if (injected < total) inject();
  });
  constexpr std::uint64_t kInFlight = 64;
  const double t0 = bench::wall_seconds();
  for (std::uint64_t i = 0; i < kInFlight && injected < total; ++i) inject();
  sim.run();
  const double secs = bench::wall_seconds() - t0;
  const double rate = static_cast<double>(delivered) / secs;
  out.metric("packet_forward", "packets", static_cast<double>(delivered));
  out.metric("packet_forward", "seconds", secs);
  out.metric("packet_forward", "packets_per_sec", rate);
  out.metric("packet_forward", "payload_bytes_per_sec",
             rate * static_cast<double>(payload_bytes));
  return rate;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::BenchJson out("simcore");
  const std::uint64_t events = quick ? 400'000 : 8'000'000;
  const std::uint64_t rounds = quick ? 2'000 : 40'000;
  const std::uint64_t packets = quick ? 100'000 : 2'000'000;

  const double ev = bench_event_churn(events, out);
  const double ti = bench_timer_churn(rounds, out);
  const double pk = bench_packet_forward(packets, out);

  out.metric("baseline_pre_rewrite", "events_per_sec", kBaselineEventsPerSec);
  out.metric("baseline_pre_rewrite", "timer_ops_per_sec",
             kBaselineTimerOpsPerSec);
  out.metric("baseline_pre_rewrite", "packets_per_sec",
             kBaselinePacketsPerSec);
  if (kBaselineEventsPerSec > 0) {
    out.metric("speedup_vs_baseline", "events_per_sec",
               ev / kBaselineEventsPerSec);
    out.metric("speedup_vs_baseline", "timer_ops_per_sec",
               ti / kBaselineTimerOpsPerSec);
    out.metric("speedup_vs_baseline", "packets_per_sec",
               pk / kBaselinePacketsPerSec);
  }

  std::printf("%s", out.str().c_str());
  if (!json_path.empty() && !out.write(json_path)) return 1;
  return 0;
}
