// Fig. 11: Bulk Processor Farm with Fanout=10 — ten tasks per request
// create more opportunity for head-of-line blocking in LAM_TCP. Expected
// shape: TCP's penalty grows versus Fig. 10, especially for long tasks.
#include "apps/farm.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Figure 11: Bulk Processor Farm, Fanout=10",
         "paper Fig. 11 — total run time, short/long tasks, 0/1/2% loss");

  for (bool long_tasks : {false, true}) {
    apps::FarmParams fp;
    fp.task_size = long_tasks ? 300 * 1024 : 30 * 1024;
    fp.fanout = 10;
    fp.num_tasks = scaled(10'000, 500);
    // Long-task cells use 3,000 tasks to bound simulation cost; the
    // paper's shape (relative run times) is scale-invariant here.
    if (long_tasks) fp.num_tasks = scaled(1'500, 200);
    // Per-task processing time calibrated so the 0%-loss runtimes land
    // near the paper's absolute numbers (10,000 tasks on 7 workers in
    // ~6-9s short / ~80s long): the farm is compute-bound when healthy.
    fp.work_per_task =
        long_tasks ? 55 * sim::kMillisecond : 6 * sim::kMillisecond;
    std::printf("--- %s tasks (%zu bytes, %d tasks) ---\n",
                long_tasks ? "long" : "short", fp.task_size, fp.num_tasks);
    apps::Table table({"Loss", "LAM_SCTP (s)", "LAM_TCP (s)", "TCP/SCTP"});
    // The paper ran the farm six times per cell and averaged; a single
    // tail retransmission timeout is large relative to a run, so we
    // average over seeds too.
    const std::uint64_t seeds[] = {2005, 2006};
    for (double loss : {0.0, 0.01, 0.02}) {
      double rt[2];
      int i = 0;
      for (auto tr :
           {core::TransportKind::kSctp, core::TransportKind::kTcp}) {
        double total = 0;
        for (std::uint64_t seed : seeds) {
          total += apps::run_farm(paper_config(tr, loss, seed), fp)
                       .total_runtime_seconds;
        }
        rt[i++] = total / std::size(seeds);
      }
      table.add_row({apps::fmt("%.0f%%", loss * 100),
                     apps::fmt("%.1f", rt[0]), apps::fmt("%.1f", rt[1]),
                     apps::fmt("%.2fx", rt[1] / rt[0])});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper (10,000 tasks): short 8.7/6.2 -> 16.0/88.1 -> 11.7/154.7 s;\n"
      "long 79/129 -> 786/3103 -> 1585/6414 s (SCTP/TCP at 0/1/2%%).\n"
      "Shape: with Fanout=10 TCP's long-task penalty grows (~4x).\n");
  return 0;
}
