// Ablation: multihoming failover (paper §3.5.1 — excluded from the paper's
// measured runs but called out as a key reliability feature). Ping-pong on
// a 3-interface cluster; the primary network is severed mid-run and the
// association must fail over to an alternate path instead of dying.
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"
#include "core/world.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Ablation: SCTP multihoming failover",
         "paper §3.5.1 — transparent failover to an alternate path");

  // Build a 2-rank world with 3 interfaces and run a long ping-pong while
  // killing the primary subnet partway through.
  auto cfg = paper_config(core::TransportKind::kSctp, 0.0);
  cfg.ranks = 2;
  cfg.interfaces = 3;
  cfg.sctp.path_max_retrans = 2;  // fail over quickly

  core::World world(cfg);
  const int iters = scaled(400, 100);
  const std::size_t sz = 30 * 1024;
  double total = 0, before = 0, after = 0;
  double failover_time = 0, steady_iter = 0;
  int failover_iter = -1;

  // Sever subnet 0 (the primary) a third of the way into the run.
  bool severed = false;

  world.run([&](core::Mpi& mpi) {
    std::vector<std::byte> buf(sz, std::byte{1});
    std::vector<std::byte> rx(sz);
    const int peer = 1 - mpi.rank();
    const double t0 = mpi.wtime();
    double t_sever = 0, t_iter0 = t0;
    for (int i = 0; i < iters; ++i) {
      if (mpi.rank() == 0) {
        mpi.send(buf, peer, 0);
        mpi.recv(rx, peer, 0);
      } else {
        mpi.recv(rx, peer, 0);
        mpi.send(buf, peer, 0);
      }
      if (mpi.rank() == 0) {
        const double t_done = mpi.wtime();
        if (severed && failover_time == 0) {
          // First round trip completed over the alternate path: the gap
          // from the sever to here is the observable failover stall.
          failover_time = t_done - t_sever;
        } else if (!severed) {
          steady_iter = t_done - t_iter0;  // latest pre-fault iteration
        }
        t_iter0 = t_done;
      }
      if (i == iters / 3 && mpi.rank() == 0 && !severed) {
        severed = true;
        t_sever = mpi.wtime();
        world.cluster().set_subnet_loss(0, 1.0);
        failover_iter = i;
      }
    }
    if (mpi.rank() == 0) {
      total = mpi.wtime() - t0;
      before = t_sever - t0;
      after = total - before;
    }
  });

  const double mb = static_cast<double>(sz) * 2.0 / (1024.0 * 1024.0);
  std::printf("Completed %d iterations of %zu-byte ping-pong.\n", iters, sz);
  std::printf("Primary subnet severed at iteration %d.\n", failover_iter);
  std::printf("Time before failure: %.3f s; time after (incl. failover "
              "stall + alternate path): %.3f s; total %.3f s\n",
              before, after, total);
  std::printf("Throughput before: %.1f MB/s; after (incl. stall): %.1f "
              "MB/s\n",
              mb * (failover_iter + 1) / before,
              mb * (iters - failover_iter - 1) / after);
  std::printf("Failover time: %.3f s from sever to the first round trip on "
              "the alternate path (steady-state iteration: %.6f s)\n",
              failover_time, steady_iter);
  std::printf(
      "\nShape: the run COMPLETES despite the dead primary network —\n"
      "a single-homed transport would have aborted; the failover costs a\n"
      "few retransmission timeouts (measured above), then full speed\n"
      "resumes on the alternate path (paper §3.5.1).\n");
  // Stock timers: the stall is a few doublings of the 3 s initial RTO
  // before path_max_retrans trips (~13 s) — well under a single-homed
  // transport's fate (never finishing at all).
  if (failover_time <= 0 || failover_time > 30.0) {
    std::fprintf(stderr, "self-check FAILED: failover took %.3f s "
                 "(want (0, 30] s)\n", failover_time);
    return 1;
  }
  return 0;
}
