// Shared plumbing for the reproduction benches: paper-standard world
// configuration (8 ranks, 1 Gb/s links, 220 KiB buffers, Nagle off, SACK
// on, CRC32c off — §4 settings 1-5), a fast-mode switch, machine-readable
// BENCH_*.json result emission, and a thread pool for independent trials.
//
// Set SCTPMPI_FAST=1 to scale workloads down (~10x) for quick iteration;
// the default reproduces the paper's parameters. Set SCTPMPI_SERIAL=1 to
// force multi-trial drivers onto one thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/report.hpp"
#include "core/world.hpp"

namespace sctpmpi::bench {

inline bool fast_mode() {
  const char* v = std::getenv("SCTPMPI_FAST");
  return v != nullptr && v[0] != '0';
}

/// Scales an iteration/task count down in fast mode.
inline int scaled(int full, int fast) { return fast_mode() ? fast : full; }

/// Paper-standard configuration (§4): 8 nodes, Dummynet loss as given.
inline core::WorldConfig paper_config(core::TransportKind transport,
                                      double loss, std::uint64_t seed = 2005) {
  core::WorldConfig cfg;
  cfg.ranks = 8;
  cfg.transport = transport;
  cfg.loss = loss;
  cfg.seed = seed;
  return cfg;
}

inline void banner(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  if (fast_mode()) std::printf("(FAST mode: workloads scaled down)\n");
  std::printf("\n");
}

/// Wall-clock seconds since an arbitrary epoch, for measuring bench runs.
inline double wall_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accumulates named results, each a flat set of numeric metrics, and
/// serializes them as a BENCH_*.json document:
///
///   {"bench": "simcore",
///    "results": {"event_churn": {"events_per_sec": 1.2e7, ...}, ...}}
///
/// Insertion order is preserved so diffs between runs stay readable.
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) : name_(std::move(bench_name)) {}

  void metric(const std::string& result, const std::string& key,
              double value) {
    for (auto& [rname, metrics] : results_) {
      if (rname == result) {
        metrics.emplace_back(key, value);
        return;
      }
    }
    results_.push_back({result, {{key, value}}});
  }

  std::string str() const {
    std::string out = "{\n  \"bench\": \"" + name_ + "\",\n  \"results\": {";
    bool first_result = true;
    for (const auto& [rname, metrics] : results_) {
      out += first_result ? "\n" : ",\n";
      first_result = false;
      out += "    \"" + rname + "\": {";
      bool first_metric = true;
      for (const auto& [key, value] : metrics) {
        out += first_metric ? "" : ", ";
        first_metric = false;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "\"%s\": %.8g", key.c_str(), value);
        out += buf;
      }
      out += "}";
    }
    out += "\n  }\n}\n";
    return out;
  }

  /// Writes the document to `path`. Returns false (and prints) on failure.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return false;
    }
    const std::string body = str();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>>
      results_;
};

/// Runs `fn(0..n-1)` across a pool of worker threads. Each trial must be
/// self-contained (its own Simulator/World); results keyed by index stay
/// deterministic regardless of scheduling. SCTPMPI_SERIAL=1 forces one
/// worker for debugging.
inline void parallel_trials(std::size_t n,
                            const std::function<void(std::size_t)>& fn,
                            unsigned max_threads = 0) {
  unsigned workers = max_threads != 0 ? max_threads
                                      : std::thread::hardware_concurrency();
  if (workers == 0) workers = 1;
  const char* serial = std::getenv("SCTPMPI_SERIAL");
  if (serial != nullptr && serial[0] != '0') workers = 1;
  if (workers > n) workers = static_cast<unsigned>(n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (auto& t : pool) t.join();
}

}  // namespace sctpmpi::bench
