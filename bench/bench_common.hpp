// Shared plumbing for the reproduction benches: paper-standard world
// configuration (8 ranks, 1 Gb/s links, 220 KiB buffers, Nagle off, SACK
// on, CRC32c off — §4 settings 1-5) and a fast-mode switch.
//
// Set SCTPMPI_FAST=1 to scale workloads down (~10x) for quick iteration;
// the default reproduces the paper's parameters.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "apps/report.hpp"
#include "core/world.hpp"

namespace sctpmpi::bench {

inline bool fast_mode() {
  const char* v = std::getenv("SCTPMPI_FAST");
  return v != nullptr && v[0] != '0';
}

/// Scales an iteration/task count down in fast mode.
inline int scaled(int full, int fast) { return fast_mode() ? fast : full; }

/// Paper-standard configuration (§4): 8 nodes, Dummynet loss as given.
inline core::WorldConfig paper_config(core::TransportKind transport,
                                      double loss, std::uint64_t seed = 2005) {
  core::WorldConfig cfg;
  cfg.ranks = 8;
  cfg.transport = transport;
  cfg.loss = loss;
  cfg.seed = seed;
  return cfg;
}

inline void banner(const char* title, const char* paper_ref) {
  std::printf("\n=== %s ===\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  if (fast_mode()) std::printf("(FAST mode: workloads scaled down)\n");
  std::printf("\n");
}

}  // namespace sctpmpi::bench
