// Google-benchmark micro-benchmarks of the transport building blocks:
// CRC32c, chunk/segment codecs, the receiver TSN map, stream reassembly
// and the ring buffer. These bound the simulator's own costs and document
// the relative price of SCTP's wire format versus TCP's.
#include <benchmark/benchmark.h>

#include <vector>

#include "net/ring_buffer.hpp"
#include "sctp/chunk.hpp"
#include "sctp/crc32c.hpp"
#include "sctp/streams.hpp"
#include "sctp/tsn_map.hpp"
#include "tcp/wire.hpp"

namespace {

using namespace sctpmpi;

void BM_Crc32c(benchmark::State& state) {
  std::vector<std::byte> data(static_cast<std::size_t>(state.range(0)),
                              std::byte{0x5A});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sctp::crc32c(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(1452)->Arg(65536);

void BM_TcpSegmentEncode(benchmark::State& state) {
  tcp::Segment seg;
  seg.ack_flag = true;
  seg.sacks = {{100, 200}, {300, 400}};
  seg.payload.assign(static_cast<std::size_t>(state.range(0)),
                     std::byte{0x7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(seg.encode());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TcpSegmentEncode)->Arg(64)->Arg(1460);

void BM_TcpSegmentDecode(benchmark::State& state) {
  tcp::Segment seg;
  seg.ack_flag = true;
  seg.payload.assign(1460, std::byte{0x7});
  auto wire = seg.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tcp::Segment::decode(wire));
  }
}
BENCHMARK(BM_TcpSegmentDecode);

void BM_SctpPacketEncode(benchmark::State& state) {
  sctp::SctpPacket pkt;
  sctp::DataChunk d;
  d.begin = d.end = true;
  d.tsn = 42;
  d.payload.assign(static_cast<std::size_t>(state.range(0)), std::byte{0x7});
  pkt.chunks.push_back(sctp::TypedChunk{sctp::ChunkType::kData, d});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pkt.encode(false));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SctpPacketEncode)->Arg(64)->Arg(1452);

void BM_SctpPacketDecode(benchmark::State& state) {
  sctp::SctpPacket pkt;
  sctp::SackChunk s;
  s.cum_tsn_ack = 100;
  s.gaps = {{2, 3}, {5, 9}};
  pkt.chunks.push_back(sctp::TypedChunk{sctp::ChunkType::kSack, s});
  sctp::DataChunk d;
  d.begin = d.end = true;
  d.payload.assign(1452, std::byte{0x7});
  pkt.chunks.push_back(sctp::TypedChunk{sctp::ChunkType::kData, d});
  auto wire = pkt.encode(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sctp::SctpPacket::decode(wire, false));
  }
}
BENCHMARK(BM_SctpPacketDecode);

void BM_TsnMapInOrder(benchmark::State& state) {
  for (auto _ : state) {
    sctp::TsnMap map(1);
    for (std::uint32_t t = 1; t <= 256; ++t) map.record(t);
    benchmark::DoNotOptimize(map.cum_tsn());
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TsnMapInOrder);

void BM_TsnMapWithGaps(benchmark::State& state) {
  for (auto _ : state) {
    sctp::TsnMap map(1);
    for (std::uint32_t t = 1; t <= 256; t += 2) map.record(t);
    benchmark::DoNotOptimize(map.gap_blocks());
    for (std::uint32_t t = 2; t <= 256; t += 2) map.record(t);
  }
  state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_TsnMapWithGaps);

void BM_StreamReassembly(benchmark::State& state) {
  for (auto _ : state) {
    sctp::InboundStreams in(10);
    std::uint32_t tsn = 1;
    for (std::uint16_t ssn = 0; ssn < 16; ++ssn) {
      for (int frag = 0; frag < 4; ++frag) {
        sctp::DataChunk c;
        c.tsn = tsn++;
        c.sid = ssn % 10;
        c.ssn = ssn / 10;
        c.begin = frag == 0;
        c.end = frag == 3;
        c.payload.assign(1452, std::byte{1});
        in.accept(c);
      }
    }
    while (in.pop().has_value()) {
    }
  }
}
BENCHMARK(BM_StreamReassembly);

void BM_RingBuffer(benchmark::State& state) {
  net::RingBuffer rb(220 * 1024);
  std::vector<std::byte> chunk(1460, std::byte{2});
  std::vector<std::byte> out(1460);
  for (auto _ : state) {
    rb.write(chunk);
    rb.read(out);
  }
  state.SetBytesProcessed(state.iterations() * 1460);
}
BENCHMARK(BM_RingBuffer);

}  // namespace

BENCHMARK_MAIN();
