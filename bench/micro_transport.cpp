// Micro-benchmarks of the transport datapath hot loops — the paths every
// loss experiment (Table 1, Fig. 10-12) hammers per packet:
//
//   tsn_record          — receiver TSN accounting (TsnMap::record) over a
//                         2%-loss arrival stream with retransmit reordering.
//   sack_generation     — gap-ack block construction per SACK while holes
//                         are open (the paper's "unlimited gap blocks"
//                         advantage is exactly the structure this pays for).
//   gap_ack_processing  — sender retransmission scoreboard: cumulative-ack
//                         retirement, gap-span sacked marking, and the
//                         missing-report fast-retransmit scan.
//   reassembly_under_loss — per-stream fragment reassembly with displaced
//                         fragments across 10 streams.
//   wire_codec          — CRC32c and packet/segment encode-decode, bounding
//                         the serialization share of the per-packet cost.
//   e2e_*               — wall-clock for the two paper drivers most
//                         sensitive to these paths, at 2% loss.
//
// The *_set_baseline / *_map_baseline results run the pre-rewrite
// node-based structures (std::set TSN map, std::map inflight scoreboard)
// on the identical workload, kept live in this file so the JSON reports a
// measured — not remembered — speedup. e2e baselines are pinned constants
// measured immediately before the rewrite on the same machine/config.
//
// Writes machine-readable results with --json PATH (BENCH_transport.json);
// --quick scales runs to seconds for the `ctest -L perf` smoke label.
#include <array>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/farm.hpp"
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"
#include "net/seq_ranges.hpp"
#include "sctp/crc32c.hpp"
#include "sctp/streams.hpp"
#include "sctp/tsn_map.hpp"
#include "tcp/wire.hpp"

namespace {

using namespace sctpmpi;

// Pre-rewrite end-to-end wall-clock (PR 2 code base), RelWithDebInfo,
// measured with this harness at the --quick workload sizes (300 ping-pong
// iterations, 1500 farm tasks) and stored per iteration/task so the
// comparison scales to either mode's workload.
constexpr double kBaselinePingpongSctpWallPerIter = 0.0973 / 300;  // 2% loss
constexpr double kBaselinePingpongTcpWallPerIter = 0.1570 / 300;
constexpr double kBaselineFarmSctpWallPerTask = 0.2444 / 1500;
constexpr double kBaselineFarmTcpWallPerTask = 0.2670 / 1500;

// ---------------------------------------------------------------------------
// Deterministic arrival workload: TSNs first..first+n-1 in order, except a
// 1-in-`loss_denom` fraction arrives `rtx_window` slots late (a retransmit
// after ~1 RTT of a full-window flight) and a 1-in-`dup_denom` fraction is
// delivered twice (network duplication). The same stream feeds the old and
// the new structures.
// ---------------------------------------------------------------------------

struct Lcg {
  std::uint64_t s;
  std::uint32_t next() {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(s >> 33);
  }
};

std::vector<std::uint32_t> arrival_sequence(std::uint32_t first_tsn,
                                            std::size_t n,
                                            unsigned loss_denom = 50,
                                            unsigned rtx_window = 128,
                                            unsigned dup_denom = 400) {
  Lcg rng{0x2005ULL ^ first_tsn};
  std::vector<std::uint32_t> out;
  out.reserve(n + n / 64);
  std::deque<std::pair<std::size_t, std::uint32_t>> rtx;  // (due slot, tsn)
  std::size_t slot = 0;
  for (std::size_t i = 0; i < n; ++i) {
    while (!rtx.empty() && rtx.front().first <= slot) {
      out.push_back(rtx.front().second);
      rtx.pop_front();
      ++slot;
    }
    const std::uint32_t tsn = first_tsn + static_cast<std::uint32_t>(i);
    const std::uint32_t r = rng.next();
    if (r % loss_denom == 0) {
      rtx.emplace_back(slot + rtx_window, tsn);
    } else {
      out.push_back(tsn);
      ++slot;
      if (r % dup_denom == 1) out.push_back(tsn);  // duplicated delivery
    }
  }
  while (!rtx.empty()) {
    out.push_back(rtx.front().second);
    rtx.pop_front();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Reference model: the pre-rewrite std::set-based TSN map (PR 0-2 code),
// kept verbatim so the speedup in the JSON is measured on today's compiler
// and machine rather than pinned from a stale run.
// ---------------------------------------------------------------------------

class LegacySetTsnMap {
 public:
  explicit LegacySetTsnMap(std::uint32_t initial_tsn)
      : cum_tsn_(initial_tsn - 1) {}

  bool record(std::uint32_t tsn) {
    if (net::seq_leq(tsn, cum_tsn_)) {
      duplicates_.push_back(tsn);
      return false;
    }
    if (tsn == cum_tsn_ + 1) {
      cum_tsn_ = tsn;
      auto it = pending_.begin();
      while (it != pending_.end() && *it == cum_tsn_ + 1) {
        cum_tsn_ = *it;
        it = pending_.erase(it);
      }
      return true;
    }
    auto [_, inserted] = pending_.insert(tsn);
    if (!inserted) {
      duplicates_.push_back(tsn);
      return false;
    }
    return true;
  }

  std::uint32_t cum_tsn() const { return cum_tsn_; }
  bool has_gaps() const { return !pending_.empty(); }

  std::vector<sctp::GapBlock> gap_blocks() const {
    std::vector<sctp::GapBlock> blocks;
    std::uint32_t run_start = 0, run_end = 0;
    bool in_run = false;
    for (std::uint32_t tsn : pending_) {
      if (in_run && tsn == run_end + 1) {
        run_end = tsn;
        continue;
      }
      if (in_run) {
        blocks.push_back(
            sctp::GapBlock{static_cast<std::uint16_t>(run_start - cum_tsn_),
                           static_cast<std::uint16_t>(run_end - cum_tsn_)});
      }
      run_start = run_end = tsn;
      in_run = true;
    }
    if (in_run) {
      blocks.push_back(
          sctp::GapBlock{static_cast<std::uint16_t>(run_start - cum_tsn_),
                         static_cast<std::uint16_t>(run_end - cum_tsn_)});
    }
    return blocks;
  }

  std::vector<std::uint32_t> take_duplicates() {
    std::vector<std::uint32_t> out;
    out.swap(duplicates_);
    return out;
  }

 private:
  std::uint32_t cum_tsn_;
  std::set<std::uint32_t, sctp::TsnLess> pending_;
  std::vector<std::uint32_t> duplicates_;
};

// First TSN chosen so every workload crosses the 2^32 wrap mid-run.
constexpr std::uint32_t kFirstTsn = 0xFFFFFF00u;

template <typename Map>
double run_tsn_record(const std::vector<std::uint32_t>& arrivals) {
  Map map(kFirstTsn);
  std::uint64_t sink = 0;
  const double t0 = bench::wall_seconds();
  for (std::uint32_t tsn : arrivals) sink += map.record(tsn) ? 1 : 0;
  const double secs = bench::wall_seconds() - t0;
  sink += map.cum_tsn();
  if (sink == 0) std::printf("impossible\n");  // keep the loop observable
  (void)map.take_duplicates();
  return secs;
}

template <typename Map>
double run_sack_generation(const std::vector<std::uint32_t>& arrivals,
                           std::uint64_t* sacks_out,
                           std::uint64_t* entries_out) {
  // Per-arrival SACK policy mirroring the stack's defaults: immediate SACK
  // while a gap is open (KAME behaviour, immediate_sack_on_gap), otherwise
  // every 2nd packet (sack_every_n_packets).
  Map map(kFirstTsn);
  std::uint64_t sacks = 0, entries = 0, since_sack = 0;
  const double t0 = bench::wall_seconds();
  for (std::uint32_t tsn : arrivals) {
    map.record(tsn);
    ++since_sack;
    if (map.has_gaps() || since_sack >= 2) {
      entries += map.gap_blocks().size();
      entries += map.take_duplicates().size();
      ++sacks;
      since_sack = 0;
    }
  }
  const double secs = bench::wall_seconds() - t0;
  *sacks_out = sacks;
  *entries_out = entries;
  return secs;
}

// ---------------------------------------------------------------------------
// Sender scoreboard workload: a steady window of W chunks in flight; every
// SACK retires 4 from the front, reports two gap blocks (the holes of an
// ongoing recovery), triggers the missing-report scan, and the window
// refills. Identical logical operations run against the pre-rewrite
// std::map scoreboard and the indexed circular queue.
// ---------------------------------------------------------------------------

struct BenchChunk {
  // Stand-in for Association::OutChunk: a payload-sized body plus the
  // per-chunk retransmission bookkeeping the SACK loops touch.
  std::array<std::byte, 96> body{};
  std::uint64_t sent_time = 0;
  unsigned tx_count = 1;
  unsigned missing_reports = 0;
  bool sacked = false;
  bool marked_rtx = false;
};

constexpr std::size_t kWindowChunks = 150;  // ~220 KiB / 1452 B
constexpr std::size_t kCumPerSack = 4;

struct MapScoreboard {
  std::map<std::uint32_t, BenchChunk, sctp::TsnLess> inflight;
  void push(std::uint32_t tsn) { inflight.emplace(tsn, BenchChunk{}); }
  std::size_t pop_cum(std::uint32_t cum) {
    std::size_t n = 0;
    while (!inflight.empty() && !net::seq_gt(inflight.begin()->first, cum)) {
      inflight.erase(inflight.begin());
      ++n;
    }
    return n;
  }
  std::size_t mark_span(std::uint32_t lo, std::uint32_t hi) {
    std::size_t touched = 0;
    for (auto it = inflight.lower_bound(lo);
         it != inflight.end() && net::seq_leq(it->first, hi); ++it) {
      if (!it->second.sacked) it->second.sacked = true;
      ++touched;
    }
    return touched;
  }
  std::size_t missing_scan(std::uint32_t highest_sacked) {
    std::size_t reports = 0;
    for (auto& [tsn, oc] : inflight) {
      if (!net::seq_lt(tsn, highest_sacked)) break;
      if (!oc.sacked && !oc.marked_rtx) {
        ++oc.missing_reports;
        ++reports;
      }
    }
    return reports;
  }
};

struct RingScoreboard {
  net::SeqIndexedQueue<BenchChunk> inflight;
  void push(std::uint32_t tsn) { inflight.push_back(tsn, BenchChunk{}); }
  std::size_t pop_cum(std::uint32_t cum) {
    std::size_t n = 0;
    while (!inflight.empty() && !net::seq_gt(inflight.base(), cum)) {
      inflight.pop_front();
      ++n;
    }
    return n;
  }
  std::size_t mark_span(std::uint32_t lo, std::uint32_t hi) {
    std::size_t touched = 0;
    std::ptrdiff_t start = net::seq_diff(lo, inflight.base());
    if (start < 0) start = 0;
    for (std::size_t i = static_cast<std::size_t>(start);
         i < inflight.size() && net::seq_leq(inflight.key_at(i), hi); ++i) {
      BenchChunk& oc = inflight.at_offset(i);
      if (!oc.sacked) oc.sacked = true;
      ++touched;
    }
    return touched;
  }
  std::size_t missing_scan(std::uint32_t highest_sacked) {
    std::size_t reports = 0;
    for (std::size_t i = 0; i < inflight.size(); ++i) {
      if (!net::seq_lt(inflight.key_at(i), highest_sacked)) break;
      BenchChunk& oc = inflight.at_offset(i);
      if (!oc.sacked && !oc.marked_rtx) {
        ++oc.missing_reports;
        ++reports;
      }
    }
    return reports;
  }
};

template <typename Scoreboard>
double run_gap_ack(std::uint64_t rounds, std::uint64_t* touched_out) {
  Scoreboard sb;
  std::uint32_t next_tsn = kFirstTsn;
  for (std::size_t i = 0; i < kWindowChunks; ++i) sb.push(next_tsn++);
  std::uint64_t touched = 0;
  const double t0 = bench::wall_seconds();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const std::uint32_t base =
        next_tsn - static_cast<std::uint32_t>(kWindowChunks);
    const std::uint32_t cum = base + kCumPerSack - 1;
    touched += sb.pop_cum(cum);
    // Two gap blocks with small leading holes — the shape of a window in
    // fast recovery with two outstanding losses.
    const std::uint32_t b1_lo = cum + 3, b1_hi = cum + 60;
    const std::uint32_t b2_lo = cum + 64;
    const std::uint32_t b2_hi =
        base + static_cast<std::uint32_t>(kWindowChunks - kCumPerSack) - 2;
    touched += sb.mark_span(b1_lo, b1_hi);
    touched += sb.mark_span(b2_lo, b2_hi);
    touched += sb.missing_scan(b2_hi);
    for (std::size_t i = 0; i < kCumPerSack; ++i) sb.push(next_tsn++);
  }
  const double secs = bench::wall_seconds() - t0;
  *touched_out = touched;
  return secs;
}

// ---------------------------------------------------------------------------
// Reassembly under loss: 4-fragment messages round-robined over 10 streams
// with the same displaced-arrival pattern, through InboundStreams.
// ---------------------------------------------------------------------------

double run_reassembly(std::size_t messages, std::uint64_t* delivered_out) {
  constexpr std::uint16_t kStreams = 10;
  constexpr std::size_t kFragsPerMsg = 4;
  const std::size_t chunks = messages * kFragsPerMsg;
  const std::vector<std::uint32_t> order =
      arrival_sequence(kFirstTsn, chunks, 50, 16, 0x7FFFFFFFu);

  std::vector<sctp::DataChunk> by_offset(chunks);
  for (std::size_t i = 0; i < chunks; ++i) {
    const std::size_t msg = i / kFragsPerMsg;
    const std::size_t frag = i % kFragsPerMsg;
    sctp::DataChunk& c = by_offset[i];
    c.tsn = kFirstTsn + static_cast<std::uint32_t>(i);
    c.sid = static_cast<std::uint16_t>(msg % kStreams);
    c.ssn = static_cast<std::uint16_t>(msg / kStreams);
    c.begin = frag == 0;
    c.end = frag == kFragsPerMsg - 1;
    c.payload = sctpmpi::net::SliceChain::adopt(std::vector<std::byte>(256, std::byte{0x5A}));
  }

  sctp::InboundStreams in(kStreams);
  std::uint64_t delivered = 0;
  std::uint64_t bytes = 0;
  const double t0 = bench::wall_seconds();
  for (std::uint32_t tsn : order) {
    in.accept(by_offset[tsn - kFirstTsn]);
    while (auto msg = in.pop()) {
      ++delivered;
      bytes += msg->data.size();
      in.on_consumed(msg->data.size());
    }
  }
  const double secs = bench::wall_seconds() - t0;
  if (bytes == 0) std::printf("impossible\n");
  *delivered_out = delivered;
  return secs;
}

// ---------------------------------------------------------------------------
// Wire codecs (kept from the original google-benchmark harness so the
// serialization share of per-packet cost stays on the record).
// ---------------------------------------------------------------------------

void bench_wire_codec(std::uint64_t rounds, bench::BenchJson& out) {
  std::vector<std::byte> crc_buf(1452, std::byte{0x5A});
  sctp::SctpPacket pkt;
  sctp::SackChunk sack;
  sack.cum_tsn_ack = 100;
  sack.gaps = {{2, 3}, {5, 9}};
  pkt.chunks.push_back(sctp::TypedChunk{sctp::ChunkType::kSack, sack});
  sctp::DataChunk d;
  d.begin = d.end = true;
  d.tsn = 42;
  d.payload = sctpmpi::net::SliceChain::adopt(std::vector<std::byte>(1452, std::byte{0x7}));
  pkt.chunks.push_back(sctp::TypedChunk{sctp::ChunkType::kData, d});
  tcp::Segment seg;
  seg.ack_flag = true;
  seg.sacks = {{100, 200}, {300, 400}};
  seg.payload =
      net::SliceChain::adopt(std::vector<std::byte>(1460, std::byte{0x7}));

  std::uint64_t sink = 0;
  double t0 = bench::wall_seconds();
  for (std::uint64_t i = 0; i < rounds; ++i) sink += sctp::crc32c(crc_buf);
  out.metric("wire_codec", "crc32c_1452B_per_sec",
             static_cast<double>(rounds) / (bench::wall_seconds() - t0));

  t0 = bench::wall_seconds();
  for (std::uint64_t i = 0; i < rounds; ++i) {
    auto wire = pkt.encode(false);
    sink += wire.size();
    auto back = sctp::SctpPacket::decode(wire, false);
    sink += back.has_value() ? back->chunks.size() : 0;
  }
  out.metric("wire_codec", "sctp_encode_decode_per_sec",
             static_cast<double>(rounds) / (bench::wall_seconds() - t0));

  t0 = bench::wall_seconds();
  for (std::uint64_t i = 0; i < rounds; ++i) {
    auto wire = seg.encode();
    sink += wire.size();
    auto back = tcp::Segment::decode(wire);
    sink += back.payload.size();
  }
  out.metric("wire_codec", "tcp_encode_decode_per_sec",
             static_cast<double>(rounds) / (bench::wall_seconds() - t0));
  if (sink == 0) std::printf("impossible\n");
}

// ---------------------------------------------------------------------------
// End-to-end: the two paper drivers that live on these paths, at 2% loss.
// Simulated results are recorded alongside wall time as a determinism
// canary — they must not move when only containers change.
// ---------------------------------------------------------------------------

void bench_e2e(bool quick, bench::BenchJson& out, double* pp_wall,
               double* farm_wall) {
  for (auto tr : {core::TransportKind::kSctp, core::TransportKind::kTcp}) {
    const bool is_sctp = tr == core::TransportKind::kSctp;
    apps::PingPongParams pp;
    pp.message_size = 30 * 1024;
    pp.iterations = quick ? 300 : 1000;
    pp.warmup = 3;
    // Two passes, keep the faster: wall time on these short runs swings
    // with cache state, and the before/after comparison needs the floor.
    double pp_secs = 1e30;
    apps::PingPongResult pr;
    for (int pass = 0; pass < 2; ++pass) {
      const double t0 = bench::wall_seconds();
      pr = apps::run_pingpong(bench::paper_config(tr, 0.02, 2005), pp);
      const double secs = bench::wall_seconds() - t0;
      if (secs < pp_secs) pp_secs = secs;
    }
    const char* name = is_sctp ? "e2e_table1_pingpong_loss_2pct_sctp"
                               : "e2e_table1_pingpong_loss_2pct_tcp";
    out.metric(name, "wall_seconds", pp_secs);
    out.metric(name, "sim_loop_seconds", pr.loop_seconds);

    apps::FarmParams fp;
    fp.num_tasks = quick ? 1500 : 5000;
    fp.task_size = 30 * 1024;
    fp.fanout = 1;
    fp.work_per_task = 6 * sim::kMillisecond;
    double farm_secs = 1e30;
    apps::FarmResult fr;
    for (int pass = 0; pass < 2; ++pass) {
      const double t0 = bench::wall_seconds();
      fr = apps::run_farm(bench::paper_config(tr, 0.02, 2005), fp);
      const double secs = bench::wall_seconds() - t0;
      if (secs < farm_secs) farm_secs = secs;
    }
    const char* fname = is_sctp ? "e2e_fig10_farm_fanout1_2pct_sctp"
                                : "e2e_fig10_farm_fanout1_2pct_tcp";
    out.metric(fname, "wall_seconds", farm_secs);
    out.metric(fname, "sim_runtime_seconds", fr.total_runtime_seconds);
    out.metric(fname, "tasks_completed",
               static_cast<double>(fr.tasks_completed));
    pp_wall[is_sctp ? 0 : 1] = pp_secs;
    farm_wall[is_sctp ? 0 : 1] = farm_secs;
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::BenchJson out("transport");
  const std::size_t arrivals_n = quick ? 400'000 : 4'000'000;
  const std::uint64_t gap_rounds = quick ? 200'000 : 2'000'000;
  const std::size_t messages = quick ? 50'000 : 400'000;
  const std::uint64_t codec_rounds = quick ? 100'000 : 1'000'000;

  const std::vector<std::uint32_t> arrivals =
      arrival_sequence(kFirstTsn, arrivals_n);

  // Each micro pair runs twice and keeps the faster pass, so cold caches
  // and allocator warm-up do not skew the old/new comparison.
  auto min2 = [](auto&& f) {
    const double a = f();
    const double b = f();
    return a < b ? a : b;
  };

  // tsn_record: current TsnMap vs the legacy std::set model.
  {
    const double s_new = min2([&] { return run_tsn_record<sctp::TsnMap>(arrivals); });
    const double s_old = min2([&] { return run_tsn_record<LegacySetTsnMap>(arrivals); });
    const double n = static_cast<double>(arrivals.size());
    out.metric("tsn_record", "arrivals", n);
    out.metric("tsn_record", "seconds", s_new);
    out.metric("tsn_record", "records_per_sec", n / s_new);
    out.metric("tsn_record_set_baseline", "seconds", s_old);
    out.metric("tsn_record_set_baseline", "records_per_sec", n / s_old);
    out.metric("speedup_vs_baseline", "tsn_record", s_old / s_new);
  }

  // sack_generation: per-arrival gap-block builds while holes are open.
  {
    std::uint64_t sacks_new = 0, entries_new = 0;
    std::uint64_t sacks_old = 0, entries_old = 0;
    const double s_new = min2([&] {
      return run_sack_generation<sctp::TsnMap>(arrivals, &sacks_new,
                                               &entries_new);
    });
    const double s_old = min2([&] {
      return run_sack_generation<LegacySetTsnMap>(arrivals, &sacks_old,
                                                  &entries_old);
    });
    if (sacks_new != sacks_old) {
      std::fprintf(stderr, "sack_generation mismatch: new %llu old %llu\n",
                   static_cast<unsigned long long>(sacks_new),
                   static_cast<unsigned long long>(sacks_old));
      return 1;
    }
    out.metric("sack_generation", "sacks", static_cast<double>(sacks_new));
    out.metric("sack_generation", "gap_and_dup_entries",
               static_cast<double>(entries_new));
    out.metric("sack_generation", "seconds", s_new);
    out.metric("sack_generation", "sacks_per_sec",
               static_cast<double>(sacks_new) / s_new);
    out.metric("sack_generation_set_baseline", "seconds", s_old);
    out.metric("sack_generation_set_baseline", "sacks_per_sec",
               static_cast<double>(sacks_old) / s_old);
    out.metric("speedup_vs_baseline", "sack_generation", s_old / s_new);
  }

  // gap_ack_processing: indexed ring vs the legacy std::map scoreboard.
  {
    std::uint64_t touched_new = 0, touched_old = 0;
    const double s_new =
        min2([&] { return run_gap_ack<RingScoreboard>(gap_rounds, &touched_new); });
    const double s_old =
        min2([&] { return run_gap_ack<MapScoreboard>(gap_rounds, &touched_old); });
    if (touched_new != touched_old) {
      std::fprintf(stderr, "gap_ack mismatch: new %llu old %llu\n",
                   static_cast<unsigned long long>(touched_new),
                   static_cast<unsigned long long>(touched_old));
      return 1;
    }
    const double n = static_cast<double>(gap_rounds);
    out.metric("gap_ack_processing", "sacks", n);
    out.metric("gap_ack_processing", "entries_touched",
               static_cast<double>(touched_new));
    out.metric("gap_ack_processing", "seconds", s_new);
    out.metric("gap_ack_processing", "sacks_per_sec", n / s_new);
    out.metric("gap_ack_processing_map_baseline", "seconds", s_old);
    out.metric("gap_ack_processing_map_baseline", "sacks_per_sec", n / s_old);
    out.metric("speedup_vs_baseline", "gap_ack_processing", s_old / s_new);
  }

  // reassembly_under_loss.
  {
    std::uint64_t delivered = 0;
    const double secs = run_reassembly(messages, &delivered);
    out.metric("reassembly_under_loss", "messages",
               static_cast<double>(delivered));
    out.metric("reassembly_under_loss", "seconds", secs);
    out.metric("reassembly_under_loss", "messages_per_sec",
               static_cast<double>(delivered) / secs);
  }

  bench_wire_codec(codec_rounds, out);

  // End-to-end drivers at 2% loss; pinned pre-rewrite baselines scaled to
  // this mode's workload sizes.
  {
    double pp_wall[2] = {0, 0};  // [sctp, tcp]
    double farm_wall[2] = {0, 0};
    bench_e2e(quick, out, pp_wall, farm_wall);
    const double pp_iters = quick ? 300 : 1000;
    const double farm_tasks = quick ? 1500 : 5000;
    const double base_pp_sctp = kBaselinePingpongSctpWallPerIter * pp_iters;
    const double base_pp_tcp = kBaselinePingpongTcpWallPerIter * pp_iters;
    const double base_farm_sctp = kBaselineFarmSctpWallPerTask * farm_tasks;
    const double base_farm_tcp = kBaselineFarmTcpWallPerTask * farm_tasks;
    out.metric("baseline_pre_rewrite", "pingpong_2pct_sctp_wall_seconds",
               base_pp_sctp);
    out.metric("baseline_pre_rewrite", "pingpong_2pct_tcp_wall_seconds",
               base_pp_tcp);
    out.metric("baseline_pre_rewrite", "farm_2pct_sctp_wall_seconds",
               base_farm_sctp);
    out.metric("baseline_pre_rewrite", "farm_2pct_tcp_wall_seconds",
               base_farm_tcp);
    out.metric("speedup_vs_baseline", "e2e_pingpong_2pct_sctp",
               base_pp_sctp / pp_wall[0]);
    out.metric("speedup_vs_baseline", "e2e_pingpong_2pct_tcp",
               base_pp_tcp / pp_wall[1]);
    out.metric("speedup_vs_baseline", "e2e_farm_2pct_sctp",
               base_farm_sctp / farm_wall[0]);
    out.metric("speedup_vs_baseline", "e2e_farm_2pct_tcp",
               base_farm_tcp / farm_wall[1]);
  }

  std::printf("%s", out.str().c_str());
  if (!json_path.empty() && !out.write(json_path)) return 1;
  return 0;
}
