// Micro-benchmark of the service tier: the open-loop client fleet against
// the Maglev L4 balancer (apps/service.hpp), TCP vs SCTP.
//
// Three scenarios, each run over both transports:
//
//   tails_fattree_*   — tens of thousands of clients on a k=4 fat-tree,
//                       Poisson arrivals, log-normal sizes, no faults:
//                       the clean p50/p99/p999 response-tail comparison.
//   churn_flat_*      — flat multihomed farm under scale-in/out churn:
//                       one backend drained and restored, another killed
//                       and revived (probe ejection + re-admission).
//   failover_flat_*   — the paper's multihoming story at service scale:
//                       one subnet blacked out mid-run; SCTP associations
//                       fail over (zero request retries — self-checked),
//                       TCP tears down and reconnects.
//
// All latency metrics are SIM-time (deterministic given the seed), so the
// "speedup" ratios (tcp_p999 / sctp_p999 and friends) are bit-stable run
// over run and machine-independent — exactly what check_regression.sh
// wants to gate. Self-checks exit 1: lossless completion everywhere, zero
// SCTP retries across the blackout.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "apps/service.hpp"
#include "bench/bench_common.hpp"

namespace {

using namespace sctpmpi;
using apps::ServiceParams;
using apps::ServiceResult;
using apps::ServiceSim;
using apps::ServiceTransport;

const char* tname(ServiceTransport t) {
  return t == ServiceTransport::kTcp ? "tcp" : "sctp";
}

/// Shared tuning: chaos-tier failure-detection clocks (seconds, not
/// minutes) and small per-socket buffers so a 20k-client fleet fits.
ServiceParams tuned(ServiceTransport t, bool quick) {
  ServiceParams p;
  p.transport = t;
  p.seed = 2005;
  p.tcp.min_rto = 200 * sim::kMillisecond;
  p.tcp.initial_rto = 400 * sim::kMillisecond;
  p.tcp.max_rto = 2 * sim::kSecond;
  p.tcp.max_data_retries = 3;
  p.sctp.rto_min = 200 * sim::kMillisecond;
  p.sctp.rto_initial = 400 * sim::kMillisecond;
  p.sctp.rto_max = 2 * sim::kSecond;
  p.sctp.assoc_max_retrans = 3;
  p.sctp.path_max_retrans = 2;
  p.sctp.hb_interval = 2 * sim::kSecond;
  p.tcp.sndbuf = 8 * 1024;
  p.tcp.rcvbuf = 4 * 1024;
  p.sctp.sndbuf = 8 * 1024;
  p.sctp.rcvbuf = 4 * 1024;
  p.size_mu = 6.0;  // ~400 B median
  p.size_sigma = 1.0;
  p.size_max = 1024;
  (void)quick;
  return p;
}

void record(bench::BenchJson& out, const std::string& name,
            const ServiceResult& r, double wall) {
  out.metric(name, "issued", static_cast<double>(r.issued));
  out.metric(name, "completed", static_cast<double>(r.completed));
  out.metric(name, "retried", static_cast<double>(r.retried));
  out.metric(name, "abandoned", static_cast<double>(r.abandoned));
  out.metric(name, "reconnects", static_cast<double>(r.reconnects));
  out.metric(name, "failovers", static_cast<double>(r.failovers));
  out.metric(name, "p50_ms", r.p50_ms);
  out.metric(name, "p99_ms", r.p99_ms);
  out.metric(name, "p999_ms", r.p999_ms);
  out.metric(name, "sim_runtime_seconds", r.runtime_seconds);
  out.metric(name, "lb_forwarded", static_cast<double>(r.lb.forwarded));
  out.metric(name, "lb_ejections", static_cast<double>(r.lb.ejections));
  out.metric(name, "lb_readmissions",
             static_cast<double>(r.lb.readmissions));
  out.metric(name, "wall_seconds", wall);
  std::printf(
      "%-22s %8llu req  p50 %7.2fms  p99 %8.2fms  p999 %8.2fms  "
      "retried %5llu  loss %llu  wall %6.2fs\n",
      name.c_str(), static_cast<unsigned long long>(r.completed), r.p50_ms,
      r.p99_ms, r.p999_ms, static_cast<unsigned long long>(r.retried),
      static_cast<unsigned long long>(r.abandoned), wall);
}

bool check_lossless(const char* name, const ServiceResult& r) {
  if (r.completed + r.abandoned != r.issued || r.abandoned != 0) {
    std::fprintf(stderr,
                 "self-check FAILED: %s lost requests (issued %llu, "
                 "completed %llu, abandoned %llu)\n",
                 name, static_cast<unsigned long long>(r.issued),
                 static_cast<unsigned long long>(r.completed),
                 static_cast<unsigned long long>(r.abandoned));
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::banner("micro: L4 service tier",
                "Maglev balancer + open-loop fleet — response tails, churn "
                "loss and multihomed failover, TCP vs SCTP");
  bench::BenchJson out("service");
  bool ok = true;

  // ---- response tails on the k=4 fat-tree --------------------------------
  double tails_p999[2] = {0, 0};
  for (const auto t : {ServiceTransport::kTcp, ServiceTransport::kSctp}) {
    ServiceParams p = tuned(t, quick);
    p.topology = apps::ServiceTopology::kFatTree;
    p.fattree_k = 4;  // 16 hosts: 11 client hosts, 4 backends, 1 balancer
    p.backends = 4;
    p.clients_per_host = quick ? 200u : 2000u;  // 2.2k / 22k clients
    p.requests = quick ? 20000u : 200000u;
    // Below the farm's saturation point: the clean-tail scenario measures
    // protocol overhead, not queueing collapse.
    p.arrival_rate_hz = quick ? 20000 : 40000;
    const std::string name = std::string("tails_fattree_") + tname(t);
    const double t0 = bench::wall_seconds();
    const ServiceResult r = apps::run_service(p);
    const double wall = bench::wall_seconds() - t0;
    record(out, name, r, wall);
    ok &= check_lossless(name.c_str(), r);
    if (r.retried != 0) {
      std::fprintf(stderr, "self-check FAILED: %s retried %llu with no "
                   "faults scheduled\n", name.c_str(),
                   static_cast<unsigned long long>(r.retried));
      ok = false;
    }
    tails_p999[t == ServiceTransport::kSctp] = r.p999_ms;
  }
  out.metric("tails_p999_ratio", "speedup", tails_p999[0] / tails_p999[1]);

  // ---- scale-in/out churn on the flat multihomed farm --------------------
  auto churn_schedule = [](ServiceSim& svc) {
    // Scale-in: drain backend 1 mid-burst, restore it later (scale-out).
    svc.at(600 * sim::kMillisecond,
           [&svc] { svc.lb().drain_backend(1); });
    svc.at(1400 * sim::kMillisecond,
           [&svc] { svc.lb().restore_backend(1); });
    // Hard churn: backend 0 dies outright and comes back; the probes must
    // eject it (re-steering its flows) and re-admit it afterwards.
    const unsigned h = svc.backend_host(0);
    for (unsigned i = 0; i < svc.cluster().interface_count(); ++i) {
      svc.cluster().uplink(h, i).faults().add_blackout(
          800 * sim::kMillisecond, 1600 * sim::kMillisecond);
      svc.cluster().downlink(h, i).faults().add_blackout(
          800 * sim::kMillisecond, 1600 * sim::kMillisecond);
    }
  };
  std::uint64_t churn_retried[2] = {0, 0};
  for (const auto t : {ServiceTransport::kTcp, ServiceTransport::kSctp}) {
    ServiceParams p = tuned(t, quick);
    p.topology = apps::ServiceTopology::kFlatMultihomed;
    p.interfaces = 2;
    p.backends = 4;
    p.client_hosts = 4;
    p.clients_per_host = quick ? 50u : 500u;
    p.requests = quick ? 5000u : 40000u;
    p.arrival_rate_hz = quick ? 4000 : 20000;
    const std::string name = std::string("churn_flat_") + tname(t);
    const double t0 = bench::wall_seconds();
    const ServiceResult r = apps::run_service(p, churn_schedule);
    const double wall = bench::wall_seconds() - t0;
    record(out, name, r, wall);
    ok &= check_lossless(name.c_str(), r);
    if (r.lb.ejections < 1 || r.lb.readmissions < 1) {
      std::fprintf(stderr, "self-check FAILED: %s saw no ejection/"
                   "re-admission cycle\n", name.c_str());
      ok = false;
    }
    churn_retried[t == ServiceTransport::kSctp] = r.retried;
  }
  // Retry burden ratio under identical churn (+1 guards the zero case).
  out.metric("churn_retry_ratio", "speedup",
             static_cast<double>(churn_retried[0] + 1) /
                 static_cast<double>(churn_retried[1] + 1));

  // ---- multihomed failover: one subnet blacked out -----------------------
  // 3.5 s outage: long enough that TCP exhausts its data retries and must
  // tear down + reconnect, while SCTP fails over within ~1 s.
  auto failover_schedule = [](ServiceSim& svc) {
    svc.at(600 * sim::kMillisecond,
           [&svc] { svc.cluster().set_subnet_loss(0, 1.0); });
    svc.at(4100 * sim::kMillisecond,
           [&svc] { svc.cluster().set_subnet_loss(0, 0.0); });
  };
  double failover_p999[2] = {0, 0};
  for (const auto t : {ServiceTransport::kTcp, ServiceTransport::kSctp}) {
    ServiceParams p = tuned(t, quick);
    p.topology = apps::ServiceTopology::kFlatMultihomed;
    p.interfaces = 2;
    p.backends = 4;
    p.client_hosts = 4;
    p.clients_per_host = quick ? 50u : 500u;
    p.requests = quick ? 5000u : 40000u;
    p.arrival_rate_hz = quick ? 4000 : 20000;
    const std::string name = std::string("failover_flat_") + tname(t);
    const double t0 = bench::wall_seconds();
    const ServiceResult r = apps::run_service(p, failover_schedule);
    const double wall = bench::wall_seconds() - t0;
    record(out, name, r, wall);
    ok &= check_lossless(name.c_str(), r);
    if (t == ServiceTransport::kSctp) {
      // The acceptance property: tracked multihomed associations ride the
      // blackout with zero request-level retries.
      if (r.retried != 0 || r.failovers == 0) {
        std::fprintf(stderr,
                     "self-check FAILED: SCTP failover retried %llu "
                     "(want 0) with %llu path failovers (want > 0)\n",
                     static_cast<unsigned long long>(r.retried),
                     static_cast<unsigned long long>(r.failovers));
        ok = false;
      }
    } else if (r.reconnects == 0) {
      std::fprintf(stderr, "self-check FAILED: TCP rode out a blackout of "
                   "its only VIP subnet without reconnecting\n");
      ok = false;
    }
    failover_p999[t == ServiceTransport::kSctp] = r.p999_ms;
  }
  out.metric("failover_p999_ratio", "speedup",
             failover_p999[0] / failover_p999[1]);

  std::printf("\ntail ratio (tcp p999 / sctp p999): clean %.2f, "
              "blackout %.2f\n",
              tails_p999[0] / tails_p999[1],
              failover_p999[0] / failover_p999[1]);

  if (!json_path.empty() && !out.write(json_path)) return 1;
  return ok ? 0 : 1;
}
