// Micro-benchmarks of the zero-copy scatter-gather message datapath — the
// paths a large MPI message crosses between the middleware and the wire:
//
//   encode_*     — TCP segmentation of a message into MSS-sized segments:
//                  slice gather + scatter-gather wire encode (header bytes
//                  written once, payload appended straight from the shared
//                  Buffer) against the pre-rewrite copying pipeline
//                  (user -> ring copy, ring -> payload copy, payload ->
//                  wire copy).
//   bundle_*     — SCTP DATA chunk construction and packet encode from
//                  message slices against per-chunk payload vector copies.
//   reassemble_* — receive side: an in-order run of wire-retained slices
//                  copied once into the user buffer, against the staging
//                  pipeline (segment vector -> reassembly vector -> user).
//
// The copying baselines run live in this file on the identical workload so
// the JSON reports a measured — not remembered — speedup, and the zero-copy
// passes self-check their net::CopyStats byte counts: exactly one payload
// copy per byte per direction, enforced in release builds (exit 1).
//
//   e2e_*        — fig-8-style 1 MiB ping-pong wall-clock points on both
//                  transports (loss-free), the end-to-end view of the same
//                  datapath. Simulated throughput is recorded alongside as
//                  a determinism canary.
//
// Writes machine-readable results with --json PATH (BENCH_datapath.json);
// --quick scales runs to seconds for the `ctest -L perf` smoke label. The
// committed bench/BENCH_datapath.json is the regression baseline consumed
// by bench/check_regression.sh (speedup ratios, so the comparison is
// machine-independent).
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"
#include "net/buffer.hpp"
#include "net/slice.hpp"
#include "sctp/chunk.hpp"
#include "tcp/wire.hpp"

namespace {

using namespace sctpmpi;

constexpr std::size_t kTcpMss = 1460;        // payload per segment
constexpr std::size_t kSctpChunkCap = 1452;  // pmtu 1500 - 12 common - 16 data
// 64 KiB threshold from the acceptance bar ("large message"), 1 MiB from
// the fig-8 sweep's top end.
constexpr std::size_t kSizes[] = {64 * 1024, 1024 * 1024};

net::Buffer make_message(std::size_t n) {
  std::vector<std::byte> v(n);
  std::uint32_t x = 0x2005;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 1664525u + 1013904223u;
    v[i] = static_cast<std::byte>(x >> 24);
  }
  return net::Buffer{std::move(v)};
}

/// Runs `f` twice and keeps the faster pass (cache/allocator warm-up).
template <typename F>
double min2(F&& f) {
  const double a = f();
  const double b = f();
  return a < b ? a : b;
}

// ---------------------------------------------------------------------------
// encode: TCP segmentation, message -> MSS segments -> wire images
// ---------------------------------------------------------------------------

double encode_zero_copy(const net::Buffer& msg, std::uint64_t rounds,
                        std::uint64_t* sink) {
  tcp::Segment seg;
  seg.sport = 10000;
  seg.dport = 10001;
  seg.ack_flag = true;
  const double t0 = bench::wall_seconds();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // The send queue holds the message as one slice; segmentation gathers
    // sub-slices and the wire encode appends them scatter-gather style.
    net::SliceQueue q(msg.size());
    q.write(net::BufferSlice{msg});
    for (std::size_t off = 0; off < msg.size(); off += kTcpMss) {
      const std::size_t n = std::min(kTcpMss, msg.size() - off);
      seg.seq = static_cast<std::uint32_t>(off);
      seg.payload = q.gather(off, n);
      net::Buffer::Builder b;
      seg.encode_into(b);
      *sink += std::move(b).finish().size();
    }
  }
  return bench::wall_seconds() - t0;
}

double encode_copying(const net::Buffer& msg, std::uint64_t rounds,
                      std::uint64_t* sink) {
  tcp::Segment seg;
  seg.sport = 10000;
  seg.dport = 10001;
  seg.ack_flag = true;
  std::vector<std::byte> wire;
  const double t0 = bench::wall_seconds();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Pre-rewrite pipeline: user buffer -> ring buffer copy, ring ->
    // per-segment payload vector copy, payload -> wire image copy.
    std::vector<std::byte> ring(msg.begin(), msg.end());
    for (std::size_t off = 0; off < ring.size(); off += kTcpMss) {
      const std::size_t n = std::min(kTcpMss, ring.size() - off);
      seg.seq = static_cast<std::uint32_t>(off);
      std::vector<std::byte> payload(
          ring.begin() + static_cast<std::ptrdiff_t>(off),
          ring.begin() + static_cast<std::ptrdiff_t>(off + n));
      seg.payload = net::SliceChain::adopt(std::move(payload));
      wire.clear();
      seg.encode_into(wire);
      *sink += wire.size();
    }
  }
  return bench::wall_seconds() - t0;
}

// ---------------------------------------------------------------------------
// bundle: SCTP DATA chunks, message -> chunk-per-packet encode
// ---------------------------------------------------------------------------

double bundle_zero_copy(const net::Buffer& msg, std::uint64_t rounds,
                        std::uint64_t* sink) {
  const net::BufferSlice whole{msg};
  sctp::SctpPacket pkt;
  pkt.sport = 1;
  pkt.dport = 2;
  pkt.vtag = 0xABCD;
  pkt.chunks.push_back(
      sctp::TypedChunk{sctp::ChunkType::kData, sctp::DataChunk{}});
  auto& d = std::get<sctp::DataChunk>(pkt.chunks.front().body);
  const double t0 = bench::wall_seconds();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    std::uint32_t tsn = 1;
    for (std::size_t off = 0; off < msg.size(); off += kSctpChunkCap) {
      const std::size_t n = std::min(kSctpChunkCap, msg.size() - off);
      d.begin = off == 0;
      d.end = off + n == msg.size();
      d.tsn = tsn++;
      d.payload.clear();
      d.payload.push_back(whole.sub(off, n));
      net::Buffer::Builder b;
      pkt.encode_into(b, /*with_crc=*/false);
      *sink += std::move(b).finish().size();
    }
  }
  return bench::wall_seconds() - t0;
}

double bundle_copying(const net::Buffer& msg, std::uint64_t rounds,
                      std::uint64_t* sink) {
  std::vector<std::byte> wire;
  const double t0 = bench::wall_seconds();
  sctp::SctpPacket pkt;
  pkt.sport = 1;
  pkt.dport = 2;
  pkt.vtag = 0xABCD;
  pkt.chunks.push_back(
      sctp::TypedChunk{sctp::ChunkType::kData, sctp::DataChunk{}});
  auto& d = std::get<sctp::DataChunk>(pkt.chunks.front().body);
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Pre-rewrite pipeline: message -> association send buffer copy, send
    // buffer -> per-chunk payload vector copy, chunk -> wire image copy.
    std::vector<std::byte> sndbuf(msg.begin(), msg.end());
    std::uint32_t tsn = 1;
    for (std::size_t off = 0; off < sndbuf.size(); off += kSctpChunkCap) {
      const std::size_t n = std::min(kSctpChunkCap, sndbuf.size() - off);
      d.begin = off == 0;
      d.end = off + n == sndbuf.size();
      d.tsn = tsn++;
      std::vector<std::byte> payload(
          sndbuf.begin() + static_cast<std::ptrdiff_t>(off),
          sndbuf.begin() + static_cast<std::ptrdiff_t>(off + n));
      d.payload = net::SliceChain::adopt(std::move(payload));
      wire.clear();
      pkt.encode_into(wire, /*with_crc=*/false);
      *sink += wire.size();
    }
  }
  return bench::wall_seconds() - t0;
}

// ---------------------------------------------------------------------------
// reassemble: in-order run of wire-retained slices -> user buffer
// ---------------------------------------------------------------------------

double reassemble_zero_copy(const net::Buffer& msg, std::uint64_t rounds,
                            std::vector<std::byte>& user,
                            std::uint64_t* sink) {
  const net::BufferSlice whole{msg};
  const double t0 = bench::wall_seconds();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Received segments retain slices of the wire buffers; delivery is one
    // chain copy into the user buffer.
    net::SliceChain chain;
    for (std::size_t off = 0; off < msg.size(); off += kTcpMss) {
      chain.push_back(whole.sub(off, std::min(kTcpMss, msg.size() - off)));
    }
    chain.copy_to(user);
    *sink += static_cast<std::uint64_t>(user[r % user.size()]);
  }
  return bench::wall_seconds() - t0;
}

double reassemble_copying(const net::Buffer& msg, std::uint64_t rounds,
                          std::vector<std::byte>& user, std::uint64_t* sink) {
  const double t0 = bench::wall_seconds();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Pre-rewrite pipeline: per-segment payload vector, appended into a
    // staging vector, then copied into the user buffer.
    std::vector<std::byte> staging;
    staging.reserve(msg.size());
    for (std::size_t off = 0; off < msg.size(); off += kTcpMss) {
      const std::size_t n = std::min(kTcpMss, msg.size() - off);
      std::vector<std::byte> payload(
          msg.begin() + static_cast<std::ptrdiff_t>(off),
          msg.begin() + static_cast<std::ptrdiff_t>(off + n));
      staging.insert(staging.end(), payload.begin(), payload.end());
    }
    std::memcpy(user.data(), staging.data(), staging.size());
    *sink += static_cast<std::uint64_t>(user[r % user.size()]);
  }
  return bench::wall_seconds() - t0;
}

// ---------------------------------------------------------------------------

bool check_copy_budget(const char* what, std::uint64_t counted,
                       std::uint64_t expected) {
  if (counted == expected) return true;
  std::fprintf(stderr,
               "copy-budget self-check FAILED: %s counted %llu payload copy "
               "bytes, expected exactly %llu\n",
               what, static_cast<unsigned long long>(counted),
               static_cast<unsigned long long>(expected));
  return false;
}

const char* size_tag(std::size_t n) {
  return n >= 1024 * 1024 ? "1MiB" : "64KiB";
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::banner("micro: zero-copy message datapath",
                "datapath rewrite (encode/bundle/reassemble + fig-8 1 MiB)");
  bench::BenchJson out("datapath");
  bool budget_ok = true;
  std::uint64_t sink = 0;

  for (const std::size_t size : kSizes) {
    const net::Buffer msg = make_message(size);
    // ~256 MiB of payload per pass at full scale, ~32 MiB at --quick.
    const std::uint64_t rounds =
        (quick ? std::uint64_t{32} : std::uint64_t{256}) * 1024 * 1024 / size;
    const double mb =
        static_cast<double>(rounds * size) / (1024.0 * 1024.0);
    const std::uint64_t segs = (size + kTcpMss - 1) / kTcpMss;
    const std::uint64_t chunks = (size + kSctpChunkCap - 1) / kSctpChunkCap;

    // encode: self-check one pass first (exactly one payload copy per byte
    // — the Builder append), then time.
    net::CopyStats::reset();
    encode_zero_copy(msg, 1, &sink);
    budget_ok &= check_copy_budget("tcp encode",
                                   net::CopyStats::get().payload_copy_bytes,
                                   size);
    const double enc_zc = min2([&] {
      return encode_zero_copy(msg, rounds, &sink);
    });
    const double enc_cp = min2([&] {
      return encode_copying(msg, rounds, &sink);
    });
    std::string name = std::string("encode_") + size_tag(size);
    out.metric(name, "zero_copy_MBps", mb / enc_zc);
    out.metric(name, "copying_MBps", mb / enc_cp);
    out.metric(name, "speedup", enc_cp / enc_zc);
    out.metric(name, "segments", static_cast<double>(segs));
    std::printf("%-18s zero-copy %8.0f MB/s  copying %8.0f MB/s  (%.2fx)\n",
                name.c_str(), mb / enc_zc, mb / enc_cp, enc_cp / enc_zc);

    // bundle
    net::CopyStats::reset();
    bundle_zero_copy(msg, 1, &sink);
    budget_ok &= check_copy_budget("sctp bundle",
                                   net::CopyStats::get().payload_copy_bytes,
                                   size);
    const double bun_zc = min2([&] {
      return bundle_zero_copy(msg, rounds, &sink);
    });
    const double bun_cp = min2([&] {
      return bundle_copying(msg, rounds, &sink);
    });
    name = std::string("bundle_") + size_tag(size);
    out.metric(name, "zero_copy_MBps", mb / bun_zc);
    out.metric(name, "copying_MBps", mb / bun_cp);
    out.metric(name, "speedup", bun_cp / bun_zc);
    out.metric(name, "chunks", static_cast<double>(chunks));
    std::printf("%-18s zero-copy %8.0f MB/s  copying %8.0f MB/s  (%.2fx)\n",
                name.c_str(), mb / bun_zc, mb / bun_cp, bun_cp / bun_zc);

    // reassemble
    std::vector<std::byte> user(size);
    net::CopyStats::reset();
    reassemble_zero_copy(msg, 1, user, &sink);
    budget_ok &= check_copy_budget("reassemble",
                                   net::CopyStats::get().payload_copy_bytes,
                                   size);
    const double ras_zc = min2([&] {
      return reassemble_zero_copy(msg, rounds, user, &sink);
    });
    const double ras_cp = min2([&] {
      return reassemble_copying(msg, rounds, user, &sink);
    });
    name = std::string("reassemble_") + size_tag(size);
    out.metric(name, "zero_copy_MBps", mb / ras_zc);
    out.metric(name, "copying_MBps", mb / ras_cp);
    out.metric(name, "speedup", ras_cp / ras_zc);
    std::printf("%-18s zero-copy %8.0f MB/s  copying %8.0f MB/s  (%.2fx)\n",
                name.c_str(), mb / ras_zc, mb / ras_cp, ras_cp / ras_zc);
  }

  // End-to-end fig-8-style points: 1 MiB ping-pong, loss-free, both
  // transports. Simulated throughput doubles as a determinism canary.
  for (auto tr : {core::TransportKind::kSctp, core::TransportKind::kTcp}) {
    apps::PingPongParams pp;
    pp.message_size = 1024 * 1024;
    pp.iterations = quick ? 30 : 200;
    pp.warmup = 2;
    double secs = 1e30;
    apps::PingPongResult pr;
    for (int pass = 0; pass < 2; ++pass) {
      const double t0 = bench::wall_seconds();
      pr = apps::run_pingpong(bench::paper_config(tr, 0.0, 2005), pp);
      const double s = bench::wall_seconds() - t0;
      if (s < secs) secs = s;
    }
    const char* name = tr == core::TransportKind::kSctp
                           ? "e2e_fig8_pingpong_1MiB_sctp"
                           : "e2e_fig8_pingpong_1MiB_tcp";
    out.metric(name, "wall_seconds", secs);
    out.metric(name, "sim_throughput_MBps",
               pr.throughput_Bps / (1024.0 * 1024.0));
    std::printf("%-28s wall %.3fs  sim %.1f MB/s\n", name, secs,
                pr.throughput_Bps / (1024.0 * 1024.0));
  }

  if (sink == 0) std::printf("impossible\n");
  if (!json_path.empty() && !out.write(json_path)) return 1;
  if (!budget_ok) return 1;
  return 0;
}
