// Fig. 9: NAS parallel benchmark skeletons (NPB 3.2 subset), class B on
// 8 processes, Mop/s for LAM_SCTP vs LAM_TCP under no loss. Expected
// shape: comparable overall, TCP slightly ahead on MG and BT (their class
// B traffic keeps a greater share of short messages).
//
// Other dataset classes (S/W/A) can be printed with SCTPMPI_ALL_CLASSES=1;
// the paper reports that TCP does better on the shorter datasets.
#include "apps/nas.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Figure 9: NAS parallel benchmarks (class B, 8 procs)",
         "paper Fig. 9 — Mop/s per kernel, SCTP vs TCP");

  const bool all_classes = std::getenv("SCTPMPI_ALL_CLASSES") != nullptr;
  std::vector<apps::NasClass> classes = {apps::NasClass::kB};
  if (all_classes) {
    classes = {apps::NasClass::kS, apps::NasClass::kW, apps::NasClass::kA,
               apps::NasClass::kB};
  }

  for (apps::NasClass cls : classes) {
    std::printf("--- dataset class %s ---\n", apps::to_string(cls));
    apps::Table table({"Benchmark", "LAM_SCTP (Mop/s)", "LAM_TCP (Mop/s)",
                       "SCTP/TCP"});
    for (apps::NasKernel k : apps::nas_paper_order()) {
      double mops[2];
      int i = 0;
      for (auto tr :
           {core::TransportKind::kSctp, core::TransportKind::kTcp}) {
        mops[i++] = apps::run_nas(paper_config(tr, 0.0), k, cls).mops_total;
      }
      table.add_row({apps::to_string(k), apps::fmt("%.0f", mops[0]),
                     apps::fmt("%.0f", mops[1]),
                     apps::fmt("%.3f", mops[0] / mops[1])});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape (class B): SCTP comparable to TCP on average; TCP\n"
      "slightly ahead on MG and BT; single tags mean multistreaming is\n"
      "not exercised here.\n");
  return 0;
}
