// Fig. 10: Bulk Processor Farm run times, Fanout=1, for short (30 KiB) and
// long (300 KiB) tasks under 0/1/2% loss. Expected shape: comparable at no
// loss; under loss LAM_TCP an order of magnitude slower for short tasks
// and ~2.5-2.7x slower for long tasks.
#include "apps/farm.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Figure 10: Bulk Processor Farm, Fanout=1",
         "paper Fig. 10 — total run time, short/long tasks, 0/1/2% loss");

  for (bool long_tasks : {false, true}) {
    apps::FarmParams fp;
    fp.task_size = long_tasks ? 300 * 1024 : 30 * 1024;
    fp.fanout = 1;
    fp.num_tasks = scaled(10'000, 500);
    // Long-task cells use 3,000 tasks to bound simulation cost; the
    // paper's shape (relative run times) is scale-invariant here.
    if (long_tasks) fp.num_tasks = scaled(1'500, 200);
    // Per-task processing time calibrated so the 0%-loss runtimes land
    // near the paper's absolute numbers (10,000 tasks on 7 workers in
    // ~6-9s short / ~80s long): the farm is compute-bound when healthy.
    fp.work_per_task =
        long_tasks ? 55 * sim::kMillisecond : 6 * sim::kMillisecond;
    std::printf("--- %s tasks (%zu bytes, %d tasks) ---\n",
                long_tasks ? "long" : "short", fp.task_size, fp.num_tasks);
    apps::Table table({"Loss", "LAM_SCTP (s)", "LAM_TCP (s)", "TCP/SCTP"});
    // The paper ran the farm six times per cell and averaged; a single
    // tail retransmission timeout is large relative to a run, so we
    // average over seeds too.
    const std::uint64_t seeds[] = {2005, 2006};
    for (double loss : {0.0, 0.01, 0.02}) {
      double rt[2];
      int i = 0;
      for (auto tr :
           {core::TransportKind::kSctp, core::TransportKind::kTcp}) {
        double total = 0;
        for (std::uint64_t seed : seeds) {
          auto r = apps::run_farm(paper_config(tr, loss, seed), fp);
          if (r.tasks_completed != fp.num_tasks) {
            std::printf("!! task count mismatch: %d != %d\n",
                        r.tasks_completed, fp.num_tasks);
          }
          total += r.total_runtime_seconds;
        }
        rt[i++] = total / std::size(seeds);
      }
      table.add_row({apps::fmt("%.0f%%", loss * 100),
                     apps::fmt("%.1f", rt[0]), apps::fmt("%.1f", rt[1]),
                     apps::fmt("%.2fx", rt[1] / rt[0])});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper (10,000 tasks): short 6.8/5.9 -> 11.2/131.5 -> 7.7/79.9 s\n"
      "(SCTP/TCP at 0/1/2%%); long 83/114 -> 804/2080 -> 1595/4311 s.\n"
      "Shape: TCP ~10x slower (short) and ~2.6x slower (long) under loss.\n");
  return 0;
}
