#!/bin/sh
# Compare a freshly emitted BENCH_*.json against the committed baseline.
# Only speedup ratios are compared -- absolute MB/s or wall seconds depend
# on the host, ratios do not. A run fails when any case's speedup drops
# below baseline/THRESHOLD.
#
# Two gated documents:
#   BENCH_datapath.json  — zero-copy vs copying datapath ratios
#   BENCH_eventloop.json — e2e wall-clock of the fig10/table1 drivers vs
#                          the wall times pinned immediately before the
#                          ISSUE 7 event-dispatch rebuild (the achieved
#                          ~2.3x SCTP / ~2.9x TCP ratios are the floor)
#
# Usage: check_regression.sh NEW_JSON [BASELINE_JSON] [THRESHOLD]
#   BASELINE_JSON defaults to the committed file of the same name next to
#   this script.
set -eu

NEW="${1:?usage: check_regression.sh NEW_JSON [BASELINE_JSON] [THRESHOLD]}"
BASE="${2:-$(dirname "$0")/$(basename "$NEW")}"
THRESHOLD="${3:-1.5}"

[ -f "$NEW" ] || { echo "check_regression: missing $NEW" >&2; exit 2; }
[ -f "$BASE" ] || { echo "check_regression: missing $BASE" >&2; exit 2; }

# Emit "name speedup" pairs from one bench JSON (one result object per line).
speedups() {
  awk '
    match($0, /"[A-Za-z0-9_]+": \{/) {
      name = substr($0, RSTART + 1)
      sub(/": \{.*/, "", name)
      if (match($0, /"speedup": [0-9.]+/)) {
        val = substr($0, RSTART + 11, RLENGTH - 11)
        print name, val
      }
    }
  ' "$1"
}

speedups "$BASE" > /tmp/check_regression_base.$$
speedups "$NEW" > /tmp/check_regression_new.$$
trap 'rm -f /tmp/check_regression_base.$$ /tmp/check_regression_new.$$' EXIT

fail=0
while read -r name base_speedup; do
  new_speedup=$(awk -v n="$name" '$1 == n {print $2}' /tmp/check_regression_new.$$)
  if [ -z "$new_speedup" ]; then
    echo "FAIL $name: missing from $NEW" >&2
    fail=1
    continue
  fi
  ok=$(awk -v b="$base_speedup" -v n="$new_speedup" -v t="$THRESHOLD" \
        'BEGIN {print (n * t >= b) ? 1 : 0}')
  if [ "$ok" -eq 1 ]; then
    echo "ok   $name: speedup $new_speedup (baseline $base_speedup)"
  else
    echo "FAIL $name: speedup $new_speedup < baseline $base_speedup / $THRESHOLD" >&2
    fail=1
  fi
done < /tmp/check_regression_base.$$

[ "$fail" -eq 0 ] && echo "check_regression: all speedups within ${THRESHOLD}x of baseline"
exit "$fail"
