#!/bin/sh
# Compare a freshly emitted BENCH_*.json against the committed baseline.
# Only speedup ratios are compared -- absolute MB/s or wall seconds depend
# on the host, ratios do not. A run fails when any case's speedup drops
# below baseline/THRESHOLD.
#
# Two gated documents:
#   BENCH_datapath.json  — zero-copy vs copying datapath ratios
#   BENCH_eventloop.json — e2e wall-clock of the fig10/table1 drivers vs
#                          the wall times pinned immediately before the
#                          ISSUE 7 event-dispatch rebuild (the achieved
#                          ~2.3x SCTP / ~2.9x TCP ratios are the floor)
#
# Usage: check_regression.sh NEW_JSON [BASELINE_JSON] [THRESHOLD]
#   BASELINE_JSON defaults to the committed file of the same name next to
#   this script.
#
# Floor mode — absolute gate on one metric of one result, for keys that
# are only emitted on capable hosts (e.g. multi-shard speedups appear only
# when hw_concurrency >= shards, so they cannot ride the baseline diff):
#   check_regression.sh --floor JSON NAME METRIC MIN
# Fails when result NAME's METRIC is missing from JSON or below MIN.
set -eu

if [ "${1:-}" = "--floor" ]; then
  JSON="${2:?usage: check_regression.sh --floor JSON NAME METRIC MIN}"
  NAME="${3:?usage: check_regression.sh --floor JSON NAME METRIC MIN}"
  METRIC="${4:?usage: check_regression.sh --floor JSON NAME METRIC MIN}"
  MIN="${5:?usage: check_regression.sh --floor JSON NAME METRIC MIN}"
  [ -f "$JSON" ] || { echo "check_regression: missing $JSON" >&2; exit 2; }
  # One result object per line; pick NAME's line, then METRIC's value.
  val=$(awk -v name="$NAME" -v metric="$METRIC" '
    index($0, "\"" name "\": {") {
      if (match($0, "\"" metric "\": [0-9.eE+-]+")) {
        v = substr($0, RSTART, RLENGTH)
        sub(/.*: /, "", v)
        print v
      }
    }
  ' "$JSON")
  if [ -z "$val" ]; then
    echo "FAIL $NAME.$METRIC: missing from $JSON" >&2
    exit 1
  fi
  ok=$(awk -v v="$val" -v m="$MIN" 'BEGIN {print (v + 0 >= m + 0) ? 1 : 0}')
  if [ "$ok" -eq 1 ]; then
    echo "ok   $NAME.$METRIC: $val >= floor $MIN"
    exit 0
  fi
  echo "FAIL $NAME.$METRIC: $val < floor $MIN" >&2
  exit 1
fi

NEW="${1:?usage: check_regression.sh NEW_JSON [BASELINE_JSON] [THRESHOLD]}"
BASE="${2:-$(dirname "$0")/$(basename "$NEW")}"
THRESHOLD="${3:-1.5}"

[ -f "$NEW" ] || { echo "check_regression: missing $NEW" >&2; exit 2; }
[ -f "$BASE" ] || { echo "check_regression: missing $BASE" >&2; exit 2; }

# Emit "name speedup" pairs from one bench JSON (one result object per line).
speedups() {
  awk '
    match($0, /"[A-Za-z0-9_]+": \{/) {
      name = substr($0, RSTART + 1)
      sub(/": \{.*/, "", name)
      if (match($0, /"speedup": [0-9.]+/)) {
        val = substr($0, RSTART + 11, RLENGTH - 11)
        print name, val
      }
    }
  ' "$1"
}

speedups "$BASE" > /tmp/check_regression_base.$$
speedups "$NEW" > /tmp/check_regression_new.$$
trap 'rm -f /tmp/check_regression_base.$$ /tmp/check_regression_new.$$' EXIT

fail=0
while read -r name base_speedup; do
  new_speedup=$(awk -v n="$name" '$1 == n {print $2}' /tmp/check_regression_new.$$)
  if [ -z "$new_speedup" ]; then
    echo "FAIL $name: missing from $NEW" >&2
    fail=1
    continue
  fi
  ok=$(awk -v b="$base_speedup" -v n="$new_speedup" -v t="$THRESHOLD" \
        'BEGIN {print (n * t >= b) ? 1 : 0}')
  if [ "$ok" -eq 1 ]; then
    echo "ok   $name: speedup $new_speedup (baseline $base_speedup)"
  else
    echo "FAIL $name: speedup $new_speedup < baseline $base_speedup / $THRESHOLD" >&2
    fail=1
  fi
done < /tmp/check_regression_base.$$

[ "$fail" -eq 0 ] && echo "check_regression: all speedups within ${THRESHOLD}x of baseline"
exit "$fail"
