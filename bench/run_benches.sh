#!/usr/bin/env sh
# Runs the simulator-core micro benchmark and refreshes BENCH_simcore.json.
#
# Usage: bench/run_benches.sh [build-dir] [--quick]
#   build-dir  defaults to ./build
#   --quick    seconds-scale run (same configuration as `ctest -L perf`)
#
# The JSON lands in the build directory as BENCH_simcore.json; commit a copy
# next to this script when recording a new performance baseline.
set -eu

BUILD_DIR=build
QUICK=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

BIN="$BUILD_DIR/bench/micro_simcore"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

"$BIN" $QUICK --json "$BUILD_DIR/BENCH_simcore.json"
echo "wrote $BUILD_DIR/BENCH_simcore.json"
