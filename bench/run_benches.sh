#!/usr/bin/env sh
# Runs the micro benchmarks and refreshes their JSON result files.
#
# Usage: bench/run_benches.sh [build-dir] [--quick]
#   build-dir  defaults to ./build
#   --quick    seconds-scale run (same configuration as `ctest -L perf`)
#
# The JSON lands in the build directory as BENCH_simcore.json and
# BENCH_transport.json; commit a copy next to this script when recording a
# new performance baseline.
set -eu

BUILD_DIR=build
QUICK=""
for arg in "$@"; do
  case "$arg" in
    --quick) QUICK="--quick" ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

# Every bench binary must exist before anything runs: a silently skipped
# bench would let a perf regression (or a broken bench target) go unnoticed.
MISSING=0
for name in micro_simcore micro_transport micro_datapath micro_eventloop micro_parallel micro_service; do
  if [ ! -x "$BUILD_DIR/bench/$name" ]; then
    echo "error: $BUILD_DIR/bench/$name not built (run: cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    MISSING=1
  fi
done
[ "$MISSING" -eq 0 ] || exit 1

for name in micro_simcore micro_transport micro_datapath micro_eventloop micro_parallel micro_service; do
  OUT="$BUILD_DIR/BENCH_${name#micro_}.json"
  "$BUILD_DIR/bench/$name" $QUICK --json "$OUT"
  echo "wrote $OUT"
done
