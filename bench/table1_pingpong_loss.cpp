// Table 1: ping-pong throughput under 1% and 2% Dummynet loss for the
// paper's two message sizes — 30 KiB (short, eager) and 300 KiB (long,
// rendezvous). Expected shape: SCTP well ahead of TCP at both sizes, more
// pronounced for short messages.
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Table 1: ping-pong under loss",
         "paper Table 1 — 30K/300K messages at 1%/2% loss");

  apps::Table table({"MPI message size", "Loss", "LAM_SCTP (B/s)",
                     "LAM_TCP (B/s)", "SCTP/TCP"});
  // The paper averaged multiple runs; loss results are timeout-dominated
  // and need the same treatment. Every (size, loss, transport, seed) cell
  // is an independent simulation, so the trials run across worker threads
  // (SCTPMPI_SERIAL=1 forces the old serial order); aggregation below
  // walks the trial list in its construction order, keeping output
  // byte-identical to a serial run.
  const std::uint64_t seeds[] = {2005, 2006, 2007};
  struct Trial {
    std::size_t sz;
    double loss;
    core::TransportKind tr;
    std::uint64_t seed;
    double loop_seconds = 0;
    double bytes = 0;
  };
  std::vector<Trial> trials;
  for (std::size_t sz : {std::size_t{30 * 1024}, std::size_t{300 * 1024}}) {
    for (double loss : {0.01, 0.02}) {
      for (auto tr :
           {core::TransportKind::kSctp, core::TransportKind::kTcp}) {
        for (std::uint64_t seed : seeds) {
          trials.push_back(Trial{sz, loss, tr, seed});
        }
      }
    }
  }
  parallel_trials(trials.size(), [&](std::size_t i) {
    Trial& t = trials[i];
    apps::PingPongParams pp;
    pp.message_size = t.sz;
    pp.iterations = scaled(150, 20);
    pp.warmup = 3;
    auto r = apps::run_pingpong(paper_config(t.tr, t.loss, t.seed), pp);
    t.loop_seconds = r.loop_seconds;
    t.bytes = static_cast<double>(t.sz) * pp.iterations;
  });

  std::size_t at = 0;
  for (std::size_t sz : {std::size_t{30 * 1024}, std::size_t{300 * 1024}}) {
    for (double loss : {0.01, 0.02}) {
      double tput[2] = {0, 0};
      for (int i = 0; i < 2; ++i) {
        double total_time = 0;
        double total_bytes = 0;
        for (std::size_t s = 0; s < std::size(seeds); ++s, ++at) {
          total_time += trials[at].loop_seconds;
          total_bytes += trials[at].bytes;
        }
        tput[i] = total_bytes / total_time;
      }
      table.add_row({sz == 30 * 1024 ? "30K" : "300K",
                     apps::fmt("%.0f%%", loss * 100),
                     apps::fmt("%.0f", tput[0]), apps::fmt("%.0f", tput[1]),
                     apps::fmt("%.1fx", tput[0] / tput[1])});
    }
  }
  table.print();
  std::printf(
      "\nPaper values (B/s): 30K: SCTP 54779/44614 vs TCP 1924/1030;\n"
      "300K: SCTP 5870/2825 vs TCP 1818/885 (1%% / 2%% loss).\n"
      "Shape to match: SCTP >> TCP under loss at both sizes.\n");
  return 0;
}
