// Table 1: ping-pong throughput under 1% and 2% Dummynet loss for the
// paper's two message sizes — 30 KiB (short, eager) and 300 KiB (long,
// rendezvous). Expected shape: SCTP well ahead of TCP at both sizes, more
// pronounced for short messages.
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Table 1: ping-pong under loss",
         "paper Table 1 — 30K/300K messages at 1%/2% loss");

  apps::Table table({"MPI message size", "Loss", "LAM_SCTP (B/s)",
                     "LAM_TCP (B/s)", "SCTP/TCP"});
  // The paper averaged multiple runs; loss results are timeout-dominated
  // and need the same treatment.
  const std::uint64_t seeds[] = {2005, 2006, 2007};
  for (std::size_t sz : {std::size_t{30 * 1024}, std::size_t{300 * 1024}}) {
    for (double loss : {0.01, 0.02}) {
      double tput[2] = {0, 0};
      int i = 0;
      for (auto tr :
           {core::TransportKind::kSctp, core::TransportKind::kTcp}) {
        double total_time = 0;
        double total_bytes = 0;
        for (std::uint64_t seed : seeds) {
          apps::PingPongParams pp;
          pp.message_size = sz;
          pp.iterations = scaled(150, 20);
          pp.warmup = 3;
          auto r = apps::run_pingpong(paper_config(tr, loss, seed), pp);
          total_time += r.loop_seconds;
          total_bytes += static_cast<double>(sz) * pp.iterations;
        }
        tput[i++] = total_bytes / total_time;
      }
      table.add_row({sz == 30 * 1024 ? "30K" : "300K",
                     apps::fmt("%.0f%%", loss * 100),
                     apps::fmt("%.0f", tput[0]), apps::fmt("%.0f", tput[1]),
                     apps::fmt("%.1fx", tput[0] / tput[1])});
    }
  }
  table.print();
  std::printf(
      "\nPaper values (B/s): 30K: SCTP 54779/44614 vs TCP 1924/1030;\n"
      "300K: SCTP 5870/2825 vs TCP 1818/885 (1%% / 2%% loss).\n"
      "Shape to match: SCTP >> TCP under loss at both sizes.\n");
  return 0;
}
