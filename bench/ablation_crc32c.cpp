// Ablation: the CRC32c checksum's CPU cost (paper §3.6 and §4 setting 5 —
// the authors disabled CRC32c in the kernel so it would not skew results;
// this bench quantifies what it would have cost in software).
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Ablation: SCTP CRC32c on/off",
         "paper §4 setting 5 — software checksum cost per message size");

  apps::Table table({"Message size", "CRC off (B/s)", "CRC on (B/s)",
                     "slowdown"});
  for (std::size_t sz :
       {std::size_t{1024}, std::size_t{30 * 1024}, std::size_t{131072}}) {
    double tput[2];
    int i = 0;
    for (bool crc : {false, true}) {
      auto cfg = paper_config(core::TransportKind::kSctp, 0.0);
      cfg.sctp.crc32c_enabled = crc;
      apps::PingPongParams pp;
      pp.message_size = sz;
      pp.iterations = scaled(100, 25);
      tput[i++] = apps::run_pingpong(cfg, pp).throughput_Bps;
    }
    table.add_row({std::to_string(sz), apps::fmt("%.0f", tput[0]),
                   apps::fmt("%.0f", tput[1]),
                   apps::fmt("%.1f%%", (1.0 - tput[1] / tput[0]) * 100)});
  }
  table.print();
  std::printf(
      "\nShape: measurable per-byte cost, growing with message size —\n"
      "why the paper turned it off for a fair comparison with\n"
      "NIC-offloaded TCP checksums.\n");
  return 0;
}
