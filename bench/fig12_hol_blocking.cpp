// Fig. 12: head-of-line blocking — SCTP with the full 10-stream pool vs a
// single stream (tag/rank/context all mapped onto stream 0). Same stack,
// same loss; only the TRC->stream mapping differs.
//
// Part 1 measures the paper's mechanism directly and deterministically
// (the Fig. 4 scenario): a message on one tag loses a chunk and needs
// timeout-class recovery; how long until a message on ANOTHER tag is
// delivered to MPI_Waitany?
//
// Part 2 runs the paper's farm ablation. The paper notes (§4.2.2) that
// the size of the end-to-end effect depends on how long loss recovery
// takes: their 2005 KAME stack recovered slowly enough for 25-35%
// differences; see EXPERIMENTS.md for the analysis of our numbers.
#include <optional>
#include <vector>

#include "apps/farm.hpp"
#include "bench/bench_common.hpp"
#include "sctp/chunk.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

namespace {

// Part 1: deterministic HOL-blocking latency (Fig. 4 made measurable).
double overtake_latency_ms(unsigned pool) {
  auto cfg = paper_config(core::TransportKind::kSctp, 0.0);
  cfg.ranks = 2;
  cfg.rpi.stream_pool = pool;
  core::World w(cfg);
  // Force timeout-class recovery of one chunk of message A: drop that TSN
  // (original + retransmissions) for 2 virtual seconds.
  std::optional<std::uint32_t> victim;
  w.cluster().uplink(1).faults().drop_if([&](const net::Packet& p) {
    if (p.proto != net::IpProto::kSctp) return false;
    auto pkt = sctp::SctpPacket::decode(p.payload, false);
    if (!pkt) return false;
    for (auto& c : pkt->chunks) {
      if (c.type != sctp::ChunkType::kData) continue;
      auto& d = std::get<sctp::DataChunk>(c.body);
      if (d.payload.size() < 1000) continue;
      if (!victim) victim = d.tsn;
      if (d.tsn == *victim && w.sim().now() < 2 * sim::kSecond) return true;
    }
    return false;
  });
  double ms = 0;
  w.run([&](core::Mpi& mpi) {
    constexpr std::size_t kMsg = 30 * 1024;
    if (mpi.rank() == 1) {
      std::vector<std::byte> a(kMsg, std::byte{0xA});
      std::vector<std::byte> b(kMsg, std::byte{0xB});
      mpi.send(a, 0, /*tag-A=*/1);
      mpi.send(b, 0, /*tag-B=*/2);
    } else {
      std::vector<std::byte> ba(kMsg), bb(kMsg);
      std::vector<core::Request> reqs{mpi.irecv(ba, 1, 1),
                                      mpi.irecv(bb, 1, 2)};
      const double t0 = mpi.wtime();
      mpi.waitany(reqs);
      ms = (mpi.wtime() - t0) * 1e3;
      mpi.waitall(reqs);
    }
  });
  return ms;
}

}  // namespace

int main() {
  banner("Figure 12: SCTP 10 streams vs 1 stream",
         "paper Fig. 12 / §3.2.2-3.2.3 — head-of-line blocking isolated");

  std::printf("Part 1 — the mechanism (paper Fig. 4): tag A loses a chunk "
              "needing\ntimeout recovery; time until MPI_Waitany gets tag "
              "B's message:\n\n");
  const double multi = overtake_latency_ms(10);
  const double single = overtake_latency_ms(1);
  std::printf("  10 streams: %8.1f ms (tag B delivered on its own stream)\n",
              multi);
  std::printf("   1 stream:  %8.1f ms (tag B held behind tag A's recovery)\n",
              single);
  std::printf("  -> single-stream head-of-line penalty: %.0fx\n\n",
              single / multi);

  std::printf("Part 2 — the farm ablation (Fanout=10):\n\n");
  for (bool long_tasks : {false, true}) {
    apps::FarmParams fp;
    fp.task_size = long_tasks ? 300 * 1024 : 30 * 1024;
    fp.fanout = 10;
    fp.num_tasks = scaled(10'000, 500);
    // Long-task cells use 3,000 tasks to bound simulation cost; the
    // paper's shape (relative run times) is scale-invariant here.
    if (long_tasks) fp.num_tasks = scaled(1'500, 200);
    fp.work_per_task =
        long_tasks ? 55 * sim::kMillisecond : 6 * sim::kMillisecond;
    std::printf("--- %s tasks (%zu bytes, %d tasks) ---\n",
                long_tasks ? "long" : "short", fp.task_size, fp.num_tasks);
    apps::Table table(
        {"Loss", "10 streams (s)", "1 stream (s)", "1-stream penalty"});
    const std::uint64_t seeds[] = {2005, 2006};
    for (double loss : {0.0, 0.01, 0.02}) {
      double rt[2];
      int i = 0;
      for (unsigned pool : {10u, 1u}) {
        double total = 0;
        for (std::uint64_t seed : seeds) {
          auto cfg = paper_config(core::TransportKind::kSctp, loss, seed);
          cfg.rpi.stream_pool = pool;
          total += apps::run_farm(cfg, fp).total_runtime_seconds;
        }
        rt[i++] = total / std::size(seeds);
      }
      table.add_row({apps::fmt("%.0f%%", loss * 100),
                     apps::fmt("%.1f", rt[0]), apps::fmt("%.1f", rt[1]),
                     apps::fmt("%+.0f%%", (rt[1] / rt[0] - 1.0) * 100)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper (10,000 tasks): single-stream run times ~25%% higher for long\n"
      "tasks under loss and ~35%% higher for short tasks at 2%%. Our\n"
      "transport recovers most losses in sub-millisecond fast retransmits\n"
      "(LAN RTT), so the end-to-end farm penalty is smaller here — Part 1\n"
      "shows the blocking itself at full strength. See EXPERIMENTS.md.\n");
  return 0;
}
