// Ablation: the eager/rendezvous threshold (paper §2.2.2 — LAM treats
// messages <= 64 KiB as short/eager). Sweeps the threshold around the
// paper's 30 KiB and 300 KiB task sizes to show the protocol switch cost.
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

int main() {
  banner("Ablation: eager/rendezvous threshold",
         "paper §2.2.2 — 64 KiB default short-message limit");

  apps::Table table({"Threshold", "30K msg (B/s)", "100K msg (B/s)",
                     "30K @1% loss (B/s)"});
  for (std::size_t kb : {0ul, 16ul, 64ul, 256ul}) {
    double v[3];
    int i = 0;
    for (auto [sz, loss] :
         {std::pair<std::size_t, double>{30 * 1024, 0.0},
          {100 * 1024, 0.0},
          {30 * 1024, 0.01}}) {
      auto cfg = paper_config(core::TransportKind::kSctp, loss);
      cfg.rpi.eager_limit = kb * 1024;
      apps::PingPongParams pp;
      pp.message_size = sz;
      pp.iterations = scaled(80, 20);
      v[i++] = apps::run_pingpong(cfg, pp).throughput_Bps;
    }
    table.add_row({kb == 0 ? "0 (all rendezvous)" : std::to_string(kb) + " KiB",
                   apps::fmt("%.0f", v[0]), apps::fmt("%.0f", v[1]),
                   apps::fmt("%.0f", v[2])});
  }
  table.print();
  std::printf(
      "\nShape: eager sends win for pre-posted receives (no rendezvous\n"
      "round trip); the effect matters most for medium messages and\n"
      "under loss where the extra handshake is exposed to drops.\n");
  return 0;
}
