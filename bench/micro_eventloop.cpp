// Micro-benchmarks of the ISSUE 7 event-dispatch rebuild, plus the two
// paper-driver end-to-end canaries the rebuild was aimed at:
//
//   wheel_arm_cancel   — Timer arm + cancel with no fire: the dominant RTO
//                        pattern (every ACK restarts the timer, almost none
//                        expire). O(1) on the wheel vs O(log n) + tombstone
//                        on the old heap.
//   wheel_rearm_pushout— re-arm in place to a later deadline, the per-ACK
//                        RTO push-out, with a periodic fire so cascades run.
//   due_now_dispatch   — schedule_at(now()) chains: the process-wakeup path
//                        that the due-now FIFO serves without touching the
//                        heap (one wakeup per delivered packet in the
//                        drivers).
//   wheel_cascade_far  — far-future deadlines that enter high wheel levels
//                        and cascade down as the clock advances.
//   e2e_*              — wall-clock of the fig10 farm and table1 ping-pong
//                        drivers at 2% loss, both transports, against wall
//                        times pinned immediately before this PR on the
//                        reference machine. Each carries a "speedup" key so
//                        check_regression.sh gates the achieved ratio.
//
// The e2e speedups are the PR's acceptance metric. Measured outcome (see
// EXPERIMENTS.md): TCP reaches ~2.9x, SCTP ~2.3x. The 3x target is not
// reachable for SCTP without breaking byte-identical traces — burst
// batching delivery events changes (time, seq) firing order — so the gate
// pins the achieved ratios instead and the tradeoff is documented in
// DESIGN.md ("Event loop and timers").
//
// Writes machine-readable results with --json PATH (BENCH_eventloop.json);
// --quick scales runs to seconds for the `ctest -L perf` smoke label.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "apps/farm.hpp"
#include "apps/pingpong.hpp"
#include "bench/bench_common.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace {

using namespace sctpmpi;

// Wall-clock of the paper drivers measured immediately before this PR
// (PR 6 code base), RelWithDebInfo, reference machine, full workload sizes
// (1000 ping-pong iterations, 5000 farm tasks). Stored per iteration/task
// so quick mode scales.
constexpr double kPrePrPingpongSctpWallPerIter = 0.31674526 / 1000;
constexpr double kPrePrPingpongTcpWallPerIter = 0.57438433 / 1000;
constexpr double kPrePrFarmSctpWallPerTask = 0.79216414 / 5000;
constexpr double kPrePrFarmTcpWallPerTask = 0.93232145 / 5000;

double bench_wheel_arm_cancel(std::uint64_t rounds, bench::BenchJson& out) {
  sim::Simulator sim;
  constexpr int kTimers = 64;
  std::vector<std::unique_ptr<sim::Timer>> timers;
  timers.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(std::make_unique<sim::Timer>(sim, [] {}));
  }
  std::uint64_t ops = 0;
  const double t0 = bench::wall_seconds();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    for (auto& t : timers) t->arm(200 * sim::kMillisecond + (ops & 1023));
    for (auto& t : timers) t->cancel();
    ops += 2 * kTimers;
  }
  const double secs = bench::wall_seconds() - t0;
  const double rate = static_cast<double>(ops) / secs;
  out.metric("wheel_arm_cancel", "ops", static_cast<double>(ops));
  out.metric("wheel_arm_cancel", "seconds", secs);
  out.metric("wheel_arm_cancel", "ops_per_sec", rate);
  return rate;
}

double bench_wheel_rearm_pushout(std::uint64_t rounds,
                                 bench::BenchJson& out) {
  sim::Simulator sim;
  constexpr int kTimers = 64;
  int fires = 0;
  std::vector<std::unique_ptr<sim::Timer>> timers;
  timers.reserve(kTimers);
  for (int i = 0; i < kTimers; ++i) {
    timers.push_back(std::make_unique<sim::Timer>(sim, [&fires] { ++fires; }));
  }
  std::uint64_t ops = 0;
  const double t0 = bench::wall_seconds();
  for (std::uint64_t r = 0; r < rounds; ++r) {
    // Each "ACK" pushes every RTO out by a bit; every 32nd round the clock
    // catches up so wheel cascades and fires actually happen.
    for (auto& t : timers) t->arm(200 * sim::kMillisecond + (ops & 1023));
    ops += kTimers;
    if ((r & 31) == 31) sim.run();
  }
  sim.run();
  const double secs = bench::wall_seconds() - t0;
  const double rate = static_cast<double>(ops) / secs;
  out.metric("wheel_rearm_pushout", "ops", static_cast<double>(ops));
  out.metric("wheel_rearm_pushout", "fires", static_cast<double>(fires));
  out.metric("wheel_rearm_pushout", "seconds", secs);
  out.metric("wheel_rearm_pushout", "ops_per_sec", rate);
  return rate;
}

double bench_due_now_dispatch(std::uint64_t total, bench::BenchJson& out) {
  // One wakeup chain: each due-now event schedules the next, so the whole
  // run stays at one simulated instant and never touches heap or wheel —
  // exactly the per-packet process-wakeup pattern in the drivers.
  sim::Simulator sim;
  std::uint64_t fired = 0;
  struct Chain {
    sim::Simulator* sim;
    std::uint64_t* fired;
    std::uint64_t target;
    void operator()() const {
      if (++*fired < target) sim->schedule_at(sim->now(), Chain{*this});
    }
  };
  sim.schedule_at(0, Chain{&sim, &fired, total});
  const double t0 = bench::wall_seconds();
  sim.run();
  const double secs = bench::wall_seconds() - t0;
  const double rate = static_cast<double>(fired) / secs;
  out.metric("due_now_dispatch", "events", static_cast<double>(fired));
  out.metric("due_now_dispatch", "seconds", secs);
  out.metric("due_now_dispatch", "events_per_sec", rate);
  return rate;
}

double bench_wheel_cascade_far(std::uint64_t total, bench::BenchJson& out) {
  // Deadlines spread across seconds-scale horizons: nodes enter levels 2-4
  // and cascade down bucket by bucket as the clock walks forward.
  sim::Simulator sim;
  std::uint64_t fired = 0;
  constexpr std::uint64_t kBatch = 512;
  std::uint64_t scheduled = 0;
  std::function<void()> refill = [&] {
    for (std::uint64_t i = 0; i < kBatch && scheduled < total; ++i) {
      ++scheduled;
      const sim::SimTime delay =
          (1 + (scheduled % 300)) * 10 * sim::kMillisecond + (scheduled & 511);
      sim.schedule_after(delay, [&] { ++fired; });
    }
    if (scheduled < total) sim.schedule_after(50 * sim::kMillisecond, refill);
  };
  refill();
  const double t0 = bench::wall_seconds();
  sim.run();
  const double secs = bench::wall_seconds() - t0;
  const double rate = static_cast<double>(fired) / secs;
  out.metric("wheel_cascade_far", "events", static_cast<double>(fired));
  out.metric("wheel_cascade_far", "seconds", secs);
  out.metric("wheel_cascade_far", "events_per_sec", rate);
  return rate;
}

// End-to-end: the drivers the rebuild targets, at 2% loss, min of two
// passes (wall time on short runs swings with cache state). The "speedup"
// key in each result is what check_regression.sh gates.
void bench_e2e(bool quick, bench::BenchJson& out) {
  for (auto tr : {core::TransportKind::kSctp, core::TransportKind::kTcp}) {
    const bool is_sctp = tr == core::TransportKind::kSctp;

    apps::FarmParams fp;
    fp.num_tasks = quick ? 1500 : 5000;
    fp.task_size = 30 * 1024;
    fp.fanout = 1;
    fp.work_per_task = 6 * sim::kMillisecond;
    double farm_secs = 1e30;
    apps::FarmResult fr;
    for (int pass = 0; pass < 2; ++pass) {
      const double t0 = bench::wall_seconds();
      fr = apps::run_farm(bench::paper_config(tr, 0.02, 2005), fp);
      const double secs = bench::wall_seconds() - t0;
      if (secs < farm_secs) farm_secs = secs;
    }
    const double farm_base =
        (is_sctp ? kPrePrFarmSctpWallPerTask : kPrePrFarmTcpWallPerTask) *
        static_cast<double>(fp.num_tasks);
    const char* fname = is_sctp ? "e2e_fig10_farm_2pct_sctp"
                                : "e2e_fig10_farm_2pct_tcp";
    out.metric(fname, "wall_seconds", farm_secs);
    out.metric(fname, "pre_pr_wall_seconds", farm_base);
    out.metric(fname, "sim_runtime_seconds", fr.total_runtime_seconds);
    out.metric(fname, "tasks_completed",
               static_cast<double>(fr.tasks_completed));
    out.metric(fname, "speedup", farm_base / farm_secs);

    apps::PingPongParams pp;
    pp.message_size = 30 * 1024;
    pp.iterations = quick ? 300 : 1000;
    pp.warmup = 3;
    double pp_secs = 1e30;
    apps::PingPongResult pr;
    for (int pass = 0; pass < 2; ++pass) {
      const double t0 = bench::wall_seconds();
      pr = apps::run_pingpong(bench::paper_config(tr, 0.02, 2005), pp);
      const double secs = bench::wall_seconds() - t0;
      if (secs < pp_secs) pp_secs = secs;
    }
    const double pp_base = (is_sctp ? kPrePrPingpongSctpWallPerIter
                                    : kPrePrPingpongTcpWallPerIter) *
                           static_cast<double>(pp.iterations);
    const char* pname = is_sctp ? "e2e_table1_pingpong_2pct_sctp"
                                : "e2e_table1_pingpong_2pct_tcp";
    out.metric(pname, "wall_seconds", pp_secs);
    out.metric(pname, "pre_pr_wall_seconds", pp_base);
    out.metric(pname, "sim_loop_seconds", pr.loop_seconds);
    out.metric(pname, "speedup", pp_base / pp_secs);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  bench::BenchJson out("eventloop");
  const std::uint64_t rounds = quick ? 20'000 : 400'000;
  const std::uint64_t due_events = quick ? 2'000'000 : 40'000'000;
  const std::uint64_t cascade_events = quick ? 400'000 : 4'000'000;

  bench_wheel_arm_cancel(rounds, out);
  bench_wheel_rearm_pushout(rounds, out);
  bench_due_now_dispatch(due_events, out);
  bench_wheel_cascade_far(cascade_events, out);
  bench_e2e(quick, out);

  std::printf("%s", out.str().c_str());
  if (!json_path.empty() && !out.write(json_path)) return 1;
  return 0;
}
