// Ablation: the long-message race-condition fixes (paper §3.4). Option A
// spins the writer until a long message is fully written — simple, but
// while a body larger than the send buffer is stalled, nothing else
// (including rendezvous ACKs for messages the peer wants to send US) goes
// out. Option B — the paper's choice — serializes only per (peer, stream).
//
// The workload makes the difference visible: every rank simultaneously
// sends a long message around a ring and receives one, repeatedly. Under
// Option A each rank's rendezvous ACK (which releases its neighbour's
// body) gets stuck behind its own stalled body, degrading the pipeline
// into lock-step; under Option B ACKs travel on their own (peer, stream)
// queues and the ring stays full.
#include <vector>

#include "bench/bench_common.hpp"

using namespace sctpmpi;
using namespace sctpmpi::bench;

namespace {

double run_ring(core::RpiConfig::RaceFix fix, double loss, int iters,
                std::size_t msg) {
  auto cfg = paper_config(core::TransportKind::kSctp, loss);
  cfg.rpi.race_fix = fix;
  core::World world(cfg);
  world.run([&](core::Mpi& mpi) {
    const int next = (mpi.rank() + 1) % mpi.size();
    const int prev = (mpi.rank() - 1 + mpi.size()) % mpi.size();
    std::vector<std::byte> out(msg, std::byte{1});
    std::vector<std::byte> in(msg);
    mpi.barrier();
    for (int i = 0; i < iters; ++i) {
      // Several concurrent long transfers per rank, different tags.
      std::vector<core::Request> reqs;
      for (int t = 0; t < 3; ++t) reqs.push_back(mpi.irecv(in, prev, t));
      for (int t = 0; t < 3; ++t) reqs.push_back(mpi.isend(out, next, t));
      mpi.waitall(reqs);
    }
  });
  return world.elapsed_seconds();
}

}  // namespace

int main() {
  banner("Ablation: long-message race fix, Option A vs Option B",
         "paper §3.4.1/§3.4.2 — concurrency cost of the simple fix");

  const int iters = scaled(60, 10);
  const std::size_t msg = 300 * 1024;  // > send buffer: mid-body stalls

  apps::Table table({"Loss", "Option B (s)", "Option A (s)", "A penalty"});
  for (double loss : {0.0, 0.01}) {
    const double b =
        run_ring(core::RpiConfig::RaceFix::kOptionB, loss, iters, msg);
    const double a =
        run_ring(core::RpiConfig::RaceFix::kOptionA, loss, iters, msg);
    table.add_row({apps::fmt("%.0f%%", loss * 100), apps::fmt("%.2f", b),
                   apps::fmt("%.2f", a),
                   apps::fmt("%+.0f%%", (a / b - 1.0) * 100)});
  }
  table.print();
  std::printf(
      "\nShape: both options are race-free; Option A pays for its\n"
      "simplicity whenever a long body stalls mid-write and unrelated\n"
      "control traffic (rendezvous ACKs) queues behind it (§3.4.1's\n"
      "stated drawback).\n");
  return 0;
}
