// SCTP wire format: common header + chunk codecs (RFC 2960 layout).
//
// An SctpPacket serializes to the IP payload: a 12-byte common header with
// source/destination ports, verification tag and CRC32c checksum, followed
// by bundled chunks, each padded to a 4-byte boundary.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <variant>
#include <vector>

#include "net/address.hpp"
#include "net/buffer.hpp"
#include "net/bytes.hpp"
#include "net/slice.hpp"

namespace sctpmpi::sctp {

inline constexpr std::size_t kCommonHeaderBytes = 12;
inline constexpr std::size_t kDataChunkHeaderBytes = 16;
inline constexpr std::size_t kChunkHeaderBytes = 4;

enum class ChunkType : std::uint8_t {
  kData = 0,
  kInit = 1,
  kInitAck = 2,
  kSack = 3,
  kHeartbeat = 4,
  kHeartbeatAck = 5,
  kAbort = 6,
  kShutdown = 7,
  kShutdownAck = 8,
  kError = 9,
  kCookieEcho = 10,
  kCookieAck = 11,
  kShutdownComplete = 14,
};

struct DataChunk {
  bool unordered = false;   // U flag
  bool begin = false;       // B flag: first fragment of a user message
  bool end = false;         // E flag: last fragment
  std::uint32_t tsn = 0;
  std::uint16_t sid = 0;    // stream identifier (SNo in the paper's Fig. 1)
  std::uint16_t ssn = 0;    // stream sequence number
  std::uint32_t ppid = 0;   // payload protocol id (paper §2.3: PID mapping)
  /// Fragment bytes as zero-copy slices of the sender's message Buffer
  /// (outbound) or the received wire Buffer (inbound).
  net::SliceChain payload;

  std::size_t wire_bytes() const {
    return kDataChunkHeaderBytes + ((payload.size() + 3) & ~std::size_t{3});
  }
};

struct InitChunk {          // also used for INIT-ACK (with cookie set)
  std::uint32_t initiate_tag = 0;
  std::uint32_t a_rwnd = 0;
  std::uint16_t num_ostreams = 0;
  std::uint16_t max_instreams = 0;
  std::uint32_t initial_tsn = 0;
  std::vector<net::IpAddr> addresses;     // multihoming address params
  std::vector<std::byte> cookie;          // INIT-ACK only
};

struct GapBlock {
  // Offsets relative to the cumulative TSN ack (RFC 2960 SACK format).
  std::uint16_t start = 0;
  std::uint16_t end = 0;
  bool operator==(const GapBlock&) const = default;
};

struct SackChunk {
  std::uint32_t cum_tsn_ack = 0;
  std::uint32_t a_rwnd = 0;
  std::vector<GapBlock> gaps;   // unlimited in SCTP (paper §4.1.1 bullet 1)
  std::vector<std::uint32_t> dup_tsns;
};

struct HeartbeatChunk {       // also HEARTBEAT-ACK (info echoed back)
  bool is_ack = false;
  net::IpAddr path_addr;      // which destination address was probed
  std::uint64_t timestamp = 0;
};

struct CookieEchoChunk {
  std::vector<std::byte> cookie;
};

struct ShutdownChunk {
  std::uint32_t cum_tsn_ack = 0;
};

// Flag-only chunks.
struct AbortChunk {};
struct CookieAckChunk {};
struct ShutdownAckChunk {};
struct ShutdownCompleteChunk {};
struct ErrorChunk {
  std::uint16_t cause = 0;  // e.g. 1 = invalid stream id, 3 = stale cookie
};

using Chunk = std::variant<DataChunk, InitChunk, SackChunk, HeartbeatChunk,
                           CookieEchoChunk, ShutdownChunk, AbortChunk,
                           CookieAckChunk, ShutdownAckChunk,
                           ShutdownCompleteChunk, ErrorChunk>;

/// Wire-level chunk wrapper: InitChunk doubles for INIT and INIT-ACK, so we
/// carry the explicit type alongside the payload variant.
struct TypedChunk {
  ChunkType type;
  Chunk body;

  std::size_t wire_bytes() const;
};

struct SctpPacket {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t vtag = 0;
  // One list per packet in flight: pooled small-block storage, not malloc.
  std::vector<TypedChunk, net::PoolAllocator<TypedChunk>> chunks;

  std::size_t wire_bytes() const;
  /// Serializes; computes and stores CRC32c when `with_crc` is true
  /// (otherwise the checksum field is written as zero, modelling the
  /// paper's disabled-checksum kernel).
  std::vector<std::byte> encode(bool with_crc) const;
  /// Serializes into `out` (cleared first), reusing its capacity: the
  /// transmit path encodes into pooled net::Buffer blocks allocation-free.
  void encode_into(std::vector<std::byte>& out, bool with_crc) const;
  /// Scatter-gather serialization: headers are written once into the
  /// Builder, DATA payload slices are appended (the single send-side
  /// payload copy, counted). Used by the transmit path.
  void encode_into(net::Buffer::Builder& out, bool with_crc) const;
  /// Parses; when `verify_crc`, returns nullopt on checksum mismatch.
  /// Throws net::DecodeError on malformed input. DATA payloads are copied
  /// out of `wire` (callers holding only a raw span).
  static std::optional<SctpPacket> decode(std::span<const std::byte> wire,
                                          bool verify_crc);
  /// Disambiguates vector arguments (convertible to both span and Buffer).
  static std::optional<SctpPacket> decode(const std::vector<std::byte>& wire,
                                          bool verify_crc) {
    return decode(std::span<const std::byte>{wire}, verify_crc);
  }
  /// Zero-copy parse: DATA payload chains retain slices of `wire`'s block.
  static std::optional<SctpPacket> decode(const net::Buffer& wire,
                                          bool verify_crc);
};

}  // namespace sctpmpi::sctp
