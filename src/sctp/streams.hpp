// Per-stream ordering and message reassembly (the multistreaming machinery
// the paper maps MPI tag/rank/context onto).
//
// Outbound: each stream assigns consecutive SSNs to user messages; all
// fragments of a message share the stream's SSN and carry consecutive TSNs
// with B/E flags. Inbound: fragments are reassembled per (sid, ssn) and
// ordered messages are released in SSN order per stream — messages on
// different streams are delivered independently, which is exactly what
// removes head-of-line blocking between MPI tags.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "net/bytes.hpp"
#include "sctp/chunk.hpp"

namespace sctpmpi::sctp {

/// A user message released to the application.
struct DeliveredMessage {
  std::uint16_t sid = 0;
  std::uint16_t ssn = 0;
  std::uint32_t ppid = 0;
  bool unordered = false;
  /// Reassembled body: spliced fragment slices, never a concatenating copy.
  net::SliceChain data;
};

/// Outbound SSN assignment for one stream.
class OutStream {
 public:
  std::uint16_t next_ssn() { return ssn_++; }
  std::uint16_t peek_ssn() const { return ssn_; }

 private:
  std::uint16_t ssn_ = 0;
};

/// Inbound reassembly and ordering for all streams of one association.
class InboundStreams {
 public:
  explicit InboundStreams(std::uint16_t num_streams)
      : streams_(num_streams) {}

  /// Accepts one DATA chunk (already TSN-deduplicated). Complete, in-order
  /// messages become available via pop(). Returns the number of messages
  /// made deliverable by this chunk.
  std::size_t accept(const DataChunk& chunk);

  /// Next deliverable message in arrival-completion order across streams
  /// (paper §3.1: one-to-many sockets deliver in arrival order).
  std::optional<DeliveredMessage> pop();

  bool has_deliverable() const { return !ready_.empty(); }
  std::size_t deliverable_count() const { return ready_.size(); }

  /// Bytes buffered in partial/blocked messages (counts against rwnd).
  std::size_t buffered_bytes() const { return buffered_bytes_; }
  std::size_t ready_bytes() const { return ready_bytes_; }

  /// Called by the socket when the application consumes a message.
  void on_consumed(std::size_t bytes) { ready_bytes_ -= bytes; }

 private:
  struct Fragment {
    bool begin = false;
    bool end = false;
    net::SliceChain data;
  };
  struct TsnOrder {
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      return net::seq_lt(a, b);
    }
  };
  struct PartialMessage {
    std::uint32_t ppid = 0;
    // Fragments keyed by TSN; a message is complete when it has a B
    // fragment, an E fragment, and contiguous TSNs in between. Fragments
    // are TSN-deduplicated upstream (TsnMap), so completeness reduces to
    // counting: fragment count == E-to-B TSN span. O(1) per arrival
    // instead of walking every buffered fragment.
    std::map<std::uint32_t, Fragment, TsnOrder> fragments;
    bool has_begin = false;
    bool has_end = false;
    std::uint32_t begin_tsn = 0;
    std::uint32_t end_tsn = 0;
  };
  struct StreamIn {
    std::uint16_t next_ssn = 0;
    std::map<std::uint16_t, PartialMessage> partial;  // keyed by SSN
  };

  bool try_complete_(StreamIn& stream, std::uint16_t sid, std::uint16_t ssn);
  void release_in_order_(StreamIn& stream, std::uint16_t sid);

  std::vector<StreamIn> streams_;
  // Completed but not yet SSN-eligible messages wait inside `complete_`;
  // SSN-eligible ones move to ready_.
  std::map<std::pair<std::uint16_t, std::uint16_t>, DeliveredMessage>
      complete_;
  std::deque<DeliveredMessage> ready_;
  std::size_t buffered_bytes_ = 0;
  std::size_t ready_bytes_ = 0;
};

}  // namespace sctpmpi::sctp
