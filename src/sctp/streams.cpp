#include "sctp/streams.hpp"

#include <utility>

namespace sctpmpi::sctp {

std::size_t InboundStreams::accept(const DataChunk& chunk) {
  if (chunk.sid >= streams_.size()) return 0;  // invalid stream: ignored here
  StreamIn& stream = streams_[chunk.sid];

  if (chunk.unordered) {
    // Unordered single-fragment fast path; multi-fragment unordered
    // messages reassemble by TSN adjacency like ordered ones but bypass
    // SSN ordering.
    if (chunk.begin && chunk.end) {
      DeliveredMessage m;
      m.sid = chunk.sid;
      m.ssn = chunk.ssn;
      m.ppid = chunk.ppid;
      m.unordered = true;
      m.data = chunk.payload;
      ready_bytes_ += m.data.size();
      ready_.push_back(std::move(m));
      return 1;
    }
  }

  PartialMessage& pm = stream.partial[chunk.ssn];
  pm.ppid = chunk.ppid;
  if (chunk.begin) {
    pm.has_begin = true;
    pm.begin_tsn = chunk.tsn;
  }
  if (chunk.end) {
    pm.has_end = true;
    pm.end_tsn = chunk.tsn;
  }
  Fragment frag;
  frag.begin = chunk.begin;
  frag.end = chunk.end;
  frag.data = chunk.payload;
  buffered_bytes_ += frag.data.size();
  pm.fragments.emplace(chunk.tsn, std::move(frag));

  const std::size_t before = ready_.size();
  if (try_complete_(stream, chunk.sid, chunk.ssn)) {
    release_in_order_(stream, chunk.sid);
  }
  return ready_.size() - before;
}

bool InboundStreams::try_complete_(StreamIn& stream, std::uint16_t sid,
                                   std::uint16_t ssn) {
  auto pit = stream.partial.find(ssn);
  if (pit == stream.partial.end()) return false;
  PartialMessage& pm = pit->second;

  // Complete iff: first fragment has B, last has E, TSNs contiguous.
  // Fragments are unique per TSN (deduplicated upstream), so the count can
  // only fill the B-to-E span when the message is plausibly complete: that
  // O(1) gate culls every partial arrival, and the exact contiguity walk —
  // which also rejects malformed fragment sets with strays outside [B, E]
  // — runs once per message instead of once per fragment.
  if (!pm.has_begin || !pm.has_end) return false;
  const std::int32_t d = net::seq_diff(pm.end_tsn, pm.begin_tsn);
  if (d < 0 ||
      pm.fragments.size() != static_cast<std::size_t>(d) + 1) {
    return false;
  }
  if (!pm.fragments.begin()->second.begin) return false;
  if (!pm.fragments.rbegin()->second.end) return false;
  std::uint32_t expect = pm.fragments.begin()->first;
  for (const auto& [tsn, frag] : pm.fragments) {
    if (tsn != expect) return false;
    ++expect;
  }

  DeliveredMessage m;
  m.sid = sid;
  m.ssn = ssn;
  m.ppid = pm.ppid;
  for (auto& [tsn, frag] : pm.fragments) {
    m.data.append(std::move(frag.data));  // splice slices, no byte copy
  }
  // Bytes stay counted in buffered_bytes_ until the message becomes
  // SSN-eligible (release_in_order_), since they still occupy the receive
  // buffer either way.
  stream.partial.erase(pit);
  complete_.emplace(std::make_pair(sid, ssn), std::move(m));
  return true;
}

void InboundStreams::release_in_order_(StreamIn& stream, std::uint16_t sid) {
  // Move every SSN-consecutive complete message to the ready queue. This is
  // the per-stream ordering guarantee: stream S delivers SSN 0,1,2,...
  // regardless of what other streams are doing.
  while (true) {
    auto it = complete_.find(std::make_pair(sid, stream.next_ssn));
    if (it == complete_.end()) break;
    buffered_bytes_ -= it->second.data.size();
    ready_bytes_ += it->second.data.size();
    ready_.push_back(std::move(it->second));
    complete_.erase(it);
    ++stream.next_ssn;
  }
}

std::optional<DeliveredMessage> InboundStreams::pop() {
  if (ready_.empty()) return std::nullopt;
  DeliveredMessage m = std::move(ready_.front());
  ready_.pop_front();
  return m;
}

}  // namespace sctpmpi::sctp
