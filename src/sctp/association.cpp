#include "sctp/association.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <set>

// Runtime-gated protocol tracing: set SCTPTRACE=1 to log transmissions,
// SACK processing, timeouts and handshake steps to stdout. The env lookup
// is latched once — this macro sits on per-packet paths and getenv walks
// the whole environment block on every call.
namespace {
bool sctp_trace_enabled() {
  static const bool on = std::getenv("SCTPTRACE") != nullptr;
  return on;
}
}  // namespace
#define SCTPDBG(...) \
  do {               \
    if (sctp_trace_enabled()) std::printf(__VA_ARGS__); \
  } while (0)

#include "sctp/socket.hpp"

namespace sctpmpi::sctp {

using net::seq_geq;
using net::seq_gt;
using net::seq_leq;
using net::seq_lt;

const char* to_string(AssocState s) {
  switch (s) {
    case AssocState::kClosed: return "CLOSED";
    case AssocState::kCookieWait: return "COOKIE_WAIT";
    case AssocState::kCookieEchoed: return "COOKIE_ECHOED";
    case AssocState::kEstablished: return "ESTABLISHED";
    case AssocState::kShutdownPending: return "SHUTDOWN_PENDING";
    case AssocState::kShutdownSent: return "SHUTDOWN_SENT";
    case AssocState::kShutdownReceived: return "SHUTDOWN_RECEIVED";
    case AssocState::kShutdownAckSent: return "SHUTDOWN_ACK_SENT";
  }
  return "?";
}

Association::Association(SctpSocket& socket, AssocId id,
                         std::uint16_t peer_port,
                         std::vector<net::IpAddr> peer_addrs)
    : socket_(socket),
      cfg_(socket.config()),
      sim_(socket.stack().host().sim()),
      id_(id),
      peer_port_(peer_port),
      sack_timer_(sim_, [this] { send_sack_now_(); }),
      t1_timer_(sim_, [this] { on_t1_timeout_(); }),
      t2_timer_(sim_, [this] { maybe_progress_shutdown_(); }),
      autoclose_timer_(sim_, [this] { shutdown(); }) {
  for (net::IpAddr a : peer_addrs) {
    paths_.emplace_back(a);
    Path& p = paths_.back();
    p.rto = cfg_.rto_initial;
    p.cwnd = static_cast<std::uint32_t>(cfg_.init_cwnd_mtus * cfg_.pmtu);
    p.ssthresh = static_cast<std::uint32_t>(cfg_.sndbuf);
    const std::size_t idx = paths_.size() - 1;
    p.t3 = std::make_unique<sim::Timer>(sim_, [this, idx] {
      on_t3_timeout_(idx);
    });
    p.hb_timer = std::make_unique<sim::Timer>(sim_, [this, idx] {
      on_hb_timer_(idx);
    });
  }
  out_streams_.resize(cfg_.num_ostreams);
  num_ostreams_ = cfg_.num_ostreams;
}

Association::~Association() = default;

// ---------------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------------

void Association::start_init() {
  assert(state_ == AssocState::kClosed);
  local_vtag_ = socket_.stack().random_tag();
  next_tsn_ = socket_.stack().random_tsn();
  state_ = AssocState::kCookieWait;
  send_init_();
  t1_timer_.arm(cfg_.rto_initial);
}

void Association::send_init_() {
  InitChunk init;
  init.initiate_tag = local_vtag_;
  init.a_rwnd = static_cast<std::uint32_t>(cfg_.rcvbuf);
  init.num_ostreams = cfg_.num_ostreams;
  init.max_instreams = cfg_.max_instreams;
  init.initial_tsn = next_tsn_;
  // Advertise all our interface addresses (multihoming), or the socket's
  // configured override (DSR backends advertising service VIPs).
  if (socket_.local_addrs().empty()) {
    net::Host& host = socket_.stack().host();
    for (std::size_t i = 0; i < host.interface_count(); ++i) {
      init.addresses.push_back(host.addr(i));
    }
  } else {
    for (const net::IpAddr a : socket_.local_addrs()) {
      init.addresses.push_back(a);
    }
  }
  SctpPacket pkt;
  pkt.sport = socket_.port();
  pkt.dport = peer_port_;
  pkt.vtag = 0;  // INIT always carries tag 0
  pkt.chunks.push_back(TypedChunk{ChunkType::kInit, std::move(init)});
  transmit_packet_(std::move(pkt), primary_path_, /*rtx=*/init_retries_ > 0);
}

void Association::on_init_ack_(const InitChunk& ia, net::IpAddr /*from*/) {
  if (state_ != AssocState::kCookieWait) return;  // stale
  peer_vtag_ = ia.initiate_tag;
  peer_arwnd_ = ia.a_rwnd;
  num_ostreams_ = std::min<std::uint16_t>(cfg_.num_ostreams,
                                          ia.max_instreams);
  tsn_map_ = std::make_unique<TsnMap>(ia.initial_tsn);
  inbound_ = std::make_unique<InboundStreams>(
      std::min<std::uint16_t>(cfg_.max_instreams, ia.num_ostreams));
  // Adopt any extra peer addresses the INIT-ACK advertises.
  for (net::IpAddr a : ia.addresses) {
    if (path_index_(a) == SIZE_MAX) {
      paths_.emplace_back(a);
      Path& p = paths_.back();
      p.rto = cfg_.rto_initial;
      p.cwnd = static_cast<std::uint32_t>(cfg_.init_cwnd_mtus * cfg_.pmtu);
      p.ssthresh = ia.a_rwnd;
      const std::size_t idx = paths_.size() - 1;
      p.t3 = std::make_unique<sim::Timer>(sim_,
                                          [this, idx] { on_t3_timeout_(idx); });
      p.hb_timer = std::make_unique<sim::Timer>(sim_,
                                                [this, idx] { on_hb_timer_(idx); });
      socket_.register_peer_addr_(*this, a);
    }
  }
  for (auto& p : paths_) p.ssthresh = ia.a_rwnd;
  cookie_ = ia.cookie;
  init_retries_ = 0;
  state_ = AssocState::kCookieEchoed;
  send_cookie_echo_();
  t1_timer_.arm(cfg_.rto_initial);
}

void Association::send_cookie_echo_() {
  SCTPDBG("[%f] port %u assoc %u COOKIE-ECHO send (retries=%u)\n", (double)sim_.now()/1e9, socket_.port(), id_, init_retries_);
  SctpPacket pkt;
  pkt.sport = socket_.port();
  pkt.dport = peer_port_;
  pkt.vtag = peer_vtag_;
  pkt.chunks.push_back(
      TypedChunk{ChunkType::kCookieEcho, CookieEchoChunk{cookie_}});
  transmit_packet_(std::move(pkt), primary_path_, /*rtx=*/init_retries_ > 0);
}

void Association::on_cookie_ack_() {
  if (state_ != AssocState::kCookieEchoed) return;
  t1_timer_.cancel();
  cookie_.clear();
  state_ = AssocState::kEstablished;
  start_heartbeats_();
  socket_.notify_(
      Notification{NotificationType::kCommUp, id_, paths_[0].addr});
  touch_autoclose_();
  try_transmit_();
}

void Association::establish_from_cookie(const StateCookie& cookie) {
  local_vtag_ = cookie.local_itag;
  peer_vtag_ = cookie.peer_itag;
  next_tsn_ = cookie.local_itsn;
  tsn_map_ = std::make_unique<TsnMap>(cookie.peer_itsn);
  inbound_ = std::make_unique<InboundStreams>(std::min<std::uint16_t>(
      cfg_.max_instreams, std::max<std::uint16_t>(cookie.peer_ostreams, 1)));
  num_ostreams_ =
      std::min<std::uint16_t>(cfg_.num_ostreams, cookie.peer_max_instreams);
  peer_arwnd_ = cookie.peer_arwnd;
  t1_timer_.cancel();
  state_ = AssocState::kEstablished;
  start_heartbeats_();
  socket_.notify_(
      Notification{NotificationType::kCommUp, id_, paths_[0].addr});
  touch_autoclose_();
  try_transmit_();
}

void Association::on_t1_timeout_() {
  SCTPDBG("[%f] port %u assoc %u T1 fire state=%s retries=%u\n", (double)sim_.now()/1e9, socket_.port(), id_, to_string(state_), init_retries_);
  ++init_retries_;
  if (init_retries_ > cfg_.max_init_retrans) {
    enter_closed_(/*lost=*/true);
    return;
  }
  const sim::SimTime backoff =
      std::min(cfg_.rto_initial << std::min(init_retries_, 6u), cfg_.rto_max);
  if (state_ == AssocState::kCookieWait) {
    send_init_();
    t1_timer_.arm(backoff);
  } else if (state_ == AssocState::kCookieEchoed) {
    send_cookie_echo_();
    t1_timer_.arm(backoff);
  }
}

// ---------------------------------------------------------------------------
// Outbound data
// ---------------------------------------------------------------------------

bool Association::writable() const {
  if (state_ != AssocState::kEstablished &&
      state_ != AssocState::kCookieWait &&
      state_ != AssocState::kCookieEchoed)
    return false;
  return sndbuf_used_ < cfg_.sndbuf;
}

std::ptrdiff_t Association::send_check_(std::uint16_t sid,
                                        std::size_t total) const {
  if (state_ == AssocState::kClosed ||
      state_ == AssocState::kShutdownPending ||
      state_ == AssocState::kShutdownSent ||
      state_ == AssocState::kShutdownReceived ||
      state_ == AssocState::kShutdownAckSent)
    return kError;
  if (total == 0) return kError;  // SCTP forbids empty user messages
  if (sid >= num_ostreams_) return kError;
  // The paper §3.4/§3.6: a single sctp_sendmsg is limited by the send
  // buffer size; larger messages must be segmented by the application.
  if (total > cfg_.sndbuf) return kMsgSize;
  if (sndbuf_used_ + total > cfg_.sndbuf) return kAgain;
  return 0;
}

std::ptrdiff_t Association::sendmsg_gather(std::uint16_t sid,
                                           std::span<const std::byte> head,
                                           std::span<const std::byte> body,
                                           std::uint32_t ppid,
                                           bool unordered) {
  const std::size_t total = head.size() + body.size();
  if (const auto rc = send_check_(sid, total); rc != 0) return rc;
  // Ingest after the guards so rejected sends never copy.
  return sendmsg_gather(sid, net::BufferSlice{net::Buffer::copy_of(head)},
                        net::BufferSlice{net::Buffer::copy_of(body)}, ppid,
                        unordered);
}

std::ptrdiff_t Association::sendmsg_gather(std::uint16_t sid,
                                           const net::BufferSlice& head,
                                           const net::BufferSlice& body,
                                           std::uint32_t ppid,
                                           bool unordered) {
  const std::size_t total = head.len + body.len;
  if (const auto rc = send_check_(sid, total); rc != 0) return rc;

  fragment_message_(sid, head, body, ppid, unordered);
  stats_.bytes_sent += total;
  touch_autoclose_();
  if (state_ == AssocState::kEstablished) try_transmit_();
  return static_cast<std::ptrdiff_t>(total);
}

std::size_t Association::max_chunk_payload_() const {
  return cfg_.pmtu - net::kIpHeaderBytes - kCommonHeaderBytes -
         kDataChunkHeaderBytes;
}

void Association::fragment_message_(std::uint16_t sid,
                                    const net::BufferSlice& head,
                                    const net::BufferSlice& body,
                                    std::uint32_t ppid, bool unordered) {
  const std::size_t frag = max_chunk_payload_();
  const std::uint16_t ssn = out_streams_[sid].next_ssn();
  const std::size_t total = head.len + body.len;
  // Logical concatenation of the two gather segments: each chunk's payload
  // is at most two slices (a head tail and a body prefix) — no byte copies.
  auto slice_range = [&](std::size_t offset, std::size_t n,
                         net::SliceChain& out) {
    if (offset < head.len) {
      const std::size_t h = std::min(n, head.len - offset);
      out.push_back(head.sub(offset, h));
      offset += h;
      n -= h;
    }
    if (n > 0) out.push_back(body.sub(offset - head.len, n));
  };
  std::size_t offset = 0;
  while (offset < total) {
    const std::size_t n = std::min(frag, total - offset);
    OutChunk oc;
    oc.data.unordered = unordered;
    oc.data.begin = offset == 0;
    oc.data.end = offset + n == total;
    oc.data.tsn = next_tsn_++;
    oc.data.sid = sid;
    oc.data.ssn = ssn;
    oc.data.ppid = ppid;
    slice_range(offset, n, oc.data.payload);
    sndbuf_used_ += n;
    sendq_.push_back(std::move(oc));
    offset += n;
  }
}

std::uint32_t Association::peer_rwnd_avail_() const {
  if (outstanding_bytes_ >= peer_arwnd_) return 0;
  return peer_arwnd_ - static_cast<std::uint32_t>(outstanding_bytes_);
}

void Association::try_transmit_() {
  if (state_ != AssocState::kEstablished &&
      state_ != AssocState::kShutdownPending &&
      state_ != AssocState::kShutdownReceived)
    return;
  // Burst mitigation (RFC 2960 §6.1 guideline): at each send opportunity a
  // path may not grow its flight beyond flightsize + max_burst*PMTU. This
  // preserves ACK clocking — without it a large cwnd empties into the NIC
  // queue as one giant burst and causes self-inflicted drops.
  for (std::size_t pi = 0; pi < paths_.size(); ++pi) {
    burst_cap_[pi] = paths_[pi].flight + cfg_.max_burst * cfg_.pmtu;
  }
  unsigned burst = 0;
  while (burst < cfg_.max_burst) {
    // Retransmissions go first, to their designated path.
    std::size_t rtx_path = SIZE_MAX;
    for (std::size_t i = 0; i < inflight_.size(); ++i) {
      const OutChunk& oc = inflight_.at_offset(i);
      if (oc.marked_rtx) {
        rtx_path = oc.rtx_path != SIZE_MAX ? oc.rtx_path : oc.path;
        break;
      }
    }
    if (rtx_path != SIZE_MAX) {
      if (!build_and_send_packet_(rtx_path, /*allow_new_data=*/false)) break;
    } else {
      // CMT (paper §5): stripe new data round-robin over active paths;
      // stock behaviour sends all new data to the primary.
      std::size_t dest = primary_path_;
      if (cfg_.cmt_enabled) {
        for (std::size_t k = 0; k < paths_.size(); ++k) {
          const std::size_t idx = (cmt_next_path_ + k) % paths_.size();
          if (paths_[idx].active) {
            dest = idx;
            cmt_next_path_ = idx + 1;
            break;
          }
        }
      }
      if (!build_and_send_packet_(dest, /*allow_new_data=*/true)) break;
    }
    ++burst;
  }
  maybe_progress_shutdown_();
}

bool Association::build_and_send_packet_(std::size_t path_idx,
                                         bool allow_new_data) {
  Path& path = paths_[path_idx];
  SctpPacket pkt;
  pkt.sport = socket_.port();
  pkt.dport = peer_port_;
  pkt.vtag = peer_vtag_;

  std::size_t room =
      cfg_.pmtu - net::kIpHeaderBytes - kCommonHeaderBytes;
  bool has_data = false;

  // Piggyback a pending SACK (bundling, paper Fig. 1) — but only onto
  // packets headed for the path the data arrived on; a SACK must go back
  // to the sender's source address or a dead primary path swallows it.
  if ((sack_immediately_ || sack_timer_.armed()) &&
      path_idx == last_data_path_ && tsn_map_ != nullptr) {
    SackChunk sack;
    sack.cum_tsn_ack = tsn_map_->cum_tsn();
    const std::size_t held = inbound_->buffered_bytes() + unread_bytes_;
    sack.a_rwnd = static_cast<std::uint32_t>(
        cfg_.rcvbuf > held ? cfg_.rcvbuf - held : 0);
    sack.gaps = tsn_map_->gap_blocks();
    sack.dup_tsns = tsn_map_->take_duplicates();
    TypedChunk tc{ChunkType::kSack, std::move(sack)};
    if (tc.wire_bytes() <= room) {
      room -= tc.wire_bytes();
      pkt.chunks.push_back(std::move(tc));
      sack_immediately_ = false;
      sack_timer_.cancel();
      packets_since_sack_ = 0;
      ++stats_.sacks_sent;
    }
  }

  // Bundle retransmissions destined for this path.
  bool rtx_added = false;
  for (std::size_t i = 0; i < inflight_.size(); ++i) {
    OutChunk& oc = inflight_.at_offset(i);
    if (!oc.marked_rtx) continue;
    const std::size_t dest =
        oc.rtx_path != SIZE_MAX ? oc.rtx_path : oc.path;
    if (dest != path_idx) continue;
    TypedChunk tc{ChunkType::kData, oc.data};
    if (tc.wire_bytes() > room) break;
    room -= tc.wire_bytes();
    pkt.chunks.push_back(std::move(tc));
    oc.marked_rtx = false;
    oc.rtx_path = SIZE_MAX;
    oc.path = path_idx;
    oc.sent_time = sim_.now();
    oc.missing_reports = 0;
    ++oc.tx_count;
    path.flight += oc.data.payload.size();
    outstanding_bytes_ += oc.data.payload.size();
    ++stats_.retransmits;
    has_data = true;
    rtx_added = true;
  }

  // Bundle new data while congestion and flow control allow.
  if (allow_new_data && !rtx_added) {
    while (!sendq_.empty()) {
      OutChunk& oc = sendq_.front();
      const std::size_t size = oc.data.payload.size();
      // cwnd: a sender with any room may send a full chunk (RFC 2960 §6.1B:
      // "when cwnd is 1 byte ... it can send a full PMTU", paper §4.1.1).
      if (has_data_on_path_over_cwnd_(path)) break;
      if (path.flight >= burst_cap_[path_idx]) break;  // burst mitigation
      // Peer rwnd; the zero-window probe rule permits one chunk in flight.
      if (size > peer_rwnd_avail_() &&
          !(peer_rwnd_avail_() == 0 && outstanding_bytes_ == 0 &&
            !has_data))
        break;
      TypedChunk tc{ChunkType::kData, oc.data};
      if (tc.wire_bytes() > room) break;
      room -= tc.wire_bytes();
      oc.path = path_idx;
      oc.sent_time = sim_.now();
      oc.tx_count = 1;
      path.flight += size;
      outstanding_bytes_ += size;
      highest_tsn_sent_ = oc.data.tsn;
      if (!path.rtt_sampling) {
        path.rtt_sampling = true;
        path.rtt_tsn = oc.data.tsn;
        path.rtt_start = sim_.now();
      }
      pkt.chunks.push_back(std::move(tc));
      inflight_.push_back(oc.data.tsn, std::move(oc));
      sendq_.pop_front();
      ++stats_.data_chunks_sent;
      has_data = true;
      // Probe sent into a zero window: stop after one chunk.
      if (peer_rwnd_avail_() == 0) break;
    }
  }

  if (pkt.chunks.empty()) return false;
  if (has_data && !path.t3->armed()) arm_t3_(path_idx);
  SCTPDBG("[%f] port %u assoc %u TX path=%zu chunks=%zu data=%d flight=%zu\n", (double)sim_.now()/1e9, socket_.port(), id_, path_idx, pkt.chunks.size(), (int)has_data, path.flight);
  transmit_packet_(std::move(pkt), path_idx, rtx_added);
  return true;
}

bool Association::has_data_on_path_over_cwnd_(const Path& p) const {
  return p.flight >= p.cwnd;
}

std::size_t Association::pick_rtx_path_(std::size_t original) const {
  if (!cfg_.retransmit_on_alternate_path) return original;
  // Next active path after the original (RFC 2960 §6.4.1).
  for (std::size_t k = 1; k <= paths_.size(); ++k) {
    const std::size_t idx = (original + k) % paths_.size();
    if (paths_[idx].active) return idx;
  }
  return original;
}

void Association::send_chunk_now_(TypedChunk&& chunk, std::size_t path_idx) {
  SctpPacket pkt;
  pkt.sport = socket_.port();
  pkt.dport = peer_port_;
  pkt.vtag = peer_vtag_;
  pkt.chunks.push_back(std::move(chunk));
  transmit_packet_(std::move(pkt), path_idx);
}

void Association::transmit_packet_(SctpPacket&& pkt, std::size_t path_idx,
                                   bool rtx) {
  ++stats_.packets_sent;
  // Pin the source to the path's local address: route_ pairs it with the
  // matching interface, and an overridden socket speaks as the VIP on
  // every path.
  socket_.stack().transmit(pkt, paths_[path_idx].addr,
                           socket_.local_addr_for(paths_[path_idx].addr), rtx);
}

// ---------------------------------------------------------------------------
// SACK processing (sender side)
// ---------------------------------------------------------------------------

void Association::handle_sack_(const SackChunk& sack) {
  SCTPDBG("[%f] port %u assoc %u SACK cum=%u gaps=%zu arwnd=%u inflight=%zu\n", (double)sim_.now()/1e9, socket_.port(), id_, sack.cum_tsn_ack, sack.gaps.size(), sack.a_rwnd, inflight_.size());
  ++stats_.sacks_received;
  peer_arwnd_ = sack.a_rwnd;

  const std::uint32_t cum = sack.cum_tsn_ack;
  std::map<std::size_t, std::uint32_t> acked_per_path;
  bool cum_advanced = false;

  // Cumulative acknowledgment: everything <= cum is done.
  while (!inflight_.empty()) {
    if (seq_gt(inflight_.base(), cum)) break;
    OutChunk& oc = inflight_.front();
    const std::size_t size = oc.data.payload.size();
    if (!oc.sacked && !oc.marked_rtx) {
      paths_[oc.path].flight -= std::min(paths_[oc.path].flight, size);
      outstanding_bytes_ -= std::min(outstanding_bytes_, size);
      acked_per_path[oc.path] += static_cast<std::uint32_t>(size);
    } else if (oc.sacked) {
      // already counted when gap-acked
    } else {
      acked_per_path[oc.path] += static_cast<std::uint32_t>(size);
    }
    Path& p = paths_[oc.path];
    if (p.rtt_sampling && oc.data.tsn == p.rtt_tsn) {
      p.rtt_sampling = false;
      if (oc.tx_count == 1) {  // Karn: never time retransmitted chunks
        update_path_rtt_(p, sim_.now() - oc.sent_time);
      }
    }
    sndbuf_used_ -= std::min(sndbuf_used_, size);
    cum_advanced = true;
    inflight_.pop_front();
  }

  // Gap-ack blocks: mark chunks the peer holds above the cumulative point.
  std::uint32_t highest_sacked = cum;
  for (const GapBlock& g : sack.gaps) {
    const std::uint32_t lo = cum + g.start;
    const std::uint32_t hi = cum + g.end;
    if (seq_gt(hi, highest_sacked)) highest_sacked = hi;
    std::ptrdiff_t start =
        inflight_.empty() ? 0 : net::seq_diff(lo, inflight_.base());
    if (start < 0) start = 0;  // block begins below the oldest outstanding
    for (std::size_t i = static_cast<std::size_t>(start);
         i < inflight_.size() && seq_leq(inflight_.key_at(i), hi); ++i) {
      OutChunk& oc = inflight_.at_offset(i);
      if (oc.sacked) continue;
      oc.sacked = true;
      if (!oc.marked_rtx) {
        paths_[oc.path].flight -=
            std::min(paths_[oc.path].flight, oc.data.payload.size());
        outstanding_bytes_ -=
            std::min(outstanding_bytes_, oc.data.payload.size());
      }
      oc.marked_rtx = false;
      acked_per_path[oc.path] +=
          static_cast<std::uint32_t>(oc.data.payload.size());
      Path& p = paths_[oc.path];
      if (p.rtt_sampling && oc.data.tsn == p.rtt_tsn) {
        p.rtt_sampling = false;
        if (oc.tx_count == 1) update_path_rtt_(p, sim_.now() - oc.sent_time);
      }
    }
  }

  // Missing reports -> fast retransmit after N strikes (RFC 2960 §7.2.4,
  // New-Reno variant: all missing chunks are marked at once).
  bool newly_marked = false;
  std::set<std::size_t> cut_paths;
  for (std::size_t i = 0; i < inflight_.size(); ++i) {
    if (!seq_lt(inflight_.key_at(i), highest_sacked)) break;
    OutChunk& oc = inflight_.at_offset(i);
    if (oc.sacked || oc.marked_rtx) continue;
    // RFC 2960 §7.2.4: fast-retransmit a TSN at most once; a chunk lost
    // again waits for T3 (the era behaviour the paper measured). With
    // fast_rtx_once_per_tsn=false, fresh missing reports (the counter
    // resets on every transmission) may re-trigger fast retransmit — the
    // stronger multiple-loss recovery of the New-Reno SCTP variant the
    // paper cites; bounded, so no retransmission storm.
    if (cfg_.fast_rtx_once_per_tsn && oc.fast_rtxed) continue;
    ++oc.missing_reports;
    if (oc.missing_reports >= cfg_.missing_report_threshold) {
      oc.marked_rtx = true;
      oc.fast_rtxed = true;
      oc.rtx_path = pick_rtx_path_(oc.path);
      paths_[oc.path].flight -=
          std::min(paths_[oc.path].flight, oc.data.payload.size());
      outstanding_bytes_ -=
          std::min(outstanding_bytes_, oc.data.payload.size());
      cut_paths.insert(oc.path);
      newly_marked = true;
    }
  }
  if (newly_marked) {
    if (!fast_recovery_) {
      fast_recovery_ = true;
      fast_recovery_exit_ = highest_tsn_sent_;
      ++stats_.fast_retransmits;
      const auto mtu32 = static_cast<std::uint32_t>(cfg_.pmtu);
      for (std::size_t pi : cut_paths) {
        Path& p = paths_[pi];
        p.ssthresh = std::max(p.cwnd / 2, 2 * mtu32);
        p.cwnd = p.ssthresh;
        p.partial_bytes_acked = 0;
      }
    }
  }
  if (fast_recovery_ && seq_geq(cum, fast_recovery_exit_)) {
    fast_recovery_ = false;
    // New-Reno SCTP (paper §4.1.1, citing Caro et al.): start the next
    // recovery epoch with clean missing-report counters so chunks lost
    // again can be fast-retransmitted instead of stalling for T3.
    for (std::size_t i = 0; i < inflight_.size(); ++i) {
      inflight_.at_offset(i).missing_reports = 0;
    }
  }

  // Congestion window growth per path (byte counting: paper §4.1.1).
  const auto mtu32 = static_cast<std::uint32_t>(cfg_.pmtu);
  for (auto& [pi, bytes] : acked_per_path) {
    Path& p = paths_[pi];
    p.error_count = 0;
    p.backoff_shift = 0;
    assoc_error_count_ = 0;
    if (fast_recovery_) continue;
    if (p.cwnd <= p.ssthresh) {
      // Slow start: grow by bytes acknowledged (capped at one PMTU per
      // SACK), not by SACK count — SCTP recovers cwnd faster than
      // ACK-counted TCP with delayed ACKs.
      p.cwnd += cfg_.byte_counting ? std::min(bytes, mtu32) : mtu32;
    } else {
      p.partial_bytes_acked += bytes;
      if (p.partial_bytes_acked >= p.cwnd && p.flight + bytes >= p.cwnd) {
        p.partial_bytes_acked -= p.cwnd;
        p.cwnd += mtu32;
      }
    }
    p.cwnd = std::min(p.cwnd, static_cast<std::uint32_t>(cfg_.sndbuf));
  }

  // T3 management (RFC 2960 §6.3.2).
  if (cum_advanced) {
    for (std::size_t pi = 0; pi < paths_.size(); ++pi) {
      if (paths_[pi].flight == 0) {
        paths_[pi].t3->cancel();
      } else if (paths_[pi].t3->armed()) {
        arm_t3_(pi);  // restart
      }
    }
  }
  stop_t3_if_idle_();

  try_transmit_();
  maybe_progress_shutdown_();
  socket_.notify_activity_();
}

void Association::arm_t3_(std::size_t path_idx) {
  Path& p = paths_[path_idx];
  p.t3->arm(std::min(p.rto << std::min(p.backoff_shift, 8u), cfg_.rto_max));
}

void Association::stop_t3_if_idle_() {
  if (!inflight_.empty() || !sendq_.empty()) return;
  for (auto& p : paths_) p.t3->cancel();
}

void Association::on_t3_timeout_(std::size_t path_idx) {
  Path& path = paths_[path_idx];
  SCTPDBG("[%f] port %u assoc %u T3 path=%zu err=%u flight=%zu inflight=%zu sendq=%zu\n", (double)sim_.now()/1e9, socket_.port(), id_, path_idx, path.error_count, path.flight, inflight_.size(), sendq_.size());
  ++stats_.timeouts;
  ++path.error_count;
  ++assoc_error_count_;
  if (path.backoff_shift < 8) ++path.backoff_shift;
  path.rtt_sampling = false;  // Karn

  if (assoc_error_count_ > cfg_.assoc_max_retrans) {
    enter_closed_(/*lost=*/true);
    return;
  }
  if (path.active && path.error_count > cfg_.path_max_retrans &&
      paths_.size() > 1) {
    path.active = false;
    socket_.notify_(Notification{NotificationType::kPathFailover, id_,
                                 path.addr});
    ++stats_.path_failovers;
    if (path_idx == primary_path_) {
      for (std::size_t k = 0; k < paths_.size(); ++k) {
        if (paths_[k].active) {
          primary_path_ = k;
          break;
        }
      }
    }
  }

  // Collapse this path's window and mark everything it carried for
  // retransmission on an alternate path (paper §4.1.1 retransmission
  // policy).
  const auto mtu32 = static_cast<std::uint32_t>(cfg_.pmtu);
  path.ssthresh = std::max(path.cwnd / 2, 2 * mtu32);
  path.cwnd = mtu32;
  path.partial_bytes_acked = 0;
  fast_recovery_ = false;

  const std::size_t rtx_dest = pick_rtx_path_(path_idx);
  for (std::size_t i = 0; i < inflight_.size(); ++i) {
    OutChunk& oc = inflight_.at_offset(i);
    if (oc.path != path_idx || oc.sacked || oc.marked_rtx) continue;
    oc.marked_rtx = true;
    oc.rtx_path = rtx_dest;
    path.flight -= std::min(path.flight, oc.data.payload.size());
    outstanding_bytes_ -=
        std::min(outstanding_bytes_, oc.data.payload.size());
  }
  try_transmit_();
  // Keep a timer running while anything is outstanding anywhere.
  for (std::size_t pi = 0; pi < paths_.size(); ++pi) {
    if (paths_[pi].flight > 0 && !paths_[pi].t3->armed()) arm_t3_(pi);
  }
  if (inflight_.empty() && sendq_.empty()) return;
  bool any_armed = false;
  for (auto& p : paths_) any_armed |= p.t3->armed();
  if (!any_armed) arm_t3_(rtx_dest);
}

void Association::update_path_rtt_(Path& p, sim::SimTime measured) {
  if (p.srtt == 0) {
    p.srtt = measured;
    p.rttvar = measured / 2;
  } else {
    const sim::SimTime err =
        measured > p.srtt ? measured - p.srtt : p.srtt - measured;
    p.rttvar = (3 * p.rttvar + err) / 4;
    p.srtt = (7 * p.srtt + measured) / 8;
  }
  p.rto = std::clamp(p.srtt + std::max<sim::SimTime>(4 * p.rttvar, 1),
                     cfg_.rto_min, cfg_.rto_max);
}

// ---------------------------------------------------------------------------
// Inbound data
// ---------------------------------------------------------------------------

void Association::handle_data_(const DataChunk& chunk) {
  touch_autoclose_();
  // Receive-buffer admission: drop chunks that do not fit (flow control;
  // sender's T3 will retry once the window reopens via SACK a_rwnd).
  const std::size_t held = inbound_->buffered_bytes() + unread_bytes_;
  if (held + chunk.payload.size() > cfg_.rcvbuf) {
    SCTPDBG("[%f] assoc %u DROP tsn=%u held=%zu payload=%zu\n", (double)sim_.now()/1e9, id_, chunk.tsn, held, chunk.payload.size());
    schedule_sack_(true);  // report the shrunken window promptly
    return;
  }
  if (!tsn_map_->record(chunk.tsn)) {
    ++stats_.duplicate_tsns;
    schedule_sack_(true);  // duplicates trigger an immediate SACK
    return;
  }
  ++stats_.data_chunks_received;
  inbound_->accept(chunk);
  while (auto msg = inbound_->pop()) {
    const std::size_t size = msg->data.size();
    inbound_->on_consumed(size);
    unread_bytes_ += size;
    stats_.bytes_received += size;
    socket_.deliver_message_(*this, std::move(*msg));
  }
}

void Association::on_app_consumed(std::size_t bytes) {
  const bool was_tight =
      inbound_ != nullptr &&
      (inbound_->buffered_bytes() + unread_bytes_) * 2 > cfg_.rcvbuf;
  unread_bytes_ -= std::min(unread_bytes_, bytes);
  // If the window had been mostly closed, tell the peer it reopened.
  if (was_tight) schedule_sack_(true);
}

void Association::schedule_sack_(bool immediate) {
  if (immediate || (tsn_map_ && tsn_map_->has_gaps() &&
                    cfg_.immediate_sack_on_gap)) {
    send_sack_now_();
    return;
  }
  ++packets_since_sack_;
  if (packets_since_sack_ >= cfg_.sack_every_n_packets) {
    send_sack_now_();
  } else if (!sack_timer_.armed()) {
    sack_timer_.arm(cfg_.sack_delay);
  }
}

void Association::send_sack_now_() {
  if (tsn_map_ == nullptr) return;
  sack_immediately_ = true;
  try_transmit_();  // bundles the SACK with any outgoing data
  if (!sack_immediately_) return;  // it went out piggybacked
  SackChunk sack;
  sack.cum_tsn_ack = tsn_map_->cum_tsn();
  const std::size_t held = inbound_->buffered_bytes() + unread_bytes_;
  sack.a_rwnd = static_cast<std::uint32_t>(
      cfg_.rcvbuf > held ? cfg_.rcvbuf - held : 0);
  sack.gaps = tsn_map_->gap_blocks();
  sack.dup_tsns = tsn_map_->take_duplicates();
  sack_immediately_ = false;
  sack_timer_.cancel();
  packets_since_sack_ = 0;
  ++stats_.sacks_sent;
  send_chunk_now_(TypedChunk{ChunkType::kSack, std::move(sack)},
                  last_data_path_);
}

// ---------------------------------------------------------------------------
// Packet input
// ---------------------------------------------------------------------------

void Association::on_packet(SctpPacket&& pkt, net::IpAddr from) {
  ++stats_.packets_received;
  const std::size_t from_path = path_index_(from);
  if (from_path != SIZE_MAX) last_data_path_ = from_path;

  bool saw_data = false;
  for (TypedChunk& tc : pkt.chunks) {
    switch (tc.type) {
      case ChunkType::kData:
        saw_data = true;
        handle_data_(std::get<DataChunk>(tc.body));
        break;
      case ChunkType::kSack:
        handle_sack_(std::get<SackChunk>(tc.body));
        break;
      case ChunkType::kInitAck:
        on_init_ack_(std::get<InitChunk>(tc.body), from);
        break;
      case ChunkType::kCookieAck:
        on_cookie_ack_();
        break;
      case ChunkType::kHeartbeat:
      case ChunkType::kHeartbeatAck:
        handle_heartbeat_(std::get<HeartbeatChunk>(tc.body), from);
        break;
      case ChunkType::kShutdown:
        handle_shutdown_(std::get<ShutdownChunk>(tc.body));
        break;
      case ChunkType::kShutdownAck:
        if (state_ == AssocState::kShutdownSent ||
            state_ == AssocState::kShutdownAckSent) {
          send_chunk_now_(TypedChunk{ChunkType::kShutdownComplete,
                                     ShutdownCompleteChunk{}},
                          primary_path_);
          enter_closed_(/*lost=*/false);
          return;
        }
        break;
      case ChunkType::kShutdownComplete:
        if (state_ == AssocState::kShutdownAckSent) {
          enter_closed_(/*lost=*/false);
          return;
        }
        break;
      case ChunkType::kAbort:
        enter_closed_(/*lost=*/true);
        return;
      case ChunkType::kError: {
        // Stale-cookie error (RFC 2960 §5.2.6): our COOKIE-ECHO outlived
        // the cookie's lifetime; restart the handshake with a fresh INIT.
        const auto& err = std::get<ErrorChunk>(tc.body);
        SCTPDBG("[%f] port %u assoc %u ERROR cause=%u state=%s\n", (double)sim_.now()/1e9, socket_.port(), id_, err.cause, to_string(state_));
        if (err.cause == 3 && state_ == AssocState::kCookieEchoed) {
          cookie_.clear();
          state_ = AssocState::kCookieWait;
          init_retries_ = 0;
          send_init_();
          t1_timer_.arm(cfg_.rto_initial);
        }
        break;
      }
      case ChunkType::kInit:
      case ChunkType::kCookieEcho:
        break;  // handled at socket level / ignored here
    }
    if (state_ == AssocState::kClosed) return;
  }
  if (saw_data) schedule_sack_(false);
  socket_.notify_activity_();
}

// ---------------------------------------------------------------------------
// Heartbeats & paths
// ---------------------------------------------------------------------------

std::size_t Association::path_index_(net::IpAddr a) const {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    if (paths_[i].addr == a) return i;
  }
  return SIZE_MAX;
}

void Association::start_heartbeats_() {
  for (std::size_t i = 0; i < paths_.size(); ++i) {
    paths_[i].hb_timer->arm(cfg_.hb_interval + paths_[i].rto +
                            static_cast<sim::SimTime>(i) * sim::kMillisecond);
  }
}

void Association::on_hb_timer_(std::size_t path_idx) {
  Path& p = paths_[path_idx];
  if (state_ != AssocState::kEstablished) return;
  if (p.hb_outstanding) {
    // Previous heartbeat went unanswered.
    p.hb_outstanding = false;
    path_error_(path_idx);
    if (state_ == AssocState::kClosed) return;
  }
  if (p.flight == 0) {  // only probe idle paths
    HeartbeatChunk hb;
    hb.path_addr = p.addr;
    hb.timestamp = static_cast<std::uint64_t>(sim_.now());
    p.hb_outstanding = true;
    p.last_hb_ts = hb.timestamp;
    send_chunk_now_(TypedChunk{ChunkType::kHeartbeat, hb}, path_idx);
  }
  p.hb_timer->arm(cfg_.hb_interval + p.rto);
}

void Association::handle_heartbeat_(const HeartbeatChunk& hb,
                                    net::IpAddr from) {
  if (!hb.is_ack) {
    HeartbeatChunk ack = hb;
    ack.is_ack = true;
    const std::size_t p = path_index_(from);
    send_chunk_now_(TypedChunk{ChunkType::kHeartbeatAck, ack},
                    p == SIZE_MAX ? primary_path_ : p);
    return;
  }
  const std::size_t pi = path_index_(hb.path_addr);
  if (pi == SIZE_MAX) return;
  Path& p = paths_[pi];
  p.hb_outstanding = false;
  p.error_count = 0;
  assoc_error_count_ = 0;  // RFC 2960 §8.1: HB-ACK clears the counter
  update_path_rtt_(p, sim_.now() - static_cast<sim::SimTime>(hb.timestamp));
  if (!p.active) mark_path_active_(pi);
}

void Association::path_error_(std::size_t path_idx) {
  Path& p = paths_[path_idx];
  ++p.error_count;
  ++assoc_error_count_;
  if (assoc_error_count_ > cfg_.assoc_max_retrans) {
    enter_closed_(/*lost=*/true);
    return;
  }
  if (p.active && p.error_count > cfg_.path_max_retrans && paths_.size() > 1) {
    p.active = false;
    ++stats_.path_failovers;
    socket_.notify_(
        Notification{NotificationType::kPathFailover, id_, p.addr});
    if (path_idx == primary_path_) {
      for (std::size_t k = 0; k < paths_.size(); ++k) {
        if (paths_[k].active) {
          primary_path_ = k;
          break;
        }
      }
    }
  }
}

void Association::mark_path_active_(std::size_t path_idx) {
  Path& p = paths_[path_idx];
  p.active = true;
  p.error_count = 0;
  socket_.notify_(
      Notification{NotificationType::kPathRestored, id_, p.addr});
}

// ---------------------------------------------------------------------------
// Shutdown / teardown
// ---------------------------------------------------------------------------

void Association::shutdown() {
  if (state_ == AssocState::kEstablished) {
    state_ = AssocState::kShutdownPending;
    maybe_progress_shutdown_();
  }
}

void Association::abort() {
  if (state_ == AssocState::kClosed) return;
  SCTPDBG("[%f] port %u assoc %u ABORT send\n", (double)sim_.now()/1e9, socket_.port(), id_);
  send_chunk_now_(TypedChunk{ChunkType::kAbort, AbortChunk{}}, primary_path_);
  enter_closed_(/*lost=*/true);
}

void Association::maybe_progress_shutdown_() {
  const bool drained = sendq_.empty() && inflight_.empty();
  switch (state_) {
    case AssocState::kShutdownPending:
      if (drained) {
        state_ = AssocState::kShutdownSent;
        send_chunk_now_(
            TypedChunk{ChunkType::kShutdown,
                       ShutdownChunk{tsn_map_ ? tsn_map_->cum_tsn() : 0}},
            primary_path_);
        t2_timer_.arm(paths_[primary_path_].rto);
      }
      break;
    case AssocState::kShutdownSent:
      if (!t2_timer_.armed()) {
        // T2 expiry: retransmit SHUTDOWN.
        ++assoc_error_count_;
        if (assoc_error_count_ > cfg_.assoc_max_retrans) {
          enter_closed_(/*lost=*/true);
          return;
        }
        send_chunk_now_(
            TypedChunk{ChunkType::kShutdown,
                       ShutdownChunk{tsn_map_ ? tsn_map_->cum_tsn() : 0}},
            primary_path_);
        t2_timer_.arm(paths_[primary_path_].rto);
      }
      break;
    case AssocState::kShutdownReceived:
      if (drained) {
        state_ = AssocState::kShutdownAckSent;
        send_chunk_now_(TypedChunk{ChunkType::kShutdownAck,
                                   ShutdownAckChunk{}},
                        primary_path_);
        t2_timer_.arm(paths_[primary_path_].rto);
      }
      break;
    case AssocState::kShutdownAckSent:
      if (!t2_timer_.armed()) {
        ++assoc_error_count_;
        if (assoc_error_count_ > cfg_.assoc_max_retrans) {
          enter_closed_(/*lost=*/true);
          return;
        }
        send_chunk_now_(TypedChunk{ChunkType::kShutdownAck,
                                   ShutdownAckChunk{}},
                        primary_path_);
        t2_timer_.arm(paths_[primary_path_].rto);
      }
      break;
    default:
      break;
  }
}

void Association::handle_shutdown_(const ShutdownChunk& sd) {
  // The SHUTDOWN carries the peer's cumulative TSN: treat it like a SACK.
  SackChunk synthetic;
  synthetic.cum_tsn_ack = sd.cum_tsn_ack;
  synthetic.a_rwnd = peer_arwnd_;
  handle_sack_(synthetic);
  if (state_ == AssocState::kEstablished ||
      state_ == AssocState::kShutdownPending) {
    state_ = AssocState::kShutdownReceived;
  }
  maybe_progress_shutdown_();
}

void Association::enter_closed_(bool lost) {
  SCTPDBG("[%f] port %u assoc %u CLOSED lost=%d\n", (double)sim_.now()/1e9, socket_.port(), id_, (int)lost);
  state_ = AssocState::kClosed;
  t1_timer_.cancel();
  t2_timer_.cancel();
  sack_timer_.cancel();
  autoclose_timer_.cancel();
  for (auto& p : paths_) {
    p.t3->cancel();
    p.hb_timer->cancel();
  }
  sendq_.clear();
  inflight_.clear();
  outstanding_bytes_ = 0;
  socket_.notify_(Notification{
      lost ? NotificationType::kCommLost : NotificationType::kShutdownComplete,
      id_, paths_.empty() ? net::IpAddr{} : paths_[0].addr});
  socket_.remove_association_(id_);
}

void Association::touch_autoclose_() {
  if (cfg_.autoclose > 0 && state_ == AssocState::kEstablished) {
    autoclose_timer_.arm(cfg_.autoclose);
  }
}

}  // namespace sctpmpi::sctp
