#include "sctp/crc32c.hpp"

#include <array>

namespace sctpmpi::sctp {

namespace {
constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[i] = crc;
  }
  return t;
}

constexpr auto kTable = make_table();
}  // namespace

std::uint32_t crc32c(std::span<const std::byte> data) {
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::byte b : data) {
    crc = (crc >> 8) ^
          kTable[(crc ^ static_cast<std::uint32_t>(b)) & 0xFF];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace sctpmpi::sctp
