#include "sctp/crc32c.hpp"

#include <array>

namespace sctpmpi::sctp {

namespace {
constexpr std::uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

// Slicing-by-8: table[0] is the classic byte-at-a-time table; table[k]
// advances a byte's contribution k extra positions, so one step folds in
// eight input bytes with eight independent lookups.
constexpr std::array<std::array<std::uint32_t, 256>, 8> make_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[0][i] = crc;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
    }
  }
  return t;
}

constexpr auto kTables = make_tables();

inline std::uint32_t load_le32(const std::byte* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
}  // namespace

void Crc32c::update(std::span<const std::byte> data) {
  std::uint32_t crc = state_;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = crc ^ load_le32(p);
    const std::uint32_t hi = load_le32(p + 4);
    crc = kTables[7][lo & 0xFF] ^ kTables[6][(lo >> 8) & 0xFF] ^
          kTables[5][(lo >> 16) & 0xFF] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xFF] ^ kTables[2][(hi >> 8) & 0xFF] ^
          kTables[1][(hi >> 16) & 0xFF] ^ kTables[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = (crc >> 8) ^
          kTables[0][(crc ^ static_cast<std::uint32_t>(*p++)) & 0xFF];
  }
  state_ = crc;
}

std::uint32_t crc32c(std::span<const std::byte> data) {
  Crc32c c;
  c.update(data);
  return c.finalize();
}

}  // namespace sctpmpi::sctp
