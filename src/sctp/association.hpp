// SCTP association: the unit the paper maps to an MPI peer (rank).
//
// Implements RFC 2960-era semantics: four-way cookie handshake with signed
// state cookies and verification tags, TSN/SSN/SID sequencing with
// fragmentation and bundling, delayed/immediate SACKs with unlimited
// gap-ack blocks, per-path congestion control with byte-counted window
// growth and New-Reno-style fast retransmit (4 missing reports), per-path
// RTO with exponential backoff, multihoming with heartbeats, path failover
// and retransmission on alternate paths, zero-window probing, autoclose,
// and graceful shutdown.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/address.hpp"
#include "net/bytes.hpp"
#include "net/seq_ranges.hpp"
#include "sctp/chunk.hpp"
#include "sctp/config.hpp"
#include "sctp/streams.hpp"
#include "sctp/tsn_map.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace sctpmpi::sctp {

class SctpSocket;
class SctpStack;

using AssocId = std::uint32_t;

enum class AssocState {
  kClosed,
  kCookieWait,    // INIT sent
  kCookieEchoed,  // COOKIE-ECHO sent
  kEstablished,
  kShutdownPending,
  kShutdownSent,
  kShutdownReceived,
  kShutdownAckSent,
};

const char* to_string(AssocState s);

struct AssocStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t packets_received = 0;
  std::uint64_t data_chunks_sent = 0;      // excluding retransmissions
  std::uint64_t data_chunks_received = 0;  // excluding duplicates
  std::uint64_t bytes_sent = 0;            // user payload accepted
  std::uint64_t bytes_received = 0;        // user payload delivered
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;      // fast-rtx events
  std::uint64_t timeouts = 0;              // T3 expirations
  std::uint64_t sacks_sent = 0;
  std::uint64_t sacks_received = 0;
  std::uint64_t duplicate_tsns = 0;
  std::uint64_t path_failovers = 0;
};

/// One peer destination address with its own congestion and error state
/// (RFC 2960 §7.2.4: congestion control variables are path specific).
struct Path {
  explicit Path(net::IpAddr a) : addr(a) {}

  net::IpAddr addr;
  bool active = true;
  std::uint32_t cwnd = 0;
  std::uint32_t ssthresh = 0;
  std::uint32_t partial_bytes_acked = 0;
  std::size_t flight = 0;  // outstanding bytes sent on this path
  sim::SimTime srtt = 0;
  sim::SimTime rttvar = 0;
  sim::SimTime rto = 0;
  unsigned backoff_shift = 0;
  unsigned error_count = 0;
  bool hb_outstanding = false;
  std::uint64_t last_hb_ts = 0;
  std::unique_ptr<sim::Timer> t3;        // retransmission timer
  std::unique_ptr<sim::Timer> hb_timer;  // heartbeat scheduler
  // One Karn-style RTT measurement in progress at a time.
  bool rtt_sampling = false;
  std::uint32_t rtt_tsn = 0;
  sim::SimTime rtt_start = 0;
};

class Association {
 public:
  Association(SctpSocket& socket, AssocId id, std::uint16_t peer_port,
              std::vector<net::IpAddr> peer_addrs);
  ~Association();
  Association(const Association&) = delete;
  Association& operator=(const Association&) = delete;

  // ---- control ----------------------------------------------------------
  /// Active open: send INIT and run the four-way handshake.
  void start_init();
  /// Passive establishment from a verified COOKIE-ECHO (socket calls this).
  void establish_from_cookie(const struct StateCookie& cookie);
  /// Graceful shutdown: flush outstanding data, then SHUTDOWN handshake.
  void shutdown();
  /// Hard abort: send ABORT, drop all state.
  void abort();

  // ---- data -------------------------------------------------------------
  /// Queues a user message on stream `sid`. Returns the byte count, kAgain
  /// when the send buffer is full, kMsgSize when the message exceeds the
  /// send buffer (the sctp_sendmsg limit the paper works around in §3.4),
  /// or kError when the association is down.
  std::ptrdiff_t sendmsg(std::uint16_t sid, std::span<const std::byte> data,
                         std::uint32_t ppid, bool unordered) {
    return sendmsg_gather(sid, data, {}, ppid, unordered);
  }

  /// Gather variant: sends head followed by body as ONE user message (used
  /// by the MPI middleware to prepend the envelope without copying). The
  /// spans are ingested into owned Buffers (callers may reuse storage).
  std::ptrdiff_t sendmsg_gather(std::uint16_t sid,
                                std::span<const std::byte> head,
                                std::span<const std::byte> body,
                                std::uint32_t ppid, bool unordered);

  /// Zero-copy gather variant: fragmentation slices the given Buffers into
  /// per-chunk views; payload bytes are not touched until wire encode.
  std::ptrdiff_t sendmsg_gather(std::uint16_t sid,
                                const net::BufferSlice& head,
                                const net::BufferSlice& body,
                                std::uint32_t ppid, bool unordered);

  /// Packet input (already vtag-checked by the socket).
  void on_packet(SctpPacket&& pkt, net::IpAddr from);

  // ---- queries ----------------------------------------------------------
  AssocId id() const { return id_; }
  AssocState state() const { return state_; }
  bool established() const { return state_ == AssocState::kEstablished; }
  bool writable() const;
  std::uint32_t local_vtag() const { return local_vtag_; }
  std::uint32_t peer_vtag() const { return peer_vtag_; }
  std::uint16_t peer_port() const { return peer_port_; }
  const std::vector<Path>& paths() const { return paths_; }
  std::size_t primary_path() const { return primary_path_; }
  void set_primary_path(std::size_t i) { primary_path_ = i; }
  const AssocStats& stats() const { return stats_; }
  std::uint16_t num_ostreams() const { return num_ostreams_; }
  std::size_t send_buffered() const { return sndbuf_used_; }

  /// Receive-buffer byte accounting hook from the socket (rwnd reopens).
  void on_app_consumed(std::size_t bytes);

  static constexpr std::ptrdiff_t kAgain = -1;
  static constexpr std::ptrdiff_t kError = -2;
  static constexpr std::ptrdiff_t kMsgSize = -3;

 private:
  friend class SctpSocket;

  struct OutChunk {
    DataChunk data;
    std::size_t path = SIZE_MAX;   // path of last transmission
    sim::SimTime sent_time = 0;
    unsigned tx_count = 0;
    unsigned missing_reports = 0;
    bool sacked = false;           // gap-acked by peer
    bool marked_rtx = false;
    bool fast_rtxed = false;          // already fast-retransmitted once
    std::size_t rtx_path = SIZE_MAX;  // forced destination for rtx
  };

  // -- handshake ---------------------------------------------------------
  void send_init_();
  void on_init_ack_(const InitChunk& ia, net::IpAddr from);
  void send_cookie_echo_();
  void on_cookie_ack_();
  void on_t1_timeout_();

  // -- outbound data path --------------------------------------------------
  /// Guard checks shared by both sendmsg_gather overloads: returns 0 when
  /// the message may be queued, else kError/kMsgSize/kAgain (checked before
  /// any ingest copy happens).
  std::ptrdiff_t send_check_(std::uint16_t sid, std::size_t total) const;
  void fragment_message_(std::uint16_t sid, const net::BufferSlice& head,
                         const net::BufferSlice& body, std::uint32_t ppid,
                         bool unordered);
  void try_transmit_();
  bool build_and_send_packet_(std::size_t path_idx, bool allow_new_data);
  void send_chunk_now_(TypedChunk&& chunk, std::size_t path_idx);
  void transmit_packet_(SctpPacket&& pkt, std::size_t path_idx,
                        bool rtx = false);
  std::size_t pick_rtx_path_(std::size_t original) const;
  bool has_data_on_path_over_cwnd_(const Path& p) const;
  std::size_t max_chunk_payload_() const;
  std::uint32_t peer_rwnd_avail_() const;
  std::size_t total_outstanding_() const { return outstanding_bytes_; }

  // -- SACK handling -------------------------------------------------------
  void handle_sack_(const SackChunk& sack);
  void arm_t3_(std::size_t path_idx);
  void stop_t3_if_idle_();
  void on_t3_timeout_(std::size_t path_idx);
  void update_path_rtt_(Path& p, sim::SimTime measured);

  // -- inbound data path ---------------------------------------------------
  void handle_data_(const DataChunk& chunk);
  void schedule_sack_(bool immediate);
  void send_sack_now_();

  // -- paths / heartbeats ---------------------------------------------------
  std::size_t path_index_(net::IpAddr a) const;
  void start_heartbeats_();
  void on_hb_timer_(std::size_t path_idx);
  void handle_heartbeat_(const HeartbeatChunk& hb, net::IpAddr from);
  void path_error_(std::size_t path_idx);
  void mark_path_active_(std::size_t path_idx);

  // -- shutdown/teardown -----------------------------------------------------
  void maybe_progress_shutdown_();
  void handle_shutdown_(const ShutdownChunk& sd);
  void enter_closed_(bool lost);
  void touch_autoclose_();

  SctpSocket& socket_;
  const SctpConfig& cfg_;
  sim::Simulator& sim_;
  AssocId id_;
  AssocState state_ = AssocState::kClosed;
  std::uint16_t peer_port_ = 0;

  std::uint32_t local_vtag_ = 0;  // peers must send this tag to us
  std::uint32_t peer_vtag_ = 0;   // we send this tag to the peer

  std::vector<Path> paths_;
  std::size_t primary_path_ = 0;
  std::size_t cmt_next_path_ = 0;  // CMT round-robin cursor
  unsigned assoc_error_count_ = 0;
  unsigned init_retries_ = 0;

  std::uint16_t num_ostreams_ = 0;  // negotiated outbound stream count

  // Outbound.
  std::uint32_t next_tsn_ = 0;
  std::vector<OutStream> out_streams_;
  std::deque<OutChunk> sendq_;  // queued, never transmitted
  // Retransmission scoreboard indexed by TSN offset from the oldest
  // outstanding TSN. TSNs are assigned densely and retired only from the
  // front (cumulative ack), so the ring gives O(1) lookup and contiguous
  // scans where the std::map it replaced walked nodes.
  net::SeqIndexedQueue<OutChunk> inflight_;
  std::size_t sndbuf_used_ = 0;
  std::size_t outstanding_bytes_ = 0;  // inflight payload not yet sacked
  std::uint32_t peer_arwnd_ = 0;
  std::vector<std::size_t> burst_cap_ = std::vector<std::size_t>(8, 0);
  bool fast_recovery_ = false;
  std::uint32_t fast_recovery_exit_ = 0;
  std::uint32_t highest_tsn_sent_ = 0;

  // Inbound.
  std::unique_ptr<TsnMap> tsn_map_;
  std::unique_ptr<InboundStreams> inbound_;
  std::size_t unread_bytes_ = 0;  // delivered to socket queue, not yet read
  std::size_t last_data_path_ = 0;  // path SACKs are sent back on
  unsigned packets_since_sack_ = 0;
  bool sack_immediately_ = false;
  sim::Timer sack_timer_;

  sim::Timer t1_timer_;       // INIT / COOKIE-ECHO retransmission
  sim::Timer t2_timer_;       // SHUTDOWN retransmission
  sim::Timer autoclose_timer_;

  std::vector<std::byte> cookie_;  // held while COOKIE-ECHO is in flight

  AssocStats stats_;
};

}  // namespace sctpmpi::sctp
