#include "sctp/socket.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "sctp/crc32c.hpp"

namespace sctpmpi::sctp {

namespace {
constexpr std::uint32_t kCookieMagic = 0x53435450;  // "SCTP"

std::uint64_t fnv1a(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t h = seed ^ 0xCBF29CE484222325ULL;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001B3ULL;
  }
  return h;
}
}  // namespace

// ---------------------------------------------------------------------------
// StateCookie
// ---------------------------------------------------------------------------

std::vector<std::byte> StateCookie::encode() const {
  std::vector<std::byte> out;
  net::ByteWriter w(out);
  w.u32(kCookieMagic);
  w.u32(local_itag);
  w.u32(peer_itag);
  w.u32(local_itsn);
  w.u32(peer_itsn);
  w.u16(peer_port);
  w.u16(peer_ostreams);
  w.u16(peer_max_instreams);
  w.u32(peer_arwnd);
  w.u16(static_cast<std::uint16_t>(peer_addrs.size()));
  w.u16(0);
  for (net::IpAddr a : peer_addrs) w.u32(a.v);
  w.u64(timestamp);
  w.u64(signature);
  return out;
}

std::optional<StateCookie> StateCookie::decode(
    std::span<const std::byte> wire) {
  try {
    net::ByteReader r(wire);
    StateCookie c;
    if (r.u32() != kCookieMagic) return std::nullopt;
    c.local_itag = r.u32();
    c.peer_itag = r.u32();
    c.local_itsn = r.u32();
    c.peer_itsn = r.u32();
    c.peer_port = r.u16();
    c.peer_ostreams = r.u16();
    c.peer_max_instreams = r.u16();
    c.peer_arwnd = r.u32();
    const std::uint16_t naddrs = r.u16();
    r.skip(2);
    for (unsigned i = 0; i < naddrs; ++i)
      c.peer_addrs.push_back(net::IpAddr{r.u32()});
    c.timestamp = r.u64();
    c.signature = r.u64();
    return c;
  } catch (const net::DecodeError&) {
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// SctpStack
// ---------------------------------------------------------------------------

SctpStack::SctpStack(net::Host& host, SctpConfig cfg, sim::Rng rng)
    : host_(host), cfg_(cfg), rng_(rng), secret_(rng_.next()) {
  host_.register_protocol(net::IpProto::kSctp, this);
}

SctpSocket* SctpStack::create_socket(std::uint16_t port) {
  if (port == 0) {
    while (by_port_.contains(next_ephemeral_)) ++next_ephemeral_;
    port = next_ephemeral_++;
  }
  assert(!by_port_.contains(port) && "port already bound");
  sockets_.push_back(std::make_unique<SctpSocket>(*this, port));
  by_port_.put(port, sockets_.back().get());
  return sockets_.back().get();
}

std::uint64_t SctpStack::sign_cookie(
    std::span<const std::byte> cookie_bytes) const {
  // MAC over everything except the trailing 8-byte signature field.
  const std::size_t body = cookie_bytes.size() >= 8
                               ? cookie_bytes.size() - 8
                               : cookie_bytes.size();
  return fnv1a(cookie_bytes.subspan(0, body), secret_);
}

void SctpStack::on_ip_packet(net::Packet&& pkt) {
  const net::IpAddr from = pkt.src;
  const net::IpAddr to = pkt.dst;
  host_.sim().schedule_after(
      host_.occupy_cpu(
          cfg_.cpu_per_packet +
          (cfg_.crc32c_enabled
               ? static_cast<sim::SimTime>(cfg_.crc_ns_per_byte *
                                           static_cast<double>(
                                               pkt.payload.size()))
               : 0)),
      [this, payload = std::move(pkt.payload), from, to]() mutable {
        std::optional<SctpPacket> parsed;
        try {
          parsed = SctpPacket::decode(payload, cfg_.crc32c_enabled);
        } catch (const net::DecodeError&) {
          return;  // malformed
        }
        if (!parsed) return;  // checksum failure
        SctpSocket* s = by_port_.find(parsed->dport);
        if (s == nullptr) return;  // no socket: drop (no ABORT model)
        s->on_packet_(std::move(*parsed), from, to);
      });
}

void SctpStack::transmit(const SctpPacket& pkt, net::IpAddr dst,
                         net::IpAddr src, bool rtx) {
  net::Packet ip;
  ip.src = src;
  ip.dst = dst;
  ip.proto = net::IpProto::kSctp;
  net::Buffer::Builder wire;
  pkt.encode_into(wire, cfg_.crc32c_enabled);
  ip.payload = std::move(wire).finish();
  if (rtx) ip.flags |= net::kPktFlagRetransmit;
  sim::SimTime cost = cfg_.cpu_per_packet;
  if (cfg_.crc32c_enabled) {
    cost += static_cast<sim::SimTime>(
        cfg_.crc_ns_per_byte * static_cast<double>(ip.payload.size()));
  }
  host_.send_ip(std::move(ip), cost);
}

// ---------------------------------------------------------------------------
// SctpSocket
// ---------------------------------------------------------------------------

SctpSocket::SctpSocket(SctpStack& stack, std::uint16_t port)
    : stack_(stack), port_(port) {}

SctpSocket::~SctpSocket() = default;

const SctpConfig& SctpSocket::config() const { return stack_.config(); }

AssocId SctpSocket::connect(net::IpAddr peer_primary, std::uint16_t peer_port,
                            std::vector<net::IpAddr> peer_alternates) {
  // One association per peer endpoint and socket: reuse an in-progress or
  // passively created one rather than racing a second handshake.
  if (Association* existing = find_by_peer_(peer_primary, peer_port)) {
    if (existing->state() != AssocState::kClosed) return existing->id();
  }
  std::vector<net::IpAddr> addrs{peer_primary};
  addrs.insert(addrs.end(), peer_alternates.begin(), peer_alternates.end());
  const AssocId id = next_assoc_id_++;
  auto assoc = std::make_unique<Association>(*this, id, peer_port, addrs);
  Association* a = assoc.get();
  assocs_.emplace(id, std::move(assoc));
  for (net::IpAddr addr : addrs) {
    peer_index_.put(peer_key_(addr.v, peer_port), a);
  }
  a->start_init();
  return id;
}

Association* SctpSocket::assoc(AssocId id) {
  auto it = assocs_.find(id);
  return it == assocs_.end() ? nullptr : it->second.get();
}

const Association* SctpSocket::assoc(AssocId id) const {
  auto it = assocs_.find(id);
  return it == assocs_.end() ? nullptr : it->second.get();
}

Association* SctpSocket::find_by_peer_(net::IpAddr addr, std::uint16_t port) {
  return peer_index_.find(peer_key_(addr.v, port));
}

std::ptrdiff_t SctpSocket::sendmsg(AssocId id, std::uint16_t sid,
                                   std::span<const std::byte> data,
                                   std::uint32_t ppid, bool unordered) {
  Association* a = assoc(id);
  if (a == nullptr) return Association::kError;
  return a->sendmsg(sid, data, ppid, unordered);
}

std::ptrdiff_t SctpSocket::sendmsg_gather(AssocId id, std::uint16_t sid,
                                          std::span<const std::byte> head,
                                          std::span<const std::byte> body,
                                          std::uint32_t ppid, bool unordered) {
  Association* a = assoc(id);
  if (a == nullptr) return Association::kError;
  return a->sendmsg_gather(sid, head, body, ppid, unordered);
}

std::ptrdiff_t SctpSocket::sendmsg_gather(AssocId id, std::uint16_t sid,
                                          const net::BufferSlice& head,
                                          const net::BufferSlice& body,
                                          std::uint32_t ppid, bool unordered) {
  Association* a = assoc(id);
  if (a == nullptr) return Association::kError;
  return a->sendmsg_gather(sid, head, body, ppid, unordered);
}

std::ptrdiff_t SctpSocket::recvmsg(std::span<std::byte> out, RecvInfo& info) {
  if (recv_q_.empty()) return Association::kAgain;
  QueuedMessage& m = recv_q_.front();
  if (m.data.size() > out.size()) return Association::kMsgSize;
  const std::size_t n = m.data.size();
  m.data.copy_to(out.subspan(0, n));  // the one receive-side payload copy
  info = m.info;
  if (Association* a = assoc(m.info.assoc)) a->on_app_consumed(n);
  recv_q_.pop_front();
  return static_cast<std::ptrdiff_t>(n);
}

bool SctpSocket::pop_message(net::SliceChain& out, RecvInfo& info) {
  if (recv_q_.empty()) return false;
  QueuedMessage& m = recv_q_.front();
  info = m.info;
  if (Association* a = assoc(m.info.assoc)) a->on_app_consumed(m.data.size());
  out = std::move(m.data);
  recv_q_.pop_front();
  return true;
}

bool SctpSocket::writable(AssocId id) {
  Association* a = assoc(id);
  return a != nullptr && a->writable();
}

std::optional<Notification> SctpSocket::poll_notification() {
  if (notifications_.empty()) return std::nullopt;
  Notification n = notifications_.front();
  notifications_.pop_front();
  return n;
}

void SctpSocket::shutdown_assoc(AssocId id) {
  if (Association* a = assoc(id)) a->shutdown();
}

void SctpSocket::abort_assoc(AssocId id) {
  if (Association* a = assoc(id)) a->abort();
}

void SctpSocket::deliver_message_(Association& a, DeliveredMessage&& m) {
  QueuedMessage qm;
  qm.info.assoc = a.id();
  qm.info.sid = m.sid;
  qm.info.ssn = m.ssn;
  qm.info.ppid = m.ppid;
  qm.info.unordered = m.unordered;
  qm.data = std::move(m.data);
  recv_q_.push_back(std::move(qm));
  notify_activity_();
}

void SctpSocket::notify_(Notification n) {
  notifications_.push_back(n);
  notify_activity_();
}

void SctpSocket::register_peer_addr_(Association& a, net::IpAddr addr) {
  peer_index_.put(peer_key_(addr.v, a.peer_port()), &a);
}

void SctpSocket::remove_association_(AssocId id) {
  // Keep the Association object (ids stay valid for queries); only remove
  // the demux entries so the peer can set up a fresh association later.
  peer_index_.erase_if(
      [id](std::uint64_t, Association* a) { return a->id() == id; });
  notify_activity_();
}

void SctpSocket::on_packet_(SctpPacket&& pkt, net::IpAddr from,
                            net::IpAddr to) {
  // INIT and COOKIE-ECHO may legitimately arrive without an established
  // association; everything else must match an association and its tag.
  if (!pkt.chunks.empty()) {
    if (pkt.chunks.front().type == ChunkType::kInit) {
      handle_init_(pkt, std::get<InitChunk>(pkt.chunks.front().body), from,
                   to);
      return;
    }
    if (pkt.chunks.front().type == ChunkType::kCookieEcho) {
      handle_cookie_echo_(
          pkt, std::get<CookieEchoChunk>(pkt.chunks.front().body), from);
      // COOKIE-ECHO may carry piggybacked DATA in the same packet; let the
      // normal path below deliver the rest if the association now exists.
      Association* a = find_by_peer_(from, pkt.sport);
      if (a != nullptr && pkt.chunks.size() > 1 &&
          pkt.vtag == a->local_vtag()) {
        SctpPacket rest;
        rest.sport = pkt.sport;
        rest.dport = pkt.dport;
        rest.vtag = pkt.vtag;
        rest.chunks.assign(std::make_move_iterator(pkt.chunks.begin() + 1),
                           std::make_move_iterator(pkt.chunks.end()));
        a->on_packet(std::move(rest), from);
      }
      return;
    }
  }

  Association* a = find_by_peer_(from, pkt.sport);
  if (a == nullptr) return;
  // Verification tag check (paper §3.5.2): stale or blindly injected
  // packets are silently discarded.
  if (pkt.vtag != a->local_vtag()) return;
  a->on_packet(std::move(pkt), from);
}

void SctpSocket::handle_init_(const SctpPacket& pkt, const InitChunk& init,
                              net::IpAddr from, net::IpAddr to) {
  Association* existing = find_by_peer_(from, pkt.sport);
  if (existing != nullptr && existing->established()) {
    if (init.initiate_tag == existing->peer_vtag()) {
      return;  // stale duplicate INIT for a live association: ignore
    }
    // Peer restart (RFC 4960 §5.2.2, action A): a *fresh* INIT — new
    // initiate tag — on an established association means the peer lost
    // all association state (crash/restart or a recovery reconnect from
    // the far side). Tear the old association down, surfacing kCommLost,
    // then answer the INIT below as a brand-new stateless setup.
    ++restarts_detected_;
    existing->enter_closed_(/*lost=*/true);
    existing = nullptr;
  }
  if (existing == nullptr && !listening_) return;

  // Simultaneous-open tie-break: if we also sent an INIT to this peer and
  // our address is "larger", we abandon our initiator role and act as the
  // responder (one clean handshake instead of RFC 5.2 tag reconciliation).
  if (existing != nullptr && existing->state() == AssocState::kCookieWait) {
    if (to.v < from.v) {
      return;  // we stay initiator; drop the peer's INIT, ours will win
    }
    existing->t1_timer_.cancel();  // abandon our INIT attempt
    existing->state_ = AssocState::kClosed;
  }

  // Stateless responder: all state rides in the signed cookie (paper
  // §3.5.2 — no resources reserved until the address is proven).
  StateCookie cookie;
  cookie.local_itag = stack_.random_tag();
  cookie.peer_itag = init.initiate_tag;
  cookie.local_itsn = stack_.random_tsn();
  cookie.peer_itsn = init.initial_tsn;
  cookie.peer_port = pkt.sport;
  cookie.peer_ostreams = init.num_ostreams;
  cookie.peer_max_instreams = init.max_instreams;
  cookie.peer_arwnd = init.a_rwnd;
  cookie.peer_addrs = init.addresses.empty()
                          ? std::vector<net::IpAddr>{from}
                          : init.addresses;
  cookie.timestamp = static_cast<std::uint64_t>(stack_.host().sim().now());
  auto bytes = cookie.encode();
  cookie.signature = stack_.sign_cookie(bytes);
  bytes = cookie.encode();

  InitChunk ia;
  ia.initiate_tag = cookie.local_itag;
  ia.a_rwnd = static_cast<std::uint32_t>(config().rcvbuf);
  ia.num_ostreams = config().num_ostreams;
  ia.max_instreams = config().max_instreams;
  ia.initial_tsn = cookie.local_itsn;
  if (local_addrs_.empty()) {
    for (std::size_t i = 0; i < stack_.host().interface_count(); ++i) {
      ia.addresses.push_back(stack_.host().addr(i));
    }
  } else {
    for (const net::IpAddr a : local_addrs_) ia.addresses.push_back(a);
  }
  ia.cookie = std::move(bytes);

  SctpPacket reply;
  reply.sport = port_;
  reply.dport = pkt.sport;
  reply.vtag = init.initiate_tag;  // INIT-ACK uses the initiator's tag
  reply.chunks.push_back(TypedChunk{ChunkType::kInitAck, std::move(ia)});
  stack_.transmit(reply, from, local_addr_for(from));
}

void SctpSocket::handle_cookie_echo_(const SctpPacket& pkt,
                                     const CookieEchoChunk& ce,
                                     net::IpAddr from) {
  auto cookie = StateCookie::decode(ce.cookie);
  if (!cookie) return;
  // Signature check: recompute over the cookie with its signature zeroed.
  StateCookie unsigned_copy = *cookie;
  unsigned_copy.signature = 0;
  if (stack_.sign_cookie(unsigned_copy.encode()) != cookie->signature) {
    return;  // forged or corrupted cookie
  }
  // Staleness check (replay protection).
  const auto now = static_cast<std::uint64_t>(stack_.host().sim().now());
  if (now - cookie->timestamp >
      static_cast<std::uint64_t>(config().valid_cookie_life)) {
    if (getenv("SCTPTRACE")) printf("[%f] port %u STALE cookie from %s\n", (double)now/1e9, port_, net::to_string(from).c_str());
    SctpPacket err;
    err.sport = port_;
    err.dport = pkt.sport;
    err.vtag = cookie->peer_itag;
    err.chunks.push_back(TypedChunk{ChunkType::kError, ErrorChunk{3}});
    stack_.transmit(err, from, local_addr_for(from));
    return;
  }

  Association* a = find_by_peer_(from, pkt.sport);
  if (a != nullptr && a->established()) {
    // Our COOKIE-ACK was lost: re-ack.
    SctpPacket ack;
    ack.sport = port_;
    ack.dport = pkt.sport;
    ack.vtag = a->peer_vtag();
    ack.chunks.push_back(TypedChunk{ChunkType::kCookieAck, CookieAckChunk{}});
    stack_.transmit(ack, from, local_addr_for(from));
    return;
  }

  if (a == nullptr) {
    const AssocId id = next_assoc_id_++;
    auto owned = std::make_unique<Association>(*this, id, cookie->peer_port,
                                               cookie->peer_addrs);
    a = owned.get();
    assocs_.emplace(id, std::move(owned));
    for (net::IpAddr addr : cookie->peer_addrs) {
      peer_index_.put(peer_key_(addr.v, cookie->peer_port), a);
    }
  }
  a->establish_from_cookie(*cookie);

  SctpPacket ack;
  ack.sport = port_;
  ack.dport = pkt.sport;
  ack.vtag = a->peer_vtag();
  ack.chunks.push_back(TypedChunk{ChunkType::kCookieAck, CookieAckChunk{}});
  stack_.transmit(ack, from, local_addr_for(from));
}

// ---------------------------------------------------------------------------
// One-to-one adapter
// ---------------------------------------------------------------------------

bool SctpOneToOneSocket::accept() {
  if (assoc_ != 0) return true;
  while (auto n = socket_->poll_notification()) {
    if (n->type == NotificationType::kCommUp) {
      assoc_ = n->assoc;
      return true;
    }
  }
  return false;
}

bool SctpOneToOneSocket::connected() {
  if (assoc_ == 0) return false;
  Association* a = socket_->assoc(assoc_);
  return a != nullptr && a->established();
}

}  // namespace sctpmpi::sctp
