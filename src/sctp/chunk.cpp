#include "sctp/chunk.hpp"

#include <cassert>

#include "sctp/crc32c.hpp"

namespace sctpmpi::sctp {

namespace {

constexpr std::uint8_t kFlagE = 0x01;
constexpr std::uint8_t kFlagB = 0x02;
constexpr std::uint8_t kFlagU = 0x04;

// Parameter types inside INIT/INIT-ACK.
constexpr std::uint16_t kParamIpv4 = 5;
constexpr std::uint16_t kParamCookie = 7;

std::size_t padded(std::size_t n) { return (n + 3) & ~std::size_t{3}; }

std::size_t body_bytes(const TypedChunk& c) {
  switch (c.type) {
    case ChunkType::kData: {
      const auto& d = std::get<DataChunk>(c.body);
      return 12 + d.payload.size();
    }
    case ChunkType::kInit:
    case ChunkType::kInitAck: {
      const auto& i = std::get<InitChunk>(c.body);
      std::size_t n = 16;
      n += i.addresses.size() * 8;  // IPv4 params
      if (!i.cookie.empty()) n += 4 + padded(i.cookie.size());
      return n;
    }
    case ChunkType::kSack: {
      const auto& s = std::get<SackChunk>(c.body);
      return 12 + s.gaps.size() * 4 + s.dup_tsns.size() * 4;
    }
    case ChunkType::kHeartbeat:
    case ChunkType::kHeartbeatAck:
      return 16;  // info param: addr + timestamp
    case ChunkType::kCookieEcho:
      return std::get<CookieEchoChunk>(c.body).cookie.size();
    case ChunkType::kShutdown:
      return 4;
    case ChunkType::kError:
      return 4;
    case ChunkType::kAbort:
    case ChunkType::kCookieAck:
    case ChunkType::kShutdownAck:
    case ChunkType::kShutdownComplete:
      return 0;
  }
  return 0;
}

}  // namespace

std::size_t TypedChunk::wire_bytes() const {
  return kChunkHeaderBytes + padded(body_bytes(*this));
}

std::size_t SctpPacket::wire_bytes() const {
  std::size_t n = kCommonHeaderBytes;
  for (const auto& c : chunks) n += c.wire_bytes();
  return n;
}

namespace {
// Shared serializer: `append_payload(chain)` sinks DATA payload bytes into
// `out` — an uncounted vector insert on the plain path, a counted
// Buffer::Builder::append on the transmit path. Everything else (headers,
// control chunk bodies, length patching, padding, CRC) is written through
// the ByteWriter exactly once either way, so the two paths cannot drift.
template <typename AppendPayload>
void encode_impl(const SctpPacket& p, std::vector<std::byte>& out,
                 bool with_crc, AppendPayload&& append_payload) {
  out.clear();
  out.reserve(p.wire_bytes());
  net::ByteWriter w(out);
  const auto& sport = p.sport;
  const auto& dport = p.dport;
  const auto& vtag = p.vtag;
  const auto& chunks = p.chunks;
  w.u16(sport);
  w.u16(dport);
  w.u32(vtag);
  const std::size_t crc_off = out.size();
  w.u32(0);  // checksum placeholder

  for (const auto& c : chunks) {
    const std::size_t chunk_start = out.size();
    w.u8(static_cast<std::uint8_t>(c.type));
    std::uint8_t flags = 0;
    if (c.type == ChunkType::kData) {
      const auto& d = std::get<DataChunk>(c.body);
      if (d.end) flags |= kFlagE;
      if (d.begin) flags |= kFlagB;
      if (d.unordered) flags |= kFlagU;
    }
    w.u8(flags);
    const std::size_t len_off = out.size();
    w.u16(0);  // length placeholder

    switch (c.type) {
      case ChunkType::kData: {
        const auto& d = std::get<DataChunk>(c.body);
        w.u32(d.tsn);
        w.u16(d.sid);
        w.u16(d.ssn);
        w.u32(d.ppid);
        append_payload(d.payload);
        break;
      }
      case ChunkType::kInit:
      case ChunkType::kInitAck: {
        const auto& i = std::get<InitChunk>(c.body);
        w.u32(i.initiate_tag);
        w.u32(i.a_rwnd);
        w.u16(i.num_ostreams);
        w.u16(i.max_instreams);
        w.u32(i.initial_tsn);
        for (net::IpAddr a : i.addresses) {
          w.u16(kParamIpv4);
          w.u16(8);
          w.u32(a.v);
        }
        if (!i.cookie.empty()) {
          w.u16(kParamCookie);
          w.u16(static_cast<std::uint16_t>(4 + i.cookie.size()));
          w.bytes(i.cookie);
          w.zeros(padded(i.cookie.size()) - i.cookie.size());
        }
        break;
      }
      case ChunkType::kSack: {
        const auto& s = std::get<SackChunk>(c.body);
        w.u32(s.cum_tsn_ack);
        w.u32(s.a_rwnd);
        w.u16(static_cast<std::uint16_t>(s.gaps.size()));
        w.u16(static_cast<std::uint16_t>(s.dup_tsns.size()));
        for (const auto& g : s.gaps) {
          w.u16(g.start);
          w.u16(g.end);
        }
        for (std::uint32_t t : s.dup_tsns) w.u32(t);
        break;
      }
      case ChunkType::kHeartbeat:
      case ChunkType::kHeartbeatAck: {
        const auto& h = std::get<HeartbeatChunk>(c.body);
        w.u32(h.path_addr.v);
        w.u64(h.timestamp);
        w.u32(0);  // pad param to mimic real HB info size
        break;
      }
      case ChunkType::kCookieEcho: {
        const auto& ce = std::get<CookieEchoChunk>(c.body);
        w.bytes(ce.cookie);
        break;
      }
      case ChunkType::kShutdown:
        w.u32(std::get<ShutdownChunk>(c.body).cum_tsn_ack);
        break;
      case ChunkType::kError: {
        w.u16(std::get<ErrorChunk>(c.body).cause);
        w.u16(0);
        break;
      }
      case ChunkType::kAbort:
      case ChunkType::kCookieAck:
      case ChunkType::kShutdownAck:
      case ChunkType::kShutdownComplete:
        break;
    }

    const std::size_t body_len = out.size() - chunk_start;
    w.patch_u16(len_off, static_cast<std::uint16_t>(body_len));
    w.zeros(padded(body_len) - body_len);
  }

  if (with_crc) {
    const std::uint32_t crc = crc32c(out);
    w.patch_u32(crc_off, crc);
  }
}
}  // namespace

void SctpPacket::encode_into(std::vector<std::byte>& out, bool with_crc) const {
  encode_impl(*this, out, with_crc,
              [&out](const net::SliceChain& c) { c.append_to(out); });
}

void SctpPacket::encode_into(net::Buffer::Builder& out, bool with_crc) const {
  encode_impl(*this, out.bytes(), with_crc,
              [&out](const net::SliceChain& c) { c.append_to(out); });
}

std::vector<std::byte> SctpPacket::encode(bool with_crc) const {
  std::vector<std::byte> out;
  encode_into(out, with_crc);
  return out;
}

namespace {
// Streams the CRC over header | four zero bytes | rest, so verification
// never copies the packet just to blank the checksum field.
bool crc_matches(std::span<const std::byte> wire) {
  const std::uint32_t got = (static_cast<std::uint32_t>(wire[8]) << 24) |
                            (static_cast<std::uint32_t>(wire[9]) << 16) |
                            (static_cast<std::uint32_t>(wire[10]) << 8) |
                            static_cast<std::uint32_t>(wire[11]);
  static constexpr std::byte kZeros[4] = {};
  Crc32c c;
  c.update(wire.first(8));
  c.update(kZeros);
  c.update(wire.subspan(12));
  return c.finalize() == got;
}

// Shared parser: `make_payload(pos, len)` produces a DATA chunk's payload
// chain from the wire range — a copy on the raw-span path, retained
// zero-copy slices on the Buffer path.
template <typename MakePayload>
std::optional<SctpPacket> decode_impl(std::span<const std::byte> wire,
                                      bool verify_crc,
                                      MakePayload&& make_payload) {
  if (verify_crc) {
    if (wire.size() < kCommonHeaderBytes) throw net::DecodeError("short SCTP");
    if (!crc_matches(wire)) return std::nullopt;
  }

  net::ByteReader r(wire);
  SctpPacket p;
  p.sport = r.u16();
  p.dport = r.u16();
  p.vtag = r.u32();
  r.skip(4);  // checksum

  // Nearly every packet carries 1-2 chunks (DATA, or SACK piggybacked on
  // DATA); one up-front reservation avoids the grow-and-move on the second.
  p.chunks.reserve(2);

  while (r.remaining() >= kChunkHeaderBytes) {
    const auto type = static_cast<ChunkType>(r.u8());
    const std::uint8_t flags = r.u8();
    const std::uint16_t len = r.u16();
    if (len < kChunkHeaderBytes) throw net::DecodeError("bad chunk length");
    const std::size_t body_len = len - kChunkHeaderBytes;
    if (body_len > r.remaining()) throw net::DecodeError("chunk overruns");
    const std::size_t body_end = r.position() + body_len;

    TypedChunk tc{type, AbortChunk{}};
    switch (type) {
      case ChunkType::kData: {
        DataChunk d;
        d.end = (flags & kFlagE) != 0;
        d.begin = (flags & kFlagB) != 0;
        d.unordered = (flags & kFlagU) != 0;
        d.tsn = r.u32();
        d.sid = r.u16();
        d.ssn = r.u16();
        d.ppid = r.u32();
        const std::size_t plen = body_end - r.position();
        d.payload = make_payload(r.position(), plen);
        r.skip(plen);
        tc.body = std::move(d);
        break;
      }
      case ChunkType::kInit:
      case ChunkType::kInitAck: {
        InitChunk i;
        i.initiate_tag = r.u32();
        i.a_rwnd = r.u32();
        i.num_ostreams = r.u16();
        i.max_instreams = r.u16();
        i.initial_tsn = r.u32();
        while (r.position() + 4 <= body_end) {
          const std::uint16_t ptype = r.u16();
          const std::uint16_t plen = r.u16();
          if (plen < 4) throw net::DecodeError("bad param length");
          const std::size_t pbody = plen - 4;
          if (ptype == kParamIpv4 && pbody == 4) {
            i.addresses.push_back(net::IpAddr{r.u32()});
          } else if (ptype == kParamCookie) {
            i.cookie = r.bytes(pbody);
          } else {
            r.skip(pbody);
          }
          const std::size_t pad = padded(pbody) - pbody;
          if (r.position() + pad <= body_end) r.skip(pad);
        }
        tc.body = std::move(i);
        break;
      }
      case ChunkType::kSack: {
        SackChunk s;
        s.cum_tsn_ack = r.u32();
        s.a_rwnd = r.u32();
        const std::uint16_t ngaps = r.u16();
        const std::uint16_t ndups = r.u16();
        for (unsigned g = 0; g < ngaps; ++g) {
          GapBlock b;
          b.start = r.u16();
          b.end = r.u16();
          s.gaps.push_back(b);
        }
        for (unsigned d = 0; d < ndups; ++d) s.dup_tsns.push_back(r.u32());
        tc.body = std::move(s);
        break;
      }
      case ChunkType::kHeartbeat:
      case ChunkType::kHeartbeatAck: {
        HeartbeatChunk h;
        h.is_ack = type == ChunkType::kHeartbeatAck;
        h.path_addr = net::IpAddr{r.u32()};
        h.timestamp = r.u64();
        r.skip(4);
        tc.body = h;
        break;
      }
      case ChunkType::kCookieEcho: {
        CookieEchoChunk ce;
        ce.cookie = r.bytes(body_end - r.position());
        tc.body = std::move(ce);
        break;
      }
      case ChunkType::kShutdown: {
        ShutdownChunk sd;
        sd.cum_tsn_ack = r.u32();
        tc.body = sd;
        break;
      }
      case ChunkType::kError: {
        ErrorChunk e;
        e.cause = r.u16();
        r.skip(2);
        tc.body = e;
        break;
      }
      case ChunkType::kAbort:
        tc.body = AbortChunk{};
        break;
      case ChunkType::kCookieAck:
        tc.body = CookieAckChunk{};
        break;
      case ChunkType::kShutdownAck:
        tc.body = ShutdownAckChunk{};
        break;
      case ChunkType::kShutdownComplete:
        tc.body = ShutdownCompleteChunk{};
        break;
      default:
        // Unknown chunk type: skip it (high bits would control this in a
        // full implementation).
        r.skip(body_end - r.position());
        continue;
    }
    // Consume padding.
    if (r.position() < body_end) r.skip(body_end - r.position());
    const std::size_t pad = padded(body_len) - body_len;
    if (pad <= r.remaining()) r.skip(pad);
    p.chunks.push_back(std::move(tc));
  }
  return p;
}
}  // namespace

std::optional<SctpPacket> SctpPacket::decode(std::span<const std::byte> wire,
                                             bool verify_crc) {
  return decode_impl(wire, verify_crc,
                     [wire](std::size_t pos, std::size_t len) {
                       return net::SliceChain::copy_of(wire.subspan(pos, len));
                     });
}

std::optional<SctpPacket> SctpPacket::decode(const net::Buffer& wire,
                                             bool verify_crc) {
  return decode_impl(wire.span(), verify_crc,
                     [&wire](std::size_t pos, std::size_t len) {
                       net::SliceChain c;
                       if (len > 0) c.push_back(net::BufferSlice{wire, pos, len});
                       return c;
                     });
}

}  // namespace sctpmpi::sctp
