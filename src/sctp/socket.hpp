// SCTP sockets: the one-to-many (UDP-like) style the paper's middleware is
// built on (§3.1), plus a one-to-one adapter for porting TCP-style code.
//
// A one-to-many socket owns many associations; recvmsg() returns whole
// messages in arrival order tagged with (association, stream) — the two
// demultiplexing levels of the paper's SCTP RPI. Passive association setup
// is stateless until a valid signed COOKIE-ECHO arrives (§3.5.2), and every
// non-INIT packet must carry the association's verification tag or it is
// silently dropped.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/flat_map.hpp"
#include "net/host.hpp"
#include "net/packet.hpp"
#include "sctp/association.hpp"
#include "sctp/chunk.hpp"
#include "sctp/config.hpp"
#include "sim/rng.hpp"

namespace sctpmpi::sctp {

class SctpStack;

enum class NotificationType {
  kCommUp,            // association established
  kCommLost,          // association failed (abort / max retransmissions)
  kShutdownComplete,  // graceful shutdown finished
  kPathFailover,      // primary path switched (multihoming)
  kPathRestored,      // a failed path came back
  kSendFailed,
};

struct Notification {
  NotificationType type;
  AssocId assoc = 0;
  net::IpAddr path_addr;  // for path events
};

/// Ancillary data returned by recvmsg (mirrors sctp_sndrcvinfo).
struct RecvInfo {
  AssocId assoc = 0;
  std::uint16_t sid = 0;
  std::uint16_t ssn = 0;
  std::uint32_t ppid = 0;
  bool unordered = false;
};

/// Signed state cookie contents (serialized into INIT-ACK / COOKIE-ECHO).
struct StateCookie {
  std::uint32_t local_itag = 0;   // tag the responder generated
  std::uint32_t peer_itag = 0;    // initiator's tag (from its INIT)
  std::uint32_t local_itsn = 0;
  std::uint32_t peer_itsn = 0;
  std::uint16_t peer_port = 0;
  std::uint16_t peer_ostreams = 0;      // initiator's outbound stream count
  std::uint16_t peer_max_instreams = 0; // initiator's inbound stream limit
  std::uint32_t peer_arwnd = 0;         // initiator's advertised rwnd
  std::vector<net::IpAddr> peer_addrs;
  std::uint64_t timestamp = 0;    // staleness check
  std::uint64_t signature = 0;    // keyed MAC; prevents forgery

  std::vector<std::byte> encode() const;
  static std::optional<StateCookie> decode(std::span<const std::byte> wire);
};

class SctpSocket {
 public:
  SctpSocket(SctpStack& stack, std::uint16_t port);
  ~SctpSocket();

  // ---- association management ------------------------------------------
  /// Allows implicit (passive) association setup from incoming INITs.
  void listen(bool enabled = true) { listening_ = enabled; }

  /// Active open to a peer (one-to-many style implicit setup). Returns the
  /// new association id immediately; a kCommUp notification follows.
  AssocId connect(net::IpAddr peer_primary, std::uint16_t peer_port,
                  std::vector<net::IpAddr> peer_alternates = {});

  void shutdown_assoc(AssocId id);
  void abort_assoc(AssocId id);

  // ---- data (non-blocking) ----------------------------------------------
  /// sctp_sendmsg: sends one whole message on `sid`. Returns size accepted,
  /// Association::kAgain / kError / kMsgSize on failure.
  std::ptrdiff_t sendmsg(AssocId id, std::uint16_t sid,
                         std::span<const std::byte> data,
                         std::uint32_t ppid = 0, bool unordered = false);

  /// Gather variant: head (e.g. an MPI envelope) + body as one message.
  std::ptrdiff_t sendmsg_gather(AssocId id, std::uint16_t sid,
                                std::span<const std::byte> head,
                                std::span<const std::byte> body,
                                std::uint32_t ppid = 0,
                                bool unordered = false);

  /// Zero-copy gather variant: slices of immutable Buffers are carried
  /// through fragmentation untouched until wire encode.
  std::ptrdiff_t sendmsg_gather(AssocId id, std::uint16_t sid,
                                const net::BufferSlice& head,
                                const net::BufferSlice& body,
                                std::uint32_t ppid = 0,
                                bool unordered = false);

  /// sctp_recvmsg: copies the next whole message (any association, arrival
  /// order) into `out` and fills `info`. Returns the message size,
  /// kAgain when nothing is deliverable, or kMsgSize if `out` is too small
  /// (message left queued).
  std::ptrdiff_t recvmsg(std::span<std::byte> out, RecvInfo& info);

  /// Zero-copy receive: moves the next whole message's slice chain into
  /// `out` and consumes it (receive-buffer accounting fires first, exactly
  /// as in recvmsg). Returns false when nothing is deliverable.
  bool pop_message(net::SliceChain& out, RecvInfo& info);

  /// Size of the next deliverable message, or 0 if none.
  std::size_t next_message_size() const {
    return recv_q_.empty() ? 0 : recv_q_.front().data.size();
  }
  bool readable() const { return !recv_q_.empty(); }
  bool writable(AssocId id);

  std::optional<Notification> poll_notification();
  bool has_notification() const { return !notifications_.empty(); }

  Association* assoc(AssocId id);
  const Association* assoc(AssocId id) const;
  std::uint16_t port() const { return port_; }
  SctpStack& stack() { return stack_; }
  const SctpConfig& config() const;
  std::size_t association_count() const { return assocs_.size(); }
  /// Peer restarts detected: fresh INITs (new verification tag) received
  /// on an established association, each tearing the old association down.
  std::uint64_t restarts_detected() const { return restarts_detected_; }

  /// Fires whenever readability/writability/notifications may have changed.
  void set_activity_callback(std::function<void()> cb) {
    on_activity_ = std::move(cb);
  }

  /// Overrides the local addresses this socket advertises in INIT/INIT-ACK
  /// and stamps as per-path packet sources. A DSR backend behind
  /// net::LoadBalancer advertises the service VIPs instead of the host's
  /// real interfaces, so every path of the association speaks as the
  /// service. Empty (default) = host interfaces / routing default. Set
  /// before any association exists.
  void set_local_addrs(std::vector<net::IpAddr> addrs) {
    local_addrs_ = std::move(addrs);
  }
  const std::vector<net::IpAddr>& local_addrs() const { return local_addrs_; }

  /// Source address for packets toward `peer`: the override sharing the
  /// peer's subnet, else the first override, else any (route default).
  net::IpAddr local_addr_for(net::IpAddr peer) const {
    if (local_addrs_.empty()) return net::kAddrAny;
    for (const net::IpAddr a : local_addrs_) {
      if (net::subnet_of(a) == net::subnet_of(peer)) return a;
    }
    return local_addrs_.front();
  }

 private:
  friend class Association;
  friend class SctpStack;

  struct QueuedMessage {
    RecvInfo info;
    net::SliceChain data;
  };

  void on_packet_(SctpPacket&& pkt, net::IpAddr from, net::IpAddr to);
  void handle_init_(const SctpPacket& pkt, const InitChunk& init,
                    net::IpAddr from, net::IpAddr to);
  void handle_cookie_echo_(const SctpPacket& pkt,
                           const CookieEchoChunk& ce, net::IpAddr from);
  Association* find_by_peer_(net::IpAddr addr, std::uint16_t port);
  /// Demux key for peer_index_: nonzero because peers always send from a
  /// bound (nonzero) port.
  static std::uint64_t peer_key_(std::uint32_t addr, std::uint16_t port) {
    return (static_cast<std::uint64_t>(addr) << 16) |
           static_cast<std::uint64_t>(port);
  }

  // Association-facing services.
  void deliver_message_(Association& a, DeliveredMessage&& m);
  void notify_(Notification n);
  void register_peer_addr_(Association& a, net::IpAddr addr);
  void remove_association_(AssocId id);
  void notify_activity_() {
    if (on_activity_) on_activity_();
  }

  SctpStack& stack_;
  std::uint16_t port_;
  bool listening_ = false;
  std::map<AssocId, std::unique_ptr<Association>> assocs_;
  // Peer (addr, port) -> association, covering all peer addresses: the
  // per-packet demux probe. Stores the Association directly (objects live
  // for the socket's lifetime even after teardown unlinks them here), so
  // receive demux is a single O(1) probe with no id indirection.
  net::FlatMap64<Association*> peer_index_;
  std::deque<QueuedMessage> recv_q_;
  std::deque<Notification> notifications_;
  AssocId next_assoc_id_ = 1;
  std::uint64_t restarts_detected_ = 0;
  std::vector<net::IpAddr> local_addrs_;  // empty = host interfaces
  std::function<void()> on_activity_;
};

/// Per-host SCTP: demultiplexes by destination port and owns the sockets.
class SctpStack : public net::ProtocolHandler {
 public:
  SctpStack(net::Host& host, SctpConfig cfg, sim::Rng rng);

  /// Creates a one-to-many socket bound to `port` (0 = ephemeral).
  SctpSocket* create_socket(std::uint16_t port = 0);

  void on_ip_packet(net::Packet&& pkt) override;

  net::Host& host() { return host_; }
  const SctpConfig& config() const { return cfg_; }
  std::uint32_t random_tag() {
    std::uint32_t t;
    do {
      t = static_cast<std::uint32_t>(rng_.next());
    } while (t == 0);
    return t;
  }
  std::uint32_t random_tsn() {
    if (forced_tsn_) return *forced_tsn_;
    return static_cast<std::uint32_t>(rng_.next());
  }
  /// Test hook: pins every initial TSN this stack hands out, so tests can
  /// place an association's TSN space right below the 2^32 wrap.
  void force_initial_tsn(std::uint32_t tsn) { forced_tsn_ = tsn; }

  /// Keyed MAC over cookie bytes (signature field zeroed during signing).
  std::uint64_t sign_cookie(std::span<const std::byte> cookie_bytes) const;

  /// Sends a fully formed SCTP packet (adds CRC32c + its CPU cost when
  /// enabled) from `src` (kAddrAny = route default) to `dst`.
  void transmit(const SctpPacket& pkt, net::IpAddr dst, net::IpAddr src,
                bool rtx = false);

 private:
  net::Host& host_;
  SctpConfig cfg_;
  sim::Rng rng_;
  std::uint64_t secret_;
  std::optional<std::uint32_t> forced_tsn_;
  std::vector<std::unique_ptr<SctpSocket>> sockets_;
  // O(1) receive-path port demux (bound ports are never 0).
  net::FlatMap64<SctpSocket*> by_port_;
  std::uint16_t next_ephemeral_ = 52000;
};

/// One-to-one style socket (§2.1): a TCP-like adapter over a single
/// association, provided for porting ease and tested for parity.
class SctpOneToOneSocket {
 public:
  explicit SctpOneToOneSocket(SctpStack& stack, std::uint16_t port = 0)
      : socket_(stack.create_socket(port)) {}

  void listen() { socket_->listen(true); }
  void connect(net::IpAddr peer, std::uint16_t port) {
    assoc_ = socket_->connect(peer, port);
  }
  /// For a listening socket: adopts the first established association.
  bool accept();
  bool connected();

  std::ptrdiff_t send(std::uint16_t sid, std::span<const std::byte> data) {
    return socket_->sendmsg(assoc_, sid, data);
  }
  std::ptrdiff_t recv(std::span<std::byte> out, RecvInfo& info) {
    return socket_->recvmsg(out, info);
  }
  void close() {
    if (assoc_ != 0) socket_->shutdown_assoc(assoc_);
  }
  SctpSocket& underlying() { return *socket_; }
  AssocId assoc_id() const { return assoc_; }

 private:
  SctpSocket* socket_;
  AssocId assoc_ = 0;
};

}  // namespace sctpmpi::sctp
