// Receiver-side TSN accounting: cumulative TSN ack point, gap-ack blocks
// (unlimited — a key SCTP advantage over TCP's 3-block SACK option, paper
// §4.1.1), and duplicate detection.
//
// Out-of-order TSNs are kept as run-length ranges (net::SeqRuns) rather
// than a per-TSN std::set: record() is an O(1) amortized run extension on
// the common in-order/tail-append paths, gap_blocks() copies the runs
// directly instead of re-deriving them from a per-SACK scan of every
// pending TSN, and a filled gap advances the cumulative point by popping
// whole runs.
#pragma once

#include <cstdint>
#include <vector>

#include "net/bytes.hpp"
#include "net/seq_ranges.hpp"
#include "sctp/chunk.hpp"

namespace sctpmpi::sctp {

/// Serial-number comparator for TSN-keyed containers.
struct TsnLess {
  bool operator()(std::uint32_t a, std::uint32_t b) const {
    return net::seq_lt(a, b);
  }
};

class TsnMap {
 public:
  /// Duplicate TSNs held for the next SACK's dup list. RFC 2960 reports
  /// duplicates best-effort, so the list is bounded by what a single
  /// PMTU-sized SACK chunk could carry (12-byte header + 4 bytes per
  /// entry inside 1452 bytes of IP payload, leaving room for gap blocks);
  /// anything beyond that — only reachable under a persistent duplicator
  /// fault — is dropped rather than buffered without limit.
  static constexpr std::size_t kMaxReportedDups = 256;

  /// `initial_tsn` is the first TSN expected from the peer.
  explicit TsnMap(std::uint32_t initial_tsn) : cum_tsn_(initial_tsn - 1) {}

  /// Records a received TSN. Returns false for a duplicate (already covered
  /// by the cumulative point or already pending); duplicates are remembered
  /// for the next SACK's dup-TSN list.
  bool record(std::uint32_t tsn);

  /// Highest TSN received in sequence (the cumulative ack point).
  std::uint32_t cum_tsn() const { return cum_tsn_; }

  /// True if any TSNs above the cumulative ack point have been received.
  bool has_gaps() const { return !pending_.empty(); }

  /// Gap-ack blocks as offsets relative to cum_tsn (RFC 2960 §3.3.4).
  std::vector<GapBlock> gap_blocks() const;

  /// Drains the recorded duplicate TSNs (reported once, in the next SACK).
  std::vector<std::uint32_t> take_duplicates();

  std::size_t pending_count() const {
    return static_cast<std::size_t>(pending_.value_count());
  }

 private:
  void note_duplicate_(std::uint32_t tsn) {
    if (duplicates_.size() < kMaxReportedDups) duplicates_.push_back(tsn);
  }

  std::uint32_t cum_tsn_;   // last in-order TSN received
  net::SeqRuns pending_;    // out-of-order TSN runs above cum
  std::vector<std::uint32_t> duplicates_;
};

}  // namespace sctpmpi::sctp
