// Receiver-side TSN accounting: cumulative TSN ack point, gap-ack blocks
// (unlimited — a key SCTP advantage over TCP's 3-block SACK option, paper
// §4.1.1), and duplicate detection.
#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "net/bytes.hpp"
#include "sctp/chunk.hpp"

namespace sctpmpi::sctp {

/// Serial-number comparator for TSN-keyed containers.
struct TsnLess {
  bool operator()(std::uint32_t a, std::uint32_t b) const {
    return net::seq_lt(a, b);
  }
};

class TsnMap {
 public:
  /// `initial_tsn` is the first TSN expected from the peer.
  explicit TsnMap(std::uint32_t initial_tsn) : cum_tsn_(initial_tsn - 1) {}

  /// Records a received TSN. Returns false for a duplicate (already covered
  /// by the cumulative point or already pending); duplicates are remembered
  /// for the next SACK's dup-TSN list.
  bool record(std::uint32_t tsn);

  /// Highest TSN received in sequence (the cumulative ack point).
  std::uint32_t cum_tsn() const { return cum_tsn_; }

  /// True if any TSNs above the cumulative ack point have been received.
  bool has_gaps() const { return !pending_.empty(); }

  /// Gap-ack blocks as offsets relative to cum_tsn (RFC 2960 §3.3.4).
  std::vector<GapBlock> gap_blocks() const;

  /// Drains the recorded duplicate TSNs (reported once, in the next SACK).
  std::vector<std::uint32_t> take_duplicates();

  std::size_t pending_count() const { return pending_.size(); }

 private:
  std::uint32_t cum_tsn_;                    // last in-order TSN received
  std::set<std::uint32_t, TsnLess> pending_; // out-of-order TSNs above cum
  std::vector<std::uint32_t> duplicates_;
};

}  // namespace sctpmpi::sctp
