// CRC32c (Castagnoli) — the checksum SCTP mandates (RFC 3309). The paper
// notes it is expensive on era CPUs and disabled it in the kernel for the
// evaluation; we implement it (table-driven), verify against published test
// vectors, and charge its CPU cost only when enabled in SctpConfig.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sctpmpi::sctp {

/// CRC32c over `data` (initial value per RFC 3309 usage: ~0, final xor ~0,
/// reflected polynomial 0x82F63B78).
std::uint32_t crc32c(std::span<const std::byte> data);

}  // namespace sctpmpi::sctp
