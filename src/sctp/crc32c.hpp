// CRC32c (Castagnoli) — the checksum SCTP mandates (RFC 3309). The paper
// notes it is expensive on era CPUs and disabled it in the kernel for the
// evaluation; we implement it (slicing-by-8, 8 bytes per step), verify
// against the RFC 3720 test vectors, and charge its CPU cost only when
// enabled in SctpConfig.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sctpmpi::sctp {

/// Incremental CRC32c (initial value ~0, final xor ~0, reflected
/// polynomial 0x82F63B78). Streaming form lets the decode path verify a
/// packet in pieces — header, zeroed checksum field, remainder — without
/// materializing a zero-patched copy of the wire bytes.
class Crc32c {
 public:
  void update(std::span<const std::byte> data);
  std::uint32_t finalize() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC32c over `data`.
std::uint32_t crc32c(std::span<const std::byte> data);

}  // namespace sctpmpi::sctp
