#include "sctp/tsn_map.hpp"

namespace sctpmpi::sctp {

bool TsnMap::record(std::uint32_t tsn) {
  using net::seq_leq;
  if (seq_leq(tsn, cum_tsn_)) {
    duplicates_.push_back(tsn);
    return false;
  }
  if (tsn == cum_tsn_ + 1) {
    cum_tsn_ = tsn;
    // Advance across any now-contiguous pending TSNs.
    auto it = pending_.begin();
    while (it != pending_.end() && *it == cum_tsn_ + 1) {
      cum_tsn_ = *it;
      it = pending_.erase(it);
    }
    return true;
  }
  auto [_, inserted] = pending_.insert(tsn);
  if (!inserted) {
    duplicates_.push_back(tsn);
    return false;
  }
  return true;
}

std::vector<GapBlock> TsnMap::gap_blocks() const {
  std::vector<GapBlock> blocks;
  std::uint32_t run_start = 0, run_end = 0;
  bool in_run = false;
  for (std::uint32_t tsn : pending_) {
    if (in_run && tsn == run_end + 1) {
      run_end = tsn;
      continue;
    }
    if (in_run) {
      blocks.push_back(GapBlock{
          static_cast<std::uint16_t>(run_start - cum_tsn_),
          static_cast<std::uint16_t>(run_end - cum_tsn_)});
    }
    run_start = run_end = tsn;
    in_run = true;
  }
  if (in_run) {
    blocks.push_back(GapBlock{static_cast<std::uint16_t>(run_start - cum_tsn_),
                              static_cast<std::uint16_t>(run_end - cum_tsn_)});
  }
  return blocks;
}

std::vector<std::uint32_t> TsnMap::take_duplicates() {
  std::vector<std::uint32_t> out;
  out.swap(duplicates_);
  return out;
}

}  // namespace sctpmpi::sctp
