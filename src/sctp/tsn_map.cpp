#include "sctp/tsn_map.hpp"

namespace sctpmpi::sctp {

bool TsnMap::record(std::uint32_t tsn) {
  using net::seq_leq;
  if (seq_leq(tsn, cum_tsn_)) {
    note_duplicate_(tsn);
    return false;
  }
  if (tsn == cum_tsn_ + 1) {
    cum_tsn_ = tsn;
    // Runs are disjoint and non-adjacent, so at most the first run can now
    // touch the cumulative point; absorbing it swallows every TSN the old
    // per-element walk would have merged.
    if (!pending_.empty() && pending_.front().lo == cum_tsn_ + 1) {
      cum_tsn_ = pending_.front().hi - 1;
      pending_.pop_front();
    }
    return true;
  }
  if (!pending_.insert_value(tsn)) {
    note_duplicate_(tsn);
    return false;
  }
  return true;
}

std::vector<GapBlock> TsnMap::gap_blocks() const {
  std::vector<GapBlock> blocks;
  blocks.reserve(pending_.run_count());
  for (std::size_t i = 0; i < pending_.run_count(); ++i) {
    const net::SeqRuns::Run& r = pending_.run(i);
    blocks.push_back(GapBlock{static_cast<std::uint16_t>(r.lo - cum_tsn_),
                              static_cast<std::uint16_t>(r.hi - 1 - cum_tsn_)});
  }
  return blocks;
}

std::vector<std::uint32_t> TsnMap::take_duplicates() {
  std::vector<std::uint32_t> out;
  out.swap(duplicates_);
  return out;
}

}  // namespace sctpmpi::sctp
