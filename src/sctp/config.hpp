// SCTP stack tuning knobs, defaulted to the paper's setup: 220 KiB socket
// buffers, a pool of 10 streams per association (paper §3.2.1), RFC 2960
// timer constants, KAME-style immediate SACK on out-of-order arrival, and
// the CRC32c checksum compiled in but disabled (paper §4 setting 5).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace sctpmpi::sctp {

struct SctpConfig {
  std::size_t pmtu = 1500;            // path MTU (IP packet size bound)
  std::size_t sndbuf = 220 * 1024;    // paper §4 setting 1 (per association)
  std::size_t rcvbuf = 220 * 1024;
  std::uint16_t num_ostreams = 10;    // paper §3.2.1: default pool of 10
  std::uint16_t max_instreams = 64;

  // RFC 2960 timer and counter defaults.
  sim::SimTime rto_initial = 3 * sim::kSecond;
  sim::SimTime rto_min = sim::kSecond;
  sim::SimTime rto_max = 60 * sim::kSecond;
  unsigned assoc_max_retrans = 10;
  unsigned path_max_retrans = 5;
  unsigned max_init_retrans = 8;
  sim::SimTime hb_interval = 30 * sim::kSecond;
  sim::SimTime valid_cookie_life = 60 * sim::kSecond;
  sim::SimTime autoclose = 0;  // 0 = disabled (paper §3.5.2 describes it)

  // SACK generation (RFC 2960 §6.2 + KAME aggressiveness the paper credits).
  sim::SimTime sack_delay = 200 * sim::kMillisecond;
  unsigned sack_every_n_packets = 2;
  bool immediate_sack_on_gap = true;

  // Congestion control (RFC 2960 §7; byte counting is the paper's §4.1.1
  // bullet "increase ... based on the number of bytes acknowledged").
  unsigned init_cwnd_mtus = 2;
  unsigned missing_report_threshold = 4;  // strikes before fast retransmit
  unsigned max_burst = 4;  // RFC 2960 suggested burst limit
  /// RFC 2960 §7.2.4: a TSN is fast-retransmitted at most once; a chunk
  /// lost again waits for T3 (the era behaviour). Setting this false
  /// allows re-fast-retransmit after fresh missing reports — a stronger
  /// multiple-loss recovery in the spirit of the New-Reno SCTP variant
  /// the paper cites (Caro et al.).
  bool fast_rtx_once_per_tsn = true;
  bool byte_counting = true;  // ablation knob: false = ACK-counted like TCP

  // Checksum: implemented, disabled by default exactly as in the paper.
  bool crc32c_enabled = false;
  double crc_ns_per_byte = 0.8;  // software CRC32c on an era CPU

  /// Modeled stack CPU per packet each way. The SCTP stack of 2005 was
  /// young and costlier per packet than TCP's (paper §3.6).
  sim::SimTime cpu_per_packet = 2800;  // ns

  /// Retransmission policy (paper §4.1.1): send retransmissions on an
  /// active alternate path when one exists.
  bool retransmit_on_alternate_path = true;

  /// Concurrent Multipath Transfer (paper §5: Iyengar et al.'s CMT, "will
  /// be available as a sysctl option by the end of year 2005"): stripe NEW
  /// data across all active paths round-robin instead of using only the
  /// primary. Off by default, exactly like the 2005 stack.
  bool cmt_enabled = false;
};

}  // namespace sctpmpi::sctp
