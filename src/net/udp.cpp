#include "net/udp.hpp"

#include "net/bytes.hpp"

namespace sctpmpi::net {

namespace {
constexpr std::size_t kUdpHeaderBytes = 8;
}

UdpSocket* UdpStack::create_socket(std::uint16_t port) {
  sockets_.push_back(std::make_unique<UdpSocket>(*this, port));
  by_port_[port] = sockets_.back().get();
  return sockets_.back().get();
}

void UdpSocket::sendto(IpAddr dst, std::uint16_t dport,
                       std::span<const std::byte> data) {
  Packet pkt;
  pkt.dst = dst;
  pkt.proto = IpProto::kUdp;
  Buffer::Builder b;
  b.bytes().reserve(kUdpHeaderBytes + data.size());
  ByteWriter w(b.bytes());
  w.u16(port_);
  w.u16(dport);
  w.u16(static_cast<std::uint16_t>(kUdpHeaderBytes + data.size()));
  w.u16(0);  // checksum unmodeled
  w.bytes(data);
  pkt.payload = std::move(b).finish();
  stack_.host_.send_ip(std::move(pkt));
}

void UdpStack::on_ip_packet(Packet&& pkt) {
  try {
    ByteReader r(pkt.payload);
    Datagram dg;
    dg.from = pkt.src;
    dg.sport = r.u16();
    const std::uint16_t dport = r.u16();
    r.skip(4);  // length + checksum
    dg.data = r.bytes(r.remaining());
    auto it = by_port_.find(dport);
    if (it == by_port_.end()) return;
    it->second->rx_.push_back(std::move(dg));
    if (it->second->on_activity_) it->second->on_activity_();
  } catch (const DecodeError&) {
    // malformed datagram: drop
  }
}

}  // namespace sctpmpi::net
