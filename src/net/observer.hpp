// Wire-level observation points.
//
// Links and hosts publish the fate of every packet to an optional
// PacketObserver: accepted into an output queue, dropped by the fault
// pipeline or by queue overflow, delivered to the far end, or handed from a
// transport stack to its egress interface. trace::PacketTrace implements
// this interface to build protocol-level packet traces; the net layer knows
// nothing about transport formats.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace sctpmpi::net {

struct Packet;

enum class PacketVerdict : std::uint8_t {
  kSent,          // left a host's transport stack toward an egress link
  kQueued,        // accepted into a link's output queue
  kDroppedLoss,   // dropped by the link's fault pipeline (loss/blackout/rule)
  kDroppedQueue,  // dropped by the link's drop-tail queue
  kDelivered,     // handed to the link's sink after the wire
};

inline const char* to_string(PacketVerdict v) {
  switch (v) {
    case PacketVerdict::kSent: return "sent";
    case PacketVerdict::kQueued: return "queued";
    case PacketVerdict::kDroppedLoss: return "dropped-loss";
    case PacketVerdict::kDroppedQueue: return "dropped-queue";
    case PacketVerdict::kDelivered: return "delivered";
  }
  return "?";
}

class PacketObserver {
 public:
  virtual ~PacketObserver() = default;
  /// `point` names the observation point ("up0.0", "dn1.2", "h0", ...).
  virtual void on_packet(sim::SimTime now, const std::string& point,
                         const Packet& pkt, PacketVerdict verdict) = 0;
};

}  // namespace sctpmpi::net
