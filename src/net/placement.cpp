#include "net/placement.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sctpmpi::net {

namespace {

/// Symmetric group-to-group traffic: messages in either direction between
/// hosts of a and hosts of b.
std::vector<std::vector<std::uint64_t>> group_traffic(
    const LoadProfile& profile,
    const std::vector<std::vector<unsigned>>& groups,
    const std::vector<unsigned>& group_of) {
  const std::size_t g = groups.size();
  std::vector<std::vector<std::uint64_t>> t(
      g, std::vector<std::uint64_t>(g, 0));
  const unsigned hosts = profile.hosts();
  for (unsigned s = 0; s < hosts; ++s) {
    for (unsigned d = 0; d < hosts; ++d) {
      const std::uint64_t m = profile.traffic(s, d);
      if (m == 0) continue;
      const unsigned gs = group_of[s];
      const unsigned gd = group_of[d];
      if (gs == gd) continue;
      t[gs][gd] += m;
      t[gd][gs] += m;
    }
  }
  return t;
}

}  // namespace

std::vector<unsigned> compute_placement(
    const LoadProfile& profile,
    const std::vector<std::vector<unsigned>>& groups, unsigned shards,
    double slack) {
  if (shards == 0) throw std::invalid_argument("compute_placement: 0 shards");
  const std::size_t g = groups.size();
  const unsigned hosts = profile.hosts();

  std::vector<unsigned> group_of(hosts, 0);
  std::vector<std::uint64_t> group_load(g, 0);
  for (std::size_t i = 0; i < g; ++i) {
    for (const unsigned h : groups[i]) {
      if (h >= hosts) {
        throw std::invalid_argument("compute_placement: host out of range");
      }
      group_of[h] = static_cast<unsigned>(i);
      group_load[i] += profile.host_load(h);
    }
  }

  // Phase 1 — longest-processing-time greedy balance: heaviest group first
  // onto the least-loaded shard. Ties (equal load) break on the lower
  // group/shard index, which also makes an all-zero profile degenerate to
  // round-robin in group order.
  std::vector<unsigned> order(g);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(),
                   [&](unsigned a, unsigned b) {
                     return group_load[a] > group_load[b];
                   });
  std::vector<unsigned> shard_of_group(g, 0);
  std::vector<std::uint64_t> shard_load(shards, 0);
  for (const unsigned i : order) {
    unsigned best = 0;
    for (unsigned s = 1; s < shards; ++s) {
      if (shard_load[s] < shard_load[best]) best = s;
    }
    shard_of_group[i] = best;
    shard_load[best] += group_load[i];
  }

  // Phase 2 — min-cut refinement: move a group to the shard holding most of
  // its traffic whenever that strictly lowers the cut and the destination
  // stays within the slack bound. Group index order per sweep; stop when a
  // sweep moves nothing (each move strictly lowers the nonnegative cut
  // volume, so this terminates).
  if (shards > 1 && g > 1) {
    const auto traffic = group_traffic(profile, groups, group_of);
    const std::uint64_t total =
        std::accumulate(group_load.begin(), group_load.end(),
                        std::uint64_t{0});
    const auto limit = static_cast<std::uint64_t>(
        (1.0 + slack) * (static_cast<double>(total) / shards));
    for (int sweep = 0; sweep < 8; ++sweep) {
      bool moved = false;
      for (std::size_t i = 0; i < g; ++i) {
        // Traffic of group i toward each shard under the current map.
        std::vector<std::uint64_t> toward(shards, 0);
        for (std::size_t j = 0; j < g; ++j) {
          if (j != i) toward[shard_of_group[j]] += traffic[i][j];
        }
        const unsigned cur = shard_of_group[i];
        const std::uint64_t external =
            std::accumulate(toward.begin(), toward.end(), std::uint64_t{0});
        unsigned best = cur;
        // Cut contribution if i sits on s: external - toward[s]. Strict
        // improvement required; ties keep the current shard (then lower s).
        std::uint64_t best_cut = external - toward[cur];
        for (unsigned s = 0; s < shards; ++s) {
          if (s == cur) continue;
          if (shard_load[s] + group_load[i] > limit) continue;
          const std::uint64_t cut = external - toward[s];
          if (cut < best_cut) {
            best = s;
            best_cut = cut;
          }
        }
        if (best != cur) {
          shard_load[cur] -= group_load[i];
          shard_load[best] += group_load[i];
          shard_of_group[i] = best;
          moved = true;
        }
      }
      if (!moved) break;
    }
  }

  std::vector<unsigned> placement(hosts, 0);
  for (std::size_t i = 0; i < g; ++i) {
    for (const unsigned h : groups[i]) placement[h] = shard_of_group[i];
  }
  return placement;
}

}  // namespace sctpmpi::net
