// IPv4-like addressing for the simulated cluster.
//
// Addresses are 10.<subnet>.0.<host+1>; each host interface lives on the
// subnet matching its interface index, mirroring the paper's testbed where
// every node had three gigabit NICs on three independent networks.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace sctpmpi::net {

struct IpAddr {
  std::uint32_t v = 0;

  constexpr bool operator==(const IpAddr&) const = default;
  constexpr auto operator<=>(const IpAddr&) const = default;
  constexpr bool is_any() const { return v == 0; }
};

inline constexpr IpAddr kAddrAny{0};

/// Builds the address of `host`'s interface on `subnet`.
constexpr IpAddr make_addr(unsigned subnet, unsigned host) {
  return IpAddr{(10u << 24) | (subnet << 16) | (host + 1)};
}

constexpr unsigned subnet_of(IpAddr a) { return (a.v >> 16) & 0xFF; }
constexpr unsigned host_of(IpAddr a) { return (a.v & 0xFFFF) - 1; }

inline std::string to_string(IpAddr a) {
  return std::to_string(a.v >> 24) + "." + std::to_string((a.v >> 16) & 0xFF) +
         "." + std::to_string((a.v >> 8) & 0xFF) + "." +
         std::to_string(a.v & 0xFF);
}

}  // namespace sctpmpi::net

template <>
struct std::hash<sctpmpi::net::IpAddr> {
  std::size_t operator()(const sctpmpi::net::IpAddr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.v);
  }
};
