// Layer-two/three switch model: static forwarding to the output link
// serving each destination address, with a small store-and-forward latency
// absorbed in the per-port links. Flat topologies use one switch per
// subnet; fat-tree topologies use one per ToR/aggregation/core position.
//
// Forwarding is exact-route first (the downward direction of a fat-tree,
// where every host has one correct next hop), then ECMP over the uplink
// set: a stateless flow hash over (src, dst, proto) picks the same uplink
// for every packet of a flow — per-flow path stability, per-flow-pair load
// spreading, and full determinism (no RNG in the forwarding plane).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"

namespace sctpmpi::net {

class Switch {
 public:
  /// Registers the egress link toward `addr`.
  void add_route(IpAddr addr, Link* out) { routes_[addr] = out; }

  /// Adds one uplink to the ECMP set used when no exact route matches.
  void add_ecmp_uplink(Link* out) { ecmp_.push_back(out); }

  /// The exact-route egress toward `addr`, or nullptr when this switch
  /// only reaches it via ECMP. Used to alias service VIPs onto the routes
  /// already serving the balancer host (Cluster::add_service_route).
  Link* route_for(IpAddr addr) const {
    auto it = routes_.find(addr);
    return it != routes_.end() ? it->second : nullptr;
  }

  /// Forwards one packet; drops if the destination is unknown and no
  /// uplink exists.
  void forward(Packet&& pkt) {
    auto it = routes_.find(pkt.dst);
    if (it != routes_.end()) {
      it->second->enqueue(std::move(pkt));
      return;
    }
    if (!ecmp_.empty()) {
      const std::size_t i =
          static_cast<std::size_t>(flow_hash(pkt) % ecmp_.size());
      ecmp_[i]->enqueue(std::move(pkt));
      return;
    }
    ++unroutable_;
  }

  /// Deterministic per-flow hash: splitmix64 finalizer over the packed
  /// (src, dst, proto) tuple. Both directions of a flow hash independently
  /// (real ECMP gives no reverse-path symmetry either).
  static std::uint64_t flow_hash(const Packet& pkt) {
    std::uint64_t h = (static_cast<std::uint64_t>(pkt.src.v) << 32) |
                      pkt.dst.v;
    h ^= static_cast<std::uint64_t>(pkt.proto) << 7;
    h += 0x9E3779B97F4A7C15ull;
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
    return h ^ (h >> 31);
  }

  std::uint64_t unroutable() const { return unroutable_; }
  std::size_t ecmp_width() const { return ecmp_.size(); }

 private:
  std::unordered_map<IpAddr, Link*> routes_;
  std::vector<Link*> ecmp_;
  std::uint64_t unroutable_ = 0;
};

}  // namespace sctpmpi::net
