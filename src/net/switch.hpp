// Layer-two switch model: static forwarding to the output link serving each
// destination address, with a small store-and-forward latency absorbed in
// the per-port links. One switch instance per subnet.
#pragma once

#include <unordered_map>

#include "net/link.hpp"
#include "net/packet.hpp"

namespace sctpmpi::net {

class Switch {
 public:
  /// Registers the egress link toward `addr`.
  void add_route(IpAddr addr, Link* out) { routes_[addr] = out; }

  /// Forwards one packet; drops if the destination is unknown.
  void forward(Packet&& pkt) {
    auto it = routes_.find(pkt.dst);
    if (it == routes_.end()) {
      ++unroutable_;
      return;
    }
    it->second->enqueue(std::move(pkt));
  }

  std::uint64_t unroutable() const { return unroutable_; }

 private:
  std::unordered_map<IpAddr, Link*> routes_;
  std::uint64_t unroutable_ = 0;
};

}  // namespace sctpmpi::net
