// Measured host→shard placement.
//
// A LoadProfile accumulates per-host executed work and pairwise message
// counts during a single-shard warmup run (Host::send_ip / Host::deliver
// feed it). Everything recorded is a function of simulated traffic only —
// message counts and payload sizes, never wall-clock — so a profile built
// from a given (config, seed) is identical on every rerun, and so is any
// placement derived from it.
//
// compute_placement() maps placement groups (ToR blocks in a fat-tree,
// single hosts in the flat topology) onto shards with a greedy
// longest-processing-time balance pass followed by a min-cut refinement
// pass: groups migrate to the shard holding most of their traffic peers
// whenever that lowers the cross-shard message volume without pushing any
// shard's load past (1 + slack) × the balanced average. Ties break on the
// lowest index at every step, keeping the result deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sctpmpi::net {

/// Deterministic traffic/load measurements from a warmup window.
class LoadProfile {
 public:
  explicit LoadProfile(unsigned hosts)
      : load_(hosts, 0),
        traffic_(hosts, std::vector<std::uint64_t>(hosts, 0)) {}

  unsigned hosts() const { return static_cast<unsigned>(load_.size()); }

  /// Transmit-side work: one unit per packet plus one per KiB of payload
  /// (the same shape as HostCostModel's per-packet + per-byte costs).
  void record_send(unsigned src, std::size_t bytes) {
    load_[src] += 1 + bytes / 1024;
  }
  /// Receive-side work plus the src→dst traffic edge. `src` may name a
  /// non-host address (e.g. a service VIP); out-of-range sources only
  /// count toward load.
  void record_delivery(unsigned src, unsigned dst, std::size_t bytes) {
    load_[dst] += 1 + bytes / 1024;
    if (src < traffic_.size()) traffic_[src][dst] += 1;
  }

  std::uint64_t host_load(unsigned h) const { return load_[h]; }
  std::uint64_t traffic(unsigned src, unsigned dst) const {
    return traffic_[src][dst];
  }

 private:
  std::vector<std::uint64_t> load_;
  std::vector<std::vector<std::uint64_t>> traffic_;
};

/// Greedy balance-then-min-cut mapping of `groups` (disjoint host sets that
/// must stay co-located, e.g. one per ToR) onto `shards` shards. Returns a
/// host→shard vector covering every host in any group. Deterministic for a
/// given profile. `slack` bounds the imbalance the min-cut pass may
/// introduce: no shard exceeds (1 + slack) × (total load / shards).
std::vector<unsigned> compute_placement(
    const LoadProfile& profile,
    const std::vector<std::vector<unsigned>>& groups, unsigned shards,
    double slack = 0.15);

}  // namespace sctpmpi::net
