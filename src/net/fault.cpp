#include "net/fault.hpp"

#include <algorithm>
#include <utility>

namespace sctpmpi::net {

namespace {
// Stream ids for forking the per-stage rngs. Each stage owns its own
// stream so configuring one fault never shifts another's draw sequence.
// The Bernoulli stage keeps the link's base rng unforked so the classic
// loss sequence is bit-identical to the pre-pipeline LossModel path.
constexpr std::uint64_t kGeStream = 0x11;
constexpr std::uint64_t kDupStream = 0x12;
constexpr std::uint64_t kCorruptStream = 0x13;
constexpr std::uint64_t kDelayStream = 0x14;
constexpr std::uint64_t kPayloadStream = 0x15;
}  // namespace

FaultInjector::FaultInjector(sim::Simulator& sim, sim::Rng rng,
                             double loss_probability)
    : sim_(sim),
      loss_(rng, loss_probability),
      ge_rng_(rng.fork(kGeStream)),
      dup_rng_(rng.fork(kDupStream)),
      corrupt_rng_(rng.fork(kCorruptStream)),
      delay_rng_(rng.fork(kDelayStream)),
      payload_rng_(rng.fork(kPayloadStream)) {}

void FaultInjector::set_gilbert_elliott(const GilbertElliottParams& ge) {
  ge_ = ge;
  ge_bad_ = false;
}

void FaultInjector::drop_matching(Predicate match,
                                  std::vector<std::uint64_t> ordinals) {
  rules_.push_back(
      Rule{Rule::Action::kDrop, std::move(match), std::move(ordinals), 0, 0});
}

void FaultInjector::duplicate_matching(Predicate match,
                                       std::vector<std::uint64_t> ordinals) {
  rules_.push_back(Rule{Rule::Action::kDuplicate, std::move(match),
                        std::move(ordinals), 0, 0});
}

void FaultInjector::corrupt_matching(Predicate match,
                                     std::vector<std::uint64_t> ordinals) {
  rules_.push_back(Rule{Rule::Action::kCorrupt, std::move(match),
                        std::move(ordinals), 0, 0});
}

void FaultInjector::delay_matching(Predicate match,
                                   std::vector<std::uint64_t> ordinals,
                                   sim::SimTime extra) {
  rules_.push_back(Rule{Rule::Action::kDelay, std::move(match),
                        std::move(ordinals), extra, 0});
}

void FaultInjector::add_blackout(sim::SimTime start, sim::SimTime end) {
  blackouts_.emplace_back(start, end);
}

void FaultInjector::clear() {
  rules_.clear();
  blackouts_.clear();
  ge_.reset();
  ge_bad_ = false;
  dup_p_ = corrupt_p_ = delay_p_ = 0.0;
  delay_ = 0;
}

bool FaultInjector::Rule::fires(const Packet& pkt) {
  if (match && !match(pkt)) return false;  // null match = every packet
  ++seen;
  if (ordinals.empty()) return true;
  return std::find(ordinals.begin(), ordinals.end(), seen) != ordinals.end();
}

FaultInjector::Decision FaultInjector::apply(const Packet& pkt) {
  Decision d;

  // 1. Scripted rules, in installation order. Counters advance on match
  //    even when the packet is already doomed, so ordinals always refer to
  //    the sequence of *offered* matching packets.
  for (Rule& r : rules_) {
    if (!r.fires(pkt)) continue;
    switch (r.action) {
      case Rule::Action::kDrop: d.drop = true; break;
      case Rule::Action::kDuplicate: d.duplicate = true; break;
      case Rule::Action::kCorrupt: d.corrupt = true; break;
      case Rule::Action::kDelay: d.extra_delay += r.extra; break;
    }
  }

  // 2. Black-out windows.
  if (!d.drop) {
    const sim::SimTime now = sim_.now();
    for (const auto& [start, end] : blackouts_) {
      if (now >= start && now < end) {
        d.drop = true;
        break;
      }
    }
  }

  // 3. Bursty (Gilbert-Elliott) or uniform (Bernoulli) random loss. The
  //    GE chain advances on every packet so the burst structure does not
  //    depend on what the scripted stages did.
  if (ge_) {
    const double p_flip = ge_bad_ ? ge_->p_bad_to_good : ge_->p_good_to_bad;
    if (ge_rng_.chance(p_flip)) ge_bad_ = !ge_bad_;
    const double p_loss = ge_bad_ ? ge_->loss_bad : ge_->loss_good;
    if (p_loss > 0.0 && ge_rng_.chance(p_loss)) d.drop = true;
  } else if (loss_.should_drop()) {
    d.drop = true;
  }
  if (d.drop) return d;

  // 4. Random duplication / corruption / delay.
  if (dup_p_ > 0.0 && dup_rng_.chance(dup_p_)) d.duplicate = true;
  if (corrupt_p_ > 0.0 && corrupt_rng_.chance(corrupt_p_)) d.corrupt = true;
  if (delay_p_ > 0.0 && delay_ > 0 && delay_rng_.chance(delay_p_)) {
    d.extra_delay += delay_;
  }
  return d;
}

void FaultInjector::corrupt_payload(Packet& pkt) {
  pkt.flags |= kPktFlagCorrupted;
  if (pkt.payload.empty()) return;
  const std::size_t idx = static_cast<std::size_t>(
      payload_rng_.uniform_int(pkt.payload.size()));
  // mutable_data() is copy-on-write: a duplicate sharing this buffer keeps
  // the pristine bytes.
  pkt.payload.mutable_data()[idx] ^= std::byte{0xFF};
}

}  // namespace sctpmpi::net
