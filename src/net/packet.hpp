// IP-level packet representation.
//
// The payload holds the fully serialized transport segment (TCP segment or
// SCTP packet); wire_size() adds the 20-byte IP header that every hop
// serializes. Real byte payloads flow end to end so tests can verify data
// integrity through loss and reassembly.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/address.hpp"
#include "net/buffer.hpp"

namespace sctpmpi::net {

inline constexpr std::size_t kIpHeaderBytes = 20;
/// Ethernet MTU: max IP packet size per hop.
inline constexpr std::size_t kDefaultMtu = 1500;

enum class IpProto : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
  kSctp = 132,
};

// Out-of-band annotations carried alongside the wire bytes. kRetransmit is
// set by the transport stacks on packets carrying retransmitted data so
// traces can tell a retransmission from its original without diffing
// sequence numbers; kCorrupted is set by the fault pipeline when it flips
// payload bits (the bytes themselves are damaged too).
inline constexpr std::uint8_t kPktFlagRetransmit = 0x1;
inline constexpr std::uint8_t kPktFlagCorrupted = 0x2;

struct Packet {
  IpAddr src;
  IpAddr dst;
  IpProto proto = IpProto::kTcp;
  Buffer payload;  // ref-counted: copying a Packet shares the bytes
  std::uint64_t uid = 0;  // trace id, assigned by the sending host
  std::uint8_t flags = 0;  // kPktFlag* annotations (not wire bytes)

  std::size_t wire_size() const { return kIpHeaderBytes + payload.size(); }
};

}  // namespace sctpmpi::net
