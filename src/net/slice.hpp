// Zero-copy payload slices over ref-counted net::Buffer blocks.
//
// The datapath carries message bodies as {Buffer, offset, len} spans from
// the MPI boundary down to segment/chunk encode: queuing, segmentation,
// bundling, retransmission and reassembly all move slice descriptors
// (refcount bumps) instead of payload bytes. Bytes are touched exactly
// twice per direction — once when the user span is ingested into an
// immutable Buffer (MPI buffer-reuse semantics) and once when the wire
// image is encoded (send) or the user buffer is filled (receive); see
// net::CopyStats in buffer.hpp for the accounting.
//
//   BufferSlice — one contiguous view into a Buffer.
//   SliceChain  — an ordered run of slices forming one logical byte string
//                 (a message body, a segment payload, a reassembled span).
//   SliceQueue  — a bounded FIFO of slices with RingBuffer-identical byte
//                 accounting (partial accept against free space), used for
//                 the TCP send/receive queues.
#pragma once

#include <cassert>
#include <cstddef>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "net/buffer.hpp"
#include "net/pool_alloc.hpp"

namespace sctpmpi::net {

struct BufferSlice {
  Buffer buf;
  std::size_t off = 0;
  std::size_t len = 0;

  BufferSlice() = default;
  BufferSlice(Buffer b, std::size_t o, std::size_t l)
      : buf(std::move(b)), off(o), len(l) {
    assert(off + len <= buf.size());
  }
  /// Whole-buffer view.
  explicit BufferSlice(Buffer b) : buf(std::move(b)) { len = buf.size(); }

  bool empty() const { return len == 0; }
  std::span<const std::byte> span() const { return {buf.data() + off, len}; }

  /// Sub-view (no copy, refcount bump).
  BufferSlice sub(std::size_t o, std::size_t l) const {
    assert(o + l <= len);
    return BufferSlice{buf, off + o, l};
  }
  BufferSlice sub(std::size_t o) const { return sub(o, len - o); }
};

/// One logical byte string assembled from slices. Append/trim/sub
/// operations move descriptors only; the single byte-copy primitive is
/// copy_to() (receive-side, counted) / append_to() (encode-side, counted
/// through Buffer::Builder::append).
class SliceChain {
 public:
  // Chains are created and destroyed per packet/chunk and almost always
  // hold one or two slices: the descriptor array comes from the small-block
  // pool, not malloc.
  using SliceVec = std::vector<BufferSlice, PoolAllocator<BufferSlice>>;

  SliceChain() = default;
  explicit SliceChain(BufferSlice s) { push_back(std::move(s)); }

  /// Adopts a plain byte vector as a single owned slice (no byte copy:
  /// the Buffer adopts the vector's storage).
  static SliceChain adopt(std::vector<std::byte>&& bytes) {
    return SliceChain{BufferSlice{Buffer{std::move(bytes)}}};
  }

  /// Copies a raw span into a fresh owned slice (ingest-counted).
  static SliceChain copy_of(std::span<const std::byte> src) {
    if (src.empty()) return SliceChain{};
    return SliceChain{BufferSlice{Buffer::copy_of(src)}};
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() {
    slices_.clear();
    size_ = 0;
  }

  const SliceVec& slices() const { return slices_; }

  void push_back(BufferSlice s) {
    if (s.len == 0) return;
    size_ += s.len;
    slices_.push_back(std::move(s));
  }

  void append(const SliceChain& other) {
    for (const auto& s : other.slices_) push_back(s);
  }
  void append(SliceChain&& other) {
    for (auto& s : other.slices_) push_back(std::move(s));
    other.clear();
  }

  /// Sub-string view [off, off+len): descriptor copies only.
  SliceChain subchain(std::size_t off, std::size_t len) const {
    assert(off + len <= size_);
    SliceChain out;
    for (const auto& s : slices_) {
      if (len == 0) break;
      if (off >= s.len) {
        off -= s.len;
        continue;
      }
      const std::size_t take = std::min(s.len - off, len);
      out.push_back(s.sub(off, take));
      off = 0;
      len -= take;
    }
    return out;
  }
  SliceChain subchain(std::size_t off) const {
    return subchain(off, size_ - off);
  }

  /// Drops the first `n` bytes (descriptor trim).
  void trim_front(std::size_t n) {
    assert(n <= size_);
    size_ -= n;
    std::size_t drop = 0;
    while (n > 0 && slices_[drop].len <= n) {
      n -= slices_[drop].len;
      ++drop;
    }
    if (drop > 0) slices_.erase(slices_.begin(), slices_.begin() + drop);
    if (n > 0) slices_.front() = slices_.front().sub(n);
  }

  /// Copies [from, from+out.size()) into `out`. This is the receive-side
  /// payload copy, counted against the budget.
  void copy_to(std::span<std::byte> out, std::size_t from = 0) const {
    raw_copy_to(out, from);
    count_payload_copy(out.size());
  }

  /// Uncounted raw copy: envelope peeks and test conveniences.
  void raw_copy_to(std::span<std::byte> out, std::size_t from = 0) const {
    assert(from + out.size() <= size_);
    std::size_t want = out.size();
    std::byte* dst = out.data();
    for (const auto& s : slices_) {
      if (want == 0) break;
      if (from >= s.len) {
        from -= s.len;
        continue;
      }
      const std::size_t take = std::min(s.len - from, want);
      const std::byte* src = s.buf.data() + s.off + from;
      std::copy(src, src + take, dst);
      dst += take;
      want -= take;
      from = 0;
    }
  }

  /// Appends all bytes to a plain vector (uncounted: test/serialization
  /// convenience path).
  void append_to(std::vector<std::byte>& out) const {
    for (const auto& s : slices_) {
      const std::byte* p = s.buf.data() + s.off;
      out.insert(out.end(), p, p + s.len);
    }
  }

  /// Appends all bytes to a wire Builder (send-side payload copy, counted
  /// through Builder::append).
  void append_to(Buffer::Builder& b) const {
    for (const auto& s : slices_) b.append(s.buf, s.off, s.len);
  }

  std::vector<std::byte> to_vector() const {
    std::vector<std::byte> out;
    out.reserve(size_);
    append_to(out);
    return out;
  }

  bool operator==(const SliceChain& other) const {
    if (size_ != other.size_) return false;
    return to_vector() == other.to_vector();
  }
  bool operator==(const std::vector<std::byte>& v) const {
    if (size_ != v.size()) return false;
    std::size_t i = 0;
    for (const auto& s : slices_) {
      const std::byte* p = s.buf.data() + s.off;
      if (!std::equal(p, p + s.len, v.begin() + static_cast<std::ptrdiff_t>(i)))
        return false;
      i += s.len;
    }
    return true;
  }

 private:
  SliceVec slices_;
  std::size_t size_ = 0;
};

/// Bounded FIFO byte queue over slices, with the same partial-accept byte
/// accounting as net::RingBuffer (writes accept min(n, free_space), reads
/// drain from the front) so it can replace the TCP socket buffers without
/// changing any window or flow-control arithmetic.
class SliceQueue {
 public:
  explicit SliceQueue(std::size_t capacity) : cap_(capacity) {}

  std::size_t capacity() const { return cap_; }
  std::size_t size() const { return size_; }
  std::size_t free_space() const { return cap_ - size_; }
  bool empty() const { return size_ == 0; }

  /// Copy-in write (raw span from a caller that may reuse its storage):
  /// accepts min(n, free_space) bytes into one owned slice.
  std::size_t write(std::span<const std::byte> data) {
    const std::size_t n = std::min(data.size(), free_space());
    if (n == 0) return 0;
    push_(BufferSlice{Buffer::copy_of(data.subspan(0, n))});
    return n;
  }

  /// Zero-copy write: accepts min(s.len, free_space) bytes of the slice.
  std::size_t write(const BufferSlice& s) {
    const std::size_t n = std::min(s.len, free_space());
    if (n == 0) return 0;
    push_(s.sub(0, n));
    return n;
  }

  /// Zero-copy write of a chain prefix: accepts min(c.size, free_space).
  std::size_t write(const SliceChain& c) {
    std::size_t accepted = 0;
    for (const auto& s : c.slices()) {
      const std::size_t n = write(s);
      accepted += n;
      if (n < s.len) break;
    }
    return accepted;
  }

  /// Zero-copy view of [offset, offset+len): used by TCP segmentation and
  /// retransmission to reference queued bytes without touching them.
  SliceChain gather(std::size_t offset, std::size_t len) const {
    assert(offset + len <= size_);
    SliceChain out;
    for (const auto& s : slices_) {
      if (len == 0) break;
      if (offset >= s.len) {
        offset -= s.len;
        continue;
      }
      const std::size_t take = std::min(s.len - offset, len);
      out.push_back(s.sub(offset, take));
      offset = 0;
      len -= take;
    }
    return out;
  }

  /// Copies [offset, offset+out.size()) without consuming (uncounted:
  /// RingBuffer-parity helper for tests).
  void peek(std::size_t offset, std::span<std::byte> out) const {
    gather(offset, out.size()).raw_copy_to(out);
  }

  /// Copies up to out.size() bytes from the front into `out` and drops
  /// them. This is the receive-side user copy (counted).
  std::size_t read(std::span<std::byte> out) {
    const std::size_t n = std::min(out.size(), size_);
    if (n == 0) return 0;
    gather(0, n).copy_to(out.subspan(0, n));
    drop(n);
    return n;
  }

  /// Drops `n` bytes from the front (descriptor trim, e.g. on ack).
  void drop(std::size_t n) {
    assert(n <= size_);
    size_ -= n;
    while (n > 0 && slices_.front().len <= n) {
      n -= slices_.front().len;
      slices_.pop_front();
    }
    if (n > 0) slices_.front() = slices_.front().sub(n);
  }

 private:
  void push_(BufferSlice s) {
    size_ += s.len;
    slices_.push_back(std::move(s));
  }

  std::deque<BufferSlice> slices_;
  std::size_t size_ = 0;
  std::size_t cap_;
};

}  // namespace sctpmpi::net
