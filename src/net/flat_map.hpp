// Open-addressing hash tables for per-packet and per-message fast paths.
//
// FlatMap64 is the primitive: nonzero 64-bit key -> small trivially
// copyable value, linear probing with backward-shift deletion (no
// tombstones, honest load factor under steady insert/erase churn). It backs
// the flow demux on every host receive path — TCP (lport, raddr, rport) ->
// socket, SCTP port -> socket and peer (addr, port) -> association — where
// the node-based std::map it replaced paid an allocation plus a pointer
// chase per packet. Entries are only ever probed point-wise on hot paths —
// never iterated — so the unordered layout cannot change simulation order;
// the few cold-path scans (ephemeral-port checks, teardown sweeps) compute
// order-insensitive results.
//
// (core/flat_hash.hpp layers the RPI-facing PeerSeqMap adapter on top.)
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace sctpmpi::net {

/// Flat hash map: nonzero uint64 key -> small trivially-copyable value.
template <typename T>
class FlatMap64 {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  /// Inserts or overwrites the entry for `key` (must be nonzero).
  void put(std::uint64_t key, T value) {
    assert(key != 0);
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow_();
    std::size_t i = hash_(key) & mask_();
    while (slots_[i].key != 0 && slots_[i].key != key) i = (i + 1) & mask_();
    if (slots_[i].key == 0) ++size_;
    slots_[i] = Slot{key, value};
  }

  /// Returns the mapped value, or `missing` when absent.
  T find(std::uint64_t key, T missing = T{}) const {
    if (slots_.empty()) return missing;
    std::size_t i = hash_(key) & mask_();
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_();
    }
    return missing;
  }

  bool contains(std::uint64_t key) const {
    if (slots_.empty()) return false;
    std::size_t i = hash_(key) & mask_();
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) return true;
      i = (i + 1) & mask_();
    }
    return false;
  }

  /// Removes the entry and returns its value, or `missing` when absent.
  T take(std::uint64_t key, T missing = T{}) {
    if (slots_.empty()) return missing;
    std::size_t i = hash_(key) & mask_();
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) {
        T out = slots_[i].value;
        erase_at_(i);
        --size_;
        return out;
      }
      i = (i + 1) & mask_();
    }
    return missing;
  }

  /// Visits every (key, value) entry in unspecified order. Cold paths only;
  /// callers must compute order-insensitive results.
  template <typename Fn>
  void for_each(Fn fn) const {
    for (const Slot& s : slots_) {
      if (s.key != 0) fn(s.key, s.value);
    }
  }

  /// Erases every entry matching pred(key, value). Cold path (teardown).
  template <typename Pred>
  void erase_if(Pred pred) {
    // Collect first: backward-shift deletion moves entries, so erasing
    // while scanning would skip or revisit slots.
    std::vector<std::uint64_t> doomed;
    for (const Slot& s : slots_) {
      if (s.key != 0 && pred(s.key, s.value)) doomed.push_back(s.key);
    }
    for (std::uint64_t key : doomed) take(key);
  }

 private:
  struct Slot {
    std::uint64_t key = 0;  // 0 = empty
    T value{};
  };

  static std::size_t hash_(std::uint64_t x) {
    // splitmix64 finalizer: full-avalanche, so linear probing sees a
    // uniform spread even for dense key ranges (consecutive seqs, ports).
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  std::size_t mask_() const { return slots_.size() - 1; }

  /// Backward-shift deletion: closes the hole at i by sliding later probe
  /// chain members down, preserving the invariant that every entry is
  /// reachable from its home slot without tombstones.
  void erase_at_(std::size_t i) {
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_();
      if (slots_[j].key == 0) break;
      const std::size_t home = hash_(slots_[j].key) & mask_();
      if (((j - home) & mask_()) >= ((j - hole) & mask_())) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole] = Slot{};
  }

  void grow_() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      std::size_t i = hash_(s.key) & mask_();
      while (slots_[i].key != 0) i = (i + 1) & mask_();
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;  // power-of-2 capacity
  std::size_t size_ = 0;
};

}  // namespace sctpmpi::net
