// Cluster topology builder.
//
// Two topologies:
//
//  * kFlat — the paper's testbed: N hosts, each with K gigabit interfaces,
//    interface k of every host connected to switch k (K independent
//    networks). This is the golden-trace topology and its build order and
//    RNG stream assignment are frozen.
//
//  * kFatTree — a k-ary fat-tree/Clos: k pods of k/2 ToR and k/2
//    aggregation switches, (k/2)^2 core switches, k^3/4 single-homed hosts.
//    Downward forwarding uses exact routes; upward forwarding is
//    ECMP-hashed over the k/2 uplinks at each tier (see net/switch.hpp).
//    This is the datacenter-scale topology for sharded runs.
//
// Either topology can be built over a sim::ShardGroup: every host is
// assigned a shard (contiguous blocks by default, or an explicit placement
// vector), switches are co-located with the hosts they serve, and every
// link whose endpoints land on different shards becomes a cross-shard
// handoff (Link::set_cross_shard). cross_shard_lookahead() — the minimum
// propagation delay over those links — is the conservative-lookahead bound
// the ShardGroup driver runs with.
//
// Per-link Dummynet loss is configurable at build time and can be changed
// later (Cluster::set_loss), including per subnet — used by the multihoming
// failover experiments. Loss lives on host uplinks only, so a configured
// rate is per end-to-end path in both topologies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/host.hpp"
#include "net/placement.hpp"
#include "net/switch.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {

enum class TopologyKind { kFlat, kFatTree };

struct FatTreeParams {
  unsigned k = 4;  // even, >= 2; pods = k, hosts = k^3/4
  // Tier links: host<->ToR uses ClusterParams::link; the upper tiers get
  // longer propagation (more fiber, more PHY) which is also what gives the
  // sharded driver a usable lookahead window.
  LinkParams aggr_link{1e9, 10 * sim::kMicrosecond, 256, 0.0};  // ToR<->agg
  LinkParams core_link{1e9, 20 * sim::kMicrosecond, 256, 0.0};  // agg<->core
};

struct ClusterParams {
  unsigned hosts = 8;
  unsigned interfaces = 1;  // paper's nodes had 3; experiments used 1
  LinkParams link;
  HostCostModel costs;
  TopologyKind topology = TopologyKind::kFlat;
  FatTreeParams fattree;  // used when topology == kFatTree
  /// Host -> shard placement. Empty = contiguous blocks (host h on shard
  /// h * shards / hosts). Ignored for single-simulator builds.
  std::vector<unsigned> placement;
};

class Cluster {
 public:
  /// Classic single-simulator build (golden-trace path, byte-frozen).
  Cluster(sim::Simulator& sim, sim::Rng rng, const ClusterParams& params);
  /// Shard-aware build over `group`; with group.count() == 1 it produces
  /// the identical wiring as the single-simulator constructor.
  Cluster(sim::ShardGroup& group, sim::Rng rng, const ClusterParams& params);

  Host& host(unsigned i) { return *hosts_.at(i); }
  unsigned host_count() const { return static_cast<unsigned>(hosts_.size()); }
  unsigned interface_count() const { return params_.interfaces; }
  IpAddr addr(unsigned host, unsigned iface = 0) const {
    return make_addr(iface, host);
  }

  /// Shard carrying `host` (0 for single-simulator builds).
  unsigned shard_of_host(unsigned host) const { return shard_of_.at(host); }
  unsigned shard_count() const {
    return group_ != nullptr ? group_->count() : 1;
  }
  /// Minimum propagation delay over links that cross shards — the
  /// conservative lookahead for ShardGroup::run. kNoEvent when no link
  /// crosses (single shard, or a placement with no cut edges).
  sim::SimTime cross_shard_lookahead() const { return lookahead_; }
  /// Per-pair minimum delays over the cross-shard links: [src][dst],
  /// kNoEvent where no link crosses that pair. In a fat-tree the cut edges
  /// are the long agg<->core links, so the per-pair bounds are much wider
  /// than the scalar lookahead — exactly what the ShardGroup driver's
  /// window prefetch feeds on. Empty for single-shard builds.
  const std::vector<std::vector<sim::SimTime>>& cross_shard_lookahead_matrix()
      const {
    return lookahead_matrix_;
  }

  /// Starts recording per-host load and pairwise traffic into an owned
  /// LoadProfile (hooked into every host). Single-shard builds only — the
  /// profile is not thread-safe; measure on a 1-shard warmup world, then
  /// feed compute_placement() for the sharded run.
  LoadProfile& enable_load_profile();
  /// The profile enabled earlier, or nullptr.
  const LoadProfile* load_profile() const { return profile_.get(); }

  /// Co-location constraint groups for compute_placement(): hosts under one
  /// ToR in a fat-tree (splitting a ToR would put its edge links on the
  /// cut, whose short delay would crush the lookahead); singletons in the
  /// flat topology, where every host hangs off the shared switches anyway.
  std::vector<std::vector<unsigned>> placement_groups() const;

  /// Aliases `vip` onto the routes already serving `host`: every switch
  /// holding an exact route toward one of the host's interface addresses
  /// gets the same egress registered for the VIP. In the flat topology the
  /// VIP should share a subnet octet with one of the host's interfaces so
  /// Host::route_ and ECMP-free switches steer it; in the fat-tree the
  /// copied routes cover the downward direction at every tier while ECMP
  /// carries VIP-bound packets upward unchanged. Call after construction,
  /// before traffic.
  void add_service_route(IpAddr vip, unsigned host);

  /// Reconfigures the Dummynet loss probability on every host uplink.
  void set_loss(double p);
  /// Reconfigures loss on every link of one subnet only (e.g. to fail a
  /// path for the multihoming experiments; p = 1.0 severs it).
  void set_subnet_loss(unsigned subnet, double p);

  /// Aggregate link statistics across the cluster.
  LinkStats total_link_stats() const;
  /// Packets dropped by switches for want of any route or uplink.
  std::uint64_t total_unroutable() const;

  /// Installs a wire-level observer on every link and host (nullptr
  /// detaches). Links are labelled "up<host>.<iface>" / "dn<host>.<iface>",
  /// hosts "h<id>"; trace::PacketTrace::attach() uses this. Observers are
  /// single-threaded: only attach on single-shard runs.
  void set_observer(PacketObserver* obs);

  /// The link carrying traffic from `host` into switch `iface` (uplink) or
  /// from switch `iface` to `host` (downlink). Exposed for tests that
  /// install deterministic drop filters. (Fat-tree hosts have one
  /// interface; iface 0 names their ToR edge links.)
  Link& uplink(unsigned host, unsigned iface = 0) {
    return *up_.at(host).at(iface);
  }
  Link& downlink(unsigned host, unsigned iface = 0) {
    return *down_.at(host).at(iface);
  }

  /// Every link in build order. Exposed for topology tests (path spread,
  /// per-tier utilization).
  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

 private:
  sim::Simulator& shard_sim_(unsigned shard) {
    return group_ != nullptr ? group_->shard(shard) : *single_sim_;
  }
  /// Creates a link whose source entity lives on `src_shard` and whose
  /// sink runs on `dst_shard`, wiring the cross-shard handoff when they
  /// differ and folding the delay into the lookahead bound.
  Link* make_link_(unsigned src_shard, unsigned dst_shard,
                   const LinkParams& lp, sim::Rng rng);
  void resolve_placement_();
  void build_flat_(sim::Rng& rng);
  void build_fattree_(sim::Rng& rng);

  ClusterParams params_;
  sim::ShardGroup* group_ = nullptr;
  sim::Simulator* single_sim_ = nullptr;
  std::vector<unsigned> shard_of_;  // host -> shard
  sim::SimTime lookahead_ = sim::ShardGroup::kNoEvent;
  std::vector<std::vector<sim::SimTime>> lookahead_matrix_;
  std::unique_ptr<LoadProfile> profile_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;
  std::vector<std::unique_ptr<Link>> links_;
  // links per subnet, for set_subnet_loss
  std::vector<std::vector<Link*>> subnet_links_;
  // [host][iface] link pointers for test hooks
  std::vector<std::vector<Link*>> up_;
  std::vector<std::vector<Link*>> down_;
};

}  // namespace sctpmpi::net
