// Cluster topology builder reproducing the paper's testbed: N hosts, each
// with K gigabit interfaces, interface k of every host connected to switch k
// (K independent networks). Per-link Dummynet loss is configurable at build
// time and can be changed later (Cluster::set_loss), including per subnet —
// used by the multihoming failover experiments.
#pragma once

#include <memory>
#include <vector>

#include "net/host.hpp"
#include "net/switch.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {

struct ClusterParams {
  unsigned hosts = 8;
  unsigned interfaces = 1;  // paper's nodes had 3; experiments used 1
  LinkParams link;
  HostCostModel costs;
};

class Cluster {
 public:
  Cluster(sim::Simulator& sim, sim::Rng rng, const ClusterParams& params);

  Host& host(unsigned i) { return *hosts_.at(i); }
  unsigned host_count() const { return static_cast<unsigned>(hosts_.size()); }
  unsigned interface_count() const { return params_.interfaces; }
  IpAddr addr(unsigned host, unsigned iface = 0) const {
    return make_addr(iface, host);
  }

  /// Reconfigures the Dummynet loss probability on every link.
  void set_loss(double p);
  /// Reconfigures loss on every link of one subnet only (e.g. to fail a
  /// path for the multihoming experiments; p = 1.0 severs it).
  void set_subnet_loss(unsigned subnet, double p);

  /// Aggregate link statistics across the cluster.
  LinkStats total_link_stats() const;

  /// Installs a wire-level observer on every link and host (nullptr
  /// detaches). Links are labelled "up<host>.<iface>" / "dn<host>.<iface>",
  /// hosts "h<id>"; trace::PacketTrace::attach() uses this.
  void set_observer(PacketObserver* obs);

  /// The link carrying traffic from `host` into switch `iface` (uplink) or
  /// from switch `iface` to `host` (downlink). Exposed for tests that
  /// install deterministic drop filters.
  Link& uplink(unsigned host, unsigned iface = 0) {
    return *up_.at(host).at(iface);
  }
  Link& downlink(unsigned host, unsigned iface = 0) {
    return *down_.at(host).at(iface);
  }

 private:
  ClusterParams params_;
  std::vector<std::unique_ptr<Host>> hosts_;
  std::vector<std::unique_ptr<Switch>> switches_;  // one per subnet
  std::vector<std::unique_ptr<Link>> links_;
  // links per subnet, for set_subnet_loss
  std::vector<std::vector<Link*>> subnet_links_;
  // [host][iface] link pointers for test hooks
  std::vector<std::vector<Link*>> up_;
  std::vector<std::vector<Link*>> down_;
};

}  // namespace sctpmpi::net
