// Fixed-capacity byte ring buffer used for transport send/receive queues.
//
// Supports the access patterns transport stacks need: append at the tail,
// consume from the head, and random-access peek relative to the head (for
// retransmitting unacknowledged data without consuming it).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <span>
#include <vector>

namespace sctpmpi::net {

class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : buf_(capacity) {}

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  std::size_t free_space() const { return buf_.size() - size_; }
  bool empty() const { return size_ == 0; }

  /// Appends up to data.size() bytes; returns the number accepted.
  std::size_t write(std::span<const std::byte> data) {
    const std::size_t n = std::min(data.size(), free_space());
    if (n == 0) return 0;  // empty spans may carry a null data()
    std::size_t tail = (head_ + size_) % buf_.size();
    std::size_t first = std::min(n, buf_.size() - tail);
    std::memcpy(buf_.data() + tail, data.data(), first);
    std::memcpy(buf_.data(), data.data() + first, n - first);
    size_ += n;
    return n;
  }

  /// Copies `len` bytes starting `offset` bytes past the head into `out`.
  /// Requires offset + len <= size().
  void peek(std::size_t offset, std::span<std::byte> out) const {
    const std::size_t len = out.size();
    if (len == 0) return;  // empty spans may carry a null data()
    std::size_t pos = (head_ + offset) % buf_.size();
    std::size_t first = std::min(len, buf_.size() - pos);
    std::memcpy(out.data(), buf_.data() + pos, first);
    std::memcpy(out.data() + first, buf_.data(), len - first);
  }

  /// Consumes up to `out.size()` bytes from the head into `out`;
  /// returns the number read.
  std::size_t read(std::span<std::byte> out) {
    const std::size_t n = std::min(out.size(), size_);
    peek(0, out.subspan(0, n));
    drop(n);
    return n;
  }

  /// Discards `n` bytes from the head. Requires n <= size().
  void drop(std::size_t n) {
    head_ = (head_ + n) % buf_.size();
    size_ -= n;
  }

 private:
  std::vector<std::byte> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace sctpmpi::net
