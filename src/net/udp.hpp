// Minimal UDP: unreliable, unordered datagrams. This is the transport
// LAM's out-of-band daemons used by default (paper §3.5.3) before the
// authors moved them to SCTP; it also anchors the paper's related-work
// discussion of UDP-based MPI implementations.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "net/host.hpp"
#include "net/packet.hpp"

namespace sctpmpi::net {

class UdpStack;

struct Datagram {
  IpAddr from;
  std::uint16_t sport = 0;
  std::vector<std::byte> data;
};

class UdpSocket {
 public:
  UdpSocket(UdpStack& stack, std::uint16_t port)
      : stack_(stack), port_(port) {}

  /// Fire-and-forget datagram. No delivery guarantee of any kind.
  void sendto(IpAddr dst, std::uint16_t dport,
              std::span<const std::byte> data);

  /// Pops the next received datagram, if any.
  bool recvfrom(Datagram& out) {
    if (rx_.empty()) return false;
    out = std::move(rx_.front());
    rx_.pop_front();
    return true;
  }

  bool readable() const { return !rx_.empty(); }
  std::uint16_t port() const { return port_; }
  void set_activity_callback(std::function<void()> cb) {
    on_activity_ = std::move(cb);
  }

 private:
  friend class UdpStack;
  UdpStack& stack_;
  std::uint16_t port_;
  std::deque<Datagram> rx_;
  std::function<void()> on_activity_;
};

class UdpStack : public ProtocolHandler {
 public:
  explicit UdpStack(Host& host) : host_(host) {
    host_.register_protocol(IpProto::kUdp, this);
  }

  UdpSocket* create_socket(std::uint16_t port);
  void on_ip_packet(Packet&& pkt) override;
  Host& host() { return host_; }

 private:
  friend class UdpSocket;
  Host& host_;
  std::vector<std::unique_ptr<UdpSocket>> sockets_;
  std::map<std::uint16_t, UdpSocket*> by_port_;
};

}  // namespace sctpmpi::net
