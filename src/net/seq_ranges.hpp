// Run-length containers for 32-bit serial-number spaces (RFC 1982), shared
// by the transport scoreboards: the SCTP receiver TSN map, the TCP SACK
// scoreboard, and the sender retransmission queues.
//
// Both containers assume the values they hold span well under 2^31 of
// serial space at any instant (true for any windowed transport: the flight
// is bounded by the socket buffer), so serial comparison is a total order
// over the live contents even as the absolute values wrap through 2^32.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "net/bytes.hpp"

namespace sctpmpi::net {

/// Sorted set of 32-bit serial-space values stored as disjoint,
/// non-adjacent half-open runs [lo, hi). Dense workloads (a receiver under
/// low loss, a SACK scoreboard in recovery) collapse to a handful of runs,
/// so every operation that used to walk a per-value node container touches
/// a few cache lines instead.
class SeqRuns {
 public:
  struct Run {
    std::uint32_t lo = 0;  // first value in the run
    std::uint32_t hi = 0;  // one past the last value
    bool operator==(const Run&) const = default;
  };

  bool empty() const { return head_ == runs_.size(); }
  std::size_t run_count() const { return runs_.size() - head_; }
  /// i-th run in ascending serial order.
  const Run& run(std::size_t i) const { return runs_[head_ + i]; }
  const Run& front() const { return runs_[head_]; }
  const Run& back() const { return runs_.back(); }
  /// Total number of values covered by all runs.
  std::uint64_t value_count() const { return count_; }

  void clear() {
    runs_.clear();
    head_ = 0;
    count_ = 0;
  }

  /// Drops the first run (used when a cumulative ack point swallows it).
  void pop_front() {
    assert(!empty());
    count_ -= width_(runs_[head_]);
    ++head_;
    maybe_compact_();
  }

  bool contains(std::uint32_t v) const {
    const Run* r = find_covering_(v);
    return r != nullptr;
  }

  /// True when [lo, hi) is entirely covered. Runs are maximal, so coverage
  /// of a contiguous range implies a single covering run.
  bool contains_range(std::uint32_t lo, std::uint32_t hi) const {
    const Run* r = find_covering_(lo);
    return r != nullptr && seq_leq(hi, r->hi);
  }

  /// Inserts [lo, hi), merging into neighbouring runs. Returns the number
  /// of newly covered values (0 = range was already fully present).
  std::uint32_t insert(std::uint32_t lo, std::uint32_t hi) {
    assert(seq_lt(lo, hi));
    // Fast paths: empty set, extend-or-append at the tail (the in-order
    // arrival pattern that dominates every transport workload).
    if (empty() || seq_gt(lo, runs_.back().hi)) {
      runs_.push_back(Run{lo, hi});
      count_ += hi - lo;
      return hi - lo;
    }
    if (lo == runs_.back().hi) {
      runs_.back().hi = hi;
      count_ += hi - lo;
      return hi - lo;
    }
    // First run that can touch [lo, hi): lowest run with run.hi >= lo.
    std::size_t i = head_;
    {
      std::size_t n = runs_.size() - head_;
      while (n > 0) {  // branchless-friendly binary search on run.hi
        const std::size_t half = n / 2;
        if (seq_lt(runs_[i + half].hi, lo)) {
          i += half + 1;
          n -= half + 1;
        } else {
          n = half;
        }
      }
    }
    if (i == runs_.size() || seq_lt(hi, runs_[i].lo)) {
      // Disjoint, non-adjacent: insert a fresh run before i.
      runs_.insert(runs_.begin() + static_cast<std::ptrdiff_t>(i),
                   Run{lo, hi});
      count_ += hi - lo;
      return hi - lo;
    }
    // Merge [lo, hi) with runs_[i..j): all runs with run.lo <= hi.
    std::uint32_t covered = 0;  // values of [lo,hi) already present
    Run merged{seq_lt(runs_[i].lo, lo) ? runs_[i].lo : lo,
               seq_gt(runs_[i].hi, hi) ? runs_[i].hi : hi};
    std::size_t j = i;
    while (j < runs_.size() && seq_leq(runs_[j].lo, hi)) {
      const Run& r = runs_[j];
      // Overlap of r with [lo, hi).
      const std::uint32_t olo = seq_gt(r.lo, lo) ? r.lo : lo;
      const std::uint32_t ohi = seq_lt(r.hi, hi) ? r.hi : hi;
      if (seq_lt(olo, ohi)) covered += ohi - olo;
      if (seq_gt(r.hi, merged.hi)) merged.hi = r.hi;
      ++j;
    }
    const std::uint32_t added = (hi - lo) - covered;
    runs_[i] = merged;
    runs_.erase(runs_.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                runs_.begin() + static_cast<std::ptrdiff_t>(j));
    count_ += added;
    return added;
  }

  /// Inserts a single value; returns false when it was already present.
  bool insert_value(std::uint32_t v) { return insert(v, v + 1) != 0; }

  /// Removes every value serially below `bound` (runs are dropped whole or
  /// trimmed at the left edge).
  void erase_below(std::uint32_t bound) {
    while (!empty() && seq_leq(runs_[head_].hi, bound)) pop_front();
    if (!empty() && seq_lt(runs_[head_].lo, bound)) {
      count_ -= bound - runs_[head_].lo;
      runs_[head_].lo = bound;
    }
  }

  /// First value >= `from` (serially) that is not covered, or nullopt when
  /// `from` lies at/beyond the end of the last run. Mirrors the TCP
  /// retransmission "next hole" scan: holes past the highest SACKed byte
  /// are unknown, not missing.
  std::optional<std::uint32_t> next_hole(std::uint32_t from) const {
    std::uint32_t probe = from;
    for (std::size_t i = head_; i < runs_.size(); ++i) {
      if (seq_lt(probe, runs_[i].lo)) return probe;
      if (seq_lt(probe, runs_[i].hi)) probe = runs_[i].hi;
    }
    return std::nullopt;
  }

 private:
  static std::uint32_t width_(const Run& r) { return r.hi - r.lo; }

  const Run* find_covering_(std::uint32_t v) const {
    // Lowest run with run.hi > v, then check it actually starts at/below v.
    std::size_t i = head_;
    std::size_t n = runs_.size() - head_;
    while (n > 0) {
      const std::size_t half = n / 2;
      if (seq_leq(runs_[i + half].hi, v)) {
        i += half + 1;
        n -= half + 1;
      } else {
        n = half;
      }
    }
    if (i == runs_.size() || seq_gt(runs_[i].lo, v)) return nullptr;
    return &runs_[i];
  }

  void maybe_compact_() {
    if (head_ >= 32 && head_ * 2 >= runs_.size()) {
      runs_.erase(runs_.begin(),
                  runs_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  std::vector<Run> runs_;  // live runs are [head_, runs_.size())
  std::size_t head_ = 0;   // amortizes pop_front without a memmove per pop
  std::uint64_t count_ = 0;
};

/// Circular queue of records indexed by a dense 32-bit serial key: element
/// i holds key base+i. This is the shape of a sender's retransmission
/// scoreboard — TSNs/sequence numbers are assigned consecutively and only
/// ever retired from the front (cumulative ack), so lookup by key is one
/// subtraction and a bounds check, and scans are contiguous memory.
template <typename T>
class SeqIndexedQueue {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  /// Key of the front element (unspecified when empty).
  std::uint32_t base() const { return base_; }
  /// Key of element i.
  std::uint32_t key_at(std::size_t i) const {
    return base_ + static_cast<std::uint32_t>(i);
  }

  T& front() { return slot_(0); }
  const T& front() const { return slot_(0); }
  T& at_offset(std::size_t i) {
    assert(i < size_);
    return slot_(i);
  }
  const T& at_offset(std::size_t i) const {
    assert(i < size_);
    return slot_(i);
  }

  /// Offset of `key` from the base, or -1 when outside [base, base+size).
  std::ptrdiff_t index_of(std::uint32_t key) const {
    const std::int32_t d = seq_diff(key, base_);
    if (d < 0 || static_cast<std::size_t>(d) >= size_) return -1;
    return d;
  }

  T* find(std::uint32_t key) {
    const std::ptrdiff_t i = index_of(key);
    return i < 0 ? nullptr : &slot_(static_cast<std::size_t>(i));
  }

  /// Appends the record for `key`. Keys must be dense: when non-empty,
  /// `key` must equal base+size (the next serial number).
  void push_back(std::uint32_t key, T&& v) {
    if (size_ == slots_.size()) grow_();
    if (size_ == 0) {
      base_ = key;
      head_ = 0;
    } else {
      assert(key == base_ + static_cast<std::uint32_t>(size_) &&
             "SeqIndexedQueue keys must be consecutive");
    }
    slots_[wrap_(head_ + size_)] = std::move(v);
    ++size_;
  }

  void pop_front() {
    assert(size_ > 0);
    slots_[head_] = T{};  // release payload memory eagerly
    head_ = wrap_(head_ + 1);
    ++base_;
    --size_;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) slot_(i) = T{};
    head_ = 0;
    size_ = 0;
  }

 private:
  std::size_t wrap_(std::size_t i) const { return i & (slots_.size() - 1); }
  T& slot_(std::size_t i) { return slots_[wrap_(head_ + i)]; }
  const T& slot_(std::size_t i) const { return slots_[wrap_(head_ + i)]; }

  void grow_() {
    const std::size_t cap = slots_.empty() ? 64 : slots_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = std::move(slot_(i));
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> slots_;  // power-of-2 capacity ring
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint32_t base_ = 0;
};

}  // namespace sctpmpi::net
