// Ref-counted immutable byte buffer: the payload type of net::Packet.
//
// A packet's serialized bytes are written once (at the sending transport
// stack) and then only read — by links, switches, the trace recorder, and
// the receiving stack. Buffer makes every Packet copy a refcount bump
// instead of a payload memcpy: link-level duplication, trace capture, and
// fan-out forwarding all share one block. The single writer after encode is
// the fault pipeline's bit-flip, which goes through mutable_data() and gets
// copy-on-write, so a corrupted duplicate never damages the shared original.
//
// Blocks are recycled through a thread-local freelist: steady-state packet
// churn allocates nothing, and recycled vectors keep their capacity so even
// Builder encodes stop growing after warm-up. The refcount is deliberately
// NOT atomic: a Simulator and every object inside it live on one thread
// (sharded runs drive each shard's simulator from exactly one worker), so a
// buffer must never be shared across shards. The one sanctioned exception
// is the cross-shard link handoff, which transfers *sole* ownership:
// detach_for_handoff() clones the block if anything else still references
// it, so the receiving shard adopts a block no other thread can touch.
// Debug builds tag every block with its owning shard and assert the rule.
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "sim/shard_id.hpp"

namespace sctpmpi::net {

/// Copy-discipline instrumentation. `payload_copy_bytes` counts data-path
/// memcpys of message payload: the wire-encode append on the send side and
/// the queue/chain -> user-buffer copy on the receive side. `ingest_bytes`
/// counts the user-span -> owned Buffer copy at the MPI boundary, which
/// MPI buffer-reuse semantics require and which therefore sits outside the
/// <=1-copy-per-direction budget. Always on (not debug-gated): the
/// datapath benches self-check their copy counts in release builds.
///
/// Sharded runs mutate these counters from several worker threads at once,
/// so the hot-path increment lands in a per-thread counter pair (relaxed
/// atomics, uncontended); get() aggregates every thread's pair — live
/// threads plus totals retired at thread exit — into an exact snapshot.
/// Exactness at get()/reset() assumes the counted work is quiescent (no
/// simulation mid-run), which is how every budget check already calls it.
class CopyLedger {
 public:
  struct Counters {
    std::atomic<std::uint64_t> payload{0};
    std::atomic<std::uint64_t> ingest{0};
  };

  static CopyLedger& instance() {
    static CopyLedger ledger;
    return ledger;
  }

  /// The calling thread's counter pair (registered on first use).
  Counters& local() {
    static thread_local Handle handle;
    return handle.counters;
  }

  void snapshot(std::uint64_t* payload, std::uint64_t* ingest) {
    const std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t p = retired_payload_;
    std::uint64_t g = retired_ingest_;
    for (const Counters* c : live_) {
      p += c->payload.load(std::memory_order_relaxed);
      g += c->ingest.load(std::memory_order_relaxed);
    }
    *payload = p;
    *ingest = g;
  }

  void reset() {
    const std::lock_guard<std::mutex> lk(mu_);
    retired_payload_ = 0;
    retired_ingest_ = 0;
    for (Counters* c : live_) {
      c->payload.store(0, std::memory_order_relaxed);
      c->ingest.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct Handle {
    Counters counters;
    Handle() { instance().register_(&counters); }
    ~Handle() { instance().retire_(&counters); }
  };

  void register_(Counters* c) {
    const std::lock_guard<std::mutex> lk(mu_);
    live_.push_back(c);
  }

  void retire_(Counters* c) {
    const std::lock_guard<std::mutex> lk(mu_);
    retired_payload_ += c->payload.load(std::memory_order_relaxed);
    retired_ingest_ += c->ingest.load(std::memory_order_relaxed);
    live_.erase(std::find(live_.begin(), live_.end(), c));
  }

  std::mutex mu_;
  std::vector<Counters*> live_;
  std::uint64_t retired_payload_ = 0;
  std::uint64_t retired_ingest_ = 0;
};

/// Aggregated copy counters. get() returns a value snapshot (call sites
/// read fields off the result exactly as they did when this was a plain
/// process-global struct).
struct CopyStats {
  std::uint64_t payload_copy_bytes = 0;
  std::uint64_t ingest_bytes = 0;

  static CopyStats get() {
    CopyStats out;
    CopyLedger::instance().snapshot(&out.payload_copy_bytes,
                                    &out.ingest_bytes);
    return out;
  }
  static void reset() { CopyLedger::instance().reset(); }
};

inline void count_payload_copy(std::size_t n) {
  CopyLedger::instance().local().payload.fetch_add(n,
                                                   std::memory_order_relaxed);
}
inline void count_ingest(std::size_t n) {
  CopyLedger::instance().local().ingest.fetch_add(n,
                                                  std::memory_order_relaxed);
}

class Buffer {
  struct Block;  // refcount + recycled byte vector; defined below

 public:
  Buffer() noexcept = default;

  /// Adopts the vector's storage (no copy).
  Buffer(std::vector<std::byte>&& bytes)  // NOLINT(runtime/explicit)
      : b_(acquire_()) {
    b_->bytes = std::move(bytes);
  }

  Buffer(const Buffer& other) noexcept : b_(other.b_) {
    check_shard_(b_);
    if (b_ != nullptr) ++b_->refs;
  }
  Buffer(Buffer&& other) noexcept : b_(std::exchange(other.b_, nullptr)) {}

  Buffer& operator=(const Buffer& other) noexcept {
    if (this != &other) {
      check_shard_(other.b_);
      release_(b_);
      b_ = other.b_;
      if (b_ != nullptr) ++b_->refs;
    }
    return *this;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release_(b_);
      b_ = std::exchange(other.b_, nullptr);
    }
    return *this;
  }
  Buffer& operator=(std::vector<std::byte>&& bytes) {
    release_(b_);
    b_ = acquire_();
    b_->bytes = std::move(bytes);
    return *this;
  }

  /// Copies `src` into a fresh owned block. This is the MPI-boundary
  /// ingest copy (user buffer -> immutable Buffer), counted separately
  /// from data-path payload copies.
  static Buffer copy_of(std::span<const std::byte> src) {
    Buffer out;
    if (!src.empty()) {
      out.b_ = acquire_();
      out.b_->bytes.assign(src.begin(), src.end());
      count_ingest(src.size());
    }
    return out;
  }

  ~Buffer() { release_(b_); }

  std::size_t size() const noexcept {
    return b_ == nullptr ? 0 : b_->bytes.size();
  }
  bool empty() const noexcept { return size() == 0; }
  const std::byte* data() const noexcept {
    return b_ == nullptr ? nullptr : b_->bytes.data();
  }
  const std::byte* begin() const noexcept { return data(); }
  const std::byte* end() const noexcept { return data() + size(); }
  const std::byte& operator[](std::size_t i) const { return b_->bytes[i]; }

  std::span<const std::byte> span() const noexcept {
    return {data(), size()};
  }
  operator std::span<const std::byte>() const noexcept {  // NOLINT
    return span();
  }

  /// Write access for in-place damage (the fault pipeline's bit flip).
  /// Copy-on-write: a shared block is cloned first, so other packets
  /// holding the same bytes keep the pristine original.
  std::byte* mutable_data() {
    unshare_();
    return b_->bytes.data();
  }

  /// Prepares this buffer to cross a shard boundary: guarantees sole
  /// ownership of the block (cloning it if the trace recorder, a duplicate
  /// packet or any other holder still references it), so the non-atomic
  /// refcount is touched by exactly one thread at a time for the rest of
  /// the block's life. The clone is handoff infrastructure, not a datapath
  /// copy, so it is NOT counted against the CopyStats budget (cross-shard
  /// packets are almost always sole owners already: the clone only fires
  /// when a link-level duplicate or in-flight trace share is crossing).
  /// Pair with adopt_after_handoff() on the receiving shard.
  void detach_for_handoff() {
    if (b_ == nullptr) return;
    if (b_->refs != 1) {
      Block* fresh = acquire_();
      fresh->bytes = b_->bytes;
      --b_->refs;  // old block stays with its same-shard co-owners
      b_ = fresh;
    }
#ifndef NDEBUG
    b_->owner = sim::kShardInTransit;
#endif
  }

  /// Adopts a buffer that arrived over a cross-shard channel: the current
  /// thread's shard becomes the block's owner.
  void adopt_after_handoff() noexcept {
#ifndef NDEBUG
    if (b_ != nullptr) {
      assert(b_->refs == 1 && b_->owner == sim::kShardInTransit &&
             "adopt_after_handoff on a buffer that was not handed off");
      b_->owner = sim::current_shard();
    }
#endif
  }

  /// Grows or shrinks to `n` bytes (new bytes zeroed), copy-on-write.
  void resize(std::size_t n) {
    if (b_ == nullptr) {
      b_ = acquire_();
    } else {
      unshare_();
    }
    b_->bytes.resize(n);
  }

  bool operator==(const Buffer& other) const {
    return b_ == other.b_ ||
           (span().size() == other.span().size() &&
            std::equal(begin(), end(), other.begin()));
  }
  bool operator==(const std::vector<std::byte>& v) const {
    return size() == v.size() && std::equal(begin(), end(), v.begin());
  }

  /// Encode-into target: hands out a pooled vector for ByteWriter-style
  /// serialization, then seals it into a Buffer without copying.
  class Builder {
   public:
    Builder() : b_(acquire_()) {}
    Builder(const Builder&) = delete;
    Builder& operator=(const Builder&) = delete;
    ~Builder() { release_(b_); }

    std::vector<std::byte>& bytes() { return b_->bytes; }
    std::size_t size() const { return b_->bytes.size(); }

    /// Scatter-gather encode: appends raw header bytes (uncounted — header
    /// bytes are written exactly once by construction).
    void append(std::span<const std::byte> src) {
      b_->bytes.insert(b_->bytes.end(), src.begin(), src.end());
    }

    /// Scatter-gather encode: appends a payload slice from another Buffer.
    /// This is the single allowed send-side payload copy (body bytes land
    /// in the wire image exactly once, at MTU boundaries), so it is
    /// counted against the copy budget.
    void append(const Buffer& src, std::size_t off, std::size_t len) {
      const std::byte* p = src.data() + off;
      b_->bytes.insert(b_->bytes.end(), p, p + len);
      count_payload_copy(len);
    }

    Buffer finish() && {
      Buffer out;
      out.b_ = std::exchange(b_, nullptr);
      return out;
    }

   private:
    Block* b_;
  };

 private:
  struct Block {
    std::uint32_t refs = 1;
#ifndef NDEBUG
    // Owning shard (sim::current_shard() at acquire), sim::kShardInTransit
    // while crossing shards, sim::kUnsharded on non-shard threads. Debug
    // builds assert that refcount traffic stays on the owning shard.
    int owner = sim::kUnsharded;
#endif
    std::vector<std::byte> bytes;
  };

  /// Debug check: refcount traffic on a block must come from its owning
  /// shard (or from unsharded threads, e.g. tests inspecting results).
  static void check_shard_(const Block* b) noexcept {
#ifndef NDEBUG
    if (b == nullptr) return;
    const int cur = sim::current_shard();
    assert((b->owner < 0 || cur < 0 || b->owner == cur) &&
           "net::Buffer block touched from a foreign shard outside the "
           "cross-shard handoff path");
#else
    (void)b;
#endif
  }

  static constexpr std::size_t kPoolCap = 1024;

  static std::vector<Block*>& pool_() {
    // Owns the recycled blocks so thread exit frees them (keeps the pool
    // invisible to leak checkers).
    struct Pool {
      std::vector<Block*> blocks;
      ~Pool() {
        for (Block* b : blocks) delete b;
      }
    };
    static thread_local Pool pool;
    return pool.blocks;
  }

  static Block* acquire_() {
    auto& pool = pool_();
    Block* b;
    if (!pool.empty()) {
      b = pool.back();
      pool.pop_back();
      b->refs = 1;
    } else {
      b = new Block;
    }
#ifndef NDEBUG
    b->owner = sim::current_shard();
#endif
    return b;
  }

  static void release_(Block* b) noexcept {
    check_shard_(b);
    if (b == nullptr || --b->refs != 0) return;
    auto& pool = pool_();
    if (pool.size() < kPoolCap) {
      b->bytes.clear();  // keeps capacity: recycled blocks don't regrow
      pool.push_back(b);
    } else {
      delete b;
    }
  }

  void unshare_() {
    check_shard_(b_);
    if (b_->refs == 1) return;
    Block* fresh = acquire_();
    fresh->bytes = b_->bytes;
    --b_->refs;  // > 1, so the old block stays alive for its other holders
    b_ = fresh;
  }

  Block* b_ = nullptr;
};

}  // namespace sctpmpi::net
