// Ref-counted immutable byte buffer: the payload type of net::Packet.
//
// A packet's serialized bytes are written once (at the sending transport
// stack) and then only read — by links, switches, the trace recorder, and
// the receiving stack. Buffer makes every Packet copy a refcount bump
// instead of a payload memcpy: link-level duplication, trace capture, and
// fan-out forwarding all share one block. The single writer after encode is
// the fault pipeline's bit-flip, which goes through mutable_data() and gets
// copy-on-write, so a corrupted duplicate never damages the shared original.
//
// Blocks are recycled through a thread-local freelist: steady-state packet
// churn allocates nothing, and recycled vectors keep their capacity so even
// Builder encodes stop growing after warm-up. The refcount is deliberately
// NOT atomic: a Simulator and every object inside it live on one thread
// (parallel bench trials run disjoint simulations), so buffers must never
// be shared across threads.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace sctpmpi::net {

/// Copy-discipline instrumentation. `payload_copy_bytes` counts data-path
/// memcpys of message payload: the wire-encode append on the send side and
/// the queue/chain -> user-buffer copy on the receive side. `ingest_bytes`
/// counts the user-span -> owned Buffer copy at the MPI boundary, which
/// MPI buffer-reuse semantics require and which therefore sits outside the
/// <=1-copy-per-direction budget. Always on (not debug-gated): the
/// datapath benches self-check their copy counts in release builds.
/// Process-global rather than thread-local: simulated rank processes run
/// on their own OS threads (strictly sequential handoff, same argument as
/// the non-atomic Buffer refcounts), and the budget spans all of them.
struct CopyStats {
  std::uint64_t payload_copy_bytes = 0;
  std::uint64_t ingest_bytes = 0;

  static CopyStats& get() {
    static CopyStats stats;
    return stats;
  }
  static void reset() { get() = CopyStats{}; }
};

inline void count_payload_copy(std::size_t n) {
  CopyStats::get().payload_copy_bytes += n;
}
inline void count_ingest(std::size_t n) { CopyStats::get().ingest_bytes += n; }

class Buffer {
  struct Block;  // refcount + recycled byte vector; defined below

 public:
  Buffer() noexcept = default;

  /// Adopts the vector's storage (no copy).
  Buffer(std::vector<std::byte>&& bytes)  // NOLINT(runtime/explicit)
      : b_(acquire_()) {
    b_->bytes = std::move(bytes);
  }

  Buffer(const Buffer& other) noexcept : b_(other.b_) {
    if (b_ != nullptr) ++b_->refs;
  }
  Buffer(Buffer&& other) noexcept : b_(std::exchange(other.b_, nullptr)) {}

  Buffer& operator=(const Buffer& other) noexcept {
    if (this != &other) {
      release_(b_);
      b_ = other.b_;
      if (b_ != nullptr) ++b_->refs;
    }
    return *this;
  }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) {
      release_(b_);
      b_ = std::exchange(other.b_, nullptr);
    }
    return *this;
  }
  Buffer& operator=(std::vector<std::byte>&& bytes) {
    release_(b_);
    b_ = acquire_();
    b_->bytes = std::move(bytes);
    return *this;
  }

  /// Copies `src` into a fresh owned block. This is the MPI-boundary
  /// ingest copy (user buffer -> immutable Buffer), counted separately
  /// from data-path payload copies.
  static Buffer copy_of(std::span<const std::byte> src) {
    Buffer out;
    if (!src.empty()) {
      out.b_ = acquire_();
      out.b_->bytes.assign(src.begin(), src.end());
      count_ingest(src.size());
    }
    return out;
  }

  ~Buffer() { release_(b_); }

  std::size_t size() const noexcept {
    return b_ == nullptr ? 0 : b_->bytes.size();
  }
  bool empty() const noexcept { return size() == 0; }
  const std::byte* data() const noexcept {
    return b_ == nullptr ? nullptr : b_->bytes.data();
  }
  const std::byte* begin() const noexcept { return data(); }
  const std::byte* end() const noexcept { return data() + size(); }
  const std::byte& operator[](std::size_t i) const { return b_->bytes[i]; }

  std::span<const std::byte> span() const noexcept {
    return {data(), size()};
  }
  operator std::span<const std::byte>() const noexcept {  // NOLINT
    return span();
  }

  /// Write access for in-place damage (the fault pipeline's bit flip).
  /// Copy-on-write: a shared block is cloned first, so other packets
  /// holding the same bytes keep the pristine original.
  std::byte* mutable_data() {
    unshare_();
    return b_->bytes.data();
  }

  /// Grows or shrinks to `n` bytes (new bytes zeroed), copy-on-write.
  void resize(std::size_t n) {
    if (b_ == nullptr) {
      b_ = acquire_();
    } else {
      unshare_();
    }
    b_->bytes.resize(n);
  }

  bool operator==(const Buffer& other) const {
    return b_ == other.b_ ||
           (span().size() == other.span().size() &&
            std::equal(begin(), end(), other.begin()));
  }
  bool operator==(const std::vector<std::byte>& v) const {
    return size() == v.size() && std::equal(begin(), end(), v.begin());
  }

  /// Encode-into target: hands out a pooled vector for ByteWriter-style
  /// serialization, then seals it into a Buffer without copying.
  class Builder {
   public:
    Builder() : b_(acquire_()) {}
    Builder(const Builder&) = delete;
    Builder& operator=(const Builder&) = delete;
    ~Builder() { release_(b_); }

    std::vector<std::byte>& bytes() { return b_->bytes; }
    std::size_t size() const { return b_->bytes.size(); }

    /// Scatter-gather encode: appends raw header bytes (uncounted — header
    /// bytes are written exactly once by construction).
    void append(std::span<const std::byte> src) {
      b_->bytes.insert(b_->bytes.end(), src.begin(), src.end());
    }

    /// Scatter-gather encode: appends a payload slice from another Buffer.
    /// This is the single allowed send-side payload copy (body bytes land
    /// in the wire image exactly once, at MTU boundaries), so it is
    /// counted against the copy budget.
    void append(const Buffer& src, std::size_t off, std::size_t len) {
      const std::byte* p = src.data() + off;
      b_->bytes.insert(b_->bytes.end(), p, p + len);
      count_payload_copy(len);
    }

    Buffer finish() && {
      Buffer out;
      out.b_ = std::exchange(b_, nullptr);
      return out;
    }

   private:
    Block* b_;
  };

 private:
  struct Block {
    std::uint32_t refs = 1;
    std::vector<std::byte> bytes;
  };

  static constexpr std::size_t kPoolCap = 1024;

  static std::vector<Block*>& pool_() {
    // Owns the recycled blocks so thread exit frees them (keeps the pool
    // invisible to leak checkers).
    struct Pool {
      std::vector<Block*> blocks;
      ~Pool() {
        for (Block* b : blocks) delete b;
      }
    };
    static thread_local Pool pool;
    return pool.blocks;
  }

  static Block* acquire_() {
    auto& pool = pool_();
    if (!pool.empty()) {
      Block* b = pool.back();
      pool.pop_back();
      b->refs = 1;
      return b;
    }
    return new Block;
  }

  static void release_(Block* b) noexcept {
    if (b == nullptr || --b->refs != 0) return;
    auto& pool = pool_();
    if (pool.size() < kPoolCap) {
      b->bytes.clear();  // keeps capacity: recycled blocks don't regrow
      pool.push_back(b);
    } else {
      delete b;
    }
  }

  void unshare_() {
    if (b_->refs == 1) return;
    Block* fresh = acquire_();
    fresh->bytes = b_->bytes;
    --b_->refs;  // > 1, so the old block stays alive for its other holders
    b_ = fresh;
  }

  Block* b_ = nullptr;
};

}  // namespace sctpmpi::net
