#include "net/cluster.hpp"

#include <string>

namespace sctpmpi::net {

Cluster::Cluster(sim::Simulator& sim, sim::Rng rng,
                 const ClusterParams& params)
    : params_(params) {
  hosts_.reserve(params.hosts);
  for (unsigned h = 0; h < params.hosts; ++h) {
    hosts_.push_back(std::make_unique<Host>(sim, h, params.costs));
  }
  subnet_links_.resize(params.interfaces);
  up_.assign(params.hosts, std::vector<Link*>(params.interfaces, nullptr));
  down_.assign(params.hosts, std::vector<Link*>(params.interfaces, nullptr));
  for (unsigned s = 0; s < params.interfaces; ++s) {
    switches_.push_back(std::make_unique<Switch>());
    Switch* sw = switches_.back().get();
    for (unsigned h = 0; h < params.hosts; ++h) {
      const IpAddr a = make_addr(s, h);
      // Host -> switch link.
      links_.push_back(std::make_unique<Link>(
          sim, params.link, rng.fork((s * 1000ull + h) * 2)));
      Link* up = links_.back().get();
      up->set_sink([sw](Packet&& p) { sw->forward(std::move(p)); });
      // Switch -> host link. Dummynet-style random loss is applied once
      // per end-to-end path (on the uplink); the downlink only models
      // rate/queueing so a configured loss rate is the per-packet rate,
      // not its square.
      LinkParams down_params = params.link;
      down_params.loss = 0.0;
      links_.push_back(std::make_unique<Link>(
          sim, down_params, rng.fork((s * 1000ull + h) * 2 + 1)));
      Link* down = links_.back().get();
      Host* host = hosts_[h].get();
      down->set_sink([host](Packet&& p) { host->deliver(std::move(p)); });

      const std::string suffix =
          std::to_string(h) + "." + std::to_string(s);
      up->set_trace_label("up" + suffix);
      down->set_trace_label("dn" + suffix);

      host->add_interface(a, up);
      sw->add_route(a, down);
      subnet_links_[s].push_back(up);
      subnet_links_[s].push_back(down);
      up_[h][s] = up;
      down_[h][s] = down;
    }
  }
}

void Cluster::set_loss(double p) {
  // Per-path semantics: loss lives on the uplinks only (see constructor).
  for (auto& host_links : up_) {
    for (Link* l : host_links) l->set_loss(p);
  }
}

void Cluster::set_subnet_loss(unsigned subnet, double p) {
  for (Link* l : subnet_links_.at(subnet)) l->set_loss(p);
}

void Cluster::set_observer(PacketObserver* obs) {
  for (auto& l : links_) l->set_observer(obs);
  for (auto& h : hosts_) h->set_observer(obs);
}

LinkStats Cluster::total_link_stats() const {
  LinkStats total;
  for (const auto& l : links_) {
    const LinkStats& s = l->stats();
    total.tx_packets += s.tx_packets;
    total.tx_bytes += s.tx_bytes;
    total.drops_loss += s.drops_loss;
    total.drops_queue += s.drops_queue;
  }
  return total;
}

}  // namespace sctpmpi::net
