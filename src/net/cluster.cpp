#include "net/cluster.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace sctpmpi::net {

Cluster::Cluster(sim::Simulator& sim, sim::Rng rng,
                 const ClusterParams& params)
    : params_(params), single_sim_(&sim) {
  resolve_placement_();
  if (params_.topology == TopologyKind::kFatTree) {
    build_fattree_(rng);
  } else {
    build_flat_(rng);
  }
}

Cluster::Cluster(sim::ShardGroup& group, sim::Rng rng,
                 const ClusterParams& params)
    : params_(params), group_(&group) {
  if (group.count() > 1) {
    lookahead_matrix_.assign(
        group.count(),
        std::vector<sim::SimTime>(group.count(), sim::ShardGroup::kNoEvent));
  }
  resolve_placement_();
  if (params_.topology == TopologyKind::kFatTree) {
    build_fattree_(rng);
  } else {
    build_flat_(rng);
  }
}

void Cluster::resolve_placement_() {
  const unsigned shards = shard_count();
  if (!params_.placement.empty()) {
    if (params_.placement.size() != params_.hosts) {
      throw std::invalid_argument(
          "Cluster: placement size != host count");
    }
    for (const unsigned s : params_.placement) {
      if (s >= shards) {
        throw std::invalid_argument("Cluster: placement names bad shard");
      }
    }
    shard_of_ = params_.placement;
    return;
  }
  // Contiguous blocks: neighbours share a shard, so in structured
  // topologies (pods, ToR groups) the cut edges land on the upper tiers.
  shard_of_.resize(params_.hosts);
  for (unsigned h = 0; h < params_.hosts; ++h) {
    shard_of_[h] = static_cast<unsigned>(
        static_cast<std::uint64_t>(h) * shards / params_.hosts);
  }
}

Link* Cluster::make_link_(unsigned src_shard, unsigned dst_shard,
                          const LinkParams& lp, sim::Rng rng) {
  links_.push_back(
      std::make_unique<Link>(shard_sim_(src_shard), lp, std::move(rng)));
  Link* l = links_.back().get();
  if (src_shard != dst_shard) {
    l->set_cross_shard(&group_->channel(src_shard, dst_shard));
    lookahead_ = std::min(lookahead_, lp.delay);
    auto& cell = lookahead_matrix_[src_shard][dst_shard];
    cell = std::min(cell, lp.delay);
  }
  return l;
}

// ---- flat (paper testbed) build ------------------------------------------
//
// Build order and rng.fork stream ids are frozen: golden traces depend on
// per-link RNG streams, and the single-shard build must stay byte-identical
// to the original single-simulator constructor.

void Cluster::build_flat_(sim::Rng& rng) {
  hosts_.reserve(params_.hosts);
  for (unsigned h = 0; h < params_.hosts; ++h) {
    hosts_.push_back(std::make_unique<Host>(shard_sim_(shard_of_[h]), h,
                                            params_.costs));
  }
  subnet_links_.resize(params_.interfaces);
  up_.assign(params_.hosts,
             std::vector<Link*>(params_.interfaces, nullptr));
  down_.assign(params_.hosts,
               std::vector<Link*>(params_.interfaces, nullptr));
  // Subnet switches live on shard 0: the flat topology has no structure to
  // co-locate them with, and single-shard builds (the golden path) make
  // every link same-shard anyway.
  const unsigned sw_shard = 0;
  for (unsigned s = 0; s < params_.interfaces; ++s) {
    switches_.push_back(std::make_unique<Switch>());
    Switch* sw = switches_.back().get();
    for (unsigned h = 0; h < params_.hosts; ++h) {
      const IpAddr a = make_addr(s, h);
      // Host -> switch link.
      Link* up = make_link_(shard_of_[h], sw_shard, params_.link,
                            rng.fork((s * 1000ull + h) * 2));
      up->set_sink([sw](Packet&& p) { sw->forward(std::move(p)); });
      // Switch -> host link. Dummynet-style random loss is applied once
      // per end-to-end path (on the uplink); the downlink only models
      // rate/queueing so a configured loss rate is the per-packet rate,
      // not its square.
      LinkParams down_params = params_.link;
      down_params.loss = 0.0;
      Link* down = make_link_(sw_shard, shard_of_[h], down_params,
                              rng.fork((s * 1000ull + h) * 2 + 1));
      Host* host = hosts_[h].get();
      down->set_sink([host](Packet&& p) { host->deliver(std::move(p)); });

      const std::string suffix =
          std::to_string(h) + "." + std::to_string(s);
      up->set_trace_label("up" + suffix);
      down->set_trace_label("dn" + suffix);

      host->add_interface(a, up);
      sw->add_route(a, down);
      subnet_links_[s].push_back(up);
      subnet_links_[s].push_back(down);
      up_[h][s] = up;
      down_[h][s] = down;
    }
  }
}

// ---- k-ary fat-tree / Clos build -----------------------------------------

void Cluster::build_fattree_(sim::Rng& rng) {
  const unsigned k = params_.fattree.k;
  if (k < 2 || k % 2 != 0) {
    throw std::invalid_argument("fat-tree: k must be even and >= 2");
  }
  const unsigned half = k / 2;
  const unsigned hosts_per_pod = half * half;
  const unsigned want_hosts = k * hosts_per_pod;  // k^3/4
  if (params_.hosts != want_hosts) {
    throw std::invalid_argument(
        "fat-tree: hosts must equal k^3/4 (k=" + std::to_string(k) +
        " => " + std::to_string(want_hosts) + ")");
  }
  if (params_.interfaces != 1) {
    throw std::invalid_argument("fat-tree: hosts are single-homed");
  }

  hosts_.reserve(params_.hosts);
  for (unsigned h = 0; h < params_.hosts; ++h) {
    hosts_.push_back(std::make_unique<Host>(shard_sim_(shard_of_[h]), h,
                                            params_.costs));
  }
  subnet_links_.resize(1);
  up_.assign(params_.hosts, std::vector<Link*>(1, nullptr));
  down_.assign(params_.hosts, std::vector<Link*>(1, nullptr));

  // Switch co-location: a ToR lives with its first host, an aggregation
  // switch with its pod's first host, core switch c on shard c % shards.
  // With the default contiguous placement and shards <= pods this makes
  // every intra-pod link same-shard; only agg<->core links cross.
  const auto tor_shard = [&](unsigned p, unsigned e) {
    return shard_of_[p * hosts_per_pod + e * half];
  };
  const auto agg_shard = [&](unsigned p) {
    return shard_of_[p * hosts_per_pod];
  };
  const unsigned shards = shard_count();

  // RNG streams: a fresh, collision-free index space (flat build owns
  // (s*1000+h)*2 and +1). Stream ids are assigned in build order, which is
  // fixed, so every link's loss stream is reproducible.
  std::uint64_t stream = 1ull << 32;
  const auto next_stream = [&stream] { return stream++; };

  std::vector<std::vector<Switch*>> tor(k), agg(k);
  std::vector<Switch*> core;

  // Edge tier: ToR switches and host edge links.
  for (unsigned p = 0; p < k; ++p) {
    tor[p].resize(half);
    for (unsigned e = 0; e < half; ++e) {
      switches_.push_back(std::make_unique<Switch>());
      Switch* sw = switches_.back().get();
      tor[p][e] = sw;
      const unsigned ts = tor_shard(p, e);
      for (unsigned i = 0; i < half; ++i) {
        const unsigned h = p * hosts_per_pod + e * half + i;
        const IpAddr a = make_addr(0, h);
        Link* up = make_link_(shard_of_[h], ts, params_.link,
                              rng.fork(next_stream()));
        up->set_sink([sw](Packet&& pk) { sw->forward(std::move(pk)); });
        LinkParams down_params = params_.link;
        down_params.loss = 0.0;
        Link* down = make_link_(ts, shard_of_[h], down_params,
                                rng.fork(next_stream()));
        Host* host = hosts_[h].get();
        down->set_sink([host](Packet&& pk) { host->deliver(std::move(pk)); });
        const std::string suffix = std::to_string(h) + ".0";
        up->set_trace_label("up" + suffix);
        down->set_trace_label("dn" + suffix);
        host->add_interface(a, up);
        sw->add_route(a, down);
        subnet_links_[0].push_back(up);
        subnet_links_[0].push_back(down);
        up_[h][0] = up;
        down_[h][0] = down;
      }
    }
  }

  // Aggregation tier: agg switches, ToR<->agg links, ECMP up from ToRs,
  // exact pod-host routes down from aggs.
  for (unsigned p = 0; p < k; ++p) {
    agg[p].resize(half);
    for (unsigned a = 0; a < half; ++a) {
      switches_.push_back(std::make_unique<Switch>());
      agg[p][a] = switches_.back().get();
    }
    for (unsigned e = 0; e < half; ++e) {
      for (unsigned a = 0; a < half; ++a) {
        Switch* te = tor[p][e];
        Switch* ag = agg[p][a];
        Link* ta = make_link_(tor_shard(p, e), agg_shard(p),
                              params_.fattree.aggr_link,
                              rng.fork(next_stream()));
        ta->set_sink([ag](Packet&& pk) { ag->forward(std::move(pk)); });
        ta->set_trace_label("ta" + std::to_string(p) + "." +
                            std::to_string(e) + "." + std::to_string(a));
        te->add_ecmp_uplink(ta);
        Link* at = make_link_(agg_shard(p), tor_shard(p, e),
                              params_.fattree.aggr_link,
                              rng.fork(next_stream()));
        at->set_sink([te](Packet&& pk) { te->forward(std::move(pk)); });
        at->set_trace_label("at" + std::to_string(p) + "." +
                            std::to_string(a) + "." + std::to_string(e));
        // Downward exact routes: every host under ToR e goes via this link.
        for (unsigned i = 0; i < half; ++i) {
          const unsigned h = p * hosts_per_pod + e * half + i;
          ag->add_route(make_addr(0, h), at);
        }
      }
    }
  }

  // Core tier: (k/2)^2 core switches; core c = a*half + j links to
  // aggregation switch a of every pod.
  core.resize(half * half);
  for (unsigned c = 0; c < half * half; ++c) {
    switches_.push_back(std::make_unique<Switch>());
    core[c] = switches_.back().get();
  }
  for (unsigned p = 0; p < k; ++p) {
    for (unsigned a = 0; a < half; ++a) {
      Switch* ag = agg[p][a];
      for (unsigned j = 0; j < half; ++j) {
        const unsigned c = a * half + j;
        Switch* co = core[c];
        const unsigned cs = c % shards;
        Link* ac = make_link_(agg_shard(p), cs, params_.fattree.core_link,
                              rng.fork(next_stream()));
        ac->set_sink([co](Packet&& pk) { co->forward(std::move(pk)); });
        ac->set_trace_label("ac" + std::to_string(p) + "." +
                            std::to_string(a) + "." + std::to_string(j));
        ag->add_ecmp_uplink(ac);
        Link* ca = make_link_(cs, agg_shard(p), params_.fattree.core_link,
                              rng.fork(next_stream()));
        ca->set_sink([ag](Packet&& pk) { ag->forward(std::move(pk)); });
        ca->set_trace_label("ca" + std::to_string(c) + "." +
                            std::to_string(p));
        // Downward exact routes: every host of pod p goes via this link.
        for (unsigned h = p * hosts_per_pod; h < (p + 1) * hosts_per_pod;
             ++h) {
          co->add_route(make_addr(0, h), ca);
        }
      }
    }
  }
}

LoadProfile& Cluster::enable_load_profile() {
  if (shard_count() > 1) {
    throw std::logic_error(
        "Cluster: load profiling is single-shard only (measure on a "
        "1-shard warmup world)");
  }
  if (profile_ == nullptr) {
    profile_ = std::make_unique<LoadProfile>(host_count());
    for (auto& h : hosts_) h->set_load_profile(profile_.get());
  }
  return *profile_;
}

std::vector<std::vector<unsigned>> Cluster::placement_groups() const {
  std::vector<std::vector<unsigned>> groups;
  if (params_.topology == TopologyKind::kFatTree) {
    const unsigned half = params_.fattree.k / 2;
    for (unsigned first = 0; first < params_.hosts; first += half) {
      std::vector<unsigned> g;
      g.reserve(half);
      for (unsigned i = 0; i < half; ++i) g.push_back(first + i);
      groups.push_back(std::move(g));
    }
  } else {
    groups.reserve(params_.hosts);
    for (unsigned h = 0; h < params_.hosts; ++h) groups.push_back({h});
  }
  return groups;
}

void Cluster::add_service_route(IpAddr vip, unsigned host) {
  const Host& h = *hosts_.at(host);
  for (auto& sw : switches_) {
    for (std::size_t i = 0; i < h.interface_count(); ++i) {
      if (Link* out = sw->route_for(h.addr(i))) {
        sw->add_route(vip, out);
        break;
      }
    }
  }
}

void Cluster::set_loss(double p) {
  // Per-path semantics: loss lives on the host uplinks only (see the
  // builders); tier links never drop randomly.
  for (auto& host_links : up_) {
    for (Link* l : host_links) l->set_loss(p);
  }
}

void Cluster::set_subnet_loss(unsigned subnet, double p) {
  for (Link* l : subnet_links_.at(subnet)) l->set_loss(p);
}

void Cluster::set_observer(PacketObserver* obs) {
  for (auto& l : links_) l->set_observer(obs);
  for (auto& h : hosts_) h->set_observer(obs);
}

LinkStats Cluster::total_link_stats() const {
  LinkStats total;
  for (const auto& l : links_) {
    const LinkStats& s = l->stats();
    total.tx_packets += s.tx_packets;
    total.tx_bytes += s.tx_bytes;
    total.drops_loss += s.drops_loss;
    total.drops_queue += s.drops_queue;
  }
  return total;
}

std::uint64_t Cluster::total_unroutable() const {
  std::uint64_t total = 0;
  for (const auto& sw : switches_) total += sw->unroutable();
  return total;
}

}  // namespace sctpmpi::net
