// Big-endian wire codec helpers shared by the TCP and SCTP codecs.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace sctpmpi::net {

namespace detail {
// std::byteswap stand-in (not in this libstdc++ yet).
inline std::uint16_t bswap(std::uint16_t v) { return __builtin_bswap16(v); }
inline std::uint32_t bswap(std::uint32_t v) { return __builtin_bswap32(v); }
inline std::uint64_t bswap(std::uint64_t v) { return __builtin_bswap64(v); }
}  // namespace detail

/// Appends big-endian integers and raw bytes to a growing buffer.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::byte>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { put_(v); }
  void u32(std::uint32_t v) { put_(v); }
  void u64(std::uint64_t v) { put_(v); }
  void bytes(std::span<const std::byte> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }
  void zeros(std::size_t n) { out_.resize(out_.size() + n); }
  std::size_t size() const { return out_.size(); }

  /// Overwrites a previously written 16/32-bit field (e.g. a length filled
  /// in after the chunk body is known).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_.at(offset) = static_cast<std::byte>(v >> 8);
    out_.at(offset + 1) = static_cast<std::byte>(v);
  }
  void patch_u32(std::size_t offset, std::uint32_t v) {
    patch_u16(offset, static_cast<std::uint16_t>(v >> 16));
    patch_u16(offset + 2, static_cast<std::uint16_t>(v));
  }

 private:
  // One insert (single capacity check) per field instead of one per byte.
  template <typename T>
  void put_(T v) {
    if constexpr (std::endian::native == std::endian::little) {
      v = detail::bswap(v);
    }
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    out_.insert(out_.end(), p, p + sizeof(T));
  }

  std::vector<std::byte>& out_;
};

/// Thrown on malformed wire input.
struct DecodeError : std::runtime_error {
  explicit DecodeError(const char* what) : std::runtime_error(what) {}
};

/// Reads big-endian integers and raw bytes from a buffer; throws
/// DecodeError on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> in) : in_(in) {}

  std::uint8_t u8() {
    need_(1);
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  std::uint16_t u16() { return rd_<std::uint16_t>(); }
  std::uint32_t u32() { return rd_<std::uint32_t>(); }
  std::uint64_t u64() { return rd_<std::uint64_t>(); }
  std::vector<std::byte> bytes(std::size_t n) {
    need_(n);
    std::vector<std::byte> out(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
                               in_.begin() +
                                   static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) {
    need_(n);
    pos_ += n;
  }
  std::size_t remaining() const { return in_.size() - pos_; }
  std::size_t position() const { return pos_; }

 private:
  void need_(std::size_t n) const {
    if (pos_ + n > in_.size()) throw DecodeError("wire buffer underrun");
  }
  // One bounds check + word load per field instead of one per byte.
  template <typename T>
  T rd_() {
    need_(sizeof(T));
    T v;
    std::memcpy(&v, in_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    if constexpr (std::endian::native == std::endian::little) {
      v = detail::bswap(v);
    }
    return v;
  }
  std::span<const std::byte> in_;
  std::size_t pos_ = 0;
};

/// Serial-number arithmetic mod 2^32 (RFC 1982) used for TCP sequence
/// numbers and SCTP TSNs.
constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
constexpr bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}
constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) { return seq_lt(b, a); }
constexpr bool seq_geq(std::uint32_t a, std::uint32_t b) {
  return seq_leq(b, a);
}
/// a - b in serial space (valid when the true distance fits in 31 bits).
constexpr std::int32_t seq_diff(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b);
}

/// Serial-number comparison mod 2^16 for SCTP stream sequence numbers.
constexpr bool ssn_lt(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b)) < 0;
}

}  // namespace sctpmpi::net
