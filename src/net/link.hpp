// Point-to-point unidirectional link with finite rate, propagation delay,
// a drop-tail output queue, and Dummynet-style loss injection at ingress.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "net/loss.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {

struct LinkParams {
  double rate_bps = 1e9;                   // 1 Gbit/s Ethernet
  sim::SimTime delay = 5 * sim::kMicrosecond;  // propagation + PHY
  std::size_t queue_packets = 256;         // drop-tail output queue depth
  double loss = 0.0;                       // Dummynet drop probability
};

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t drops_loss = 0;
  std::uint64_t drops_queue = 0;
};

class Link {
 public:
  using Sink = std::function<void(Packet&&)>;

  Link(sim::Simulator& sim, LinkParams params, sim::Rng loss_rng)
      : sim_(sim), params_(params), loss_(loss_rng, params.loss) {}

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_loss(double p) { loss_.set_probability(p); }

  /// Test hook: deterministic drop predicate evaluated per packet before
  /// the random loss model (returns true to drop). Used to force specific
  /// loss patterns (e.g. "drop the 7th data packet") in protocol tests.
  void set_drop_filter(std::function<bool(const Packet&)> f) {
    drop_filter_ = std::move(f);
  }
  const LinkStats& stats() const { return stats_; }
  const LinkParams& params() const { return params_; }

  /// Offers a packet to the link. Applies loss, then queues it for
  /// serialized transmission. Returns false if the packet was dropped.
  bool enqueue(Packet&& pkt);

 private:
  sim::SimTime serialization_time(std::size_t bytes) const {
    return static_cast<sim::SimTime>(
        static_cast<double>(bytes) * 8.0 / params_.rate_bps *
        static_cast<double>(sim::kSecond));
  }

  void start_transmission_();

  sim::Simulator& sim_;
  LinkParams params_;
  LossModel loss_;
  Sink sink_;
  std::function<bool(const Packet&)> drop_filter_;
  std::deque<Packet> queue_;
  bool transmitting_ = false;
  LinkStats stats_;
};

}  // namespace sctpmpi::net
