// Point-to-point unidirectional link with finite rate, propagation delay,
// a drop-tail output queue, and a composable fault pipeline at ingress
// (Dummynet-style Bernoulli loss, bursty loss, scripted drops, duplication,
// corruption, extra delay, black-outs — see net/fault.hpp).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/fault.hpp"
#include "net/observer.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {

struct LinkParams {
  double rate_bps = 1e9;                   // 1 Gbit/s Ethernet
  sim::SimTime delay = 5 * sim::kMicrosecond;  // propagation + PHY
  std::size_t queue_packets = 256;         // drop-tail output queue depth
  double loss = 0.0;                       // Dummynet drop probability
};

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t drops_loss = 0;
  std::uint64_t drops_queue = 0;
};

class Link {
 public:
  using Sink = std::function<void(Packet&&)>;

  Link(sim::Simulator& sim, LinkParams params, sim::Rng loss_rng)
      : sim_(sim), params_(params), faults_(sim, loss_rng, params.loss) {}

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_loss(double p) { faults_.set_loss(p); }

  /// The link's fault pipeline: scripted drops, duplication, reordering,
  /// corruption, bursty loss, black-outs. See net/fault.hpp.
  FaultInjector& faults() { return faults_; }

  /// Wire-level observation hook (tracing). The observer must outlive the
  /// link or be detached with nullptr.
  void set_observer(PacketObserver* obs) { observer_ = obs; }
  /// Names this link in observer events (e.g. "up0.0").
  void set_trace_label(std::string label) { label_ = std::move(label); }
  const std::string& trace_label() const { return label_; }

  const LinkStats& stats() const { return stats_; }
  const LinkParams& params() const { return params_; }

  /// Offers a packet to the link. Runs the fault pipeline, then queues it
  /// for serialized transmission. Returns false if the packet was dropped
  /// immediately (delayed packets count as accepted).
  bool enqueue(Packet&& pkt);

 private:
  sim::SimTime serialization_time(std::size_t bytes) const {
    return static_cast<sim::SimTime>(
        static_cast<double>(bytes) * 8.0 / params_.rate_bps *
        static_cast<double>(sim::kSecond));
  }

  bool accept_(Packet&& pkt);
  void start_transmission_();
  void notify_(const Packet& pkt, PacketVerdict v) {
    if (observer_ != nullptr) observer_->on_packet(sim_.now(), label_, pkt, v);
  }

  sim::Simulator& sim_;
  LinkParams params_;
  FaultInjector faults_;
  Sink sink_;
  PacketObserver* observer_ = nullptr;
  std::string label_;
  std::deque<Packet> queue_;
  bool transmitting_ = false;
  LinkStats stats_;
};

}  // namespace sctpmpi::net
