// Point-to-point unidirectional link with finite rate, propagation delay,
// a drop-tail output queue, and a composable fault pipeline at ingress
// (Dummynet-style Bernoulli loss, bursty loss, scripted drops, duplication,
// corruption, extra delay, black-outs — see net/fault.hpp).
//
// Datapath: accepted packets accumulate in an in-flight FIFO and the
// transmitter is driven by exactly two slim events per packet — one at end
// of serialization (departure), one at arrival — whose callbacks capture
// only the link pointer. Packets live in the FIFO until handed to the sink,
// never inside an event callback, so the per-packet closure allocation and
// double Packet move of the naive formulation disappear. The event schedule
// (timestamps AND scheduling order) is bit-for-bit the one the legacy
// event-per-packet code produced, which keeps golden traces byte-identical:
// same-nanosecond event ties resolve by scheduling order, so each delivery
// event must be allocated exactly at its packet's departure instant (see
// DESIGN.md "Event loop and timers" on why this can't be relaxed). Set
// SCTPMPI_UNBATCHED=1 to run the legacy two-closures-per-packet datapath;
// traces must match byte-for-byte either way.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "net/fault.hpp"
#include "net/observer.hpp"
#include "net/packet.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {

struct LinkParams {
  double rate_bps = 1e9;                   // 1 Gbit/s Ethernet
  sim::SimTime delay = 5 * sim::kMicrosecond;  // propagation + PHY
  std::size_t queue_packets = 256;         // drop-tail output queue depth
  double loss = 0.0;                       // Dummynet drop probability
};

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t drops_loss = 0;
  std::uint64_t drops_queue = 0;
};

class Link {
 public:
  using Sink = std::function<void(Packet&&)>;

  Link(sim::Simulator& sim, LinkParams params, sim::Rng loss_rng);

  void set_sink(Sink sink) { sink_ = std::move(sink); }
  void set_loss(double p) { faults_.set_loss(p); }

  /// The link's fault pipeline: scripted drops, duplication, reordering,
  /// corruption, bursty loss, black-outs. See net/fault.hpp.
  FaultInjector& faults() { return faults_; }

  /// Wire-level observation hook (tracing). The observer must outlive the
  /// link or be detached with nullptr.
  void set_observer(PacketObserver* obs) { observer_ = obs; }
  /// Names this link in observer events (e.g. "up0.0").
  void set_trace_label(std::string label) { label_ = std::move(label); }
  const std::string& trace_label() const { return label_; }

  const LinkStats& stats() const { return stats_; }
  const LinkParams& params() const { return params_; }

  /// Offers a packet to the link. Runs the fault pipeline, then queues it
  /// for serialized transmission. Returns false if the packet was dropped
  /// immediately (delayed packets count as accepted).
  bool enqueue(Packet&& pkt);

  /// Marks this link as crossing shards: the source shard keeps the fault
  /// pipeline, output queue and serialization stage, but at departure the
  /// packet is pushed into `ch` with its delivery time (now + delay)
  /// instead of scheduling a local arrival; the destination shard's ingest
  /// schedules the delivery into its own simulator. The link's propagation
  /// delay is the handoff latency that the group's conservative lookahead
  /// is derived from. Build-time wiring; forces the FIFO datapath.
  void set_cross_shard(sim::ShardGroup::Channel* ch) {
    cross_ = ch;
    unbatched_ = false;  // the legacy path cannot hand off across shards
  }
  bool cross_shard() const { return cross_ != nullptr; }

 private:
  sim::SimTime serialization_time(std::size_t bytes) const {
    return static_cast<sim::SimTime>(
        static_cast<double>(bytes) * 8.0 / params_.rate_bps *
        static_cast<double>(sim::kSecond));
  }

  bool accept_(Packet&& pkt);
  bool accept_fifo_(Packet&& pkt);
  bool accept_unbatched_(Packet&& pkt);
  /// Fires at the head packet's end of serialization: moves it from the
  /// transmit queue to the propagation stage and schedules its delivery.
  void on_departure_();
  /// Fires at the oldest in-flight packet's arrival: delivers it.
  void on_arrival_();
  /// Runs on the destination shard at the packet's delivery time.
  void deliver_cross_(sim::SimTime t, Packet&& pkt);
  void drop_queue_full_(const Packet& pkt, std::size_t occupancy);
  void start_transmission_();
  void notify_(const Packet& pkt, PacketVerdict v) {
    if (observer_ != nullptr) observer_->on_packet(sim_.now(), label_, pkt, v);
  }

  sim::Simulator& sim_;
  LinkParams params_;
  FaultInjector faults_;
  sim::ShardGroup::Channel* cross_ = nullptr;
  Sink sink_;
  PacketObserver* observer_ = nullptr;
  std::string label_;
  LinkStats stats_;

  // FIFO datapath: one deque holds every in-flight packet in order. The
  // first departed_ entries have left the transmitter and are propagating
  // (one pending arrival event each, FIFO); the rest await serialization.
  // Departure just advances the boundary — packets move only twice: in at
  // accept, out at delivery. Invariant: a departure event is pending iff
  // an undeparted packet exists (queue_.size() > departed_).
  std::deque<Packet> queue_;
  std::size_t departed_ = 0;

  bool transmitting_ = false;  // legacy datapath (SCTPMPI_UNBATCHED=1)
  bool unbatched_ = false;
};

}  // namespace sctpmpi::net
