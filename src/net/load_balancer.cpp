#include "net/load_balancer.hpp"

#include <algorithm>
#include <utility>

#include "net/bytes.hpp"

namespace sctpmpi::net {

namespace {

// Probe wire format (16 bytes): magic, backend id, sequence.
Buffer encode_probe(std::uint32_t magic, std::uint32_t id, std::uint64_t seq) {
  std::vector<std::byte> out;
  out.reserve(16);
  ByteWriter w(out);
  w.u32(magic);
  w.u32(id);
  w.u64(seq);
  return Buffer(std::move(out));
}

}  // namespace

LoadBalancer::LoadBalancer(Host& host, LoadBalancerParams params)
    : host_(host), params_(params), maglev_(params.maglev_size) {
  host_.register_protocol(IpProto::kTcp, this);
  host_.register_protocol(IpProto::kSctp, this);
  host_.register_protocol(IpProto::kUdp, this);
  sweep_timer_ = std::make_unique<sim::Timer>(host_.sim(), [this] {
    sweep_track_();
    sweep_timer_->arm(params_.track_sweep_period);
  });
}

LoadBalancer::~LoadBalancer() { stop(); }

void LoadBalancer::add_vip(IpAddr vip) { vips_.push_back(vip); }

int LoadBalancer::add_backend(std::vector<IpAddr> addrs, double weight) {
  const int id = static_cast<int>(backends_.size());
  auto b = std::make_unique<Backend>();
  b->addrs = std::move(addrs);
  b->weight = weight;
  b->probe_timer = std::make_unique<sim::Timer>(
      host_.sim(), [this, id] { send_probe_(id); });
  b->timeout_timer = std::make_unique<sim::Timer>(
      host_.sim(), [this, id] { on_probe_timeout_(id); });
  backends_.push_back(std::move(b));
  rebuild_();
  return id;
}

void LoadBalancer::drain_backend(int id) {
  Backend& b = *backends_.at(static_cast<std::size_t>(id));
  if (b.state != BackendState::kUp) return;
  b.state = BackendState::kDraining;
  rebuild_();
}

void LoadBalancer::restore_backend(int id) {
  Backend& b = *backends_.at(static_cast<std::size_t>(id));
  if (b.state == BackendState::kUp) return;
  b.state = BackendState::kUp;
  b.fails = 0;
  b.oks = 0;
  b.backoff = 0;
  rebuild_();
}

void LoadBalancer::remove_backend(int id) {
  Backend& b = *backends_.at(static_cast<std::size_t>(id));
  b.state = BackendState::kDown;
  b.probe_timer->cancel();
  b.timeout_timer->cancel();
  track_.erase_if([id](std::uint64_t, const TrackEntry& e) {
    return e.backend == id;
  });
  rebuild_();
}

void LoadBalancer::set_backend_weight(int id, double weight) {
  backends_.at(static_cast<std::size_t>(id))->weight = weight;
  rebuild_();
}

void LoadBalancer::start_probes(sim::SimTime initial_delay) {
  const std::size_t n = backends_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Deterministic stagger: spread the fleet's probes across one period.
    backends_[i]->probe_timer->arm(
        initial_delay +
        static_cast<sim::SimTime>(
            (static_cast<std::uint64_t>(params_.probe_period) * i) /
            std::max<std::size_t>(n, 1)));
  }
  sweep_timer_->arm(params_.track_sweep_period);
}

void LoadBalancer::stop() {
  if (sweep_timer_) sweep_timer_->cancel();
  for (auto& b : backends_) {
    b->probe_timer->cancel();
    b->timeout_timer->cancel();
  }
}

BackendState LoadBalancer::backend_state(int id) const {
  return backends_.at(static_cast<std::size_t>(id))->state;
}

std::size_t LoadBalancer::tracked_flows(int id) const {
  std::size_t n = 0;
  track_.for_each([&](std::uint64_t, const TrackEntry& e) {
    if (e.backend == id) ++n;
  });
  return n;
}

std::int32_t LoadBalancer::backend_of(std::uint16_t sport,
                                      std::uint16_t dport) const {
  const std::uint64_t key = track_key_(sport, dport);
  if (key != 0) {
    const TrackEntry e = track_.find(key, TrackEntry{});
    if (e.backend >= 0 &&
        backends_[static_cast<std::size_t>(e.backend)]->state !=
            BackendState::kDown) {
      return e.backend;
    }
  }
  return maglev_.lookup(key);
}

void LoadBalancer::on_ip_packet(Packet&& pkt) {
  if (pkt.proto == IpProto::kUdp) {
    on_probe_ack_(pkt);
    return;
  }
  if (!is_vip_(pkt.dst)) {
    ++stats_.non_vip_drops;
    return;
  }
  forward_(std::move(pkt));
}

bool LoadBalancer::is_vip_(IpAddr a) const {
  return std::find(vips_.begin(), vips_.end(), a) != vips_.end();
}

void LoadBalancer::rebuild_() {
  std::vector<MaglevBackend> mb;
  mb.reserve(backends_.size());
  for (std::size_t i = 0; i < backends_.size(); ++i) {
    const Backend& b = *backends_[i];
    // Identity stays i+1 across rebuilds so each backend keeps its
    // permutation — that is what makes disruption minimal. Draining and
    // down backends stay in the vector (table values are backend ids) but
    // claim nothing.
    mb.push_back(MaglevBackend{static_cast<std::uint64_t>(i) + 1,
                               b.state == BackendState::kUp ? b.weight : 0.0});
  }
  maglev_.build(mb);
  ++stats_.table_rebuilds;
}

void LoadBalancer::forward_(Packet&& pkt) {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  try {
    // Both TCP segments and SCTP common headers open with sport, dport.
    ByteReader r(pkt.payload.span());
    sport = r.u16();
    dport = r.u16();
  } catch (const DecodeError&) {
    ++stats_.malformed_drops;
    return;
  }
  const std::uint64_t key = track_key_(sport, dport);
  const sim::SimTime now = host_.sim().now();
  std::int32_t chosen = -1;
  if (key != 0) {
    const TrackEntry e = track_.find(key, TrackEntry{});
    if (e.backend >= 0 &&
        backends_[static_cast<std::size_t>(e.backend)]->state !=
            BackendState::kDown) {
      chosen = e.backend;
      ++stats_.tracked_hits;
    }
  }
  if (chosen < 0) {
    chosen = maglev_.lookup(key);
    if (chosen < 0) {
      ++stats_.no_backend_drops;
      return;
    }
    ++stats_.maglev_assignments;
  }
  if (key != 0) track_.put(key, TrackEntry{chosen, now});

  const Backend& b = *backends_[static_cast<std::size_t>(chosen)];
  // DSR forwarding: rewrite the destination to the backend's real address
  // on the VIP's subnet (multihomed backends keep per-path affinity), and
  // let the backend answer the client as the VIP directly.
  IpAddr target = b.addrs.front();
  for (const IpAddr a : b.addrs) {
    if (subnet_of(a) == subnet_of(pkt.dst)) {
      target = a;
      break;
    }
  }
  pkt.dst = target;
  ++stats_.forwarded;
  host_.send_ip(std::move(pkt), host_.costs().syscall);
}

void LoadBalancer::send_probe_(int id) {
  Backend& b = *backends_[static_cast<std::size_t>(id)];
  ++b.probe_seq;
  b.awaiting_ack = true;
  ++stats_.probes_sent;
  Packet probe;
  // Rotate the probed address so one dead path cannot eject a multihomed
  // backend: a miss on the failed path is followed by an ack on a live
  // one, which resets the consecutive-miss counter.
  probe.dst = b.addrs[static_cast<std::size_t>(
      b.probe_seq % static_cast<std::uint64_t>(b.addrs.size()))];
  probe.proto = IpProto::kUdp;
  probe.payload = encode_probe(kHealthProbeMagic,
                               static_cast<std::uint32_t>(id), b.probe_seq);
  host_.send_ip(std::move(probe), host_.costs().syscall);
  b.timeout_timer->arm(params_.probe_timeout);
  b.probe_timer->arm(b.state == BackendState::kDown ? b.backoff
                                                    : params_.probe_period);
}

void LoadBalancer::on_probe_timeout_(int id) {
  Backend& b = *backends_[static_cast<std::size_t>(id)];
  if (!b.awaiting_ack) return;
  b.awaiting_ack = false;
  b.oks = 0;
  ++b.fails;
  ++stats_.probe_timeouts;
  if (b.state != BackendState::kDown) {
    if (b.fails >= params_.probe_fail_threshold) {
      b.state = BackendState::kDown;
      b.backoff = params_.probe_backoff_initial;
      ++stats_.ejections;
      rebuild_();
      b.probe_timer->arm(b.backoff);
      if (on_backend_down_) on_backend_down_(id);
    }
  } else {
    b.backoff = std::min(b.backoff * 2, params_.probe_backoff_max);
    b.probe_timer->arm(b.backoff);
  }
}

void LoadBalancer::on_probe_ack_(const Packet& pkt) {
  std::uint32_t magic = 0;
  std::uint32_t id = 0;
  std::uint64_t seq = 0;
  try {
    ByteReader r(pkt.payload.span());
    magic = r.u32();
    id = r.u32();
    seq = r.u64();
  } catch (const DecodeError&) {
    ++stats_.malformed_drops;
    return;
  }
  if (magic != kHealthAckMagic || id >= backends_.size()) {
    ++stats_.malformed_drops;
    return;
  }
  Backend& b = *backends_[id];
  if (!b.awaiting_ack || seq != b.probe_seq) return;  // stale ack
  b.awaiting_ack = false;
  b.timeout_timer->cancel();
  b.fails = 0;
  ++stats_.probes_acked;
  if (b.state == BackendState::kDown) {
    ++b.oks;
    if (b.oks >= params_.probe_ok_threshold) {
      b.state = BackendState::kUp;
      b.oks = 0;
      b.backoff = 0;
      ++stats_.readmissions;
      rebuild_();
      b.probe_timer->arm(params_.probe_period);
      if (on_backend_up_) on_backend_up_(static_cast<int>(id));
    }
  }
}

void LoadBalancer::sweep_track_() {
  const sim::SimTime now = host_.sim().now();
  const std::size_t before = track_.size();
  track_.erase_if([&](std::uint64_t, const TrackEntry& e) {
    return e.last_active + params_.track_idle_expiry < now;
  });
  stats_.entries_expired += before - track_.size();
}

void HealthResponder::on_ip_packet(Packet&& pkt) {
  std::uint32_t magic = 0;
  std::uint32_t id = 0;
  std::uint64_t seq = 0;
  try {
    ByteReader r(pkt.payload.span());
    magic = r.u32();
    id = r.u32();
    seq = r.u64();
  } catch (const DecodeError&) {
    return;
  }
  if (magic != kHealthProbeMagic) return;
  ++probes_answered_;
  Packet ack;
  ack.dst = pkt.src;  // straight back to the prober's ingress address
  ack.proto = IpProto::kUdp;
  ack.payload = encode_probe(kHealthAckMagic, id, seq);
  host_.send_ip(std::move(ack), host_.costs().syscall);
}

}  // namespace sctpmpi::net
