// Maglev consistent hashing (Eisenbud et al., NSDI'16 §3.4).
//
// Each backend owns a permutation of the table positions derived from two
// hashes of its name; the table is filled by giving backends turns at
// claiming their next unclaimed position. The result is (a) near-perfect
// evenness — with equal weights, per-backend shares differ by at most one
// entry — and (b) minimal disruption: removing one of N backends remaps
// roughly 1/N of the keyspace and little else, because the surviving
// permutations are unchanged and mostly re-claim their old positions.
//
// Weights are per-turn credits: a backend with weight w claims w positions
// per round (fractions accumulate), so a freshly admitted backend can be
// ramped in at reduced weight before taking its full share.
//
// The table is rebuilt from scratch on membership change; lookups between
// rebuilds are one hash + one array probe. Connection affinity across
// rebuilds is NOT this table's job — net::LoadBalancer layers a tracking
// table on top for that.
#pragma once

#include <cstdint>
#include <vector>

namespace sctpmpi::net {

struct MaglevBackend {
  std::uint64_t name = 0;  // stable identity; hashed into the permutation
  double weight = 1.0;     // relative share; <= 0 excludes the backend
};

class MaglevTable {
 public:
  /// `size` should be prime and well above the maximum backend count
  /// (the paper uses 65537 for minimal-disruption experiments).
  explicit MaglevTable(std::uint32_t size = 65537) : m_(size) {}

  /// Rebuilds the lookup table over `backends`; entry values are indices
  /// into that vector. An empty or all-zero-weight set clears the table.
  void build(const std::vector<MaglevBackend>& backends) {
    table_.assign(m_, -1);
    struct Perm {
      std::int32_t index;
      std::uint64_t offset;
      std::uint64_t skip;
      std::uint64_t next;    // how many permutation entries consumed
      double weight;
      double credit;
    };
    std::vector<Perm> perms;
    perms.reserve(backends.size());
    for (std::size_t i = 0; i < backends.size(); ++i) {
      if (backends[i].weight <= 0.0) continue;
      const std::uint64_t h1 = mix_(backends[i].name ^ 0x9E3779B97F4A7C15ull);
      const std::uint64_t h2 = mix_(backends[i].name + 0xC2B2AE3D27D4EB4Full);
      perms.push_back(Perm{static_cast<std::int32_t>(i), h1 % m_,
                           h2 % (m_ - 1) + 1, 0, backends[i].weight, 0.0});
    }
    if (perms.empty()) return;
    std::uint32_t filled = 0;
    while (filled < m_) {
      for (Perm& p : perms) {
        p.credit += p.weight;
        while (p.credit >= 1.0 && filled < m_) {
          p.credit -= 1.0;
          // Claim the next unclaimed position of p's permutation.
          for (;;) {
            const std::uint64_t pos = (p.offset + p.next * p.skip) % m_;
            ++p.next;
            if (table_[pos] < 0) {
              table_[pos] = p.index;
              ++filled;
              break;
            }
          }
        }
        if (filled >= m_) break;
      }
    }
  }

  /// Backend index for `key` (already any stable flow identity; mixed
  /// internally), or -1 while the table is empty.
  std::int32_t lookup(std::uint64_t key) const {
    if (table_.empty()) return -1;
    return table_[mix_(key) % m_];
  }

  std::uint32_t size() const { return m_; }
  bool empty() const { return table_.empty(); }
  /// Raw entries, for the property tests (evenness, disruption).
  const std::vector<std::int32_t>& entries() const { return table_; }

 private:
  /// splitmix64 finalizer — full avalanche, shared idiom with FlatMap64.
  static std::uint64_t mix_(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  std::uint32_t m_;
  std::vector<std::int32_t> table_;  // -1 = unclaimed (only before build)
};

}  // namespace sctpmpi::net
