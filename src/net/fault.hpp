// Composable per-link fault pipeline.
//
// Replaces the Bernoulli-only Dummynet path: every packet offered to a Link
// first passes through its FaultInjector, which combines
//
//   * scripted rules — drop/duplicate/delay/corrupt the Nth packet matching
//     a predicate (1-based ordinals; an empty ordinal list means "every
//     match"), used by protocol tests to force exact loss patterns;
//   * timed black-out windows — every packet offered while sim time is
//     inside a window is dropped, modelling link failure for failover and
//     RTO-backoff experiments;
//   * Gilbert-Elliott two-state bursty loss — per-packet state transitions
//     with independent loss probabilities in the good and bad states;
//   * the classic Dummynet Bernoulli loss (net::LossModel);
//   * random duplication, payload corruption, and extra ingress delay.
//
// All randomness comes from sub-streams forked from the Link's rng, one per
// stage, so enabling one stage never perturbs another stage's sequence and
// runs are bit-for-bit reproducible. Delayed packets re-enter the link
// queue after the extra delay, so packets offered in between overtake them:
// delay doubles as the reordering primitive.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/loss.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {

/// Two-state Markov loss (E.N. Gilbert 1960 / Elliott 1963): bursty loss
/// with per-packet state transitions. Defaults give uniform loss 0.
struct GilbertElliottParams {
  double p_good_to_bad = 0.0;  // per-packet P(good -> bad)
  double p_bad_to_good = 1.0;  // per-packet P(bad -> good)
  double loss_good = 0.0;      // drop probability while in the good state
  double loss_bad = 1.0;       // drop probability while in the bad state
};

class FaultInjector {
 public:
  using Predicate = std::function<bool(const Packet&)>;

  /// What the pipeline decided for one packet. Actions compose: a packet
  /// may be duplicated, corrupted and delayed at once; drop wins over all.
  struct Decision {
    bool drop = false;
    bool duplicate = false;
    bool corrupt = false;
    sim::SimTime extra_delay = 0;
  };

  FaultInjector(sim::Simulator& sim, sim::Rng rng, double loss_probability);

  // ---- random stages ----------------------------------------------------
  void set_loss(double p) { loss_.set_probability(p); }
  double loss_probability() const { return loss_.probability(); }
  void set_gilbert_elliott(const GilbertElliottParams& ge);
  void clear_gilbert_elliott() { ge_.reset(); }
  void set_duplicate_probability(double p) { dup_p_ = p; }
  void set_corrupt_probability(double p) { corrupt_p_ = p; }
  /// Adds `extra` ingress delay to a fraction `p` of packets.
  void set_delay(sim::SimTime extra, double p = 1.0) {
    delay_ = extra;
    delay_p_ = p;
  }

  // ---- scripted stages --------------------------------------------------
  /// Drops every packet for which `pred` returns true (the successor of the
  /// old Link::set_drop_filter test hook). Rules accumulate; clear() resets.
  void drop_if(Predicate pred) { drop_matching(std::move(pred), {}); }
  /// Drops the given 1-based ordinals of the packets matching `match`.
  void drop_matching(Predicate match, std::vector<std::uint64_t> ordinals);
  void duplicate_matching(Predicate match,
                          std::vector<std::uint64_t> ordinals);
  void corrupt_matching(Predicate match, std::vector<std::uint64_t> ordinals);
  /// Holds the selected packets for `extra` before they join the queue;
  /// packets offered meanwhile overtake them (reordering).
  void delay_matching(Predicate match, std::vector<std::uint64_t> ordinals,
                      sim::SimTime extra);
  /// Drops everything offered while sim time is in [start, end).
  void add_blackout(sim::SimTime start, sim::SimTime end);

  /// Removes every configured fault (scripted and random) except the base
  /// Bernoulli loss probability, which is owned by the link parameters.
  void clear();

  /// True if any stage beyond plain Bernoulli loss is configured.
  bool scripted() const { return !rules_.empty() || !blackouts_.empty(); }

  /// Runs one packet through the pipeline, advancing all deterministic
  /// state (rule ordinal counters, Gilbert-Elliott chain, rng streams).
  Decision apply(const Packet& pkt);

  /// Flips one deterministically chosen payload byte and marks the packet
  /// corrupted, so real checksum paths (SCTP CRC32c, the modeled TCP
  /// Internet checksum) see damage.
  void corrupt_payload(Packet& pkt);

 private:
  struct Rule {
    enum class Action { kDrop, kDuplicate, kDelay, kCorrupt };
    Action action;
    Predicate match;
    std::vector<std::uint64_t> ordinals;  // 1-based; empty = every match
    sim::SimTime extra = 0;
    std::uint64_t seen = 0;

    /// Advances the match counter; true if the rule fires for this packet.
    bool fires(const Packet& pkt);
  };

  sim::Simulator& sim_;
  LossModel loss_;
  sim::Rng ge_rng_;
  sim::Rng dup_rng_;
  sim::Rng corrupt_rng_;
  sim::Rng delay_rng_;
  sim::Rng payload_rng_;
  std::optional<GilbertElliottParams> ge_;
  bool ge_bad_ = false;
  double dup_p_ = 0.0;
  double corrupt_p_ = 0.0;
  double delay_p_ = 0.0;
  sim::SimTime delay_ = 0;
  std::vector<Rule> rules_;
  std::vector<std::pair<sim::SimTime, sim::SimTime>> blackouts_;
};

}  // namespace sctpmpi::net
