// Dummynet-style loss injection.
//
// The paper configured Dummynet on each node to drop a fixed percentage of
// packets on the links between nodes (0%, 1%, 2%). LossModel reproduces
// that: an independent Bernoulli drop per packet from a deterministic,
// per-link RNG stream. Loss applies to every IP packet (data, ACKs,
// retransmissions), exactly as a Dummynet pipe does.
#pragma once

#include "sim/rng.hpp"

namespace sctpmpi::net {

class LossModel {
 public:
  LossModel(sim::Rng rng, double probability)
      : rng_(rng), probability_(probability) {}

  /// True if this packet should be dropped.
  bool should_drop() {
    if (probability_ <= 0.0) return false;
    return rng_.chance(probability_);
  }

  void set_probability(double p) { probability_ = p; }
  double probability() const { return probability_; }

 private:
  sim::Rng rng_;
  double probability_;
};

}  // namespace sctpmpi::net
