// Simulated L4 load balancer (Maglev-style, DSR return path).
//
// The balancer is a ProtocolHandler on its own Host: switches steer the
// service VIPs toward it (Cluster::add_service_route), it picks a backend,
// rewrites the packet's destination to the backend's real address and
// re-emits it — the stand-in for encap/DSR forwarding. Backends answer the
// client directly with the VIP as source (TcpSocket::bind(addr, port),
// SctpSocket::set_local_addrs), so return traffic never transits the
// balancer, exactly the asymmetry Maglev deployments rely on.
//
// Steering is two-level:
//
//  1. Connection tracking (FlatMap64, ports-only key): an established flow
//     keeps its backend across Maglev table rebuilds. Entries expire after
//     an idle window via a periodic sweep.
//  2. Maglev consistent hashing over the healthy backend set for new flows.
//
// Both levels key on (source port, destination port) ONLY — never on
// addresses. Every path of a multihomed SCTP association shares its port
// pair, so the association's INIT, its data over the primary path, and its
// failover traffic over the alternate path all steer to the same backend
// with no SCTP-specific parsing. (TCP and SCTP both lay out sport/dport as
// the first four wire bytes, so one parse serves both protos.)
//
// Control plane: periodic per-backend UDP health probes (rotating across
// the backend's addresses, so a single dead path cannot eject a multihomed
// backend) with consecutive-miss ejection, exponential probe backoff while
// down, and consecutive-ack re-admission; graceful drain (tracked flows
// finish, new flows steer away) and weighted re-admission for slow ramp-in.
// Liveness transitions surface through callbacks — the app layer wires them
// into core::FailureBus.
//
// Determinism: no RNG anywhere; probe schedules are staggered
// deterministically, the tracking sweep computes order-insensitive results,
// and Maglev rebuilds depend only on the backend set and states.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/flat_map.hpp"
#include "net/host.hpp"
#include "net/maglev.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace sctpmpi::net {

inline constexpr std::uint32_t kHealthProbeMagic = 0x48504221;  // "HPB!"
inline constexpr std::uint32_t kHealthAckMagic = 0x48504141;    // "HPAA"

struct LoadBalancerParams {
  std::uint32_t maglev_size = 65537;  // prime; see net/maglev.hpp
  /// Tracking entries idle longer than this are swept.
  sim::SimTime track_idle_expiry = 60 * sim::kSecond;
  sim::SimTime track_sweep_period = 5 * sim::kSecond;
  /// Health probing: one probe per backend per period while up, backing
  /// off exponentially from `probe_backoff_initial` while down.
  sim::SimTime probe_period = 100 * sim::kMillisecond;
  sim::SimTime probe_timeout = 50 * sim::kMillisecond;
  sim::SimTime probe_backoff_initial = 200 * sim::kMillisecond;
  sim::SimTime probe_backoff_max = 2 * sim::kSecond;
  unsigned probe_fail_threshold = 3;  // consecutive misses to eject
  unsigned probe_ok_threshold = 2;    // consecutive acks to re-admit
};

enum class BackendState : std::uint8_t { kUp, kDraining, kDown };

struct LoadBalancerStats {
  std::uint64_t forwarded = 0;
  std::uint64_t tracked_hits = 0;
  std::uint64_t maglev_assignments = 0;
  std::uint64_t no_backend_drops = 0;
  std::uint64_t malformed_drops = 0;
  std::uint64_t non_vip_drops = 0;
  std::uint64_t table_rebuilds = 0;
  std::uint64_t entries_expired = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t probes_acked = 0;
  std::uint64_t probe_timeouts = 0;
  std::uint64_t ejections = 0;
  std::uint64_t readmissions = 0;
};

class LoadBalancer : public ProtocolHandler {
 public:
  /// Registers itself on `host` for TCP, SCTP and UDP (the probe-ack
  /// channel). The host should run no transport stacks of its own.
  LoadBalancer(Host& host, LoadBalancerParams params = {});
  ~LoadBalancer();

  /// Declares `vip` as a service address; packets to any other destination
  /// are dropped (and counted). Call before traffic.
  void add_vip(IpAddr vip);

  /// Adds a backend with its real per-path addresses (index = subnet
  /// preference; forwarding picks the address matching the VIP's subnet,
  /// falling back to addrs[0]). Returns the backend id. Rebuilds the table.
  int add_backend(std::vector<IpAddr> addrs, double weight = 1.0);

  /// Graceful scale-in: the backend leaves the Maglev table (no new flows)
  /// but tracked flows keep steering to it until they go idle.
  void drain_backend(int id);
  /// Returns a drained (or ejected) backend to service.
  void restore_backend(int id);
  /// Hard scale-in: out of the table AND tracked entries dropped, so even
  /// established flows re-steer. (Drain first for graceful removal.)
  void remove_backend(int id);
  /// Scale-out ramp: adjust the backend's Maglev weight (e.g. admit a new
  /// backend at 0.25 and step to 1.0). Rebuilds the table.
  void set_backend_weight(int id, double weight);

  /// Starts the health-probe cycle for every backend, deterministically
  /// staggered so probes never synchronize.
  void start_probes(sim::SimTime initial_delay = 0);
  /// Cancels all timers (probes and tracking sweep) so a simulation can
  /// drain to quiescence.
  void stop();

  void set_backend_down_callback(std::function<void(int)> cb) {
    on_backend_down_ = std::move(cb);
  }
  void set_backend_up_callback(std::function<void(int)> cb) {
    on_backend_up_ = std::move(cb);
  }

  // ProtocolHandler: VIP traffic (TCP/SCTP) and probe acks (UDP).
  void on_ip_packet(Packet&& pkt) override;

  BackendState backend_state(int id) const;
  std::size_t backend_count() const { return backends_.size(); }
  /// Tracked-flow count currently steering to `id` (cold scan; drain
  /// completion check).
  std::size_t tracked_flows(int id) const;
  std::size_t tracked_total() const { return track_.size(); }
  /// Steering decision for a port pair without forwarding (test hook):
  /// tracked backend if live, else the Maglev choice, else -1.
  std::int32_t backend_of(std::uint16_t sport, std::uint16_t dport) const;
  const LoadBalancerStats& stats() const { return stats_; }
  const MaglevTable& maglev() const { return maglev_; }

 private:
  struct Backend {
    std::vector<IpAddr> addrs;
    double weight = 1.0;
    BackendState state = BackendState::kUp;
    unsigned fails = 0;        // consecutive probe misses
    unsigned oks = 0;          // consecutive acks while down
    std::uint64_t probe_seq = 0;
    bool awaiting_ack = false;
    sim::SimTime backoff = 0;  // current probe interval while down
    std::unique_ptr<sim::Timer> probe_timer;    // fires: send next probe
    std::unique_ptr<sim::Timer> timeout_timer;  // fires: probe missed
  };

  struct TrackEntry {
    std::int32_t backend = -1;
    sim::SimTime last_active = 0;
  };

  static std::uint64_t track_key_(std::uint16_t sport, std::uint16_t dport) {
    // Ports only — the SCTP-affinity invariant. Never zero for real flows
    // (both sides bind nonzero ports), which FlatMap64 requires.
    return (static_cast<std::uint64_t>(sport) << 16) | dport;
  }

  bool is_vip_(IpAddr a) const;
  void rebuild_();
  void forward_(Packet&& pkt);
  void send_probe_(int id);
  void on_probe_timeout_(int id);
  void on_probe_ack_(const Packet& pkt);
  void sweep_track_();

  Host& host_;
  LoadBalancerParams params_;
  std::vector<IpAddr> vips_;
  std::vector<std::unique_ptr<Backend>> backends_;
  MaglevTable maglev_;
  FlatMap64<TrackEntry> track_;
  std::unique_ptr<sim::Timer> sweep_timer_;
  std::function<void(int)> on_backend_down_;
  std::function<void(int)> on_backend_up_;
  LoadBalancerStats stats_;
};

/// Backend-side probe echo: registered for UDP on each backend host,
/// answers kHealthProbeMagic datagrams straight back to the prober.
class HealthResponder : public ProtocolHandler {
 public:
  explicit HealthResponder(Host& host) : host_(host) {
    host_.register_protocol(IpProto::kUdp, this);
  }

  void on_ip_packet(Packet&& pkt) override;

  std::uint64_t probes_answered() const { return probes_answered_; }

 private:
  Host& host_;
  std::uint64_t probes_answered_ = 0;
};

}  // namespace sctpmpi::net
