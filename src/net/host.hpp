// Simulated host: interfaces, IP routing, and protocol demultiplexing.
//
// A host owns one egress Link per interface and receives packets from the
// switch side via deliver(). Transport stacks (TCP/SCTP/control) register
// themselves per IpProto. Routing picks the egress interface whose subnet
// matches the destination address, falling back to interface 0; this is how
// SCTP multihoming reaches a peer's alternate addresses over independent
// paths.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/observer.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::net {

class LoadProfile;

/// Calibrated CPU costs of the simulated host's network path. These model
/// syscall and stack overheads that the paper's measurements include; see
/// DESIGN.md ("calibration").
struct HostCostModel {
  sim::SimTime syscall = sim::kMicrosecond;       // per socket API call
  sim::SimTime per_packet = 2 * sim::kMicrosecond;  // generic IP tx/rx path
  double per_byte_ns = 2.0;  // kernel copy + buffer mgmt, P4-era

  sim::SimTime copy_cost(std::size_t bytes) const {
    return static_cast<sim::SimTime>(per_byte_ns * static_cast<double>(bytes));
  }
};

class ProtocolHandler {
 public:
  virtual ~ProtocolHandler() = default;
  /// Invoked for each packet addressed to this host with a matching proto.
  virtual void on_ip_packet(Packet&& pkt) = 0;
};

class Host {
 public:
  Host(sim::Simulator& sim, unsigned id, HostCostModel costs)
      : sim_(sim), id_(id), costs_(costs),
        trace_label_("h" + std::to_string(id)) {}

  unsigned id() const { return id_; }
  sim::Simulator& sim() { return sim_; }
  const HostCostModel& costs() const { return costs_; }

  /// Registers interface `index` with address `addr` and its egress link.
  void add_interface(IpAddr addr, Link* egress) {
    ifaces_.push_back(Interface{addr, egress});
  }

  std::size_t interface_count() const { return ifaces_.size(); }
  IpAddr addr(std::size_t iface = 0) const { return ifaces_.at(iface).addr; }

  /// True if `a` is one of this host's interface addresses.
  bool owns_addr(IpAddr a) const {
    for (const auto& i : ifaces_)
      if (i.addr == a) return true;
    return false;
  }

  void register_protocol(IpProto proto, ProtocolHandler* handler) {
    handlers_.push_back({proto, handler});
  }

  /// Sends an IP packet, routing by the source address's subnet when the
  /// source is one of ours (so SCTP can pin a path), else by destination
  /// subnet. `stack_delay` models transport-stack CPU before the wire.
  void send_ip(Packet&& pkt, sim::SimTime stack_delay = 0);

  /// Entry point for packets arriving from the network.
  void deliver(Packet&& pkt);

  /// Serialized host CPU: network-path work occupies the single CPU of the
  /// simulated node (the paper's testbed nodes were single Pentium-4s, and
  /// endpoint CPU — not the gigabit wire — bounded large-message
  /// throughput). Returns the delay from now until this work completes;
  /// callers schedule their continuation after it.
  sim::SimTime occupy_cpu(sim::SimTime cost) {
    const sim::SimTime start = std::max(sim_.now(), cpu_next_free_);
    cpu_next_free_ = start + cost;
    return cpu_next_free_ - sim_.now();
  }

  std::uint64_t tx_packets() const { return tx_packets_; }
  std::uint64_t rx_packets() const { return rx_packets_; }

  /// Opt-in receive digest for determinism tests: deliver() folds each
  /// packet's (arrival time, uid, src, payload size) into an
  /// order-sensitive FNV-1a hash, so two runs with equal digests received
  /// the same packets in the same order at the same instants. Cheaper than
  /// full tracing and safe on sharded runs (host state is shard-local).
  void enable_rx_digest() { digest_on_ = true; }
  std::uint64_t rx_digest() const { return rx_digest_; }

  /// Wire-level observation hook: send_ip() reports each packet (with its
  /// freshly assigned uid) as PacketVerdict::kSent before the stack CPU
  /// cost, so traces can see what the transport handed down and when.
  void set_observer(PacketObserver* obs) { observer_ = obs; }

  /// Warmup measurement hook (nullptr detaches): send_ip()/deliver() record
  /// per-host work and src→dst message counts into the profile. The profile
  /// is not thread-safe — Cluster only enables it on single-shard runs.
  void set_load_profile(LoadProfile* profile) { profile_ = profile; }

 private:
  struct Interface {
    IpAddr addr;
    Link* egress;
  };

  Interface* route_(const Packet& pkt);

  sim::Simulator& sim_;
  unsigned id_;
  HostCostModel costs_;
  PacketObserver* observer_ = nullptr;
  LoadProfile* profile_ = nullptr;
  std::string trace_label_;
  std::vector<Interface> ifaces_;
  std::vector<std::pair<IpProto, ProtocolHandler*>> handlers_;
  std::uint64_t tx_packets_ = 0;
  std::uint64_t rx_packets_ = 0;
  sim::SimTime cpu_next_free_ = 0;
  std::uint64_t next_uid_ = 1;
  bool digest_on_ = false;
  std::uint64_t rx_digest_ = 14695981039346656037ull;  // FNV-1a-64 basis
};

}  // namespace sctpmpi::net
