#include "net/link.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace sctpmpi::net {

Link::Link(sim::Simulator& sim, LinkParams params, sim::Rng loss_rng)
    : sim_(sim),
      params_(params),
      faults_(sim, loss_rng, params.loss),
      unbatched_(std::getenv("SCTPMPI_UNBATCHED") != nullptr) {}

bool Link::enqueue(Packet&& pkt) {
  const FaultInjector::Decision d = faults_.apply(pkt);
  if (d.drop) {
    ++stats_.drops_loss;
    notify_(pkt, PacketVerdict::kDroppedLoss);
    return false;
  }
  if (d.corrupt) faults_.corrupt_payload(pkt);
  if (d.duplicate) {
    Packet dup = pkt;  // same uid: traces show the duplication
    accept_(std::move(dup));
  }
  if (d.extra_delay > 0) {
    // Held at ingress; packets offered meanwhile overtake it (reordering).
    sim_.schedule_after(d.extra_delay, [this, p = std::move(pkt)]() mutable {
      accept_(std::move(p));
    });
    return true;
  }
  return accept_(std::move(pkt));
}

bool Link::accept_(Packet&& pkt) {
  return unbatched_ ? accept_unbatched_(std::move(pkt))
                    : accept_fifo_(std::move(pkt));
}

void Link::drop_queue_full_(const Packet& pkt, std::size_t occupancy) {
  ++stats_.drops_queue;
  notify_(pkt, PacketVerdict::kDroppedQueue);
  if (getenv("NETTRACE")) {
    std::printf("[%f] QDROP size=%zu wire=%zu\n",
                static_cast<double>(sim_.now()) / 1e9, occupancy,
                pkt.wire_size());
  }
}

// ---- FIFO datapath -------------------------------------------------------
//
// Event-schedule parity with the legacy path is structural: both schedule
// one event when the transmitter goes busy, and from each departure one
// arrival event plus (queue permitting) the next departure event, in that
// order. Identical schedule calls at identical instants means identical
// FIFO sequence numbers, so same-time ties resolve identically and traces
// stay byte-for-byte equal.

bool Link::accept_fifo_(Packet&& pkt) {
  // Drop-tail depth counts only packets that have not left the transmitter;
  // departed packets are on the wire, not in the output queue.
  if (queue_.size() - departed_ >= params_.queue_packets) {
    drop_queue_full_(pkt, queue_.size() - departed_);
    return false;
  }
  notify_(pkt, PacketVerdict::kQueued);
  const bool was_idle = queue_.size() == departed_;
  queue_.push_back(std::move(pkt));
  if (was_idle) {
    sim_.schedule_after(serialization_time(queue_.back().wire_size()),
                        [this] { on_departure_(); });
  }
  return true;
}

void Link::on_departure_() {
  if (cross_ != nullptr) {
    // Cross-shard: the propagation stage lives on the destination shard.
    // departed_ stays 0 (no local arrivals are ever pending), so the
    // departing packet is always the queue front. The handoff transfers
    // sole ownership of the payload block — see Buffer::detach_for_handoff.
    Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.tx_packets;
    stats_.tx_bytes += pkt.wire_size();
    const sim::SimTime deliver_at = sim_.now() + params_.delay;
    pkt.payload.detach_for_handoff();
    cross_->push(deliver_at,
                 [this, deliver_at, p = std::move(pkt)]() mutable {
                   p.payload.adopt_after_handoff();
                   deliver_cross_(deliver_at, std::move(p));
                 });
    if (!queue_.empty()) {
      sim_.schedule_after(serialization_time(queue_.front().wire_size()),
                          [this] { on_departure_(); });
    }
    return;
  }
  // Advance the departed/queued boundary in place: no packet moves here.
  const Packet& pkt = queue_[departed_++];
  ++stats_.tx_packets;
  stats_.tx_bytes += pkt.wire_size();
  sim_.schedule_after(params_.delay, [this] { on_arrival_(); });
  if (queue_.size() > departed_) {
    sim_.schedule_after(serialization_time(queue_[departed_].wire_size()),
                        [this] { on_departure_(); });
  }
}

void Link::deliver_cross_(sim::SimTime t, Packet&& pkt) {
  // Runs on the destination shard's worker: sim_ (the source simulator)
  // must not be touched here, so the observer gets the carried timestamp.
  if (observer_ != nullptr) {
    observer_->on_packet(t, label_, pkt, PacketVerdict::kDelivered);
  }
  if (sink_) sink_(std::move(pkt));
}

void Link::on_arrival_() {
  // Arrival events fire in FIFO order (departures are FIFO and the
  // propagation delay is constant), so the head is always the one due.
  Packet pkt = std::move(queue_.front());
  queue_.pop_front();
  --departed_;
  notify_(pkt, PacketVerdict::kDelivered);
  if (sink_) sink_(std::move(pkt));
}

// ---- legacy datapath (SCTPMPI_UNBATCHED=1) -------------------------------
//
// The original two-closures-per-packet formulation, kept as a determinism
// cross-check: each departure captures the Packet into the delivery
// closure (a per-packet allocation the FIFO path avoids).

bool Link::accept_unbatched_(Packet&& pkt) {
  if (queue_.size() >= params_.queue_packets) {
    drop_queue_full_(pkt, queue_.size());
    return false;
  }
  notify_(pkt, PacketVerdict::kQueued);
  queue_.push_back(std::move(pkt));
  if (!transmitting_) start_transmission_();
  return true;
}

void Link::start_transmission_() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  // Serialize the head packet; deliver after serialization + propagation.
  const std::size_t wire = queue_.front().wire_size();
  const sim::SimTime ser = serialization_time(wire);
  sim_.schedule_after(ser, [this] {
    Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.tx_packets;
    stats_.tx_bytes += pkt.wire_size();
    sim_.schedule_after(params_.delay,
                        [this, p = std::move(pkt)]() mutable {
                          notify_(p, PacketVerdict::kDelivered);
                          if (sink_) sink_(std::move(p));
                        });
    start_transmission_();  // begin serializing the next packet
  });
}

}  // namespace sctpmpi::net
