#include "net/link.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace sctpmpi::net {

bool Link::enqueue(Packet&& pkt) {
  const FaultInjector::Decision d = faults_.apply(pkt);
  if (d.drop) {
    ++stats_.drops_loss;
    notify_(pkt, PacketVerdict::kDroppedLoss);
    return false;
  }
  if (d.corrupt) faults_.corrupt_payload(pkt);
  if (d.duplicate) {
    Packet dup = pkt;  // same uid: traces show the duplication
    accept_(std::move(dup));
  }
  if (d.extra_delay > 0) {
    // Held at ingress; packets offered meanwhile overtake it (reordering).
    sim_.schedule_after(d.extra_delay, [this, p = std::move(pkt)]() mutable {
      accept_(std::move(p));
    });
    return true;
  }
  return accept_(std::move(pkt));
}

bool Link::accept_(Packet&& pkt) {
  if (queue_.size() >= params_.queue_packets) {
    ++stats_.drops_queue;
    notify_(pkt, PacketVerdict::kDroppedQueue);
    if (getenv("NETTRACE")) {
      std::printf("[%f] QDROP size=%zu wire=%zu\n",
                  static_cast<double>(sim_.now()) / 1e9, queue_.size(),
                  pkt.wire_size());
    }
    return false;
  }
  notify_(pkt, PacketVerdict::kQueued);
  queue_.push_back(std::move(pkt));
  if (!transmitting_) start_transmission_();
  return true;
}

void Link::start_transmission_() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  // Serialize the head packet; deliver after serialization + propagation.
  const std::size_t wire = queue_.front().wire_size();
  const sim::SimTime ser = serialization_time(wire);
  sim_.schedule_after(ser, [this] {
    Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    ++stats_.tx_packets;
    stats_.tx_bytes += pkt.wire_size();
    sim_.schedule_after(params_.delay,
                        [this, p = std::move(pkt)]() mutable {
                          notify_(p, PacketVerdict::kDelivered);
                          if (sink_) sink_(std::move(p));
                        });
    start_transmission_();  // begin serializing the next packet
  });
}

}  // namespace sctpmpi::net
