// Thread-local freelist allocator for the datapath's tiny hot vectors
// (slice chains, per-packet chunk lists): 1-2 element vectors allocated and
// freed once per packet otherwise hit malloc/free on every packet.
//
// Capacities are rounded up to a power-of-two class (1, 2, 4, 8 elements);
// freed blocks park on a per-class thread-local freelist and are handed
// back on the next allocation of the same class. Larger requests fall
// through to operator new. Each simulator shard runs on exactly one thread,
// so the thread-local lists see every alloc/free pair; pooled containers
// are shard-local state (transport queues, fault pipelines) and must never
// cross shards — only Buffer blocks may, via their sanctioned handoff path.
// Debug builds stamp each pooled block with the shard that allocated it and
// assert the free happens on the same shard. Parked blocks are released at
// thread exit (worker threads would otherwise leak their freelists).
#pragma once

#include <cassert>
#include <cstddef>
#include <new>

#include "sim/shard_id.hpp"

namespace sctpmpi::net {

template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}

  T* allocate(std::size_t n) {
    const int c = class_of_(n);
    if (c >= 0) {
      Node*& head = lists_()[c];
      if (head != nullptr) {
        Node* p = head;
        head = p->next;
        return stamp_(reinterpret_cast<T*>(p));
      }
      return stamp_(static_cast<T*>(raw_new_((std::size_t{1} << c) *
                                             sizeof(T))));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const int c = class_of_(n);
    if (c < 0) {
      ::operator delete(p);
      return;
    }
    check_shard_(p);
    Node* node = reinterpret_cast<Node*>(p);
    node->next = lists_()[c];
    lists_()[c] = node;
  }

  bool operator==(const PoolAllocator&) const { return true; }
  bool operator!=(const PoolAllocator&) const { return false; }

 private:
  struct Node {
    Node* next;
  };
  static_assert(sizeof(T) >= sizeof(Node*),
                "pooled blocks double as freelist nodes");
  static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                "pooled blocks use default operator new alignment");

  static constexpr int kClasses = 4;  // capacity classes 1, 2, 4, 8

  // Debug builds prepend a 16-byte header (preserves default new
  // alignment) recording the allocating shard; the header travels with the
  // block through the freelist, and deallocate asserts the block comes
  // back on the shard that took it out.
#ifndef NDEBUG
  static constexpr std::size_t kHeader = 16;
#else
  static constexpr std::size_t kHeader = 0;
#endif

  static void* raw_new_(std::size_t bytes) {
    void* base = ::operator new(bytes + kHeader);
    return static_cast<unsigned char*>(base) + kHeader;
  }

  static void raw_delete_(void* user) noexcept {
    ::operator delete(static_cast<unsigned char*>(user) - kHeader);
  }

  static T* stamp_(T* user) noexcept {
#ifndef NDEBUG
    *reinterpret_cast<int*>(reinterpret_cast<unsigned char*>(user) -
                            kHeader) = sim::current_shard();
#endif
    return user;
  }

  static void check_shard_(T* user) noexcept {
#ifndef NDEBUG
    const int owner = *reinterpret_cast<const int*>(
        reinterpret_cast<const unsigned char*>(user) - kHeader);
    const int cur = sim::current_shard();
    assert((owner < 0 || cur < 0 || owner == cur) &&
           "net::PoolAllocator block freed on a foreign shard: pooled "
           "containers are shard-local and must not cross shards");
#else
    (void)user;
#endif
  }

  /// Class index for a capacity, or -1 when the request is too large to
  /// pool. Same rounding on allocate and deallocate, so blocks always
  /// return to the class they came from.
  static int class_of_(std::size_t n) {
    if (n == 0 || n > (std::size_t{1} << (kClasses - 1))) return -1;
    int c = 0;
    while ((std::size_t{1} << c) < n) ++c;
    return c;
  }

  static Node** lists_() {
    // Owns the parked blocks so thread exit frees them: shard worker
    // threads come and go per run, and their freelists must not leak.
    struct Lists {
      Node* heads[kClasses] = {};
      ~Lists() {
        for (Node* h : heads) {
          while (h != nullptr) {
            Node* next = h->next;
            raw_delete_(h);
            h = next;
          }
        }
      }
    };
    thread_local Lists lists;
    return lists.heads;
  }
};

}  // namespace sctpmpi::net
