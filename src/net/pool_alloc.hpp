// Thread-local freelist allocator for the datapath's tiny hot vectors
// (slice chains, per-packet chunk lists): 1-2 element vectors allocated and
// freed once per packet otherwise hit malloc/free on every packet.
//
// Capacities are rounded up to a power-of-two class (1, 2, 4, 8 elements);
// freed blocks park on a per-class thread-local freelist and are handed
// back on the next allocation of the same class. Larger requests fall
// through to operator new. The simulation is single-threaded per run, so
// the thread-local lists see every alloc/free pair; blocks stay reachable
// from the lists for the thread's lifetime (bounded by the peak number of
// simultaneously live containers, not by churn).
#pragma once

#include <cstddef>
#include <new>

namespace sctpmpi::net {

template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) {}

  T* allocate(std::size_t n) {
    const int c = class_of_(n);
    if (c >= 0) {
      Node*& head = lists_()[c];
      if (head != nullptr) {
        Node* p = head;
        head = p->next;
        return reinterpret_cast<T*>(p);
      }
      return static_cast<T*>(
          ::operator new((std::size_t{1} << c) * sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }

  void deallocate(T* p, std::size_t n) noexcept {
    const int c = class_of_(n);
    if (c < 0) {
      ::operator delete(p);
      return;
    }
    Node* node = reinterpret_cast<Node*>(p);
    node->next = lists_()[c];
    lists_()[c] = node;
  }

  bool operator==(const PoolAllocator&) const { return true; }
  bool operator!=(const PoolAllocator&) const { return false; }

 private:
  struct Node {
    Node* next;
  };
  static_assert(sizeof(T) >= sizeof(Node*),
                "pooled blocks double as freelist nodes");
  static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                "pooled blocks use default operator new alignment");

  static constexpr int kClasses = 4;  // capacity classes 1, 2, 4, 8

  /// Class index for a capacity, or -1 when the request is too large to
  /// pool. Same rounding on allocate and deallocate, so blocks always
  /// return to the class they came from.
  static int class_of_(std::size_t n) {
    if (n == 0 || n > (std::size_t{1} << (kClasses - 1))) return -1;
    int c = 0;
    while ((std::size_t{1} << c) < n) ++c;
    return c;
  }

  static Node** lists_() {
    thread_local Node* lists[kClasses] = {};
    return lists;
  }
};

}  // namespace sctpmpi::net
