#include "net/host.hpp"

#include <utility>

#include "net/address.hpp"
#include "net/placement.hpp"

namespace sctpmpi::net {

Host::Interface* Host::route_(const Packet& pkt) {
  if (ifaces_.empty()) return nullptr;
  // Prefer the interface matching the packet's source address: SCTP pins
  // retransmission paths by choosing the source/destination pair.
  for (auto& i : ifaces_) {
    if (i.addr == pkt.src) return &i;
  }
  // Otherwise route by destination subnet.
  for (auto& i : ifaces_) {
    if (subnet_of(i.addr) == subnet_of(pkt.dst)) return &i;
  }
  return &ifaces_.front();
}

void Host::send_ip(Packet&& pkt, sim::SimTime stack_delay) {
  Interface* iface = route_(pkt);
  if (iface == nullptr || iface->egress == nullptr) return;
  if (pkt.src.is_any()) pkt.src = iface->addr;
  pkt.uid = (static_cast<std::uint64_t>(id_) << 48) | next_uid_++;
  ++tx_packets_;
  if (profile_ != nullptr) profile_->record_send(id_, pkt.payload.size());
  if (observer_ != nullptr) {
    observer_->on_packet(sim_.now(), trace_label_, pkt, PacketVerdict::kSent);
  }
  const sim::SimTime cost =
      stack_delay + costs_.per_packet + costs_.copy_cost(pkt.payload.size());
  const sim::SimTime done_in = occupy_cpu(cost);
  Link* egress = iface->egress;
  sim_.schedule_after(done_in, [egress, p = std::move(pkt)]() mutable {
    egress->enqueue(std::move(p));
  });
}

void Host::deliver(Packet&& pkt) {
  ++rx_packets_;
  if (profile_ != nullptr) {
    profile_->record_delivery(host_of(pkt.src), id_, pkt.payload.size());
  }
  if (digest_on_) {
    const std::uint64_t words[4] = {
        static_cast<std::uint64_t>(sim_.now()), pkt.uid, pkt.src.v,
        pkt.payload.size()};
    for (const std::uint64_t w : words) {
      for (int i = 0; i < 8; ++i) {
        rx_digest_ ^= (w >> (8 * i)) & 0xFF;
        rx_digest_ *= 1099511628211ull;
      }
    }
  }
  for (auto& [proto, handler] : handlers_) {
    if (proto == pkt.proto) {
      // Receive-path CPU: the stack's processing queues on the host CPU.
      const sim::SimTime cost =
          costs_.per_packet + costs_.copy_cost(pkt.payload.size());
      const sim::SimTime done_in = occupy_cpu(cost);
      sim_.schedule_after(done_in, [handler, p = std::move(pkt)]() mutable {
        handler->on_ip_packet(std::move(p));
      });
      return;
    }
  }
  // No handler: packet silently dropped (no ICMP in this model).
}

}  // namespace sctpmpi::net
