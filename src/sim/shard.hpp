// Sharded parallel simulation driver with conservative lookahead.
//
// A ShardGroup owns N independent sim::Simulator instances (timer wheel,
// due-now FIFO and heap untouched), one per worker-thread shard, plus one
// SPSC handoff channel per (source, destination) shard pair. Synchronization
// is classic conservative (CMB-style) windowing:
//
//   round k:  ingest   — each shard drains its inbound channels and
//                        schedules the messages into its own simulator
//             reduce   — barrier; the completion computes
//                          M = min over shards of next_event_bound()
//                          W = M + min(lookahead, max_window)
//             run      — each shard runs all local events with t < W
//                        (run_until(W - 1)); cross-shard sends are pushed
//                        into channels, never executed directly
//             publish  — barrier; pushes become visible to consumers
//
// Safety: `lookahead` must be a lower bound on the latency of every
// cross-shard handoff (for a network, the minimum delay of any cross-shard
// link). An event executed in round k has t >= M; a message it emits
// arrives at t + lookahead >= M + lookahead = W — strictly after the window
// being executed — so no shard can ever receive a message into its past.
//
// Determinism: a message carries (deliver_time, producer seq); the consumer
// drains channels in source-shard order (each channel is FIFO, i.e. seq
// order) and stable-sorts by time, so cross-shard messages enter the
// destination simulator in exact (time, source shard, seq) order. Window
// boundaries depend only on event timestamps, so a given sharding of a
// given seed is rerun-identical. With one shard there are no channels and
// the driver degenerates to run_until() over the whole horizon — the same
// event order as ProcessGroup::run_all(), byte-identical traces included
// (see RunOptions::stop for the exact-termination cut).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/spsc_queue.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace sctpmpi::sim {

class ShardGroup {
 public:
  /// No-pending-event sentinel used for bounds and lookahead.
  static constexpr SimTime kNoEvent = INT64_MAX;

  /// One message in flight between shards: run `cb` on the destination
  /// shard's simulator at absolute time `time`. `seq` is assigned by the
  /// producing channel and breaks same-instant ties deterministically.
  struct Msg {
    SimTime time = 0;
    std::uint64_t seq = 0;
    UniqueFunction cb;
  };

  /// SPSC handoff channel from one shard to another. push() may only be
  /// called by the source shard's worker during the run phase; the
  /// destination worker drains it during the ingest phase.
  class Channel {
   public:
    Channel(unsigned src, unsigned dst) : src_(src), dst_(dst) {}
    void push(SimTime time, UniqueFunction cb) {
      q_.push(Msg{time, next_seq_++, std::move(cb)});
    }
    unsigned src() const { return src_; }
    unsigned dst() const { return dst_; }

   private:
    friend class ShardGroup;
    SpscQueue<Msg> q_;
    std::uint64_t next_seq_ = 0;  // producer-side; FIFO makes pops ordered
    unsigned src_;
    unsigned dst_;
  };

  struct RunOptions {
    /// Lower bound on cross-shard handoff latency (min cross-shard link
    /// delay). kNoEvent when no channel exists; always clamped by
    /// max_window. Must be >= 1 ns when channels exist.
    SimTime lookahead = kNoEvent;
    /// Window cap: keeps rounds finite so done-predicates are re-checked
    /// even when the lookahead is unbounded (self-re-arming timers would
    /// otherwise let run_until spin forever after the workload finished).
    SimTime max_window = 10 * kMillisecond;
    /// Per-shard completion predicate, evaluated by that shard's worker at
    /// the top of each round (after ingest). The group stops at the first
    /// round where every shard reports done. Default: simulator drained.
    std::function<bool(unsigned)> shard_done;
    /// Single-shard only: when non-null and *stop reaches 0, the window in
    /// progress aborts without advancing the clock — reproducing
    /// ProcessGroup::run_all()'s stop-at-last-process-exit cut exactly.
    /// Ignored with more than one shard (a mid-window cut would be
    /// nondeterministic there; multi-shard runs instead finish the round
    /// in which every shard reports done).
    const std::atomic<std::uint32_t>* stop = nullptr;
  };

  explicit ShardGroup(unsigned shards);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  unsigned count() const { return static_cast<unsigned>(sims_.size()); }
  Simulator& shard(unsigned i) { return *sims_[i]; }
  const Simulator& shard(unsigned i) const { return *sims_[i]; }

  /// The src -> dst handoff channel, created on first use. Channel creation
  /// is build-time wiring: call only before run(), from one thread.
  Channel& channel(unsigned src, unsigned dst);
  bool has_channel(unsigned src, unsigned dst) const {
    return channels_[src][dst] != nullptr;
  }

  /// Drives every shard to completion (all shard_done true) on one worker
  /// thread per shard; shard 0 runs on the calling thread. Throws on a
  /// cross-shard deadlock (every simulator drained, some shard not done)
  /// and rethrows the first exception a shard's events raised.
  void run(const RunOptions& opts);

  /// Barrier rounds executed by the last run().
  std::uint64_t rounds() const { return rounds_; }

 private:
  struct Control;  // per-run shared state (bounds, window, verdict)

  void worker_(unsigned i, Control& ctl, const RunOptions& opts);
  void ingest_(unsigned i, std::vector<Msg>& scratch);

  std::vector<std::unique_ptr<Simulator>> sims_;
  // channels_[src][dst]; null until wired. Shard counts are small (the
  // matrix is n^2 pointers) and the per-destination scan in ingest_ walks
  // sources in index order, which is what pins the shard_id tie-break.
  std::vector<std::vector<std::unique_ptr<Channel>>> channels_;
  std::uint64_t rounds_ = 0;
};

}  // namespace sctpmpi::sim
