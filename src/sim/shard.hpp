// Sharded parallel simulation driver with conservative lookahead.
//
// A ShardGroup owns N independent sim::Simulator instances (timer wheel,
// due-now FIFO and heap untouched), one per worker-thread shard, plus one
// SPSC handoff channel per (source, destination) shard pair. Synchronization
// is conservative (CMB-style) windowing, fused into ONE barrier per round:
//
//   round k:  publish  — each shard snapshots, per outbound channel, the
//                        cumulative push count and the minimum deliver time
//                        of the pushes made during round k-1, into the
//                        round-parity slot k&1 (plain stores; the barrier
//                        orders them), then posts its own next-event bound
//                        and done flag
//             reduce   — a combining-tree, sense-reversing barrier; the
//                        last arriver folds the tree-combined minimum with
//                        the pending channel minima into
//                          M       = min over shards j of b'_j
//                          b'_j    = min(next_event_bound_j,
//                                        min deliver time still in flight
//                                        into j)
//                        and computes a per-shard window end
//                          W_i = max( W_i_prev,
//                                     min( min_j (b'_j + L*[j][i]),
//                                          M + cap ) )
//                        where L* is the min-plus closure of the per-pair
//                        cross-shard latency matrix — the j == i term uses
//                        L*[i][i], the cheapest cross-shard cycle through
//                        i, bounding when i's own sends can echo back —
//                        then bumps the epoch counter (bounded spin, then
//                        futex park)
//             ingest   — each shard drains exactly the published prefix of
//                        its inbound channels (snapshot count minus
//                        consumed count; zero-traffic channels are
//                        skipped without touching the queue) and schedules
//                        the messages into its own simulator
//             run      — each shard runs all local events with t < W_i
//                        (run_until(W_i - 1)); cross-shard sends are pushed
//                        into channels, never executed directly
//
// Safety: L[j][i] must lower-bound the latency of any direct j -> i
// handoff; the closure L* then lower-bounds any multi-hop path (in-shard
// forwarding only adds delay). Every message still in flight into j is
// accounted in b'_j, so any event shard j executes THIS round has
// t >= b'_j, and anything it causes to arrive at shard i arrives at
// t >= b'_j + L*[j][i] >= W_i — on or after the window boundary, never
// into i's past. Two subtleties make that hold across rounds, not just
// within one:
//   echo bound   — the j == i term. A shard's own send at b'_i can bounce
//                  off a neighbour and return no earlier than
//                  b'_i + L*[i][i] (the cheapest cross-shard cycle); the
//                  adaptive cap can exceed that round-trip, so without
//                  this term a shard could outrun its own replies.
//   monotonicity — W_i never retreats behind a window already granted
//                  (shard i may have executed to W_i_prev - 1, and a
//                  fresh arrival or a cap shrink can pull the raw min
//                  below that). The clamp is safe because the raw vector
//                  satisfies W_i <= W_j + L*[j][i] (closure transitivity),
//                  so next round's arrivals from j land at
//                  >= W_j + L[j][i] >= W_i_prev.
// Because W_i > M for every i, the globally-earliest event always
// executes: the round makes progress. Shards with late inbound bounds run
// far past the global minimum — that is the window prefetch.
//
// Waiting shards also opportunistically pop already-visible channel
// elements into a staging buffer while they spin; ingest still takes
// exactly the snapshot prefix (staging first, queue after), so overlap
// never changes which round a message lands in.
//
// Determinism: a message carries (deliver_time, producer seq); the consumer
// drains channels in source-shard order (each channel is FIFO, i.e. seq
// order) and stable-sorts by time, so cross-shard messages enter the
// destination simulator in exact (time, source shard, seq) order. Ingest
// batch boundaries come from the published count snapshots — never from
// what happens to be visible in a queue — and window boundaries (including
// the adaptive cap) depend only on event timestamps and executed-event
// counts, so a given sharding of a given seed is rerun-identical. With one
// shard there are no channels and the driver degenerates to run_until()
// over the whole horizon — the same event order as ProcessGroup::run_all(),
// byte-identical traces included (see RunOptions::stop for the
// exact-termination cut).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/spsc_queue.hpp"
#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace sctpmpi::sim {

class ShardGroup {
 public:
  /// No-pending-event sentinel used for bounds and lookahead.
  static constexpr SimTime kNoEvent = INT64_MAX;

  /// One message in flight between shards: run `cb` on the destination
  /// shard's simulator at absolute time `time`. `seq` is assigned by the
  /// producing channel and breaks same-instant ties deterministically.
  struct Msg {
    SimTime time = 0;
    std::uint64_t seq = 0;
    UniqueFunction cb;
  };

  /// SPSC handoff channel from one shard to another. push() may only be
  /// called by the source shard's worker during the run phase; the
  /// destination worker drains it during the ingest phase.
  class Channel {
   public:
    Channel(unsigned src, unsigned dst) : src_(src), dst_(dst) {}
    void push(SimTime time, UniqueFunction cb) {
      if (time < round_min_) round_min_ = time;
      ++pushed_;
      q_.push(Msg{time, next_seq_++, std::move(cb)});
    }
    unsigned src() const { return src_; }
    unsigned dst() const { return dst_; }

   private:
    friend class ShardGroup;
    // ---- producer side ----
    SpscQueue<Msg> q_;
    std::uint64_t next_seq_ = 0;  // producer-side; FIFO makes pops ordered
    std::uint64_t pushed_ = 0;    // cumulative pushes, producer-private
    SimTime round_min_ = kNoEvent;  // min deliver time pushed this round
    unsigned src_;
    unsigned dst_;
    // Round-parity snapshots, slot = round & 1: written (plain) by the
    // producer before its barrier arrival, read by the reducer and the
    // consumer strictly after the epoch advance — the barrier's
    // acquire/release chain is the only synchronization they need. A slot
    // is rewritten two barriers later, by which point every reader has
    // passed the intervening barrier.
    alignas(64) std::uint64_t pub_count_[2] = {0, 0};
    SimTime pub_min_[2] = {kNoEvent, kNoEvent};
    // ---- consumer side ----
    // Elements popped early (while the consumer waited at the barrier);
    // always the oldest unconsumed FIFO prefix.
    alignas(64) std::deque<Msg> staged_;
    std::uint64_t consumed_ = 0;  // cumulative ingests, consumer-private
  };

  struct RunOptions {
    /// Lower bound on cross-shard handoff latency (min cross-shard link
    /// delay). kNoEvent when no channel exists; always clamped by
    /// max_window. Must be >= 1 ns when channels exist. Used as the base
    /// window cap and as the per-pair bound for every wired channel when
    /// lookahead_matrix is empty.
    SimTime lookahead = kNoEvent;
    /// Window cap: keeps rounds finite so done-predicates are re-checked
    /// even when the lookahead is unbounded (self-re-arming timers would
    /// otherwise let run_until spin forever after the workload finished).
    SimTime max_window = 10 * kMillisecond;
    /// Per-pair lower bounds on cross-shard delivery latency:
    /// lookahead_matrix[src][dst], kNoEvent where no handoff exists.
    /// Empty = `lookahead` for every wired channel. The driver min-plus
    /// closes the matrix and derives per-shard windows from it, so shards
    /// whose inbound paths are slow run far ahead of the global bound
    /// (window prefetch). Entries must lower-bound the direct handoff
    /// latency of their pair; net::Cluster::cross_shard_lookahead_matrix()
    /// produces exactly this.
    std::vector<std::vector<SimTime>> lookahead_matrix;
    /// Deterministically widens the window cap (up to 64x its base) while
    /// observed event density per round is low, decaying it back when
    /// density rises. Keyed off executed-event counts only — never wall
    /// clock — so reruns are identical.
    bool adaptive_window = false;
    /// Per-shard completion predicate, evaluated by that shard's worker at
    /// the top of each round. The group stops at the first round where
    /// every shard reports done and no cross-shard message is in flight.
    /// Default: simulator drained.
    std::function<bool(unsigned)> shard_done;
    /// Single-shard only: when non-null and *stop reaches 0, the window in
    /// progress aborts without advancing the clock — reproducing
    /// ProcessGroup::run_all()'s stop-at-last-process-exit cut exactly.
    /// Ignored with more than one shard (a mid-window cut would be
    /// nondeterministic there; multi-shard runs instead finish the round
    /// in which every shard reports done).
    const std::atomic<std::uint32_t>* stop = nullptr;
  };

  /// Counters from the last run(). All fields except `parks` depend only
  /// on sim state and are rerun-identical; `parks` counts futex waits and
  /// is wall-clock-dependent (diagnostic only).
  struct Stats {
    std::uint64_t rounds = 0;        // barrier rounds
    std::uint64_t messages = 0;      // cross-shard messages ingested
    std::uint64_t ingest_skips = 0;  // shard-rounds with zero inbound traffic
    std::uint64_t parks = 0;         // blocking waits after the spin phase
    SimTime final_cap = 0;           // adaptive window cap at the last round
  };

  explicit ShardGroup(unsigned shards);
  ~ShardGroup();
  ShardGroup(const ShardGroup&) = delete;
  ShardGroup& operator=(const ShardGroup&) = delete;

  unsigned count() const { return static_cast<unsigned>(sims_.size()); }
  Simulator& shard(unsigned i) { return *sims_[i]; }
  const Simulator& shard(unsigned i) const { return *sims_[i]; }

  /// The src -> dst handoff channel, created on first use. Channel creation
  /// is build-time wiring: call only before run(), from one thread.
  Channel& channel(unsigned src, unsigned dst);
  bool has_channel(unsigned src, unsigned dst) const {
    return channels_[src][dst] != nullptr;
  }

  /// Drives every shard to completion (all shard_done true) on one worker
  /// thread per shard; shard 0 runs on the calling thread. Throws on a
  /// cross-shard deadlock (every simulator drained, some shard not done)
  /// and rethrows the first exception a shard's events raised.
  void run(const RunOptions& opts);

  /// Barrier rounds executed by the last run().
  std::uint64_t rounds() const { return stats_.rounds; }
  const Stats& stats() const { return stats_; }

 private:
  struct Control;  // per-run shared state (bounds, windows, tree, verdict)

  void worker_(unsigned i, Control& ctl, const RunOptions& opts);
  void ingest_(unsigned i, unsigned parity, Control& ctl,
               std::vector<Msg>& scratch, Stats& local);
  void stage_ready_(unsigned i, Control& ctl);
  void wait_epoch_(unsigned i, std::uint64_t round, Control& ctl,
                   Stats& local);

  std::vector<std::unique_ptr<Simulator>> sims_;
  // channels_[src][dst]; null until wired. Shard counts are small (the
  // matrix is n^2 pointers) and the per-destination scan in ingest_ walks
  // sources in index order, which is what pins the shard_id tie-break.
  std::vector<std::vector<std::unique_ptr<Channel>>> channels_;
  Stats stats_;
};

}  // namespace sctpmpi::sim
