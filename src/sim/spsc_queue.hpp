// Unbounded single-producer / single-consumer queue.
//
// The cross-shard handoff channels need exactly SPSC semantics: each
// (source shard, destination shard) pair owns one queue, the source worker
// pushes during its event window, and the destination worker drains at the
// start of its next window — the barrier protocol guarantees the two sides
// never contend for the same element.
//
// Layout: a linked list of fixed-size segments. The producer writes a slot,
// then publishes it with a release store of the segment's count; the
// consumer acquires the count before reading the slot. A full segment is
// linked to a fresh one through a release-stored `next` pointer. The
// consumer frees drained segments; the producer allocates new ones — one
// allocation per kSegCap elements, amortised to nothing on the hot path.
//
// The consumer caches the last-acquired count (`avail_`): a batch drain via
// consume() pays one acquire load per segment refill instead of one per
// element, and pop() only touches the atomic when its cache runs dry.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <new>
#include <utility>

namespace sctpmpi::sim {

template <typename T, std::size_t kSegCap = 128>
class SpscQueue {
 public:
  SpscQueue() : head_(new Segment), tail_(head_) {}
  ~SpscQueue() {
    T scratch;
    while (pop(scratch)) {
    }
    // All segments behind head_ were already freed by pop(); a fully
    // drained queue holds exactly one (possibly part-consumed) segment,
    // plus any empty successors the producer linked but never filled.
    Segment* s = head_;
    while (s != nullptr) {
      Segment* next = s->next.load(std::memory_order_acquire);
      delete s;
      s = next;
    }
  }
  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  /// Producer side only.
  void push(T v) {
    Segment* s = tail_;
    std::size_t i = s->count.load(std::memory_order_relaxed);
    if (i == kSegCap) {
      Segment* fresh = new Segment;
      s->next.store(fresh, std::memory_order_release);
      tail_ = fresh;
      s = fresh;
      i = 0;
    }
    new (s->slot(i)) T(std::move(v));
    s->count.store(i + 1, std::memory_order_release);
  }

  /// Consumer side only. Returns false when no published element remains.
  bool pop(T& out) {
    if (!refill_()) return false;
    T* p = head_->slot(read_);
    out = std::move(*p);
    p->~T();
    ++read_;
    return true;
  }

  /// Consumer side only: drains up to `max` published elements, invoking
  /// `fn(T&&)` on each in FIFO order. Returns the number consumed. The
  /// per-segment publish count is acquired once per refill, so a batch of
  /// kSegCap elements costs one atomic load instead of kSegCap.
  template <typename F>
  std::size_t consume(std::size_t max, F&& fn) {
    std::size_t n = 0;
    while (n < max && refill_()) {
      Segment* s = head_;
      // min computed on deltas: read_ + (max - n) could wrap for
      // max = SIZE_MAX.
      const std::size_t stop = read_ + std::min(avail_ - read_, max - n);
      while (read_ < stop) {
        T* p = s->slot(read_);
        fn(std::move(*p));
        p->~T();
        ++read_;
        ++n;
      }
    }
    return n;
  }

  /// Consumer side only: true when no published element is waiting.
  bool empty() const {
    const Segment* s = head_;
    if (read_ < s->count.load(std::memory_order_acquire)) return false;
    if (read_ < kSegCap) return true;
    const Segment* next = s->next.load(std::memory_order_acquire);
    return next == nullptr ||
           next->count.load(std::memory_order_acquire) == 0;
  }

 private:
  struct Segment {
    alignas(alignof(T)) unsigned char storage[kSegCap * sizeof(T)];
    std::atomic<std::size_t> count{0};   // producer-published element count
    std::atomic<Segment*> next{nullptr};
    T* slot(std::size_t i) {
      return std::launder(reinterpret_cast<T*>(storage + i * sizeof(T)));
    }
    const T* slot(std::size_t i) const {
      return std::launder(
          reinterpret_cast<const T*>(storage + i * sizeof(T)));
    }
  };

  /// Ensures read_ < avail_ in the head segment, advancing segments and
  /// refreshing the cached publish count as needed. False = queue empty.
  bool refill_() {
    if (read_ < avail_) return true;
    Segment* s = head_;
    avail_ = s->count.load(std::memory_order_acquire);
    if (read_ < avail_) return true;
    if (read_ < kSegCap) return false;  // producer still filling here
    Segment* next = s->next.load(std::memory_order_acquire);
    if (next == nullptr) return false;
    delete s;
    head_ = next;
    read_ = 0;
    avail_ = next->count.load(std::memory_order_acquire);
    return avail_ != 0;
  }

  Segment* head_;          // consumer-owned
  std::size_t read_ = 0;   // consumer-owned: elements consumed in head_
  std::size_t avail_ = 0;  // consumer-owned cache of head_->count
  Segment* tail_;          // producer-owned
};

}  // namespace sctpmpi::sim
