// Deterministic random number generation.
//
// Every source of randomness in the simulation (per-link loss, protocol
// initial tags, workload task sizes) draws from its own Rng stream forked
// from a single root seed, so runs are reproducible and sub-streams are
// independent of each other and of call order elsewhere.
#pragma once

#include <cmath>
#include <cstdint>

namespace sctpmpi::sim {

/// xoshiro256++ generator seeded via splitmix64. Cheap to copy; fork()
/// derives statistically independent sub-streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) word = splitmix64(x);
  }

  /// Next raw 64-bit value.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform_int(std::uint64_t bound) {
    // Bounded rejection-free variant (Lemire); tiny bias acceptable for sim.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Standard-normal variate via Box-Muller. Always consumes exactly two
  /// uniforms and discards the second deviate — no cached spare, so the
  /// stream position after a call never depends on call history (a spare
  /// would make interleaved draws order-sensitive across fork points).
  double normal() {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.141592653589793 * u2);
  }

  /// Log-normally distributed value: exp(N(mu, sigma)). Heavy-tailed; the
  /// service workload uses it for request sizes.
  double lognormal(double mu, double sigma) {
    return std::exp(mu + sigma * normal());
  }

  /// True with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent stream identified by `stream_id`.
  Rng fork(std::uint64_t stream_id) const {
    // Mix the current state with the stream id through splitmix64.
    std::uint64_t x = state_[0] ^ (stream_id * 0x9E3779B97F4A7C15ULL);
    x ^= state_[2] + 0xD1B54A32D192ED03ULL;
    return Rng(splitmix64(x));
  }

 private:
  static std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t v, int k) {
    return (v << k) | (v >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace sctpmpi::sim
