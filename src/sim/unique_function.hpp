// Move-only type-erased `void()` callable with a 48-byte small-buffer
// optimization: the event-queue callback type.
//
// std::function requires copyable targets and (in libstdc++) spills any
// capture larger than two words to the heap, which makes every scheduled
// packet-delivery lambda an allocation. UniqueFunction stores captures up
// to kInlineBytes inline — large enough for a Packet plus a couple of
// pointers — and accepts move-only captures, so hot-path events allocate
// nothing. Larger or throwing-move targets fall back to the heap.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace sctpmpi::sim {

class UniqueFunction {
 public:
  static constexpr std::size_t kInlineBytes = 48;

  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  UniqueFunction(F&& f) {  // NOLINT(runtime/explicit)
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(void*) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  /// Invokes the target; undefined if empty (like std::function but without
  /// the throw — the simulator never stores empty callbacks).
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move into raw dst, end src
    void (*destroy)(void*);
  };

  template <typename D>
  static D* target_(void* s) {
    return std::launder(reinterpret_cast<D*>(s));
  }

  template <typename D>
  struct InlineOps {
    static void invoke(void* s) { (*target_<D>(s))(); }
    static void relocate(void* dst, void* src) {
      D* from = target_<D>(src);
      ::new (dst) D(std::move(*from));
      from->~D();
    }
    static void destroy(void* s) { target_<D>(s)->~D(); }
    static constexpr Ops ops{invoke, relocate, destroy};
  };

  template <typename D>
  struct HeapOps {
    static void invoke(void* s) { (**target_<D*>(s))(); }
    static void relocate(void* dst, void* src) {
      ::new (dst) D*(*target_<D*>(src));
    }
    static void destroy(void* s) { delete *target_<D*>(s); }
    static constexpr Ops ops{invoke, relocate, destroy};
  };

  alignas(void*) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace sctpmpi::sim
