#include "sim/simulator.hpp"

#include <cassert>

namespace sctpmpi::sim {

Simulator::EventId Simulator::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;  // clamp: never schedule into the past
  const std::uint32_t slot = alloc_slot_();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  const Entry e{t, (next_seq_++ << kSlotBits) | slot};
  heap_.push_back(e);
  sift_up_(static_cast<std::uint32_t>(heap_.size() - 1), e);
  return make_id_(s.gen, slot);
}

Simulator::Slot* Simulator::slot_for_(EventId id) {
  const std::uint64_t low = id & 0xFFFFFFFFull;
  if (low == 0 || low > slots_.size()) return nullptr;
  const std::size_t slot = static_cast<std::size_t>(low - 1);
  if (pos_[slot] == kNoPos) return nullptr;  // fired or cancelled
  Slot& s = slots_[slot];
  if (static_cast<std::uint32_t>(id >> 32) != s.gen) return nullptr;  // stale
  return &s;
}

bool Simulator::cancel(EventId id) {
  Slot* s = slot_for_(id);
  if (s == nullptr) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(s - slots_.data());
  remove_at_(pos_[slot]);
  free_slot_(slot);
  return true;
}

bool Simulator::reschedule(EventId id, SimTime t) {
  Slot* s = slot_for_(id);
  if (s == nullptr) return false;
  if (t < now_) t = now_;
  const std::uint32_t slot = static_cast<std::uint32_t>(s - slots_.data());
  const Entry e{t, (next_seq_++ << kSlotBits) | slot};  // fresh FIFO position
  restore_(pos_[slot], e);
  return true;
}

bool Simulator::step() {
  if (heap_.empty()) return false;
  const Entry top = heap_[0];
  Slot& s = slots_[top.slot()];
  Callback cb = std::move(s.cb);  // out of the slot table: the callback may
  pop_root_();                    // grow slots_ by scheduling new events
  free_slot_(top.slot());         // before the callback: self-cancel misses
  now_ = top.time;
  ++processed_;
  cb();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Simulator::run_until(SimTime t) {
  while (!heap_.empty() && heap_[0].time <= t) step();
  if (now_ < t) now_ = t;
}

std::uint32_t Simulator::alloc_slot_() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  assert(slots_.size() < kSlotMask);  // 16M simultaneously pending events
  slots_.emplace_back();
  pos_.push_back(kNoPos);
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::free_slot_(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  pos_[slot] = kNoPos;
  ++s.gen;
  free_slots_.push_back(slot);
}

void Simulator::sift_up_(std::uint32_t pos, const Entry& e) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    if (!before_(e, heap_[parent])) break;
    place_(pos, heap_[parent]);
    pos = parent;
  }
  place_(pos, e);
}

std::uint32_t Simulator::min_child_(std::uint32_t first, std::uint32_t n) {
  if (first + 4 <= n) {  // full sibling group: branchless tournament
    const unsigned __int128 r0 = rank_(heap_[first]);
    const unsigned __int128 r1 = rank_(heap_[first + 1]);
    const unsigned __int128 r2 = rank_(heap_[first + 2]);
    const unsigned __int128 r3 = rank_(heap_[first + 3]);
    const std::uint32_t a = r1 < r0 ? first + 1 : first;
    const unsigned __int128 ra = r1 < r0 ? r1 : r0;
    const std::uint32_t b = r3 < r2 ? first + 3 : first + 2;
    const unsigned __int128 rb = r3 < r2 ? r3 : r2;
    return rb < ra ? b : a;
  }
  std::uint32_t best = first;
  for (std::uint32_t c = first + 1; c < n; ++c) {
    if (before_(heap_[c], heap_[best])) best = c;
  }
  return best;
}

void Simulator::sift_down_(std::uint32_t pos, const Entry& e) {
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint64_t first = 4ull * pos + 1;
    if (first >= n) break;
    const std::uint32_t best = min_child_(static_cast<std::uint32_t>(first), n);
    if (!before_(heap_[best], e)) break;
    place_(pos, heap_[best]);
    pos = best;
  }
  place_(pos, e);
}

void Simulator::restore_(std::uint32_t pos, const Entry& e) {
  if (pos > 0 && before_(e, heap_[(pos - 1) >> 2])) {
    sift_up_(pos, e);
  } else {
    sift_down_(pos, e);
  }
}

void Simulator::remove_at_(std::uint32_t pos) {
  const Entry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry itself
  restore_(pos, last);
}

void Simulator::pop_root_() {
  // Hole percolation: walk the hole down along min-children to a leaf, then
  // float the detached tail entry up from there. The tail entry almost
  // always belongs near the bottom, so this does about one comparison per
  // level instead of sift_down_'s compare-against-pivot at every level.
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  if (n <= 1) {
    heap_.clear();
    return;
  }
  std::uint32_t pos = 0;
  for (;;) {
    const std::uint64_t first = 4ull * pos + 1;
    if (first >= n) break;
    // The grandchild groups of this sibling group are 4 consecutive cache
    // lines starting at entry 4*first+1; pull them in while we compare, so
    // the next level's loads overlap this level's work.
    const std::uint64_t grand = 4ull * first + 1;
    if (grand < n) {
      const unsigned char* g = reinterpret_cast<const unsigned char*>(
          heap_.data() + static_cast<std::size_t>(grand));
      __builtin_prefetch(g);
      __builtin_prefetch(g + 64);
      __builtin_prefetch(g + 128);
      __builtin_prefetch(g + 192);
    }
    const std::uint32_t best = min_child_(static_cast<std::uint32_t>(first), n);
    place_(pos, heap_[best]);
    pos = best;
  }
  const Entry tail = heap_.back();
  heap_.pop_back();
  if (pos != heap_.size()) sift_up_(pos, tail);
}

}  // namespace sctpmpi::sim
