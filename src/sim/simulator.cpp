#include "sim/simulator.hpp"

#include <bit>
#include <cassert>

namespace sctpmpi::sim {

Simulator::EventId Simulator::schedule_at(SimTime t, Callback cb) {
  const std::uint32_t slot = alloc_slot_();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  const std::uint64_t seq = next_seq_++;
  if (t <= now_) {
    // Due this very instant (wakeups, deferred work): skip the heap. The
    // entry outranks nothing pending at now and everything later, so FIFO
    // append preserves the exact (time, seq) firing order — see header.
    s.due_seq32 = static_cast<std::uint32_t>(seq);
    pos_[slot] = kDuePos;
    due_.push_back(Entry{now_, (seq << kSlotBits) | slot});
    ++due_live_;
    return make_id_(s.gen, slot);
  }
  const Entry e{t, (seq << kSlotBits) | slot};
  heap_.push_back(e);
  sift_up_(static_cast<std::uint32_t>(heap_.size() - 1), e);
  return make_id_(s.gen, slot);
}

Simulator::EventId Simulator::schedule_preseq_(SimTime t, std::uint64_t seq,
                                               Callback cb) {
  if (t < now_) t = now_;
  const std::uint32_t slot = alloc_slot_();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  const Entry e{t, (seq << kSlotBits) | slot};
  heap_.push_back(e);
  sift_up_(static_cast<std::uint32_t>(heap_.size() - 1), e);
  return make_id_(s.gen, slot);
}

Simulator::Slot* Simulator::slot_for_(EventId id) {
  const std::uint64_t low = id & 0xFFFFFFFFull;
  if (low == 0 || low > slots_.size()) return nullptr;
  const std::size_t slot = static_cast<std::size_t>(low - 1);
  if (pos_[slot] == kNoPos) return nullptr;  // fired or cancelled
  Slot& s = slots_[slot];
  if (static_cast<std::uint32_t>(id >> 32) != s.gen) return nullptr;  // stale
  return &s;
}

bool Simulator::cancel(EventId id) {
  Slot* s = slot_for_(id);
  if (s == nullptr) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(s - slots_.data());
  if (pos_[slot] == kDuePos) {
    --due_live_;  // queue entry becomes a tombstone, skipped on pop
  } else {
    remove_at_(pos_[slot]);
  }
  free_slot_(slot);
  return true;
}

bool Simulator::reschedule(EventId id, SimTime t) {
  Slot* s = slot_for_(id);
  if (s == nullptr) return false;
  if (t < now_) t = now_;
  const std::uint32_t slot = static_cast<std::uint32_t>(s - slots_.data());
  const std::uint64_t seq = next_seq_++;  // fresh FIFO position
  const Entry e{t, (seq << kSlotBits) | slot};
  if (pos_[slot] == kDuePos) {
    // The old queue entry tombstones (its seq no longer matches); the new
    // placement re-enters the due FIFO or moves to the heap.
    --due_live_;
    if (t <= now_) {
      s->due_seq32 = static_cast<std::uint32_t>(seq);
      due_.push_back(e);
      ++due_live_;
    } else {
      heap_.push_back(e);
      sift_up_(static_cast<std::uint32_t>(heap_.size() - 1), e);
    }
    return true;
  }
  restore_(pos_[slot], e);
  return true;
}

void Simulator::prune_due_() {
  while (!due_.empty()) {
    const Entry& e = due_.front();
    const std::uint32_t slot = e.slot();
    if (pos_[slot] == kDuePos &&
        slots_[slot].due_seq32 ==
            static_cast<std::uint32_t>(e.key >> kSlotBits)) {
      return;  // live
    }
    due_.pop_front();  // tombstone
  }
}

void Simulator::fire_due_() {
  const Entry e = due_.front();
  due_.pop_front();
  --due_live_;
  const std::uint32_t slot = e.slot();
  Slot& s = slots_[slot];
  Callback cb = std::move(s.cb);
  free_slot_(slot);
  // e.time == now_ by construction: the clock does not move.
  ++processed_;
  cb();
}

bool Simulator::step() {
  prune_due_();
  wheel_catch_up_();
  if (!due_.empty() &&
      (heap_.empty() || rank_(due_.front()) < rank_(heap_[0]))) {
    fire_due_();
    return true;
  }
  if (heap_.empty()) return false;
  const Entry top = heap_[0];
  Slot& s = slots_[top.slot()];
  Callback cb = std::move(s.cb);  // out of the slot table: the callback may
  pop_root_();                    // grow slots_ by scheduling new events
  free_slot_(top.slot());         // before the callback: self-cancel misses
  now_ = top.time;
  ++processed_;
  cb();
  return true;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Simulator::run_until_or_stop(SimTime t,
                                  const std::atomic<std::uint32_t>* stop) {
  for (;;) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed) == 0) {
      return;  // stop condition reached: leave the clock at the last event
    }
    prune_due_();
    wheel_catch_up_();
    if (!due_.empty() &&
        (heap_.empty() || rank_(due_.front()) < rank_(heap_[0]))) {
      if (due_.front().time > t) break;
      fire_due_();
      continue;
    }
    if (heap_.empty() || heap_[0].time > t) break;
    const Entry top = heap_[0];
    Slot& s = slots_[top.slot()];
    Callback cb = std::move(s.cb);
    pop_root_();
    free_slot_(top.slot());
    now_ = top.time;
    ++processed_;
    cb();
  }
  if (now_ < t) now_ = t;
}

SimTime Simulator::next_event_bound(SimTime fallback) const {
  SimTime best = kNoBucket;
  if (due_live_ != 0) best = now_;  // live due entries always fire at now
  if (!heap_.empty() && heap_[0].time < best) best = heap_[0].time;
  if (wheel_live_ != 0) {
    const SimTime b = wheel_peek_(nullptr, nullptr);
    if (b < best) best = b;
  }
  return best == kNoBucket ? fallback : best;
}

std::uint32_t Simulator::alloc_slot_() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  assert(slots_.size() < kSlotMask);  // 16M simultaneously pending events
  slots_.emplace_back();
  pos_.push_back(kNoPos);
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Simulator::free_slot_(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.cb.reset();
  pos_[slot] = kNoPos;
  ++s.gen;
  free_slots_.push_back(slot);
}

void Simulator::sift_up_(std::uint32_t pos, const Entry& e) {
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) >> 2;
    if (!before_(e, heap_[parent])) break;
    place_(pos, heap_[parent]);
    pos = parent;
  }
  place_(pos, e);
}

std::uint32_t Simulator::min_child_(std::uint32_t first, std::uint32_t n) {
  if (first + 4 <= n) {  // full sibling group: branchless tournament
    const unsigned __int128 r0 = rank_(heap_[first]);
    const unsigned __int128 r1 = rank_(heap_[first + 1]);
    const unsigned __int128 r2 = rank_(heap_[first + 2]);
    const unsigned __int128 r3 = rank_(heap_[first + 3]);
    const std::uint32_t a = r1 < r0 ? first + 1 : first;
    const unsigned __int128 ra = r1 < r0 ? r1 : r0;
    const std::uint32_t b = r3 < r2 ? first + 3 : first + 2;
    const unsigned __int128 rb = r3 < r2 ? r3 : r2;
    return rb < ra ? b : a;
  }
  std::uint32_t best = first;
  for (std::uint32_t c = first + 1; c < n; ++c) {
    if (before_(heap_[c], heap_[best])) best = c;
  }
  return best;
}

void Simulator::sift_down_(std::uint32_t pos, const Entry& e) {
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint64_t first = 4ull * pos + 1;
    if (first >= n) break;
    const std::uint32_t best = min_child_(static_cast<std::uint32_t>(first), n);
    if (!before_(heap_[best], e)) break;
    place_(pos, heap_[best]);
    pos = best;
  }
  place_(pos, e);
}

void Simulator::restore_(std::uint32_t pos, const Entry& e) {
  if (pos > 0 && before_(e, heap_[(pos - 1) >> 2])) {
    sift_up_(pos, e);
  } else {
    sift_down_(pos, e);
  }
}

void Simulator::remove_at_(std::uint32_t pos) {
  const Entry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) return;  // removed the tail entry itself
  restore_(pos, last);
}

void Simulator::pop_root_() {
  // Hole percolation: walk the hole down along min-children to a leaf, then
  // float the detached tail entry up from there. The tail entry almost
  // always belongs near the bottom, so this does about one comparison per
  // level instead of sift_down_'s compare-against-pivot at every level.
  const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
  if (n <= 1) {
    heap_.clear();
    return;
  }
  std::uint32_t pos = 0;
  for (;;) {
    const std::uint64_t first = 4ull * pos + 1;
    if (first >= n) break;
    // The grandchild groups of this sibling group are 4 consecutive cache
    // lines starting at entry 4*first+1; pull them in while we compare, so
    // the next level's loads overlap this level's work.
    const std::uint64_t grand = 4ull * first + 1;
    if (grand < n) {
      const unsigned char* g = reinterpret_cast<const unsigned char*>(
          heap_.data() + static_cast<std::size_t>(grand));
      __builtin_prefetch(g);
      __builtin_prefetch(g + 64);
      __builtin_prefetch(g + 128);
      __builtin_prefetch(g + 192);
    }
    const std::uint32_t best = min_child_(static_cast<std::uint32_t>(first), n);
    place_(pos, heap_[best]);
    pos = best;
  }
  const Entry tail = heap_.back();
  heap_.pop_back();
  if (pos != heap_.size()) sift_up_(pos, tail);
}

// ---- hierarchical timer wheel ------------------------------------------

void Simulator::timer_arm_(Timer& tm, SimTime t) {
  if (t < now_) {
    t = now_;
    tm.deadline_ = t;
  }
  // Drop the previous placement, wherever it lives. A re-arm consumes
  // exactly one fresh sequence number — the same FIFO accounting as the old
  // heap-only reschedule path, which is what keeps traces byte-identical.
  if (tm.node_.linked()) {
    wheel_unlink_(&tm.node_);
  } else if (tm.heap_id_ != kInvalidEvent) {
    cancel(tm.heap_id_);
    tm.heap_id_ = kInvalidEvent;
  }
  tm.node_.time = t;
  tm.node_.seq = next_seq_++;
  wheel_insert_(&tm.node_);
}

void Simulator::timer_cancel_(Timer& tm) {
  if (tm.node_.linked()) {
    wheel_unlink_(&tm.node_);
  } else if (tm.heap_id_ != kInvalidEvent) {
    cancel(tm.heap_id_);
    tm.heap_id_ = kInvalidEvent;
  }
}

void Simulator::wheel_insert_(WheelNode* n) {
  const std::uint64_t ntick = static_cast<std::uint64_t>(n->time) >> kTickBits;
  // Arms never land behind the wheel cursor while events pop in time order;
  // the clamp covers run_until() advancing the clock past flushed windows.
  const std::uint64_t delta = ntick > wheel_tick_ ? ntick - wheel_tick_ : 0;
  int level = 0;
  while (level + 1 < kWheelLevels &&
         (delta >> (kLevelBits * (level + 1))) != 0) {
    ++level;
  }
  std::uint64_t eff_tick = wheel_tick_ + delta;
  // Wrap guard: with an unaligned cursor, a delta close to the level's full
  // span can round onto the cursor's own slot one revolution ahead — a node
  // there would re-enter the very bucket being flushed and the flush loop
  // would never drain. Park such nodes one level coarser; at the top level,
  // clamp them into the last representable bucket (they re-cascade when
  // they surface, keeping their exact deadline).
  while (level + 1 < kWheelLevels &&
         (eff_tick >> (kLevelBits * level)) -
                 (wheel_tick_ >> (kLevelBits * level)) >=
             kWheelSlots) {
    ++level;
  }
  const int shift = kLevelBits * level;
  const std::uint64_t base = wheel_tick_ >> shift;
  if ((eff_tick >> shift) - base >= kWheelSlots) {
    eff_tick = ((base + kWheelSlots) << shift) - 1;
  }
  const auto slot =
      static_cast<std::uint32_t>((eff_tick >> shift) & (kWheelSlots - 1));
  n->level = static_cast<std::uint8_t>(level);
  n->slot = static_cast<std::uint8_t>(slot);
  WheelNode*& head = buckets_[level][slot];
  n->next = head;
  if (head != nullptr) head->pprev = &n->next;
  head = n;
  n->pprev = &buckets_[level][slot];
  occupancy_[level] |= 1ull << slot;
  ++wheel_live_;
  // This bucket's window start bounds the node's fire time from below.
  const SimTime start = static_cast<SimTime>(((eff_tick >> shift) << shift)
                                             << kTickBits);
  if (start < wheel_bound_) wheel_bound_ = start;
}

void Simulator::wheel_unlink_(WheelNode* n) {
  *n->pprev = n->next;
  if (n->next != nullptr) n->next->pprev = n->pprev;
  if (buckets_[n->level][n->slot] == nullptr) {
    occupancy_[n->level] &= ~(1ull << n->slot);
  }
  n->next = nullptr;
  n->pprev = nullptr;
  --wheel_live_;
  if (wheel_live_ == 0) wheel_bound_ = kNoBucket;
}

SimTime Simulator::wheel_peek_(int* level, std::uint64_t* tick) const {
  SimTime best = kNoBucket;
  for (int j = 0; j < kWheelLevels; ++j) {
    const std::uint64_t occ = occupancy_[j];
    if (occ == 0) continue;
    const std::uint64_t base = wheel_tick_ >> (kLevelBits * j);
    const auto cur = static_cast<int>(base & (kWheelSlots - 1));
    const int d = std::countr_zero(std::rotr(occ, cur));
    // Next occurrence (>= the cursor) of the occupied slot. When the cursor
    // sits inside the bucket (d == 0) its window is already open: treat the
    // start as the cursor itself rather than rounding down into the past.
    std::uint64_t t = (base + static_cast<std::uint64_t>(d))
                      << (kLevelBits * j);
    if (t < wheel_tick_) t = wheel_tick_;
    const SimTime start = static_cast<SimTime>(t << kTickBits);
    if (start < best) {
      best = start;
      if (level != nullptr) *level = j;
      if (tick != nullptr) *tick = t;
    }
  }
  return best;
}

void Simulator::wheel_flush_bucket_(int level, std::uint64_t tick) {
  const auto slot = static_cast<std::uint32_t>(
      (tick >> (kLevelBits * level)) & (kWheelSlots - 1));
  assert(tick >= wheel_tick_);
  wheel_tick_ = tick;
  WheelNode* n = buckets_[level][slot];
  buckets_[level][slot] = nullptr;
  occupancy_[level] &= ~(1ull << slot);
  while (n != nullptr) {
    WheelNode* next = n->next;
    n->next = nullptr;
    n->pprev = nullptr;
    --wheel_live_;
    if (level == 0) {
      // Migrate to the heap under the sequence number allocated at arm
      // time: ties against one-shot events resolve exactly as they did
      // when timers were plain schedule_at() events.
      Timer* tm = n->owner;
      tm->heap_id_ = schedule_preseq_(n->time, n->seq, [tm] { tm->fire_(); });
    } else {
      wheel_insert_(n);  // cascade into a finer level
    }
    n = next;
  }
}

void Simulator::wheel_catch_up_() {
  while (wheel_live_ != 0) {
    // A bucket's window start bounds every deadline inside it from below,
    // so buckets opening after the next candidate event (heap root or a
    // live due-now entry, which fires at now) cannot affect what fires
    // next. The cached wheel_bound_ answers that without scanning.
    SimTime bound = kNoBucket;
    if (due_live_ != 0) bound = now_;
    if (!heap_.empty() && heap_[0].time < bound) bound = heap_[0].time;
    if (bound != kNoBucket && wheel_bound_ > bound) break;
    int level = 0;
    std::uint64_t tick = 0;
    const SimTime start = wheel_peek_(&level, &tick);
    wheel_bound_ = start;  // exact as of this scan
    if (bound != kNoBucket && start > bound) break;
    wheel_flush_bucket_(level, tick);
  }
  if (wheel_live_ == 0) wheel_bound_ = kNoBucket;
}

}  // namespace sctpmpi::sim
