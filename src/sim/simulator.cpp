#include "sim/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace sctpmpi::sim {

Simulator::EventId Simulator::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;  // clamp: never schedule into the past
  EventId id = next_id_++;
  queue_.push(Event{t, id, std::move(cb)});
  pending_.insert(id);
  return id;
}

bool Simulator::cancel(EventId id) {
  if (pending_.erase(id) == 0) return false;  // already fired or cancelled
  // Lazy deletion: remember the id; skip it when popped.
  cancelled_.insert(id);
  return true;
}

bool Simulator::step() {
  while (!queue_.empty()) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(ev.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(ev.time >= now_);
    now_ = ev.time;
    ++processed_;
    pending_.erase(ev.id);
    ev.cb();
    return true;
  }
  return false;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

void Simulator::run_until(SimTime t) {
  while (!queue_.empty()) {
    const Event& top = queue_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      queue_.pop();
      continue;
    }
    if (top.time > t) break;
    step();
  }
  if (now_ < t) now_ = t;
}

}  // namespace sctpmpi::sim
