#include "sim/fiber.hpp"

#if SCTPMPI_HAS_FIBERS

#include <cassert>
#include <cstdint>
#include <cstring>

#if defined(__SANITIZE_ADDRESS__)
#define SCTPMPI_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SCTPMPI_ASAN 1
#endif
#endif

#ifdef SCTPMPI_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save,
                                    const void* stack_bottom,
                                    std::size_t stack_size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save,
                                     const void** stack_bottom_old,
                                     std::size_t* stack_size_old);
}
#endif

// The switch primitive: saves the SysV callee-saved registers and the
// return address on the current stack, parks %rsp through *save_sp, adopts
// `resume_sp`, and returns into whatever that stack was executing. 6 pushes
// + 6 pops + 2 moves + ret — no syscalls, no cache-hostile futex word.
//
// Top-level asm (not a C function with inline asm) because GCC does not
// support naked functions on x86-64 and a compiler-generated prologue would
// corrupt the hand-built frame.
asm(R"(
        .text
        .align 16
        .globl  sctpmpi_fiber_switch
        .hidden sctpmpi_fiber_switch
        .type   sctpmpi_fiber_switch, @function
sctpmpi_fiber_switch:
        pushq   %rbp
        pushq   %rbx
        pushq   %r12
        pushq   %r13
        pushq   %r14
        pushq   %r15
        movq    %rsp, (%rdi)
        movq    %rsi, %rsp
        popq    %r15
        popq    %r14
        popq    %r13
        popq    %r12
        popq    %rbx
        popq    %rbp
        ret
        .size   sctpmpi_fiber_switch, . - sctpmpi_fiber_switch

        .align 16
        .globl  sctpmpi_fiber_trampoline
        .hidden sctpmpi_fiber_trampoline
        .type   sctpmpi_fiber_trampoline, @function
sctpmpi_fiber_trampoline:
        movq    %r12, %rdi      # Fiber* planted in the r12 slot at init
        call    sctpmpi_fiber_main
        ud2                     # fiber_main_ never returns
        .size   sctpmpi_fiber_trampoline, . - sctpmpi_fiber_trampoline
)");

extern "C" {
void sctpmpi_fiber_switch(void** save_sp, void* resume_sp);
void sctpmpi_fiber_trampoline();
void sctpmpi_fiber_main(void* fiber);
}

namespace sctpmpi::sim {

/// First and last code to run on the fiber's stack.
void fiber_main_(Fiber* f) {
#ifdef SCTPMPI_ASAN
  // Complete the inbound switch; learn the scheduler stack's extent so
  // outbound switches can describe their target.
  __sanitizer_finish_switch_fiber(nullptr, &f->sched_stack_bottom_,
                                  &f->sched_stack_size_);
#endif
  f->entry_();
  f->finished_ = true;
#ifdef SCTPMPI_ASAN
  // nullptr fake-stack save: this context is dying, release its fake stack.
  __sanitizer_start_switch_fiber(nullptr, f->sched_stack_bottom_,
                                 f->sched_stack_size_);
#endif
  sctpmpi_fiber_switch(&f->sp_, f->sched_sp_);
  __builtin_unreachable();
}

extern "C" void sctpmpi_fiber_main(void* fiber) {
  fiber_main_(static_cast<Fiber*>(fiber));
}

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : stack_(new std::byte[stack_bytes]),
      stack_size_(stack_bytes),
      entry_(std::move(entry)) {
  // Hand-build the frame sctpmpi_fiber_switch restores on first entry.
  // Layout (low to high): r15 r14 r13 r12 rbx rbp <return address>; the
  // return address is the trampoline, entered with %rsp ≡ 0 (mod 16) as
  // the ABI requires at a call site.
  auto top = reinterpret_cast<std::uintptr_t>(stack_.get()) + stack_size_;
  top &= ~std::uintptr_t{15};
  auto* frame = reinterpret_cast<std::uintptr_t*>(top - 72);
  frame[0] = 0;                                          // r15
  frame[1] = 0;                                          // r14
  frame[2] = 0;                                          // r13
  frame[3] = reinterpret_cast<std::uintptr_t>(this);     // r12 -> %rdi
  frame[4] = 0;                                          // rbx
  frame[5] = 0;                                          // rbp
  frame[6] = reinterpret_cast<std::uintptr_t>(&sctpmpi_fiber_trampoline);
  sp_ = frame;
}

Fiber::~Fiber() {
  // A live (started, unfinished) fiber must be driven to completion by its
  // owner before destruction; Process's abandon protocol guarantees it.
  assert(sp_ == nullptr || finished_ || sched_sp_ == nullptr);
}

void Fiber::switch_in() {
  assert(!finished_);
#ifdef SCTPMPI_ASAN
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, stack_.get(), stack_size_);
#endif
  sctpmpi_fiber_switch(&sched_sp_, sp_);
#ifdef SCTPMPI_ASAN
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
}

void Fiber::switch_out() {
#ifdef SCTPMPI_ASAN
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, sched_stack_bottom_,
                                 sched_stack_size_);
#endif
  sctpmpi_fiber_switch(&sp_, sched_sp_);
#ifdef SCTPMPI_ASAN
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
}

}  // namespace sctpmpi::sim

#endif  // SCTPMPI_HAS_FIBERS
