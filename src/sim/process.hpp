// Cooperative simulated processes (one per MPI rank).
//
// Each Process runs its body on its own stack, but execution is strictly
// sequential: the simulator and the process bodies hand control back and
// forth, so at any instant exactly one of them is running. Blocking
// operations inside a process (compute phases, waiting for socket
// readiness) suspend the process and return control to the event loop;
// events later wake it at the current virtual time. The result is
// deterministic, virtual-time-accurate execution of ordinary blocking code.
//
// On x86-64 the body's stack is a sim::Fiber and the hand-off is a ~20
// instruction user-space context switch. Elsewhere each body runs on a
// dedicated OS thread gated by a pair of binary semaphores — semantically
// identical (the same single-runner hand-off), just paying two futex
// round-trips per suspension.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/fiber.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

#if !SCTPMPI_HAS_FIBERS
#include <semaphore>
#include <thread>
#endif

namespace sctpmpi::sim {

/// Thrown inside a process body when its owner is destroyed mid-run; unwinds
/// the body stack so the owning Process can reclaim it.
struct AbandonedError {};

class Process {
 public:
  /// CPU debt beyond this is flushed as a sleep at the next suspension point.
  static constexpr SimTime kChargeFlushThreshold = 20 * kMicrosecond;

  Process(Simulator& sim, std::string name, std::function<void(Process&)> body);
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  /// Schedules the first activation of the body at the current sim time.
  void start();

  bool finished() const { return state_ == State::Finished; }
  bool started() const { return state_ != State::Created; }
  const std::string& name() const { return name_; }
  Simulator& sim() { return sim_; }

  /// Rethrows any exception that escaped the body. Call after finished().
  void rethrow_error() const {
    if (error_) std::rethrow_exception(error_);
  }

  // ---- simulator/event side -------------------------------------------

  /// Wakes a suspended process: it resumes at the current virtual time.
  /// No-op if the process is not suspended (wakeups never get lost because
  /// suspension points re-check their predicates).
  void wake();

  // ---- process-body side ----------------------------------------------

  /// Suspends until wake(). Accumulated CPU charge is slept off first.
  void suspend();

  /// Advances this process's virtual time by `dt` (a compute phase).
  void sleep_for(SimTime dt);

  /// Accrues modeled CPU cost (syscall/stack overhead). Cheap; actual
  /// sleeping is deferred until the debt crosses kChargeFlushThreshold or
  /// the process suspends.
  void charge(SimTime cpu) {
    charge_debt_ += cpu;
    if (charge_debt_ >= kChargeFlushThreshold) flush_charge();
  }

  /// Sleeps off any accumulated CPU debt immediately.
  void flush_charge();

 private:
  enum class State { Created, Runnable, Running, Suspended, Finished };

  friend class ProcessGroup;

  void body_main_();
  /// Simulator side: transfers control to the process stack and waits for
  /// it to suspend or finish.
  void resume_();
  /// Process side: transfers control back to the simulator stack.
  void yield_();

  Simulator& sim_;
  std::string name_;
  std::function<void(Process&)> body_;
#if SCTPMPI_HAS_FIBERS
  std::unique_ptr<Fiber> fiber_;
#else
  std::thread thread_;
  std::binary_semaphore to_proc_{0};
  std::binary_semaphore to_sched_{0};
#endif
  State state_ = State::Created;
  SimTime charge_debt_ = 0;
  std::uint64_t epoch_ = 0;  // bumped on every resume; guards stale events
  bool abandoned_ = false;
  std::exception_ptr error_;
};

/// Convenience owner of a set of processes (an MPI job): starts them all and
/// runs the simulator until every process finishes.
class ProcessGroup {
 public:
  explicit ProcessGroup(Simulator& sim) : sim_(sim) {}

  Process& spawn(std::string name, std::function<void(Process&)> body) {
    procs_.push_back(
        std::make_unique<Process>(sim_, std::move(name), std::move(body)));
    return *procs_.back();
  }

  /// Starts all processes and drives the simulator until they finish.
  /// Throws the first process error encountered, if any.
  void run_all();

  std::size_t size() const { return procs_.size(); }
  Process& at(std::size_t i) { return *procs_.at(i); }

 private:
  Simulator& sim_;
  std::vector<std::unique_ptr<Process>> procs_;
};

/// FIFO wait queue: processes block on it, events notify it. Always pair
/// with an external predicate loop (`while (!ready) queue.wait(self);`)
/// because wakeups may be spurious (notify_all wakes everyone).
class WaitQueue {
 public:
  void wait(Process& p) {
    waiters_.push_back(&p);
    p.suspend();
  }

  void notify_all() {
    std::vector<Process*> ws;
    ws.swap(waiters_);
    for (Process* p : ws) p->wake();
  }

  void notify_one() {
    if (waiters_.empty()) return;
    Process* p = waiters_.front();
    waiters_.erase(waiters_.begin());
    p->wake();
  }

  bool empty() const { return waiters_.empty(); }

 private:
  std::vector<Process*> waiters_;
};

}  // namespace sctpmpi::sim
