#include "sim/shard.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/shard_id.hpp"

namespace sctpmpi::sim {

namespace {

enum class Verdict : int { kRunning, kDone, kDeadlock, kError };

// Spin budget before parking on the epoch futex. Zeroed when the machine
// has fewer cores than shards: spinning there only steals cycles from the
// worker we are waiting for.
constexpr int kSpinIters = 4096;
// Spin iterations between opportunistic channel drains while waiting.
constexpr int kSpinStageMask = 255;
// Adaptive window cap: widen when a round executed fewer than kSparse
// events per shard, shrink when it executed more than kDense, never beyond
// kCapGrowth times the base cap.
constexpr std::uint64_t kSparseEventsPerShard = 32;
constexpr std::uint64_t kDenseEventsPerShard = 512;
constexpr SimTime kCapGrowth = 64;

inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

inline SimTime sat_add(SimTime a, SimTime b) {
  if (a == ShardGroup::kNoEvent || b == ShardGroup::kNoEvent) {
    return ShardGroup::kNoEvent;
  }
  return a > ShardGroup::kNoEvent - b ? ShardGroup::kNoEvent : a + b;
}

}  // namespace

ShardGroup::ShardGroup(unsigned shards) {
  if (shards == 0) shards = 1;
  sims_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  channels_.resize(shards);
  for (auto& row : channels_) row.resize(shards);
}

ShardGroup::~ShardGroup() = default;

ShardGroup::Channel& ShardGroup::channel(unsigned src, unsigned dst) {
  auto& slot = channels_[src][dst];
  if (slot == nullptr) slot = std::make_unique<Channel>(src, dst);
  return *slot;
}

struct ShardGroup::Control {
  // One interior node of the combining tree. Each arriving child writes
  // its contribution into its own slot (index = child parity within the
  // pair) and then increments cnt; the second arriver's acq_rel RMW reads
  // from the first's, so the sibling slot is visible when combined. Slots
  // and counters are double-buffered by round parity — a parity is reused
  // only two barriers later, after everyone passed the one in between.
  struct alignas(64) TreeNode {
    std::atomic<std::uint32_t> cnt[2]{};
    SimTime min_v[2][2];
    char done_v[2][2];
  };

  Control(unsigned shards, const RunOptions& o, ShardGroup& g)
      : n(shards),
        opts(o),
        bounds(shards, kNoEvent),
        exec(shards, 0),
        done(shards, 0),
        window(shards, 0),
        beff(shards, kNoEvent),
        in(shards),
        out(shards) {
    // Wiring snapshot: flat channel list plus per-shard in/out lists. The
    // in-lists ascend by source shard, which pins the ingest tie-break.
    for (unsigned src = 0; src < n; ++src) {
      for (unsigned dst = 0; dst < n; ++dst) {
        Channel* c = g.channels_[src][dst].get();
        if (c == nullptr) continue;
        live.push_back(c);
        out[src].push_back(c);
        in[dst].push_back(c);
        // A fresh run starts with no round in flight: both parity slots
        // name the current cumulative count (nothing pending) and no
        // round minimum.
        c->pub_count_[0] = c->pub_count_[1] = c->pushed_;
        c->pub_min_[0] = c->pub_min_[1] = kNoEvent;
        c->round_min_ = kNoEvent;
      }
    }
    // Per-pair latency bounds: the caller's matrix, or the scalar
    // lookahead on every wired pair; then the min-plus closure, so a
    // multi-hop path through idle shards still bounds what can arrive.
    closure.assign(n, std::vector<SimTime>(n, kNoEvent));
    const bool have_matrix = opts.lookahead_matrix.size() == n;
    for (const Channel* c : live) {
      SimTime l = have_matrix ? opts.lookahead_matrix[c->src_][c->dst_]
                              : opts.lookahead;
      if (l < 1) l = 1;
      closure[c->src_][c->dst_] = std::min(closure[c->src_][c->dst_], l);
    }
    for (unsigned k = 0; k < n; ++k) {
      for (unsigned j = 0; j < n; ++j) {
        if (closure[j][k] == kNoEvent) continue;
        for (unsigned i = 0; i < n; ++i) {
          closure[j][i] = std::min(closure[j][i],
                                   sat_add(closure[j][k], closure[k][i]));
        }
      }
    }
    cap_base = std::max<SimTime>(1, std::min(opts.lookahead,
                                             opts.max_window));
    cap_max = cap_base > kNoEvent / kCapGrowth ? kNoEvent
                                               : cap_base * kCapGrowth;
    cap = cap_base;
    // Tree shape: floor(width/2) nodes per level, an odd straggler passes
    // through to the next level unpaired.
    std::size_t nodes = 0;
    for (unsigned w = n; w > 1; w = (w + 1) / 2) nodes += w / 2;
    tree = std::vector<TreeNode>(nodes);
    const unsigned hw = std::thread::hardware_concurrency();
    spin_limit = (n > 1 && hw >= n) ? kSpinIters : 0;
  }

  /// Tree-combining arrival. Returns true when this worker was the last
  /// arrival overall; the caller must then run reduce_step and advance the
  /// epoch. Combines (min next-event bound, all-done) on the way up.
  bool arrive(unsigned i, std::uint64_t round) {
    const unsigned p = static_cast<unsigned>(round & 1);
    SimTime m = bounds[i];
    char dn = done[i];
    unsigned my = i;
    unsigned width = n;
    std::size_t base = 0;
    while (width > 1) {
      const unsigned parent_width = (width + 1) / 2;
      if ((my & 1u) == 0 && my + 1 == width) {
        // Odd width: no sibling this level; carry straight up.
      } else {
        TreeNode& node = tree[base + my / 2];
        const unsigned child = my & 1u;
        node.min_v[p][child] = m;
        node.done_v[p][child] = dn;
        if (node.cnt[p].fetch_add(1, std::memory_order_acq_rel) == 0) {
          return false;  // first arriver; the sibling's path carries on up
        }
        node.cnt[p].store(0, std::memory_order_relaxed);
        const unsigned other = child ^ 1u;
        m = std::min(m, node.min_v[p][other]);
        dn = static_cast<char>(dn & node.done_v[p][other]);
      }
      base += width / 2;
      my /= 2;
      width = parent_width;
    }
    reduce_step(m, dn != 0, round);
    epoch.store(round + 1, std::memory_order_release);
    epoch.notify_all();
    return true;
  }

  /// Runs once per round on whichever worker arrives last, while every
  /// other worker waits on the epoch.
  void reduce_step(SimTime m, bool all_done, std::uint64_t round) noexcept {
    if (error.load(std::memory_order_relaxed)) {
      verdict = Verdict::kError;
      return;
    }
    const unsigned p = static_cast<unsigned>(round & 1);
    // Fold the in-flight channel messages into the per-shard bounds:
    // b'_j = min(next_event_bound_j, earliest deliver time pending into j).
    // Pending = published-count delta between this barrier's snapshot and
    // the previous one (exactly what the consumer has not yet ingested).
    for (unsigned j = 0; j < n; ++j) beff[j] = bounds[j];
    bool any_traffic = false;
    for (const Channel* c : live) {
      if (c->pub_count_[p] != c->pub_count_[p ^ 1]) {
        any_traffic = true;
        beff[c->dst_] = std::min(beff[c->dst_], c->pub_min_[p]);
        m = std::min(m, c->pub_min_[p]);
      }
    }
    if (all_done && !any_traffic) {
      verdict = Verdict::kDone;
      return;
    }
    if (m == kNoEvent) {
      // Every simulator drained, nothing in flight, yet some shard is not
      // done: nothing can ever fire again.
      verdict = Verdict::kDeadlock;
      return;
    }
    if (opts.adaptive_window) {
      std::uint64_t exec_total = 0;
      for (unsigned j = 0; j < n; ++j) exec_total += exec[j];
      const std::uint64_t delta = exec_total - prev_exec_total;
      prev_exec_total = exec_total;
      if (delta < kSparseEventsPerShard * n) {
        cap = std::min(cap_max, cap * 2);
      } else if (delta > kDenseEventsPerShard * n && cap > cap_base) {
        cap = std::max(cap_base, cap / 2);
      }
    }
    const SimTime wcap = sat_add(m, cap);
    for (unsigned i = 0; i < n; ++i) {
      SimTime w = wcap;
      for (unsigned j = 0; j < n; ++j) {
        // The j == i term is the echo bound: closure[i][i] is the min-plus
        // cost of the cheapest cross-shard cycle through i, so a message i
        // sends at beff[i] can come back no earlier than beff[i] +
        // closure[i][i]. Without it a shard could run cap-deep past its own
        // request and receive the reply in its past.
        w = std::min(w, sat_add(beff[j], closure[j][i]));
      }
      // w > m always: beff[j] + L >= m + 1 and wcap >= m + 1, so the
      // globally earliest event is inside some shard's window.
      //
      // Monotone clamp: a window may never retreat behind one already
      // granted — shard i has possibly executed to window[i] - 1, and a
      // smaller grant (beff dropping when a message lands, or the adaptive
      // cap shrinking) would let the next round's arrivals undercut that
      // frontier. Safe because round-r+1 arrivals from j are >= W_j(r) +
      // L[j][i] >= W_i(r): the window vector satisfies the Lipschitz
      // property W_i <= W_j + closure[j][i] by construction.
      if (w > window[i]) window[i] = w;
    }
    ++rounds;
  }

  void record_error() {
    const std::lock_guard<std::mutex> lk(mu);
    if (!eptr) eptr = std::current_exception();
    error.store(true, std::memory_order_relaxed);
  }

  const unsigned n;
  const RunOptions& opts;
  // Per-shard inputs, written by each worker before its barrier arrival
  // and read by the reducer after it (plain stores; the tree's RMW chain
  // and the epoch release/acquire provide the happens-before edges).
  std::vector<SimTime> bounds;
  std::vector<std::uint64_t> exec;  // cumulative executed events
  std::vector<char> done;
  // Reduce outputs, read by every worker after the epoch advance.
  std::vector<SimTime> window;
  Verdict verdict = Verdict::kRunning;
  // Reducer-private state.
  std::vector<SimTime> beff;
  std::uint64_t prev_exec_total = 0;
  std::uint64_t rounds = 0;
  SimTime cap = 0;
  SimTime cap_base = 0;
  SimTime cap_max = 0;
  // Static wiring/latency snapshot.
  std::vector<std::vector<SimTime>> closure;
  std::vector<Channel*> live;
  std::vector<std::vector<Channel*>> in;   // per destination, src ascending
  std::vector<std::vector<Channel*>> out;  // per source
  int spin_limit = 0;
  // Error funnel.
  std::atomic<bool> error{false};
  std::mutex mu;
  std::exception_ptr eptr;
  // The fused barrier: arrival tree + sense/epoch counter.
  std::vector<TreeNode> tree;
  alignas(64) std::atomic<std::uint64_t> epoch{0};
};

void ShardGroup::stage_ready_(unsigned i, Control& ctl) {
  // Opportunistic overlap while waiting: move whatever the producers have
  // already made visible into the consumer-private staging buffer. The
  // SPSC pop side is safe against a concurrently pushing producer, and
  // ingest_ still honours the snapshot counts, so this never changes which
  // round a message lands in — only when its cache lines get pulled.
  for (Channel* ch : ctl.in[i]) {
    ch->q_.consume(SIZE_MAX, [ch](Msg&& m) {
      ch->staged_.push_back(std::move(m));
    });
  }
}

void ShardGroup::wait_epoch_(unsigned i, std::uint64_t round, Control& ctl,
                             Stats& local) {
  const std::uint64_t target = round + 1;
  if (ctl.epoch.load(std::memory_order_acquire) >= target) return;
  for (int s = 0; s < ctl.spin_limit; ++s) {
    cpu_pause();
    if ((s & kSpinStageMask) == kSpinStageMask) stage_ready_(i, ctl);
    if (ctl.epoch.load(std::memory_order_acquire) >= target) return;
  }
  stage_ready_(i, ctl);
  std::uint64_t e = ctl.epoch.load(std::memory_order_acquire);
  while (e < target) {
    ++local.parks;
    ctl.epoch.wait(e, std::memory_order_acquire);
    e = ctl.epoch.load(std::memory_order_acquire);
  }
}

void ShardGroup::ingest_(unsigned i, unsigned parity, Control& ctl,
                         std::vector<Msg>& scratch, Stats& local) {
  scratch.clear();
  for (Channel* ch : ctl.in[i]) {
    const std::uint64_t target = ch->pub_count_[parity];
    std::uint64_t need = target - ch->consumed_;
    if (need == 0) continue;  // zero-traffic channel: not even a queue touch
    ch->consumed_ = target;
    local.messages += need;
    while (need != 0 && !ch->staged_.empty()) {
      scratch.push_back(std::move(ch->staged_.front()));
      ch->staged_.pop_front();
      --need;
    }
    if (need != 0) {
      const std::size_t got =
          ch->q_.consume(static_cast<std::size_t>(need), [&](Msg&& m) {
            scratch.push_back(std::move(m));
          });
      // The producer pushed target elements before publishing the count,
      // and the barrier ordered those pushes before this drain.
      assert(got == need);
      (void)got;
    }
  }
  if (scratch.empty()) {
    ++local.ingest_skips;
    return;
  }
  // Gather order is (source shard, seq); a stable sort by time alone turns
  // that into exact (time, shard_id, seq) order. Scheduling in that order
  // assigns destination-simulator sequence numbers deterministically.
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const Msg& a, const Msg& b) { return a.time < b.time; });
  for (Msg& m : scratch) {
    // The window invariant (shard.hpp) guarantees m.time >= the consumer's
    // frontier; schedule_at would otherwise silently clamp into the past.
    assert(m.time > sims_[i]->now());
    sims_[i]->schedule_at(m.time, std::move(m.cb));
  }
}

void ShardGroup::worker_(unsigned i, Control& ctl, const RunOptions& opts) {
  const ShardIdScope scope(static_cast<int>(i));
  Simulator& sim = *sims_[i];
  std::vector<Msg> scratch;
  const std::atomic<std::uint32_t>* stop = count() == 1 ? opts.stop : nullptr;
  Stats local;
  for (std::uint64_t round = 0;; ++round) {
    const unsigned p = static_cast<unsigned>(round & 1);
    try {
      // Publish: snapshot each outbound channel's cumulative push count
      // and this round's minimum deliver time into the parity slot, then
      // post our own bound and done flag. Plain stores — the barrier
      // arrival below is what makes them visible.
      for (Channel* ch : ctl.out[i]) {
        ch->pub_count_[p] = ch->pushed_;
        ch->pub_min_[p] = ch->round_min_;
        ch->round_min_ = kNoEvent;
      }
      ctl.bounds[i] = sim.next_event_bound(kNoEvent);
      ctl.exec[i] = sim.events_processed();
      // An exhausted stop counter is completion in itself: run_until's
      // early-out leaves the cut shard's leftover events pending forever,
      // so its done-predicate (e.g. "simulator drained") may never hold.
      const bool stopped =
          stop != nullptr && stop->load(std::memory_order_relaxed) == 0;
      ctl.done[i] = stopped || (opts.shard_done ? opts.shard_done(i)
                                                : sim.empty())
                        ? 1
                        : 0;
    } catch (...) {
      ctl.record_error();
    }
    if (!ctl.arrive(i, round)) wait_epoch_(i, round, ctl, local);
    if (ctl.verdict != Verdict::kRunning) break;
    try {
      ingest_(i, p, ctl, scratch, local);
      sim.run_until_or_stop(ctl.window[i] - 1, stop);
    } catch (...) {
      ctl.record_error();
    }
  }
  const std::lock_guard<std::mutex> lk(ctl.mu);
  stats_.messages += local.messages;
  stats_.ingest_skips += local.ingest_skips;
  stats_.parks += local.parks;
}

void ShardGroup::run(const RunOptions& opts) {
  const unsigned n = count();
  stats_ = Stats{};
  Control ctl(n, opts, *this);
  if (n == 1) {
    worker_(0, ctl, opts);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (unsigned i = 1; i < n; ++i) {
      threads.emplace_back([this, i, &ctl, &opts] { worker_(i, ctl, opts); });
    }
    worker_(0, ctl, opts);
    for (auto& t : threads) t.join();
  }
  stats_.rounds = ctl.rounds;
  stats_.final_cap = ctl.cap;
  if (ctl.eptr) std::rethrow_exception(ctl.eptr);
  if (ctl.verdict == Verdict::kDeadlock) {
    throw std::runtime_error(
        "ShardGroup: deadlock — every shard's simulator drained with "
        "unfinished work");
  }
}

}  // namespace sctpmpi::sim
