#include "sim/shard.hpp"

#include <algorithm>
#include <barrier>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/shard_id.hpp"

namespace sctpmpi::sim {

ShardGroup::ShardGroup(unsigned shards) {
  if (shards == 0) shards = 1;
  sims_.reserve(shards);
  for (unsigned i = 0; i < shards; ++i) {
    sims_.push_back(std::make_unique<Simulator>());
  }
  channels_.resize(shards);
  for (auto& row : channels_) row.resize(shards);
}

ShardGroup::~ShardGroup() = default;

ShardGroup::Channel& ShardGroup::channel(unsigned src, unsigned dst) {
  auto& slot = channels_[src][dst];
  if (slot == nullptr) slot = std::make_unique<Channel>(src, dst);
  return *slot;
}

namespace {
enum class Verdict : int { kRunning, kDone, kDeadlock, kError };
}  // namespace

struct ShardGroup::Control {
  // std::barrier requires a nothrow-invocable completion; std::function is
  // not, so the completion is this tiny pointer-carrying functor.
  struct ReduceFn {
    Control* c;
    void operator()() const noexcept;
  };

  explicit Control(unsigned n, const RunOptions& o)
      : bounds(n, kNoEvent),
        done(n, 0),
        opts(o),
        reduce(n, ReduceFn{this}),
        publish(n) {}

  /// Runs once per round on whichever worker arrives last at the reduce
  /// barrier, while every other worker is blocked in it.
  void reduce_step() noexcept {
    if (error.load(std::memory_order_relaxed)) {
      verdict = Verdict::kError;
      return;
    }
    bool all_done = true;
    SimTime m = kNoEvent;
    for (std::size_t i = 0; i < bounds.size(); ++i) {
      all_done = all_done && done[i] != 0;
      m = std::min(m, bounds[i]);
    }
    if (all_done) {
      verdict = Verdict::kDone;
      return;
    }
    if (m == kNoEvent) {
      // Every simulator drained yet some shard is not done: nothing can
      // ever fire again.
      verdict = Verdict::kDeadlock;
      return;
    }
    const SimTime window = std::min(opts.lookahead, opts.max_window);
    window_end = m > kNoEvent - window ? kNoEvent : m + window;
    ++rounds;
  }

  void record_error() {
    const std::lock_guard<std::mutex> lk(mu);
    if (!eptr) eptr = std::current_exception();
    error.store(true, std::memory_order_relaxed);
  }

  std::vector<SimTime> bounds;
  std::vector<char> done;
  const RunOptions& opts;
  SimTime window_end = 0;
  Verdict verdict = Verdict::kRunning;
  std::uint64_t rounds = 0;
  std::atomic<bool> error{false};
  std::mutex mu;
  std::exception_ptr eptr;
  std::barrier<ReduceFn> reduce;
  std::barrier<> publish;
};

void ShardGroup::Control::ReduceFn::operator()() const noexcept {
  c->reduce_step();
}

void ShardGroup::ingest_(unsigned i, std::vector<Msg>& scratch) {
  scratch.clear();
  for (unsigned src = 0; src < count(); ++src) {
    Channel* ch = channels_[src][i].get();
    if (ch == nullptr) continue;
    Msg m;
    while (ch->q_.pop(m)) scratch.push_back(std::move(m));
  }
  // Gather order is (source shard, seq); a stable sort by time alone turns
  // that into exact (time, shard_id, seq) order. Scheduling in that order
  // assigns destination-simulator sequence numbers deterministically.
  std::stable_sort(scratch.begin(), scratch.end(),
                   [](const Msg& a, const Msg& b) { return a.time < b.time; });
  for (Msg& m : scratch) {
    sims_[i]->schedule_at(m.time, std::move(m.cb));
  }
}

void ShardGroup::worker_(unsigned i, Control& ctl, const RunOptions& opts) {
  const ShardIdScope scope(static_cast<int>(i));
  Simulator& sim = *sims_[i];
  std::vector<Msg> scratch;
  const std::atomic<std::uint32_t>* stop = count() == 1 ? opts.stop : nullptr;
  for (;;) {
    try {
      ingest_(i, scratch);
      ctl.bounds[i] = sim.next_event_bound(kNoEvent);
      // An exhausted stop counter is completion in itself: run_until's
      // early-out leaves the cut shard's leftover events pending forever,
      // so its done-predicate (e.g. "simulator drained") may never hold.
      const bool stopped =
          stop != nullptr && stop->load(std::memory_order_relaxed) == 0;
      ctl.done[i] = stopped || (opts.shard_done ? opts.shard_done(i)
                                                : sim.empty())
                        ? 1
                        : 0;
    } catch (...) {
      ctl.record_error();
    }
    ctl.reduce.arrive_and_wait();
    if (ctl.verdict != Verdict::kRunning) break;
    try {
      sim.run_until_or_stop(ctl.window_end - 1, stop);
    } catch (...) {
      ctl.record_error();
    }
    ctl.publish.arrive_and_wait();
  }
}

void ShardGroup::run(const RunOptions& opts) {
  const unsigned n = count();
  Control ctl(n, opts);
  if (n == 1) {
    worker_(0, ctl, opts);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (unsigned i = 1; i < n; ++i) {
      threads.emplace_back([this, i, &ctl, &opts] { worker_(i, ctl, opts); });
    }
    worker_(0, ctl, opts);
    for (auto& t : threads) t.join();
  }
  rounds_ = ctl.rounds;
  if (ctl.eptr) std::rethrow_exception(ctl.eptr);
  if (ctl.verdict == Verdict::kDeadlock) {
    throw std::runtime_error(
        "ShardGroup: deadlock — every shard's simulator drained with "
        "unfinished work");
  }
}

}  // namespace sctpmpi::sim
