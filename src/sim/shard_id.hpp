// Thread-local shard identity.
//
// Sharded runs (sim::ShardGroup) drive each sim::Simulator from a dedicated
// worker thread; that thread announces which shard it is via a thread-local
// id so lower layers (buffer pools, allocators) can assert that memory never
// crosses shards outside the sanctioned handoff path. Unsharded threads
// (tests, benches, the classic single-threaded driver) read kUnsharded and
// every ownership check degrades to a no-op.
#pragma once

namespace sctpmpi::sim {

inline constexpr int kUnsharded = -1;
/// Sentinel owner id for memory in flight between shards (set by the
/// handoff producer, replaced by the consumer's shard id on adoption).
inline constexpr int kShardInTransit = -2;

namespace detail {
inline thread_local int t_shard_id = kUnsharded;
}  // namespace detail

/// Shard id of the worker thread driving the current simulator, or
/// kUnsharded on threads that are not shard workers.
inline int current_shard() { return detail::t_shard_id; }

/// RAII: marks the current thread as shard `id` for its lifetime.
class ShardIdScope {
 public:
  explicit ShardIdScope(int id) : prev_(detail::t_shard_id) {
    detail::t_shard_id = id;
  }
  ~ShardIdScope() { detail::t_shard_id = prev_; }
  ShardIdScope(const ShardIdScope&) = delete;
  ShardIdScope& operator=(const ShardIdScope&) = delete;

 private:
  int prev_;
};

}  // namespace sctpmpi::sim
