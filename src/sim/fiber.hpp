// Stackful fibers: the execution contexts under sim::Process.
//
// A simulated rank's body is ordinary blocking code, so it needs its own
// stack; but the old one-OS-thread-per-rank hand-off spent ~30% of e2e
// wall-clock in futex/sched_yield churn inside binary_semaphore, twice per
// suspension. A fiber switch is ~20 instructions in user space: save the
// callee-saved registers, swap %rsp, restore. Nothing else changes — the
// scheduler and at most one fiber still run strictly alternately on a
// single OS thread, so determinism is exactly what it was.
//
// x86-64 SysV only; other architectures fall back to the thread-based
// Process (see process.hpp). AddressSanitizer is supported through the
// __sanitizer_*_switch_fiber annotations so the conformance-asan lane can
// track stack switches instead of reporting wild stack frames.
#pragma once

#if defined(__x86_64__) && !defined(SCTPMPI_NO_FIBERS)
#define SCTPMPI_HAS_FIBERS 1

#include <cstddef>
#include <functional>
#include <memory>

namespace sctpmpi::sim {

class Fiber {
 public:
  /// Rank bodies allocate their working sets on the heap (std::vector), so
  /// the stack only carries call frames + printf/gtest scratch. 1 MiB is
  /// ~10x the deepest observed use and stays cheap because untouched pages
  /// are never committed.
  static constexpr std::size_t kDefaultStackBytes = 1u << 20;

  /// `entry` runs on the fiber's stack at the first switch_in(). When it
  /// returns, the fiber becomes finished() and control transfers back to
  /// the last switch_in() caller for the final time.
  explicit Fiber(std::function<void()> entry,
                 std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Scheduler side: transfers control into the fiber. Returns when the
  /// fiber calls switch_out() or its entry returns. Must not be called on
  /// a finished fiber.
  void switch_in();

  /// Fiber side: transfers control back to the switch_in() caller.
  void switch_out();

  bool finished() const { return finished_; }

 private:
  friend void fiber_main_(Fiber* f);

  void* sp_ = nullptr;        // fiber's saved stack pointer when parked
  void* sched_sp_ = nullptr;  // caller's saved stack pointer while running
  std::unique_ptr<std::byte[]> stack_;
  std::size_t stack_size_ = 0;
  std::function<void()> entry_;
  bool finished_ = false;
  // AddressSanitizer fake-stack bookkeeping for the scheduler context.
  const void* sched_stack_bottom_ = nullptr;
  std::size_t sched_stack_size_ = 0;
};

}  // namespace sctpmpi::sim

#else
#define SCTPMPI_HAS_FIBERS 0
#endif
