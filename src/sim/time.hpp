// Virtual time for the discrete-event simulator.
//
// All simulated clocks are 64-bit signed nanosecond counts starting at zero.
// Helpers convert to and from human units; benchmarks report seconds via
// to_seconds().
#pragma once

#include <cstdint>

namespace sctpmpi::sim {

/// Virtual time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Converts fractional seconds to SimTime, rounding to nearest nanosecond.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + 0.5);
}

/// Converts SimTime to fractional seconds.
constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

constexpr SimTime micros(std::int64_t us) { return us * kMicrosecond; }
constexpr SimTime millis(std::int64_t ms) { return ms * kMillisecond; }
constexpr SimTime seconds(std::int64_t s) { return s * kSecond; }

}  // namespace sctpmpi::sim
