// Discrete-event simulator core: a cancellable event queue over SimTime.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which together with the single-threaded hand-off process model makes every
// simulation run fully deterministic.
//
// The queue is an indexed 4-ary min-heap keyed by (time, seq): heap entries
// are 24 bytes and never carry the callback, which lives in a slot table
// addressed by a generation-checked EventId. cancel() and reschedule() find
// the entry through the slot's heap position and fix the heap in place in
// O(log n) — no tombstones, so cancelled events release their slot and
// callback immediately instead of lingering until their timestamp pops.
// Callbacks are UniqueFunctions (64-byte small-buffer optimization), so
// scheduling a packet delivery allocates nothing.
#pragma once

#include <cstdint>
#include <functional>
#include <new>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace sctpmpi::sim {

class Simulator {
 public:
  using Callback = UniqueFunction;
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now). Returns a handle usable
  /// with cancel() / reschedule().
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after a relative delay (>= 0).
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event, releasing its slot and callback immediately.
  /// Returns false if it already fired or was already cancelled.
  bool cancel(EventId id);

  /// Moves a pending event to absolute time `t` (>= now), keeping its
  /// callback and id. The event takes a fresh FIFO position, exactly as if
  /// it had been cancelled and rescheduled. Returns false if `id` is no
  /// longer pending.
  bool reschedule(EventId id, SimTime t);

  /// Runs the next pending event, if any. Returns false when the queue is
  /// empty.
  bool step();

  /// Runs until the queue drains or `max_events` events have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= t, then advances the clock to t.
  void run_until(SimTime t);

  bool empty() const { return heap_.empty(); }
  /// Pending (not cancelled) events; cancellation shrinks this immediately.
  std::size_t live_events() const { return heap_.size(); }
  /// Slots ever allocated. Bounded by the peak number of simultaneously
  /// pending events, not by churn: arm/cancel cycles reuse slots.
  std::size_t slot_capacity() const { return slots_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  static constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;
  // A heap entry packs the FIFO sequence number (high 40 bits) above the
  // slot index (low 24 bits): seq is unique, so ordering the packed word
  // orders by seq, and entries stay 16 bytes. 2^24 simultaneously pending
  // events and 2^40 total events are far beyond any simulated run.
  static constexpr int kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  struct Entry {
    SimTime time;
    std::uint64_t key;  // (seq << kSlotBits) | slot
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key) & kSlotMask;
    }
  };
  // Places the heap array 48 bytes past a 64-byte boundary so each 4-entry
  // sibling group [4p+1, 4p+4] occupies exactly one cache line; the sift
  // loops then touch one line per level instead of two.
  struct EntryAlloc {
    using value_type = Entry;
    template <class U>
    struct rebind {  // vector only ever rebinds to Entry itself
      using other = EntryAlloc;
    };
    Entry* allocate(std::size_t n) {
      void* base =
          ::operator new(n * sizeof(Entry) + 48, std::align_val_t{64});
      return reinterpret_cast<Entry*>(static_cast<unsigned char*>(base) + 48);
    }
    void deallocate(Entry* p, std::size_t) noexcept {
      ::operator delete(reinterpret_cast<unsigned char*>(p) - 48,
                        std::align_val_t{64});
    }
    bool operator==(const EntryAlloc&) const { return true; }
    bool operator!=(const EntryAlloc&) const { return false; }
  };
  // The heap-position backlink lives in pos_, a dense parallel array, NOT in
  // Slot: heap repair rewrites backlinks at every level, and a packed
  // uint32 table stays cache-resident while the 64-byte slot lines (callback
  // storage) would be dragged in one per touched event.
  struct Slot {
    Callback cb;            // 56 bytes: 48 inline + ops pointer
    std::uint32_t gen = 1;  // bumped on release; stale ids miss
  };
  static_assert(sizeof(Slot) == 64, "one cache line per event slot");

  static EventId make_id_(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | (slot + 1ull);
  }
  // (time, key) packed into one 128-bit rank: a single sbb-chain compare
  // with no data-dependent branch, which matters in the child-min scans
  // where the branch is a coin flip.
  static unsigned __int128 rank_(const Entry& e) {
    return (static_cast<unsigned __int128>(e.time) << 64) | e.key;
  }
  static bool before_(const Entry& a, const Entry& b) {
    return rank_(a) < rank_(b);
  }

  /// Decodes and validates an id; nullptr unless it names a pending event.
  Slot* slot_for_(EventId id);
  std::uint32_t alloc_slot_();
  void free_slot_(std::uint32_t slot);
  void place_(std::uint32_t pos, const Entry& e) {
    heap_[pos] = e;
    pos_[e.slot()] = pos;
  }
  /// Index of the least entry in the sibling group starting at `first`.
  std::uint32_t min_child_(std::uint32_t first, std::uint32_t n);
  void sift_up_(std::uint32_t pos, const Entry& e);
  void sift_down_(std::uint32_t pos, const Entry& e);
  /// Re-sinks or re-floats the entry at `pos` after its key changed.
  void restore_(std::uint32_t pos, const Entry& e);
  /// Detaches the entry at `pos` and repairs the heap.
  void remove_at_(std::uint32_t pos);
  /// Detaches the root (hole percolation: cheaper than remove_at_(0)).
  void pop_root_();

  std::vector<Entry, EntryAlloc> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> pos_;  // slot -> heap index, kNoPos when free
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
};

/// A single re-armable timer bound to a Simulator; the building block for
/// protocol retransmission/delayed-ack/heartbeat timers. Arming an already
/// armed timer reschedules the existing event in place (no new callback is
/// created); deadline() reads 0 whenever the timer is not armed.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void arm(SimTime delay) {
    deadline_ = sim_.now() + delay;
    if (id_ != Simulator::kInvalidEvent && sim_.reschedule(id_, deadline_)) {
      return;
    }
    id_ = sim_.schedule_at(deadline_, [this] {
      id_ = Simulator::kInvalidEvent;
      deadline_ = 0;
      on_fire_();
    });
  }

  void cancel() {
    deadline_ = 0;
    if (id_ != Simulator::kInvalidEvent) {
      sim_.cancel(id_);
      id_ = Simulator::kInvalidEvent;
    }
  }

  bool armed() const { return id_ != Simulator::kInvalidEvent; }
  SimTime deadline() const { return deadline_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  Simulator::EventId id_ = Simulator::kInvalidEvent;
  SimTime deadline_ = 0;
};

}  // namespace sctpmpi::sim
