// Discrete-event simulator core: a cancellable event queue over SimTime.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which together with the single-threaded hand-off process model makes every
// simulation run fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace sctpmpi::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now). Returns a handle usable
  /// with cancel().
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after a relative delay (>= 0).
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// already cancelled.
  bool cancel(EventId id);

  /// Runs the next pending event, if any. Returns false when the queue is
  /// empty.
  bool step();

  /// Runs until the queue drains or `max_events` events have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= t, then advances the clock to t.
  void run_until(SimTime t);

  bool empty() const { return live_events() == 0; }
  std::size_t live_events() const { return queue_.size() - cancelled_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  struct Event {
    SimTime time;
    EventId id;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t processed_ = 0;
};

/// A single re-armable timer bound to a Simulator; the building block for
/// protocol retransmission/delayed-ack/heartbeat timers. Arming an already
/// armed timer replaces the deadline.
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void arm(SimTime delay) {
    cancel();
    deadline_ = sim_.now() + delay;
    id_ = sim_.schedule_after(delay, [this] {
      id_ = Simulator::kInvalidEvent;
      on_fire_();
    });
  }

  void cancel() {
    if (id_ != Simulator::kInvalidEvent) {
      sim_.cancel(id_);
      id_ = Simulator::kInvalidEvent;
    }
  }

  bool armed() const { return id_ != Simulator::kInvalidEvent; }
  SimTime deadline() const { return deadline_; }

 private:
  Simulator& sim_;
  std::function<void()> on_fire_;
  Simulator::EventId id_ = Simulator::kInvalidEvent;
  SimTime deadline_ = 0;
};

}  // namespace sctpmpi::sim
