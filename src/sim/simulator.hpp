// Discrete-event simulator core: a cancellable event queue over SimTime.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which together with the single-threaded hand-off process model makes every
// simulation run fully deterministic.
//
// Three structures back the queue:
//
//  * An indexed 4-ary min-heap keyed by (time, seq) holds sparse one-shot
//    events (packet deliveries, future wakeups). Heap entries are 16 bytes
//    and never carry the callback, which lives in a slot table addressed by
//    a generation-checked EventId. cancel() and reschedule() find the entry
//    through the slot's heap position and fix the heap in place in O(log n).
//
//  * A hierarchical timer wheel (6 levels x 64 slots, 1.024 us ticks,
//    ~70000 s span) absorbs protocol-timer churn: RTO, delayed-ACK,
//    heartbeat and SACK timers arm, re-arm and cancel in O(1) with no heap
//    traffic at all. Wheel entries are intrusive nodes owned by sim::Timer.
//
//  * A due-now FIFO absorbs events scheduled for the current instant
//    (process wakeups: one per packet delivery). Such an event carries the
//    largest sequence number allocated so far and a timestamp no later than
//    any pending event, so it fires after everything already queued at now
//    and before anything later — exactly its heap position — but push and
//    pop are O(1) with no sift traffic. The FIFO provably drains before the
//    clock advances, and each pop picks the min rank across all three
//    structures, so the global (time, seq) firing order is bit-for-bit the
//    order a heap-only queue would produce. Cancelled or rescheduled FIFO
//    entries tombstone in place (validated by slot state + sequence low
//    bits) and are skipped on pop.
//
// Determinism across the two structures is exact, not approximate: every
// arm consumes one FIFO sequence number, and when a wheel bucket's window
// opens its timers are flushed into the heap carrying the sequence number
// they were armed with. The heap's (time, seq) order therefore interleaves
// timer fires and one-shot events precisely as if every timer had been
// schedule_at()-ed directly — wheel quantization only decides when a timer
// migrates to the heap, never when or in what order it fires.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <new>
#include <vector>

#include "sim/time.hpp"
#include "sim/unique_function.hpp"

namespace sctpmpi::sim {

class Timer;

class Simulator {
 public:
  using Callback = UniqueFunction;
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = 0;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now). Returns a handle usable
  /// with cancel() / reschedule().
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules `cb` after a relative delay (>= 0).
  EventId schedule_after(SimTime delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Cancels a pending event, releasing its slot and callback immediately.
  /// Returns false if it already fired or was already cancelled.
  bool cancel(EventId id);

  /// Moves a pending event to absolute time `t` (>= now), keeping its
  /// callback and id. The event takes a fresh FIFO position, exactly as if
  /// it had been cancelled and rescheduled. Returns false if `id` is no
  /// longer pending.
  bool reschedule(EventId id, SimTime t);

  /// Runs the next pending event, if any. Returns false when the queue is
  /// empty.
  bool step();

  /// Runs until the queue drains or `max_events` events have fired.
  /// Returns the number of events processed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs events with timestamp <= t, then advances the clock to t.
  void run_until(SimTime t) { run_until_or_stop(t, nullptr); }

  /// run_until() with an early-out: before each event, if `*stop` reads 0
  /// the call returns immediately WITHOUT advancing the clock to t. This is
  /// how the sharded windowed driver reproduces ProcessGroup::run_all()'s
  /// stop-at-last-process-exit cut exactly: remaining events inside the
  /// window are simply never run, and now() stays at the last fired event.
  /// `stop == nullptr` behaves as plain run_until().
  void run_until_or_stop(SimTime t, const std::atomic<std::uint32_t>* stop);

  /// Earliest pending timestamp (heap or wheel bucket window), or `fallback`
  /// when nothing is pending. A wheel bucket reports its window start, which
  /// is <= every deadline it holds, so the returned bound is conservative:
  /// no event can fire strictly before it.
  SimTime next_event_bound(SimTime fallback) const;

  bool empty() const {
    return heap_.empty() && wheel_live_ == 0 && due_live_ == 0;
  }
  /// Pending (not cancelled) events, wheel-resident timers included;
  /// cancellation shrinks this immediately.
  std::size_t live_events() const {
    return heap_.size() + wheel_live_ + due_live_;
  }
  /// Timers currently parked on the wheel (not yet migrated to the heap).
  std::size_t wheel_pending() const { return wheel_live_; }
  /// Slots ever allocated. Bounded by the peak number of simultaneously
  /// pending events, not by churn: arm/cancel cycles reuse slots.
  std::size_t slot_capacity() const { return slots_.size(); }
  std::uint64_t events_processed() const { return processed_; }

 private:
  friend class Timer;

  static constexpr std::uint32_t kNoPos = 0xFFFFFFFFu;
  // pos_ marker for events parked in the due-now FIFO instead of the heap.
  static constexpr std::uint32_t kDuePos = 0xFFFFFFFEu;
  // A heap entry packs the FIFO sequence number (high 40 bits) above the
  // slot index (low 24 bits): seq is unique, so ordering the packed word
  // orders by seq, and entries stay 16 bytes. 2^24 simultaneously pending
  // events and 2^40 total events are far beyond any simulated run.
  static constexpr int kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  // Wheel geometry: 2^10 ns ticks, 6 levels of 64 slots. Level j buckets
  // span 64^j ticks; total horizon 64^6 ticks ~ 70368 s. Deadlines beyond
  // the horizon clamp into the top level and re-cascade when they surface.
  static constexpr int kTickBits = 10;
  static constexpr int kLevelBits = 6;
  static constexpr int kWheelLevels = 6;
  static constexpr std::uint64_t kWheelSlots = 1ull << kLevelBits;
  static constexpr std::uint64_t kWheelSpan = 1ull
                                             << (kLevelBits * kWheelLevels);

  struct Entry {
    SimTime time;
    std::uint64_t key;  // (seq << kSlotBits) | slot
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(key) & kSlotMask;
    }
  };
  // Places the heap array 48 bytes past a 64-byte boundary so each 4-entry
  // sibling group [4p+1, 4p+4] occupies exactly one cache line; the sift
  // loops then touch one line per level instead of two.
  struct EntryAlloc {
    using value_type = Entry;
    template <class U>
    struct rebind {  // vector only ever rebinds to Entry itself
      using other = EntryAlloc;
    };
    Entry* allocate(std::size_t n) {
      void* base =
          ::operator new(n * sizeof(Entry) + 48, std::align_val_t{64});
      return reinterpret_cast<Entry*>(static_cast<unsigned char*>(base) + 48);
    }
    void deallocate(Entry* p, std::size_t) noexcept {
      ::operator delete(reinterpret_cast<unsigned char*>(p) - 48,
                        std::align_val_t{64});
    }
    bool operator==(const EntryAlloc&) const { return true; }
    bool operator!=(const EntryAlloc&) const { return false; }
  };
  // The heap-position backlink lives in pos_, a dense parallel array, NOT in
  // Slot: heap repair rewrites backlinks at every level, and a packed
  // uint32 table stays cache-resident while the 64-byte slot lines (callback
  // storage) would be dragged in one per touched event.
  struct Slot {
    Callback cb;            // 56 bytes: 48 inline + ops pointer
    std::uint32_t gen = 1;  // bumped on release; stale ids miss
    // Low 32 bits of the sequence number of this slot's live due-FIFO
    // entry; distinguishes it from tombstones of earlier entries that
    // named the same slot within the same instant.
    std::uint32_t due_seq32 = 0;
  };
  static_assert(sizeof(Slot) == 64, "one cache line per event slot");

  // Intrusive wheel node, embedded in sim::Timer. pprev points at whatever
  // holds the forward pointer to this node (bucket head or predecessor's
  // next), so unlink is O(1) without walking the bucket.
  struct WheelNode {
    WheelNode* next = nullptr;
    WheelNode** pprev = nullptr;
    SimTime time = 0;
    std::uint64_t seq = 0;  // FIFO position allocated at arm time
    Timer* owner = nullptr;
    std::uint8_t level = 0;
    std::uint8_t slot = 0;
    bool linked() const { return pprev != nullptr; }
  };

  static EventId make_id_(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | (slot + 1ull);
  }
  // (time, key) packed into one 128-bit rank: a single sbb-chain compare
  // with no data-dependent branch, which matters in the child-min scans
  // where the branch is a coin flip.
  static unsigned __int128 rank_(const Entry& e) {
    return (static_cast<unsigned __int128>(e.time) << 64) | e.key;
  }
  static bool before_(const Entry& a, const Entry& b) {
    return rank_(a) < rank_(b);
  }

  /// Decodes and validates an id; nullptr unless it names a pending event.
  Slot* slot_for_(EventId id);
  std::uint32_t alloc_slot_();
  void free_slot_(std::uint32_t slot);
  void place_(std::uint32_t pos, const Entry& e) {
    heap_[pos] = e;
    pos_[e.slot()] = pos;
  }
  /// Index of the least entry in the sibling group starting at `first`.
  std::uint32_t min_child_(std::uint32_t first, std::uint32_t n);
  void sift_up_(std::uint32_t pos, const Entry& e);
  void sift_down_(std::uint32_t pos, const Entry& e);
  /// Re-sinks or re-floats the entry at `pos` after its key changed.
  void restore_(std::uint32_t pos, const Entry& e);
  /// Detaches the entry at `pos` and repairs the heap.
  void remove_at_(std::uint32_t pos);
  /// Detaches the root (hole percolation: cheaper than remove_at_(0)).
  void pop_root_();

  /// Heap insert that reuses a sequence number allocated earlier (at arm
  /// time): how wheel timers keep their FIFO position when they migrate.
  EventId schedule_preseq_(SimTime t, std::uint64_t seq, Callback cb);

  /// Drops tombstoned entries (cancelled / rescheduled-away) from the front
  /// of the due-now FIFO, leaving a live entry or an empty queue.
  void prune_due_();
  /// Pops and runs the front of the due-now FIFO (must be live).
  void fire_due_();

  // ---- timer wheel (driven by sim::Timer) ------------------------------
  /// Places (or re-places) a timer on the wheel at absolute deadline `t`,
  /// consuming one fresh sequence number — the same FIFO cost as a plain
  /// schedule_at, so heap/wheel interleavings are reproducible.
  void timer_arm_(Timer& tm, SimTime t);
  /// Removes a timer from wheel or heap; no-op if it is not pending.
  void timer_cancel_(Timer& tm);
  void wheel_insert_(WheelNode* n);
  void wheel_unlink_(WheelNode* n);
  /// Start time (ns) of the earliest occupied wheel bucket; kNoBucket when
  /// the wheel is empty. Out-params name the bucket.
  static constexpr SimTime kNoBucket = INT64_MAX;
  SimTime wheel_peek_(int* level, std::uint64_t* tick) const;
  /// Empties one bucket: level-0 timers migrate to the heap with their
  /// preserved seq; coarser buckets cascade back into the wheel.
  void wheel_flush_bucket_(int level, std::uint64_t tick);
  /// Migrates every wheel bucket whose window opens at or before the heap
  /// root (or unconditionally while the heap is empty), so heap_[0] is the
  /// globally next event afterwards.
  void wheel_catch_up_();

  std::vector<Entry, EntryAlloc> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> pos_;  // slot -> heap index, kNoPos when free
  std::vector<std::uint32_t> free_slots_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;

  // Due-now FIFO: events scheduled at the current instant, in allocation
  // (= firing) order. Every live entry's time equals now_ — the queue
  // drains before the clock advances. due_live_ excludes tombstones.
  std::deque<Entry> due_;
  std::size_t due_live_ = 0;

  WheelNode* buckets_[kWheelLevels][kWheelSlots] = {};
  std::uint64_t occupancy_[kWheelLevels] = {};
  std::uint64_t wheel_tick_ = 0;  // buckets before this tick are flushed
  std::size_t wheel_live_ = 0;
  // Lower bound (ns) on the earliest wheel bucket window: no wheel timer
  // can fire strictly before it. Maintained cheaply (min on insert, exact
  // after each peek, reset when the wheel drains); lets the per-step
  // catch-up skip the 6-level occupancy scan when the bound is already
  // past the next heap/due event. A stale-low bound only costs a wasted
  // peek, never a missed flush.
  SimTime wheel_bound_ = kNoBucket;
};

/// A single re-armable timer bound to a Simulator; the building block for
/// protocol retransmission/delayed-ack/heartbeat timers. Armed timers live
/// on the simulator's hierarchical wheel: arm(), re-arm (earlier or later)
/// and cancel() are all O(1) and touch no heap state until the deadline's
/// bucket window opens. deadline() reads 0 whenever the timer is not armed.
///
/// Pinned re-arm semantics (see tests/sim/test_timer_wheel.cpp): arm() on an
/// already armed timer atomically replaces the deadline — the timer stays
/// armed() throughout, never holds more than one pending event, and a
/// deadline() read between arm() calls always reports the latest value,
/// even if the previous placement had already migrated to the heap (the
/// re-arm-in-place path that used to leave a dead deadline_ read behind
/// when reschedule() failed).
class Timer {
 public:
  Timer(Simulator& sim, std::function<void()> on_fire)
      : sim_(sim), on_fire_(std::move(on_fire)) {
    node_.owner = this;
  }
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  void arm(SimTime delay) {
    deadline_ = sim_.now() + delay;
    sim_.timer_arm_(*this, deadline_);
  }

  void cancel() {
    deadline_ = 0;
    sim_.timer_cancel_(*this);
  }

  bool armed() const {
    return node_.linked() || heap_id_ != Simulator::kInvalidEvent;
  }
  SimTime deadline() const { return deadline_; }

 private:
  friend class Simulator;

  /// Invoked by the simulator when the migrated heap event pops. State is
  /// cleared before on_fire_ runs, so cancel()/arm() from inside the
  /// callback see a disarmed timer.
  void fire_() {
    heap_id_ = Simulator::kInvalidEvent;
    deadline_ = 0;
    on_fire_();
  }

  Simulator& sim_;
  std::function<void()> on_fire_;
  Simulator::WheelNode node_;
  Simulator::EventId heap_id_ = Simulator::kInvalidEvent;
  SimTime deadline_ = 0;
};

}  // namespace sctpmpi::sim
