#include "sim/process.hpp"

#include <cassert>
#include <stdexcept>

namespace sctpmpi::sim {

Process::Process(Simulator& sim, std::string name,
                 std::function<void(Process&)> body)
    : sim_(sim), name_(std::move(name)), body_(std::move(body)) {}

#if SCTPMPI_HAS_FIBERS

Process::~Process() {
  if (fiber_ && state_ != State::Finished) {
    // Abandoned mid-run (e.g. an exception unwound the driver). Hand the
    // body control until it observes abandoned_ and unwinds; only then can
    // its stack be reclaimed.
    abandoned_ = true;
    while (state_ != State::Finished) fiber_->switch_in();
  }
}

void Process::start() {
  assert(state_ == State::Created);
  state_ = State::Runnable;
  fiber_ = std::make_unique<Fiber>([this] { body_main_(); });
  const std::uint64_t ep = epoch_;
  sim_.schedule_at(sim_.now(), [this, ep] {
    if (state_ == State::Runnable && epoch_ == ep) resume_();
  });
}

void Process::body_main_() {
  // Entered on the fiber's stack at the first resume_().
  if (!abandoned_) {
    try {
      body_(*this);
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  state_ = State::Finished;
  // Returning ends the fiber; Fiber::switch_in() in resume_() returns.
}

void Process::resume_() {
  assert(state_ == State::Runnable);
  // Invalidate any event scheduled against a previous suspension: without
  // this, a stale sleep-wakeup could cut a later sleep or suspend short.
  ++epoch_;
  state_ = State::Running;
  fiber_->switch_in();
  // Process is now Suspended or Finished.
}

void Process::yield_() {
  fiber_->switch_out();
  if (abandoned_) throw AbandonedError{};
  state_ = State::Running;
}

#else  // thread fallback for non-x86-64 hosts

Process::~Process() {
  if (thread_.joinable()) {
    if (state_ != State::Finished) {
      abandoned_ = true;
      while (state_ != State::Finished) {
        to_proc_.release();
        to_sched_.acquire();
      }
    }
    thread_.join();
  }
}

void Process::start() {
  assert(state_ == State::Created);
  state_ = State::Runnable;
  thread_ = std::thread([this] { body_main_(); });
  const std::uint64_t ep = epoch_;
  sim_.schedule_at(sim_.now(), [this, ep] {
    if (state_ == State::Runnable && epoch_ == ep) resume_();
  });
}

void Process::body_main_() {
  to_proc_.acquire();  // wait for first resume
  if (!abandoned_) {
    try {
      body_(*this);
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  state_ = State::Finished;
  to_sched_.release();
}

void Process::resume_() {
  assert(state_ == State::Runnable);
  ++epoch_;
  state_ = State::Running;
  to_proc_.release();
  to_sched_.acquire();
  // Process is now Suspended or Finished.
}

void Process::yield_() {
  to_sched_.release();
  to_proc_.acquire();
  if (abandoned_) throw AbandonedError{};
  state_ = State::Running;
}

#endif  // SCTPMPI_HAS_FIBERS

void Process::wake() {
  if (state_ != State::Suspended) return;
  state_ = State::Runnable;
  const std::uint64_t ep = epoch_;
  sim_.schedule_at(sim_.now(), [this, ep] {
    if (state_ == State::Runnable && epoch_ == ep) resume_();
  });
}

void Process::suspend() {
  assert(state_ == State::Running);
  flush_charge();
  state_ = State::Suspended;
  yield_();
}

void Process::sleep_for(SimTime dt) {
  assert(state_ == State::Running);
  if (dt <= 0) return;
  const std::uint64_t ep = epoch_;
  sim_.schedule_after(dt, [this, ep] {
    if (state_ == State::Suspended && epoch_ == ep) {
      state_ = State::Runnable;
      resume_();
    }
  });
  state_ = State::Suspended;
  yield_();
}

void Process::flush_charge() {
  if (charge_debt_ > 0) {
    SimTime debt = charge_debt_;
    charge_debt_ = 0;
    sleep_for(debt);
  }
}

void ProcessGroup::run_all() {
  for (auto& p : procs_) p->start();
  while (true) {
    bool all_done = true;
    for (auto& p : procs_) {
      if (!p->finished()) {
        all_done = false;
        break;
      }
    }
    if (all_done) break;
    if (!sim_.step()) {
      throw std::runtime_error(
          "ProcessGroup::run_all: event queue drained but processes are "
          "still blocked (deadlock in simulated job)");
    }
  }
  for (auto& p : procs_) p->rethrow_error();
}

}  // namespace sctpmpi::sim
