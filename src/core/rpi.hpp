// RPI — LAM's Request Progression Interface (paper §2.2.1): the pluggable
// transport layer of the middleware. The paper's contribution is the SCTP
// implementation of this interface; the TCP implementation mirrors stock
// LAM-TCP and serves as the baseline.
#pragma once

#include <cstdint>
#include <functional>

#include "core/request.hpp"
#include "sim/process.hpp"
#include "sim/time.hpp"

namespace sctpmpi::core {

struct RpiStats {
  std::uint64_t sends_started = 0;
  std::uint64_t recvs_started = 0;
  std::uint64_t eager_msgs = 0;        // short messages sent eagerly
  std::uint64_t rendezvous_msgs = 0;   // long messages via rendezvous
  std::uint64_t unexpected_msgs = 0;   // arrived before a matching recv
  std::uint64_t ctl_msgs = 0;          // acks / control messages
  std::uint64_t blocks = 0;            // times the process suspended
  // Recovery counters (all zero while recovery is disabled).
  std::uint64_t peer_downs = 0;        // endpoint teardowns observed
  std::uint64_t reconnects = 0;        // endpoints re-established
  std::uint64_t replayed_msgs = 0;     // retained messages re-sent
  std::uint64_t dup_drops = 0;         // replayed duplicates dropped
  std::uint64_t peers_declared_dead = 0;
};

/// Failure-recovery tuning (tentpole of the robustness work). Disabled by
/// default: with `enabled == false` every recovery code path is inert and
/// the wire behavior is bit-identical to the pre-recovery stack (the
/// golden conformance traces pin this).
struct RecoveryConfig {
  bool enabled = false;
  /// Active-side reconnect attempts before the peer is declared dead.
  unsigned max_reconnect_attempts = 4;
  /// Exponential backoff between attempts: base * 2^k, capped, plus
  /// uniform jitter of up to `jitter` * delay drawn from a seeded stream
  /// (deterministic per rank: seed is forked from the world seed).
  sim::SimTime backoff_base = 100 * sim::kMillisecond;
  sim::SimTime backoff_max = 2 * sim::kSecond;
  double jitter = 0.5;
  /// Passive side (the rank that accepted the original connection) cannot
  /// re-initiate; it waits this long for the peer to come back before
  /// declaring it dead.
  sim::SimTime passive_give_up = 10 * sim::kSecond;
  /// Receiver advertises its cumulative delivered seq (kFlagReplayAck)
  /// every this many delivered data messages, letting the sender trim the
  /// retained queue.
  std::uint32_t ack_every = 16;
  std::uint64_t seed = 1;
};

/// Middleware-level tuning (shared by both RPIs; defaults per LAM).
struct RpiConfig {
  /// Messages <= this are sent eagerly, larger ones by rendezvous
  /// (LAM default 64 KiB, paper §2.2.2).
  std::size_t eager_limit = 64 * 1024;
  /// Long-message fragment size for the SCTP module (paper §3.4: bounded
  /// by the send buffer; fragments reassembled at the RPI level).
  std::size_t long_fragment = 64 * 1024;
  /// SCTP stream pool size per association (paper §3.2.1; 10 by default,
  /// 1 reproduces the single-stream ablation of Fig. 12).
  unsigned stream_pool = 10;
  /// Long-message race fix (paper §3.4): Option B serializes per
  /// (peer, stream); Option A spins the writer until fully sent.
  enum class RaceFix { kOptionA, kOptionB } race_fix = RaceFix::kOptionB;
  /// Modeled middleware CPU: per socket-API call, and per body byte on the
  /// receive path. The TCP module pays a higher per-byte cost because the
  /// byte stream forces envelope scanning plus an extra reassembly copy;
  /// SCTP's message framing hands the middleware whole messages
  /// (paper §3.2.4 "frees us from having to look through the receive
  /// buffer to locate the message boundaries").
  sim::SimTime call_cost = 700;       // ns per socket call
  double rx_byte_cost_ns = 0.0;       // set per RPI by WorldConfig
  RecoveryConfig recovery;
};

class Rpi {
 public:
  virtual ~Rpi() = default;

  /// Connection setup with every other rank; returns once the mesh is
  /// fully established (includes the association-setup barrier for SCTP,
  /// paper §3.4). Runs in the rank's process context (may block).
  virtual void init(sim::Process& proc) = 0;
  virtual void finalize(sim::Process& proc) = 0;

  /// Begins progressing a request; returns immediately.
  virtual void start_send(RpiRequest* req) = 0;
  virtual void start_recv(RpiRequest* req) = 0;
  /// Abandons a posted receive (used by cancel paths in tests).
  virtual void cancel_recv(RpiRequest* req) = 0;

  /// Non-blocking progression pump: drains readable data, pushes writable
  /// queues, fires completions.
  virtual void advance() = 0;

  /// Suspends the calling rank until transport activity (socket readable/
  /// writable/notification). Spurious wakeups allowed.
  virtual void block(sim::Process& proc) = 0;

  /// MPI_Iprobe support: envelope of the oldest matching unexpected
  /// message, if any.
  virtual const Envelope* probe(std::uint32_t context, int src, int tag) = 0;

  virtual const RpiStats& stats() const = 0;

  /// True once recovery has given up on `peer`: its endpoint stays torn
  /// down, sends to it complete as no-ops and nothing more will arrive.
  virtual bool peer_dead(int peer) const {
    (void)peer;
    return false;
  }

  /// Fires (at most once per peer) when reconnection attempts are
  /// exhausted and the peer is declared dead. Used by World to feed the
  /// rank-failure bus.
  virtual void set_peer_unreachable_callback(std::function<void(int)> cb) {
    (void)cb;
  }

  /// Diagnostic state dump; invoked by World on simulated-job deadlock.
  virtual void debug_dump() const {}
};

}  // namespace sctpmpi::core
