// MPI request records progressed by the RPI (request progression
// interface) — the middleware layer the paper re-designed for SCTP.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/envelope.hpp"
#include "net/buffer.hpp"

namespace sctpmpi::core {

/// Wildcards (MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -0x7FFFFFFF;

struct MpiStatus {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t count = 0;  // received byte count
};

/// One in-flight point-to-point operation. Owned by the Mpi facade;
/// progressed by the RPI from initialization to completion (paper §2.2.1).
struct RpiRequest {
  enum class Kind { kSend, kRecv };

  Kind kind = Kind::kSend;
  int peer = 0;                 // destination (send) / source or ANY (recv)
  int tag = 0;
  std::uint32_t context = 0;
  bool done = false;
  MpiStatus status;

  // Send fields.
  const std::byte* send_buf = nullptr;
  std::size_t send_len = 0;
  /// The body ingested into an immutable Buffer at start_send (the single
  /// send-side user copy). Transport queues slice this Buffer, so the user
  /// may reuse send_buf the moment the request completes even though slices
  /// are still queued or retained for replay.
  net::Buffer send_body;
  bool sync = false;            // MPI_Ssend: completion needs receiver ack
  std::uint32_t seq = 0;        // assigned by the RPI at start_send

  // Receive fields.
  std::byte* recv_buf = nullptr;
  std::size_t recv_cap = 0;

  bool matches(const Envelope& env) const {
    return env.context == context &&
           (peer == kAnySource || env.src_rank == peer) &&
           (tag == kAnyTag || env.tag == tag);
  }
};

}  // namespace sctpmpi::core
