// TCP request-progression module — mirrors stock LAM-TCP (the paper's
// baseline): one TCP connection per peer process, readiness-driven
// progression, eager short messages and rendezvous long messages carried
// back-to-back on the byte stream. Because each connection delivers bytes
// in strict order, only one incoming message per peer can be in progress
// (paper §3.2.4) — which is precisely what produces head-of-line blocking
// between unrelated tags.
//
// With RecoveryConfig.enabled the module also survives connection failure:
// the socket's error callback tears the endpoint down, the lower rank
// re-dials with bounded exponential backoff (the higher rank waits on its
// retained listener), and retained copies of unacknowledged data messages
// are replayed under receiver-side sequence dedup — exactly-once delivery
// to the matching layer (see DESIGN.md "failure semantics").
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "core/flat_hash.hpp"
#include "core/matching.hpp"
#include "core/recovery.hpp"
#include "core/rpi.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "tcp/socket.hpp"

namespace sctpmpi::core {

class TcpRpi : public Rpi {
 public:
  /// `rank_addr(r)` resolves a rank to its host address; ranks listen on
  /// `base_port + rank`.
  TcpRpi(tcp::TcpStack& stack, int rank, int size, RpiConfig cfg,
         std::function<net::IpAddr(int)> rank_addr,
         std::uint16_t base_port = 10000);

  void init(sim::Process& proc) override;
  void finalize(sim::Process& proc) override;
  void start_send(RpiRequest* req) override;
  void start_recv(RpiRequest* req) override;
  void cancel_recv(RpiRequest* req) override;
  void advance() override;
  void block(sim::Process& proc) override;
  const Envelope* probe(std::uint32_t context, int src, int tag) override {
    return match_.peek_unexpected(context, src, tag);
  }
  const RpiStats& stats() const override { return stats_; }

  bool peer_dead(int peer) const override {
    return rec_[static_cast<std::size_t>(peer)].dead;
  }
  void set_peer_unreachable_callback(std::function<void(int)> cb) override {
    on_peer_unreachable_ = std::move(cb);
  }

  const MatchEngine& matcher() const { return match_; }

  /// Diagnostic state dump (used by deadlock investigations and tests).
  void debug_dump() const override;

 private:
  struct OutMsg {
    net::Buffer header;                 // envelope (+ owned control bytes)
    net::BufferSlice body;              // slice of the ingested send body
    std::size_t written = 0;            // across header+body
    RpiRequest* req = nullptr;          // completed when fully written
    bool completes_request = false;
    bool is_ctl = false;                // survives a recovery teardown
  };

  enum class RState { kEnvelope, kBody };

  struct Peer {
    tcp::TcpSocket* sock = nullptr;
    // Read side: the single in-flight incoming message on this stream.
    RState rstate = RState::kEnvelope;
    std::array<std::byte, kEnvelopeBytes> env_buf;
    std::size_t env_have = 0;
    Envelope env;
    RpiRequest* recv_req = nullptr;       // matched destination, or null
    std::vector<std::byte> temp_body;     // unexpected-message buffer
    std::size_t body_have = 0;
    std::size_t body_total = 0;
    bool discard_body = false;            // replayed duplicate: drain only
    // Write side.
    std::deque<OutMsg> outq;
    // Recovery timers (created lazily when recovery is enabled).
    std::unique_ptr<sim::Timer> reconnect_timer;  // active (lower-rank) side
    std::unique_ptr<sim::Timer> giveup_timer;     // passive side
  };

  void pump_reads_(int peer);
  void pump_writes_(int peer);
  void on_envelope_(int peer);
  void finish_body_(int peer);
  void deliver_matched_(RpiRequest* req, const Envelope& env,
                        const net::SliceChain& body);
  void enqueue_ctl_(int peer, const Envelope& env);
  void enqueue_long_body_(int peer, RpiRequest* req);
  void charge_(sim::SimTime t);
  void note_activity_() {
    activity_ = true;
    if (blocked_proc_ != nullptr) blocked_proc_->wake();
  }

  // ---- recovery ----------------------------------------------------------
  bool recovering_() const { return cfg_.recovery.enabled; }
  PeerReplay& rec_of_(int peer) {
    return rec_[static_cast<std::size_t>(peer)];
  }
  void wire_error_callback_(int peer);
  void on_sock_error_(int peer);
  void handle_peer_down_(int peer);
  void schedule_reconnect_(int peer);
  void attempt_reconnect_(int peer);
  void accept_reconnects_();
  void on_reconnected_(int peer);
  void declare_dead_(int peer);
  void send_replay_ack_(int peer);
  void note_delivered_(int peer, std::uint32_t seq);
  RetainedMsg* find_retained_(int peer, std::uint32_t seq);
  void enqueue_long_body_retained_(int peer, const RetainedMsg& r);

  tcp::TcpStack& stack_;
  int rank_;
  int size_;
  RpiConfig cfg_;
  std::function<net::IpAddr(int)> rank_addr_;
  std::uint16_t base_port_;

  std::vector<Peer> peers_;
  MatchEngine match_;
  // Rendezvous state: long sends awaiting ACK / long recvs awaiting body.
  // Probed point-wise per message, so flat hash tables replace the old
  // node-based maps without affecting any ordering.
  PeerSeqMap<RpiRequest*> pending_long_send_;
  PeerSeqMap<RpiRequest*> pending_long_recv_;
  PeerSeqMap<RpiRequest*> pending_ssend_;
  std::vector<std::uint32_t> next_seq_;  // per peer

  // Recovery state (inert while cfg_.recovery.enabled is false).
  std::vector<PeerReplay> rec_;
  tcp::TcpSocket* listener_ = nullptr;   // retained to accept reconnects
  std::vector<tcp::TcpSocket*> unidentified_;  // accepted, id word pending
  sim::Rng jitter_rng_;
  std::function<void(int)> on_peer_unreachable_;

  sim::Process* proc_ = nullptr;          // rank process (set at init)
  sim::Process* blocked_proc_ = nullptr;  // non-null while suspended
  bool activity_ = false;
  RpiStats stats_;
};

}  // namespace sctpmpi::core
