// SCTP request-progression module — the paper's contribution (§3).
//
// One one-to-many SCTP socket per process (no select(), no per-peer
// descriptors, §3.3); associations map to ranks and message tags map to
// streams via hash(context, tag) % pool (§3.2.1), so messages with
// different TRCs are delivered independently and head-of-line blocking
// between tags disappears (§3.2.2). Incoming traffic is demultiplexed
// twice: by association, then by stream (§3.1), with per-(association,
// stream) progression state (§3.2.4). Long messages are fragmented into
// sctp_sendmsg-sized pieces on a single stream and reassembled at this
// layer (§3.4); the long-message race is fixed with Option B (per-peer,
// per-stream FIFO serialization) by default, with Option A available for
// the ablation study. MPI_Init performs association setup with all peers
// followed by an explicit barrier (§3.4).
//
// With RecoveryConfig.enabled the module also survives association
// failure: kCommLost tears the peer's endpoint down, the lower rank
// re-establishes the association with bounded exponential backoff (the
// higher rank waits for the fresh INIT), and retained copies of
// unacknowledged data messages are replayed under receiver-side sequence
// dedup — exactly-once delivery to the matching layer. A peer-restart
// (fresh INIT on an established association) surfaces as kCommLost
// followed by kCommUp and flows through the same path.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/flat_hash.hpp"
#include "core/matching.hpp"
#include "core/recovery.hpp"
#include "core/rpi.hpp"
#include "sctp/socket.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::core {

class SctpRpi : public Rpi {
 public:
  SctpRpi(sctp::SctpStack& stack, int rank, int size, RpiConfig cfg,
          std::function<net::IpAddr(int)> rank_addr,
          std::uint16_t base_port = 10000);

  void init(sim::Process& proc) override;
  void finalize(sim::Process& proc) override;
  void start_send(RpiRequest* req) override;
  void start_recv(RpiRequest* req) override;
  void cancel_recv(RpiRequest* req) override;
  void advance() override;
  void block(sim::Process& proc) override;
  const Envelope* probe(std::uint32_t context, int src, int tag) override {
    return match_.peek_unexpected(context, src, tag);
  }
  const RpiStats& stats() const override { return stats_; }

  bool peer_dead(int peer) const override {
    return rec_[static_cast<std::size_t>(peer)].dead;
  }
  void set_peer_unreachable_callback(std::function<void(int)> cb) override {
    on_peer_unreachable_ = std::move(cb);
  }

  /// TRC -> stream mapping (paper §2.3/§3.2.1): deterministic on both
  /// sides, bounded by the stream pool size.
  std::uint16_t stream_of(std::uint32_t context, int tag) const {
    const std::uint64_t h =
        (static_cast<std::uint64_t>(context) * 0x9E3779B1u) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) *
         0x85EBCA77u);
    return static_cast<std::uint16_t>(h % cfg_.stream_pool);
  }

  const MatchEngine& matcher() const { return match_; }
  sctp::SctpSocket* socket() { return sock_; }

 private:
  /// One queued outgoing message job on a (peer, stream) queue. A job is
  /// everything that must stay contiguous on the stream: a whole eager
  /// message, a control envelope, or a long body (second envelope + all
  /// fragments).
  struct OutJob {
    enum class Kind { kEager, kCtl, kLongEnv, kLongBody };
    Kind kind = Kind::kCtl;
    net::Buffer header;                 // encoded envelope
    net::BufferSlice body;              // slice of the ingested send body
    RpiRequest* req = nullptr;
    bool completes_request = false;
    // Long-body progression.
    bool env_sent = false;
    std::size_t body_off = 0;
  };

  /// Receive-side state per (association, stream) — paper §3.2.4: with
  /// streams only partially ordered, state must be kept per stream number.
  struct StreamIn {
    RpiRequest* long_req = nullptr;   // body destination (null: discard)
    std::size_t remaining = 0;        // long-body bytes still expected
    std::size_t offset = 0;
    std::uint32_t seq = 0;            // message seq (recovery bookkeeping)
  };

  void pump_writes_();
  bool advance_job_(int peer, std::uint16_t sid, OutJob& job);
  void pump_reads_();
  void handle_message_(int peer, std::uint16_t sid, net::SliceChain data);
  void handle_envelope_(int peer, std::uint16_t sid, const Envelope& env,
                        net::SliceChain body);
  void enqueue_ctl_(int peer, std::uint16_t sid, const Envelope& env);
  void deliver_matched_(RpiRequest* req, const Envelope& env,
                        const net::SliceChain& body);
  void charge_(sim::SimTime t) {
    if (proc_ != nullptr) proc_->charge(t);
  }
  void note_activity_() {
    activity_ = true;
    if (blocked_proc_ != nullptr) blocked_proc_->wake();
  }
  std::deque<OutJob>& outq_(int peer, std::uint16_t sid) {
    const std::size_t qi =
        static_cast<std::size_t>(peer) * cfg_.stream_pool + sid;
    // Conservatively mark the queue busy on any access: pump_writes_ scans
    // only marked queues and lazily clears bits it finds empty, so a spare
    // mark costs one look while a missed one would strand a job.
    out_busy_[qi >> 6] |= 1ull << (qi & 63);
    return out_[qi];
  }
  StreamIn& instate_(int peer, std::uint16_t sid) {
    return in_[static_cast<std::size_t>(peer) * cfg_.stream_pool + sid];
  }

  // ---- recovery ----------------------------------------------------------
  bool recovering_() const { return cfg_.recovery.enabled; }
  PeerReplay& rec_of_(int peer) {
    return rec_[static_cast<std::size_t>(peer)];
  }
  void drain_notifications_();
  void handle_peer_down_(int peer);
  void schedule_reconnect_(int peer);
  void attempt_reconnect_(int peer);
  void on_reconnected_(int peer);
  void declare_dead_(int peer);
  void send_replay_ack_(int peer);
  void note_delivered_(int peer, std::uint32_t seq);
  RetainedMsg* find_retained_(int peer, std::uint32_t seq);
  void enqueue_retained_body_(int peer, const RetainedMsg& r);
  void map_assoc_(int peer, sctp::AssocId id);
  void unmap_assoc_(int peer);

  sctp::SctpStack& stack_;
  int rank_;
  int size_;
  RpiConfig cfg_;
  std::function<net::IpAddr(int)> rank_addr_;
  std::uint16_t base_port_;

  sctp::SctpSocket* sock_ = nullptr;
  std::vector<sctp::AssocId> rank_to_assoc_;
  std::map<sctp::AssocId, int> assoc_to_rank_;

  // Option B: per-(peer, stream) FIFO job queues (flattened), plus a
  // possibly-nonempty bitmap so the write pump skips idle queues instead
  // of scanning all peers x streams on every send.
  std::vector<std::deque<OutJob>> out_;
  std::vector<std::uint64_t> out_busy_;
  std::vector<StreamIn> in_;
  MatchEngine match_;
  // Probed point-wise per message, never iterated: flat hash tables.
  PeerSeqMap<RpiRequest*> pending_long_send_;
  PeerSeqMap<RpiRequest*> pending_long_recv_;
  PeerSeqMap<RpiRequest*> pending_ssend_;
  std::vector<std::uint32_t> next_seq_;
  int barrier_ctl_seen_ = 0;  // init-barrier bookkeeping

  // Recovery state (inert while cfg_.recovery.enabled is false).
  std::vector<PeerReplay> rec_;
  std::vector<std::unique_ptr<sim::Timer>> reconnect_timers_;
  std::vector<std::unique_ptr<sim::Timer>> giveup_timers_;
  sim::Rng jitter_rng_;
  std::function<void(int)> on_peer_unreachable_;

  sim::Process* proc_ = nullptr;
  sim::Process* blocked_proc_ = nullptr;
  bool activity_ = false;
  RpiStats stats_;
};

}  // namespace sctpmpi::core
