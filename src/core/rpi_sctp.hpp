// SCTP request-progression module — the paper's contribution (§3).
//
// One one-to-many SCTP socket per process (no select(), no per-peer
// descriptors, §3.3); associations map to ranks and message tags map to
// streams via hash(context, tag) % pool (§3.2.1), so messages with
// different TRCs are delivered independently and head-of-line blocking
// between tags disappears (§3.2.2). Incoming traffic is demultiplexed
// twice: by association, then by stream (§3.1), with per-(association,
// stream) progression state (§3.2.4). Long messages are fragmented into
// sctp_sendmsg-sized pieces on a single stream and reassembled at this
// layer (§3.4); the long-message race is fixed with Option B (per-peer,
// per-stream FIFO serialization) by default, with Option A available for
// the ablation study. MPI_Init performs association setup with all peers
// followed by an explicit barrier (§3.4).
#pragma once

#include <deque>
#include <map>
#include <vector>

#include "core/flat_hash.hpp"
#include "core/matching.hpp"
#include "core/rpi.hpp"
#include "sctp/socket.hpp"
#include "sim/process.hpp"

namespace sctpmpi::core {

class SctpRpi : public Rpi {
 public:
  SctpRpi(sctp::SctpStack& stack, int rank, int size, RpiConfig cfg,
          std::function<net::IpAddr(int)> rank_addr,
          std::uint16_t base_port = 10000);

  void init(sim::Process& proc) override;
  void finalize(sim::Process& proc) override;
  void start_send(RpiRequest* req) override;
  void start_recv(RpiRequest* req) override;
  void cancel_recv(RpiRequest* req) override;
  void advance() override;
  void block(sim::Process& proc) override;
  const Envelope* probe(std::uint32_t context, int src, int tag) override {
    return match_.peek_unexpected(context, src, tag);
  }
  const RpiStats& stats() const override { return stats_; }

  /// TRC -> stream mapping (paper §2.3/§3.2.1): deterministic on both
  /// sides, bounded by the stream pool size.
  std::uint16_t stream_of(std::uint32_t context, int tag) const {
    const std::uint64_t h =
        (static_cast<std::uint64_t>(context) * 0x9E3779B1u) ^
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)) *
         0x85EBCA77u);
    return static_cast<std::uint16_t>(h % cfg_.stream_pool);
  }

  const MatchEngine& matcher() const { return match_; }
  sctp::SctpSocket* socket() { return sock_; }

 private:
  /// One queued outgoing message job on a (peer, stream) queue. A job is
  /// everything that must stay contiguous on the stream: a whole eager
  /// message, a control envelope, or a long body (second envelope + all
  /// fragments).
  struct OutJob {
    enum class Kind { kEager, kCtl, kLongEnv, kLongBody };
    Kind kind = Kind::kCtl;
    std::vector<std::byte> header;      // envelope bytes
    const std::byte* body = nullptr;    // user buffer view
    std::size_t body_len = 0;
    RpiRequest* req = nullptr;
    bool completes_request = false;
    // Long-body progression.
    bool env_sent = false;
    std::size_t body_off = 0;
  };

  /// Receive-side state per (association, stream) — paper §3.2.4: with
  /// streams only partially ordered, state must be kept per stream number.
  struct StreamIn {
    RpiRequest* long_req = nullptr;   // body destination (null: discard)
    std::size_t remaining = 0;        // long-body bytes still expected
    std::size_t offset = 0;
  };

  void pump_writes_();
  bool advance_job_(int peer, std::uint16_t sid, OutJob& job);
  void pump_reads_();
  void handle_message_(int peer, std::uint16_t sid,
                       std::span<const std::byte> data);
  void handle_envelope_(int peer, std::uint16_t sid, const Envelope& env,
                        std::span<const std::byte> body);
  void enqueue_ctl_(int peer, std::uint16_t sid, const Envelope& env);
  void deliver_matched_(RpiRequest* req, const Envelope& env,
                        std::span<const std::byte> body);
  void charge_(sim::SimTime t) {
    if (proc_ != nullptr) proc_->charge(t);
  }
  void note_activity_() {
    activity_ = true;
    if (blocked_proc_ != nullptr) blocked_proc_->wake();
  }
  std::deque<OutJob>& outq_(int peer, std::uint16_t sid) {
    return out_[static_cast<std::size_t>(peer) * cfg_.stream_pool + sid];
  }
  StreamIn& instate_(int peer, std::uint16_t sid) {
    return in_[static_cast<std::size_t>(peer) * cfg_.stream_pool + sid];
  }

  sctp::SctpStack& stack_;
  int rank_;
  int size_;
  RpiConfig cfg_;
  std::function<net::IpAddr(int)> rank_addr_;
  std::uint16_t base_port_;

  sctp::SctpSocket* sock_ = nullptr;
  std::vector<sctp::AssocId> rank_to_assoc_;
  std::map<sctp::AssocId, int> assoc_to_rank_;

  // Option B: per-(peer, stream) FIFO job queues (flattened).
  std::vector<std::deque<OutJob>> out_;
  std::vector<StreamIn> in_;
  MatchEngine match_;
  // Probed point-wise per message, never iterated: flat hash tables.
  PeerSeqMap<RpiRequest*> pending_long_send_;
  PeerSeqMap<RpiRequest*> pending_long_recv_;
  PeerSeqMap<RpiRequest*> pending_ssend_;
  std::vector<std::uint32_t> next_seq_;
  int barrier_ctl_seen_ = 0;  // init-barrier bookkeeping

  std::vector<std::byte> rxbuf_;
  sim::Process* proc_ = nullptr;
  sim::Process* blocked_proc_ = nullptr;
  bool activity_ = false;
  RpiStats stats_;
};

}  // namespace sctpmpi::core
