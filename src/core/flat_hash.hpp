// Open-addressing hash table for the RPI rendezvous/ssend bookkeeping:
// (peer rank, message sequence) -> request pointer. These tables sit on the
// per-message fast path (every long message touches one twice, every ssend
// once), where the node-based std::map they replace paid an allocation and
// a pointer chase per lookup. Entries are only ever probed point-wise —
// never iterated — so the unordered layout cannot change simulation order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sctpmpi::core {

/// Flat hash map keyed by (peer, seq) holding a small trivially-copyable
/// value. Linear probing with backward-shift deletion, so there are no
/// tombstones and the load factor stays honest across the constant
/// insert/erase churn of rendezvous traffic.
template <typename T>
class PeerSeqMap {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    slots_.clear();
    size_ = 0;
  }

  /// Inserts or overwrites the entry for (peer, seq).
  void put(int peer, std::uint32_t seq, T value) {
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow_();
    const std::uint64_t key = pack_(peer, seq);
    std::size_t i = hash_(key) & mask_();
    while (slots_[i].key != 0 && slots_[i].key != key) i = (i + 1) & mask_();
    if (slots_[i].key == 0) ++size_;
    slots_[i] = Slot{key, value};
  }

  /// Returns the mapped value, or `missing` when absent.
  T find(int peer, std::uint32_t seq, T missing = T{}) const {
    if (slots_.empty()) return missing;
    const std::uint64_t key = pack_(peer, seq);
    std::size_t i = hash_(key) & mask_();
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) return slots_[i].value;
      i = (i + 1) & mask_();
    }
    return missing;
  }

  /// Visits every (peer, seq, value) entry. Only the recovery dead-peer
  /// sweep uses this; it completes requests (sets flags), so the
  /// unordered visiting order stays invisible to the simulation.
  template <typename Fn>
  void for_each(Fn fn) const {
    for (const Slot& s : slots_) {
      if (s.key == 0) continue;
      fn(static_cast<int>((s.key >> 32) - 1u),
         static_cast<std::uint32_t>(s.key), s.value);
    }
  }

  /// Removes the entry and returns its value, or `missing` when absent.
  T take(int peer, std::uint32_t seq, T missing = T{}) {
    if (slots_.empty()) return missing;
    const std::uint64_t key = pack_(peer, seq);
    std::size_t i = hash_(key) & mask_();
    while (slots_[i].key != 0) {
      if (slots_[i].key == key) {
        T out = slots_[i].value;
        erase_at_(i);
        --size_;
        return out;
      }
      i = (i + 1) & mask_();
    }
    return missing;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;  // 0 = empty (packed keys are never 0)
    T value{};
  };

  static std::uint64_t pack_(int peer, std::uint32_t seq) {
    // peer+1 keeps the packed key nonzero so 0 can mark an empty slot.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer) + 1u)
            << 32) |
           seq;
  }

  static std::size_t hash_(std::uint64_t x) {
    // splitmix64 finalizer: full-avalanche, so linear probing sees a
    // uniform spread even though seq values are consecutive per peer.
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }

  std::size_t mask_() const { return slots_.size() - 1; }

  /// Backward-shift deletion: closes the hole at i by sliding later probe
  /// chain members down, preserving the invariant that every entry is
  /// reachable from its home slot without tombstones.
  void erase_at_(std::size_t i) {
    std::size_t hole = i;
    std::size_t j = i;
    for (;;) {
      j = (j + 1) & mask_();
      if (slots_[j].key == 0) break;
      const std::size_t home = hash_(slots_[j].key) & mask_();
      if (((j - home) & mask_()) >= ((j - hole) & mask_())) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole] = Slot{};
  }

  void grow_() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    for (const Slot& s : old) {
      if (s.key == 0) continue;
      std::size_t i = hash_(s.key) & mask_();
      while (slots_[i].key != 0) i = (i + 1) & mask_();
      slots_[i] = s;
    }
  }

  std::vector<Slot> slots_;  // power-of-2 capacity
  std::size_t size_ = 0;
};

}  // namespace sctpmpi::core
