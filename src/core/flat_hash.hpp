// (peer rank, message seq) -> value bookkeeping for the RPI
// rendezvous/ssend fast paths: every long message probes one of these
// tables twice and every ssend once. A thin packing adapter over the
// generic open-addressing net::FlatMap64 (net/flat_map.hpp), which also
// backs the per-packet flow demux in the TCP and SCTP stacks. Entries are
// only ever probed point-wise on hot paths, so the unordered layout cannot
// change simulation order.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/flat_map.hpp"

namespace sctpmpi::core {

/// Flat hash map keyed by (peer rank, message seq) holding a small
/// trivially-copyable value.
template <typename T>
class PeerSeqMap {
 public:
  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  void clear() { map_.clear(); }

  /// Inserts or overwrites the entry for (peer, seq).
  void put(int peer, std::uint32_t seq, T value) {
    map_.put(pack_(peer, seq), value);
  }

  /// Returns the mapped value, or `missing` when absent.
  T find(int peer, std::uint32_t seq, T missing = T{}) const {
    return map_.find(pack_(peer, seq), missing);
  }

  /// Visits every (peer, seq, value) entry. Only the recovery dead-peer
  /// sweep uses this; it completes requests (sets flags), so the
  /// unordered visiting order stays invisible to the simulation.
  template <typename Fn>
  void for_each(Fn fn) const {
    map_.for_each([&fn](std::uint64_t key, const T& value) {
      fn(static_cast<int>((key >> 32) - 1u), static_cast<std::uint32_t>(key),
         value);
    });
  }

  /// Removes the entry and returns its value, or `missing` when absent.
  T take(int peer, std::uint32_t seq, T missing = T{}) {
    return map_.take(pack_(peer, seq), missing);
  }

 private:
  static std::uint64_t pack_(int peer, std::uint32_t seq) {
    // peer+1 keeps the packed key nonzero so 0 can mark an empty slot.
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(peer) + 1u)
            << 32) |
           seq;
  }

  net::FlatMap64<T> map_;
};

}  // namespace sctpmpi::core
