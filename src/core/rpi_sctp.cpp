#include "core/rpi_sctp.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>

namespace sctpmpi::core {

namespace {
constexpr std::ptrdiff_t kSockAgain = sctp::Association::kAgain;
}

SctpRpi::SctpRpi(sctp::SctpStack& stack, int rank, int size, RpiConfig cfg,
                 std::function<net::IpAddr(int)> rank_addr,
                 std::uint16_t base_port)
    : stack_(stack),
      rank_(rank),
      size_(size),
      cfg_(cfg),
      rank_addr_(std::move(rank_addr)),
      base_port_(base_port),
      out_(static_cast<std::size_t>(size) * cfg.stream_pool),
      out_busy_((static_cast<std::size_t>(size) * cfg.stream_pool + 63) / 64),
      in_(static_cast<std::size_t>(size) * cfg.stream_pool),
      next_seq_(static_cast<std::size_t>(size), 1),
      rec_(static_cast<std::size_t>(size)),
      reconnect_timers_(static_cast<std::size_t>(size)),
      giveup_timers_(static_cast<std::size_t>(size)),
      jitter_rng_(sim::Rng(cfg.recovery.seed)
                      .fork(9500u + static_cast<std::uint64_t>(rank))) {
  // sctp_sendmsg is bounded by the send buffer (paper §3.4): clamp the
  // middleware's eager limit and long-message fragment size so a single
  // message always fits, whatever the socket buffers are configured to.
  const std::size_t max_msg = stack.config().sndbuf;
  if (cfg_.eager_limit + kEnvelopeBytes > max_msg) {
    cfg_.eager_limit = max_msg - kEnvelopeBytes;
  }
  if (cfg_.long_fragment > max_msg) cfg_.long_fragment = max_msg;
}

// ---------------------------------------------------------------------------
// MPI_Init: association setup with every peer, then an explicit barrier —
// unlike TCP there are no connect/accept calls to order things (paper §3.4).
// ---------------------------------------------------------------------------

void SctpRpi::init(sim::Process& proc) {
  proc_ = &proc;
  sock_ = stack_.create_socket(static_cast<std::uint16_t>(base_port_ + rank_));
  sock_->listen();
  sock_->set_activity_callback([this] { note_activity_(); });
  rank_to_assoc_.assign(static_cast<std::size_t>(size_), 0);

  // Lower rank initiates the association (single initiator per pair).
  for (int peer = rank_ + 1; peer < size_; ++peer) {
    const sctp::AssocId id =
        sock_->connect(rank_addr_(peer),
                       static_cast<std::uint16_t>(base_port_ + peer));
    rank_to_assoc_[static_cast<std::size_t>(peer)] = id;
    assoc_to_rank_[id] = peer;
    charge_(cfg_.call_cost);
  }

  // Wait for all associations to come up; passive ones are identified by
  // the peer's address (rank == host index in the cluster).
  int up = 0;
  while (up < size_ - 1) {
    while (auto n = sock_->poll_notification()) {
      if (n->type != sctp::NotificationType::kCommUp) continue;
      ++up;
      if (assoc_to_rank_.count(n->assoc) == 0) {
        const int peer = static_cast<int>(net::host_of(
            sock_->assoc(n->assoc)->paths()[0].addr));
        assoc_to_rank_[n->assoc] = peer;
        rank_to_assoc_[static_cast<std::size_t>(peer)] = n->assoc;
      }
    }
    if (up < size_ - 1) block(proc);
  }

  // Explicit barrier (paper §3.4): workers signal rank 0, rank 0 releases.
  Envelope ctl;
  ctl.flags = kFlagCtl;
  ctl.src_rank = rank_;
  if (rank_ == 0) {
    while (barrier_ctl_seen_ < size_ - 1) {
      advance();
      if (barrier_ctl_seen_ < size_ - 1) block(proc);
    }
    for (int peer = 1; peer < size_; ++peer) {
      enqueue_ctl_(peer, 0, ctl);
    }
  } else {
    enqueue_ctl_(0, 0, ctl);
    while (barrier_ctl_seen_ < 1) {
      advance();
      if (barrier_ctl_seen_ < 1) block(proc);
    }
  }
  barrier_ctl_seen_ = 0;
}

void SctpRpi::finalize(sim::Process& proc) {
  bool pending = true;
  while (pending) {
    advance();
    pending = false;
    for (const auto& q : out_) {
      if (!q.empty()) pending = true;
    }
    if (pending) block(proc);
  }
  for (int peer = 0; peer < size_; ++peer) {
    if (peer != rank_ && rank_to_assoc_[static_cast<std::size_t>(peer)] != 0) {
      // Let the higher rank drive shutdown to avoid crossing SHUTDOWNs.
      if (rank_ > peer) {
        sock_->shutdown_assoc(rank_to_assoc_[static_cast<std::size_t>(peer)]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Request initiation
// ---------------------------------------------------------------------------

void SctpRpi::start_send(RpiRequest* req) {
  ++stats_.sends_started;
  const int peer = req->peer;
  assert(peer != rank_);
  if (recovering_() && rec_of_(peer).dead) {
    // Peer declared failed: sends complete as no-ops; the application
    // learns of the failure through the rank-failure event.
    req->done = true;
    return;
  }
  req->seq = next_seq_[static_cast<std::size_t>(peer)]++;
  const std::uint16_t sid = stream_of(req->context, req->tag);
  // Ingest the body into an immutable ref-counted Buffer (the single
  // send-side user copy); everything below carries slices of it.
  req->send_body =
      net::Buffer::copy_of(std::span(req->send_buf, req->send_len));

  Envelope env;
  env.length = static_cast<std::uint32_t>(req->send_len);
  env.tag = req->tag;
  env.context = req->context;
  env.src_rank = rank_;
  env.seq = req->seq;

  OutJob job;
  if (req->send_len <= cfg_.eager_limit) {
    env.flags = req->sync ? kFlagSsend : kFlagShort;
    job.kind = OutJob::Kind::kEager;
    job.header = env.encode_buffer();
    job.body = net::BufferSlice{req->send_body};
    if (recovering_()) {
      // The retained entry shares the ingested body (refcount bump): the
      // request completes now (eager buffering), so the user buffer may be
      // reused before delivery is confirmed.
      rec_of_(peer).retain(
          RetainedMsg{req->seq, env.flags, job.header, req->send_body, false});
      if (req->sync) {
        pending_ssend_.put(peer, req->seq, req);
      } else {
        req->done = true;
      }
    } else {
      job.req = req;
      job.completes_request = !req->sync;
      if (req->sync) pending_ssend_.put(peer, req->seq, req);
    }
    ++stats_.eager_msgs;
  } else {
    env.flags = kFlagLong;
    job.kind = OutJob::Kind::kLongEnv;
    job.header = env.encode_buffer();
    if (recovering_()) {
      rec_of_(peer).retain(
          RetainedMsg{req->seq, env.flags, job.header, req->send_body, true});
    }
    pending_long_send_.put(peer, req->seq, req);
    ++stats_.rendezvous_msgs;
  }
  outq_(peer, sid).push_back(std::move(job));
  pump_writes_();
}

void SctpRpi::start_recv(RpiRequest* req) {
  ++stats_.recvs_started;
  if (auto um = match_.match_unexpected(*req)) {
    const Envelope& env = um->env;
    const std::uint16_t sid = stream_of(env.context, env.tag);
    if ((env.flags & kFlagLong) != 0) {
      pending_long_recv_.put(env.src_rank, env.seq, req);
      Envelope ack;
      ack.flags = kFlagLongAck;
      ack.tag = env.tag;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(env.src_rank, sid, ack);
    } else {
      deliver_matched_(req, env, um->body);
      if ((env.flags & kFlagSsend) != 0) {
        Envelope ack;
        ack.flags = kFlagSsendAck;
        ack.context = env.context;
        ack.src_rank = rank_;
        ack.seq = env.seq;
        enqueue_ctl_(env.src_rank, sid, ack);
      }
    }
    return;
  }
  match_.add_posted(req);
}

void SctpRpi::cancel_recv(RpiRequest* req) { match_.remove_posted(req); }

void SctpRpi::deliver_matched_(RpiRequest* req, const Envelope& env,
                               const net::SliceChain& body) {
  const std::size_t n = std::min(body.size(), req->recv_cap);
  body.copy_to(std::span(req->recv_buf, n));
  const auto copy_cost = static_cast<sim::SimTime>(cfg_.rx_byte_cost_ns *
                                                   static_cast<double>(n));
  stack_.host().occupy_cpu(copy_cost);
  charge_(copy_cost);
  req->status.source = env.src_rank;
  req->status.tag = env.tag;
  req->status.count = n;
  req->done = true;
}

void SctpRpi::enqueue_ctl_(int peer, std::uint16_t sid, const Envelope& env) {
  OutJob job;
  job.kind = OutJob::Kind::kCtl;
  job.header = env.encode_buffer();
  outq_(peer, sid).push_back(std::move(job));
  ++stats_.ctl_msgs;
  pump_writes_();
}

// ---------------------------------------------------------------------------
// Progression
// ---------------------------------------------------------------------------

void SctpRpi::advance() {
  if (recovering_()) drain_notifications_();
  pump_writes_();
  pump_reads_();
}

void SctpRpi::block(sim::Process& proc) {
  if (activity_) {
    activity_ = false;
    return;
  }
  ++stats_.blocks;
  blocked_proc_ = &proc;
  // Flush CPU debt before committing to the suspension: a wakeup that
  // fires during the debt sleep would otherwise be consumed by it and the
  // real suspension would never be woken (lost-wakeup).
  proc.flush_charge();
  if (!activity_) proc.suspend();
  blocked_proc_ = nullptr;
  activity_ = false;
}

void SctpRpi::pump_writes_() {
  // Round-robin over the (peer, stream) queues; each queue advances only
  // its head job (Option B: a partially written message blocks *that
  // stream to that peer only*, §3.4.2). Under Option A, a long body at the
  // head of any queue is driven to completion before any other queue may
  // proceed (§3.4.1 — maximum simplicity, minimum concurrency).
  // Both passes walk the busy bitmap instead of every queue: each marked
  // queue is visited at most once per pass in ascending index order (the
  // order the plain scan used), and bits found empty are cleared lazily.
  if (cfg_.race_fix == RpiConfig::RaceFix::kOptionA) {
    for (std::size_t w = 0; w < out_busy_.size(); ++w) {
      std::uint64_t done = 0;
      for (;;) {
        const std::uint64_t pending = out_busy_[w] & ~done;
        if (pending == 0) break;
        const int b = std::countr_zero(pending);
        done |= 1ull << b;
        const std::size_t qi = w * 64 + static_cast<std::size_t>(b);
        auto& q = out_[qi];
        if (q.empty()) {
          out_busy_[w] &= ~(1ull << b);
          continue;
        }
        if (q.front().kind == OutJob::Kind::kLongBody) {
          const int peer = static_cast<int>(qi / cfg_.stream_pool);
          const auto sid = static_cast<std::uint16_t>(qi % cfg_.stream_pool);
          // Drive this job; if it cannot finish (send buffer full), stall
          // all output until it can.
          if (!advance_job_(peer, sid, q.front())) return;
          q.pop_front();
          if (q.empty()) out_busy_[w] &= ~(1ull << b);
        }
      }
    }
  }
  for (std::size_t w = 0; w < out_busy_.size(); ++w) {
    std::uint64_t done = 0;
    for (;;) {
      const std::uint64_t pending = out_busy_[w] & ~done;
      if (pending == 0) break;
      const int b = std::countr_zero(pending);
      done |= 1ull << b;
      const std::size_t qi = w * 64 + static_cast<std::size_t>(b);
      auto& q = out_[qi];
      const int peer = static_cast<int>(qi / cfg_.stream_pool);
      const auto sid = static_cast<std::uint16_t>(qi % cfg_.stream_pool);
      while (!q.empty()) {
        if (!advance_job_(peer, sid, q.front())) break;
        q.pop_front();
      }
      if (q.empty()) out_busy_[w] &= ~(1ull << b);
    }
  }
}

bool SctpRpi::advance_job_(int peer, std::uint16_t sid, OutJob& job) {
  const sctp::AssocId assoc = rank_to_assoc_[static_cast<std::size_t>(peer)];
  switch (job.kind) {
    case OutJob::Kind::kCtl: {
      charge_(cfg_.call_cost);
      const auto r = sock_->sendmsg(assoc, sid, job.header,
                                    static_cast<std::uint32_t>(rank_));
      return r > 0;
    }
    case OutJob::Kind::kEager: {
      // Envelope + body in a single sctp_sendmsg: SCTP preserves the
      // message framing, so the receiver gets the whole message at once.
      charge_(cfg_.call_cost);
      const auto r = sock_->sendmsg_gather(
          assoc, sid, net::BufferSlice{job.header}, job.body,
          static_cast<std::uint32_t>(rank_));
      if (r <= 0) return false;
      if (job.completes_request && job.req != nullptr) job.req->done = true;
      return true;
    }
    case OutJob::Kind::kLongEnv: {
      charge_(cfg_.call_cost);
      return sock_->sendmsg(assoc, sid, job.header,
                            static_cast<std::uint32_t>(rank_)) > 0;
    }
    case OutJob::Kind::kLongBody: {
      // Second envelope, then sendmsg-sized fragments, all on this stream
      // (paper §3.4). Partial progress keeps the job at the queue head.
      if (!job.env_sent) {
        charge_(cfg_.call_cost);
        if (sock_->sendmsg(assoc, sid, job.header,
                           static_cast<std::uint32_t>(rank_)) <= 0)
          return false;
        job.env_sent = true;
      }
      while (job.body_off < job.body.len) {
        const std::size_t n =
            std::min(cfg_.long_fragment, job.body.len - job.body_off);
        charge_(cfg_.call_cost);
        const auto r = sock_->sendmsg_gather(
            assoc, sid, job.body.sub(job.body_off, n), net::BufferSlice{},
            static_cast<std::uint32_t>(rank_));
        if (r <= 0) return false;
        job.body_off += n;
      }
      if (job.req != nullptr) job.req->done = true;
      return true;
    }
  }
  return false;
}

void SctpRpi::pump_reads_() {
  // Retrieve whole messages as long as any are deliverable; this is the
  // one-to-many receive loop the paper uses instead of select() (§3.3).
  while (sock_->readable()) {
    sctp::RecvInfo info;
    net::SliceChain data;
    charge_(cfg_.call_cost);
    if (!sock_->pop_message(data, info)) break;
    auto it = assoc_to_rank_.find(info.assoc);
    if (it == assoc_to_rank_.end()) continue;  // unknown peer (teardown)
    handle_message_(it->second, info.sid, std::move(data));
  }
}

void SctpRpi::handle_message_(int peer, std::uint16_t sid,
                              net::SliceChain data) {
  StreamIn& st = instate_(peer, sid);
  if (st.remaining > 0) {
    // Raw long-body fragment for the in-progress message on this
    // (association, stream) — the RPI-level reassembly of §3.4. The chain
    // is copied straight into the user buffer: the one receive-side copy.
    const std::size_t n = std::min(data.size(), st.remaining);
    if (st.long_req != nullptr) {
      const std::size_t fit =
          st.offset < st.long_req->recv_cap
              ? std::min(n, st.long_req->recv_cap - st.offset)
              : 0;
      data.copy_to(std::span(st.long_req->recv_buf + st.offset, fit));
      const auto copy_cost = static_cast<sim::SimTime>(
          cfg_.rx_byte_cost_ns * static_cast<double>(n));
      stack_.host().occupy_cpu(copy_cost);
      charge_(copy_cost);
    }
    st.offset += n;
    st.remaining -= n;
    if (st.remaining == 0) {
      if (st.long_req != nullptr) {
        st.long_req->status.count = std::min(st.offset, st.long_req->recv_cap);
        st.long_req->done = true;
        if (recovering_()) note_delivered_(peer, st.seq);
      } else if (recovering_()) {
        ++stats_.dup_drops;  // replayed body drained to nowhere
      }
      st.long_req = nullptr;
      st.offset = 0;
    }
    return;
  }
  // The envelope may straddle slice boundaries; peek it out (uncounted —
  // header bytes, not payload).
  std::array<std::byte, kEnvelopeBytes> env_bytes;
  data.raw_copy_to(env_bytes);
  const Envelope env = Envelope::decode(env_bytes);
  handle_envelope_(peer, sid, env, data.subchain(kEnvelopeBytes));
}

void SctpRpi::handle_envelope_(int peer, std::uint16_t sid,
                               const Envelope& env, net::SliceChain body) {
  if ((env.flags & kFlagCtl) != 0) {
    ++barrier_ctl_seen_;
    return;
  }
  if ((env.flags & kFlagReplayAck) != 0) {
    // Recovery: peer advertises its contiguous delivered prefix; trim the
    // retained-send queue up to it.
    rec_of_(peer).trim(env.seq);
    return;
  }
  if ((env.flags & kFlagLongAck) != 0) {
    if (RpiRequest* req = pending_long_send_.take(peer, env.seq)) {
      OutJob job;
      job.kind = OutJob::Kind::kLongBody;
      Envelope env2;
      env2.length = static_cast<std::uint32_t>(req->send_len);
      env2.tag = req->tag;
      env2.context = req->context;
      env2.flags = kFlagLong | kFlagLongBody;
      env2.src_rank = rank_;
      env2.seq = req->seq;
      job.header = env2.encode_buffer();
      // The body was ingested and retained (under recovery) at start_send,
      // so the user buffer may be reused once the request completes even
      // though replay still references the same Buffer.
      job.body = net::BufferSlice{req->send_body};
      job.req = req;
      outq_(peer, stream_of(req->context, req->tag)).push_back(std::move(job));
      pump_writes_();
    } else if (recovering_()) {
      // Re-acked after our request already completed (replay): resend the
      // body from the retained copy.
      RetainedMsg* r = find_retained_(peer, env.seq);
      if (r != nullptr && !r->body.empty()) {
        enqueue_retained_body_(peer, *r);
      }
    }
    return;
  }
  if ((env.flags & kFlagSsendAck) != 0) {
    if (RpiRequest* req = pending_ssend_.take(peer, env.seq)) req->done = true;
    return;
  }
  if ((env.flags & kFlagLongBody) != 0) {
    StreamIn& st = instate_(peer, sid);
    st.long_req = pending_long_recv_.take(peer, env.seq);
    st.remaining = env.length;
    st.offset = 0;
    st.seq = env.seq;
    if (st.long_req != nullptr) {
      st.long_req->status.source = env.src_rank;
      st.long_req->status.tag = env.tag;
    }
    // With a null long_req the fragments are drained and discarded — under
    // recovery that is the replayed-duplicate path (counted on completion).
    return;
  }
  if ((env.flags & kFlagLong) != 0) {
    if (recovering_()) {
      PeerReplay& rec = rec_of_(peer);
      if (rec.was_delivered(env.seq)) {
        ++stats_.dup_drops;  // body already fully delivered
        return;
      }
      if (pending_long_recv_.find(peer, env.seq) != nullptr) {
        // Our earlier ACK (or the body it triggered) was lost: re-ack.
        ++stats_.dup_drops;
        Envelope ack;
        ack.flags = kFlagLongAck;
        ack.tag = env.tag;
        ack.context = env.context;
        ack.src_rank = rank_;
        ack.seq = env.seq;
        enqueue_ctl_(peer, sid, ack);
        return;
      }
      if (rec.long_seen.contains(env.seq)) {
        ++stats_.dup_drops;  // already buffered unexpected
        return;
      }
      rec.long_seen.insert(env.seq, env.seq + 1);
    }
    if (RpiRequest* req = match_.match_posted(env)) {
      pending_long_recv_.put(peer, env.seq, req);
      Envelope ack;
      ack.flags = kFlagLongAck;
      ack.tag = env.tag;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, sid, ack);
    } else {
      ++stats_.unexpected_msgs;
      match_.add_unexpected(UnexpectedMsg{env, {}});
    }
    return;
  }

  // Eager short message: the whole body arrived with the envelope.
  if (recovering_() && rec_of_(peer).was_delivered(env.seq)) {
    // Replayed duplicate (message framing: nothing to drain). For ssend,
    // re-ack so the sender — whose first ack may have been lost — can
    // complete.
    ++stats_.dup_drops;
    if ((env.flags & kFlagSsend) != 0) {
      Envelope ack;
      ack.flags = kFlagSsendAck;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, sid, ack);
    }
    return;
  }
  if (RpiRequest* req = match_.match_posted(env)) {
    deliver_matched_(req, env, body);
    if ((env.flags & kFlagSsend) != 0) {
      Envelope ack;
      ack.flags = kFlagSsendAck;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, sid, ack);
    }
  } else {
    ++stats_.unexpected_msgs;
    match_.add_unexpected(UnexpectedMsg{env, std::move(body)});
  }
  if (recovering_()) note_delivered_(peer, env.seq);
}

// ---------------------------------------------------------------------------
// Recovery: notification handling, teardown, re-association, replay
// ---------------------------------------------------------------------------

void SctpRpi::map_assoc_(int peer, sctp::AssocId id) {
  rank_to_assoc_[static_cast<std::size_t>(peer)] = id;
  assoc_to_rank_[id] = peer;
}

void SctpRpi::unmap_assoc_(int peer) {
  const sctp::AssocId id = rank_to_assoc_[static_cast<std::size_t>(peer)];
  if (id != 0) assoc_to_rank_.erase(id);
  rank_to_assoc_[static_cast<std::size_t>(peer)] = 0;
}

void SctpRpi::drain_notifications_() {
  while (auto n = sock_->poll_notification()) {
    switch (n->type) {
      case sctp::NotificationType::kCommLost: {
        auto it = assoc_to_rank_.find(n->assoc);
        if (it == assoc_to_rank_.end()) break;  // already unmapped
        const int peer = it->second;
        PeerReplay& rec = rec_of_(peer);
        if (rec.dead) break;
        if (!rec.down) {
          handle_peer_down_(peer);
        } else if (rank_to_assoc_[static_cast<std::size_t>(peer)] ==
                   n->assoc) {
          // Our reconnect attempt failed (INIT retries exhausted).
          unmap_assoc_(peer);
          if (peer > rank_) schedule_reconnect_(peer);
        }
        break;
      }
      case sctp::NotificationType::kCommUp: {
        auto it = assoc_to_rank_.find(n->assoc);
        int peer;
        if (it != assoc_to_rank_.end()) {
          peer = it->second;  // our own (re)connect came up
        } else {
          // Passive side: identify the reconnecting peer by address.
          const sctp::Association* a = sock_->assoc(n->assoc);
          if (a == nullptr) break;
          peer = static_cast<int>(net::host_of(a->paths()[0].addr));
          if (peer < 0 || peer >= size_ || peer == rank_) break;
          if (rec_of_(peer).dead) {
            sock_->abort_assoc(n->assoc);
            break;
          }
          if (!rec_of_(peer).down) {
            // Fresh association while the old one still looks alive (peer
            // restarted and its INIT raced our traffic): tear down first.
            handle_peer_down_(peer);
          }
          map_assoc_(peer, n->assoc);
        }
        if (rec_of_(peer).down && !rec_of_(peer).dead) on_reconnected_(peer);
        break;
      }
      default:
        break;  // shutdown-complete / path events: no recovery action
    }
  }
}

void SctpRpi::handle_peer_down_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  if (rec.down || rec.dead) return;
  rec.down = true;
  ++stats_.peer_downs;
  unmap_assoc_(peer);

  // Receive side: abandon partial long-body reassembly on every stream and
  // re-arm the rendezvous so the replayed request is re-acked.
  for (unsigned sid = 0; sid < cfg_.stream_pool; ++sid) {
    StreamIn& st = instate_(peer, static_cast<std::uint16_t>(sid));
    if (st.remaining > 0 && st.long_req != nullptr) {
      pending_long_recv_.put(peer, st.seq, st.long_req);
    }
    st.long_req = nullptr;
    st.remaining = 0;
    st.offset = 0;
    st.seq = 0;
  }

  // Send side: keep control jobs, drop data jobs (the retained queue is
  // the source of truth for replay); in-progress long bodies re-arm their
  // rendezvous handshake.
  for (unsigned sid = 0; sid < cfg_.stream_pool; ++sid) {
    auto& q = outq_(peer, static_cast<std::uint16_t>(sid));
    std::deque<OutJob> kept;
    for (OutJob& job : q) {
      if (job.kind == OutJob::Kind::kCtl) {
        kept.push_back(std::move(job));
      } else if (job.kind == OutJob::Kind::kLongBody && job.req != nullptr) {
        pending_long_send_.put(peer, job.req->seq, job.req);
      }
    }
    q = std::move(kept);
  }

  sim::Simulator& sim = stack_.host().sim();
  auto& rt = reconnect_timers_[static_cast<std::size_t>(peer)];
  auto& gt = giveup_timers_[static_cast<std::size_t>(peer)];
  if (peer > rank_) {
    // We initiated this association originally; we re-initiate.
    rec.attempts = 0;
    (void)rt;
    schedule_reconnect_(peer);
  } else {
    // Passive side: wait for the peer's fresh INIT, bounded.
    if (!gt) {
      gt = std::make_unique<sim::Timer>(sim,
                                        [this, peer] { declare_dead_(peer); });
    }
    gt->arm(cfg_.recovery.passive_give_up);
  }
  note_activity_();
}

void SctpRpi::schedule_reconnect_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  if (rec.dead) return;
  if (rec.attempts >= cfg_.recovery.max_reconnect_attempts) {
    declare_dead_(peer);
    return;
  }
  auto& rt = reconnect_timers_[static_cast<std::size_t>(peer)];
  if (!rt) {
    rt = std::make_unique<sim::Timer>(
        stack_.host().sim(), [this, peer] { attempt_reconnect_(peer); });
  }
  sim::SimTime delay = std::min(
      cfg_.recovery.backoff_base << rec.attempts, cfg_.recovery.backoff_max);
  delay += static_cast<sim::SimTime>(cfg_.recovery.jitter *
                                     jitter_rng_.uniform() *
                                     static_cast<double>(delay));
  rt->arm(delay);
}

void SctpRpi::attempt_reconnect_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  if (rec.dead || !rec.down) return;
  ++rec.attempts;
  const sctp::AssocId id =
      sock_->connect(rank_addr_(peer),
                     static_cast<std::uint16_t>(base_port_ + peer));
  map_assoc_(peer, id);
  charge_(cfg_.call_cost);
  note_activity_();
}

void SctpRpi::on_reconnected_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  rec.down = false;
  rec.attempts = 0;
  ++stats_.reconnects;
  auto& rt = reconnect_timers_[static_cast<std::size_t>(peer)];
  auto& gt = giveup_timers_[static_cast<std::size_t>(peer)];
  if (rt) rt->cancel();
  if (gt) gt->cancel();

  // Drop data jobs queued while down (all covered by the retained queue)
  // so replays — appended below in seq order — cannot be overtaken by a
  // later message on the same stream.
  for (unsigned sid = 0; sid < cfg_.stream_pool; ++sid) {
    auto& q = outq_(peer, static_cast<std::uint16_t>(sid));
    std::deque<OutJob> kept;
    for (OutJob& job : q) {
      if (job.kind == OutJob::Kind::kCtl) kept.push_back(std::move(job));
    }
    q = std::move(kept);
  }

  // Our cumulative delivered ack first (lets the peer trim immediately).
  {
    Envelope ack;
    ack.flags = kFlagReplayAck;
    ack.src_rank = rank_;
    ack.seq = rec.delivered_cum;
    OutJob job;
    job.kind = OutJob::Kind::kCtl;
    job.header = ack.encode_buffer();
    outq_(peer, 0).push_front(std::move(job));
    ++stats_.ctl_msgs;
  }
  rec.msgs_since_ack = 0;

  // Replay unacknowledged retained messages in send order, each on its
  // original stream (same-TRC ordering is per stream).
  for (const RetainedMsg& r : rec.retained) {
    if (!net::seq_gt(r.seq, rec.acked_cum)) continue;
    const Envelope env = Envelope::decode(r.header);
    const std::uint16_t sid = stream_of(env.context, env.tag);
    OutJob job;
    job.header = r.header;
    if (r.is_long) {
      job.kind = OutJob::Kind::kLongEnv;  // receiver re-acks if unserved
    } else {
      job.kind = OutJob::Kind::kEager;
      job.body = net::BufferSlice{r.body};  // refcount bump, not a copy
    }
    ++stats_.replayed_msgs;
    outq_(peer, sid).push_back(std::move(job));
  }
  pump_writes_();
  note_activity_();
}

void SctpRpi::enqueue_retained_body_(int peer, const RetainedMsg& r) {
  // Replay path: the rendezvous completed on our side before the failure,
  // but the receiver re-acked it — rebuild the body job from the retained
  // copy.
  Envelope env = Envelope::decode(r.header);
  env.flags = kFlagLong | kFlagLongBody;
  OutJob job;
  job.kind = OutJob::Kind::kLongBody;
  job.header = env.encode_buffer();
  job.body = net::BufferSlice{r.body};
  ++stats_.replayed_msgs;
  outq_(peer, stream_of(env.context, env.tag)).push_back(std::move(job));
  pump_writes_();
}

void SctpRpi::declare_dead_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  if (rec.dead) return;
  rec.dead = true;
  rec.down = true;
  ++stats_.peers_declared_dead;
  auto& rt = reconnect_timers_[static_cast<std::size_t>(peer)];
  auto& gt = giveup_timers_[static_cast<std::size_t>(peer)];
  if (rt) rt->cancel();
  if (gt) gt->cancel();
  const sctp::AssocId id = rank_to_assoc_[static_cast<std::size_t>(peer)];
  unmap_assoc_(peer);
  if (id != 0 && sock_->assoc(id) != nullptr) sock_->abort_assoc(id);
  for (unsigned sid = 0; sid < cfg_.stream_pool; ++sid) {
    outq_(peer, static_cast<std::uint16_t>(sid)).clear();
  }
  rec.retained.clear();

  // Complete requests that can never finish so the application does not
  // hang inside MPI_Wait; it learns of the failure via the event callback.
  auto sweep = [peer](PeerSeqMap<RpiRequest*>& map, auto on_req) {
    std::vector<std::uint32_t> seqs;
    map.for_each([&](int pr, std::uint32_t s, RpiRequest*) {
      if (pr == peer) seqs.push_back(s);
    });
    for (std::uint32_t s : seqs) {
      if (RpiRequest* req = map.take(peer, s)) on_req(req);
    }
  };
  sweep(pending_long_send_, [](RpiRequest* req) { req->done = true; });
  sweep(pending_ssend_, [](RpiRequest* req) { req->done = true; });
  sweep(pending_long_recv_, [peer](RpiRequest* req) {
    req->status.source = peer;
    req->status.count = 0;  // truncated: the body will never arrive
    req->done = true;
  });

  if (on_peer_unreachable_) on_peer_unreachable_(peer);
  note_activity_();
}

void SctpRpi::send_replay_ack_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  Envelope ack;
  ack.flags = kFlagReplayAck;
  ack.src_rank = rank_;
  ack.seq = rec.delivered_cum;
  rec.msgs_since_ack = 0;
  enqueue_ctl_(peer, 0, ack);
}

void SctpRpi::note_delivered_(int peer, std::uint32_t seq) {
  PeerReplay& rec = rec_of_(peer);
  rec.note_delivered(seq);
  if (rec.msgs_since_ack >= cfg_.recovery.ack_every && !rec.dead &&
      !rec.down) {
    send_replay_ack_(peer);
  }
}

RetainedMsg* SctpRpi::find_retained_(int peer, std::uint32_t seq) {
  for (RetainedMsg& r : rec_of_(peer).retained) {
    if (r.seq == seq) return &r;
  }
  return nullptr;
}

}  // namespace sctpmpi::core
