#include "core/rpi_sctp.hpp"

#include <algorithm>
#include <cassert>

namespace sctpmpi::core {

namespace {
constexpr std::ptrdiff_t kSockAgain = sctp::Association::kAgain;
}

SctpRpi::SctpRpi(sctp::SctpStack& stack, int rank, int size, RpiConfig cfg,
                 std::function<net::IpAddr(int)> rank_addr,
                 std::uint16_t base_port)
    : stack_(stack),
      rank_(rank),
      size_(size),
      cfg_(cfg),
      rank_addr_(std::move(rank_addr)),
      base_port_(base_port),
      out_(static_cast<std::size_t>(size) * cfg.stream_pool),
      in_(static_cast<std::size_t>(size) * cfg.stream_pool),
      next_seq_(static_cast<std::size_t>(size), 1),
      rxbuf_(stack.config().rcvbuf) {
  // sctp_sendmsg is bounded by the send buffer (paper §3.4): clamp the
  // middleware's eager limit and long-message fragment size so a single
  // message always fits, whatever the socket buffers are configured to.
  const std::size_t max_msg = stack.config().sndbuf;
  if (cfg_.eager_limit + kEnvelopeBytes > max_msg) {
    cfg_.eager_limit = max_msg - kEnvelopeBytes;
  }
  if (cfg_.long_fragment > max_msg) cfg_.long_fragment = max_msg;
}

// ---------------------------------------------------------------------------
// MPI_Init: association setup with every peer, then an explicit barrier —
// unlike TCP there are no connect/accept calls to order things (paper §3.4).
// ---------------------------------------------------------------------------

void SctpRpi::init(sim::Process& proc) {
  proc_ = &proc;
  sock_ = stack_.create_socket(static_cast<std::uint16_t>(base_port_ + rank_));
  sock_->listen();
  sock_->set_activity_callback([this] { note_activity_(); });
  rank_to_assoc_.assign(static_cast<std::size_t>(size_), 0);

  // Lower rank initiates the association (single initiator per pair).
  for (int peer = rank_ + 1; peer < size_; ++peer) {
    const sctp::AssocId id =
        sock_->connect(rank_addr_(peer),
                       static_cast<std::uint16_t>(base_port_ + peer));
    rank_to_assoc_[static_cast<std::size_t>(peer)] = id;
    assoc_to_rank_[id] = peer;
    charge_(cfg_.call_cost);
  }

  // Wait for all associations to come up; passive ones are identified by
  // the peer's address (rank == host index in the cluster).
  int up = 0;
  while (up < size_ - 1) {
    while (auto n = sock_->poll_notification()) {
      if (n->type != sctp::NotificationType::kCommUp) continue;
      ++up;
      if (assoc_to_rank_.count(n->assoc) == 0) {
        const int peer = static_cast<int>(net::host_of(
            sock_->assoc(n->assoc)->paths()[0].addr));
        assoc_to_rank_[n->assoc] = peer;
        rank_to_assoc_[static_cast<std::size_t>(peer)] = n->assoc;
      }
    }
    if (up < size_ - 1) block(proc);
  }

  // Explicit barrier (paper §3.4): workers signal rank 0, rank 0 releases.
  Envelope ctl;
  ctl.flags = kFlagCtl;
  ctl.src_rank = rank_;
  if (rank_ == 0) {
    while (barrier_ctl_seen_ < size_ - 1) {
      advance();
      if (barrier_ctl_seen_ < size_ - 1) block(proc);
    }
    for (int peer = 1; peer < size_; ++peer) {
      enqueue_ctl_(peer, 0, ctl);
    }
  } else {
    enqueue_ctl_(0, 0, ctl);
    while (barrier_ctl_seen_ < 1) {
      advance();
      if (barrier_ctl_seen_ < 1) block(proc);
    }
  }
  barrier_ctl_seen_ = 0;
}

void SctpRpi::finalize(sim::Process& proc) {
  bool pending = true;
  while (pending) {
    advance();
    pending = false;
    for (const auto& q : out_) {
      if (!q.empty()) pending = true;
    }
    if (pending) block(proc);
  }
  for (int peer = 0; peer < size_; ++peer) {
    if (peer != rank_ && rank_to_assoc_[static_cast<std::size_t>(peer)] != 0) {
      // Let the higher rank drive shutdown to avoid crossing SHUTDOWNs.
      if (rank_ > peer) {
        sock_->shutdown_assoc(rank_to_assoc_[static_cast<std::size_t>(peer)]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Request initiation
// ---------------------------------------------------------------------------

void SctpRpi::start_send(RpiRequest* req) {
  ++stats_.sends_started;
  const int peer = req->peer;
  assert(peer != rank_);
  req->seq = next_seq_[static_cast<std::size_t>(peer)]++;
  const std::uint16_t sid = stream_of(req->context, req->tag);

  Envelope env;
  env.length = static_cast<std::uint32_t>(req->send_len);
  env.tag = req->tag;
  env.context = req->context;
  env.src_rank = rank_;
  env.seq = req->seq;

  OutJob job;
  if (req->send_len <= cfg_.eager_limit) {
    env.flags = req->sync ? kFlagSsend : kFlagShort;
    job.kind = OutJob::Kind::kEager;
    job.header = env.encode();
    job.body = req->send_buf;
    job.body_len = req->send_len;
    job.req = req;
    job.completes_request = !req->sync;
    if (req->sync) pending_ssend_.put(peer, req->seq, req);
    ++stats_.eager_msgs;
  } else {
    env.flags = kFlagLong;
    job.kind = OutJob::Kind::kLongEnv;
    job.header = env.encode();
    pending_long_send_.put(peer, req->seq, req);
    ++stats_.rendezvous_msgs;
  }
  outq_(peer, sid).push_back(std::move(job));
  pump_writes_();
}

void SctpRpi::start_recv(RpiRequest* req) {
  ++stats_.recvs_started;
  if (auto um = match_.match_unexpected(*req)) {
    const Envelope& env = um->env;
    const std::uint16_t sid = stream_of(env.context, env.tag);
    if ((env.flags & kFlagLong) != 0) {
      pending_long_recv_.put(env.src_rank, env.seq, req);
      Envelope ack;
      ack.flags = kFlagLongAck;
      ack.tag = env.tag;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(env.src_rank, sid, ack);
    } else {
      deliver_matched_(req, env, um->body);
      if ((env.flags & kFlagSsend) != 0) {
        Envelope ack;
        ack.flags = kFlagSsendAck;
        ack.context = env.context;
        ack.src_rank = rank_;
        ack.seq = env.seq;
        enqueue_ctl_(env.src_rank, sid, ack);
      }
    }
    return;
  }
  match_.add_posted(req);
}

void SctpRpi::cancel_recv(RpiRequest* req) { match_.remove_posted(req); }

void SctpRpi::deliver_matched_(RpiRequest* req, const Envelope& env,
                               std::span<const std::byte> body) {
  const std::size_t n = std::min(body.size(), req->recv_cap);
  std::copy_n(body.begin(), static_cast<std::ptrdiff_t>(n), req->recv_buf);
  const auto copy_cost = static_cast<sim::SimTime>(cfg_.rx_byte_cost_ns *
                                                   static_cast<double>(n));
  stack_.host().occupy_cpu(copy_cost);
  charge_(copy_cost);
  req->status.source = env.src_rank;
  req->status.tag = env.tag;
  req->status.count = n;
  req->done = true;
}

void SctpRpi::enqueue_ctl_(int peer, std::uint16_t sid, const Envelope& env) {
  OutJob job;
  job.kind = OutJob::Kind::kCtl;
  job.header = env.encode();
  outq_(peer, sid).push_back(std::move(job));
  ++stats_.ctl_msgs;
  pump_writes_();
}

// ---------------------------------------------------------------------------
// Progression
// ---------------------------------------------------------------------------

void SctpRpi::advance() {
  pump_writes_();
  pump_reads_();
}

void SctpRpi::block(sim::Process& proc) {
  if (activity_) {
    activity_ = false;
    return;
  }
  ++stats_.blocks;
  blocked_proc_ = &proc;
  // Flush CPU debt before committing to the suspension: a wakeup that
  // fires during the debt sleep would otherwise be consumed by it and the
  // real suspension would never be woken (lost-wakeup).
  proc.flush_charge();
  if (!activity_) proc.suspend();
  blocked_proc_ = nullptr;
  activity_ = false;
}

void SctpRpi::pump_writes_() {
  // Round-robin over the (peer, stream) queues; each queue advances only
  // its head job (Option B: a partially written message blocks *that
  // stream to that peer only*, §3.4.2). Under Option A, a long body at the
  // head of any queue is driven to completion before any other queue may
  // proceed (§3.4.1 — maximum simplicity, minimum concurrency).
  if (cfg_.race_fix == RpiConfig::RaceFix::kOptionA) {
    for (std::size_t qi = 0; qi < out_.size(); ++qi) {
      auto& q = out_[qi];
      if (q.empty()) continue;
      if (q.front().kind == OutJob::Kind::kLongBody) {
        const int peer = static_cast<int>(qi / cfg_.stream_pool);
        const auto sid = static_cast<std::uint16_t>(qi % cfg_.stream_pool);
        // Drive this job; if it cannot finish (send buffer full), stall
        // all output until it can.
        if (!advance_job_(peer, sid, q.front())) return;
        q.pop_front();
      }
    }
  }
  for (std::size_t qi = 0; qi < out_.size(); ++qi) {
    auto& q = out_[qi];
    while (!q.empty()) {
      const int peer = static_cast<int>(qi / cfg_.stream_pool);
      const auto sid = static_cast<std::uint16_t>(qi % cfg_.stream_pool);
      if (!advance_job_(peer, sid, q.front())) break;
      q.pop_front();
    }
  }
}

bool SctpRpi::advance_job_(int peer, std::uint16_t sid, OutJob& job) {
  const sctp::AssocId assoc = rank_to_assoc_[static_cast<std::size_t>(peer)];
  switch (job.kind) {
    case OutJob::Kind::kCtl: {
      charge_(cfg_.call_cost);
      const auto r = sock_->sendmsg(assoc, sid, job.header,
                                    static_cast<std::uint32_t>(rank_));
      return r > 0;
    }
    case OutJob::Kind::kEager: {
      // Envelope + body in a single sctp_sendmsg: SCTP preserves the
      // message framing, so the receiver gets the whole message at once.
      charge_(cfg_.call_cost);
      const auto r = sock_->sendmsg_gather(
          assoc, sid, job.header, std::span(job.body, job.body_len),
          static_cast<std::uint32_t>(rank_));
      if (r <= 0) return false;
      if (job.completes_request && job.req != nullptr) job.req->done = true;
      return true;
    }
    case OutJob::Kind::kLongEnv: {
      charge_(cfg_.call_cost);
      return sock_->sendmsg(assoc, sid, job.header,
                            static_cast<std::uint32_t>(rank_)) > 0;
    }
    case OutJob::Kind::kLongBody: {
      // Second envelope, then sendmsg-sized fragments, all on this stream
      // (paper §3.4). Partial progress keeps the job at the queue head.
      if (!job.env_sent) {
        charge_(cfg_.call_cost);
        if (sock_->sendmsg(assoc, sid, job.header,
                           static_cast<std::uint32_t>(rank_)) <= 0)
          return false;
        job.env_sent = true;
      }
      while (job.body_off < job.body_len) {
        const std::size_t n =
            std::min(cfg_.long_fragment, job.body_len - job.body_off);
        charge_(cfg_.call_cost);
        const auto r = sock_->sendmsg(
            assoc, sid, std::span(job.body + job.body_off, n),
            static_cast<std::uint32_t>(rank_));
        if (r <= 0) return false;
        job.body_off += n;
      }
      if (job.req != nullptr) job.req->done = true;
      return true;
    }
  }
  return false;
}

void SctpRpi::pump_reads_() {
  // Retrieve whole messages as long as any are deliverable; this is the
  // one-to-many receive loop the paper uses instead of select() (§3.3).
  while (sock_->readable()) {
    sctp::RecvInfo info;
    charge_(cfg_.call_cost);
    const auto n = sock_->recvmsg(rxbuf_, info);
    if (n <= 0) break;
    auto it = assoc_to_rank_.find(info.assoc);
    if (it == assoc_to_rank_.end()) continue;  // unknown peer (teardown)
    handle_message_(it->second, info.sid,
                    std::span(rxbuf_).subspan(0, static_cast<std::size_t>(n)));
  }
}

void SctpRpi::handle_message_(int peer, std::uint16_t sid,
                              std::span<const std::byte> data) {
  StreamIn& st = instate_(peer, sid);
  if (st.remaining > 0) {
    // Raw long-body fragment for the in-progress message on this
    // (association, stream) — the RPI-level reassembly of §3.4.
    const std::size_t n = std::min(data.size(), st.remaining);
    if (st.long_req != nullptr) {
      const std::size_t fit =
          st.offset < st.long_req->recv_cap
              ? std::min(n, st.long_req->recv_cap - st.offset)
              : 0;
      std::copy_n(data.begin(), static_cast<std::ptrdiff_t>(fit),
                  st.long_req->recv_buf + st.offset);
      const auto copy_cost = static_cast<sim::SimTime>(
          cfg_.rx_byte_cost_ns * static_cast<double>(n));
      stack_.host().occupy_cpu(copy_cost);
      charge_(copy_cost);
    }
    st.offset += n;
    st.remaining -= n;
    if (st.remaining == 0) {
      if (st.long_req != nullptr) {
        st.long_req->status.count = std::min(st.offset, st.long_req->recv_cap);
        st.long_req->done = true;
      }
      st.long_req = nullptr;
      st.offset = 0;
    }
    return;
  }
  const Envelope env = Envelope::decode(data);
  handle_envelope_(peer, sid, env, data.subspan(kEnvelopeBytes));
}

void SctpRpi::handle_envelope_(int peer, std::uint16_t sid,
                               const Envelope& env,
                               std::span<const std::byte> body) {
  if ((env.flags & kFlagCtl) != 0) {
    ++barrier_ctl_seen_;
    return;
  }
  if ((env.flags & kFlagLongAck) != 0) {
    if (RpiRequest* req = pending_long_send_.take(peer, env.seq)) {
      OutJob job;
      job.kind = OutJob::Kind::kLongBody;
      Envelope env2;
      env2.length = static_cast<std::uint32_t>(req->send_len);
      env2.tag = req->tag;
      env2.context = req->context;
      env2.flags = kFlagLong | kFlagLongBody;
      env2.src_rank = rank_;
      env2.seq = req->seq;
      job.header = env2.encode();
      job.body = req->send_buf;
      job.body_len = req->send_len;
      job.req = req;
      outq_(peer, stream_of(req->context, req->tag)).push_back(std::move(job));
      pump_writes_();
    }
    return;
  }
  if ((env.flags & kFlagSsendAck) != 0) {
    if (RpiRequest* req = pending_ssend_.take(peer, env.seq)) req->done = true;
    return;
  }
  if ((env.flags & kFlagLongBody) != 0) {
    StreamIn& st = instate_(peer, sid);
    st.long_req = pending_long_recv_.take(peer, env.seq);
    st.remaining = env.length;
    st.offset = 0;
    if (st.long_req != nullptr) {
      st.long_req->status.source = env.src_rank;
      st.long_req->status.tag = env.tag;
    }
    return;
  }
  if ((env.flags & kFlagLong) != 0) {
    if (RpiRequest* req = match_.match_posted(env)) {
      pending_long_recv_.put(peer, env.seq, req);
      Envelope ack;
      ack.flags = kFlagLongAck;
      ack.tag = env.tag;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, sid, ack);
    } else {
      ++stats_.unexpected_msgs;
      match_.add_unexpected(UnexpectedMsg{env, {}});
    }
    return;
  }

  // Eager short message: the whole body arrived with the envelope.
  if (RpiRequest* req = match_.match_posted(env)) {
    deliver_matched_(req, env, body);
    if ((env.flags & kFlagSsend) != 0) {
      Envelope ack;
      ack.flags = kFlagSsendAck;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, sid, ack);
    }
  } else {
    ++stats_.unexpected_msgs;
    match_.add_unexpected(
        UnexpectedMsg{env, std::vector<std::byte>(body.begin(), body.end())});
  }
}

}  // namespace sctpmpi::core
