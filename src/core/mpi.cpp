#include "core/mpi.hpp"

#include <cassert>
#include <stdexcept>

#include "core/failure.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::core {

Mpi::Mpi(int rank, int size, Rpi& rpi, sim::Process& proc)
    : rank_(rank), size_(size), rpi_(rpi), proc_(proc) {}

Comm Mpi::dup(Comm) {
  // Deterministic context allocation: all ranks call collectively in the
  // same order, so the counters agree without communication (the paper's
  // §2.3 discussion of dynamic contexts).
  return Comm{next_context_++};
}

double Mpi::wtime() const {
  return sim::to_seconds(proc_.sim().now());
}

RpiRequest* Mpi::new_request_() {
  auto owned = std::make_unique<RpiRequest>();
  RpiRequest* p = owned.get();
  live_.emplace(p, std::move(owned));
  return p;
}

void Mpi::release_(RpiRequest* r) { live_.erase(r); }

void Mpi::wait_until_(const std::function<bool()>& pred) {
  while (!pred()) {
    rpi_.advance();
    if (pred()) break;
    rpi_.block(proc_);
  }
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

Request Mpi::isend(std::span<const std::byte> buf, int dst, int tag, Comm c) {
  assert(dst != rank_ && "self-sends are not supported");
  RpiRequest* r = new_request_();
  r->kind = RpiRequest::Kind::kSend;
  r->peer = dst;
  r->tag = tag;
  r->context = c.context;
  r->send_buf = buf.data();
  r->send_len = buf.size();
  rpi_.start_send(r);
  return Request(r);
}

Request Mpi::issend(std::span<const std::byte> buf, int dst, int tag,
                    Comm c) {
  assert(dst != rank_ && "self-sends are not supported");
  RpiRequest* r = new_request_();
  r->kind = RpiRequest::Kind::kSend;
  r->peer = dst;
  r->tag = tag;
  r->context = c.context;
  r->send_buf = buf.data();
  r->send_len = buf.size();
  r->sync = true;
  rpi_.start_send(r);
  return Request(r);
}

Request Mpi::irecv(std::span<std::byte> buf, int src, int tag, Comm c) {
  RpiRequest* r = new_request_();
  r->kind = RpiRequest::Kind::kRecv;
  r->peer = src;
  r->tag = tag;
  r->context = c.context;
  r->recv_buf = buf.data();
  r->recv_cap = buf.size();
  rpi_.start_recv(r);
  return Request(r);
}

void Mpi::send(std::span<const std::byte> buf, int dst, int tag, Comm c) {
  Request r = isend(buf, dst, tag, c);
  wait(r);
}

void Mpi::ssend(std::span<const std::byte> buf, int dst, int tag, Comm c) {
  Request r = issend(buf, dst, tag, c);
  wait(r);
}

MpiStatus Mpi::recv(std::span<std::byte> buf, int src, int tag, Comm c) {
  Request r = irecv(buf, src, tag, c);
  return wait(r);
}

MpiStatus Mpi::wait(Request& req) {
  assert(req.valid());
  RpiRequest* r = req.impl_;
  wait_until_([r] { return r->done; });
  MpiStatus st = r->status;
  release_(r);
  req.impl_ = nullptr;
  return st;
}

bool Mpi::test(Request& req, MpiStatus* status) {
  assert(req.valid());
  RpiRequest* r = req.impl_;
  rpi_.advance();
  if (!r->done) return false;
  if (status != nullptr) *status = r->status;
  release_(r);
  req.impl_ = nullptr;
  return true;
}

int Mpi::waitany(std::span<Request> reqs, MpiStatus* status) {
  auto find_done = [&]() -> int {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].valid() && reqs[i].impl_->done) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  int idx = -1;
  wait_until_([&] {
    idx = find_done();
    return idx >= 0;
  });
  RpiRequest* r = reqs[static_cast<std::size_t>(idx)].impl_;
  if (status != nullptr) *status = r->status;
  release_(r);
  reqs[static_cast<std::size_t>(idx)].impl_ = nullptr;
  return idx;
}

void Mpi::cancel(Request& req) {
  if (!req.valid()) return;
  RpiRequest* r = req.impl_;
  if (!r->done) rpi_.cancel_recv(r);
  release_(r);
  req.impl_ = nullptr;
}

int Mpi::poll_rank_failure() {
  return bus_ != nullptr ? bus_->poll(rank_) : -1;
}

int Mpi::waitany_or_failure(std::span<Request> reqs, MpiStatus* status,
                            int* failed_rank, sim::SimTime timeout) {
  auto find_done = [&]() -> int {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (reqs[i].valid() && reqs[i].impl_->done) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  // The timer only wakes the process out of its RPI block; the predicate
  // re-checks the deadline against sim time.
  sim::Timer wakeup(proc_.sim(), [this] { proc_.wake(); });
  const sim::SimTime deadline = proc_.sim().now() + timeout;
  if (timeout > 0) wakeup.arm(timeout);
  int idx = -1;
  int failed = -1;
  bool timed_out = false;
  wait_until_([&] {
    idx = find_done();
    if (idx >= 0) return true;
    failed = poll_rank_failure();
    if (failed >= 0) return true;
    if (timeout > 0 && proc_.sim().now() >= deadline) {
      timed_out = true;
      return true;
    }
    return false;
  });
  if (timed_out && idx < 0 && failed < 0) return -2;
  if (idx < 0) {
    if (failed_rank != nullptr) *failed_rank = failed;
    return -1;
  }
  RpiRequest* r = reqs[static_cast<std::size_t>(idx)].impl_;
  if (status != nullptr) *status = r->status;
  release_(r);
  reqs[static_cast<std::size_t>(idx)].impl_ = nullptr;
  return idx;
}

void Mpi::waitall(std::span<Request> reqs) {
  wait_until_([&] {
    for (const Request& r : reqs) {
      if (r.valid() && !r.impl_->done) return false;
    }
    return true;
  });
  for (Request& r : reqs) {
    if (r.valid()) {
      release_(r.impl_);
      r.impl_ = nullptr;
    }
  }
}

MpiStatus Mpi::probe(int src, int tag, Comm c) {
  const Envelope* env = nullptr;
  wait_until_([&] {
    env = rpi_.probe(c.context, src, tag);
    return env != nullptr;
  });
  MpiStatus st;
  st.source = env->src_rank;
  st.tag = env->tag;
  st.count = env->length;
  return st;
}

bool Mpi::iprobe(int src, int tag, Comm c, MpiStatus* status) {
  rpi_.advance();
  const Envelope* env = rpi_.probe(c.context, src, tag);
  if (env == nullptr) return false;
  if (status != nullptr) {
    status->source = env->src_rank;
    status->tag = env->tag;
    status->count = env->length;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Collectives (point-to-point based, like LAM's TCP module — paper §2.2.2)
// ---------------------------------------------------------------------------

void Mpi::coll_send_(std::span<const std::byte> buf, int dst, int tag,
                     Comm c) {
  send(buf, dst, tag, Comm{c.context | kCollMask});
}

MpiStatus Mpi::coll_recv_(std::span<std::byte> buf, int src, int tag,
                          Comm c) {
  return recv(buf, src, tag, Comm{c.context | kCollMask});
}

void Mpi::barrier(Comm c) {
  // Dissemination barrier: log2(n) rounds of paired send/recv.
  if (size_ == 1) return;
  std::byte token{0};
  for (int k = 1; k < size_; k <<= 1) {
    const int dst = (rank_ + k) % size_;
    const int src = (rank_ - k + size_) % size_;
    Request r = irecv(std::span(&token, 1), src, 0x100 + k,
                      Comm{c.context | kCollMask});
    coll_send_(std::span(&token, 1), dst, 0x100 + k, c);
    wait(r);
  }
}

void Mpi::bcast(std::span<std::byte> buf, int root, Comm c) {
  if (size_ == 1) return;
  const int vrank = (rank_ - root + size_) % size_;
  const int tag = 0x101;
  // Classic binomial tree: wait for the parent (lowest set bit of vrank),
  // then forward to children at decreasing offsets.
  int mask = 1;
  while (mask < size_) {
    if ((vrank & mask) != 0) {
      const int parent = ((vrank - mask) + root) % size_;
      coll_recv_(buf, parent, tag, c);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < size_) {
      const int child = ((vrank + mask) + root) % size_;
      coll_send_(buf, child, tag, c);
    }
    mask >>= 1;
  }
}

void Mpi::gather(std::span<const std::byte> send, std::span<std::byte> recv,
                 int root, Comm c) {
  const int tag = 0x103;
  if (rank_ == root) {
    const std::size_t block = send.size();
    std::copy(send.begin(), send.end(),
              recv.begin() + static_cast<std::ptrdiff_t>(
                                 static_cast<std::size_t>(rank_) * block));
    for (int r = 0; r < size_; ++r) {
      if (r == root) continue;
      coll_recv_(recv.subspan(static_cast<std::size_t>(r) * block, block), r,
                 tag, c);
    }
  } else {
    coll_send_(send, root, tag, c);
  }
}

void Mpi::allgather(std::span<const std::byte> send,
                    std::span<std::byte> recv, Comm c) {
  gather(send, recv, /*root=*/0, c);
  bcast(recv, /*root=*/0, c);
}

void Mpi::scatter(std::span<const std::byte> send, std::span<std::byte> recv,
                  int root, Comm c) {
  const int tag = 0x104;
  const std::size_t block = recv.size();
  if (rank_ == root) {
    for (int r = 0; r < size_; ++r) {
      auto chunk = send.subspan(static_cast<std::size_t>(r) * block, block);
      if (r == root) {
        std::copy(chunk.begin(), chunk.end(), recv.begin());
      } else {
        coll_send_(chunk, r, tag, c);
      }
    }
  } else {
    coll_recv_(recv, root, tag, c);
  }
}

void Mpi::alltoall(std::span<const std::byte> send,
                   std::span<std::byte> recv, Comm c) {
  const std::size_t block = send.size() / static_cast<std::size_t>(size_);
  const int tag = 0x105;
  // Own block first.
  auto own = send.subspan(static_cast<std::size_t>(rank_) * block, block);
  std::copy(own.begin(), own.end(),
            recv.begin() +
                static_cast<std::ptrdiff_t>(static_cast<std::size_t>(rank_) *
                                            block));
  // Pairwise exchange rounds.
  for (int i = 1; i < size_; ++i) {
    const int dst = (rank_ + i) % size_;
    const int src = (rank_ - i + size_) % size_;
    Request r = irecv(recv.subspan(static_cast<std::size_t>(src) * block,
                                   block),
                      src, tag, Comm{c.context | kCollMask});
    coll_send_(send.subspan(static_cast<std::size_t>(dst) * block, block),
               dst, tag, c);
    wait(r);
  }
}

}  // namespace sctpmpi::core
